file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_segmented_sort.dir/bench_fig2_segmented_sort.cpp.o"
  "CMakeFiles/bench_fig2_segmented_sort.dir/bench_fig2_segmented_sort.cpp.o.d"
  "bench_fig2_segmented_sort"
  "bench_fig2_segmented_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_segmented_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
