# Empty compiler generated dependencies file for bench_fig2_segmented_sort.
# This may be replaced when dependencies are built.
