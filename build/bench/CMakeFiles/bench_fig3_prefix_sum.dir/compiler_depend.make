# Empty compiler generated dependencies file for bench_fig3_prefix_sum.
# This may be replaced when dependencies are built.
