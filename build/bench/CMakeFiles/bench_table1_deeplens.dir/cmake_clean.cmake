file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_deeplens.dir/bench_table1_deeplens.cpp.o"
  "CMakeFiles/bench_table1_deeplens.dir/bench_table1_deeplens.cpp.o.d"
  "bench_table1_deeplens"
  "bench_table1_deeplens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_deeplens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
