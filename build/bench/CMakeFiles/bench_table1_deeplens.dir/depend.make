# Empty dependencies file for bench_table1_deeplens.
# This may be replaced when dependencies are built.
