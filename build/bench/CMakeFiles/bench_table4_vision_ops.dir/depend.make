# Empty dependencies file for bench_table4_vision_ops.
# This may be replaced when dependencies are built.
