file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_autotune.dir/bench_table5_autotune.cpp.o"
  "CMakeFiles/bench_table5_autotune.dir/bench_table5_autotune.cpp.o.d"
  "bench_table5_autotune"
  "bench_table5_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
