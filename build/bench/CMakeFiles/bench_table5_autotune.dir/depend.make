# Empty dependencies file for bench_table5_autotune.
# This may be replaced when dependencies are built.
