file(REMOVE_RECURSE
  "CMakeFiles/bench_cpu_vs_gpu.dir/bench_cpu_vs_gpu.cpp.o"
  "CMakeFiles/bench_cpu_vs_gpu.dir/bench_cpu_vs_gpu.cpp.o.d"
  "bench_cpu_vs_gpu"
  "bench_cpu_vs_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cpu_vs_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
