# Empty compiler generated dependencies file for bench_fallback_overhead.
# This may be replaced when dependencies are built.
