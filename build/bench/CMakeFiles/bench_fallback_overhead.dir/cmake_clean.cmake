file(REMOVE_RECURSE
  "CMakeFiles/bench_fallback_overhead.dir/bench_fallback_overhead.cpp.o"
  "CMakeFiles/bench_fallback_overhead.dir/bench_fallback_overhead.cpp.o.d"
  "bench_fallback_overhead"
  "bench_fallback_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fallback_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
