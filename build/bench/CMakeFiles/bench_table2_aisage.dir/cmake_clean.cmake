file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_aisage.dir/bench_table2_aisage.cpp.o"
  "CMakeFiles/bench_table2_aisage.dir/bench_table2_aisage.cpp.o.d"
  "bench_table2_aisage"
  "bench_table2_aisage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_aisage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
