file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_nano.dir/bench_table3_nano.cpp.o"
  "CMakeFiles/bench_table3_nano.dir/bench_table3_nano.cpp.o.d"
  "bench_table3_nano"
  "bench_table3_nano.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_nano.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
