# Empty dependencies file for bench_table3_nano.
# This may be replaced when dependencies are built.
