# Empty dependencies file for yolo_detection.
# This may be replaced when dependencies are built.
