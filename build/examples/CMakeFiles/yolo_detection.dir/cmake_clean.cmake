file(REMOVE_RECURSE
  "CMakeFiles/yolo_detection.dir/yolo_detection.cpp.o"
  "CMakeFiles/yolo_detection.dir/yolo_detection.cpp.o.d"
  "yolo_detection"
  "yolo_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yolo_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
