# Empty compiler generated dependencies file for unified_ir_codegen.
# This may be replaced when dependencies are built.
