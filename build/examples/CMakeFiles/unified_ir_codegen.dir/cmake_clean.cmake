file(REMOVE_RECURSE
  "CMakeFiles/unified_ir_codegen.dir/unified_ir_codegen.cpp.o"
  "CMakeFiles/unified_ir_codegen.dir/unified_ir_codegen.cpp.o.d"
  "unified_ir_codegen"
  "unified_ir_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unified_ir_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
