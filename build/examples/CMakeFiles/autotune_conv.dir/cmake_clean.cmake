file(REMOVE_RECURSE
  "CMakeFiles/autotune_conv.dir/autotune_conv.cpp.o"
  "CMakeFiles/autotune_conv.dir/autotune_conv.cpp.o.d"
  "autotune_conv"
  "autotune_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
