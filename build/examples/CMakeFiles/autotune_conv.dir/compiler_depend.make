# Empty compiler generated dependencies file for autotune_conv.
# This may be replaced when dependencies are built.
