file(REMOVE_RECURSE
  "CMakeFiles/segmentation_fcn.dir/segmentation_fcn.cpp.o"
  "CMakeFiles/segmentation_fcn.dir/segmentation_fcn.cpp.o.d"
  "segmentation_fcn"
  "segmentation_fcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/segmentation_fcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
