# Empty compiler generated dependencies file for segmentation_fcn.
# This may be replaced when dependencies are built.
