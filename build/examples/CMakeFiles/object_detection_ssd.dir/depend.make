# Empty dependencies file for object_detection_ssd.
# This may be replaced when dependencies are built.
