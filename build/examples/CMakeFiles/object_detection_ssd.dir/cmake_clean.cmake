file(REMOVE_RECURSE
  "CMakeFiles/object_detection_ssd.dir/object_detection_ssd.cpp.o"
  "CMakeFiles/object_detection_ssd.dir/object_detection_ssd.cpp.o.d"
  "object_detection_ssd"
  "object_detection_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/object_detection_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
