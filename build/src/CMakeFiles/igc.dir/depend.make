# Empty dependencies file for igc.
# This may be replaced when dependencies are built.
