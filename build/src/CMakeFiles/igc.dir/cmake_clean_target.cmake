file(REMOVE_RECURSE
  "libigc.a"
)
