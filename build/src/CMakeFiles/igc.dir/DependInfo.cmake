
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/vendor.cpp" "src/CMakeFiles/igc.dir/baselines/vendor.cpp.o" "gcc" "src/CMakeFiles/igc.dir/baselines/vendor.cpp.o.d"
  "/root/repo/src/codegen/codegen.cpp" "src/CMakeFiles/igc.dir/codegen/codegen.cpp.o" "gcc" "src/CMakeFiles/igc.dir/codegen/codegen.cpp.o.d"
  "/root/repo/src/core/compiler.cpp" "src/CMakeFiles/igc.dir/core/compiler.cpp.o" "gcc" "src/CMakeFiles/igc.dir/core/compiler.cpp.o.d"
  "/root/repo/src/core/thread_pool.cpp" "src/CMakeFiles/igc.dir/core/thread_pool.cpp.o" "gcc" "src/CMakeFiles/igc.dir/core/thread_pool.cpp.o.d"
  "/root/repo/src/graph/executor.cpp" "src/CMakeFiles/igc.dir/graph/executor.cpp.o" "gcc" "src/CMakeFiles/igc.dir/graph/executor.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/igc.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/igc.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/memory_planner.cpp" "src/CMakeFiles/igc.dir/graph/memory_planner.cpp.o" "gcc" "src/CMakeFiles/igc.dir/graph/memory_planner.cpp.o.d"
  "/root/repo/src/graph/passes.cpp" "src/CMakeFiles/igc.dir/graph/passes.cpp.o" "gcc" "src/CMakeFiles/igc.dir/graph/passes.cpp.o.d"
  "/root/repo/src/graphtune/graph_tuner.cpp" "src/CMakeFiles/igc.dir/graphtune/graph_tuner.cpp.o" "gcc" "src/CMakeFiles/igc.dir/graphtune/graph_tuner.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/CMakeFiles/igc.dir/ir/expr.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ir/expr.cpp.o.d"
  "/root/repo/src/ir/interp.cpp" "src/CMakeFiles/igc.dir/ir/interp.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ir/interp.cpp.o.d"
  "/root/repo/src/ir/simplify.cpp" "src/CMakeFiles/igc.dir/ir/simplify.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ir/simplify.cpp.o.d"
  "/root/repo/src/models/classification.cpp" "src/CMakeFiles/igc.dir/models/classification.cpp.o" "gcc" "src/CMakeFiles/igc.dir/models/classification.cpp.o.d"
  "/root/repo/src/models/common.cpp" "src/CMakeFiles/igc.dir/models/common.cpp.o" "gcc" "src/CMakeFiles/igc.dir/models/common.cpp.o.d"
  "/root/repo/src/models/detection.cpp" "src/CMakeFiles/igc.dir/models/detection.cpp.o" "gcc" "src/CMakeFiles/igc.dir/models/detection.cpp.o.d"
  "/root/repo/src/models/segmentation.cpp" "src/CMakeFiles/igc.dir/models/segmentation.cpp.o" "gcc" "src/CMakeFiles/igc.dir/models/segmentation.cpp.o.d"
  "/root/repo/src/ops/nn/conv2d.cpp" "src/CMakeFiles/igc.dir/ops/nn/conv2d.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ops/nn/conv2d.cpp.o.d"
  "/root/repo/src/ops/nn/conv2d_transpose.cpp" "src/CMakeFiles/igc.dir/ops/nn/conv2d_transpose.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ops/nn/conv2d_transpose.cpp.o.d"
  "/root/repo/src/ops/nn/depthwise.cpp" "src/CMakeFiles/igc.dir/ops/nn/depthwise.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ops/nn/depthwise.cpp.o.d"
  "/root/repo/src/ops/nn/ir_kernels.cpp" "src/CMakeFiles/igc.dir/ops/nn/ir_kernels.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ops/nn/ir_kernels.cpp.o.d"
  "/root/repo/src/ops/nn/nn_ops.cpp" "src/CMakeFiles/igc.dir/ops/nn/nn_ops.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ops/nn/nn_ops.cpp.o.d"
  "/root/repo/src/ops/nn/winograd.cpp" "src/CMakeFiles/igc.dir/ops/nn/winograd.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ops/nn/winograd.cpp.o.d"
  "/root/repo/src/ops/vision/nms.cpp" "src/CMakeFiles/igc.dir/ops/vision/nms.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ops/vision/nms.cpp.o.d"
  "/root/repo/src/ops/vision/prefix_sum.cpp" "src/CMakeFiles/igc.dir/ops/vision/prefix_sum.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ops/vision/prefix_sum.cpp.o.d"
  "/root/repo/src/ops/vision/roi_align.cpp" "src/CMakeFiles/igc.dir/ops/vision/roi_align.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ops/vision/roi_align.cpp.o.d"
  "/root/repo/src/ops/vision/segmented_sort.cpp" "src/CMakeFiles/igc.dir/ops/vision/segmented_sort.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ops/vision/segmented_sort.cpp.o.d"
  "/root/repo/src/ops/vision/yolo.cpp" "src/CMakeFiles/igc.dir/ops/vision/yolo.cpp.o" "gcc" "src/CMakeFiles/igc.dir/ops/vision/yolo.cpp.o.d"
  "/root/repo/src/sim/device_spec.cpp" "src/CMakeFiles/igc.dir/sim/device_spec.cpp.o" "gcc" "src/CMakeFiles/igc.dir/sim/device_spec.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/igc.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/igc.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/timing_model.cpp" "src/CMakeFiles/igc.dir/sim/timing_model.cpp.o" "gcc" "src/CMakeFiles/igc.dir/sim/timing_model.cpp.o.d"
  "/root/repo/src/tensor/layout.cpp" "src/CMakeFiles/igc.dir/tensor/layout.cpp.o" "gcc" "src/CMakeFiles/igc.dir/tensor/layout.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/igc.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/igc.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/tune/config.cpp" "src/CMakeFiles/igc.dir/tune/config.cpp.o" "gcc" "src/CMakeFiles/igc.dir/tune/config.cpp.o.d"
  "/root/repo/src/tune/conv_tuner.cpp" "src/CMakeFiles/igc.dir/tune/conv_tuner.cpp.o" "gcc" "src/CMakeFiles/igc.dir/tune/conv_tuner.cpp.o.d"
  "/root/repo/src/tune/cost_model.cpp" "src/CMakeFiles/igc.dir/tune/cost_model.cpp.o" "gcc" "src/CMakeFiles/igc.dir/tune/cost_model.cpp.o.d"
  "/root/repo/src/tune/tunedb.cpp" "src/CMakeFiles/igc.dir/tune/tunedb.cpp.o" "gcc" "src/CMakeFiles/igc.dir/tune/tunedb.cpp.o.d"
  "/root/repo/src/tune/tuner.cpp" "src/CMakeFiles/igc.dir/tune/tuner.cpp.o" "gcc" "src/CMakeFiles/igc.dir/tune/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
