# Empty dependencies file for test_graphtune.
# This may be replaced when dependencies are built.
