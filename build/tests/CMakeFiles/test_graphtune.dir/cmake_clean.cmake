file(REMOVE_RECURSE
  "CMakeFiles/test_graphtune.dir/test_graphtune.cpp.o"
  "CMakeFiles/test_graphtune.dir/test_graphtune.cpp.o.d"
  "test_graphtune"
  "test_graphtune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphtune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
