file(REMOVE_RECURSE
  "CMakeFiles/test_ir_kernels.dir/test_ir_kernels.cpp.o"
  "CMakeFiles/test_ir_kernels.dir/test_ir_kernels.cpp.o.d"
  "test_ir_kernels"
  "test_ir_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
