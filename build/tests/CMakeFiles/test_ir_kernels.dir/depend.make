# Empty dependencies file for test_ir_kernels.
# This may be replaced when dependencies are built.
