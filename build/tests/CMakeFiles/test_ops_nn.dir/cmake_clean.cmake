file(REMOVE_RECURSE
  "CMakeFiles/test_ops_nn.dir/test_ops_nn.cpp.o"
  "CMakeFiles/test_ops_nn.dir/test_ops_nn.cpp.o.d"
  "test_ops_nn"
  "test_ops_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
