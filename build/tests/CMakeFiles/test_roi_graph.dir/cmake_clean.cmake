file(REMOVE_RECURSE
  "CMakeFiles/test_roi_graph.dir/test_roi_graph.cpp.o"
  "CMakeFiles/test_roi_graph.dir/test_roi_graph.cpp.o.d"
  "test_roi_graph"
  "test_roi_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roi_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
