file(REMOVE_RECURSE
  "CMakeFiles/test_ops_vision.dir/test_ops_vision.cpp.o"
  "CMakeFiles/test_ops_vision.dir/test_ops_vision.cpp.o.d"
  "test_ops_vision"
  "test_ops_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ops_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
