# Empty compiler generated dependencies file for test_ops_vision.
# This may be replaced when dependencies are built.
