// Tests for the host JIT backend: the artifact cache (hit/miss accounting,
// concurrent compiles, corruption recovery, version invalidation) and the
// end-to-end guarantee that JIT and reference numerics are bit-identical
// across the model zoo, both dispatch modes, and arena on/off — with
// simulated latencies untouched.
//
// Every test that needs the host toolchain skips cleanly when none exists.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "codegen/jit.h"
#include "codegen/jit_lower.h"
#include "core/compiler.h"
#include "obs/metrics.h"
#include "sim/device_spec.h"

namespace igc {
namespace {

namespace fs = std::filesystem;
using codegen::jit::KernelCache;
using codegen::jit::KernelFn;
using codegen::jit::Module;
using codegen::jit::Toolchain;

#define SKIP_WITHOUT_TOOLCHAIN()                               \
  if (!Toolchain::host().available()) {                        \
    GTEST_SKIP() << "no host C++ toolchain ($CXX or c++)";     \
  }

/// A fresh private cache directory per test, removed on destruction.
struct TempCacheDir {
  fs::path path;
  TempCacheDir() {
    static int seq = 0;
    path = fs::temp_directory_path() /
           ("igc-jit-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(seq++));
    fs::create_directories(path);
  }
  ~TempCacheDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

int64_t counter_delta(const obs::MetricsSnapshot& before,
                      const obs::MetricsSnapshot& after,
                      const std::string& name) {
  auto get = [&](const obs::MetricsSnapshot& s) {
    auto it = s.counters.find(name);
    return it == s.counters.end() ? int64_t{0} : it->second;
  };
  return get(after) - get(before);
}

obs::MetricsSnapshot snap() { return obs::MetricsRegistry::global().snapshot(); }

/// A tiny valid kernel source; `tag` varies the content (and thus the cache
/// key) between tests sharing a directory.
std::string test_source(const std::string& tag) {
  return "// " + tag +
         "\nextern \"C\" void igc_test_fn(float* const* bufs, long long lo, "
         "long long hi) {\n  for (long long i = lo; i < hi; ++i) bufs[0][i] = "
         "static_cast<float>(i) * 2.0f;\n}\n";
}

void check_module_works(Module& m) {
  auto fn = reinterpret_cast<KernelFn>(m.symbol("igc_test_fn"));
  ASSERT_NE(fn, nullptr);
  float out[4] = {0, 0, 0, 0};
  float* bufs[1] = {out};
  fn(bufs, 1, 3);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 2.0f);
  EXPECT_EQ(out[2], 4.0f);
  EXPECT_EQ(out[3], 0.0f);
}

TEST(KernelCache, MissThenDiskHitAccounting) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir dir;
  const std::string src = test_source("miss-then-hit");

  auto s0 = snap();
  KernelCache cold(dir.path.string());
  std::string err;
  std::shared_ptr<Module> m1 = cold.load_or_compile(src, &err);
  ASSERT_NE(m1, nullptr) << err;
  check_module_works(*m1);
  auto s1 = snap();
  EXPECT_EQ(counter_delta(s0, s1, "jit.cache_misses"), 1);
  EXPECT_EQ(counter_delta(s0, s1, "jit.cache_hits"), 0);
  EXPECT_EQ(counter_delta(s0, s1, "jit.toolchain_invocations"), 1);

  // Same instance again: served from the in-process registry.
  std::shared_ptr<Module> m2 = cold.load_or_compile(src, &err);
  EXPECT_EQ(m2.get(), m1.get());
  auto s2 = snap();
  EXPECT_EQ(counter_delta(s1, s2, "jit.mem_hits"), 1);
  EXPECT_EQ(counter_delta(s1, s2, "jit.toolchain_invocations"), 0);

  // A fresh instance over the same directory (a new process, effectively):
  // disk hit, no toolchain.
  KernelCache warm(dir.path.string());
  std::shared_ptr<Module> m3 = warm.load_or_compile(src, &err);
  ASSERT_NE(m3, nullptr) << err;
  check_module_works(*m3);
  auto s3 = snap();
  EXPECT_EQ(counter_delta(s2, s3, "jit.cache_hits"), 1);
  EXPECT_EQ(counter_delta(s2, s3, "jit.cache_misses"), 0);
  EXPECT_EQ(counter_delta(s2, s3, "jit.toolchain_invocations"), 0);
}

TEST(KernelCache, ConcurrentCompilesOfSameKernelInvokeToolchainOnce) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir dir;
  const std::string src = test_source("concurrent");
  KernelCache cache(dir.path.string());

  auto s0 = snap();
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<Module>> modules(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::string err;
      modules[static_cast<size_t>(t)] = cache.load_or_compile(src, &err);
    });
  }
  for (auto& th : threads) th.join();
  auto s1 = snap();

  for (const auto& m : modules) {
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m.get(), modules[0].get());  // one shared module
  }
  EXPECT_EQ(counter_delta(s0, s1, "jit.toolchain_invocations"), 1);
  EXPECT_EQ(counter_delta(s0, s1, "jit.cache_misses"), 1);
}

TEST(KernelCache, TruncatedEntryIsRecompiled) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir dir;
  const std::string src = test_source("truncated");
  std::string err;
  {
    KernelCache first(dir.path.string());
    ASSERT_NE(first.load_or_compile(src, &err), nullptr) << err;
  }
  // Truncate the shared object behind the manifest's back.
  bool truncated = false;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    if (e.path().extension() == ".so") {
      std::ofstream(e.path(), std::ios::binary | std::ios::trunc) << "junk";
      truncated = true;
    }
  }
  ASSERT_TRUE(truncated);

  auto s0 = snap();
  KernelCache second(dir.path.string());
  std::shared_ptr<Module> m = second.load_or_compile(src, &err);
  ASSERT_NE(m, nullptr) << err;
  check_module_works(*m);
  auto s1 = snap();
  EXPECT_EQ(counter_delta(s0, s1, "jit.cache_misses"), 1);
  EXPECT_EQ(counter_delta(s0, s1, "jit.toolchain_invocations"), 1);
}

TEST(KernelCache, GarbageManifestIsRecompiled) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir dir;
  const std::string src = test_source("garbage-manifest");
  std::string err;
  {
    KernelCache first(dir.path.string());
    ASSERT_NE(first.load_or_compile(src, &err), nullptr) << err;
  }
  bool corrupted = false;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    if (e.path().extension() == ".manifest") {
      std::ofstream(e.path(), std::ios::trunc) << "not a manifest\x01\x02";
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);

  auto s0 = snap();
  KernelCache second(dir.path.string());
  std::shared_ptr<Module> m = second.load_or_compile(src, &err);
  ASSERT_NE(m, nullptr) << err;
  auto s1 = snap();
  EXPECT_EQ(counter_delta(s0, s1, "jit.toolchain_invocations"), 1);
}

TEST(KernelCache, VersionBumpInvalidatesEntries) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir dir;
  const std::string src = test_source("version-bump");
  std::string err;
  {
    KernelCache v1(dir.path.string(), /*version=*/1);
    ASSERT_NE(v1.load_or_compile(src, &err), nullptr) << err;
  }
  auto s0 = snap();
  KernelCache v2(dir.path.string(), /*version=*/2);
  std::shared_ptr<Module> m = v2.load_or_compile(src, &err);
  ASSERT_NE(m, nullptr) << err;
  auto s1 = snap();
  // The v1 artifact must not be matched: bumping the version recompiles.
  EXPECT_EQ(counter_delta(s0, s1, "jit.cache_hits"), 0);
  EXPECT_EQ(counter_delta(s0, s1, "jit.cache_misses"), 1);
  EXPECT_EQ(counter_delta(s0, s1, "jit.toolchain_invocations"), 1);

  // And the same version still disk-hits its own artifact.
  auto s2 = snap();
  KernelCache v1_again(dir.path.string(), /*version=*/1);
  ASSERT_NE(v1_again.load_or_compile(src, &err), nullptr) << err;
  auto s3 = snap();
  EXPECT_EQ(counter_delta(s2, s3, "jit.cache_hits"), 1);
  EXPECT_EQ(counter_delta(s2, s3, "jit.toolchain_invocations"), 0);
}

TEST(KernelCache, BrokenSourceFailsOnceAndIsRemembered) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir dir;
  KernelCache cache(dir.path.string());
  const std::string bad = "this is not C++ at all {{{";
  auto s0 = snap();
  std::string err;
  EXPECT_EQ(cache.load_or_compile(bad, &err), nullptr);
  EXPECT_FALSE(err.empty());
  std::string err2;
  EXPECT_EQ(cache.load_or_compile(bad, &err2), nullptr);
  EXPECT_FALSE(err2.empty());
  auto s1 = snap();
  EXPECT_EQ(counter_delta(s0, s1, "jit.toolchain_invocations"), 1);
  EXPECT_EQ(counter_delta(s0, s1, "jit.compile_errors"), 1);
}

// ---- end-to-end: JIT vs reference bit-identity --------------------------

CompileOptions jit_opts(const std::string& cache_dir) {
  CompileOptions o;
  o.tune_trials = 8;
  o.backend = Backend::kJit;
  o.kernel_cache_dir = cache_dir;
  return o;
}

void expect_bit_identical(const CompiledModel& cm) {
  ASSERT_TRUE(cm.jit_enabled()) << cm.jit_error();
  EXPECT_GT(cm.jit_nodes_covered(), 0);

  // Reference output and latency (sequential + wavefront).
  RunOptions interp;
  interp.backend = RunBackend::kInterp;
  const RunResult ref_seq = cm.run(interp);
  RunOptions interp_wave = interp;
  interp_wave.mode = graph::ExecMode::kWavefront;
  const RunResult ref_wave = cm.run(interp_wave);

  for (graph::ExecMode mode :
       {graph::ExecMode::kSequential, graph::ExecMode::kWavefront}) {
    for (bool arena : {false, true}) {
      RunOptions jit;
      jit.backend = RunBackend::kJit;
      jit.mode = mode;
      jit.use_arena = arena;
      const RunResult r = cm.run(jit);
      const RunResult& ref =
          mode == graph::ExecMode::kSequential ? ref_seq : ref_wave;
      EXPECT_EQ(r.output.max_abs_diff(ref_seq.output), 0.0f)
          << cm.model_name() << " mode=" << static_cast<int>(mode)
          << " arena=" << arena;
      // Simulated time is computed from charges, never from host numerics:
      // the JIT must not move it by a single bit.
      EXPECT_EQ(r.latency_ms, ref.latency_ms);
      EXPECT_EQ(r.serial_ms, ref.serial_ms);
      EXPECT_EQ(r.critical_path_ms, ref.critical_path_ms);
      EXPECT_EQ(r.counters.flops, ref.counters.flops);
      EXPECT_EQ(r.counters.dram_bytes, ref.counters.dram_bytes);
    }
  }
}

// The bit-identity tests use the default cache resolution ($IGC_KERNEL_CACHE
// or ~/.cache/igc-kernels) rather than a throwaway directory: their results
// do not depend on cold/warm state, and a persisted cache (CI restores one
// keyed on the compiler version) turns their module compiles into disk hits.
TEST(JitBitIdentity, InceptionV1) {
  SKIP_WITHOUT_TOOLCHAIN();
  Rng rng(11);
  const auto& plat = sim::platform(sim::PlatformId::kDeepLens);
  expect_bit_identical(compile(models::build_inception_v1(rng, 64, 1, 10),
                               plat, jit_opts("")));
}

TEST(JitBitIdentity, MobileNetDepthwise) {
  SKIP_WITHOUT_TOOLCHAIN();
  Rng rng(12);
  const auto& plat = sim::platform(sim::PlatformId::kAiSage);
  expect_bit_identical(compile(models::build_mobilenet(rng, 64, 1, 10), plat,
                               jit_opts("")));
}

TEST(JitBitIdentity, ResNet50Residual) {
  SKIP_WITHOUT_TOOLCHAIN();
  Rng rng(13);
  const auto& plat = sim::platform(sim::PlatformId::kJetsonNano);
  expect_bit_identical(compile(models::build_resnet50(rng, 64, 1, 10), plat,
                               jit_opts("")));
}

TEST(Jit, WarmCacheCompilesWithZeroToolchainInvocations) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir dir;
  const auto& plat = sim::platform(sim::PlatformId::kDeepLens);
  {
    Rng rng(21);
    CompiledModel cold = compile(models::build_mobilenet(rng, 64, 1, 10), plat,
                                 jit_opts(dir.path.string()));
    ASSERT_TRUE(cold.jit_enabled()) << cold.jit_error();
  }
  auto s0 = snap();
  Rng rng(21);
  CompiledModel warm = compile(models::build_mobilenet(rng, 64, 1, 10), plat,
                               jit_opts(dir.path.string()));
  ASSERT_TRUE(warm.jit_enabled()) << warm.jit_error();
  auto s1 = snap();
  // The acceptance criterion: a warm-cache compile() never runs the
  // toolchain — the module comes back from the cache registry.
  EXPECT_EQ(counter_delta(s0, s1, "jit.toolchain_invocations"), 0);
  EXPECT_EQ(counter_delta(s0, s1, "jit.cache_misses"), 0);
  EXPECT_GE(counter_delta(s0, s1, "jit.mem_hits") +
                counter_delta(s0, s1, "jit.cache_hits"),
            1);
}

TEST(Jit, DispatchesOnlyOnJitRuns) {
  SKIP_WITHOUT_TOOLCHAIN();
  TempCacheDir dir;
  Rng rng(22);
  const auto& plat = sim::platform(sim::PlatformId::kDeepLens);
  CompiledModel cm = compile(models::build_squeezenet(rng, 64, 1, 10), plat,
                             jit_opts(dir.path.string()));
  ASSERT_TRUE(cm.jit_enabled()) << cm.jit_error();

  auto s0 = snap();
  RunOptions jit;
  jit.backend = RunBackend::kJit;
  (void)cm.run(jit);
  auto s1 = snap();
  EXPECT_GT(counter_delta(s0, s1, "jit.dispatches"), 0);

  RunOptions interp;
  interp.backend = RunBackend::kInterp;
  (void)cm.run(interp);
  auto s2 = snap();
  EXPECT_EQ(counter_delta(s1, s2, "jit.dispatches"), 0);
}

TEST(Jit, InterpCompileCarriesNoModule) {
  Rng rng(23);
  const auto& plat = sim::platform(sim::PlatformId::kDeepLens);
  CompileOptions o;
  o.tune_trials = 8;  // backend defaults to kInterp
  CompiledModel cm = compile(models::build_squeezenet(rng, 64, 1, 10), plat, o);
  EXPECT_FALSE(cm.jit_enabled());
  EXPECT_EQ(cm.jit_kernels(), 0);
  // Asking for the JIT at run time on an interp-compiled model silently
  // runs the reference path.
  auto s0 = snap();
  RunOptions jit;
  jit.backend = RunBackend::kJit;
  const RunResult r = cm.run(jit);
  auto s1 = snap();
  EXPECT_EQ(counter_delta(s0, s1, "jit.dispatches"), 0);
  EXPECT_GT(r.latency_ms, 0.0);
}

}  // namespace
}  // namespace igc
