// Cross-module integration tests: the full pipeline (build -> optimize ->
// tune -> graph-tune -> execute) on every platform, database persistence
// across runs, cross-platform numerical agreement, and end-to-end invariants
// the benchmarks rely on.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "baselines/vendor.h"
#include "graph/executor.h"
#include "graph/memory_planner.h"
#include "graph/passes.h"
#include "graphtune/graph_tuner.h"
#include "models/models.h"
#include "sim/device_spec.h"
#include "tune/conv_tuner.h"

namespace igc {
namespace {

using graph::ExecOptions;
using graph::ExecResult;
using sim::PlatformId;

/// Full "ours" pipeline for one prebuilt model.
ExecResult full_pipeline(models::Model& m, const sim::Platform& plat,
                         tune::TuneDb& db, bool numerics,
                         uint64_t input_seed = 99) {
  graph::optimize(m.graph);
  tune::TuneOptions topts;
  topts.n_trials = 32;
  const auto layouts =
      graphtune::tune_graph_layouts(m.graph, plat.gpu, db, topts);
  ExecOptions opts;
  opts.compute_numerics = numerics;
  opts.db = &db;
  opts.conv_layout_block = layouts.layout_of_conv;
  Rng rng(input_seed);
  return graph::execute(m.graph, plat, opts, rng);
}

TEST(Integration, SmallModelAcrossAllPlatformsSameNumerics) {
  Tensor reference_out;
  for (auto id : {PlatformId::kDeepLens, PlatformId::kAiSage,
                  PlatformId::kJetsonNano}) {
    Rng rng(5);
    models::Model m = models::build_mobilenet(rng, 64, 1, 10);
    tune::TuneDb db;
    const ExecResult r =
        full_pipeline(m, sim::platform(id), db, /*numerics=*/true);
    ASSERT_EQ(r.output.shape(), Shape({1, 10}));
    if (!reference_out.defined()) {
      reference_out = r.output;
    } else {
      // The simulated device never changes the math, only the clock.
      EXPECT_LT(r.output.max_abs_diff(reference_out), 1e-5f)
          << "platform " << sim::platform(id).name;
    }
    EXPECT_GT(r.latency_ms, 0.0);
  }
}

TEST(Integration, TunedPipelineBeatsUntunedOnEveryPlatform) {
  for (auto id : {PlatformId::kDeepLens, PlatformId::kAiSage,
                  PlatformId::kJetsonNano}) {
    Rng rng(6);
    models::Model m = models::build_squeezenet(rng, 64, 1, 10);
    graph::optimize(m.graph);
    tune::TuneDb db;
    tune::TuneOptions topts;
    topts.n_trials = 32;
    const auto layouts =
        graphtune::tune_graph_layouts(m.graph, sim::platform(id).gpu, db, topts);
    ExecOptions untuned;
    untuned.compute_numerics = false;
    untuned.use_tuned_configs = false;
    ExecOptions tuned = untuned;
    tuned.use_tuned_configs = true;
    tuned.db = &db;
    tuned.conv_layout_block = layouts.layout_of_conv;
    Rng r1(1), r2(1);
    const double before =
        graph::execute(m.graph, sim::platform(id), untuned, r1).latency_ms;
    const double after =
        graph::execute(m.graph, sim::platform(id), tuned, r2).latency_ms;
    EXPECT_LT(after, before) << sim::platform(id).name;
  }
}

TEST(Integration, TuneDbPersistsAcrossProcessBoundary) {
  Rng rng(7);
  models::Model m = models::build_mobilenet(rng, 64, 1, 10);
  graph::optimize(m.graph);
  const auto& plat = sim::platform(PlatformId::kJetsonNano);
  tune::TuneDb db;
  tune::TuneOptions topts;
  topts.n_trials = 24;
  const auto layouts =
      graphtune::tune_graph_layouts(m.graph, plat.gpu, db, topts);
  const std::string path =
      (std::filesystem::temp_directory_path() / "igc_integration_db.txt")
          .string();
  db.save(path);

  // Reload and verify the executor produces the identical simulated time.
  const tune::TuneDb reloaded = tune::TuneDb::load(path);
  EXPECT_EQ(reloaded.size(), db.size());
  ExecOptions a, b;
  a.compute_numerics = b.compute_numerics = false;
  a.db = &db;
  b.db = &reloaded;
  a.conv_layout_block = b.conv_layout_block = layouts.layout_of_conv;
  Rng r1(3), r2(3);
  const double t1 = graph::execute(m.graph, plat, a, r1).latency_ms;
  const double t2 = graph::execute(m.graph, plat, b, r2).latency_ms;
  EXPECT_DOUBLE_EQ(t1, t2);
  std::remove(path.c_str());
}

TEST(Integration, GraphTunerNeverWorseThanAllNchwEndToEnd) {
  for (auto id : {PlatformId::kDeepLens, PlatformId::kJetsonNano}) {
    Rng rng(8);
    models::Model m = models::build_resnet50(rng, 64, 1, 10);
    graph::optimize(m.graph);
    tune::TuneDb db;
    tune::TuneOptions topts;
    topts.n_trials = 24;
    const auto layouts =
        graphtune::tune_graph_layouts(m.graph, sim::platform(id).gpu, db, topts);
    EXPECT_LE(layouts.tuned_ms, layouts.nchw_ms * 1.0001)
        << sim::platform(id).name;
  }
}

TEST(Integration, DetectionPipelineInvariantsOnAllPlatforms) {
  for (auto id : {PlatformId::kDeepLens, PlatformId::kAiSage,
                  PlatformId::kJetsonNano}) {
    Rng rng(9);
    models::Model m =
        models::build_ssd(rng, models::SsdBackbone::kMobileNet, 128);
    tune::TuneDb db;
    const ExecResult r =
        full_pipeline(m, sim::platform(id), db, /*numerics=*/false);
    // NMS output invariants: valid rows are prefix-compacted per batch and
    // scores are non-increasing.
    const float* o = r.output.data_f32();
    const int64_t n = r.output.shape()[1];
    bool seen_invalid = false;
    float prev_score = 2.0f;
    for (int64_t i = 0; i < n; ++i) {
      if (o[i * 6] < 0.0f) {
        seen_invalid = true;
        continue;
      }
      EXPECT_FALSE(seen_invalid) << "valid row after invalid at " << i;
      EXPECT_LE(o[i * 6 + 1], prev_score);
      prev_score = o[i * 6 + 1];
    }
    EXPECT_GT(r.vision_ms, 0.0);
  }
}

TEST(Integration, FallbackOverheadIsSmall) {
  // The Sec. 3.1.2 claim at test scale: moving NMS to the CPU changes
  // end-to-end latency by a small fraction only.
  const auto& plat = sim::platform(PlatformId::kDeepLens);
  tune::TuneDb db;
  auto run = [&](bool fallback) {
    Rng rng(10);
    models::Model m =
        models::build_ssd(rng, models::SsdBackbone::kMobileNet, 256);
    std::set<graph::OpKind> cpu_ops;
    if (fallback) cpu_ops = {graph::OpKind::kSsdDetection};
    graph::optimize(m.graph, cpu_ops);
    tune::TuneOptions topts;
    topts.n_trials = 24;
    const auto layouts =
        graphtune::tune_graph_layouts(m.graph, plat.gpu, db, topts);
    ExecOptions opts;
    opts.compute_numerics = false;
    opts.db = &db;
    opts.conv_layout_block = layouts.layout_of_conv;
    Rng r(11);
    return graph::execute(m.graph, plat, opts, r).latency_ms;
  };
  const double gpu_only = run(false);
  const double with_fb = run(true);
  EXPECT_LT(std::abs(with_fb - gpu_only) / gpu_only, 0.05);
}

TEST(Integration, MemoryPlannerShrinksRealModels) {
  Rng rng(12);
  models::Model m = models::build_resnet50(rng, 224);
  graph::optimize(m.graph);
  const graph::MemoryPlan plan = plan_memory(m.graph);
  // Buffer reuse must cut intermediate memory by a large factor on a deep
  // chain-dominated network.
  EXPECT_LT(plan.total_bytes() * 3, plan.unshared_bytes);
  EXPECT_GT(plan.buffer_bytes.size(), 1u);
}

TEST(Integration, BaselineAndOursAgreeOnModelCoverage) {
  Rng rng(13);
  auto zoo = models::build_all(rng, false);
  EXPECT_EQ(zoo.size(), 6u);
  int openvino_unsupported = 0;
  for (const auto& m : zoo) {
    const auto r = baselines::run_baseline(
        baselines::VendorLib::kOpenVino, m,
        sim::platform(PlatformId::kDeepLens));
    if (!r.supported) ++openvino_unsupported;
    // ACL and cuDNN support everything.
    EXPECT_TRUE(baselines::run_baseline(baselines::VendorLib::kAcl, m,
                                        sim::platform(PlatformId::kAiSage))
                    .supported);
    EXPECT_TRUE(baselines::run_baseline(baselines::VendorLib::kCudnnMxnet, m,
                                        sim::platform(PlatformId::kJetsonNano))
                    .supported);
  }
  EXPECT_EQ(openvino_unsupported, 3);  // the three detection models
}

TEST(Integration, BatchEntriesAreIndependent) {
  // Running a batch-2 model must compute, for batch entry 0, exactly what a
  // batch-1 run computes on the same input prefix (every operator treats
  // batch entries independently).
  Rng rng1(20);
  models::Model m2 = models::build_squeezenet(rng1, 64, /*batch=*/2, 10);
  Rng rng2(20);
  models::Model m1 = models::build_squeezenet(rng2, 64, /*batch=*/1, 10);
  graph::optimize(m2.graph);
  graph::optimize(m1.graph);
  ExecOptions opts;
  // The input node draws numel values from the rng in order, so batch 0 of
  // the batch-2 input equals the whole batch-1 input for the same seed.
  Rng in1(77), in2(77);
  const auto r2 = graph::execute(m2.graph, sim::platform(PlatformId::kDeepLens),
                                 opts, in1);
  const auto r1 = graph::execute(m1.graph, sim::platform(PlatformId::kDeepLens),
                                 opts, in2);
  ASSERT_EQ(r2.output.shape(), Shape({2, 10}));
  ASSERT_EQ(r1.output.shape(), Shape({1, 10}));
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(r2.output.data_f32()[i], r1.output.data_f32()[i], 1e-5f);
  }
  // Batch 2 costs more than batch 1 but less than 2x (better occupancy).
  EXPECT_GT(r2.latency_ms, r1.latency_ms);
  EXPECT_LT(r2.latency_ms, r1.latency_ms * 2.0);
}

TEST(Integration, EventTraceAccountsForTotalLatency) {
  Rng rng(14);
  models::Model m = models::build_squeezenet(rng, 64, 1, 10);
  tune::TuneDb db;
  const ExecResult r =
      full_pipeline(m, sim::platform(PlatformId::kAiSage), db, false);
  double sum = 0.0;
  for (const auto& e : r.events) sum += e.ms;
  EXPECT_NEAR(sum, r.latency_ms, 1e-6);
  EXPECT_NEAR(r.conv_ms + r.vision_ms + r.copy_ms + r.other_ms, r.latency_ms,
              1e-6);
}

}  // namespace
}  // namespace igc
