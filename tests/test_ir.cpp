// Unit tests for src/ir and src/codegen: expression semantics, the
// interpreter, conv2d lowering, and the OpenCL/CUDA printers.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "core/rng.h"
#include "ir/expr.h"
#include "ir/interp.h"
#include "ir/simplify.h"
#include "ops/nn/conv2d.h"
#include "sim/device_spec.h"

namespace igc {
namespace {

using namespace igc::ir;  // NOLINT

TEST(Expr, DtypePropagation) {
  auto i = add(imm(1), imm(2));
  EXPECT_EQ(i->dtype, DType::kInt32);
  auto f = add(imm(1), fimm(2.0));
  EXPECT_EQ(f->dtype, DType::kFloat32);
  auto cmp = lt(fimm(1.0), fimm(2.0));
  EXPECT_EQ(cmp->dtype, DType::kInt32);
}

TEST(Expr, BoundAxisClassification) {
  EXPECT_TRUE(is_bound(IterKind::kBlockX));
  EXPECT_TRUE(is_bound(IterKind::kThreadZ));
  EXPECT_FALSE(is_bound(IterKind::kSerial));
  EXPECT_FALSE(is_bound(IterKind::kUnrolled));
  EXPECT_FALSE(is_bound(IterKind::kVectorized));
}

TEST(LoweredKernel, GridAndBlockSizes) {
  LoweredKernel k;
  k.body = {make_for({"b", 10, IterKind::kBlockX},
                     {make_for({"t", 32, IterKind::kThreadX},
                               {make_comment("body")})})};
  EXPECT_EQ(k.grid_size(), 10);
  EXPECT_EQ(k.block_size(), 32);
}

/// A simple saxpy kernel exercises loop + load + store + locals end to end.
LoweredKernel make_saxpy(int64_t n, float alpha) {
  LoweredKernel k;
  k.name = "saxpy";
  k.params = {{"x", DType::kFloat32, n, false},
              {"y", DType::kFloat32, n, true}};
  auto i = var("i");
  auto body = make_store(
      "y", i, add(mul(fimm(alpha), load("x", i)), load("y", i)));
  k.body = {make_for({"i", n, IterKind::kBlockX}, {body})};
  return k;
}

TEST(Interp, SaxpyMatchesDirectComputation) {
  const int64_t n = 64;
  Rng rng(5);
  Tensor x = Tensor::random_uniform(Shape{n}, rng);
  Tensor y = Tensor::random_uniform(Shape{n}, rng);
  Tensor y_expected = y.clone();
  for (int64_t i = 0; i < n; ++i) {
    y_expected.data_f32()[i] += 2.5f * x.data_f32()[i];
  }
  interpret(make_saxpy(n, 2.5f), {{"x", x}, {"y", y}});
  EXPECT_LT(y.max_abs_diff(y_expected), 1e-6f);
}

TEST(Interp, SelectAndBoundsGuard) {
  // out[i] = i < 3 ? 1 : 0, via a select expression.
  LoweredKernel k;
  k.name = "sel";
  k.params = {{"out", DType::kFloat32, 8, true}};
  auto i = var("i");
  k.body = {make_for({"i", 8, IterKind::kSerial},
                     {make_store("out", i,
                                 select(lt(i, imm(3)), fimm(1.0), fimm(0.0)))})};
  Tensor out = Tensor::zeros(Shape{8});
  interpret(k, {{"out", out}});
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(out.data_f32()[j], j < 3 ? 1.0f : 0.0f);
  }
}

TEST(Interp, OutOfBoundsLoadThrows) {
  LoweredKernel k;
  k.name = "oob";
  k.params = {{"x", DType::kFloat32, 4, false},
              {"out", DType::kFloat32, 4, true}};
  k.body = {make_store("out", imm(0), load("x", imm(10)))};
  Tensor x = Tensor::zeros(Shape{4});
  Tensor out = Tensor::zeros(Shape{4});
  EXPECT_THROW(interpret(k, {{"x", x}, {"out", out}}), Error);
}

TEST(Interp, MissingBufferThrows) {
  LoweredKernel k = make_saxpy(4, 1.0f);
  Tensor x = Tensor::zeros(Shape{4});
  EXPECT_THROW(interpret(k, {{"x", x}}), Error);
}

TEST(Codegen, OpenClUsesOpenClIdioms) {
  const LoweredKernel k = make_saxpy(64, 1.0f);
  const std::string src = codegen::emit_opencl(k);
  EXPECT_NE(src.find("__kernel void saxpy"), std::string::npos);
  EXPECT_NE(src.find("__global"), std::string::npos);
  EXPECT_NE(src.find("get_group_id(0)"), std::string::npos);
  EXPECT_EQ(src.find("blockIdx"), std::string::npos);
}

TEST(Codegen, CudaUsesCudaIdioms) {
  const LoweredKernel k = make_saxpy(64, 1.0f);
  const std::string src = codegen::emit_cuda(k);
  EXPECT_NE(src.find("__global__ void saxpy"), std::string::npos);
  EXPECT_NE(src.find("blockIdx.x"), std::string::npos);
  EXPECT_EQ(src.find("get_group_id"), std::string::npos);
}

TEST(Codegen, IntelSubgroupPragmaOnlyWhenRequested) {
  const LoweredKernel k = make_saxpy(8, 1.0f);
  EXPECT_NE(codegen::emit_opencl(k, true).find("cl_intel_subgroups"),
            std::string::npos);
  EXPECT_EQ(codegen::emit_opencl(k, false).find("cl_intel_subgroups"),
            std::string::npos);
}

TEST(Codegen, DeviceDispatch) {
  const LoweredKernel k = make_saxpy(8, 1.0f);
  const auto& deeplens = sim::platform(sim::PlatformId::kDeepLens).gpu;
  const auto& nano = sim::platform(sim::PlatformId::kJetsonNano).gpu;
  const auto& mali = sim::platform(sim::PlatformId::kAiSage).gpu;
  EXPECT_NE(codegen::emit_for_device(k, deeplens).find("cl_intel_subgroups"),
            std::string::npos);
  EXPECT_NE(codegen::emit_for_device(k, nano).find("__global__"),
            std::string::npos);
  // Mali gets OpenCL without the Intel extension.
  const std::string mali_src = codegen::emit_for_device(k, mali);
  EXPECT_NE(mali_src.find("__kernel"), std::string::npos);
  EXPECT_EQ(mali_src.find("cl_intel_subgroups"), std::string::npos);
}

TEST(Codegen, BarrierMapsPerDialect) {
  LoweredKernel k;
  k.name = "b";
  k.params = {{"out", DType::kFloat32, 1, true}};
  k.body = {make_barrier(), make_store("out", imm(0), fimm(0.0))};
  EXPECT_NE(codegen::emit_opencl(k).find("barrier(CLK_LOCAL_MEM_FENCE)"),
            std::string::npos);
  EXPECT_NE(codegen::emit_cuda(k).find("__syncthreads()"), std::string::npos);
}

// The flagship unified-IR test: one lowered conv2d program, interpreted on
// the host, must match the operator library's reference convolution; the
// same program prints as both OpenCL and CUDA.
class ConvIrTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvIrTest, InterpretedConvMatchesReference) {
  const auto [ci, co, k] = GetParam();
  ops::Conv2dParams p;
  p.batch = 1;
  p.in_channels = ci;
  p.in_h = p.in_w = 8;
  p.out_channels = co;
  p.kernel_h = p.kernel_w = k;
  p.pad_h = p.pad_w = k / 2;

  tune::ScheduleConfig cfg;
  cfg.set("tile_oc", co >= 4 ? 4 : 1);
  cfg.set("tile_ow", 4);
  cfg.set("unroll", 2);

  Rng rng(11);
  Tensor input = Tensor::random_uniform(
      Shape{p.batch, p.in_channels, p.in_h, p.in_w}, rng);
  Tensor weight = Tensor::random_uniform(
      Shape{p.out_channels, p.in_channels, p.kernel_h, p.kernel_w}, rng);
  const Tensor expected = ops::conv2d_reference(input, weight, nullptr, p);

  const LoweredKernel kernel = ops::conv2d_build_ir(p, cfg);
  Tensor out = Tensor::zeros(expected.shape());
  interpret(kernel, {{"data", input}, {"weight", weight}, {"out", out}});
  EXPECT_LT(out.max_abs_diff(expected), 1e-4f);

  // And the very same IR prints in both dialects.
  EXPECT_NE(codegen::emit_opencl(kernel).find("__kernel"), std::string::npos);
  EXPECT_NE(codegen::emit_cuda(kernel).find("__global__"), std::string::npos);
}

TEST(Simplify, ConstantFoldingAndIdentities) {
  using namespace igc::ir;  // NOLINT
  // (x * 1) + 0 -> x
  auto x = var("x");
  EXPECT_EQ(simplify(add(mul(x, imm(1)), imm(0))).get(), x.get());
  // 2 + 3 -> 5
  auto folded = simplify(add(imm(2), imm(3)));
  EXPECT_EQ(folded->kind, ExprKind::kIntImm);
  EXPECT_EQ(folded->int_val, 5);
  // x * 0 -> 0
  EXPECT_EQ(simplify(mul(x, imm(0)))->int_val, 0);
  // x - 0 -> x; x / 1 -> x
  EXPECT_EQ(simplify(sub(x, imm(0))).get(), x.get());
  EXPECT_EQ(simplify(div(x, imm(1))).get(), x.get());
  // (1 && cond) -> cond
  auto cond = lt(x, imm(4));
  EXPECT_EQ(simplify(logical_and(imm(1), cond)).get(), cond.get());
  // select(1, a, b) -> a
  EXPECT_EQ(simplify(select(imm(1), x, imm(9))).get(), x.get());
}

TEST(Simplify, DivModByZeroNotFolded) {
  using namespace igc::ir;  // NOLINT
  auto e = simplify(div(imm(4), imm(0)));
  EXPECT_EQ(e->kind, ExprKind::kBinary);  // left for runtime to catch
}

TEST(Simplify, DeadIfBranchesDropped) {
  using namespace igc::ir;  // NOLINT
  auto store = make_store("out", imm(0), fimm(1.0));
  auto dead = make_if(imm(0), {store});
  auto live = make_if(imm(1), {store});
  auto outer = make_for({"i", 2, IterKind::kSerial}, {dead, live});
  auto s = simplify(outer);
  // The dead branch vanishes and the live one is spliced inline.
  ASSERT_EQ(s->body.size(), 1u);
  EXPECT_EQ(s->body[0]->kind, StmtKind::kStore);
}

TEST(Simplify, PreservesConvSemantics) {
  // The conv IR is simplified during lowering; interpreting it must still
  // match the reference (covered by ConvIrTest), and the printed code must
  // not contain trivial identities.
  ops::Conv2dParams p;
  p.in_channels = 2;
  p.in_h = p.in_w = 6;
  p.out_channels = 4;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  tune::ScheduleConfig cfg;
  cfg.set("tile_oc", 2);
  cfg.set("tile_ow", 2);
  cfg.set("unroll", 1);
  const std::string src = codegen::emit_cuda(ops::conv2d_build_ir(p, cfg));
  EXPECT_EQ(src.find("* 1)"), std::string::npos);
  EXPECT_EQ(src.find("+ 0)"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvIrTest,
                         ::testing::Values(std::make_tuple(3, 8, 3),
                                           std::make_tuple(4, 4, 1),
                                           std::make_tuple(8, 16, 3),
                                           std::make_tuple(1, 4, 5)));

}  // namespace
}  // namespace igc
