// Tests for the AutoTVM-style tuner: config spaces, the cost model, the
// search strategies, and the tuning database.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "ops/nn/conv2d.h"
#include "sim/device_spec.h"
#include "tune/config.h"
#include "tune/conv_tuner.h"
#include "tune/cost_model.h"
#include "tune/tunedb.h"
#include "tune/tuner.h"

namespace igc::tune {
namespace {

TEST(ConfigSpace, MixedRadixEnumeration) {
  ConfigSpace s;
  s.add_knob("a", {1, 2, 4});
  s.add_knob("b", {10, 20});
  EXPECT_EQ(s.size(), 6);
  // Every index decodes to a distinct config.
  std::set<std::string> seen;
  for (int64_t i = 0; i < s.size(); ++i) seen.insert(s.at(i).str());
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_THROW(s.at(6), Error);
  EXPECT_EQ(s.default_config().at("a"), 1);
  EXPECT_EQ(s.default_config().at("b"), 10);
}

TEST(ConfigSpace, RandomIsInSpace) {
  ConfigSpace s;
  s.add_knob("x", {3, 5, 7});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const int64_t v = s.random(rng).at("x");
    EXPECT_TRUE(v == 3 || v == 5 || v == 7);
  }
}

TEST(TileCandidates, DivisorsOnly) {
  EXPECT_EQ(tile_candidates(12), (std::vector<int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(tile_candidates(7), (std::vector<int64_t>{1, 7}));
  EXPECT_EQ(tile_candidates(13), (std::vector<int64_t>{1}));
  EXPECT_EQ(tile_candidates(64, 8), (std::vector<int64_t>{1, 2, 4, 8}));
}

TEST(ScheduleConfig, CanonicalStringAndParseRoundTrip) {
  ScheduleConfig c;
  c.set("vec", 8);
  c.set("tile_oc", 4);
  EXPECT_EQ(c.str(), "tile_oc=4;vec=8");
  const ScheduleConfig parsed = parse_config(c.str());
  EXPECT_EQ(parsed, c);
  EXPECT_EQ(c.get_or("missing", 7), 7);
  EXPECT_THROW(c.at("missing"), Error);
}

TEST(CostModel, LearnsAMonotoneFunction) {
  // y = 10 - f0 (smaller latency for bigger knob): the model must rank
  // correctly.
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int v = 0; v < 16; ++v) {
    xs.push_back({static_cast<double>(v), 1.0});
    ys.push_back(10.0 - 0.5 * v);
  }
  CostModel m;
  m.fit(xs, ys);
  EXPECT_TRUE(m.trained());
  EXPECT_GT(m.predict({1.0, 1.0}), m.predict({14.0, 1.0}));
  // Absolute accuracy is decent on the training set.
  EXPECT_NEAR(m.predict({8.0, 1.0}), 6.0, 1.0);
}

TEST(CostModel, HandlesConstantTarget) {
  std::vector<std::vector<double>> xs{{0.0}, {1.0}, {2.0}};
  std::vector<double> ys{5.0, 5.0, 5.0};
  CostModel m;
  m.fit(xs, ys);
  EXPECT_NEAR(m.predict({1.0}), 5.0, 1e-9);
}

ops::Conv2dParams resnet_conv() {
  ops::Conv2dParams p;
  p.in_channels = 64;
  p.out_channels = 64;
  p.in_h = p.in_w = 56;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  return p;
}

TEST(Tuner, NeverWorseThanDefaultAndImproves) {
  const auto& dev = sim::platform(sim::PlatformId::kJetsonNano).gpu;
  const auto p = resnet_conv();
  const ConfigSpace space = ops::conv2d_config_space(p, dev);
  const MeasureFn measure = [&](const ScheduleConfig& cfg) {
    return ops::conv2d_latency_ms(p, cfg, dev);
  };
  for (auto strategy : {SearchStrategy::kRandom,
                        SearchStrategy::kSimulatedAnnealing,
                        SearchStrategy::kModelGuided}) {
    TuneOptions opts;
    opts.strategy = strategy;
    opts.n_trials = 96;
    const TuneResult r = tune(space, measure, opts);
    EXPECT_LE(r.best_ms, r.default_ms);
    // The naive default schedule is far from optimal on every device.
    EXPECT_LT(r.best_ms * 2.0, r.default_ms)
        << "strategy " << static_cast<int>(strategy);
    EXPECT_EQ(r.trials, 96);
  }
}

TEST(Tuner, ModelGuidedBeatsOrMatchesRandomOnSmallBudget) {
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  const auto p = resnet_conv();
  const ConfigSpace space = ops::conv2d_config_space(p, dev);
  const MeasureFn measure = [&](const ScheduleConfig& cfg) {
    return ops::conv2d_latency_ms(p, cfg, dev);
  };
  TuneOptions opts;
  opts.n_trials = 64;
  opts.strategy = SearchStrategy::kModelGuided;
  const double guided = tune(space, measure, opts).best_ms;
  opts.strategy = SearchStrategy::kRandom;
  const double random = tune(space, measure, opts).best_ms;
  // Allow slack: both find decent configs; guided must not be much worse.
  EXPECT_LT(guided, random * 1.15);
}

TEST(Tuner, DeterministicForFixedSeed) {
  const auto& dev = sim::platform(sim::PlatformId::kAiSage).gpu;
  const auto p = resnet_conv();
  const ConfigSpace space = ops::conv2d_config_space(p, dev);
  const MeasureFn measure = [&](const ScheduleConfig& cfg) {
    return ops::conv2d_latency_ms(p, cfg, dev);
  };
  TuneOptions opts;
  opts.n_trials = 40;
  const TuneResult a = tune(space, measure, opts);
  const TuneResult b = tune(space, measure, opts);
  EXPECT_EQ(a.best_config, b.best_config);
  EXPECT_EQ(a.best_ms, b.best_ms);
}

TEST(TuneDb, PutGetAndKeying) {
  TuneDb db;
  TuneRecord rec;
  rec.config.set("vec", 8);
  rec.best_ms = 1.5;
  rec.default_ms = 9.0;
  const std::string key = TuneDb::make_key("devA", "conv_x", 4);
  db.put(key, rec);
  EXPECT_TRUE(db.contains(key));
  EXPECT_FALSE(db.contains(TuneDb::make_key("devA", "conv_x", 8)));
  auto got = db.get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->config.at("vec"), 8);
  EXPECT_DOUBLE_EQ(got->best_ms, 1.5);
}

TEST(TuneDb, SerializeRoundTrip) {
  TuneDb db;
  for (int i = 0; i < 5; ++i) {
    TuneRecord rec;
    rec.config.set("tile_oc", 1 << i);
    rec.config.set("vec", 4);
    rec.best_ms = 0.5 * (i + 1);
    rec.default_ms = 2.0 * (i + 1);
    db.put(TuneDb::make_key("dev", "wl" + std::to_string(i), 1), rec);
  }
  const TuneDb db2 = TuneDb::deserialize(db.serialize());
  EXPECT_EQ(db2.size(), 5u);
  auto got = db2.get(TuneDb::make_key("dev", "wl3", 1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->config.at("tile_oc"), 8);
  EXPECT_DOUBLE_EQ(got->default_ms, 8.0);
}

TEST(TuneDb, FileRoundTrip) {
  TuneDb db;
  TuneRecord rec;
  rec.config.set("vec", 2);
  rec.best_ms = 3.25;
  rec.default_ms = 7.5;
  db.put("k", rec);
  const std::string path =
      (std::filesystem::temp_directory_path() / "igc_tunedb_test.txt").string();
  db.save(path);
  const TuneDb loaded = TuneDb::load(path);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.get("k")->best_ms, 3.25);
  std::remove(path.c_str());
}

TEST(ConvTuner, CachesInDatabase) {
  const auto& dev = sim::platform(sim::PlatformId::kJetsonNano).gpu;
  const auto p = resnet_conv();
  TuneDb db;
  TuneOptions opts;
  opts.n_trials = 32;
  const TuneRecord r1 = tune_conv2d(p, dev, 1, db, opts);
  EXPECT_EQ(db.size(), 1u);
  const TuneRecord r2 = tune_conv2d(p, dev, 1, db, opts);  // cache hit
  EXPECT_EQ(db.size(), 1u);
  EXPECT_DOUBLE_EQ(r1.best_ms, r2.best_ms);
  // A different layout block is a separate entry.
  tune_conv2d(p, dev, 8, db, opts);
  EXPECT_EQ(db.size(), 2u);
}

TEST(ConvTuner, LookupFallsBackToManualSchedule) {
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  const auto p = resnet_conv();
  const ScheduleConfig cfg = lookup_or_default(p, dev, 1, nullptr);
  // The untuned fallback is the hand-written template.
  EXPECT_EQ(cfg, [&] {
    auto manual = ops::conv2d_manual_schedule(p, dev);
    manual.set("layout_block", 1);
    return manual;
  }());
  EXPECT_EQ(cfg.at("tile_oc"), 8);
  EXPECT_EQ(cfg.at("wg"), 256);
  EXPECT_EQ(cfg.at("use_subgroup"), 0);
}

TEST(ConvTuner, ManualScheduleRespectsDivisibility) {
  const auto& dev = sim::platform(sim::PlatformId::kAiSage).gpu;
  ops::Conv2dParams p;
  p.in_channels = 3;
  p.out_channels = 7;  // prime: only tile_oc=1 and 7 divide
  p.in_h = p.in_w = 10;
  const ScheduleConfig cfg = ops::conv2d_manual_schedule(p, dev);
  EXPECT_EQ(cfg.at("tile_oc"), 7);
  EXPECT_EQ(cfg.at("vec"), 4);  // capped at the device SIMD width
  // Depthwise: tile_oc degenerates to 1 (the template's blind spot).
  ops::Conv2dParams dw;
  dw.in_channels = dw.out_channels = 32;
  dw.groups = 32;
  dw.in_h = dw.in_w = 10;
  EXPECT_EQ(ops::conv2d_manual_schedule(dw, dev).at("tile_oc"), 1);
}

}  // namespace
}  // namespace igc::tune
