// Tests for the AutoTVM-style tuner: config spaces, the cost model, the
// search strategies, and the tuning database.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/rng.h"
#include "ops/nn/conv2d.h"
#include "sim/device_spec.h"
#include "tune/config.h"
#include "tune/conv_tuner.h"
#include "tune/cost_model.h"
#include "tune/journal.h"
#include "tune/tunedb.h"
#include "tune/tuner.h"

namespace igc::tune {
namespace {

TEST(ConfigSpace, MixedRadixEnumeration) {
  ConfigSpace s;
  s.add_knob("a", {1, 2, 4});
  s.add_knob("b", {10, 20});
  EXPECT_EQ(s.size(), 6);
  // Every index decodes to a distinct config.
  std::set<std::string> seen;
  for (int64_t i = 0; i < s.size(); ++i) seen.insert(s.at(i).str());
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_THROW(s.at(6), Error);
  EXPECT_EQ(s.default_config().at("a"), 1);
  EXPECT_EQ(s.default_config().at("b"), 10);
}

TEST(ConfigSpace, RandomIsInSpace) {
  ConfigSpace s;
  s.add_knob("x", {3, 5, 7});
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const int64_t v = s.random(rng).at("x");
    EXPECT_TRUE(v == 3 || v == 5 || v == 7);
  }
}

TEST(TileCandidates, DivisorsOnly) {
  EXPECT_EQ(tile_candidates(12), (std::vector<int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(tile_candidates(7), (std::vector<int64_t>{1, 7}));
  EXPECT_EQ(tile_candidates(13), (std::vector<int64_t>{1}));
  EXPECT_EQ(tile_candidates(64, 8), (std::vector<int64_t>{1, 2, 4, 8}));
}

TEST(ScheduleConfig, CanonicalStringAndParseRoundTrip) {
  ScheduleConfig c;
  c.set("vec", 8);
  c.set("tile_oc", 4);
  EXPECT_EQ(c.str(), "tile_oc=4;vec=8");
  const ScheduleConfig parsed = parse_config(c.str());
  EXPECT_EQ(parsed, c);
  EXPECT_EQ(c.get_or("missing", 7), 7);
  EXPECT_THROW(c.at("missing"), Error);
}

TEST(CostModel, LearnsAMonotoneFunction) {
  // y = 10 - f0 (smaller latency for bigger knob): the model must rank
  // correctly.
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int v = 0; v < 16; ++v) {
    xs.push_back({static_cast<double>(v), 1.0});
    ys.push_back(10.0 - 0.5 * v);
  }
  CostModel m;
  m.fit(xs, ys);
  EXPECT_TRUE(m.trained());
  EXPECT_GT(m.predict({1.0, 1.0}), m.predict({14.0, 1.0}));
  // Absolute accuracy is decent on the training set.
  EXPECT_NEAR(m.predict({8.0, 1.0}), 6.0, 1.0);
}

TEST(CostModel, HandlesConstantTarget) {
  std::vector<std::vector<double>> xs{{0.0}, {1.0}, {2.0}};
  std::vector<double> ys{5.0, 5.0, 5.0};
  CostModel m;
  m.fit(xs, ys);
  EXPECT_NEAR(m.predict({1.0}), 5.0, 1e-9);
}

ops::Conv2dParams resnet_conv() {
  ops::Conv2dParams p;
  p.in_channels = 64;
  p.out_channels = 64;
  p.in_h = p.in_w = 56;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  return p;
}

TEST(Tuner, NeverWorseThanDefaultAndImproves) {
  const auto& dev = sim::platform(sim::PlatformId::kJetsonNano).gpu;
  const auto p = resnet_conv();
  const ConfigSpace space = ops::conv2d_config_space(p, dev);
  const MeasureFn measure = [&](const ScheduleConfig& cfg) {
    return ops::conv2d_latency_ms(p, cfg, dev);
  };
  for (auto strategy : {SearchStrategy::kRandom,
                        SearchStrategy::kSimulatedAnnealing,
                        SearchStrategy::kModelGuided}) {
    TuneOptions opts;
    opts.strategy = strategy;
    opts.n_trials = 96;
    const TuneResult r = tune(space, measure, opts);
    EXPECT_LE(r.best_ms, r.default_ms);
    // The naive default schedule is far from optimal on every device.
    EXPECT_LT(r.best_ms * 2.0, r.default_ms)
        << "strategy " << static_cast<int>(strategy);
    EXPECT_EQ(r.trials, 96);
  }
}

TEST(Tuner, ModelGuidedBeatsOrMatchesRandomOnSmallBudget) {
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  const auto p = resnet_conv();
  const ConfigSpace space = ops::conv2d_config_space(p, dev);
  const MeasureFn measure = [&](const ScheduleConfig& cfg) {
    return ops::conv2d_latency_ms(p, cfg, dev);
  };
  TuneOptions opts;
  opts.n_trials = 64;
  opts.strategy = SearchStrategy::kModelGuided;
  const double guided = tune(space, measure, opts).best_ms;
  opts.strategy = SearchStrategy::kRandom;
  const double random = tune(space, measure, opts).best_ms;
  // Allow slack: both find decent configs; guided must not be much worse.
  EXPECT_LT(guided, random * 1.15);
}

TEST(Tuner, DeterministicForFixedSeed) {
  const auto& dev = sim::platform(sim::PlatformId::kAiSage).gpu;
  const auto p = resnet_conv();
  const ConfigSpace space = ops::conv2d_config_space(p, dev);
  const MeasureFn measure = [&](const ScheduleConfig& cfg) {
    return ops::conv2d_latency_ms(p, cfg, dev);
  };
  TuneOptions opts;
  opts.n_trials = 40;
  const TuneResult a = tune(space, measure, opts);
  const TuneResult b = tune(space, measure, opts);
  EXPECT_EQ(a.best_config, b.best_config);
  EXPECT_EQ(a.best_ms, b.best_ms);
}

TEST(TuneDb, PutGetAndKeying) {
  TuneDb db;
  TuneRecord rec;
  rec.config.set("vec", 8);
  rec.best_ms = 1.5;
  rec.default_ms = 9.0;
  const std::string key = TuneDb::make_key("devA", "conv_x", 4);
  db.put(key, rec);
  EXPECT_TRUE(db.contains(key));
  EXPECT_FALSE(db.contains(TuneDb::make_key("devA", "conv_x", 8)));
  auto got = db.get(key);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->config.at("vec"), 8);
  EXPECT_DOUBLE_EQ(got->best_ms, 1.5);
}

TEST(TuneDb, SerializeRoundTrip) {
  TuneDb db;
  for (int i = 0; i < 5; ++i) {
    TuneRecord rec;
    rec.config.set("tile_oc", 1 << i);
    rec.config.set("vec", 4);
    rec.best_ms = 0.5 * (i + 1);
    rec.default_ms = 2.0 * (i + 1);
    db.put(TuneDb::make_key("dev", "wl" + std::to_string(i), 1), rec);
  }
  const TuneDb db2 = TuneDb::deserialize(db.serialize());
  EXPECT_EQ(db2.size(), 5u);
  auto got = db2.get(TuneDb::make_key("dev", "wl3", 1));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->config.at("tile_oc"), 8);
  EXPECT_DOUBLE_EQ(got->default_ms, 8.0);
}

TEST(TuneDb, FileRoundTrip) {
  TuneDb db;
  TuneRecord rec;
  rec.config.set("vec", 2);
  rec.best_ms = 3.25;
  rec.default_ms = 7.5;
  db.put("k", rec);
  const std::string path =
      (std::filesystem::temp_directory_path() / "igc_tunedb_test.txt").string();
  db.save(path);
  const TuneDb loaded = TuneDb::load(path);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.get("k")->best_ms, 3.25);
  std::remove(path.c_str());
}

TEST(TuneDb, RejectsKeysAndKnobsThatWouldCorruptTheLineFormat) {
  TuneDb db;
  TuneRecord ok;
  ok.config.set("vec", 4);
  EXPECT_THROW(db.put("bad\tkey", ok), Error);
  EXPECT_THROW(db.put("bad\nkey", ok), Error);
  db.put("good key with spaces", ok);  // spaces are fine

  // Reserved characters in knob names are rejected at put() time, before
  // they can reach a file.
  for (const char* knob : {"a;b", "a=b", "a\tb", "a\nb"}) {
    TuneDb fresh;
    TuneRecord bad;
    bad.config.set(knob, 1);
    EXPECT_THROW(fresh.put("k", bad), Error) << knob;
  }
}

TEST(TuneDb, VersionedHeaderAndLegacyFiles) {
  TuneDb db;
  TuneRecord rec;
  rec.config.set("vec", 8);
  rec.best_ms = 1.0;
  rec.default_ms = 2.0;
  db.put("k", rec);
  const std::string text = db.serialize();
  EXPECT_EQ(text.rfind("# igc-tunedb v", 0), 0u);

  // Headerless v1 files still load; comment lines are tolerated.
  EXPECT_EQ(TuneDb::deserialize("k\t1\t2\tvec=8\n").size(), 1u);
  EXPECT_EQ(TuneDb::deserialize("# comment\nk\t1\t2\tvec=8\n").size(), 1u);
  // Files declaring a newer version are refused rather than misparsed.
  EXPECT_THROW(TuneDb::deserialize("# igc-tunedb v99\n"), Error);
  EXPECT_THROW(TuneDb::deserialize("# igc-tunedb vX\n"), Error);
  // Malformed rows are refused.
  EXPECT_THROW(TuneDb::deserialize("k\t1\t2\n"), Error);          // no config
  EXPECT_THROW(TuneDb::deserialize("k\tone\t2\tvec=8\n"), Error); // bad num
  EXPECT_THROW(TuneDb::deserialize("k\t1\t2\t=8\n"), Error);      // no knob
  EXPECT_THROW(TuneDb::deserialize("k\t1\t2\tvec=8z\n"), Error);  // bad value
}

TEST(TuneDb, FuzzedRecordsRoundTripExactly) {
  // Randomized keys (drawn from the printable-safe alphabet make_key
  // produces) and knob values round-trip through serialize/deserialize
  // bit-for-bit, including awkward doubles.
  Rng rng(0xf22d);
  const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
      "_-./:,()[]{}| @#!";
  TuneDb db;
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    std::string key;
    const size_t len = 1 + rng.next_below(40);
    for (size_t c = 0; c < len; ++c)
      key += alphabet[rng.next_below(alphabet.size())];
    key += "#" + std::to_string(i);  // ensure uniqueness
    TuneRecord rec;
    const int n_knobs = 1 + static_cast<int>(rng.next_below(6));
    for (int k = 0; k < n_knobs; ++k) {
      rec.config.set("knob_" + std::to_string(k),
                     static_cast<int64_t>(rng.next_below(1u << 30)) -
                         (1 << 29));
    }
    rec.best_ms = std::exp((rng.next_double() - 0.5) * 40.0);
    rec.default_ms = rec.best_ms * (1.0 + rng.next_double() * 9.0);
    db.put(key, rec);
    keys.push_back(key);
  }
  const TuneDb loaded = TuneDb::deserialize(db.serialize());
  ASSERT_EQ(loaded.size(), db.size());
  for (const std::string& key : keys) {
    const auto a = db.get(key);
    const auto b = loaded.get(key);
    ASSERT_TRUE(a && b) << key;
    EXPECT_EQ(a->config, b->config) << key;
    // serialize() prints doubles via operator<<; equality after one
    // round-trip is to printed precision.
    EXPECT_NEAR(a->best_ms, b->best_ms, a->best_ms * 1e-5) << key;
    EXPECT_NEAR(a->default_ms, b->default_ms, a->default_ms * 1e-5) << key;
  }
  // A second round-trip is exact: printing is stable.
  const TuneDb twice = TuneDb::deserialize(loaded.serialize());
  for (const std::string& key : keys) {
    EXPECT_EQ(twice.get(key)->best_ms, loaded.get(key)->best_ms) << key;
  }
}

// ----- tuning flight recorder ----------------------------------------------

TEST(TuneJournal, ReplaysEveryStrategyExactly) {
  const auto& dev = sim::platform(sim::PlatformId::kJetsonNano).gpu;
  const auto p = resnet_conv();
  const ConfigSpace space = ops::conv2d_config_space(p, dev);
  const MeasureFn measure = [&](const ScheduleConfig& cfg) {
    return ops::conv2d_latency_ms(p, cfg, dev);
  };
  for (auto strategy : {SearchStrategy::kRandom,
                        SearchStrategy::kSimulatedAnnealing,
                        SearchStrategy::kModelGuided}) {
    TuneJournal journal;
    TuneOptions opts;
    opts.strategy = strategy;
    opts.n_trials = 64;
    opts.journal = &journal;
    opts.journal_task = "test_task";
    const TuneResult r = tune(space, measure, opts);

    // One record per measurement; the first is the default-config anchor.
    ASSERT_EQ(journal.size(), static_cast<size_t>(r.trials));
    const auto trials = journal.task_trials("test_task");
    ASSERT_EQ(trials.size(), journal.size());
    EXPECT_EQ(trials.front().trial, 0);
    EXPECT_DOUBLE_EQ(trials.front().measured_ms, r.default_ms);
    EXPECT_EQ(trials.front().config, space.default_config().str());
    EXPECT_EQ(trials.front().strategy,
              std::string(strategy_name(strategy)));

    // best-so-far is monotone non-increasing and ends at the result.
    const std::vector<double> curve = journal.best_curve("test_task");
    for (size_t i = 1; i < curve.size(); ++i)
      EXPECT_LE(curve[i], curve[i - 1]);
    EXPECT_DOUBLE_EQ(curve.back(), r.best_ms);
    EXPECT_DOUBLE_EQ(journal.best_ms("test_task"), r.best_ms);
    const int to5 = journal.trials_to_within("test_task", 0.05);
    EXPECT_GE(to5, 1);
    EXPECT_LE(to5, r.trials);

    // JSONL round-trip replays the run bit-for-bit: the acceptance
    // criterion for the flight recorder.
    const TuneJournal replay = TuneJournal::from_jsonl(journal.jsonl());
    ASSERT_EQ(replay.size(), journal.size());
    EXPECT_EQ(replay.best_ms("test_task"), r.best_ms);
    const auto replayed = replay.task_trials("test_task");
    for (size_t i = 0; i < trials.size(); ++i) {
      EXPECT_EQ(replayed[i].config, trials[i].config);
      EXPECT_EQ(replayed[i].measured_ms, trials[i].measured_ms);
      EXPECT_EQ(replayed[i].predicted_ms, trials[i].predicted_ms);
      EXPECT_EQ(replayed[i].best_ms, trials[i].best_ms);
      EXPECT_EQ(replayed[i].round, trials[i].round);
    }

    if (strategy == SearchStrategy::kModelGuided) {
      // Model-ranked trials carry the cost model's prediction and a
      // positive round stamp.
      int predicted = 0, rounds = 0;
      for (const TuneTrial& t : trials) {
        if (t.predicted_ms >= 0.0) ++predicted;
        rounds = std::max(rounds, t.round);
      }
      EXPECT_GT(predicted, 0);
      EXPECT_GE(rounds, 1);
    } else {
      for (const TuneTrial& t : trials) EXPECT_LT(t.predicted_ms, 0.0);
    }
  }
}

TEST(TuneJournal, ConvTunerJournalsUnderTheDbKeyAndSavesToFile) {
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  const auto p = resnet_conv();
  TuneDb db;
  TuneJournal journal;
  TuneOptions opts;
  opts.n_trials = 32;
  opts.journal = &journal;
  tune_conv2d(p, dev, 1, db, opts);

  const std::string key = TuneDb::make_key(dev.name, p.workload_key(), 1);
  ASSERT_EQ(journal.tasks().size(), 1u);
  EXPECT_EQ(journal.tasks().front(), key);
  EXPECT_EQ(journal.task_trials(key).size(), journal.size());

  // Cache hits never re-journal.
  const size_t before = journal.size();
  tune_conv2d(p, dev, 1, db, opts);
  EXPECT_EQ(journal.size(), before);

  // File round-trip and the convergence report.
  const std::string path =
      (std::filesystem::temp_directory_path() / "igc_journal_test.jsonl")
          .string();
  ASSERT_TRUE(journal.save(path));
  const TuneJournal loaded = TuneJournal::load(path);
  EXPECT_EQ(loaded.size(), journal.size());
  EXPECT_EQ(loaded.best_ms(key), journal.best_ms(key));
  std::remove(path.c_str());

  const std::string report = journal.convergence_report();
  EXPECT_NE(report.find(key), std::string::npos);
}

TEST(TuneJournal, RejectsMalformedJsonl) {
  EXPECT_THROW(TuneJournal::from_jsonl("not json\n"), Error);
  EXPECT_THROW(TuneJournal::from_jsonl("{\"task\": \"t\"}\n"), Error);
  EXPECT_EQ(TuneJournal::from_jsonl("").size(), 0u);
}

TEST(ConvTuner, CachesInDatabase) {
  const auto& dev = sim::platform(sim::PlatformId::kJetsonNano).gpu;
  const auto p = resnet_conv();
  TuneDb db;
  TuneOptions opts;
  opts.n_trials = 32;
  const TuneRecord r1 = tune_conv2d(p, dev, 1, db, opts);
  EXPECT_EQ(db.size(), 1u);
  const TuneRecord r2 = tune_conv2d(p, dev, 1, db, opts);  // cache hit
  EXPECT_EQ(db.size(), 1u);
  EXPECT_DOUBLE_EQ(r1.best_ms, r2.best_ms);
  // A different layout block is a separate entry.
  tune_conv2d(p, dev, 8, db, opts);
  EXPECT_EQ(db.size(), 2u);
}

TEST(ConvTuner, LookupFallsBackToManualSchedule) {
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  const auto p = resnet_conv();
  const ScheduleConfig cfg = lookup_or_default(p, dev, 1, nullptr);
  // The untuned fallback is the hand-written template.
  EXPECT_EQ(cfg, [&] {
    auto manual = ops::conv2d_manual_schedule(p, dev);
    manual.set("layout_block", 1);
    return manual;
  }());
  EXPECT_EQ(cfg.at("tile_oc"), 8);
  EXPECT_EQ(cfg.at("wg"), 256);
  EXPECT_EQ(cfg.at("use_subgroup"), 0);
}

TEST(ConvTuner, ManualScheduleRespectsDivisibility) {
  const auto& dev = sim::platform(sim::PlatformId::kAiSage).gpu;
  ops::Conv2dParams p;
  p.in_channels = 3;
  p.out_channels = 7;  // prime: only tile_oc=1 and 7 divide
  p.in_h = p.in_w = 10;
  const ScheduleConfig cfg = ops::conv2d_manual_schedule(p, dev);
  EXPECT_EQ(cfg.at("tile_oc"), 7);
  EXPECT_EQ(cfg.at("vec"), 4);  // capped at the device SIMD width
  // Depthwise: tile_oc degenerates to 1 (the template's blind spot).
  ops::Conv2dParams dw;
  dw.in_channels = dw.out_channels = 32;
  dw.groups = 32;
  dw.in_h = dw.in_w = 10;
  EXPECT_EQ(ops::conv2d_manual_schedule(dw, dev).at("tile_oc"), 1);
}

}  // namespace
}  // namespace igc::tune
