// Tests for request-scoped tracing through the serving engine
// (src/obs/request_trace + the serve/obs wiring):
//
//   * FlightRecorder — tail-sampling policy (errors always retained, global
//     N-slowest survive the merge, deterministic head-sample), bounded
//     rings, deterministic snapshot order;
//   * ExemplarStore — per-bucket latest-wins exemplars, bucket lookup,
//     Prometheus exposition (`# {trace_id="..."}` after bucket lines) and
//     the /snapshot.json splice;
//   * ServingEngine timelines — with an injected (thread-safe) clock every
//     completed request records submit <= admit <= batch_formed <=
//     worker_start <= run <= finish with consistent batch/worker stamps;
//     shed and failed requests are ALWAYS retained; per-tenant
//     serve.tenant.<name>.* instruments move and ride the sampler series;
//   * /healthz + /debug endpoints — engine-backed liveness (200 while
//     serving, 503 after stop), /debug/requests, /debug/request/<id> with
//     strict id parsing, and the acceptance loop: scrape an exemplar trace
//     id from /metrics, fetch its timeline over HTTP, check the ordering;
//   * Chrome export — the per-request trace parses as JSON and carries the
//     serving-engine process with flow events tying the tracks together;
//   * concurrency — 4 scraper threads hammer /metrics + /series.json while
//     the engine completes requests (the TSan target for this feature).
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.h"
#include "core/error.h"
#include "core/rng.h"
#include "models/models.h"
#include "obs/http.h"
#include "obs/json.h"
#include "obs/latency_histogram.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/request_trace.h"
#include "obs/sampler.h"
#include "serve/engine.h"
#include "sim/device_spec.h"

namespace igc {
namespace {

using obs::ExemplarStore;
using obs::FlightRecorder;
using obs::RequestEvent;
using obs::RequestEventKind;
using obs::RequestStatus;
using obs::RequestTimeline;

// ----- FlightRecorder --------------------------------------------------------

RequestTimeline make_timeline(uint64_t id, RequestStatus status,
                              double e2e_ms) {
  RequestTimeline tl;
  tl.trace_id = id;
  tl.tenant = 0;
  tl.tenant_name = "t";
  tl.status = status;
  RequestEvent submit;
  submit.kind = RequestEventKind::kSubmit;
  submit.t_ms = 100.0;
  tl.add(submit);
  RequestEvent finish;
  finish.kind = status == RequestStatus::kShed ? RequestEventKind::kShed
                                               : RequestEventKind::kFinish;
  finish.t_ms = 100.0 + e2e_ms;
  tl.add(finish);
  return tl;
}

TEST(FlightRecorder, HeadSamplingIsAPureFunctionOfTheTraceId) {
  for (uint64_t id = 0; id < 256; ++id) {
    EXPECT_FALSE(FlightRecorder::head_sampled(id, 0.0));
    EXPECT_TRUE(FlightRecorder::head_sampled(id, 1.0));
    EXPECT_EQ(FlightRecorder::head_sampled(id, 0.3),
              FlightRecorder::head_sampled(id, 0.3));
  }
  // The sampled fraction tracks the rate (splitmix64 is well mixed; the
  // binomial sd at n=20000, p=0.3 is ~0.0032, so 0.02 never flakes).
  int hits = 0;
  const int n = 20000;
  for (uint64_t id = 1; id <= n; ++id) {
    hits += FlightRecorder::head_sampled(id, 0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(FlightRecorder, ErrorsAreAlwaysRetainedAndTheRingIsBounded) {
  FlightRecorder::Options opts;
  opts.num_shards = 2;
  opts.keep_errors = 4;
  opts.keep_slowest = 2;
  FlightRecorder rec(opts);

  // 10 shed requests through one shard: only the most recent 4 survive.
  for (uint64_t id = 1; id <= 10; ++id) {
    rec.offer(make_timeline(id, RequestStatus::kShed, 1.0), /*shard_hint=*/0);
  }
  EXPECT_EQ(rec.offered(), 10);
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (const RequestTimeline& tl : snap) {
    EXPECT_GE(tl.trace_id, 7u);  // ids 7..10
    EXPECT_EQ(tl.status, RequestStatus::kShed);
  }
  // Failed requests land in the same always-retained ring.
  rec.offer(make_timeline(99, RequestStatus::kFailed, 5.0), 1);
  EXPECT_TRUE(rec.find(99).has_value());
  EXPECT_EQ(rec.find(99)->status, RequestStatus::kFailed);
}

TEST(FlightRecorder, KeepsTheSlowestCompletionsAcrossTheMerge) {
  FlightRecorder::Options opts;
  opts.num_shards = 1;
  opts.keep_slowest = 3;
  opts.head_sample_rate = 0.0;  // tail-only
  FlightRecorder rec(opts);
  // e2e = id ms: ids 8, 9, 10 are the three slowest.
  for (uint64_t id = 1; id <= 10; ++id) {
    rec.offer(make_timeline(id, RequestStatus::kCompleted,
                            static_cast<double>(id)),
              0);
  }
  const auto snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].trace_id, 8u);  // snapshot sorts by trace id
  EXPECT_EQ(snap[1].trace_id, 9u);
  EXPECT_EQ(snap[2].trace_id, 10u);
  EXPECT_FALSE(rec.find(1).has_value());
  EXPECT_TRUE(rec.find(10).has_value());
}

TEST(FlightRecorder, HeadSampleRetainsNormalTrafficAtRateOne) {
  FlightRecorder::Options opts;
  opts.num_shards = 1;
  opts.keep_slowest = 2;
  opts.keep_head = 64;
  opts.head_sample_rate = 1.0;
  FlightRecorder rec(opts);
  for (uint64_t id = 1; id <= 20; ++id) {
    rec.offer(make_timeline(id, RequestStatus::kCompleted,
                            static_cast<double>(id)),
              0);
  }
  // Slowest set holds 2; every eviction fell through to the sample ring, so
  // nothing was lost at rate 1.
  EXPECT_EQ(rec.snapshot().size(), 20u);
}

// ----- ExemplarStore ---------------------------------------------------------

TEST(ExemplarStore, LatestObservationWinsPerBucket) {
  ExemplarStore ex;
  ex.record("serve.e2e_ms", 12.5, 7);
  ex.record("serve.e2e_ms", 12.6, 8);  // same log bucket: replaces id 7
  ex.record("serve.e2e_ms", 400.0, 9);
  const auto hit = ex.find("serve.e2e_ms", 12.5);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->trace_id, 8u);
  EXPECT_EQ(ex.find("serve.e2e_ms", 400.0)->trace_id, 9u);
  EXPECT_FALSE(ex.find("serve.e2e_ms", 1e6).has_value());
  EXPECT_FALSE(ex.find("serve.queue_wait_ms", 12.5).has_value());

  const obs::json::Value doc = obs::json::parse(ex.json());
  ASSERT_TRUE(doc.has("serve.e2e_ms"));
  EXPECT_EQ(doc.at("serve.e2e_ms").size(), 2u);
  EXPECT_EQ(doc.at("serve.e2e_ms").at(0).at("trace_id").as_int(), 8);
}

TEST(ExemplarStore, RendersIntoThePrometheusExposition) {
  obs::MetricsRegistry reg;
  reg.histogram("serve.e2e_ms").observe(12.5);
  ExemplarStore ex;
  ex.record("serve.e2e_ms", 12.5, 77);
  const std::string text = to_prometheus(reg.snapshot(), {}, &ex);
  EXPECT_NE(text.find("# {trace_id=\"77\"} 12.5"), std::string::npos) << text;
  // Without the store the exposition is exemplar-free (and byte-stable).
  EXPECT_EQ(to_prometheus(reg.snapshot(), {}).find("trace_id"),
            std::string::npos);
}

// ----- engine timelines ------------------------------------------------------

/// Small, untuned model (compiles in milliseconds; the layer under test is
/// the serving pipeline, not the executor).
CompiledModel compile_small() {
  Rng rng(0x5eed);
  CompileOptions copts;
  copts.skip_tuning = true;
  models::Model m = models::build_squeezenet(rng, 64, 1, 10);
  return compile(std::move(m), sim::platform(sim::PlatformId::kDeepLens),
                 copts);
}

serve::TenantSpec tenant_of(const std::string& name, const CompiledModel& cm) {
  serve::TenantSpec t;
  t.name = name;
  t.model = &cm;
  t.run.compute_numerics = false;
  t.run.use_arena = true;
  return t;
}

/// Thread-safe injected clock: a strictly increasing tick counter shared by
/// every engine thread, so event timestamps are totally ordered and the
/// test is deterministic under TSan.
std::function<double()> ticking_clock(std::shared_ptr<std::atomic<int64_t>> t) {
  return [t] { return static_cast<double>(t->fetch_add(1)) * 0.001; };
}

int index_of(const RequestTimeline& tl, RequestEventKind k) {
  for (size_t i = 0; i < tl.events.size(); ++i) {
    if (tl.events[i].kind == k) return static_cast<int>(i);
  }
  return -1;
}

TEST(RequestTrace, CompletedTimelinesAreOrderedAndFullyStamped) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.num_workers = 2;
  opts.queue.max_depth = 256;
  opts.queue.max_batch_size = 4;
  opts.queue.max_wait_ms = 0.0;
  opts.trace.enabled = true;
  opts.trace.head_sample_rate = 1.0;  // retain every completion
  opts.clock_ms = ticking_clock(std::make_shared<std::atomic<int64_t>>(0));
  serve::ServingEngine engine(opts);
  const int t0 = engine.add_tenant(tenant_of("a", cm));
  engine.start();

  const int n = 24;
  std::vector<std::future<serve::RequestOutcome>> futures;
  for (int i = 0; i < n; ++i) {
    serve::SubmitResult r = engine.submit(t0, static_cast<uint64_t>(i));
    ASSERT_TRUE(r.admitted());
    futures.push_back(std::move(r.outcome));
  }
  for (auto& f : futures) f.get();
  engine.stop();

  ASSERT_NE(engine.flight_recorder(), nullptr);
  const auto snap = engine.flight_recorder()->snapshot();
  ASSERT_EQ(snap.size(), static_cast<size_t>(n));
  EXPECT_EQ(engine.flight_recorder()->offered(), n);
  for (const RequestTimeline& tl : snap) {
    EXPECT_EQ(tl.status, RequestStatus::kCompleted);
    EXPECT_EQ(tl.tenant, t0);
    EXPECT_EQ(tl.tenant_name, "a");
    // The full lifecycle, in order, with a monotone clock.
    const int submit = index_of(tl, RequestEventKind::kSubmit);
    const int admit = index_of(tl, RequestEventKind::kAdmit);
    const int batch = index_of(tl, RequestEventKind::kBatchFormed);
    const int start = index_of(tl, RequestEventKind::kWorkerStart);
    const int run = index_of(tl, RequestEventKind::kRun);
    const int finish = index_of(tl, RequestEventKind::kFinish);
    ASSERT_EQ(submit, 0) << tl.json();
    ASSERT_LT(admit, batch);
    ASSERT_LT(batch, start);
    ASSERT_LT(start, run);
    ASSERT_LT(run, finish);
    ASSERT_EQ(finish, static_cast<int>(tl.events.size()) - 1);
    for (size_t i = 1; i < tl.events.size(); ++i) {
      EXPECT_LE(tl.events[i - 1].t_ms, tl.events[i].t_ms) << tl.json();
    }
    // Context stamps: admission depth, one batch id across the pipeline,
    // the executing worker, and the chosen ShapeVariant binding.
    EXPECT_GE(tl.events[static_cast<size_t>(admit)].queue_depth, 1);
    const RequestEvent& bf = tl.events[static_cast<size_t>(batch)];
    EXPECT_GE(bf.batch_id, 0);
    EXPECT_GE(bf.batch_size, 1);
    EXPECT_LE(bf.batch_size, 4);
    EXPECT_GE(bf.queue_depth, 0);
    const RequestEvent& ws = tl.events[static_cast<size_t>(start)];
    EXPECT_EQ(ws.batch_id, bf.batch_id);
    EXPECT_GE(ws.worker_id, 0);
    EXPECT_LT(ws.worker_id, opts.num_workers);
    const RequestEvent& re = tl.events[static_cast<size_t>(run)];
    EXPECT_EQ(re.batch_id, bf.batch_id);
    EXPECT_EQ(re.worker_id, ws.worker_id);
    EXPECT_GT(re.sim_latency_ms, 0.0);
    EXPECT_EQ(re.detail, "seed");  // the seed ShapeVariant binding
    EXPECT_GE(tl.e2e_ms(), 0.0);
  }
  // Exemplars recorded for both served histograms, pointing at real ids.
  ASSERT_NE(engine.exemplars(), nullptr);
  const auto ex = engine.exemplars()->snapshot();
  EXPECT_TRUE(ex.count("serve.e2e_ms"));
  EXPECT_TRUE(ex.count("serve.queue_wait_ms"));

  // Per-tenant breakouts conserve with the engine stats.
  const obs::MetricsSnapshot ms = reg.snapshot();
  EXPECT_EQ(ms.counters.at("serve.tenant.a.submitted"), n);
  EXPECT_EQ(ms.counters.at("serve.tenant.a.completed"), n);
  EXPECT_EQ(ms.counters.at("serve.tenant.a.failed"), 0);
  EXPECT_EQ(ms.histograms.at("serve.tenant.a.e2e_ms").count, n);
}

TEST(RequestTrace, ShedRequestsAreAlwaysRetained) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.num_workers = 1;
  opts.queue.max_depth = 8;  // shed watermark at 3/4 depth
  opts.queue.max_batch_size = 4;
  opts.queue.max_wait_ms = 0.0;
  opts.sim_pacing = 0.2;  // hold the worker so the queue backs up
  opts.trace.enabled = true;
  opts.trace.head_sample_rate = 0.0;  // refusals must survive tail-only
  serve::ServingEngine engine(opts);
  const int t0 = engine.add_tenant(tenant_of("a", cm));
  engine.start();

  // Flood with no pacing between submits: ids are sequential from 1, so
  // submit i (0-based) is trace id i+1.
  const int n = 120;
  std::vector<uint64_t> refused_ids;
  std::vector<std::future<serve::RequestOutcome>> futures;
  for (int i = 0; i < n; ++i) {
    serve::SubmitResult r = engine.submit(t0, static_cast<uint64_t>(i));
    if (r.admitted()) {
      futures.push_back(std::move(r.outcome));
    } else {
      refused_ids.push_back(static_cast<uint64_t>(i) + 1);
    }
  }
  engine.stop();
  for (auto& f : futures) f.get();

  const serve::EngineStats s = engine.stats();
  ASSERT_GT(s.shed + s.rejected_full, 0) << "flood did not saturate";
  ASSERT_EQ(static_cast<int64_t>(refused_ids.size()),
            s.shed + s.rejected_full);

  // Every refused request is in the recorder, with the refusal reason.
  for (uint64_t id : refused_ids) {
    const auto tl = engine.flight_recorder()->find(id);
    ASSERT_TRUE(tl.has_value()) << "trace id " << id << " not retained";
    EXPECT_TRUE(tl->status == RequestStatus::kShed ||
                tl->status == RequestStatus::kRejected);
    const RequestEvent& last = tl->events.back();
    EXPECT_TRUE(last.kind == RequestEventKind::kShed ||
                last.kind == RequestEventKind::kReject);
    EXPECT_FALSE(last.detail.empty());
    EXPECT_GE(last.queue_depth, 0);
  }
  // Per-tenant refusal accounting moved too.
  const obs::MetricsSnapshot ms = reg.snapshot();
  EXPECT_EQ(ms.counters.at("serve.tenant.a.shed") +
                ms.counters.at("serve.tenant.a.rejected"),
            s.shed + s.rejected_full);
}

TEST(RequestTrace, FailedRequestsAreAlwaysRetainedWithTheError) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.num_workers = 1;
  opts.queue.max_wait_ms = 0.0;
  opts.trace.enabled = true;
  serve::ServingEngine engine(opts);
  // A shape binding the model was not compiled for: run() throws in the
  // worker and the request's future carries the error.
  serve::TenantSpec bad = tenant_of("bad", cm);
  bad.run.use_arena = false;
  bad.run.batch = 99;
  const int t0 = engine.add_tenant(bad);
  engine.start();

  std::vector<std::future<serve::RequestOutcome>> futures;
  for (int i = 0; i < 3; ++i) {
    serve::SubmitResult r = engine.submit(t0, static_cast<uint64_t>(i));
    ASSERT_TRUE(r.admitted());
    futures.push_back(std::move(r.outcome));
  }
  engine.stop();
  for (auto& f : futures) EXPECT_THROW(f.get(), Error);

  EXPECT_EQ(engine.stats().failed, 3);
  const auto snap = engine.flight_recorder()->snapshot();
  ASSERT_EQ(snap.size(), 3u);
  for (const RequestTimeline& tl : snap) {
    EXPECT_EQ(tl.status, RequestStatus::kFailed);
    EXPECT_EQ(tl.events.back().kind, RequestEventKind::kFinish);
    EXPECT_FALSE(tl.events.back().detail.empty()) << "error text missing";
  }
  EXPECT_EQ(reg.snapshot().counters.at("serve.tenant.bad.failed"), 3);
}

TEST(RequestTrace, EngineValidatesHeadSampleRate) {
  serve::EngineOptions opts;
  opts.trace.enabled = true;
  opts.trace.head_sample_rate = 1.5;
  EXPECT_THROW(serve::ServingEngine{opts}, Error);
  opts.trace.head_sample_rate = -0.25;
  EXPECT_THROW(serve::ServingEngine{opts}, Error);
}

TEST(RequestTrace, TenantSeriesRideTheSampler) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.queue.max_wait_ms = 0.0;
  serve::ServingEngine engine(opts);
  const int t0 = engine.add_tenant(tenant_of("alpha", cm));
  engine.start();

  obs::TelemetrySampler::Options sopts;
  sopts.registry = &reg;
  int64_t fake_ms = 0;
  sopts.clock = [&fake_ms] { return fake_ms += 100; };
  obs::TelemetrySampler sampler(sopts);
  sampler.sample_now();
  engine.submit(t0, 1).outcome.get();
  sampler.sample_now();
  engine.stop();

  const std::string series = sampler.series_json();
  EXPECT_NE(series.find("serve.tenant.alpha.completed"), std::string::npos)
      << series;
  EXPECT_NE(series.find("serve.tenant.alpha.e2e_ms"), std::string::npos);
}

// ----- HTTP: /healthz, /debug, exemplar scrape ------------------------------

/// Blocking one-shot HTTP GET against 127.0.0.1:port; returns the raw
/// response (headers + body).
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to 127.0.0.1:" << port;
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: l\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string body_of(const std::string& response) {
  const size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : response.substr(sep + 4);
}

TEST(RequestTrace, DebugEndpointsAndExemplarScrapeEndToEnd) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.num_workers = 2;
  opts.queue.max_wait_ms = 0.0;
  opts.trace.enabled = true;
  opts.trace.head_sample_rate = 1.0;
  serve::ServingEngine engine(opts);
  const int t0 = engine.add_tenant(tenant_of("a", cm));
  engine.start();

  obs::MetricsHttpServer::Options hopts;
  hopts.port = 0;  // ephemeral
  hopts.registry = &reg;
  hopts.flight_recorder = engine.flight_recorder();
  hopts.exemplars = engine.exemplars();
  hopts.health = [&engine](bool* healthy) {
    const serve::EngineHealth h = engine.health();
    *healthy = h.healthy();
    return h.json();
  };
  obs::MetricsHttpServer server(hopts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;

  std::vector<std::future<serve::RequestOutcome>> futures;
  for (int i = 0; i < 12; ++i) {
    serve::SubmitResult r = engine.submit(t0, static_cast<uint64_t>(i));
    ASSERT_TRUE(r.admitted());
    futures.push_back(std::move(r.outcome));
  }
  for (auto& f : futures) f.get();

  // Engine is serving: the health body is the engine's liveness JSON.
  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  {
    const obs::json::Value h = obs::json::parse(body_of(health));
    EXPECT_TRUE(h.at("healthy").as_bool());
    EXPECT_TRUE(h.at("scheduler_alive").as_bool());
    EXPECT_TRUE(h.at("queue_open").as_bool());
    EXPECT_GT(h.at("workers").as_int(), 0);
  }

  // Acceptance loop: scrape an exemplar trace id out of the exposition...
  const std::string metrics = body_of(http_get(server.port(), "/metrics"));
  const size_t mark = metrics.find("# {trace_id=\"");
  ASSERT_NE(mark, std::string::npos) << metrics;
  const size_t id_start = mark + 13;
  const size_t id_end = metrics.find('"', id_start);
  const std::string id_text = metrics.substr(id_start, id_end - id_start);
  ASSERT_FALSE(id_text.empty());

  // ...then fetch that request's timeline over HTTP and check the ordering.
  const std::string tl_resp =
      http_get(server.port(), "/debug/request/" + id_text);
  ASSERT_NE(tl_resp.find("200 OK"), std::string::npos) << tl_resp;
  const obs::json::Value tl = obs::json::parse(body_of(tl_resp));
  EXPECT_EQ(std::to_string(tl.at("trace_id").as_int()), id_text);
  EXPECT_EQ(tl.at("status").as_string(), "completed");
  const auto& events = tl.at("events").as_array();
  ASSERT_GE(events.size(), 6u);
  EXPECT_EQ(events.front().at("event").as_string(), "submit");
  EXPECT_EQ(events[1].at("event").as_string(), "admit");
  EXPECT_EQ(events.back().at("event").as_string(), "finish");
  double prev = -1.0;
  for (const obs::json::Value& e : events) {
    const double t = e.at("t_ms").as_number();
    EXPECT_GE(t, prev) << body_of(tl_resp);
    prev = t;
  }

  // /debug/requests lists summaries, slowest first.
  const obs::json::Value all =
      obs::json::parse(body_of(http_get(server.port(), "/debug/requests")));
  ASSERT_GE(all.size(), 12u);
  double prev_e2e = 1e300;
  for (size_t i = 0; i < all.size(); ++i) {
    const double e2e = all.at(i).at("e2e_ms").as_number();
    EXPECT_LE(e2e, prev_e2e);
    prev_e2e = e2e;
  }

  // Strict id parsing: garbage and unknown ids both 404.
  EXPECT_NE(http_get(server.port(), "/debug/request/abc").find("404"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/debug/request/").find("404"),
            std::string::npos);
  EXPECT_NE(
      http_get(server.port(), "/debug/request/18446744073709551615000")
          .find("404"),
      std::string::npos);
  const std::string missing =
      http_get(server.port(), "/debug/request/999999999");
  EXPECT_NE(missing.find("404"), std::string::npos);
  EXPECT_NE(missing.find("not retained"), std::string::npos);

  // The snapshot endpoint carries the exemplar splice.
  const obs::json::Value snap =
      obs::json::parse(body_of(http_get(server.port(), "/snapshot.json")));
  ASSERT_TRUE(snap.has("exemplars"));
  EXPECT_TRUE(snap.at("exemplars").has("serve.e2e_ms"));

  // Stopping the engine flips the probe to 503 (the listener stays up —
  // that is the point: "process up" and "serving" are different answers).
  engine.stop();
  const std::string down = http_get(server.port(), "/healthz");
  EXPECT_NE(down.find("503"), std::string::npos) << down;
  EXPECT_FALSE(obs::json::parse(body_of(down)).at("healthy").as_bool());

  server.stop();
}

TEST(RequestTrace, HealthSnapshotTracksTheLifecycle) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  serve::ServingEngine engine(opts);
  engine.add_tenant(tenant_of("a", cm));

  serve::EngineHealth h = engine.health();
  EXPECT_FALSE(h.healthy());
  EXPECT_FALSE(h.serving);

  engine.start();
  h = engine.health();
  EXPECT_TRUE(h.healthy());
  EXPECT_TRUE(h.scheduler_alive);
  EXPECT_TRUE(h.queue_open);
  EXPECT_EQ(h.workers, 2);

  engine.stop();
  h = engine.health();
  EXPECT_FALSE(h.healthy());
  EXPECT_EQ(h.workers, 0);
  // The JSON probe body parses and agrees.
  const obs::json::Value doc = obs::json::parse(h.json());
  EXPECT_FALSE(doc.at("healthy").as_bool());
}

// ----- Chrome export ---------------------------------------------------------

TEST(RequestTrace, ChromeExportParsesWithFlowsAndTracks) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.queue.max_wait_ms = 0.0;
  opts.trace.enabled = true;
  opts.trace.head_sample_rate = 1.0;
  opts.clock_ms = ticking_clock(std::make_shared<std::atomic<int64_t>>(0));
  serve::ServingEngine engine(opts);
  const int t0 = engine.add_tenant(tenant_of("a", cm));
  engine.start();
  std::vector<std::future<serve::RequestOutcome>> futures;
  for (int i = 0; i < 6; ++i) {
    serve::SubmitResult r = engine.submit(t0, static_cast<uint64_t>(i));
    ASSERT_TRUE(r.admitted());
    futures.push_back(std::move(r.outcome));
  }
  for (auto& f : futures) f.get();
  engine.stop();

  const auto snap = engine.flight_recorder()->snapshot();
  ASSERT_FALSE(snap.empty());
  const std::string doc_text = obs::chrome_request_trace_json(snap);
  const obs::json::Value doc = obs::json::parse(doc_text);
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());
  int spans = 0, flow_starts = 0, flow_finishes = 0, metas = 0;
  for (const obs::json::Value& e : events) {
    const std::string& ph = e.at("ph").as_string();
    // The serving-engine trace owns pid 3 (executor traces use 1 and 2).
    EXPECT_EQ(e.at("pid").as_int(), 3);
    if (ph == "X") ++spans;
    if (ph == "s") ++flow_starts;
    if (ph == "f") ++flow_finishes;
    if (ph == "M") ++metas;
  }
  EXPECT_GE(metas, 3);  // process name + queue + batcher (+ workers)
  EXPECT_GE(spans, 6 * 3);  // queued / batched / run per request
  EXPECT_EQ(flow_starts, 6);
  EXPECT_EQ(flow_finishes, 6);

  const std::string path =
      testing::TempDir() + "request_trace_chrome_test.json";
  ASSERT_TRUE(obs::save_chrome_request_trace(path, snap));
  std::remove(path.c_str());
}

// ----- concurrency: scrapes racing the serving engine ------------------------

TEST(RequestTrace, ConcurrentScrapesWhileTheEngineServes) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.num_workers = 2;
  opts.queue.max_wait_ms = 0.5;
  opts.trace.enabled = true;
  opts.trace.head_sample_rate = 0.5;
  serve::ServingEngine engine(opts);
  const int t0 = engine.add_tenant(tenant_of("a", cm));
  engine.start();

  obs::TelemetrySampler::Options sopts;
  sopts.interval_ms = 2;
  sopts.registry = &reg;
  obs::TelemetrySampler sampler(sopts);
  sampler.start();

  obs::MetricsHttpServer::Options hopts;
  hopts.port = 0;
  hopts.registry = &reg;
  hopts.sampler = &sampler;
  hopts.flight_recorder = engine.flight_recorder();
  hopts.exemplars = engine.exemplars();
  hopts.health = [&engine](bool* healthy) {
    const serve::EngineHealth h = engine.health();
    *healthy = h.healthy();
    return h.json();
  };
  obs::MetricsHttpServer server(hopts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  const int port = server.port();

  // 4 scraper threads hammer every endpoint while the main thread drives
  // requests through the engine. Every response must be well-formed — and
  // the whole dance TSan-clean (this test carries the concurrency label).
  std::atomic<bool> scrape_ok{true};
  std::vector<std::thread> scrapers;
  for (int s = 0; s < 4; ++s) {
    scrapers.emplace_back([port, s, &scrape_ok] {
      const char* paths[] = {"/metrics", "/series.json", "/debug/requests",
                             "/healthz"};
      for (int i = 0; i < 25; ++i) {
        const std::string resp = http_get(port, paths[(s + i) % 4]);
        if (resp.find("HTTP/1.1 200 OK") != 0) scrape_ok = false;
        if (body_of(resp).empty()) scrape_ok = false;
      }
    });
  }
  std::vector<std::future<serve::RequestOutcome>> futures;
  for (int i = 0; i < 200; ++i) {
    serve::SubmitResult r = engine.submit(t0, static_cast<uint64_t>(i));
    if (r.admitted()) futures.push_back(std::move(r.outcome));
  }
  for (std::thread& t : scrapers) t.join();
  EXPECT_TRUE(scrape_ok) << "a scrape returned a malformed response";
  for (auto& f : futures) f.get();

  // One final scrape sees the serve family (and exemplars) in place.
  const std::string text = body_of(http_get(port, "/metrics"));
  EXPECT_NE(text.find("serve_submitted_total"), std::string::npos);
  EXPECT_NE(text.find("serve_tenant_a_completed_total"), std::string::npos);

  server.stop();
  sampler.stop();
  engine.stop();
}

}  // namespace
}  // namespace igc
