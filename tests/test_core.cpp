// Unit tests for src/core: error macros, shapes, rng, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/error.h"
#include "core/rng.h"
#include "core/shape.h"
#include "core/thread_pool.h"

namespace igc {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    IGC_CHECK(1 == 2) << "custom detail " << 42;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, ComparisonMacros) {
  EXPECT_NO_THROW(IGC_CHECK_EQ(3, 3));
  EXPECT_THROW(IGC_CHECK_EQ(3, 4), Error);
  EXPECT_THROW(IGC_CHECK_LT(4, 4), Error);
  EXPECT_NO_THROW(IGC_CHECK_LE(4, 4));
  EXPECT_THROW(IGC_CHECK_GT(1, 2), Error);
  EXPECT_NO_THROW(IGC_CHECK_GE(2, 2));
  EXPECT_THROW(IGC_CHECK_NE(5, 5), Error);
}

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.str(), "(2, 3, 4)");
}

TEST(Shape, Strides) {
  Shape s{2, 3, 4};
  auto st = s.strides();
  ASSERT_EQ(st.size(), 3u);
  EXPECT_EQ(st[0], 12);
  EXPECT_EQ(st[1], 4);
  EXPECT_EQ(st[2], 1);
}

TEST(Shape, EmptyShapeIsScalar) {
  Shape s;
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, EqualityAndBoundsChecks) {
  Shape a{2, 3};
  Shape b{2, 3};
  Shape c{3, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_THROW(a[2], Error);
  EXPECT_THROW(a[-1], Error);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t v = rng.next_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(99);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](int64_t i) {
                          if (i == 57) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, NestedCallsDegradeGracefully) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  // Using the global pool inside tasks of the global pool must not deadlock.
  ThreadPool::global().parallel_for(8, [&](int64_t) {
    ThreadPool::global().parallel_for(8, [&](int64_t) { count++; });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ZeroAndOneIterations) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&](int64_t) { calls++; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](int64_t) { calls++; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelForJoinsChunksBeforeReturning) {
  // Regression test: parallel_for used to signal completion before the last
  // chunk task had finished touching the call's stack frame, so a caller
  // could destroy the state (here: `data` and the synchronization itself)
  // while a worker was still using it. Many short calls with by-reference
  // captures make the stale-frame window wide enough to crash or trip TSan.
  ThreadPool pool(4);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<int> data(64, 0);
    pool.parallel_for(64, [&](int64_t i) { data[static_cast<size_t>(i)] = 1; });
    for (int v : data) ASSERT_EQ(v, 1);
  }
}

TEST(ThreadPool, ExceptionPathStillJoinsChunks) {
  // Same lifetime guarantee on the throwing path: after the rethrow no chunk
  // may still be running (the by-reference capture of `touched` would be a
  // use-after-scope otherwise).
  ThreadPool pool(4);
  for (int iter = 0; iter < 100; ++iter) {
    std::atomic<int> touched{0};
    EXPECT_THROW(pool.parallel_for(32,
                                   [&](int64_t i) {
                                     touched++;
                                     if (i % 8 == 0) throw Error("boom");
                                   }),
                 Error);
    EXPECT_GT(touched.load(), 0);
  }
}

TEST(TaskGroup, RunsAllTasksAndWaits) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    group.run([&] { count++; });
  }
  group.wait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_FALSE(group.failed());
}

TEST(TaskGroup, TasksMaySpawnTasks) {
  // The wavefront executor's dispatch pattern: a finishing node schedules
  // its newly-ready successors from inside its own task.
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> count{0};
  std::function<void(int)> spawn = [&](int depth) {
    group.run([&, depth] {
      count++;
      if (depth < 5) {
        spawn(depth + 1);
        spawn(depth + 1);
      }
    });
  };
  spawn(0);
  group.wait();
  EXPECT_EQ(count.load(), (1 << 6) - 1);  // full binary tree of depth 5
}

TEST(TaskGroup, WaitRethrowsAndFailedIsSticky) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    group.run([&, i] {
      ran++;
      if (i == 3) throw Error("task failed");
    });
  }
  EXPECT_THROW(group.wait(), Error);
  EXPECT_TRUE(group.failed());
  EXPECT_EQ(ran.load(), 16);  // an error does not cancel already-queued work
  EXPECT_NO_THROW(group.wait());  // the error is consumed by the first wait
}

TEST(TaskGroup, DestructorJoinsOutstandingTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 50; ++i) {
      group.run([&] { count++; });
    }
    // No wait(): the destructor must join so the capture of `count` stays
    // valid for every task.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, GlobalAndSchedulerAreDistinct) {
  EXPECT_NE(&ThreadPool::global(), &ThreadPool::scheduler());
  EXPECT_FALSE(ThreadPool::global().on_worker_thread());
  // A scheduler task sees itself on the scheduler pool but not the global
  // pool, which is what lets node tasks fan work out to global() safely.
  TaskGroup group(ThreadPool::scheduler());
  bool on_sched = false;
  bool on_global = true;
  group.run([&] {
    on_sched = ThreadPool::scheduler().on_worker_thread();
    on_global = ThreadPool::global().on_worker_thread();
  });
  group.wait();
  EXPECT_TRUE(on_sched);
  EXPECT_FALSE(on_global);
}

}  // namespace
}  // namespace igc
