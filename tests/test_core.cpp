// Unit tests for src/core: error macros, shapes, rng, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "core/error.h"
#include "core/rng.h"
#include "core/shape.h"
#include "core/thread_pool.h"

namespace igc {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    IGC_CHECK(1 == 2) << "custom detail " << 42;
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, ComparisonMacros) {
  EXPECT_NO_THROW(IGC_CHECK_EQ(3, 3));
  EXPECT_THROW(IGC_CHECK_EQ(3, 4), Error);
  EXPECT_THROW(IGC_CHECK_LT(4, 4), Error);
  EXPECT_NO_THROW(IGC_CHECK_LE(4, 4));
  EXPECT_THROW(IGC_CHECK_GT(1, 2), Error);
  EXPECT_NO_THROW(IGC_CHECK_GE(2, 2));
  EXPECT_THROW(IGC_CHECK_NE(5, 5), Error);
}

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.str(), "(2, 3, 4)");
}

TEST(Shape, Strides) {
  Shape s{2, 3, 4};
  auto st = s.strides();
  ASSERT_EQ(st.size(), 3u);
  EXPECT_EQ(st[0], 12);
  EXPECT_EQ(st[1], 4);
  EXPECT_EQ(st[2], 1);
}

TEST(Shape, EmptyShapeIsScalar) {
  Shape s;
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, EqualityAndBoundsChecks) {
  Shape a{2, 3};
  Shape b{2, 3};
  Shape c{3, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_THROW(a[2], Error);
  EXPECT_THROW(a[-1], Error);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t v = rng.next_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(99);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](int64_t i) {
                          if (i == 57) throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, NestedCallsDegradeGracefully) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  // Using the global pool inside tasks of the global pool must not deadlock.
  ThreadPool::global().parallel_for(8, [&](int64_t) {
    ThreadPool::global().parallel_for(8, [&](int64_t) { count++; });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, ZeroAndOneIterations) {
  ThreadPool pool(3);
  int calls = 0;
  pool.parallel_for(0, [&](int64_t) { calls++; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](int64_t) { calls++; });
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace igc
