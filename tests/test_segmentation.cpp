// Tests for transposed convolution and the FCN-8s segmentation model.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "graph/executor.h"
#include "graph/passes.h"
#include "models/models.h"
#include "ops/nn/conv2d.h"
#include "ops/nn/conv2d_transpose.h"
#include "sim/device_spec.h"

namespace igc::ops {
namespace {

TEST(Conv2dTranspose, ShapeArithmetic) {
  Conv2dTransposeParams p;
  p.in_h = p.in_w = 8;
  p.kernel = 4;
  p.stride = 2;
  p.pad = 1;
  EXPECT_EQ(p.out_h(), 16);
  p.kernel = 16;
  p.stride = 8;
  p.pad = 4;
  EXPECT_EQ(p.out_h(), 64);
}

TEST(Conv2dTranspose, Stride1IsCorrelationWithFullPad) {
  // k=1 s=1: a transposed conv is a plain per-pixel channel mix.
  Conv2dTransposeParams p;
  p.in_channels = 2;
  p.out_channels = 1;
  p.in_h = p.in_w = 3;
  p.kernel = 1;
  p.stride = 1;
  Tensor in = Tensor::from_vector(
      Shape{1, 2, 3, 3},
      {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 20, 30, 40, 50, 60, 70, 80, 90});
  Tensor w = Tensor::from_vector(Shape{2, 1, 1, 1}, {2.0f, 0.5f});
  Tensor out = conv2d_transpose_reference(in, w, nullptr, p);
  EXPECT_FLOAT_EQ(out.data_f32()[0], 1 * 2.0f + 10 * 0.5f);
  EXPECT_FLOAT_EQ(out.data_f32()[8], 9 * 2.0f + 90 * 0.5f);
}

TEST(Conv2dTranspose, ScatterStampHandComputed) {
  // One input pixel, k=2 s=2: the output is the 2x2 kernel scaled by it.
  Conv2dTransposeParams p;
  p.in_channels = 1;
  p.out_channels = 1;
  p.in_h = p.in_w = 1;
  p.kernel = 2;
  p.stride = 2;
  Tensor in = Tensor::full(Shape{1, 1, 1, 1}, 3.0f);
  Tensor w = Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor out = conv2d_transpose_reference(in, w, nullptr, p);
  EXPECT_EQ(out.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(out.data_f32()[0], 3.0f);
  EXPECT_FLOAT_EQ(out.data_f32()[3], 12.0f);
}

TEST(Conv2dTranspose, BilinearWeightsUpsampleConstantExactly) {
  // Bilinear 2x upsampling of a constant image must stay constant in the
  // interior (k=4, s=2, p=1, FCN-style).
  const int64_t c = 3;
  Conv2dTransposeParams p;
  p.in_channels = p.out_channels = c;
  p.in_h = p.in_w = 6;
  p.kernel = 4;
  p.stride = 2;
  p.pad = 1;
  Tensor in = Tensor::full(Shape{1, c, 6, 6}, 2.0f);
  Tensor w = bilinear_upsample_weights(c, 4);
  Tensor out = conv2d_transpose_reference(in, w, nullptr, p);
  EXPECT_EQ(out.shape(), Shape({1, c, 12, 12}));
  // Interior pixels (away from the border halo) keep the constant.
  for (int64_t ch = 0; ch < c; ++ch) {
    for (int64_t y = 2; y < 10; ++y) {
      for (int64_t x = 2; x < 10; ++x) {
        EXPECT_NEAR(out.at4(0, ch, y, x), 2.0f, 1e-5f);
      }
    }
  }
}

TEST(Conv2dTranspose, BilinearWeightsInterpolateLinearRamp) {
  // Upsampling a ramp f(x)=x with bilinear weights keeps it linear inside.
  Conv2dTransposeParams p;
  p.in_channels = p.out_channels = 1;
  p.in_h = p.in_w = 8;
  p.kernel = 4;
  p.stride = 2;
  p.pad = 1;
  Tensor in = Tensor::zeros(Shape{1, 1, 8, 8});
  for (int64_t y = 0; y < 8; ++y) {
    for (int64_t x = 0; x < 8; ++x) {
      in.at4(0, 0, y, x) = static_cast<float>(x);
    }
  }
  Tensor w = bilinear_upsample_weights(1, 4);
  Tensor out = conv2d_transpose_reference(in, w, nullptr, p);
  // Interior columns advance by 0.5 per output pixel.
  for (int64_t x = 4; x < 11; ++x) {
    const float delta = out.at4(0, 0, 8, x + 1) - out.at4(0, 0, 8, x);
    EXPECT_NEAR(delta, 0.5f, 1e-5f);
  }
}

TEST(Conv2dTranspose, CostModelSane) {
  Conv2dTransposeParams p;
  p.in_channels = 21;
  p.out_channels = 21;
  p.in_h = p.in_w = 28;
  p.kernel = 4;
  p.stride = 2;
  p.pad = 1;
  for (const auto& plat : sim::all_platforms()) {
    const auto k = conv2d_transpose_kernel_cost(p, plat.gpu);
    EXPECT_GT(k.flops, 0);
    EXPECT_GT(sim::estimate_latency_ms(plat.gpu, k), 0.0);
  }
}

}  // namespace
}  // namespace igc::ops

namespace igc::models {
namespace {

TEST(Fcn, StructureAndShapes) {
  Rng rng(1);
  Model m = build_fcn_resnet50(rng, 224, 1, 21);
  EXPECT_EQ(m.name, "FCN8s_ResNet50");
  // Full-resolution per-pixel logits.
  EXPECT_EQ(m.graph.node(m.graph.output()).out_shape, Shape({1, 21, 224, 224}));
  int deconvs = 0;
  for (const auto& n : m.graph.nodes()) {
    if (n.kind == graph::OpKind::kConv2dTranspose) ++deconvs;
  }
  EXPECT_EQ(deconvs, 3);  // 2x, 2x, 8x
  EXPECT_THROW(build_fcn_resnet50(rng, 100), Error);  // not 32-aligned
}

TEST(Fcn, ExecutesEndToEndOnSimulator) {
  Rng rng(2);
  Model m = build_fcn_resnet50(rng, 64, 1, 5);
  graph::optimize(m.graph);
  graph::ExecOptions opts;
  opts.compute_numerics = true;  // small input: full numerics
  Rng in_rng(3);
  const auto r = graph::execute(m.graph, sim::platform(sim::PlatformId::kAiSage),
                                opts, in_rng);
  EXPECT_EQ(r.output.shape(), Shape({1, 5, 64, 64}));
  EXPECT_GT(r.latency_ms, 0.0);
  // Logits are finite everywhere.
  for (float v : r.output.span_f32()) {
    EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace igc::models
