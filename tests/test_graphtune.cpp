// Tests for the graph tuner: layout candidates, transform costs, and DP
// optimality (exact against exhaustive enumeration on conv chains).
#include <gtest/gtest.h>

#include <limits>

#include "core/rng.h"
#include "graphtune/graph_tuner.h"
#include "tune/conv_tuner.h"

namespace igc::graphtune {
namespace {

using graph::Graph;

TEST(LayoutCandidates, RespectChannelDivisibility) {
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  ops::Conv2dParams p;
  p.in_channels = 24;
  p.out_channels = 48;
  p.in_h = p.in_w = 8;
  // 4 and 8 divide both; 16 divides neither.
  EXPECT_EQ(layout_candidates(p, dev), (std::vector<int>{1, 4, 8}));
  p.in_channels = 3;
  EXPECT_EQ(layout_candidates(p, dev), (std::vector<int>{1}));
}

TEST(LayoutCandidates, CappedBySimdWidth) {
  const auto& mali = sim::platform(sim::PlatformId::kAiSage).gpu;  // simd 4
  ops::Conv2dParams p;
  p.in_channels = 64;
  p.out_channels = 64;
  p.in_h = p.in_w = 8;
  const auto cands = layout_candidates(p, mali);
  for (int c : cands) EXPECT_LE(c, mali.simd_width * 2);
}

TEST(TransformCost, ZeroWhenEqualPositiveOtherwise) {
  const auto& dev = sim::platform(sim::PlatformId::kJetsonNano).gpu;
  EXPECT_EQ(transform_cost_ms(dev, 1000, 8, 8), 0.0);
  EXPECT_GT(transform_cost_ms(dev, 1000, 1, 8), 0.0);
  EXPECT_GT(transform_cost_ms(dev, 1 << 22, 1, 8),
            transform_cost_ms(dev, 1 << 10, 1, 8));
}

Graph conv_chain(Rng& rng, const std::vector<int64_t>& channels, int64_t hw) {
  Graph g;
  int x = g.add_input("data", Shape{1, channels[0], hw, hw});
  for (size_t i = 1; i < channels.size(); ++i) {
    ops::Conv2dParams p;
    p.in_channels = channels[i - 1];
    p.out_channels = channels[i];
    p.in_h = p.in_w = hw;
    p.kernel_h = p.kernel_w = 3;
    p.pad_h = p.pad_w = 1;
    x = g.add_conv2d("conv" + std::to_string(i), x, p,
                     Tensor::random_normal(
                         Shape{channels[i], channels[i - 1], 3, 3}, rng));
  }
  g.set_output(x);
  return g;
}

/// Exhaustive minimum over all per-conv layout assignments of a chain.
double exhaustive_chain_cost(const Graph& g, const sim::DeviceSpec& dev,
                             tune::TuneDb& db, const tune::TuneOptions& opts) {
  const auto convs = g.conv_node_ids();
  std::vector<std::vector<int>> cands;
  for (int id : convs) {
    cands.push_back(layout_candidates(g.node(id).conv, dev));
  }
  double best = std::numeric_limits<double>::infinity();
  std::vector<size_t> choice(cands.size(), 0);
  for (;;) {
    double cost = 0.0;
    for (size_t i = 0; i < convs.size(); ++i) {
      const int b = cands[i][choice[i]];
      cost += tune::tune_conv2d(g.node(convs[i]).conv, dev, b, db, opts).best_ms;
      if (i > 0) {
        const int pb = cands[i - 1][choice[i - 1]];
        cost += transform_cost_ms(
            dev, g.node(convs[i - 1]).out_shape.numel(), pb, b);
      }
    }
    // Final transform back to NCHW.
    cost += transform_cost_ms(dev, g.node(convs.back()).out_shape.numel(),
                              cands.back()[choice.back()], 1);
    best = std::min(best, cost);
    // Advance the mixed-radix counter.
    size_t i = 0;
    while (i < choice.size() && ++choice[i] == cands[i].size()) {
      choice[i] = 0;
      ++i;
    }
    if (i == choice.size()) break;
  }
  return best;
}

TEST(GraphTuner, DpMatchesExhaustiveOnChains) {
  Rng rng(21);
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  tune::TuneOptions opts;
  opts.n_trials = 24;
  for (const auto& channels :
       {std::vector<int64_t>{8, 16, 16}, std::vector<int64_t>{4, 8, 32, 16},
        std::vector<int64_t>{16, 16, 16, 16, 16}}) {
    Graph g = conv_chain(rng, channels, 14);
    tune::TuneDb db;
    const GraphTuneResult r = tune_graph_layouts(g, dev, db, opts);
    tune::TuneDb db2 = db;  // reuse tuned kernels for identical times
    const double exhaustive = exhaustive_chain_cost(g, dev, db2, opts);
    EXPECT_NEAR(r.tuned_ms, exhaustive, 1e-9)
        << "chain of " << channels.size() << " convs";
  }
}

TEST(GraphTuner, BlockedLayoutsChosenWhenProfitable) {
  Rng rng(22);
  // Deep chain of well-blocked convs: transforms amortize, blocked layouts
  // should win on at least some layers.
  Graph g = conv_chain(rng, {32, 64, 64, 64, 64, 64, 64, 32}, 28);
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  tune::TuneDb db;
  tune::TuneOptions opts;
  opts.n_trials = 48;
  const GraphTuneResult r = tune_graph_layouts(g, dev, db, opts);
  EXPECT_LE(r.tuned_ms, r.nchw_ms * 1.0001);
  int blocked = 0;
  for (const auto& [id, b] : r.layout_of_conv) {
    if (b > 1) ++blocked;
  }
  EXPECT_GT(blocked, 0);
}

TEST(GraphTuner, HandlesBranchyGraphs) {
  Rng rng(23);
  // Diamond: conv -> (conv, conv) -> add. The DP must produce a valid
  // assignment and a finite cost (the apportioning approximation).
  Graph g;
  const int in = g.add_input("data", Shape{1, 16, 14, 14});
  ops::Conv2dParams p;
  p.in_channels = 16;
  p.out_channels = 16;
  p.in_h = p.in_w = 14;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  auto w = [&] { return Tensor::random_normal(Shape{16, 16, 3, 3}, rng); };
  const int c0 = g.add_conv2d("c0", in, p, w());
  const int c1 = g.add_conv2d("c1", c0, p, w());
  const int c2 = g.add_conv2d("c2", c0, p, w());
  const int sum = g.add_add("sum", c1, c2);
  g.set_output(sum);
  const auto& dev = sim::platform(sim::PlatformId::kJetsonNano).gpu;
  tune::TuneDb db;
  tune::TuneOptions opts;
  opts.n_trials = 24;
  const GraphTuneResult r = tune_graph_layouts(g, dev, db, opts);
  EXPECT_EQ(r.layout_of_conv.size(), 3u);
  EXPECT_GT(r.tuned_ms, 0.0);
  EXPECT_TRUE(std::isfinite(r.tuned_ms));
}

TEST(GraphTuner, EmptyGraphNoConvs) {
  Graph g;
  const int in = g.add_input("data", Shape{1, 4, 4, 4});
  g.set_output(in);
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  tune::TuneDb db;
  const GraphTuneResult r = tune_graph_layouts(g, dev, db);
  EXPECT_TRUE(r.layout_of_conv.empty());
  EXPECT_EQ(r.tuned_ms, 0.0);
}

}  // namespace
}  // namespace igc::graphtune
