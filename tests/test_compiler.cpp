// Tests for the top-level compile/run facade.
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "sim/device_spec.h"

namespace igc {
namespace {

CompileOptions fast_opts() {
  CompileOptions o;
  o.tune_trials = 24;
  return o;
}

TEST(Compiler, CompileAndRunClassification) {
  Rng rng(1);
  const auto& plat = sim::platform(sim::PlatformId::kJetsonNano);
  CompiledModel cm =
      compile(models::build_squeezenet(rng, 64, 1, 10), plat, fast_opts());
  EXPECT_EQ(cm.model_name(), "SqueezeNet1.0");
  EXPECT_GT(cm.tune_db().size(), 0u);
  const RunResult r = cm.run();
  EXPECT_EQ(r.output.shape(), Shape({1, 10}));
  EXPECT_GT(r.latency_ms, 0.0);
  EXPECT_NEAR(r.conv_ms + r.vision_ms + r.copy_ms + r.other_ms, r.latency_ms,
              1e-6);
}

TEST(Compiler, RunIsDeterministicPerSeed) {
  Rng rng(2);
  const auto& plat = sim::platform(sim::PlatformId::kDeepLens);
  CompiledModel cm =
      compile(models::build_mobilenet(rng, 64, 1, 10), plat, fast_opts());
  const RunResult a = cm.run(7);
  const RunResult b = cm.run(7);
  EXPECT_EQ(a.output.max_abs_diff(b.output), 0.0f);
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
  const RunResult c = cm.run(8);
  EXPECT_GT(c.output.max_abs_diff(a.output), 0.0f);  // different input
}

TEST(Compiler, SkipTuningIsSlower) {
  Rng rng(3);
  const auto& plat = sim::platform(sim::PlatformId::kAiSage);
  CompileOptions tuned = fast_opts();
  CompileOptions untuned = fast_opts();
  untuned.skip_tuning = true;
  CompiledModel a =
      compile(models::build_squeezenet(rng, 64, 1, 10), plat, tuned);
  Rng rng2(3);
  CompiledModel b =
      compile(models::build_squeezenet(rng2, 64, 1, 10), plat, untuned);
  EXPECT_LT(a.run(1, false).latency_ms, b.run(1, false).latency_ms);
  EXPECT_EQ(b.tune_db().size(), 0u);
}

TEST(Compiler, WarmDatabaseSkipsSearch) {
  Rng rng(4);
  const auto& plat = sim::platform(sim::PlatformId::kJetsonNano);
  CompiledModel first =
      compile(models::build_mobilenet(rng, 64, 1, 10), plat, fast_opts());
  // Second compile warm-started from the first's records: identical results.
  CompileOptions warm = fast_opts();
  warm.warm_db = &first.tune_db();
  Rng rng2(4);
  CompiledModel second =
      compile(models::build_mobilenet(rng2, 64, 1, 10), plat, warm);
  EXPECT_DOUBLE_EQ(first.run(1, false).latency_ms,
                   second.run(1, false).latency_ms);
}

TEST(Compiler, CpuFallbackOptionPlacesOps) {
  Rng rng(5);
  const auto& plat = sim::platform(sim::PlatformId::kDeepLens);
  CompileOptions opts = fast_opts();
  opts.cpu_fallback_ops = {graph::OpKind::kSsdDetection};
  CompiledModel cm = compile(
      models::build_ssd(rng, models::SsdBackbone::kMobileNet, 128), plat, opts);
  EXPECT_GT(cm.pass_stats().cpu_nodes, 1);  // input + the detection head
  const RunResult r = cm.run(1, false);
  EXPECT_GT(r.copy_ms, 0.0);
  EXPECT_EQ(r.output.shape()[2], 6);
}

TEST(Compiler, GeneratedSourcesMatchPlatformDialect) {
  Rng rng(6);
  CompiledModel nano = compile(models::build_squeezenet(rng, 64, 1, 10),
                               sim::platform(sim::PlatformId::kJetsonNano),
                               fast_opts());
  const auto cuda_srcs = nano.generated_sources();
  EXPECT_GT(cuda_srcs.size(), 10u);
  for (const auto& [key, src] : cuda_srcs) {
    EXPECT_NE(src.find("__global__"), std::string::npos) << key;
  }
  Rng rng2(6);
  CompiledModel intel = compile(models::build_squeezenet(rng2, 64, 1, 10),
                                sim::platform(sim::PlatformId::kDeepLens),
                                fast_opts());
  for (const auto& [key, src] : intel.generated_sources()) {
    EXPECT_NE(src.find("__kernel"), std::string::npos) << key;
  }
}

TEST(Compiler, MemoryPlanAvailable) {
  Rng rng(7);
  CompiledModel cm = compile(models::build_mobilenet(rng, 64, 1, 10),
                             sim::platform(sim::PlatformId::kAiSage),
                             fast_opts());
  const graph::MemoryPlan plan = cm.memory_plan();
  EXPECT_GT(plan.buffer_bytes.size(), 0u);
  EXPECT_LT(plan.total_bytes(), plan.unshared_bytes);
}

}  // namespace
}  // namespace igc
