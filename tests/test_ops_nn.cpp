// Unit and property tests for the compute-intensive operator library.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "ops/nn/conv2d.h"
#include "ops/nn/depthwise.h"
#include "ops/nn/nn_ops.h"
#include "sim/device_spec.h"
#include "tune/tuner.h"

namespace igc::ops {
namespace {

using sim::PlatformId;

// ---- conv2d -------------------------------------------------------------

TEST(Conv2d, HandComputed1x1) {
  // 1x1 conv == per-pixel matmul. 2 in-channels, 1 out-channel.
  Conv2dParams p;
  p.in_channels = 2;
  p.in_h = p.in_w = 2;
  p.out_channels = 1;
  Tensor in = Tensor::from_vector(Shape{1, 2, 2, 2},
                                  {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor w = Tensor::from_vector(Shape{1, 2, 1, 1}, {10, 100});
  Tensor out = conv2d_reference(in, w, nullptr, p);
  EXPECT_FLOAT_EQ(out.data_f32()[0], 1 * 10 + 5 * 100);
  EXPECT_FLOAT_EQ(out.data_f32()[3], 4 * 10 + 8 * 100);
}

TEST(Conv2d, HandComputed3x3WithPadding) {
  Conv2dParams p;
  p.in_channels = 1;
  p.in_h = p.in_w = 3;
  p.out_channels = 1;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  Tensor in = Tensor::full(Shape{1, 1, 3, 3}, 1.0f);
  Tensor w = Tensor::full(Shape{1, 1, 3, 3}, 1.0f);
  Tensor out = conv2d_reference(in, w, nullptr, p);
  // Center sees all 9 ones; corners see 4.
  EXPECT_FLOAT_EQ(out.at4(0, 0, 1, 1), 9.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 4.0f);
}

TEST(Conv2d, BiasIsAdded) {
  Conv2dParams p;
  p.in_channels = 1;
  p.in_h = p.in_w = 1;
  p.out_channels = 2;
  Tensor in = Tensor::full(Shape{1, 1, 1, 1}, 3.0f);
  Tensor w = Tensor::from_vector(Shape{2, 1, 1, 1}, {1.0f, 2.0f});
  Tensor b = Tensor::from_vector(Shape{2}, {10.0f, 20.0f});
  Tensor out = conv2d_reference(in, w, &b, p);
  EXPECT_FLOAT_EQ(out.data_f32()[0], 13.0f);
  EXPECT_FLOAT_EQ(out.data_f32()[1], 26.0f);
}

TEST(Conv2d, StrideReducesOutput) {
  Conv2dParams p;
  p.in_channels = 1;
  p.in_h = p.in_w = 8;
  p.out_channels = 1;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  p.stride_h = p.stride_w = 2;
  EXPECT_EQ(p.out_h(), 4);
  EXPECT_EQ(p.out_w(), 4);
}

TEST(Conv2d, DepthwiseEachChannelIndependent) {
  Conv2dParams p;
  p.in_channels = 2;
  p.out_channels = 2;
  p.groups = 2;
  p.in_h = p.in_w = 2;
  EXPECT_TRUE(p.is_depthwise());
  Tensor in = Tensor::from_vector(Shape{1, 2, 2, 2},
                                  {1, 1, 1, 1, 2, 2, 2, 2});
  Tensor w = Tensor::from_vector(Shape{2, 1, 1, 1}, {3.0f, 5.0f});
  Tensor out = conv2d_reference(in, w, nullptr, p);
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at4(0, 1, 0, 0), 10.0f);
}

TEST(Conv2d, GroupedMatchesBlockDiagonal) {
  // groups=2 conv equals two independent half-channel convs.
  Rng rng(17);
  Conv2dParams p;
  p.in_channels = 4;
  p.out_channels = 4;
  p.groups = 2;
  p.in_h = p.in_w = 5;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  Tensor in = Tensor::random_uniform(Shape{1, 4, 5, 5}, rng);
  Tensor w = Tensor::random_uniform(Shape{4, 2, 3, 3}, rng);
  Tensor out = conv2d_reference(in, w, nullptr, p);

  // Manually compute group 0 with a plain conv over channels 0..1.
  Conv2dParams ph = p;
  ph.in_channels = 2;
  ph.out_channels = 2;
  ph.groups = 1;
  Tensor in0(Shape{1, 2, 5, 5}, DType::kFloat32);
  std::copy(in.data_f32(), in.data_f32() + 50, in0.data_f32());
  Tensor w0(Shape{2, 2, 3, 3}, DType::kFloat32);
  std::copy(w.data_f32(), w.data_f32() + 36, w0.data_f32());
  Tensor out0 = conv2d_reference(in0, w0, nullptr, ph);
  for (int64_t i = 0; i < out0.numel(); ++i) {
    EXPECT_NEAR(out.data_f32()[i], out0.data_f32()[i], 1e-5f);
  }
}

TEST(Conv2d, FlopCount) {
  Conv2dParams p;
  p.in_channels = 16;
  p.in_h = p.in_w = 10;
  p.out_channels = 32;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  // 2 * N*CO*OH*OW*CI*KH*KW
  EXPECT_EQ(p.flops(), 2LL * 32 * 10 * 10 * 16 * 9);
}

TEST(Conv2d, WorkloadKeyIsStable) {
  Conv2dParams p;
  p.in_channels = 3;
  p.in_h = p.in_w = 224;
  p.out_channels = 64;
  p.kernel_h = p.kernel_w = 7;
  p.stride_h = p.stride_w = 2;
  p.pad_h = p.pad_w = 3;
  EXPECT_EQ(p.workload_key(),
            "conv2d_n1_ci3_h224_w224_co64_k7x7_s2x2_p3x3_g1");
}

TEST(Conv2dCost, ConfigSpaceIsNonTrivial) {
  Conv2dParams p;
  p.in_channels = 64;
  p.in_h = p.in_w = 56;
  p.out_channels = 64;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  const auto& dev = sim::platform(PlatformId::kDeepLens).gpu;
  auto space = conv2d_config_space(p, dev);
  EXPECT_GT(space.size(), 1000);
  // Intel exposes the subgroup knob; Mali must not.
  const auto& mali = sim::platform(PlatformId::kAiSage).gpu;
  auto mali_space = conv2d_config_space(p, mali);
  for (const auto& knob : mali_space.knobs()) {
    if (knob.name == "use_subgroup") {
      EXPECT_EQ(knob.choices, std::vector<int64_t>{0});
    }
  }
}

TEST(Conv2dCost, TilingAndVectorizationImprove) {
  Conv2dParams p;
  p.in_channels = 64;
  p.in_h = p.in_w = 56;
  p.out_channels = 64;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  const auto& dev = sim::platform(PlatformId::kJetsonNano).gpu;
  tune::ScheduleConfig naive;
  naive.set("tile_oc", 1);
  naive.set("tile_oh", 1);
  naive.set("tile_ow", 1);
  naive.set("unroll", 1);
  naive.set("vec", 1);
  naive.set("wg", 32);
  naive.set("use_subgroup", 0);
  tune::ScheduleConfig good = naive;
  good.set("tile_oc", 8);
  good.set("tile_ow", 4);
  good.set("unroll", 2);
  good.set("vec", 32);
  good.set("wg", 128);
  EXPECT_LT(conv2d_latency_ms(p, good, dev), conv2d_latency_ms(p, naive, dev));
}

TEST(Conv2dCost, SubgroupHelpsOnIntel) {
  Conv2dParams p;
  p.in_channels = 128;
  p.in_h = p.in_w = 28;
  p.out_channels = 128;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  const auto& dev = sim::platform(PlatformId::kDeepLens).gpu;
  tune::ScheduleConfig cfg;
  cfg.set("tile_oc", 8);
  cfg.set("tile_oh", 2);
  cfg.set("tile_ow", 4);
  cfg.set("unroll", 2);
  cfg.set("vec", 8);
  cfg.set("wg", 64);
  cfg.set("use_subgroup", 0);
  const double without = conv2d_latency_ms(p, cfg, dev);
  cfg.set("use_subgroup", 1);
  const double with_sg = conv2d_latency_ms(p, cfg, dev);
  EXPECT_LT(with_sg, without);
}

TEST(Conv2dCost, DepthwisePenalizedOnIntelOnly) {
  Conv2dParams p;
  p.in_channels = 64;
  p.out_channels = 64;
  p.groups = 64;
  p.in_h = p.in_w = 56;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  tune::ScheduleConfig cfg;
  cfg.set("tile_oc", 1);
  cfg.set("tile_oh", 2);
  cfg.set("tile_ow", 4);
  cfg.set("unroll", 2);
  cfg.set("vec", 4);
  cfg.set("wg", 64);
  cfg.set("use_subgroup", 0);
  const auto& intel = sim::platform(PlatformId::kDeepLens).gpu;
  const auto& mali = sim::platform(PlatformId::kAiSage).gpu;
  const auto intel_k = conv2d_kernel_cost(p, cfg, intel);
  const auto mali_k = conv2d_kernel_cost(p, cfg, mali);
  EXPECT_LT(intel_k.compute_efficiency, mali_k.compute_efficiency * 0.7);
}

// Property sweep: cost model stays sane across a grid of workloads/configs.
class ConvCostProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ConvCostProperty, EfficiencyBoundedAndPositiveLatency) {
  const auto [ci, co, hw, kk] = GetParam();
  Conv2dParams p;
  p.in_channels = ci;
  p.out_channels = co;
  p.in_h = p.in_w = hw;
  p.kernel_h = p.kernel_w = kk;
  p.pad_h = p.pad_w = kk / 2;
  for (const auto& plat : sim::all_platforms()) {
    auto space = conv2d_config_space(p, plat.gpu);
    Rng rng(ci * 1000 + co);
    for (int t = 0; t < 20; ++t) {
      const auto cfg = space.random(rng);
      const auto k = conv2d_kernel_cost(p, cfg, plat.gpu);
      EXPECT_GT(k.compute_efficiency, 0.0);
      EXPECT_LE(k.compute_efficiency, 1.0);
      EXPECT_GE(k.flops, p.flops());
      EXPECT_GT(k.work_items, 0);
      EXPECT_GT(conv2d_latency_ms(p, cfg, plat.gpu), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ConvCostProperty,
    ::testing::Values(std::make_tuple(16, 32, 28, 3),
                      std::make_tuple(64, 64, 56, 1),
                      std::make_tuple(3, 32, 112, 3),
                      std::make_tuple(256, 256, 14, 3),
                      std::make_tuple(512, 512, 7, 3)));

// ---- specialized depthwise template ---------------------------------------

TEST(DepthwiseTemplate, ApplicabilityIsDepthwiseOnly) {
  Conv2dParams dw;
  dw.in_channels = dw.out_channels = 32;
  dw.groups = 32;
  dw.in_h = dw.in_w = 14;
  dw.kernel_h = dw.kernel_w = 3;
  dw.pad_h = dw.pad_w = 1;
  EXPECT_TRUE(depthwise_template_applicable(dw));
  Conv2dParams regular = dw;
  regular.groups = 1;
  EXPECT_FALSE(depthwise_template_applicable(regular));
}

TEST(DepthwiseTemplate, BeatsGenericTemplateOnIntel) {
  // The future-work claim (Sec. 4.2): a specialized depthwise schedule
  // recovers the Intel loss caused by the generic template.
  Conv2dParams p;
  p.in_channels = p.out_channels = 128;
  p.groups = 128;
  p.in_h = p.in_w = 56;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  const auto& dev = sim::platform(PlatformId::kDeepLens).gpu;
  tune::TuneOptions opts;
  opts.n_trials = 64;
  const double generic =
      tune::tune(conv2d_config_space(p, dev),
                 [&](const tune::ScheduleConfig& c) {
                   return conv2d_latency_ms(p, c, dev);
                 },
                 opts)
          .best_ms;
  const double special =
      tune::tune(depthwise_config_space(p, dev),
                 [&](const tune::ScheduleConfig& c) {
                   return depthwise_latency_ms(p, c, dev);
                 },
                 opts)
          .best_ms;
  EXPECT_LT(special * 3.0, generic);
}

TEST(DepthwiseTemplate, MemoryBoundFloorRespected) {
  // No schedule can beat the DRAM floor of reading the input once and
  // writing the output once.
  Conv2dParams p;
  p.in_channels = p.out_channels = 64;
  p.groups = 64;
  p.in_h = p.in_w = 112;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  for (const auto& plat : sim::all_platforms()) {
    const double floor_ms =
        static_cast<double>(p.min_bytes()) /
        (plat.gpu.dram_bandwidth_gbps * 1e9) * 1e3;
    auto space = depthwise_config_space(p, plat.gpu);
    Rng rng(4);
    for (int t = 0; t < 12; ++t) {
      const double ms =
          depthwise_latency_ms(p, space.random(rng), plat.gpu);
      EXPECT_GT(ms, floor_ms * 0.5);
    }
  }
}

// ---- dense / pooling / bn / activations ----------------------------------

TEST(Dense, MatchesHandComputed) {
  DenseParams p;
  p.batch = 1;
  p.in_features = 3;
  p.out_features = 2;
  Tensor in = Tensor::from_vector(Shape{1, 3}, {1, 2, 3});
  Tensor w = Tensor::from_vector(Shape{2, 3}, {1, 0, 0, 0, 1, 1});
  Tensor b = Tensor::from_vector(Shape{2}, {0.5f, -0.5f});
  Tensor out = dense_reference(in, w, &b, p);
  EXPECT_FLOAT_EQ(out.data_f32()[0], 1.5f);
  EXPECT_FLOAT_EQ(out.data_f32()[1], 4.5f);
}

TEST(Pool2d, MaxAndAvg) {
  Pool2dParams p;
  p.kernel = 2;
  p.stride = 2;
  Tensor in = Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  p.kind = PoolKind::kMax;
  EXPECT_FLOAT_EQ(pool2d_reference(in, p).data_f32()[0], 4.0f);
  p.kind = PoolKind::kAvg;
  EXPECT_FLOAT_EQ(pool2d_reference(in, p).data_f32()[0], 2.5f);
}

TEST(Pool2d, PaddingExcludedFromAvgCount) {
  Pool2dParams p;
  p.kind = PoolKind::kAvg;
  p.kernel = 3;
  p.stride = 1;
  p.pad = 1;
  Tensor in = Tensor::full(Shape{1, 1, 3, 3}, 1.0f);
  Tensor out = pool2d_reference(in, p);
  // Corner window sees 4 valid ones; average must still be 1.
  EXPECT_FLOAT_EQ(out.at4(0, 0, 0, 0), 1.0f);
  p.count_include_pad = true;
  Tensor out2 = pool2d_reference(in, p);
  EXPECT_FLOAT_EQ(out2.at4(0, 0, 0, 0), 4.0f / 9.0f);
}

TEST(Pool2d, GlobalAvg) {
  Tensor in = Tensor::from_vector(Shape{1, 2, 1, 2}, {1, 3, 10, 20});
  Tensor out = global_avg_pool_reference(in);
  EXPECT_EQ(out.shape(), Shape({1, 2, 1, 1}));
  EXPECT_FLOAT_EQ(out.data_f32()[0], 2.0f);
  EXPECT_FLOAT_EQ(out.data_f32()[1], 15.0f);
}

TEST(BatchNorm, FoldingMatchesDirect) {
  Rng rng(23);
  Tensor x = Tensor::random_uniform(Shape{2, 4, 3, 3}, rng);
  Tensor gamma = Tensor::random_uniform(Shape{4}, rng, 0.5f, 1.5f);
  Tensor beta = Tensor::random_uniform(Shape{4}, rng);
  Tensor mean = Tensor::random_uniform(Shape{4}, rng);
  Tensor var = Tensor::random_uniform(Shape{4}, rng, 0.1f, 1.0f);
  BatchNormParams p;
  Tensor direct = batch_norm_reference(x, gamma, beta, mean, var, p);
  // Manual per-element check on one entry.
  const int64_t c = 2;
  const float inv_std = 1.0f / std::sqrt(var.data_f32()[c] + p.epsilon);
  const float expected =
      gamma.data_f32()[c] * (x.at4(1, c, 2, 1) - mean.data_f32()[c]) * inv_std +
      beta.data_f32()[c];
  EXPECT_NEAR(direct.at4(1, c, 2, 1), expected, 1e-5f);
}

TEST(Activations, ReluLeakySigmoid) {
  Tensor x = Tensor::from_vector(Shape{3}, {-2.0f, 0.0f, 3.0f});
  Tensor r = activation_reference(x, Activation::kRelu);
  EXPECT_FLOAT_EQ(r.data_f32()[0], 0.0f);
  EXPECT_FLOAT_EQ(r.data_f32()[2], 3.0f);
  Tensor l = activation_reference(x, Activation::kLeakyRelu, 0.1f);
  EXPECT_FLOAT_EQ(l.data_f32()[0], -0.2f);
  Tensor s = activation_reference(x, Activation::kSigmoid);
  EXPECT_NEAR(s.data_f32()[1], 0.5f, 1e-6f);
}

TEST(Elementwise, AddAndScaleShift) {
  Tensor a = Tensor::from_vector(Shape{1, 2, 1, 1}, {1, 2});
  Tensor b = Tensor::from_vector(Shape{1, 2, 1, 1}, {10, 20});
  Tensor s = add_reference(a, b);
  EXPECT_FLOAT_EQ(s.data_f32()[1], 22.0f);
  Tensor scale = Tensor::from_vector(Shape{2}, {2, 3});
  Tensor shift = Tensor::from_vector(Shape{2}, {1, -1});
  Tensor y = scale_shift_reference(a, scale, shift);
  EXPECT_FLOAT_EQ(y.data_f32()[0], 3.0f);
  EXPECT_FLOAT_EQ(y.data_f32()[1], 5.0f);
}

TEST(Elementwise, ConcatChannels) {
  Tensor a = Tensor::full(Shape{1, 1, 2, 2}, 1.0f);
  Tensor b = Tensor::full(Shape{1, 2, 2, 2}, 2.0f);
  Tensor c = concat_channels_reference({a, b});
  EXPECT_EQ(c.shape(), Shape({1, 3, 2, 2}));
  EXPECT_FLOAT_EQ(c.at4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c.at4(0, 1, 0, 0), 2.0f);
  EXPECT_FLOAT_EQ(c.at4(0, 2, 1, 1), 2.0f);
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  Rng rng(31);
  Tensor x = Tensor::random_uniform(Shape{5, 10}, rng, -3.0f, 3.0f);
  Tensor y = softmax_reference(x);
  for (int64_t r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (int64_t c = 0; c < 10; ++c) sum += y.data_f32()[r * 10 + c];
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Upsample, Nearest2x) {
  Tensor x = Tensor::from_vector(Shape{1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor y = upsample2x_reference(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 3, 3), 4.0f);
}

}  // namespace
}  // namespace igc::ops
