// Structural tests of the model zoo: conv counts, FLOP totals, output
// shapes, and small-size end-to-end execution.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "graph/executor.h"
#include "graph/passes.h"
#include "models/models.h"
#include "sim/device_spec.h"

namespace igc::models {
namespace {

TEST(ResNet50, StructureAndFlops) {
  Rng rng(1);
  Model m = build_resnet50(rng);
  EXPECT_EQ(m.name, "ResNet50_v1");
  // 1 stem + 16 blocks x 3 convs + 4 projection convs = 53 convs.
  EXPECT_EQ(m.graph.conv_node_ids().size(), 53u);
  // ~4.1 GMACs at 224x224 = ~8.2 GFLOPs with multiply-add counted as 2.
  const double gflops = static_cast<double>(m.graph.total_conv_flops()) / 1e9;
  EXPECT_NEAR(gflops, 8.2, 0.6);
  EXPECT_EQ(m.graph.node(m.graph.output()).out_shape, Shape({1, 1000}));
}

TEST(MobileNet, StructureAndFlops) {
  Rng rng(2);
  Model m = build_mobilenet(rng);
  // 1 stem + 13 x (depthwise + pointwise) = 27 convs.
  EXPECT_EQ(m.graph.conv_node_ids().size(), 27u);
  const double gflops = static_cast<double>(m.graph.total_conv_flops()) / 1e9;
  EXPECT_NEAR(gflops, 1.1, 0.2);  // 0.57 GMACs
  int depthwise = 0;
  for (int id : m.graph.conv_node_ids()) {
    if (m.graph.node(id).conv.is_depthwise()) ++depthwise;
  }
  EXPECT_EQ(depthwise, 13);
}

TEST(SqueezeNet, StructureAndFlops) {
  Rng rng(3);
  Model m = build_squeezenet(rng);
  // conv1 + 8 fires x 3 + conv10 = 26 convs.
  EXPECT_EQ(m.graph.conv_node_ids().size(), 26u);
  const double gflops = static_cast<double>(m.graph.total_conv_flops()) / 1e9;
  EXPECT_NEAR(gflops, 1.7, 0.6);
  EXPECT_EQ(m.graph.node(m.graph.output()).out_shape, Shape({1, 1000}));
}

TEST(Ssd, MobileNetBackboneStructure) {
  Rng rng(4);
  Model m = build_ssd(rng, SsdBackbone::kMobileNet, 512);
  EXPECT_EQ(m.name, "SSD_MobileNet1.0");
  const auto& out = m.graph.node(m.graph.output());
  EXPECT_EQ(out.kind, graph::OpKind::kSsdDetection);
  EXPECT_EQ(out.out_shape[2], 6);
  // Seven scales -> 14 head convs on top of the backbone.
  EXPECT_GT(m.graph.conv_node_ids().size(), 27u + 14u);
  // Anchor count matches the head shapes; SSD512 has ~24.5k anchors.
  EXPECT_EQ(out.anchors.shape()[0], out.out_shape[1]);
  EXPECT_GT(out.out_shape[1], 20000);
  EXPECT_LT(out.out_shape[1], 30000);
}

TEST(Ssd, ResNetBackboneAndSmallInput) {
  Rng rng(5);
  Model m = build_ssd(rng, SsdBackbone::kResNet50, 300);
  EXPECT_EQ(m.name, "SSD_ResNet50");
  m.graph.validate();
  const auto& out = m.graph.node(m.graph.output());
  EXPECT_EQ(out.anchors.shape()[0], out.out_shape[1]);
}

TEST(Yolov3, StructureAndHeads) {
  Rng rng(6);
  Model m = build_yolov3(rng, 512);
  int decodes = 0, nms = 0;
  for (const auto& n : m.graph.nodes()) {
    if (n.kind == graph::OpKind::kYoloDecode) ++decodes;
    if (n.kind == graph::OpKind::kBoxNms) ++nms;
  }
  EXPECT_EQ(decodes, 3);
  EXPECT_EQ(nms, 1);
  // Darknet-53 has 52 convs; heads add more.
  EXPECT_GT(m.graph.conv_node_ids().size(), 60u);
  // Anchor count: (16^2 + 32^2 + 64^2) * 3 at 512 input.
  EXPECT_EQ(m.graph.node(m.graph.output()).out_shape[1],
            3 * (16 * 16 + 32 * 32 + 64 * 64));
  EXPECT_THROW(build_yolov3(rng, 300), Error);  // not divisible by 32
}

TEST(Zoo, BuildAllBothInputRegimes) {
  Rng rng(7);
  const auto large = build_all(rng, false);
  EXPECT_EQ(large.size(), 6u);
  Rng rng2(8);
  const auto small = build_all(rng2, true);
  // Detection inputs shrink on the Mali platform (Table 2 note).
  EXPECT_EQ(small[3].graph.node(0).out_shape[2], 300);
  EXPECT_EQ(large[3].graph.node(0).out_shape[2], 512);
  EXPECT_EQ(small[5].graph.node(0).out_shape[2], 320);
}

TEST(Zoo, ClassificationModelsExecuteNumerically) {
  // Tiny input keeps the reference conv fast while touching every op kind.
  Rng rng(9);
  Model m = build_mobilenet(rng, /*image_size=*/64, 1, 10);
  graph::optimize(m.graph);
  graph::ExecOptions opts;
  Rng in_rng(10);
  const auto r = graph::execute(m.graph, sim::platform(sim::PlatformId::kDeepLens),
                                opts, in_rng);
  EXPECT_EQ(r.output.shape(), Shape({1, 10}));
  double sum = 0.0;
  for (float v : r.output.span_f32()) {
    EXPECT_GE(v, 0.0f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Zoo, DeterministicConstruction) {
  Rng a(42), b(42);
  Model ma = build_squeezenet(a);
  Model mb = build_squeezenet(b);
  ASSERT_EQ(ma.graph.num_nodes(), mb.graph.num_nodes());
  for (int i = 0; i < ma.graph.num_nodes(); ++i) {
    const auto& na = ma.graph.node(i);
    const auto& nb = mb.graph.node(i);
    EXPECT_EQ(na.kind, nb.kind);
    if (na.weight.defined()) {
      EXPECT_EQ(na.weight.max_abs_diff(nb.weight), 0.0f);
    }
  }
}

}  // namespace
}  // namespace igc::models
