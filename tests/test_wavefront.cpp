// Tests for the wavefront executor and the plan-backed buffer arena: outputs
// must be bit-identical to the sequential executor in every mode combination,
// peak intermediate memory must respect the static plan, and the simulated
// critical path must never exceed the serial sum (and must beat it when the
// graph has genuinely overlappable work).
#include <gtest/gtest.h>

#include "core/compiler.h"
#include "graph/executor.h"
#include "graph/memory_planner.h"
#include "graph/passes.h"
#include "models/models.h"
#include "sim/device_spec.h"

namespace igc {
namespace {

CompiledModel compile_fast(models::Model model, const sim::Platform& plat,
                           std::set<graph::OpKind> fallback = {}) {
  CompileOptions copts;
  copts.tune_trials = 8;
  copts.cpu_fallback_ops = std::move(fallback);
  return compile(std::move(model), plat, copts);
}

void expect_bit_identical(const Tensor& a, const Tensor& b,
                          const std::string& what) {
  ASSERT_TRUE(a.shape() == b.shape()) << what;
  EXPECT_EQ(a.max_abs_diff(b), 0.0f) << what;
}

/// Runs every (mode, arena) combination and checks outputs against the
/// plain sequential run. Returns the baseline result.
RunResult check_all_modes(const CompiledModel& cm, bool numerics,
                          uint64_t seed = 0x515) {
  RunOptions ropts;
  ropts.input_seed = seed;
  ropts.compute_numerics = numerics;
  const RunResult base = cm.run(ropts);
  for (const graph::ExecMode mode :
       {graph::ExecMode::kSequential, graph::ExecMode::kWavefront}) {
    for (const bool arena : {false, true}) {
      if (mode == graph::ExecMode::kSequential && !arena) continue;
      ropts.mode = mode;
      ropts.use_arena = arena;
      const RunResult r = cm.run(ropts);
      const std::string what =
          cm.model_name() +
          (mode == graph::ExecMode::kWavefront ? " wavefront" : " sequential") +
          (arena ? "+arena" : "");
      expect_bit_identical(r.output, base.output, what);
      // The same per-node charges feed both time models, so these agree no
      // matter which mode ran.
      EXPECT_DOUBLE_EQ(r.serial_ms, base.serial_ms) << what;
      EXPECT_DOUBLE_EQ(r.critical_path_ms, base.critical_path_ms) << what;
    }
  }
  return base;
}

TEST(Wavefront, ClassificationNumericsBitIdentical) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  check_all_modes(compile_fast(models::build_mobilenet(rng, 64), plat), true);
  check_all_modes(compile_fast(models::build_squeezenet(rng, 64), plat), true);
  check_all_modes(compile_fast(models::build_inception_v1(rng, 64), plat),
                  true);
}

TEST(Wavefront, ResNetAndFcnNumericsBitIdentical) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kJetsonNano);
  Rng rng(0x5eed);
  check_all_modes(compile_fast(models::build_resnet50(rng, 64), plat), true);
  check_all_modes(compile_fast(models::build_fcn_resnet50(rng, 64, 1, 5), plat),
                  true);
}

TEST(Wavefront, DetectionShapesOnlyBitIdentical) {
  // Shapes-only is where placeholder handling matters: arena slabs are
  // deliberately left uninitialized because no op reads them. CPU fallback
  // adds device-copy nodes and a second execution lane.
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  check_all_modes(
      compile_fast(models::build_ssd(rng, models::SsdBackbone::kMobileNet, 128),
                   plat, {graph::OpKind::kSsdDetection}),
      false);
  check_all_modes(
      compile_fast(models::build_yolov3(rng, 128, 1, 20), plat,
                   {graph::OpKind::kYoloDecode, graph::OpKind::kBoxNms}),
      false);
}

TEST(Wavefront, AllPlatformsBitIdentical) {
  Rng rng(0x5eed);
  const models::Model m = models::build_inception_v1(rng, 64);
  for (const sim::Platform& plat : sim::all_platforms()) {
    models::Model copy{m.name, m.graph};
    check_all_modes(compile_fast(std::move(copy), plat), false);
  }
}

TEST(Wavefront, PeakIntermediateBytesRespectsPlan) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  for (CompiledModel cm :
       {compile_fast(models::build_inception_v1(rng, 64), plat),
        compile_fast(models::build_ssd(rng, models::SsdBackbone::kMobileNet, 128),
                     plat, {graph::OpKind::kSsdDetection})}) {
    const int64_t plan_bytes = cm.memory_plan().total_bytes();
    for (const graph::ExecMode mode :
         {graph::ExecMode::kSequential, graph::ExecMode::kWavefront}) {
      RunOptions ropts;
      ropts.compute_numerics = false;
      ropts.mode = mode;
      ropts.use_arena = true;
      const RunResult r = cm.run(ropts);
      EXPECT_GT(r.peak_intermediate_bytes, 0) << cm.model_name();
      EXPECT_LE(r.peak_intermediate_bytes, plan_bytes) << cm.model_name();
      EXPECT_EQ(r.arena_bytes, plan_bytes) << cm.model_name();
    }
  }
}

TEST(Wavefront, CriticalPathNeverExceedsSerialSum) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  for (CompiledModel cm :
       {compile_fast(models::build_inception_v1(rng, 64), plat),
        compile_fast(models::build_mobilenet(rng, 64), plat)}) {
    RunOptions ropts;
    ropts.compute_numerics = false;
    ropts.mode = graph::ExecMode::kWavefront;
    const RunResult r = cm.run(ropts);
    EXPECT_EQ(r.latency_ms, r.critical_path_ms);
    EXPECT_LE(r.critical_path_ms, r.serial_ms * (1.0 + 1e-12));
    EXPECT_GT(r.critical_path_ms, 0.0);
  }
}

TEST(Wavefront, HeterogeneousGraphOverlapsLanes) {
  // With the YOLO decode heads on the companion CPU, decode of the shallow
  // scale and its device copies overlap remaining GPU backbone work, so the
  // per-lane critical path must beat the serial sum strictly.
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  CompiledModel cm =
      compile_fast(models::build_yolov3(rng, 128, 1, 20), plat,
                   {graph::OpKind::kYoloDecode, graph::OpKind::kBoxNms});
  RunOptions ropts;
  ropts.compute_numerics = false;
  ropts.mode = graph::ExecMode::kWavefront;
  const RunResult r = cm.run(ropts);
  EXPECT_LT(r.critical_path_ms, r.serial_ms);
}

TEST(Wavefront, RepeatedArenaRunsAreDeterministic) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  CompiledModel cm = compile_fast(models::build_inception_v1(rng, 64), plat);
  RunOptions ropts;
  ropts.compute_numerics = false;
  ropts.mode = graph::ExecMode::kWavefront;
  ropts.use_arena = true;
  const RunResult first = cm.run(ropts);
  for (int i = 0; i < 3; ++i) {
    const RunResult again = cm.run(ropts);  // reuses the serving arena
    expect_bit_identical(again.output, first.output, "repeat run");
    EXPECT_DOUBLE_EQ(again.latency_ms, first.latency_ms);
    EXPECT_EQ(again.arena_bytes, first.arena_bytes);
  }
  // Different seeds must still produce different inputs (the arena does not
  // leak one run's data into the next run's observable output).
  ropts.input_seed = 0x9999;
  ropts.compute_numerics = true;
  const RunResult other = cm.run(ropts);
  ropts.input_seed = 0x515;
  const RunResult base = cm.run(ropts);
  ASSERT_TRUE(other.output.shape() == base.output.shape());
  EXPECT_GT(other.output.max_abs_diff(base.output), 0.0f);
}

TEST(Wavefront, ExecutorBuildsLocalArenaWhenNoneProvided) {
  // graph::execute with use_arena but no caller-provided arena/plan sizes a
  // private arena from its own plan_memory() call.
  Rng model_rng(0x5eed);
  models::Model m = models::build_squeezenet(model_rng, 64);
  graph::optimize(m.graph);
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);

  graph::ExecOptions opts;
  Rng rng_a(0x11);
  const graph::ExecResult plain = graph::execute(m.graph, plat, opts, rng_a);

  opts.use_arena = true;
  opts.mode = graph::ExecMode::kWavefront;
  Rng rng_b(0x11);
  const graph::ExecResult arena = graph::execute(m.graph, plat, opts, rng_b);

  expect_bit_identical(arena.output, plain.output, "local arena");
  EXPECT_EQ(arena.arena_bytes, graph::plan_memory(m.graph).total_bytes());
  EXPECT_LE(arena.peak_intermediate_bytes, arena.arena_bytes);
}

TEST(Wavefront, SequentialModeMatchesSeedExecutorContract) {
  // The sequential mode must keep the original executor's reporting: latency
  // is the serial sum and the event trace accounts for all of it.
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  CompiledModel cm = compile_fast(models::build_inception_v1(rng, 64), plat);
  const RunResult r = cm.run(0x515, false);
  EXPECT_DOUBLE_EQ(r.latency_ms, r.serial_ms);
}

}  // namespace
}  // namespace igc
