// Unit tests for src/sim: device registry, timing model, simulator.
#include <gtest/gtest.h>

#include <atomic>

#include "sim/clock.h"
#include "sim/device_spec.h"
#include "sim/simulator.h"
#include "sim/timing_model.h"

namespace igc::sim {
namespace {

TEST(DeviceSpec, RegistryHasThreePlatforms) {
  EXPECT_EQ(all_platforms().size(), 3u);
  EXPECT_EQ(platform(PlatformId::kDeepLens).gpu.vendor, Vendor::kIntel);
  EXPECT_EQ(platform(PlatformId::kAiSage).gpu.vendor, Vendor::kArmMali);
  EXPECT_EQ(platform(PlatformId::kJetsonNano).gpu.vendor, Vendor::kNvidia);
  EXPECT_THROW(platform_by_name("no-such-device"), Error);
  EXPECT_EQ(platform_by_name("jetson-nano").gpu.api, DeviceApi::kCuda);
}

TEST(DeviceSpec, PaperGpuToCpuFlopRatios) {
  // Sec. 1: GPU peak FLOPs exceed the CPU by 5.16x / 6.77x / 2.48x.
  const double r1 = platform(PlatformId::kDeepLens).gpu.peak_gflops /
                    platform(PlatformId::kDeepLens).cpu.peak_gflops;
  const double r2 = platform(PlatformId::kAiSage).gpu.peak_gflops /
                    platform(PlatformId::kAiSage).cpu.peak_gflops;
  const double r3 = platform(PlatformId::kJetsonNano).gpu.peak_gflops /
                    platform(PlatformId::kJetsonNano).cpu.peak_gflops;
  EXPECT_NEAR(r1, 5.16, 0.1);
  EXPECT_NEAR(r2, 6.77, 0.1);
  EXPECT_NEAR(r3, 2.48, 0.1);
}

TEST(DeviceSpec, ArchitecturalTraits) {
  EXPECT_TRUE(platform(PlatformId::kDeepLens).gpu.has_subgroups);
  EXPECT_FALSE(platform(PlatformId::kAiSage).gpu.has_subgroups);
  EXPECT_FALSE(platform(PlatformId::kAiSage).gpu.has_shared_local_mem);
  EXPECT_TRUE(platform(PlatformId::kJetsonNano).gpu.has_shared_local_mem);
  EXPECT_EQ(platform(PlatformId::kJetsonNano).gpu.simd_width, 32);
}

TEST(Occupancy, FullWhenSaturated) {
  const DeviceSpec& d = platform(PlatformId::kJetsonNano).gpu;
  EXPECT_NEAR(occupancy(d, d.total_lanes() * 16, 128), 1.0, 1e-9);
}

TEST(Occupancy, SingleItemIsTiny) {
  const DeviceSpec& d = platform(PlatformId::kDeepLens).gpu;
  EXPECT_LT(occupancy(d, 1, 1), 0.1);
}

TEST(Occupancy, MonotonicInWorkItems) {
  const DeviceSpec& d = platform(PlatformId::kAiSage).gpu;
  double prev = 0.0;
  for (int64_t wi : {1, 8, 64, 512, 4096, 32768}) {
    const double o = occupancy(d, wi, 32);
    EXPECT_GE(o, prev);
    prev = o;
  }
  EXPECT_LE(prev, 1.0);
}

TEST(TimingModel, ComputeBoundScalesWithFlops) {
  const DeviceSpec& d = platform(PlatformId::kJetsonNano).gpu;
  KernelLaunch k;
  k.flops = 1e9;
  k.work_items = 1 << 20;
  k.work_group_size = 128;
  const double t1 = estimate_latency_ms(d, k);
  k.flops = 2e9;
  const double t2 = estimate_latency_ms(d, k);
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(TimingModel, MemoryBoundKernelIgnoresSmallFlops) {
  const DeviceSpec& d = platform(PlatformId::kDeepLens).gpu;
  KernelLaunch k;
  k.flops = 1000;
  k.dram_read_bytes = 256ll << 20;  // 256 MB at 12.8 GB/s = 20 ms
  k.work_items = 1 << 20;
  k.work_group_size = 128;
  const double t = estimate_latency_ms(d, k);
  EXPECT_NEAR(t, 20.0, 2.0);
}

TEST(TimingModel, DivergenceMultiplies) {
  const DeviceSpec& d = platform(PlatformId::kAiSage).gpu;
  KernelLaunch k;
  k.flops = 1e8;
  k.work_items = 1 << 16;
  k.work_group_size = 64;
  const double t1 = estimate_latency_ms(d, k);
  k.divergence_factor = 4.0;
  const double t4 = estimate_latency_ms(d, k);
  EXPECT_NEAR(t4 / t1, 4.0, 0.2);
}

TEST(TimingModel, GlobalSyncAddsOverhead) {
  const DeviceSpec& d = platform(PlatformId::kAiSage).gpu;
  KernelLaunch k;
  k.flops = 1000;
  const double t0 = estimate_latency_ms(d, k);
  k.num_global_syncs = 10;
  const double t10 = estimate_latency_ms(d, k);
  EXPECT_NEAR(t10 - t0, 10 * d.global_sync_us * 1e-3, 1e-6);
}

TEST(TimingModel, CopyIsBandwidthBound) {
  const DeviceSpec& d = platform(PlatformId::kDeepLens).gpu;
  const double ms = copy_latency_ms(d, 128ll << 20);  // 128 MB
  EXPECT_NEAR(ms, 10.0, 1.5);
  EXPECT_GT(copy_latency_ms(d, 0), 0.0);  // fixed overhead
}

TEST(SimClock, AccumulatesAndTraces) {
  const DeviceSpec& d = platform(PlatformId::kDeepLens).gpu;
  SimClock clock;
  KernelLaunch k;
  k.name = "k1";
  k.flops = 1e6;
  clock.charge(d, k);
  clock.charge_copy(d, 1024, "copy1");
  EXPECT_GT(clock.total_ms(), 0.0);
  ASSERT_EQ(clock.events().size(), 2u);
  EXPECT_EQ(clock.events()[0].name, "k1");
  EXPECT_EQ(clock.events()[1].name, "copy1");
  clock.reset();
  EXPECT_EQ(clock.total_ms(), 0.0);
  EXPECT_TRUE(clock.events().empty());
}

TEST(GpuSimulator, LaunchRunsEveryWorkItemOnce) {
  SimClock clock;
  GpuSimulator gpu(platform(PlatformId::kJetsonNano).gpu, clock);
  std::vector<std::atomic<int>> hits(256);
  gpu.launch(
      16, 16,
      [&](const WorkItem& item) { hits[static_cast<size_t>(item.global_id())]++; },
      KernelLaunch{});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GT(clock.total_ms(), 0.0);
}

TEST(GpuSimulator, LocalIdsSequentialWithinGroup) {
  SimClock clock;
  GpuSimulator gpu(platform(PlatformId::kDeepLens).gpu, clock);
  std::vector<int> last(8, -1);
  gpu.launch(
      8, 4,
      [&](const WorkItem& item) {
        // Within a group items arrive in local-id order.
        EXPECT_EQ(item.local_id, last[static_cast<size_t>(item.group_id)] + 1);
        last[static_cast<size_t>(item.group_id)] = item.local_id;
      },
      KernelLaunch{});
}

TEST(GpuSimulator, ElementwiseCoversAll) {
  SimClock clock;
  GpuSimulator gpu(platform(PlatformId::kAiSage).gpu, clock);
  std::vector<std::atomic<int>> hits(1000);
  gpu.launch_elementwise("ew", 1000,
                         [&](int64_t i) { hits[static_cast<size_t>(i)]++; }, 1, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

}  // namespace
}  // namespace igc::sim
