// Tests for the serving telemetry pipeline (src/obs + bench_diff):
//
//   * LatencyHistogram — percentile() stays within max_relative_error() of
//     the exact sorted-sample quantile on adversarial distributions (spike,
//     bimodal, heavy tail), conserves counts exactly, and merges
//     associatively; concurrent observers lose nothing;
//   * TelemetrySampler — deterministic series under an injected clock, ring
//     eviction, idempotent start/stop, and clean behavior while concurrent
//     wavefront runs hammer the registry (the TSan target);
//   * Prometheus exporter — name/label sanitization, golden exposition
//     format, bucket monotonicity, and an end-to-end socket scrape of the
//     /metrics and /healthz endpoints;
//   * bench_diff — watch parsing, identical inputs pass, an injected
//     regression fails, direction inference for higher-is-better metrics.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.h"
#include "core/rng.h"
#include "models/models.h"
#include "obs/bench_diff.h"
#include "obs/http.h"
#include "obs/json.h"
#include "obs/latency_histogram.h"
#include "obs/metrics.h"
#include "obs/prom.h"
#include "obs/sampler.h"
#include "serve/engine.h"
#include "sim/device_spec.h"
#include "tensor/arena.h"
#include "tensor/page_pool.h"

namespace igc {
namespace {

using obs::LatencyHistogram;

// ----- LatencyHistogram ------------------------------------------------------

/// Exact quantile of a sample set, same rank convention as the histogram:
/// the value at rank ceil(p * n), 1-based.
double exact_percentile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const auto n = static_cast<int64_t>(v.size());
  int64_t rank = static_cast<int64_t>(std::ceil(p * static_cast<double>(n)));
  rank = std::clamp<int64_t>(rank, 1, n);
  return v[static_cast<size_t>(rank - 1)];
}

/// Asserts every queried percentile of `samples` is within the documented
/// relative-error bound of the exact quantile.
void expect_percentiles_within_bound(const std::vector<double>& samples,
                                     const char* label) {
  LatencyHistogram h;
  for (double v : samples) h.observe(v);
  ASSERT_EQ(h.count(), static_cast<int64_t>(samples.size())) << label;
  const double bound = LatencyHistogram::max_relative_error();
  for (double p : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    const double exact = exact_percentile(samples, p);
    const double approx = h.percentile(p);
    EXPECT_LE(std::fabs(approx - exact), bound * exact + 1e-12)
        << label << " p=" << p << " exact=" << exact << " approx=" << approx;
  }
}

TEST(LatencyHistogram, PercentileBoundOnSpike) {
  // Everything at one value — every percentile must answer ~that value.
  std::vector<double> samples(10000, 3.7);
  expect_percentiles_within_bound(samples, "spike");
}

TEST(LatencyHistogram, PercentileBoundOnBimodal) {
  // Fast path vs slow path: 90% near 1 ms, 10% near 80 ms. The p95/p99
  // jump across the gap is where a linear-bucket histogram falls over.
  Rng rng(42);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    const bool slow = rng.next_double() < 0.10;
    const double base = slow ? 80.0 : 1.0;
    samples.push_back(base * (0.9 + 0.2 * rng.next_double()));
  }
  expect_percentiles_within_bound(samples, "bimodal");
}

TEST(LatencyHistogram, PercentileBoundOnHeavyTail) {
  // Log-normal-ish: exp(3 * gaussian) spans several orders of magnitude.
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(std::exp(3.0 * static_cast<double>(rng.next_gaussian())));
  }
  expect_percentiles_within_bound(samples, "heavy-tail");
}

TEST(LatencyHistogram, CountConservationIncludingEdgeValues) {
  LatencyHistogram h;
  // Underflow, zero, negative, NaN, huge, and ordinary values all land in
  // exactly one bucket each.
  const double values[] = {0.0,   -1.0, 1e-9,  LatencyHistogram::kMinValue,
                           0.5,   1.0,  1e6,   1e20,
                           std::nan("")};
  for (double v : values) h.observe(v);
  int64_t bucket_total = 0;
  for (const auto& [i, n] : h.nonzero_buckets()) bucket_total += n;
  EXPECT_EQ(h.count(), static_cast<int64_t>(std::size(values)));
  EXPECT_EQ(bucket_total, h.count());
  EXPECT_TRUE(std::isfinite(h.percentile(0.99)));
  EXPECT_TRUE(std::isfinite(h.sum()));
}

TEST(LatencyHistogram, MergeIsAssociative) {
  // Integer-valued samples keep the double sums exact, so associativity can
  // be asserted bit-for-bit.
  Rng rng(3);
  std::vector<double> a, b, c;
  for (int i = 0; i < 500; ++i) {
    a.push_back(static_cast<double>(rng.next_int(1, 1000)));
    b.push_back(static_cast<double>(rng.next_int(1, 1000000)));
    c.push_back(static_cast<double>(rng.next_int(1, 10)));
  }
  auto fill = [](LatencyHistogram& h, const std::vector<double>& v) {
    for (double x : v) h.observe(x);
  };

  // (a + b) + c
  LatencyHistogram ha1, hb1, hc1;
  fill(ha1, a);
  fill(hb1, b);
  fill(hc1, c);
  ha1.merge(hb1);
  ha1.merge(hc1);

  // a + (b + c)
  LatencyHistogram ha2, hb2, hc2;
  fill(ha2, a);
  fill(hb2, b);
  fill(hc2, c);
  hb2.merge(hc2);
  ha2.merge(hb2);

  EXPECT_EQ(ha1.count(), ha2.count());
  EXPECT_EQ(ha1.nonzero_buckets(), ha2.nonzero_buckets());
  EXPECT_EQ(ha1.sum(), ha2.sum());
  for (double p : {0.5, 0.95, 0.99}) {
    EXPECT_EQ(ha1.percentile(p), ha2.percentile(p));
  }
}

TEST(LatencyHistogram, ConcurrentObservesLoseNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(rng.next_double() * 100.0 + 0.001);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(h.count(), int64_t{kThreads} * kPerThread);
  int64_t bucket_total = 0;
  for (const auto& [i, n] : h.nonzero_buckets()) bucket_total += n;
  EXPECT_EQ(bucket_total, h.count());
  // Uniform over (0, 100]: the median must land around 50 — the exact bound
  // only holds vs the empirical quantile, so allow a loose statistical band.
  EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
}

TEST(LatencyHistogram, SnapshotDeltaPercentilesMatchTheWindow) {
  // percentile_of over a snapshot delta answers for the window, not the
  // cumulative distribution.
  auto& reg = obs::MetricsRegistry::global();
  auto& h = reg.histogram("test.telemetry.window_ms");
  for (int i = 0; i < 100; ++i) h.observe(1.0);
  const obs::MetricsSnapshot s1 = reg.snapshot();
  for (int i = 0; i < 100; ++i) h.observe(64.0);
  const obs::MetricsSnapshot s2 = reg.snapshot();

  const obs::MetricsSnapshot d = s1.delta_to(s2);
  const auto& dh = d.histograms.at("test.telemetry.window_ms");
  EXPECT_EQ(dh.count, 100);
  // The whole window sits at 64; cumulative p50 would answer ~1.
  EXPECT_NEAR(dh.percentile(0.5), 64.0,
              64.0 * LatencyHistogram::max_relative_error());
}

// ----- TelemetrySampler ------------------------------------------------------

TEST(TelemetrySampler, DeterministicSeriesUnderInjectedClock) {
  obs::MetricsRegistry reg;
  int64_t now_ms = 0;
  obs::TelemetrySampler::Options opts;
  opts.interval_ms = 10;
  opts.capacity = 16;
  opts.registry = &reg;
  opts.clock = [&now_ms] { return now_ms; };
  obs::TelemetrySampler sampler(opts);

  reg.counter("req.count").add(5);
  reg.histogram("req.latency_ms").observe(2.0);
  sampler.sample_now();
  now_ms = 10;
  reg.counter("req.count").add(3);
  reg.histogram("req.latency_ms").observe(8.0);
  sampler.sample_now();

  const std::string doc_text = sampler.series_json();
  const obs::json::Value doc = obs::json::parse(doc_text);
  EXPECT_EQ(doc.at("interval_ms").as_int(), 10);
  EXPECT_EQ(doc.at("total_samples").as_int(), 2);
  EXPECT_EQ(doc.at("evicted_samples").as_int(), 0);
  const auto& samples = doc.at("samples").as_array();
  ASSERT_EQ(samples.size(), 2u);

  // First retained sample is absolute...
  EXPECT_TRUE(samples[0].at("base").as_bool());
  EXPECT_EQ(samples[0].at("t_ms").as_int(), 0);
  EXPECT_EQ(samples[0].at("counters").at("req.count").as_int(), 5);
  EXPECT_EQ(samples[0].at("histograms").at("req.latency_ms").at("count").as_int(),
            1);
  // ...later samples carry movement since the previous one.
  EXPECT_FALSE(samples[1].at("base").as_bool());
  EXPECT_EQ(samples[1].at("t_ms").as_int(), 10);
  EXPECT_EQ(samples[1].at("counters").at("req.count").as_int(), 3);
  const auto& win = samples[1].at("histograms").at("req.latency_ms");
  EXPECT_EQ(win.at("count").as_int(), 1);
  // The second window saw only the 8 ms observation.
  EXPECT_NEAR(win.at("p50").as_number(), 8.0,
              8.0 * LatencyHistogram::max_relative_error());

  // Injected clock + explicit sampling => byte-identical series.
  EXPECT_EQ(doc_text, sampler.series_json());
}

TEST(TelemetrySampler, RingEvictsOldestAtCapacity) {
  obs::MetricsRegistry reg;
  int64_t now_ms = 0;
  obs::TelemetrySampler::Options opts;
  opts.capacity = 3;
  opts.registry = &reg;
  opts.clock = [&now_ms] { return now_ms; };
  obs::TelemetrySampler sampler(opts);

  for (int i = 0; i < 5; ++i) {
    now_ms = i * 100;
    sampler.sample_now();
  }
  const auto samples = sampler.samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples.front().t_ms, 200);  // 0 and 100 were evicted
  EXPECT_EQ(samples.back().t_ms, 400);
  EXPECT_EQ(sampler.total_samples(), 5);

  const obs::json::Value doc = obs::json::parse(sampler.series_json());
  EXPECT_EQ(doc.at("evicted_samples").as_int(), 2);
}

TEST(TelemetrySampler, StartStopAreIdempotentAndRestartable) {
  obs::MetricsRegistry reg;
  obs::TelemetrySampler::Options opts;
  opts.interval_ms = 1;
  opts.registry = &reg;
  obs::TelemetrySampler sampler(opts);

  EXPECT_FALSE(sampler.running());
  sampler.start();
  sampler.start();  // no-op
  EXPECT_TRUE(sampler.running());
  EXPECT_GE(sampler.total_samples(), 1) << "start() takes a baseline sample";
  sampler.stop();
  sampler.stop();  // no-op
  EXPECT_FALSE(sampler.running());
  const int64_t after_first = sampler.total_samples();

  sampler.start();
  EXPECT_TRUE(sampler.running());
  sampler.stop();
  EXPECT_GT(sampler.total_samples(), after_first);
  // Samples stay readable after stop().
  EXPECT_FALSE(sampler.samples().empty());
}

TEST(TelemetrySampler, RunsCleanlyDuringConcurrentWavefrontRuns) {
  // The TSan target: the background sampler snapshots the global registry
  // while several threads run the wavefront executor (which records exec.*,
  // run.*, arena.* metrics) — no torn samples, no races, valid JSON out.
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  CompileOptions copts;
  copts.tune_trials = 4;
  const CompiledModel cm =
      compile(models::build_inception_v1(rng, 64), plat, copts);

  obs::TelemetrySampler::Options opts;
  opts.interval_ms = 1;  // sample as fast as possible while runs proceed
  obs::TelemetrySampler sampler(opts);
  sampler.start();

  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&cm] {
      RunOptions ropts;
      ropts.compute_numerics = false;
      ropts.mode = graph::ExecMode::kWavefront;
      ropts.use_arena = true;
      for (int i = 0; i < 3; ++i) cm.run(ropts);
    });
  }
  for (auto& th : threads) th.join();
  sampler.stop();

  EXPECT_GE(sampler.total_samples(), 1);
  const obs::json::Value doc = obs::json::parse(sampler.series_json());
  EXPECT_GE(doc.at("samples").size(), 1u);
}

TEST(TelemetrySampler, ServeFamilyAppearsInSeriesWithoutSchemaDrift) {
  // The serving engine's serve.* instruments live in an ordinary registry,
  // so the sampler picks them up through the same counters/gauges/
  // histograms sections every other family uses — no new schema keys.
  obs::MetricsRegistry reg;
  int64_t now_ms = 0;
  obs::TelemetrySampler::Options opts;
  opts.interval_ms = 10;
  opts.capacity = 8;
  opts.registry = &reg;
  opts.clock = [&now_ms] { return now_ms; };
  obs::TelemetrySampler sampler(opts);

  Rng rng(7);
  CompileOptions copts;
  copts.skip_tuning = true;
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  const CompiledModel cm =
      compile(models::build_squeezenet(rng, 64, 1, 10), plat, copts);
  serve::EngineOptions eo;
  eo.num_workers = 2;
  eo.registry = &reg;
  serve::ServingEngine engine(eo);
  serve::TenantSpec spec;
  spec.name = "t0";
  spec.model = &cm;
  spec.run.compute_numerics = false;
  spec.run.use_arena = true;
  engine.add_tenant(std::move(spec));
  engine.start();
  std::vector<std::future<serve::RequestOutcome>> futures;
  for (int i = 0; i < 12; ++i) {
    serve::SubmitResult r = engine.submit(0, static_cast<uint64_t>(i));
    if (r.admitted()) futures.push_back(std::move(r.outcome));
  }
  engine.stop();
  for (auto& f : futures) f.get();
  sampler.sample_now();

  const serve::EngineStats s = engine.stats();
  const obs::json::Value doc = obs::json::parse(sampler.series_json());
  EXPECT_EQ(doc.at("total_samples").as_int(), 1);
  const auto& sample = doc.at("samples").as_array()[0];
  const auto& counters = sample.at("counters");
  EXPECT_EQ(counters.at("serve.submitted").as_int(), s.submitted);
  EXPECT_EQ(counters.at("serve.admitted").as_int(), s.admitted);
  EXPECT_EQ(counters.at("serve.completed").as_int(), s.completed);
  EXPECT_EQ(counters.at("serve.batches").as_int(), s.batches);
  const auto& hists = sample.at("histograms");
  EXPECT_EQ(hists.at("serve.e2e_ms").at("count").as_int(), s.completed);
  EXPECT_EQ(hists.at("serve.queue_wait_ms").at("count").as_int(), s.admitted);
  EXPECT_EQ(hists.at("serve.service_ms").at("count").as_int(), s.completed);
  EXPECT_EQ(hists.at("serve.batch_size").at("count").as_int(), s.batches);
  // stop() zeroes the live depth gauge; the peak gauge keeps its high-water
  // mark. Both ride in the standard gauges section.
  EXPECT_EQ(sample.at("gauges").at("serve.queue_depth").as_int(), 0);
  EXPECT_EQ(sample.at("gauges").at("serve.queue_depth_peak").as_int(),
            static_cast<int64_t>(s.queue_depth_peak));
}

TEST(TelemetrySampler, ArenaFamilyAppearsInSeriesWithoutSchemaDrift) {
  // The paged arena's instruments (arena.acquires/releases/high_water_bytes
  // from the arena, arena.page_allocs/page_frees/pages_in_use/page_bytes/
  // evictions from the page pool) are process-wide, so a sample of the
  // global registry carries the whole family through the standard counters/
  // gauges sections — no new schema keys.
  auto pool = std::make_shared<PagePool>();
  {
    PagedArena arena({128 * 1024, 64 * 1024}, pool);
    Tensor t = arena.acquire(0, Shape{1024}, DType::kFloat32, false);
    Tensor u = arena.acquire(1, Shape{256}, DType::kFloat32, false);
    arena.release(1);
    arena.release(0);
    arena.evict_idle();  // drops both cached runs -> page frees + evictions
  }

  int64_t now_ms = 0;
  obs::TelemetrySampler::Options opts;
  opts.interval_ms = 10;
  opts.clock = [&now_ms] { return now_ms; };
  obs::TelemetrySampler sampler(opts);
  sampler.sample_now();

  auto& reg = obs::MetricsRegistry::global();
  const obs::json::Value doc = obs::json::parse(sampler.series_json());
  const auto& sample = doc.at("samples").as_array()[0];
  const auto& counters = sample.at("counters");
  for (const char* name :
       {"arena.acquires", "arena.releases", "arena.page_allocs",
        "arena.page_frees", "arena.evictions"}) {
    ASSERT_NO_THROW(counters.at(name)) << name;
    EXPECT_EQ(counters.at(name).as_int(), reg.counter(name).value()) << name;
    EXPECT_GT(counters.at(name).as_int(), 0) << name;
  }
  const auto& gauges = sample.at("gauges");
  for (const char* name :
       {"arena.pages_in_use", "arena.page_bytes", "arena.high_water_bytes"}) {
    ASSERT_NO_THROW(gauges.at(name)) << name;
    EXPECT_EQ(gauges.at(name).as_int(), reg.gauge(name).value()) << name;
  }
  // Everything was released and evicted: the page gauges read zero.
  EXPECT_EQ(gauges.at("arena.pages_in_use").as_int(), 0);
  EXPECT_EQ(gauges.at("arena.page_bytes").as_int(), 0);
  EXPECT_GT(gauges.at("arena.high_water_bytes").as_int(), 0);
}

// ----- Prometheus exporter ---------------------------------------------------

TEST(Prometheus, MetricNameSanitization) {
  EXPECT_EQ(obs::prom_metric_name("run.latency_ms"), "run_latency_ms");
  EXPECT_EQ(obs::prom_metric_name("exec.node_ms"), "exec_node_ms");
  EXPECT_EQ(obs::prom_metric_name("already_valid:name"), "already_valid:name");
  EXPECT_EQ(obs::prom_metric_name("9lives"), "_9lives");
  EXPECT_EQ(obs::prom_metric_name("bad-name!"), "bad_name_");
  EXPECT_EQ(obs::prom_metric_name(""), "_");
}

TEST(Prometheus, LabelValueEscaping) {
  EXPECT_EQ(obs::prom_escape_label_value("plain"), "plain");
  EXPECT_EQ(obs::prom_escape_label_value("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::prom_escape_label_value("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::prom_escape_label_value("a\nb"), "a\\nb");
}

TEST(Prometheus, GoldenExpositionForCountersAndGauges) {
  obs::MetricsRegistry reg;
  reg.counter("exec.runs").add(7);
  reg.gauge("arena.high_water_bytes").set(4096);
  const std::string text = obs::to_prometheus(reg.snapshot(), {{"job", "igc"}});
  EXPECT_EQ(text,
            "# TYPE exec_runs counter\n"
            "exec_runs_total{job=\"igc\"} 7\n"
            "# TYPE arena_high_water_bytes gauge\n"
            "arena_high_water_bytes{job=\"igc\"} 4096\n");
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndMonotone) {
  obs::MetricsRegistry reg;
  auto& h = reg.histogram("run.latency_ms");
  const double values[] = {0.5, 0.5, 2.0, 2.0, 2.0, 150.0};
  for (double v : values) h.observe(v);
  const std::string text = obs::to_prometheus(reg.snapshot());

  // Walk the _bucket lines: le bounds strictly increasing, counts monotone
  // non-decreasing, and the +Inf bucket equals _count equals the total.
  double prev_le = -1.0;
  int64_t prev_count = -1, inf_count = -1, count_line = -1;
  bool saw_inf = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("run_latency_ms_bucket{le=\"", 0) == 0) {
      const size_t vstart = std::strlen("run_latency_ms_bucket{le=\"");
      const size_t vend = line.find('"', vstart);
      const std::string le = line.substr(vstart, vend - vstart);
      const int64_t n = std::stoll(line.substr(line.rfind(' ') + 1));
      EXPECT_GE(n, prev_count);
      prev_count = n;
      if (le == "+Inf") {
        saw_inf = true;
        inf_count = n;
      } else {
        const double le_v = std::stod(le);
        EXPECT_GT(le_v, prev_le);
        prev_le = le_v;
      }
    } else if (line.rfind("run_latency_ms_count ", 0) == 0) {
      count_line = std::stoll(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_TRUE(saw_inf) << text;
  EXPECT_EQ(inf_count, static_cast<int64_t>(std::size(values)));
  EXPECT_EQ(count_line, inf_count);
  EXPECT_NE(text.find("run_latency_ms_sum "), std::string::npos);
}

// ----- HTTP listener ---------------------------------------------------------

/// Blocking one-shot HTTP GET against 127.0.0.1:port; returns the raw
/// response (headers + body).
std::string http_get(int port, const std::string& path,
                     const std::string& method = "GET") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << "connect to 127.0.0.1:" << port;
  const std::string req =
      method + " " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

std::string body_of(const std::string& response) {
  const size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : response.substr(sep + 4);
}

TEST(MetricsHttp, EndToEndScrape) {
  obs::MetricsRegistry reg;
  reg.counter("exec.runs").add(3);
  reg.histogram("run.latency_ms").observe(12.5);

  obs::MetricsHttpServer::Options opts;
  opts.port = 0;  // ephemeral
  opts.registry = &reg;
  opts.const_labels = {{"model", "inception"}};
  obs::MetricsHttpServer server(opts);
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  ASSERT_GT(server.port(), 0);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_EQ(body_of(health), "ok\n");

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = body_of(metrics);
  EXPECT_NE(body.find("exec_runs_total{model=\"inception\"} 3"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("run_latency_ms_bucket"), std::string::npos);
  EXPECT_NE(body.find("le=\"+Inf\""), std::string::npos);

  // The snapshot endpoint serves the registry's JSON document.
  const obs::json::Value snap =
      obs::json::parse(body_of(http_get(server.port(), "/snapshot.json")));
  EXPECT_EQ(snap.at("exec.runs").as_int(), 3);

  EXPECT_NE(http_get(server.port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(http_get(server.port(), "/metrics", "POST").find("405"),
            std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(MetricsHttp, RespondRoutesWithoutSockets) {
  obs::MetricsRegistry reg;
  reg.counter("c").add(1);
  obs::MetricsHttpServer::Options opts;
  opts.registry = &reg;
  obs::MetricsHttpServer server(opts);  // never started — respond() is pure
  EXPECT_NE(server.respond("GET", "/healthz").find("200"), std::string::npos);
  EXPECT_NE(server.respond("GET", "/metrics").find("c_total 1"),
            std::string::npos);
  EXPECT_NE(server.respond("GET", "/series.json").find("404"),
            std::string::npos)
      << "series endpoint 404s with no sampler wired";
  EXPECT_NE(server.respond("PUT", "/metrics").find("405"), std::string::npos);
}

// ----- bench_diff ------------------------------------------------------------

using obs::benchdiff::Watch;

TEST(BenchDiff, ParseWatchSpecs) {
  Watch w;
  ASSERT_TRUE(obs::benchdiff::parse_watch("host_ms_per_run:10%", &w));
  EXPECT_EQ(w.metric, "host_ms_per_run");
  EXPECT_DOUBLE_EQ(w.pct, 10.0);
  EXPECT_FALSE(w.higher_is_better);

  ASSERT_TRUE(obs::benchdiff::parse_watch("host_runs_per_s:5", &w));
  EXPECT_TRUE(w.higher_is_better) << "throughput metrics improve upward";

  ASSERT_TRUE(obs::benchdiff::parse_watch("-weird_metric:2.5%", &w));
  EXPECT_FALSE(w.higher_is_better);
  ASSERT_TRUE(obs::benchdiff::parse_watch("+weird_metric:2.5%", &w));
  EXPECT_TRUE(w.higher_is_better);

  EXPECT_FALSE(obs::benchdiff::parse_watch("no_threshold", &w));
  EXPECT_FALSE(obs::benchdiff::parse_watch(":10%", &w));
  EXPECT_FALSE(obs::benchdiff::parse_watch("m:", &w));
  EXPECT_FALSE(obs::benchdiff::parse_watch("m:-5%", &w));
  EXPECT_FALSE(obs::benchdiff::parse_watch("m:abc", &w));
}

std::string serving_row(const std::string& config, double host_ms,
                        double runs_per_s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                R"({"bench": "serving", "schema_version": 5, )"
                R"("platform": "aws-deeplens", "model": "InceptionV1", )"
                R"("mode": "sequential", "config": "%s", )"
                R"("host_ms_per_run": %.6g, "host_runs_per_s": %.6g})",
                config.c_str(), host_ms, runs_per_s);
  return std::string(buf) + "\n";
}

TEST(BenchDiff, IdenticalInputsPass) {
  const std::string doc = serving_row("sequential", 1.5, 666.0) +
                          serving_row("sequential+arena", 0.4, 2500.0);
  std::vector<Watch> watches;
  Watch w;
  ASSERT_TRUE(obs::benchdiff::parse_watch("host_ms_per_run:10%", &w));
  watches.push_back(w);

  const auto result = obs::benchdiff::diff(doc, doc, watches);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.matched, 2);
  EXPECT_TRUE(result.baseline_only.empty());
  EXPECT_TRUE(result.candidate_only.empty());
  EXPECT_NE(result.report(watches).find("OK"), std::string::npos);
}

TEST(BenchDiff, InjectedRegressionFails) {
  const std::string baseline = serving_row("sequential", 1.0, 1000.0);
  // 20% slower: over a 10% watch threshold on a lower-is-better metric.
  const std::string candidate = serving_row("sequential", 1.2, 833.0);
  std::vector<Watch> watches;
  Watch w;
  ASSERT_TRUE(obs::benchdiff::parse_watch("host_ms_per_run:10%", &w));
  watches.push_back(w);

  const auto result = obs::benchdiff::diff(baseline, candidate, watches);
  EXPECT_FALSE(result.ok());
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_EQ(result.regressions[0].metric, "host_ms_per_run");
  EXPECT_NEAR(result.regressions[0].change_pct, 20.0, 0.1);
  EXPECT_NE(result.report(watches).find("REGRESSION"), std::string::npos);

  // The same movement is fine under a looser threshold...
  ASSERT_TRUE(obs::benchdiff::parse_watch("host_ms_per_run:25%", &watches[0]));
  EXPECT_TRUE(obs::benchdiff::diff(baseline, candidate, watches).ok());
  // ...and an improvement never trips the gate.
  EXPECT_TRUE(obs::benchdiff::diff(candidate, baseline, watches).ok());
}

TEST(BenchDiff, HigherIsBetterMetricRegressesDownward) {
  const std::string baseline = serving_row("sequential", 1.0, 1000.0);
  const std::string candidate = serving_row("sequential", 1.0, 800.0);
  std::vector<Watch> watches;
  Watch w;
  ASSERT_TRUE(obs::benchdiff::parse_watch("host_runs_per_s:10%", &w));
  watches.push_back(w);

  const auto result = obs::benchdiff::diff(baseline, candidate, watches);
  ASSERT_EQ(result.regressions.size(), 1u);
  EXPECT_NEAR(result.regressions[0].change_pct, 20.0, 0.1);
  // Throughput going *up* is not a regression.
  EXPECT_TRUE(obs::benchdiff::diff(candidate, baseline, watches).ok());
}

TEST(BenchDiff, UnmatchedRowsAreReportedNotFatal) {
  const std::string baseline = serving_row("sequential", 1.0, 1000.0) +
                               serving_row("wavefront", 2.0, 500.0);
  const std::string candidate = serving_row("sequential", 1.0, 1000.0) +
                                serving_row("wavefront+arena", 0.5, 2000.0);
  const auto result = obs::benchdiff::diff(baseline, candidate, {});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.matched, 1);
  ASSERT_EQ(result.baseline_only.size(), 1u);
  ASSERT_EQ(result.candidate_only.size(), 1u);
  EXPECT_NE(result.baseline_only[0].find("wavefront"), std::string::npos);
}

TEST(BenchDiff, ThroughputDirectionTokens) {
  // Serving-engine goodput rows (and any qps/throughput metric) must gate
  // in the higher-is-better direction without a +/- pin in the watch spec.
  EXPECT_TRUE(obs::benchdiff::infer_higher_is_better("goodput_per_s"));
  EXPECT_TRUE(obs::benchdiff::infer_higher_is_better("goodput"));
  EXPECT_TRUE(obs::benchdiff::infer_higher_is_better("qps"));
  EXPECT_TRUE(obs::benchdiff::infer_higher_is_better("engine_qps"));
  EXPECT_TRUE(obs::benchdiff::infer_higher_is_better("throughput"));
  EXPECT_TRUE(obs::benchdiff::infer_higher_is_better("host_throughput_gbps"));
  // Latency-ish names stay lower-is-better.
  EXPECT_FALSE(obs::benchdiff::infer_higher_is_better("e2e_p99_ms"));
  EXPECT_FALSE(obs::benchdiff::infer_higher_is_better("queue_wait_p50_ms"));

  Watch w;
  ASSERT_TRUE(obs::benchdiff::parse_watch("goodput_per_s:25%", &w));
  EXPECT_TRUE(w.higher_is_better);
  ASSERT_TRUE(obs::benchdiff::parse_watch("qps:5%", &w));
  EXPECT_TRUE(w.higher_is_better);
  ASSERT_TRUE(obs::benchdiff::parse_watch("throughput:5%", &w));
  EXPECT_TRUE(w.higher_is_better);
}

TEST(BenchDiff, DuplicateKeysMatchPositionally) {
  // Two rows with identical identity (as the numerics-on interp/jit rows
  // would be without the backend field) get occurrence ordinals.
  const std::string doc = serving_row("sequential", 1.0, 1000.0) +
                          serving_row("sequential", 5.0, 200.0);
  std::vector<Watch> watches;
  Watch w;
  ASSERT_TRUE(obs::benchdiff::parse_watch("host_ms_per_run:10%", &w));
  watches.push_back(w);
  const auto result = obs::benchdiff::diff(doc, doc, watches);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.matched, 2);
}

}  // namespace
}  // namespace igc
