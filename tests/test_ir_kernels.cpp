// Interpreter-validated tests of the additional IR lowerings (depthwise and
// elementwise kernels): the same IR must compute exactly what the operator
// library computes, and print in both dialects.
#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "core/rng.h"
#include "ir/interp.h"
#include "ops/nn/ir_kernels.h"
#include "ops/nn/nn_ops.h"

namespace igc::ops {
namespace {

TEST(DepthwiseIr, MatchesReferenceConvolution) {
  Conv2dParams p;
  p.in_channels = p.out_channels = 4;
  p.groups = 4;
  p.in_h = p.in_w = 8;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  tune::ScheduleConfig cfg;
  cfg.set("tile_ow", 4);
  Rng rng(1);
  Tensor in = Tensor::random_uniform(Shape{1, 4, 8, 8}, rng);
  Tensor w = Tensor::random_uniform(Shape{4, 1, 3, 3}, rng);
  const Tensor expected = conv2d_reference(in, w, nullptr, p);

  const ir::LoweredKernel k = depthwise_build_ir(p, cfg);
  Tensor out = Tensor::zeros(expected.shape());
  ir::interpret(k, {{"data", in},
                    {"weight", w.reshape(Shape{4, 3, 3})},
                    {"out", out}});
  EXPECT_LT(out.max_abs_diff(expected), 1e-5f);
  EXPECT_NE(codegen::emit_opencl(k).find("__kernel"), std::string::npos);
  EXPECT_NE(codegen::emit_cuda(k).find("__global__"), std::string::npos);
}

TEST(DepthwiseIr, StridedVariant) {
  Conv2dParams p;
  p.in_channels = p.out_channels = 2;
  p.groups = 2;
  p.in_h = p.in_w = 8;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 2;
  p.pad_h = p.pad_w = 1;
  tune::ScheduleConfig cfg;
  cfg.set("tile_ow", 1);
  Rng rng(2);
  Tensor in = Tensor::random_uniform(Shape{1, 2, 8, 8}, rng);
  Tensor w = Tensor::random_uniform(Shape{2, 1, 3, 3}, rng);
  const Tensor expected = conv2d_reference(in, w, nullptr, p);
  Tensor out = Tensor::zeros(expected.shape());
  ir::interpret(depthwise_build_ir(p, cfg),
                {{"data", in}, {"weight", w.reshape(Shape{2, 3, 3})},
                 {"out", out}});
  EXPECT_LT(out.max_abs_diff(expected), 1e-5f);
}

TEST(ReluIr, MatchesReference) {
  Rng rng(3);
  Tensor in = Tensor::random_uniform(Shape{64}, rng, -2.0f, 2.0f);
  const Tensor expected = activation_reference(in, Activation::kRelu);
  Tensor out = Tensor::zeros(Shape{64});
  ir::interpret(relu_build_ir(64), {{"data", in}, {"out", out}});
  EXPECT_EQ(out.max_abs_diff(expected), 0.0f);
  // fmaxf in the OpenCL/CUDA source (float max).
  EXPECT_NE(codegen::emit_cuda(relu_build_ir(64)).find("fmaxf"),
            std::string::npos);
}

TEST(AddIr, PlainAndFusedRelu) {
  Rng rng(4);
  Tensor a = Tensor::random_uniform(Shape{32}, rng, -1.0f, 1.0f);
  Tensor b = Tensor::random_uniform(Shape{32}, rng, -1.0f, 1.0f);
  const Tensor sum = add_reference(a, b);
  Tensor out = Tensor::zeros(Shape{32});
  ir::interpret(add_build_ir(32, false), {{"a", a}, {"b", b}, {"out", out}});
  EXPECT_EQ(out.max_abs_diff(sum), 0.0f);

  const Tensor fused = activation_reference(sum, Activation::kRelu);
  Tensor out2 = Tensor::zeros(Shape{32});
  ir::interpret(add_build_ir(32, true), {{"a", a}, {"b", b}, {"out", out2}});
  EXPECT_EQ(out2.max_abs_diff(fused), 0.0f);
}

TEST(ScaleShiftIr, MatchesReference) {
  Rng rng(5);
  Tensor x = Tensor::random_uniform(Shape{2, 3, 4, 4}, rng);
  Tensor scale = Tensor::random_uniform(Shape{3}, rng, 0.5f, 1.5f);
  Tensor shift = Tensor::random_normal(Shape{3}, rng);
  const Tensor expected = scale_shift_reference(x, scale, shift);
  Tensor out = Tensor::zeros(x.shape());
  ir::interpret(scale_shift_build_ir(2, 3, 16),
                {{"data", x.reshape(Shape{2 * 3 * 16})},
                 {"scale", scale},
                 {"shift", shift},
                 {"out", out.reshape(Shape{2 * 3 * 16})}});
  // The interpreter evaluates in double precision; allow one float ulp.
  EXPECT_LT(out.max_abs_diff(expected), 1e-6f);
}

TEST(IrKernels, VectorRemainderRejected) {
  EXPECT_THROW(relu_build_ir(10, 4), Error);  // 10 % 4 != 0
  EXPECT_THROW(add_build_ir(7, false, 2), Error);
}

}  // namespace
}  // namespace igc::ops
