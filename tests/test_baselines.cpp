// Tests for the emulated vendor baselines: coverage gaps, determinism, and
// qualitative per-class behaviour.
#include <gtest/gtest.h>

#include "baselines/vendor.h"
#include "core/rng.h"
#include "models/models.h"
#include "sim/device_spec.h"

namespace igc::baselines {
namespace {

using sim::PlatformId;

TEST(Vendor, PlatformMapping) {
  EXPECT_EQ(vendor_for(sim::platform(PlatformId::kDeepLens)),
            VendorLib::kOpenVino);
  EXPECT_EQ(vendor_for(sim::platform(PlatformId::kAiSage)), VendorLib::kAcl);
  EXPECT_EQ(vendor_for(sim::platform(PlatformId::kJetsonNano)),
            VendorLib::kCudnnMxnet);
  EXPECT_EQ(vendor_name(VendorLib::kOpenVino), "OpenVINO");
}

TEST(Vendor, OpenVinoRejectsDetectionModels) {
  Rng rng(1);
  const auto& plat = sim::platform(PlatformId::kDeepLens);
  models::Model ssd = models::build_ssd(rng, models::SsdBackbone::kMobileNet, 128);
  const BaselineResult r = run_baseline(VendorLib::kOpenVino, ssd, plat);
  EXPECT_FALSE(r.supported);
  EXPECT_FALSE(r.unsupported_reason.empty());

  models::Model yolo = models::build_yolov3(rng, 128, 1, 10);
  EXPECT_FALSE(run_baseline(VendorLib::kOpenVino, yolo, plat).supported);

  models::Model cls = models::build_squeezenet(rng, 64, 1, 10);
  EXPECT_TRUE(run_baseline(VendorLib::kOpenVino, cls, plat).supported);
}

TEST(Vendor, AclAndCudnnSupportDetection) {
  Rng rng(2);
  models::Model ssd = models::build_ssd(rng, models::SsdBackbone::kMobileNet, 128);
  EXPECT_TRUE(run_baseline(VendorLib::kAcl, ssd,
                           sim::platform(PlatformId::kAiSage))
                  .supported);
  EXPECT_TRUE(run_baseline(VendorLib::kCudnnMxnet, ssd,
                           sim::platform(PlatformId::kJetsonNano))
                  .supported);
}

TEST(Vendor, DeterministicLatency) {
  Rng rng(3);
  models::Model m = models::build_mobilenet(rng, 128, 1, 100);
  const auto& plat = sim::platform(PlatformId::kJetsonNano);
  const double a = run_baseline(VendorLib::kCudnnMxnet, m, plat).latency_ms;
  const double b = run_baseline(VendorLib::kCudnnMxnet, m, plat).latency_ms;
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0.0);
}

TEST(Vendor, CudnnWeakOnDepthwiseRelativeToRegular) {
  // MobileNet (depthwise-heavy) should run at a much lower fraction of its
  // FLOPs than ResNet under the cuDNN profile — the root of Table 3's
  // 1.49x vs 1.03x split.
  Rng rng(4);
  models::Model mob = models::build_mobilenet(rng, 224);
  models::Model res = models::build_resnet50(rng, 224);
  const auto& plat = sim::platform(PlatformId::kJetsonNano);
  const double mob_ms =
      run_baseline(VendorLib::kCudnnMxnet, mob, plat).latency_ms;
  const double res_ms =
      run_baseline(VendorLib::kCudnnMxnet, res, plat).latency_ms;
  const double mob_gflops =
      static_cast<double>(mob.graph.total_conv_flops()) / 1e9;
  const double res_gflops =
      static_cast<double>(res.graph.total_conv_flops()) / 1e9;
  const double mob_rate = mob_gflops / (mob_ms / 1e3);
  const double res_rate = res_gflops / (res_ms / 1e3);
  EXPECT_LT(mob_rate, res_rate * 0.75);
}

TEST(Vendor, LargerModelsCostMore) {
  Rng rng(5);
  const auto& plat = sim::platform(PlatformId::kAiSage);
  models::Model small = models::build_squeezenet(rng, 128);
  models::Model big = models::build_resnet50(rng, 224);
  EXPECT_LT(run_baseline(VendorLib::kAcl, small, plat).latency_ms,
            run_baseline(VendorLib::kAcl, big, plat).latency_ms);
}

}  // namespace
}  // namespace igc::baselines
