// Tests for the paged buffer arena and the dynamic-shape execution path:
//   * PagePool mechanics — page rounding, first-fit reuse with coalescing,
//     refcounted runs, budget pressure, stats;
//   * PagedArena — slab-compatible planned-bytes accounting, double-release
//     hard errors, lazy pages, run caching + eviction, zero-copy aliasing
//     with copy-on-reacquire;
//   * cross-context page sharing — serving contexts over one shared pool
//     recycle a single physical page set (peak < 2x single-context peak),
//     including across mixed-resolution tenants;
//   * concurrent serving contexts — page-table isolation under a real
//     thread pool (run with TSan via the "concurrency" ctest label);
//   * dynamic shapes — one CompiledModel serves batch {1,2,4} x resolution
//     {224,300,416} with zero replanning/retuning, bit-identical in outputs
//     and simulated latencies to models statically compiled at each shape.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/compiler.h"
#include "core/error.h"
#include "graph/memory_planner.h"
#include "graph/passes.h"
#include "graph/shape_infer.h"
#include "models/models.h"
#include "obs/metrics.h"
#include "sim/device_spec.h"
#include "tensor/arena.h"
#include "tensor/page_pool.h"

namespace igc {
namespace {

const sim::Platform& plat() { return sim::platform(sim::PlatformId::kDeepLens); }

CompiledModel compile_fast(models::Model model) {
  CompileOptions copts;
  copts.tune_trials = 8;
  return compile(std::move(model), plat(), copts);
}

CompiledModel compile_untuned(models::Model model) {
  CompileOptions copts;
  copts.skip_tuning = true;
  return compile(std::move(model), plat(), copts);
}

void expect_bit_identical(const Tensor& a, const Tensor& b,
                          const std::string& what) {
  ASSERT_TRUE(a.shape() == b.shape()) << what;
  EXPECT_EQ(a.max_abs_diff(b), 0.0f) << what;
}

// ----- PagePool -------------------------------------------------------------

TEST(PagePool, RunsAreWholePagesAndFreedPagesAreReusedFirstFit) {
  PagePool::Options popts;
  popts.page_bytes = 1024;
  popts.min_extent_pages = 16;
  PagePool pool(popts);

  const PagePool::PageRun a = pool.alloc(1);  // rounds up to one page
  EXPECT_EQ(pool.run_bytes(a), 1024);
  const PagePool::PageRun b = pool.alloc(3000);  // three pages
  EXPECT_EQ(pool.run_bytes(b), 3 * 1024);
  EXPECT_EQ(pool.pages_in_use(), 4);
  EXPECT_EQ(pool.bytes_in_use(), 4 * 1024);
  // Both fit in the first extent (min_extent_pages).
  EXPECT_EQ(pool.extent_bytes(), 16 * 1024);

  // Free-run coalescing: after releasing both, one 4-page hole exists and a
  // 4-page run fits exactly where a and b were.
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.pages_in_use(), 0);
  const PagePool::PageRun c = pool.alloc(4 * 1024);
  EXPECT_EQ(c.extent, a.extent);
  EXPECT_EQ(c.first_page, a.first_page);
  pool.release(c);

  EXPECT_EQ(pool.total_page_allocs(), 4 + 4);
  EXPECT_EQ(pool.total_page_frees(), 4 + 4);
  EXPECT_EQ(pool.peak_bytes_in_use(), 4 * 1024);
}

TEST(PagePool, RefcountedRunsSurviveUntilTheLastRelease) {
  PagePool::Options popts;
  popts.page_bytes = 512;
  PagePool pool(popts);
  const PagePool::PageRun r = pool.alloc(512);
  EXPECT_EQ(pool.refcount(r), 1);
  pool.add_ref(r);
  EXPECT_EQ(pool.refcount(r), 2);
  pool.release(r);
  EXPECT_EQ(pool.refcount(r), 1);
  EXPECT_EQ(pool.pages_in_use(), 1);  // still live
  pool.release(r);
  EXPECT_EQ(pool.pages_in_use(), 0);
}

TEST(PagePool, BudgetTriggersPressureHooksThenThrows) {
  PagePool::Options popts;
  popts.page_bytes = 1024;
  popts.max_bytes = 4 * 1024;
  popts.min_extent_pages = 4;
  PagePool pool(popts);

  // A hook that releases a cached run on demand (what PagedArena does).
  PagePool::PageRun cached = pool.alloc(2 * 1024);
  int hook_calls = 0;
  const int id = pool.register_pressure_hook([&] {
    ++hook_calls;
    if (!cached.empty()) {
      pool.release(cached);
      cached = {};
    }
  });

  // 3 more pages would exceed the 4-page budget; the hook's eviction of the
  // 2 cached pages makes room.
  const PagePool::PageRun big = pool.alloc(3 * 1024);
  EXPECT_EQ(hook_calls, 1);
  EXPECT_TRUE(cached.empty());
  EXPECT_EQ(pool.pages_in_use(), 3);

  // Now nothing is evictable: exceeding the budget is a hard error.
  EXPECT_THROW(pool.alloc(2 * 1024), Error);
  pool.release(big);
  pool.unregister_pressure_hook(id);
}

// ----- PagedArena -----------------------------------------------------------

TEST(PagedArena, AccountingMatchesPlannedBytesNotPageRounding) {
  // Planned sizes deliberately not page multiples.
  PagedArena arena({1000, 6000, 0});
  EXPECT_EQ(arena.num_buffers(), 3);
  EXPECT_EQ(arena.capacity_bytes(), 7000);
  EXPECT_EQ(arena.in_use_bytes(), 0);

  Tensor a = arena.acquire(0, Shape{250}, DType::kFloat32, false);
  EXPECT_EQ(arena.in_use_bytes(), 1000);  // planned bytes, not 250*4
  Tensor b = arena.acquire(1, Shape{1500}, DType::kFloat32, false);
  EXPECT_EQ(arena.in_use_bytes(), 7000);
  EXPECT_EQ(arena.peak_in_use_bytes(), 7000);
  arena.release(0);
  arena.release(1);
  EXPECT_EQ(arena.in_use_bytes(), 0);
  EXPECT_EQ(arena.peak_in_use_bytes(), 7000);
  arena.reset_peak();
  EXPECT_EQ(arena.peak_in_use_bytes(), 0);
}

TEST(PagedArena, DoubleReleaseAndReleaseBeforeAcquireAreHardErrors) {
  PagedArena arena({4096});
  EXPECT_THROW(arena.release(0), Error);  // release before acquire
  Tensor t = arena.acquire(0, Shape{16}, DType::kFloat32, false);
  arena.release(0);
  EXPECT_THROW(arena.release(0), Error);  // double release
  // Out-of-range ids are rejected too.
  EXPECT_THROW(arena.release(1), Error);
  // Acquiring a buffer already in use is the mirror-image error.
  t = arena.acquire(0, Shape{16}, DType::kFloat32, false);
  EXPECT_THROW(arena.acquire(0, Shape{16}, DType::kFloat32, false), Error);
  arena.release(0);
}

TEST(PagedArena, PagesAreLazyCachedAcrossReleaseAndEvictable) {
  auto pool = std::make_shared<PagePool>();
  PagedArena arena({64 * 1024, 64 * 1024}, pool);
  EXPECT_EQ(arena.page_bytes_held(), 0);  // nothing allocated yet

  Tensor t = arena.acquire(0, Shape{64}, DType::kFloat32, false);
  const int64_t held = arena.page_bytes_held();
  EXPECT_GT(held, 0);
  EXPECT_EQ(pool->bytes_in_use(), held);
  arena.release(0);
  // cache_runs (default): the run stays mapped for the next acquire...
  EXPECT_EQ(arena.page_bytes_held(), held);
  // ...and evict_idle() drops it back to the pool.
  EXPECT_EQ(arena.evict_idle(), 1);
  EXPECT_EQ(arena.page_bytes_held(), 0);
  EXPECT_EQ(pool->bytes_in_use(), 0);
  EXPECT_EQ(arena.evictions(), 1);
  // Buffer 1 was never touched: it never cost a page.
  EXPECT_EQ(pool->total_page_allocs(), held / pool->page_bytes());
}

TEST(PagedArena, UncachedArenasReturnPagesToThePoolOnRelease) {
  auto pool = std::make_shared<PagePool>();
  PagedArena::Options aopts;
  aopts.cache_runs = false;
  PagedArena arena({8 * 1024}, pool, aopts);
  Tensor t = arena.acquire(0, Shape{32}, DType::kFloat32, false);
  EXPECT_GT(pool->bytes_in_use(), 0);
  arena.release(0);
  EXPECT_EQ(pool->bytes_in_use(), 0);
  EXPECT_EQ(arena.page_bytes_held(), 0);
}

TEST(PagedArena, SharedAcquireAliasesPagesAndCopyOnReacquireProtectsReaders) {
  auto pool = std::make_shared<PagePool>();
  PagedArena arena({4096, 4096}, pool);

  Tensor src = arena.acquire(0, Shape{16}, DType::kFloat32, false);
  for (int i = 0; i < 16; ++i) src.data_f32()[i] = static_cast<float>(i);

  // The alias views the same pages: zero-copy.
  Tensor alias = arena.acquire_shared(1, 0, Shape{16}, DType::kFloat32);
  EXPECT_EQ(alias.data_f32(), src.data_f32());

  // Source released while the alias still reads; the next acquire of buffer
  // 0 must NOT hand back the shared pages (copy-on-reacquire).
  arena.release(0);
  Tensor fresh = arena.acquire(0, Shape{16}, DType::kFloat32, false);
  EXPECT_NE(fresh.data_f32(), alias.data_f32());
  EXPECT_EQ(alias.data_f32()[7], 7.0f);  // alias contents intact

  arena.release(1);
  arena.release(0);
  // Sharing errors: aliasing a free buffer is a hard error.
  EXPECT_THROW(arena.acquire_shared(1, 0, Shape{16}, DType::kFloat32), Error);
}

TEST(PagedArena, OversizeAcquireGrowsTheRunAndRespectsThePoolBudget) {
  PagePool::Options popts;
  popts.page_bytes = 1024;
  popts.max_bytes = 8 * 1024;
  popts.min_extent_pages = 8;
  auto pool = std::make_shared<PagePool>(popts);
  PagedArena arena({1024}, pool);

  // Data-dependent output larger than the planned bytes: the run grows.
  Tensor big = arena.acquire(0, Shape{1024}, DType::kFloat32, false);
  EXPECT_EQ(big.nbytes(), 4096);
  EXPECT_GE(arena.page_bytes_held(), 4096);
  arena.release(0);

  // But never past the pool budget: a request beyond max_bytes throws even
  // after eviction (validating data-dependent outputs against capacity).
  EXPECT_THROW(arena.acquire(0, Shape{16 * 1024}, DType::kFloat32, false),
               Error);
}

TEST(PagedArena, PoolPressureEvictsCachedRunsOfIdleArenas) {
  PagePool::Options popts;
  popts.page_bytes = 1024;
  popts.max_bytes = 4 * 1024;
  popts.min_extent_pages = 4;
  auto pool = std::make_shared<PagePool>(popts);

  PagedArena cold({3 * 1024}, pool);  // caches 3 pages after its run
  Tensor t = cold.acquire(0, Shape{512}, DType::kFloat32, false);
  cold.release(0);
  EXPECT_EQ(pool->bytes_in_use(), 3 * 1024);

  // A second arena needs 3 pages: the pool is over budget until the
  // pressure hook evicts `cold`'s cached run.
  PagedArena hot({3 * 1024}, pool);
  Tensor u = hot.acquire(0, Shape{512}, DType::kFloat32, false);
  EXPECT_EQ(cold.page_bytes_held(), 0);
  EXPECT_GE(cold.evictions(), 1);
  hot.release(0);
}

TEST(PagedArena, RebindResizesBuffersForANewShapeBinding) {
  PagedArena arena({1000, 2000});
  Tensor t = arena.acquire(0, Shape{100}, DType::kFloat32, false);
  EXPECT_THROW(arena.rebind({500, 1000}), Error);  // in use
  arena.release(0);
  arena.rebind({8000, 1000});
  EXPECT_EQ(arena.capacity_bytes(), 9000);
  Tensor u = arena.acquire(0, Shape{2000}, DType::kFloat32, false);
  EXPECT_EQ(arena.in_use_bytes(), 8000);
  arena.release(0);
  EXPECT_THROW(arena.rebind({1, 2, 3}), Error);  // buffer count is fixed
}

// ----- cross-context physical page sharing ----------------------------------

TEST(PageSharing, ServingContextsOnOnePoolRecycleOnePageSet) {
  Rng rng(0x5eed);
  const CompiledModel cm = compile_fast(models::build_mobilenet(rng, 64));
  auto pool = std::make_shared<PagePool>();

  auto ctx1 = cm.make_serving_context(0, 0, pool);
  auto ctx2 = cm.make_serving_context(0, 0, pool);
  ASSERT_EQ(ctx1->page_pool().get(), pool.get());

  RunOptions ropts;
  ropts.compute_numerics = false;
  ropts.use_arena = true;

  ropts.serving_context = ctx1.get();
  const RunResult r1 = cm.run(ropts);
  const int64_t single_peak = pool->peak_bytes_in_use();
  ASSERT_GT(single_peak, 0);
  // Contexts return their pages to the pool between requests.
  EXPECT_EQ(pool->bytes_in_use(), 0);
  EXPECT_EQ(ctx1->arena_page_bytes(), 0);
  EXPECT_EQ(r1.arena_page_bytes, 0);

  // The second context's request runs on the pages the first one returned:
  // peak physical bytes stay at one request's footprint, not two.
  ropts.serving_context = ctx2.get();
  const RunResult r2 = cm.run(ropts);
  EXPECT_EQ(pool->peak_bytes_in_use(), single_peak);
  EXPECT_LT(pool->peak_bytes_in_use(), 2 * single_peak);
  expect_bit_identical(r2.output, r1.output, "ctx2 vs ctx1");

  // A per-context slab design would hold 2x the arena capacity; the shared
  // pool's mapped footprint stays within one context's page-rounded arena.
  EXPECT_LT(pool->peak_bytes_in_use(), 2 * ctx1->arena_bytes());
}

TEST(PageSharing, MixedResolutionTenantsShareThePhysicalPages) {
  Rng rng(0x5eed);
  const CompiledModel cm = compile_fast(models::build_mobilenet(rng, 64));
  auto pool = std::make_shared<PagePool>();

  // Two tenants of the same model at different resolutions, one page set.
  auto small = cm.make_serving_context(1, 64, pool);
  auto large = cm.make_serving_context(1, 96, pool);
  EXPECT_GT(large->arena_bytes(), small->arena_bytes());

  RunOptions ropts;
  ropts.compute_numerics = false;
  ropts.use_arena = true;

  ropts.serving_context = small.get();
  ropts.batch = 1;
  ropts.input_hw = 64;
  (void)cm.run(ropts);
  ropts.serving_context = large.get();
  ropts.input_hw = 96;
  (void)cm.run(ropts);

  // Pages time-share: the pool's peak is bounded by the larger request, far
  // below the sum of two private slabs.
  EXPECT_LT(pool->peak_bytes_in_use(),
            small->arena_bytes() + large->arena_bytes());
}

// ----- concurrency (run under TSan via the "concurrency" label) -------------

TEST(PagedArenaConcurrency, ConcurrentServingContextsStayIsolated) {
  Rng rng(0x5eed);
  const CompiledModel cm = compile_fast(models::build_squeezenet(rng, 32));
  auto pool = std::make_shared<PagePool>();

  RunOptions base;
  base.compute_numerics = true;
  base.use_arena = true;

  // Reference outputs, one per seed, computed single-threaded.
  constexpr int kSeeds = 3;
  Tensor refs[kSeeds];
  for (int s = 0; s < kSeeds; ++s) {
    RunOptions ropts = base;
    ropts.input_seed = 0x100 + static_cast<uint64_t>(s);
    refs[s] = cm.run(ropts).output;
  }

  constexpr int kThreads = 4;
  constexpr int kReps = 3;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      // Each worker owns a private context (page table); physical pages
      // come from the one shared pool.
      auto ctx = cm.make_serving_context(0, 0, pool);
      for (int rep = 0; rep < kReps; ++rep) {
        for (int s = 0; s < kSeeds; ++s) {
          RunOptions ropts = base;
          ropts.input_seed = 0x100 + static_cast<uint64_t>(s);
          ropts.serving_context = ctx.get();
          const RunResult r = cm.run(ropts);
          if (r.output.max_abs_diff(refs[s]) != 0.0f) ++mismatches[w];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(mismatches[w], 0) << "worker " << w;
  }
  EXPECT_EQ(pool->bytes_in_use(), 0);
}

// ----- dynamic shapes -------------------------------------------------------

TEST(DynamicShapes, BindingsAreValidatedAgainstTheDeclaredSpec) {
  Rng rng(0x5eed);
  const CompiledModel cls = compile_untuned(models::build_mobilenet(rng, 64));
  EXPECT_TRUE(cls.shape_spec().dynamic_batch);
  EXPECT_TRUE(cls.shape_spec().dynamic_hw);

  RunOptions ropts;
  ropts.compute_numerics = false;
  EXPECT_THROW(cls.run(9, 64, ropts), Error);    // batch above max_batch
  EXPECT_THROW(cls.run(1, 2048, ropts), Error);  // hw above max_hw
  EXPECT_THROW(cls.run(1, 63, ropts), Error);    // hw below min_hw

  // Detection bakes its anchors: resolution is fixed, batch is dynamic.
  const CompiledModel det = compile_untuned(
      models::build_ssd(rng, models::SsdBackbone::kMobileNet, 128));
  EXPECT_TRUE(det.shape_spec().dynamic_batch);
  EXPECT_FALSE(det.shape_spec().dynamic_hw);
  EXPECT_THROW(det.run(1, 256, ropts), Error);
  const RunResult r = det.run(2, 0, ropts);
  EXPECT_EQ(r.output.shape()[0], 2);
}

TEST(DynamicShapes, NumericsAreBitIdenticalToStaticCompilesAtEachShape) {
  // Small resolutions keep reference numerics affordable; the shapes-only
  // sweep below covers the full 224/300/416 grid.
  Rng rng(0x5eed);
  const CompiledModel dyn = compile_untuned(models::build_squeezenet(rng, 64));

  for (const int64_t batch : {1, 2}) {
    for (const int64_t hw : {64, 96}) {
      Rng rng2(0x5eed);  // same weights => same static model
      const CompiledModel fixed = compile_untuned(
          models::build_squeezenet(rng2, hw, batch));
      RunOptions ropts;
      ropts.compute_numerics = true;
      const RunResult want = fixed.run(ropts);
      const RunResult got = dyn.run(batch, hw, ropts);
      const std::string what = "batch " + std::to_string(batch) + " hw " +
                               std::to_string(hw);
      expect_bit_identical(got.output, want.output, what);
      EXPECT_DOUBLE_EQ(got.latency_ms, want.latency_ms) << what;
      EXPECT_DOUBLE_EQ(got.serial_ms, want.serial_ms) << what;

      // Arena-backed dynamic runs match too (the model-wide arena rebinds).
      RunOptions aopts = ropts;
      aopts.use_arena = true;
      const RunResult arena = dyn.run(batch, hw, aopts);
      expect_bit_identical(arena.output, want.output, what + " arena");
    }
  }
}

TEST(DynamicShapes, FullSweepRunsWithZeroReplanningOrRetuning) {
  Rng rng(0x5eed);
  const CompiledModel dyn =
      compile_untuned(models::build_inception_v1(rng, 224));

  // Static baselines compiled up front (each compile plans + resolves
  // schedules; the dynamic model must do neither again).
  std::map<std::pair<int64_t, int64_t>, std::unique_ptr<CompiledModel>> fixed;
  for (const int64_t batch : {1, 2, 4}) {
    for (const int64_t hw : {224, 300, 416}) {
      Rng rng2(0x5eed);
      fixed[{batch, hw}] = std::make_unique<CompiledModel>(
          compile_untuned(models::build_inception_v1(rng2, hw, batch)));
    }
  }

  auto& reg = obs::MetricsRegistry::global();
  const int64_t plans_before = reg.counter("graph.plan.plans").value();
  const int64_t trials_before = reg.counter("tune.trials").value();

  for (const int64_t batch : {1, 2, 4}) {
    for (const int64_t hw : {224, 300, 416}) {
      RunOptions ropts;
      ropts.compute_numerics = false;  // full-size: cost model only
      const RunResult want = fixed[{batch, hw}]->run(ropts);
      const RunResult got = dyn.run(batch, hw, ropts);
      const std::string what = "batch " + std::to_string(batch) + " hw " +
                               std::to_string(hw);
      EXPECT_DOUBLE_EQ(got.latency_ms, want.latency_ms) << what;
      EXPECT_DOUBLE_EQ(got.serial_ms, want.serial_ms) << what;
      EXPECT_DOUBLE_EQ(got.critical_path_ms, want.critical_path_ms) << what;
      EXPECT_EQ(got.output.shape()[0], batch) << what;
      EXPECT_EQ(got.counters.flops, want.counters.flops) << what;
    }
  }

  // The whole 3x3 sweep re-used the compile-time plan and schedules:
  // no plan_memory() calls, no tuning trials.
  EXPECT_EQ(reg.counter("graph.plan.plans").value(), plans_before);
  EXPECT_EQ(reg.counter("tune.trials").value(), trials_before);
}

TEST(DynamicShapes, PlanBufferAssignmentIsShapeIndependent) {
  Rng rng(0x5eed);
  models::Model m = models::build_mobilenet(rng, 64);
  graph::optimize(m.graph);
  const graph::MemoryPlan plan = graph::plan_memory(m.graph);
  ASSERT_EQ(plan.buffer_holders.size(), plan.buffer_bytes.size());

  // Resolving at the seed shape reproduces the plan's own sizes exactly.
  const std::vector<int64_t> seed_sizes =
      graph::resolve_buffer_bytes(plan, m.graph);
  ASSERT_EQ(seed_sizes.size(), plan.buffer_bytes.size());
  for (size_t i = 0; i < seed_sizes.size(); ++i) {
    EXPECT_EQ(seed_sizes[i], plan.buffer_bytes[i]) << "buffer " << i;
  }

  // Rebinding to a larger shape re-resolves sizes over the same holders:
  // every buffer still fits its holders, and the feature-map buffers grew.
  const graph::Graph big = graph::rebind_shapes(m.graph, 2, 96);
  const std::vector<int64_t> resolved = graph::resolve_buffer_bytes(plan, big);
  ASSERT_EQ(resolved.size(), plan.buffer_bytes.size());
  int64_t grew = 0;
  for (size_t i = 0; i < resolved.size(); ++i) {
    EXPECT_GE(resolved[i], plan.buffer_bytes[i]);
    if (resolved[i] > plan.buffer_bytes[i]) ++grew;
  }
  EXPECT_GT(grew, 0);
  for (const graph::Node& node : big.nodes()) {
    const int buf = plan.buffer_of_node[static_cast<size_t>(node.id)];
    if (buf < 0) continue;
    EXPECT_GE(resolved[static_cast<size_t>(buf)], node.out_shape.numel() * 4)
        << node.name;
  }
}

}  // namespace
}  // namespace igc
