// Randomized property tests: generated graphs through the full pass
// pipeline, vision operators against their references over many seeds, and
// statistical sanity of the tuner's cost model.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/rng.h"
#include "graph/executor.h"
#include "graph/memory_planner.h"
#include "graph/passes.h"
#include "models/common.h"
#include "ops/nn/conv2d.h"
#include "ops/vision/nms.h"
#include "ops/vision/prefix_sum.h"
#include "ops/vision/segmented_sort.h"
#include "sim/device_spec.h"
#include "tune/cost_model.h"

namespace igc {
namespace {

using graph::Graph;
using sim::PlatformId;

/// Generates a random but valid conv-net graph: a chain of conv/pool/
/// activation/scale-shift ops with occasional residual joins.
Graph random_graph(Rng& rng, int num_ops) {
  Graph g;
  int64_t channels = 4 * rng.next_int(1, 3);
  int64_t hw = 16;
  int x = g.add_input("data", Shape{1, channels, hw, hw});
  int skip = -1;
  for (int i = 0; i < num_ops; ++i) {
    const std::string name = "op" + std::to_string(i);
    switch (rng.next_int(0, 5)) {
      case 0:
      case 1: {  // conv (maybe channel-changing)
        const int64_t out_c = 4 * rng.next_int(1, 4);
        x = models::conv_bn_act(g, rng, name, x, out_c, 3, 1, 1);
        channels = out_c;
        break;
      }
      case 2: {  // pointwise conv
        const int64_t out_c = 4 * rng.next_int(1, 4);
        x = models::conv_bn_act(g, rng, name, x, out_c, 1, 1, 0);
        channels = out_c;
        break;
      }
      case 3: {  // pool (only while the map is big enough)
        if (hw >= 8) {
          ops::Pool2dParams p;
          p.kind = rng.next_int(0, 1) == 0 ? ops::PoolKind::kMax
                                           : ops::PoolKind::kAvg;
          x = g.add_pool2d(name, x, p);
          hw /= 2;
        }
        break;
      }
      case 4: {  // start or close a residual
        if (skip >= 0 && g.node(skip).out_shape == g.node(x).out_shape) {
          x = g.add_add(name, x, skip);
          skip = -1;
        } else {
          skip = x;
        }
        break;
      }
      case 5:
        x = g.add_activation(name, x, ops::Activation::kLeakyRelu, 0.1f);
        break;
    }
  }
  const int gap = g.add_global_avg_pool("gap", x);
  const int flat = g.add_flatten("flat", gap);
  g.set_output(g.add_softmax("prob", flat));
  return g;
}

class GraphFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GraphFuzz, PassesPreserveNumericsAndPlannerIsValid) {
  Rng build_rng(GetParam());
  const int num_ops = static_cast<int>(build_rng.next_int(3, 12));
  Rng r1(GetParam());
  Graph raw = random_graph(r1, num_ops);
  Rng r2(GetParam());
  Graph optimized = random_graph(r2, num_ops);
  graph::optimize(optimized);

  graph::ExecOptions opts;
  Rng in1(GetParam() * 7 + 1), in2(GetParam() * 7 + 1);
  const auto a = graph::execute(raw, sim::platform(PlatformId::kAiSage), opts, in1);
  const auto b =
      graph::execute(optimized, sim::platform(PlatformId::kAiSage), opts, in2);
  ASSERT_EQ(a.output.shape(), b.output.shape());
  EXPECT_LT(a.output.max_abs_diff(b.output), 1e-3f);
  // Optimization must never be slower on the simulated clock.
  EXPECT_LE(b.latency_ms, a.latency_ms * 1.0001);

  // Memory-planner invariant on the optimized graph.
  const graph::MemoryPlan plan = graph::plan_memory(optimized);
  std::vector<int> last_use(static_cast<size_t>(optimized.num_nodes()), -1);
  for (const auto& n : optimized.nodes()) {
    for (int in : n.inputs) {
      last_use[static_cast<size_t>(in)] =
          std::max(last_use[static_cast<size_t>(in)], n.id);
    }
  }
  last_use[static_cast<size_t>(optimized.output())] = optimized.num_nodes();
  for (int i = 0; i < optimized.num_nodes(); ++i) {
    for (int j = i + 1; j < optimized.num_nodes(); ++j) {
      const int bi = plan.buffer_of_node[static_cast<size_t>(i)];
      const int bj = plan.buffer_of_node[static_cast<size_t>(j)];
      if (bi < 0 || bi != bj) continue;
      EXPECT_LE(last_use[static_cast<size_t>(i)], j);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

class VisionFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VisionFuzz, SegmentedSortAllVariantsAgree) {
  Rng rng(GetParam());
  const int64_t n = rng.next_int(1, 3000);
  const int64_t num_segs = rng.next_int(1, 40);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) {
    x = static_cast<float>(rng.next_int(0, 20));  // heavy ties
  }
  std::vector<int64_t> cuts;
  for (int64_t i = 0; i < num_segs - 1; ++i) cuts.push_back(rng.next_int(0, n));
  std::sort(cuts.begin(), cuts.end());
  ops::Segments segs;
  segs.offsets.push_back(0);
  for (int64_t c : cuts) segs.offsets.push_back(c);
  segs.offsets.push_back(n);

  const bool desc = rng.next_int(0, 1) == 1;
  const auto expected = ops::segmented_argsort_reference(v, segs, desc);
  sim::SimClock c1, c2;
  sim::GpuSimulator g1(sim::platform(PlatformId::kDeepLens).gpu, c1);
  sim::GpuSimulator g2(sim::platform(PlatformId::kJetsonNano).gpu, c2);
  const int64_t block = rng.next_int(0, 1) == 0 ? 0 : rng.next_int(8, 256);
  EXPECT_EQ(ops::segmented_argsort_gpu(g1, v, segs, desc, block), expected);
  EXPECT_EQ(ops::segmented_argsort_gpu_naive(g2, v, segs, desc), expected);
}

TEST_P(VisionFuzz, PrefixSumArbitraryProcessorCounts) {
  Rng rng(GetParam() * 13);
  const int64_t n = rng.next_int(1, 5000);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.next_int(-3, 3));
  const auto expected = ops::prefix_sum_reference(v);
  sim::SimClock clock;
  sim::GpuSimulator gpu(sim::platform(PlatformId::kAiSage).gpu, clock);
  const int procs = static_cast<int>(rng.next_int(1, 200));
  EXPECT_EQ(ops::prefix_sum_gpu(gpu, v, procs), expected);
}

TEST_P(VisionFuzz, NmsAllVariantsAgreeUnderRandomParams) {
  Rng rng(GetParam() * 31);
  const int64_t bsz = rng.next_int(1, 3);
  const int64_t n = rng.next_int(5, 400);
  Tensor in(Shape{bsz, n, 6}, DType::kFloat32);
  for (int64_t i = 0; i < bsz * n; ++i) {
    float* row = in.data_f32() + i * 6;
    const bool invalid = rng.next_double() < 0.1;
    row[0] = invalid ? -1.0f : static_cast<float>(rng.next_int(0, 5));
    row[1] = rng.next_float(0.0f, 1.0f);
    const float x1 = rng.next_float(0.0f, 0.8f);
    const float y1 = rng.next_float(0.0f, 0.8f);
    row[2] = x1;
    row[3] = y1;
    row[4] = x1 + rng.next_float(0.01f, 0.4f);
    row[5] = y1 + rng.next_float(0.01f, 0.4f);
  }
  ops::NmsParams p;
  p.iou_threshold = rng.next_float(0.2f, 0.8f);
  p.valid_thresh = rng.next_float(0.0f, 0.2f);
  p.topk = rng.next_int(0, 1) == 0 ? -1 : rng.next_int(1, n);
  p.force_suppress = rng.next_int(0, 1) == 1;

  const Tensor expected = ops::box_nms_reference(in, p);
  sim::SimClock c1, c2;
  sim::GpuSimulator g1(sim::platform(PlatformId::kAiSage).gpu, c1);
  sim::GpuSimulator g2(sim::platform(PlatformId::kDeepLens).gpu, c2);
  EXPECT_EQ(ops::box_nms_gpu(g1, in, p).max_abs_diff(expected), 0.0f);
  EXPECT_EQ(ops::box_nms_gpu_naive(g2, in, p).max_abs_diff(expected), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VisionFuzz,
                         ::testing::Range<uint64_t>(1, 13));

TEST(CostModelProperty, RanksHeldOutConfigs) {
  // Fit the boosted-stump model on half the measurements of a real config
  // space; its ranking on the held-out half must correlate positively with
  // the truth (Spearman rho).
  ops::Conv2dParams p;
  p.in_channels = p.out_channels = 64;
  p.in_h = p.in_w = 28;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  const auto& dev = sim::platform(PlatformId::kJetsonNano).gpu;
  const auto space = ops::conv2d_config_space(p, dev);
  Rng rng(99);
  std::vector<std::vector<double>> x_train, x_test;
  std::vector<double> y_train, y_test;
  for (int i = 0; i < 400; ++i) {
    const auto cfg = space.random(rng);
    const double ms = ops::conv2d_latency_ms(p, cfg, dev);
    if (i % 2 == 0) {
      x_train.push_back(tune::config_features(cfg));
      y_train.push_back(ms);
    } else {
      x_test.push_back(tune::config_features(cfg));
      y_test.push_back(ms);
    }
  }
  tune::CostModel model;
  model.fit(x_train, y_train);
  std::vector<double> pred;
  for (const auto& f : x_test) pred.push_back(model.predict(f));

  // Spearman rank correlation.
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](size_t a, size_t b) { return v[a] < v[b]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto ra = ranks(pred);
  const auto rb = ranks(y_test);
  double d2 = 0.0;
  for (size_t i = 0; i < ra.size(); ++i) d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  const double nn = static_cast<double>(ra.size());
  const double rho = 1.0 - 6.0 * d2 / (nn * (nn * nn - 1.0));
  EXPECT_GT(rho, 0.5) << "cost model fails to rank configs";
}

}  // namespace
}  // namespace igc
