// Tests for the pass manager: named pipelines with per-pass metrics,
// idempotence of every registered pass, constant pre-computing, dead-node
// compaction (bit-identical outputs, fully-planned memory), and compiling
// with any single pass disabled.
#include <gtest/gtest.h>

#include <functional>
#include <sstream>
#include <thread>
#include <vector>

#include "core/compiler.h"
#include "graph/memory_planner.h"
#include "graph/pass_manager.h"
#include "graph/passes.h"
#include "models/models.h"
#include "obs/metrics.h"
#include "sim/device_spec.h"

namespace igc {
namespace {

using graph::Graph;
using graph::OpKind;

CompiledModel compile_fast(models::Model model, const sim::Platform& plat,
                           std::function<void(CompileOptions&)> tweak = {}) {
  CompileOptions copts;
  copts.tune_trials = 8;
  if (tweak) tweak(copts);
  return compile(std::move(model), plat, copts);
}

/// Model graphs used as pass fodder, small enough for numerics.
std::vector<models::Model> pass_fodder() {
  Rng rng(0x5eed);
  std::vector<models::Model> out;
  out.push_back(models::build_mobilenet(rng, 64, 1, 10));
  out.push_back(models::build_resnet50(rng, 64, 1, 10));
  out.push_back(models::build_inception_v1(rng, 64));
  out.push_back(models::build_yolov3(rng, 128, 1, 20));
  return out;
}

/// A graph with an all-constant subgraph feeding the live path: two
/// constants -> add -> relu, concatenated with a conv over the input.
Graph constant_subgraph(Rng& rng) {
  Graph g;
  const int in = g.add_input("data", Shape{1, 4, 8, 8});
  ops::Conv2dParams p;
  p.in_channels = 4;
  p.out_channels = 4;
  p.in_h = p.in_w = 8;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  const int conv = g.add_conv2d(
      "conv", in, p, Tensor::random_normal(Shape{4, 4, 3, 3}, rng));
  const int ca =
      g.add_constant("ca", Tensor::random_normal(Shape{1, 4, 8, 8}, rng));
  const int cb =
      g.add_constant("cb", Tensor::random_normal(Shape{1, 4, 8, 8}, rng));
  const int add = g.add_add("cadd", ca, cb);
  const int relu = g.add_activation("crelu", add, ops::Activation::kRelu);
  const int cat = g.add_concat("cat", {conv, relu});
  g.set_output(cat);
  return g;
}

TEST(PassManager, DefaultPipelineNamesAndJoin) {
  const auto& names = graph::default_pass_names();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(graph::default_pass_names_joined(),
            "fold_scale_shift,fuse_activation,constant_precompute,dce,place");
  EXPECT_EQ(graph::join_pass_names({}), "");
  EXPECT_EQ(graph::join_pass_names({"a", "b"}), "a,b");
  const graph::PassPipeline pipe = graph::build_pipeline({}, {});
  EXPECT_EQ(pipe.pass_names(), names);
}

TEST(PassManager, UnknownPassNameThrows) {
  EXPECT_THROW(graph::make_pass("no_such_pass"), Error);
  EXPECT_THROW(graph::build_pipeline({"fold_scale_shift", "bogus"}, {}),
               Error);
}

TEST(PassManager, RunRecordsMetricsAndReport) {
  auto& reg = obs::MetricsRegistry::global();
  const auto before = reg.snapshot();
  Rng rng(1);
  models::Model m = models::build_mobilenet(rng, 64, 1, 10);
  const graph::PassPipeline pipe = graph::build_pipeline({}, {});
  const auto report = pipe.run(m.graph);
  ASSERT_EQ(report.size(), graph::default_pass_names().size());
  const auto delta = before.delta_to(reg.snapshot());
  for (const auto& st : report) {
    EXPECT_EQ(st.pass, graph::default_pass_names()[static_cast<size_t>(
                           &st - report.data())]);
    EXPECT_GE(st.rewrites, 0);
    EXPECT_GE(st.wall_ms, 0.0);
    const std::string prefix = "graph.pass." + st.pass;
    EXPECT_EQ(delta.counters.at(prefix + ".runs"), 1) << st.pass;
    EXPECT_EQ(delta.counters.at(prefix + ".rewrites"), st.rewrites) << st.pass;
    EXPECT_EQ(delta.histograms.at(prefix + ".us").count, 1) << st.pass;
  }
  // MobileNet folds batch norms and fuses activations.
  EXPECT_GT(report[0].rewrites, 0);
  EXPECT_GT(report[1].rewrites, 0);
}

TEST(PassManager, EveryPassIdempotentAndValidates) {
  for (models::Model& m : pass_fodder()) {
    // Fresh pipelines per model: passes run in default order, and after each
    // stage the graph still validates; a second run of the same pass
    // rewrites nothing.
    for (const std::string& name : graph::default_pass_names()) {
      auto pass = graph::make_pass(name);
      pass->run(m.graph);
      m.graph.validate();
      auto again = graph::make_pass(name);
      EXPECT_EQ(again->run(m.graph), 0) << m.name << ": " << name;
      m.graph.validate();
    }
  }
}

TEST(PassManager, ValidateAfterEachAndDumpHooks) {
  Rng rng(2);
  models::Model m = models::build_squeezenet(rng, 64, 1, 10);
  std::ostringstream dump;
  graph::PassPipelineOptions popts;
  popts.validate_after_each = true;
  popts.dump_graph_after = {"dce"};
  popts.dump_stream = &dump;
  const graph::PassPipeline pipe =
      graph::build_pipeline({}, {}, {}, std::move(popts));
  pipe.run(m.graph);
  EXPECT_NE(dump.str().find("graph after pass 'dce'"), std::string::npos);
  EXPECT_NE(dump.str().find("conv"), std::string::npos);
}

TEST(Passes, ConstantPrecomputeFoldsSubgraphBitIdentical) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng_a(3), rng_b(3);
  models::Model ma{"const_subgraph", constant_subgraph(rng_a)};
  models::Model mb{"const_subgraph", constant_subgraph(rng_b)};
  const CompiledModel with_pc = compile_fast(std::move(ma), plat);
  const CompiledModel without_pc =
      compile_fast(std::move(mb), plat, [](CompileOptions& o) {
        o.disabled_passes = {"constant_precompute"};
      });
  // fuse folds crelu into cadd; precompute then evaluates cadd(+relu) into
  // one constant, leaving ca, cb, and the bypassed crelu for dce.
  EXPECT_EQ(with_pc.pass_stats().precomputed_constants, 1);
  EXPECT_EQ(with_pc.pass_stats().removed_dead_nodes, 3);
  EXPECT_EQ(without_pc.pass_stats().precomputed_constants, 0);
  const RunResult a = with_pc.run();
  const RunResult b = without_pc.run();
  ASSERT_TRUE(a.output.shape() == b.output.shape());
  EXPECT_EQ(a.output.max_abs_diff(b.output), 0.0f);
  // The folded add kernel no longer runs, so inference gets faster.
  EXPECT_LT(a.latency_ms, b.latency_ms);
}

TEST(Passes, DeadNodeEliminationCompacts) {
  Rng rng(5);
  Graph g = constant_subgraph(rng);
  const int before = g.num_nodes();
  ASSERT_GT(graph::constant_precompute_pass(g), 0);
  // Feeder constants (ca, cb) and the folded add are dead markers now.
  const int removed = graph::dead_node_elimination_pass(g);
  EXPECT_EQ(removed, 3);
  EXPECT_EQ(g.num_nodes(), before - removed);
  g.validate();
  const auto live = g.live_mask();
  for (bool b : live) EXPECT_TRUE(b);
  // Every live node gets a planned buffer after compaction.
  const graph::MemoryPlan plan = graph::plan_memory(g);
  for (int buf : plan.buffer_of_node) EXPECT_GE(buf, 0);
}

TEST(Passes, CompactionPreservesOutputsAcrossModels) {
  // The default pipeline (with dce) and a dce-less pipeline must produce
  // bit-identical outputs and timing in every executor mode: compaction
  // renumbers ids but keeps names, and all executor randomness is seeded
  // from names.
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  struct Case {
    std::function<models::Model(Rng&)> build;
    bool numerics;
  };
  const std::vector<Case> cases = {
      {[](Rng& r) { return models::build_mobilenet(r, 64, 1, 10); }, true},
      {[](Rng& r) { return models::build_squeezenet(r, 64, 1, 10); }, true},
      {[](Rng& r) { return models::build_resnet50(r, 64, 1, 10); }, true},
      {[](Rng& r) { return models::build_inception_v1(r, 64); }, true},
      {[](Rng& r) { return models::build_fcn_resnet50(r, 64, 1, 5); }, true},
      {[](Rng& r) {
         return models::build_ssd(r, models::SsdBackbone::kMobileNet, 128);
       },
       false},
      {[](Rng& r) { return models::build_yolov3(r, 128, 1, 20); }, false},
  };
  for (const Case& c : cases) {
    Rng rng_a(0x5eed), rng_b(0x5eed);
    const CompiledModel with_dce = compile_fast(c.build(rng_a), plat);
    const CompiledModel without_dce =
        compile_fast(c.build(rng_b), plat, [](CompileOptions& o) {
          o.disabled_passes = {"dce"};
        });
    for (const graph::ExecMode mode :
         {graph::ExecMode::kSequential, graph::ExecMode::kWavefront}) {
      for (const bool arena : {false, true}) {
        RunOptions ropts;
        ropts.input_seed = 0x515;
        ropts.compute_numerics = c.numerics;
        ropts.mode = mode;
        ropts.use_arena = arena;
        const RunResult a = with_dce.run(ropts);
        const RunResult b = without_dce.run(ropts);
        const std::string what =
            with_dce.model_name() +
            (mode == graph::ExecMode::kWavefront ? " wavefront"
                                                 : " sequential") +
            (arena ? "+arena" : "");
        ASSERT_TRUE(a.output.shape() == b.output.shape()) << what;
        EXPECT_EQ(a.output.max_abs_diff(b.output), 0.0f) << what;
        EXPECT_DOUBLE_EQ(a.serial_ms, b.serial_ms) << what;
        EXPECT_DOUBLE_EQ(a.critical_path_ms, b.critical_path_ms) << what;
      }
    }
    // The compacted plan never leaves an unplanned slot.
    const graph::MemoryPlan plan = with_dce.memory_plan();
    for (int buf : plan.buffer_of_node) {
      EXPECT_GE(buf, 0) << with_dce.model_name();
    }
  }
}

TEST(Passes, DisablingAnySinglePassStillCompilesAndRuns) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kJetsonNano);
  for (const std::string& name : graph::default_pass_names()) {
    Rng rng(0x5eed);
    const CompiledModel cm =
        compile_fast(models::build_squeezenet(rng, 64, 1, 10), plat,
                     [&](CompileOptions& o) { o.disabled_passes = {name}; });
    const auto pipeline = cm.pass_pipeline();
    EXPECT_EQ(pipeline.size(), graph::default_pass_names().size() - 1);
    for (const auto& p : pipeline) EXPECT_NE(p, name);
    const RunResult r = cm.run();
    EXPECT_EQ(r.output.shape(), Shape({1, 10}));
    EXPECT_GT(r.latency_ms, 0.0);
  }
}

TEST(Passes, PassStatsCountLiveNodesOnly) {
  // With the pipeline cut before compaction/placement, dead fold/fuse
  // markers remain in the node list; the device counts must ignore them.
  Rng rng(0x5eed);
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  const CompiledModel cm =
      compile_fast(models::build_mobilenet(rng, 64, 1, 10), plat,
                   [](CompileOptions& o) {
                     o.pass_names = {"fold_scale_shift", "fuse_activation"};
                   });
  const graph::PassStats& st = cm.pass_stats();
  EXPECT_GT(st.folded_scale_shifts, 0);
  EXPECT_GT(st.fused_activations, 0);
  int live_nodes = 0;
  // CompiledModel does not expose the graph; count via the memory plan,
  // whose -1 slots are exactly the dead markers.
  for (int buf : cm.memory_plan().buffer_of_node) live_nodes += buf >= 0;
  EXPECT_EQ(st.gpu_nodes + st.cpu_nodes, live_nodes);
}

TEST(Passes, ConcurrentWavefrontRunsWithCompactedGraph) {
  // TSan fodder: arena-less wavefront runs on one compiled model from
  // several threads; compaction must not introduce shared mutable state.
  Rng rng(0x5eed);
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  const CompiledModel cm =
      compile_fast(models::build_squeezenet(rng, 64, 1, 10), plat);
  RunOptions ropts;
  ropts.mode = graph::ExecMode::kWavefront;
  const RunResult base = cm.run(ropts);
  std::vector<std::thread> threads;
  std::vector<RunResult> results(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] { results[static_cast<size_t>(t)] = cm.run(ropts); });
  }
  for (auto& t : threads) t.join();
  for (const RunResult& r : results) {
    EXPECT_EQ(r.output.max_abs_diff(base.output), 0.0f);
    EXPECT_DOUBLE_EQ(r.latency_ms, base.latency_ms);
  }
}

}  // namespace
}  // namespace igc
