// Tests for the serving engine (src/serve): open-loop arrivals, the bounded
// multi-tenant request queue, and the scheduler/worker-pool engine.
//
//   * PoissonArrivals — deterministic schedules, correct mean rate;
//   * RequestQueue — deterministic injected-clock batch formation (size
//     trigger vs max-wait trigger), admission control accounting (shed
//     watermark, hard cap), round-robin fairness across tenants, and
//     close() flushing partial batches;
//   * ServingEngine — every admitted request resolves, timestamps are
//     ordered, saturation sheds load instead of growing the queue without
//     bound, no tenant starves under saturation, clean shutdown with
//     in-flight requests, serve.* metrics accounting, and bit-identical
//     outputs to a direct run() (the engine is a scheduler, not a numerics
//     path).
//
// Engine tests run real threads but assert only scheduling-independent
// invariants, so they are deterministic and TSan-clean on any interleaving.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/compiler.h"
#include "models/models.h"
#include "obs/metrics.h"
#include "serve/arrivals.h"
#include "serve/engine.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "sim/device_spec.h"

namespace igc {
namespace {

using serve::Admission;
using serve::Batch;
using serve::RequestPtr;
using serve::RequestQueue;

// ----- Poisson arrivals ------------------------------------------------------

TEST(PoissonArrivals, DeterministicPerSeed) {
  const auto a = serve::poisson_arrival_times_ms(500.0, 1000.0, 0x5eed);
  const auto b = serve::poisson_arrival_times_ms(500.0, 1000.0, 0x5eed);
  EXPECT_EQ(a, b);
  const auto c = serve::poisson_arrival_times_ms(500.0, 1000.0, 0xd1ff);
  EXPECT_NE(a, c);
}

TEST(PoissonArrivals, MatchesRateAndStaysInRange) {
  const double rate = 2000.0, duration = 5000.0;
  const auto t = serve::poisson_arrival_times_ms(rate, duration, 42);
  // Expected count = rate * duration_s = 10000; Poisson sd = 100. A 5-sigma
  // band never flakes on a fixed seed (the schedule is deterministic).
  const double expected = rate * duration / 1000.0;
  EXPECT_NEAR(static_cast<double>(t.size()), expected, 5.0 * std::sqrt(expected));
  EXPECT_TRUE(std::is_sorted(t.begin(), t.end()));
  ASSERT_FALSE(t.empty());
  EXPECT_GE(t.front(), 0.0);
  EXPECT_LT(t.back(), duration);
}

TEST(PoissonArrivals, RejectsBadArguments) {
  EXPECT_THROW(serve::poisson_arrival_times_ms(0.0, 100.0, 1), Error);
  EXPECT_THROW(serve::poisson_arrival_times_ms(10.0, 0.0, 1), Error);
}

// ----- RequestQueue: deterministic batch formation ---------------------------

RequestPtr make_request(int tenant, uint64_t id = 0) {
  auto r = std::make_unique<serve::Request>();
  r->id = id;
  r->tenant = tenant;
  return r;
}

RequestQueue::Options small_queue(int tenants, int max_batch, double max_wait,
                                  int max_depth = 64) {
  RequestQueue::Options o;
  o.num_tenants = tenants;
  o.max_batch_size = max_batch;
  o.max_wait_ms = max_wait;
  o.max_depth = max_depth;
  o.shed_watermark = max_depth;  // watermark off unless a test turns it on
  return o;
}

TEST(RequestQueue, SizeTriggerFormsFullBatchImmediately) {
  RequestQueue q(small_queue(1, 4, 1000.0));
  for (uint64_t i = 0; i < 3; ++i) {
    RequestPtr r = make_request(0, i);
    ASSERT_EQ(q.offer(r, 0.0), Admission::kAdmitted);
  }
  // Three of four: no size trigger, and the 1000 ms wait is far away.
  EXPECT_FALSE(q.try_form_batch(1.0).has_value());

  RequestPtr r = make_request(0, 3);
  ASSERT_EQ(q.offer(r, 1.0), Admission::kAdmitted);
  auto b = q.try_form_batch(1.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->tenant, 0);
  ASSERT_EQ(b->size(), 4);
  // FIFO within the lane.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(b->requests[static_cast<size_t>(i)]->id,
              static_cast<uint64_t>(i));
  }
  EXPECT_EQ(q.depth(), 0);
}

TEST(RequestQueue, MaxWaitTriggerFlushesPartialBatch) {
  RequestQueue q(small_queue(1, 8, 5.0));
  RequestPtr r = make_request(0);
  ASSERT_EQ(q.offer(r, 10.0), Admission::kAdmitted);

  // Before the deadline: nothing dispatches, and the deadline is exactly
  // enqueue + max_wait.
  EXPECT_FALSE(q.try_form_batch(14.9).has_value());
  EXPECT_DOUBLE_EQ(q.next_deadline_ms(), 15.0);

  auto b = q.try_form_batch(15.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->size(), 1);
  EXPECT_TRUE(std::isinf(q.next_deadline_ms()));
}

TEST(RequestQueue, ZeroWaitDispatchesAnythingQueued) {
  RequestQueue q(small_queue(1, 8, 0.0));
  RequestPtr r = make_request(0);
  ASSERT_EQ(q.offer(r, 0.0), Admission::kAdmitted);
  auto b = q.try_form_batch(0.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->size(), 1);
}

TEST(RequestQueue, SizeTriggerBeatsExpiredSmallerLane) {
  // Tenant 0 has one long-waiting request; tenant 1 just hit the size
  // trigger. The full lane dispatches first (it can't get fuller), then the
  // expired one.
  RequestQueue q(small_queue(2, 2, 5.0));
  RequestPtr a = make_request(0, 100);
  ASSERT_EQ(q.offer(a, 0.0), Admission::kAdmitted);
  for (uint64_t i = 0; i < 2; ++i) {
    RequestPtr r = make_request(1, i);
    ASSERT_EQ(q.offer(r, 9.0), Admission::kAdmitted);
  }
  auto first = q.try_form_batch(9.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->tenant, 1);
  auto second = q.try_form_batch(9.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tenant, 0);
  EXPECT_EQ(second->requests[0]->id, 100u);
}

TEST(RequestQueue, RoundRobinAcrossSaturatedTenants) {
  const int tenants = 3;
  RequestQueue q(small_queue(tenants, 2, 1000.0, 256));
  for (int t = 0; t < tenants; ++t) {
    for (int i = 0; i < 6; ++i) {
      RequestPtr r = make_request(t);
      ASSERT_EQ(q.offer(r, 0.0), Admission::kAdmitted);
    }
  }
  // Every lane stays at/above the size trigger for the first 2 rounds, so
  // batch tenants must cycle 0,1,2,0,1,2,... — no tenant starves.
  std::vector<int> order;
  for (int i = 0; i < 9; ++i) {
    auto b = q.try_form_batch(0.0);
    ASSERT_TRUE(b.has_value());
    order.push_back(b->tenant);
  }
  for (int i = 0; i < 9; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i % 3);
  EXPECT_EQ(q.depth(), 0);
}

TEST(RequestQueue, AdmissionShedsAtWatermarkAndRejectsAtCap) {
  RequestQueue::Options o = small_queue(1, 4, 1000.0, 8);
  o.shed_watermark = 6;
  RequestQueue q(o);
  int admitted = 0, shed = 0;
  for (int i = 0; i < 10; ++i) {
    RequestPtr r = make_request(0);
    const Admission a = q.offer(r, 0.0);
    if (a == Admission::kAdmitted) {
      ++admitted;
      EXPECT_EQ(r, nullptr);  // moved in
    } else {
      ++shed;
      EXPECT_EQ(a, Admission::kShedWatermark);
      EXPECT_NE(r, nullptr);  // left with the caller
    }
  }
  EXPECT_EQ(admitted, 6);
  EXPECT_EQ(shed, 4);
  EXPECT_EQ(q.depth(), 6);
}

TEST(RequestQueue, HardCapRejectsQueueFull) {
  RequestQueue::Options o = small_queue(1, 4, 1000.0, 4);
  o.shed_watermark = 4;  // watermark == cap: only hard rejections
  RequestQueue q(o);
  for (int i = 0; i < 4; ++i) {
    RequestPtr r = make_request(0);
    ASSERT_EQ(q.offer(r, 0.0), Admission::kAdmitted);
  }
  RequestPtr r = make_request(0);
  EXPECT_EQ(q.offer(r, 0.0), Admission::kRejectedQueueFull);
  EXPECT_EQ(q.depth(), 4);
}

TEST(RequestQueue, UnknownTenantAndCloseSemantics) {
  RequestQueue q(small_queue(2, 4, 1000.0));
  RequestPtr bad = make_request(7);
  EXPECT_EQ(q.offer(bad, 0.0), Admission::kRejectedUnknownTenant);

  RequestPtr ok = make_request(0);
  ASSERT_EQ(q.offer(ok, 0.0), Admission::kAdmitted);
  q.close();
  EXPECT_TRUE(q.closed());
  RequestPtr late = make_request(0);
  EXPECT_EQ(q.offer(late, 0.0), Admission::kRejectedShutdown);

  // close() makes the queued partial batch dispatchable immediately even
  // though its max-wait deadline is far away.
  auto b = q.try_form_batch(0.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->size(), 1);
}

// ----- ServingEngine ---------------------------------------------------------

/// Small, untuned model: compile cost is milliseconds, shapes-only runs are
/// fast, and the engine behavior under test is independent of model size.
CompiledModel compile_small(const std::string& suffix = "") {
  Rng rng(0x5eed);
  CompileOptions copts;
  copts.skip_tuning = true;
  models::Model m = models::build_squeezenet(rng, 64, 1, 10);
  if (!suffix.empty()) m.name += suffix;
  return compile(std::move(m),
                 sim::platform(sim::PlatformId::kDeepLens), copts);
}

serve::TenantSpec tenant_of(const std::string& name, const CompiledModel& cm) {
  serve::TenantSpec t;
  t.name = name;
  t.model = &cm;
  t.run.compute_numerics = false;
  t.run.use_arena = true;
  return t;
}

TEST(ServingEngine, CompletesEveryAdmittedRequestWithOrderedTimestamps) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  opts.num_workers = 2;
  opts.queue.max_depth = 256;
  opts.queue.max_batch_size = 4;
  opts.queue.max_wait_ms = 0.0;
  opts.registry = nullptr;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  serve::ServingEngine engine(opts);
  const int t0 = engine.add_tenant(tenant_of("a", cm));
  engine.start();

  std::vector<std::future<serve::RequestOutcome>> futures;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    serve::SubmitResult r = engine.submit(t0, static_cast<uint64_t>(i));
    ASSERT_TRUE(r.admitted()) << serve::admission_reason(r.admission);
    futures.push_back(std::move(r.outcome));
  }
  engine.stop();

  for (auto& f : futures) {
    const serve::RequestOutcome o = f.get();
    EXPECT_EQ(o.tenant, t0);
    EXPECT_LE(o.enqueue_ms, o.schedule_ms);
    EXPECT_LE(o.schedule_ms, o.start_ms);
    EXPECT_LE(o.start_ms, o.finish_ms);
    EXPECT_GE(o.batch_size, 1);
    EXPECT_LE(o.batch_size, 4);
    EXPECT_GT(o.sim_latency_ms, 0.0);
  }
  const serve::EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted, n);
  EXPECT_EQ(s.admitted, n);
  EXPECT_EQ(s.completed, n);
  EXPECT_EQ(s.failed, 0);
  EXPECT_GE(s.batches, (n + 3) / 4);  // batches never exceed max size
}

TEST(ServingEngine, OutputsMatchDirectRun) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.queue.max_wait_ms = 0.0;
  serve::ServingEngine engine(opts);
  serve::TenantSpec spec = tenant_of("a", cm);
  spec.run.compute_numerics = true;
  const int t0 = engine.add_tenant(spec);
  engine.start();
  serve::SubmitResult r = engine.submit(t0, 0x1234);
  ASSERT_TRUE(r.admitted());
  const serve::RequestOutcome o = r.outcome.get();
  engine.stop();

  // The engine schedules the same run() the caller could make directly;
  // numerics (and simulated latency) must be bit-identical.
  RunOptions direct;
  direct.input_seed = 0x1234;
  direct.compute_numerics = true;
  direct.use_arena = true;
  const RunResult d = cm.run(direct);
  EXPECT_EQ(o.sim_latency_ms, d.latency_ms);
}

TEST(ServingEngine, SimPacingHoldsWorkersForScaledSimulatedTime) {
  // With sim_pacing set, every request's service time covers at least the
  // scaled simulated latency: the worker blocks on its (simulated) device,
  // which is what lets a pool scale goodput on a host with few cores.
  const CompiledModel cm = compile_small();
  const double sim_ms = cm.run(1, false).latency_ms;
  ASSERT_GT(sim_ms, 0.0);

  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.queue.max_wait_ms = 0.0;
  opts.sim_pacing = 0.25;
  serve::ServingEngine engine(opts);
  const int t0 = engine.add_tenant(tenant_of("a", cm));
  engine.start();
  std::vector<std::future<serve::RequestOutcome>> futures;
  for (int i = 0; i < 4; ++i) {
    serve::SubmitResult r = engine.submit(t0, static_cast<uint64_t>(i));
    ASSERT_TRUE(r.admitted());
    futures.push_back(std::move(r.outcome));
  }
  engine.stop();
  for (auto& f : futures) {
    const serve::RequestOutcome o = f.get();
    EXPECT_GE(o.service_ms(), sim_ms * opts.sim_pacing * 0.99);
    EXPECT_EQ(o.sim_latency_ms, sim_ms);
  }

  serve::EngineOptions bad;
  bad.sim_pacing = -1.0;
  EXPECT_THROW(serve::ServingEngine{bad}, Error);
}

TEST(ServingEngine, SaturationShedsInsteadOfGrowingTheQueue) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.num_workers = 1;
  opts.queue.max_depth = 16;
  opts.queue.shed_watermark = 12;
  opts.queue.max_batch_size = 4;
  opts.queue.max_wait_ms = 0.0;
  serve::ServingEngine engine(opts);
  const int t0 = engine.add_tenant(tenant_of("a", cm));
  engine.start();

  // Blast far more work than one worker can absorb, with no pacing: an
  // open-loop burst. Admission control must bound the queue and refuse the
  // overflow instead of buffering it.
  std::vector<std::future<serve::RequestOutcome>> admitted;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    serve::SubmitResult r = engine.submit(t0, static_cast<uint64_t>(i));
    if (r.admitted()) admitted.push_back(std::move(r.outcome));
  }
  engine.stop();

  const serve::EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted, n);
  EXPECT_EQ(s.admitted, static_cast<int64_t>(admitted.size()));
  EXPECT_GT(s.shed + s.rejected_full, 0) << "saturation must shed load";
  EXPECT_LE(s.queue_depth_peak, 16) << "queue depth must stay bounded";
  EXPECT_EQ(s.admitted, s.completed);
  EXPECT_EQ(s.submitted,
            s.admitted + s.shed + s.rejected_full + s.rejected_shutdown +
                s.rejected_unknown_tenant);
  for (auto& f : admitted) f.get();  // every admitted future resolves
}

TEST(ServingEngine, NoTenantStarvesUnderSaturation) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.num_workers = 2;
  opts.queue.max_depth = 30;
  opts.queue.shed_watermark = 30;
  opts.queue.max_batch_size = 2;
  opts.queue.max_wait_ms = 0.0;
  serve::ServingEngine engine(opts);
  const int tenants = 3;
  for (int t = 0; t < tenants; ++t) {
    engine.add_tenant(tenant_of("tenant" + std::to_string(t), cm));
  }
  engine.start();

  // Interleaved saturating submissions across all tenants.
  int64_t admitted = 0;
  for (int round = 0; round < 400; ++round) {
    for (int t = 0; t < tenants; ++t) {
      serve::SubmitResult r =
          engine.submit(t, static_cast<uint64_t>(round));
      if (r.admitted()) ++admitted;
    }
  }
  engine.stop();

  const serve::EngineStats s = engine.stats();
  ASSERT_EQ(static_cast<int>(s.completed_per_tenant.size()), tenants);
  EXPECT_EQ(s.completed, admitted);
  const int64_t fair_share = s.completed / tenants;
  for (int t = 0; t < tenants; ++t) {
    // Round-robin batch formation keeps every tenant within a batch of its
    // fair share; anything above half the share proves no starvation with
    // a wide margin.
    EXPECT_GT(s.completed_per_tenant[static_cast<size_t>(t)], fair_share / 2)
        << "tenant " << t << " starved";
  }
}

TEST(ServingEngine, CleanShutdownResolvesInFlightRequests) {
  const CompiledModel cm = compile_small();
  serve::EngineOptions opts;
  obs::MetricsRegistry reg;
  opts.registry = &reg;
  opts.num_workers = 2;
  opts.queue.max_depth = 512;
  opts.queue.max_batch_size = 8;
  // A long batching window: stop() must flush partial batches without
  // waiting for it.
  opts.queue.max_wait_ms = 60000.0;
  serve::ServingEngine engine(opts);
  const int t0 = engine.add_tenant(tenant_of("a", cm));
  engine.start();

  std::vector<std::future<serve::RequestOutcome>> futures;
  for (int i = 0; i < 100; ++i) {
    serve::SubmitResult r = engine.submit(t0, static_cast<uint64_t>(i));
    ASSERT_TRUE(r.admitted());
    futures.push_back(std::move(r.outcome));
  }
  engine.stop();  // requests are still queued: drain, don't drop

  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
  const serve::EngineStats s = engine.stats();
  EXPECT_EQ(s.completed, 100);

  // Post-stop submissions are refused with the shutdown reason.
  serve::SubmitResult late = engine.submit(t0, 0);
  EXPECT_EQ(late.admission, Admission::kRejectedShutdown);
  EXPECT_EQ(engine.stats().rejected_shutdown, 1);

  // stop() is idempotent.
  engine.stop();
}

TEST(ServingEngine, RecordsServeMetricsFamily) {
  const CompiledModel cm = compile_small();
  obs::MetricsRegistry reg;
  serve::EngineOptions opts;
  opts.registry = &reg;
  opts.num_workers = 1;
  opts.queue.max_batch_size = 4;
  opts.queue.max_wait_ms = 0.0;
  serve::ServingEngine engine(opts);
  const int t0 = engine.add_tenant(tenant_of("a", cm));
  engine.start();
  const int n = 17;
  for (int i = 0; i < n; ++i) {
    engine.submit(t0, static_cast<uint64_t>(i));
  }
  engine.stop();

  const serve::EngineStats s = engine.stats();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("serve.submitted"), n);
  EXPECT_EQ(snap.counters.at("serve.admitted"), s.admitted);
  EXPECT_EQ(snap.counters.at("serve.completed"), s.completed);
  EXPECT_EQ(snap.counters.at("serve.shed"), s.shed);
  EXPECT_EQ(snap.counters.at("serve.rejected"),
            s.rejected_full + s.rejected_shutdown + s.rejected_unknown_tenant);
  EXPECT_EQ(snap.counters.at("serve.batches"), s.batches);
  // One histogram sample per completion / per batch.
  EXPECT_EQ(snap.histograms.at("serve.e2e_ms").count, s.completed);
  EXPECT_EQ(snap.histograms.at("serve.service_ms").count, s.completed);
  EXPECT_EQ(snap.histograms.at("serve.queue_wait_ms").count, s.admitted);
  EXPECT_EQ(snap.histograms.at("serve.batch_size").count, s.batches);
  EXPECT_EQ(snap.gauges.at("serve.queue_depth"), 0);  // drained at stop()
  EXPECT_EQ(snap.gauges.at("serve.queue_depth_peak"), s.queue_depth_peak);
}

TEST(ServingEngine, MultipleModelsMultiplexOverOneWorkerPool) {
  // Two distinct CompiledModels (different names) served by the same pool;
  // outcomes carry the right tenant and the right per-model simulated
  // latency, proving worker contexts don't leak across tenants.
  const CompiledModel cm_a = compile_small("_A");
  const CompiledModel cm_b = compile_small("_B");
  obs::MetricsRegistry reg;
  serve::EngineOptions opts;
  opts.registry = &reg;
  opts.num_workers = 2;
  opts.queue.max_wait_ms = 0.0;
  serve::ServingEngine engine(opts);
  const int ta = engine.add_tenant(tenant_of("a", cm_a));
  const int tb = engine.add_tenant(tenant_of("b", cm_b));
  EXPECT_EQ(engine.tenant_name(ta), "a");
  EXPECT_EQ(engine.tenant_name(tb), "b");
  engine.start();

  std::vector<std::future<serve::RequestOutcome>> fa, fb;
  for (int i = 0; i < 10; ++i) {
    auto ra = engine.submit(ta, static_cast<uint64_t>(i));
    auto rb = engine.submit(tb, static_cast<uint64_t>(i));
    ASSERT_TRUE(ra.admitted());
    ASSERT_TRUE(rb.admitted());
    fa.push_back(std::move(ra.outcome));
    fb.push_back(std::move(rb.outcome));
  }
  engine.stop();

  RunOptions direct;
  direct.compute_numerics = false;
  const double sim_a = cm_a.run(direct).latency_ms;
  const double sim_b = cm_b.run(direct).latency_ms;
  for (auto& f : fa) {
    const serve::RequestOutcome o = f.get();
    EXPECT_EQ(o.tenant, ta);
    EXPECT_EQ(o.sim_latency_ms, sim_a);
  }
  for (auto& f : fb) {
    const serve::RequestOutcome o = f.get();
    EXPECT_EQ(o.tenant, tb);
    EXPECT_EQ(o.sim_latency_ms, sim_b);
  }
}

TEST(ServingEngine, LifecycleErrors) {
  const CompiledModel cm = compile_small();
  obs::MetricsRegistry reg;
  serve::EngineOptions opts;
  opts.registry = &reg;
  {
    serve::ServingEngine engine(opts);
    EXPECT_THROW(engine.start(), Error);  // no tenants
    serve::TenantSpec no_model;
    no_model.name = "x";
    EXPECT_THROW(engine.add_tenant(no_model), Error);
    const int t0 = engine.add_tenant(tenant_of("a", cm));
    // Submissions before start() are refused, not crashed.
    EXPECT_EQ(engine.submit(t0, 0).admission, Admission::kRejectedShutdown);
    engine.start();
    EXPECT_THROW(engine.add_tenant(tenant_of("b", cm)), Error);
    // Unknown tenant ids are refused with their own reason.
    EXPECT_EQ(engine.submit(99, 0).admission,
              Admission::kRejectedUnknownTenant);
  }  // destructor stops a started engine cleanly
  opts.num_workers = 0;
  EXPECT_THROW(serve::ServingEngine{opts}, Error);
}

}  // namespace
}  // namespace igc
