// Unit tests for src/tensor: Tensor semantics and layout transforms.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "tensor/layout.h"
#include "tensor/tensor.h"

namespace igc {
namespace {

TEST(Tensor, ZerosAndFull) {
  Tensor z = Tensor::zeros(Shape{2, 3});
  for (float v : z.span_f32()) EXPECT_EQ(v, 0.0f);
  Tensor f = Tensor::full(Shape{4}, 2.5f);
  for (float v : f.span_f32()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, CopyAliasesCloneDoesNot) {
  Tensor a = Tensor::zeros(Shape{4});
  Tensor alias = a;
  Tensor deep = a.clone();
  a.data_f32()[0] = 7.0f;
  EXPECT_EQ(alias.data_f32()[0], 7.0f);
  EXPECT_EQ(deep.data_f32()[0], 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Rng rng(1);
  Tensor a = Tensor::random_uniform(Shape{2, 6}, rng);
  Tensor b = a.reshape(Shape{3, 4});
  EXPECT_EQ(b.shape(), Shape({3, 4}));
  EXPECT_EQ(a.data_f32()[5], b.data_f32()[5]);
  EXPECT_THROW(a.reshape(Shape{5}), Error);
}

TEST(Tensor, FromVectorAndMaxAbsDiff) {
  Tensor a = Tensor::from_vector(Shape{3}, {1.0f, 2.0f, 3.0f});
  Tensor b = Tensor::from_vector(Shape{3}, {1.0f, 2.5f, 3.0f});
  EXPECT_FLOAT_EQ(a.max_abs_diff(b), 0.5f);
  EXPECT_FLOAT_EQ(a.max_abs_diff(a), 0.0f);
}

TEST(Tensor, RandomIsDeterministicPerSeed) {
  Rng r1(42), r2(42);
  Tensor a = Tensor::random_uniform(Shape{64}, r1);
  Tensor b = Tensor::random_uniform(Shape{64}, r2);
  EXPECT_EQ(a.max_abs_diff(b), 0.0f);
}

TEST(Tensor, Int32Accessors) {
  Tensor t = Tensor::from_vector_i32(Shape{3}, {5, -2, 9});
  EXPECT_EQ(t.data_i32()[2], 9);
  EXPECT_THROW(t.data_f32(), Error);
}

TEST(Layout, Names) {
  EXPECT_EQ(Layout::nchw().str(), "NCHW");
  EXPECT_EQ(Layout::nchwc(8).str(), "NCHW8c");
  EXPECT_THROW(Layout::nchwc(1), Error);
}

TEST(Layout, BlockedRoundTrip) {
  Rng rng(3);
  Tensor a = Tensor::random_uniform(Shape{2, 16, 5, 7}, rng);
  for (int block : {2, 4, 8, 16}) {
    Tensor blocked = nchw_to_nchwc(a, block);
    EXPECT_EQ(blocked.shape(), Shape({2, 16 / block, 5, 7, block}));
    Tensor back = nchwc_to_nchw(blocked);
    EXPECT_EQ(a.max_abs_diff(back), 0.0f) << "block=" << block;
  }
}

TEST(Layout, BlockedLayoutPlacesChannelsInnermost) {
  // 1x4x1x1 with values 0..3: NCHW4c must be identical vector (single cell).
  Tensor a = Tensor::from_vector(Shape{1, 4, 1, 1}, {0, 1, 2, 3});
  Tensor blocked = nchw_to_nchwc(a, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(blocked.data_f32()[i], static_cast<float>(i));
  }
}

TEST(Layout, IndivisibleChannelsRejected) {
  Tensor a = Tensor::zeros(Shape{1, 6, 2, 2});
  EXPECT_THROW(nchw_to_nchwc(a, 4), Error);
}

TEST(Layout, TransformCost) {
  Layout nchw = Layout::nchw();
  Layout b8 = Layout::nchwc(8);
  EXPECT_EQ(layout_transform_elements(nchw, nchw, 100), 0);
  EXPECT_EQ(layout_transform_elements(nchw, b8, 100), 200);
  EXPECT_EQ(layout_transform_elements(b8, Layout::nchwc(16), 100), 200);
}

}  // namespace
}  // namespace igc
