// Tests for the vision-specific operators (Sec. 3.1): prefix sum,
// segmented argsort, box_nms, multibox, ROIAlign, and YOLO decode.
// Every GPU implementation must match its reference exactly, and the
// optimized variants must beat the naive ones on the simulated clock.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/rng.h"
#include "ops/vision/nms.h"
#include "ops/vision/prefix_sum.h"
#include "ops/vision/roi_align.h"
#include "ops/vision/segmented_sort.h"
#include "ops/vision/yolo.h"
#include "sim/simulator.h"

namespace igc::ops {
namespace {

using sim::GpuSimulator;
using sim::PlatformId;
using sim::SimClock;

GpuSimulator make_gpu(SimClock& clock, PlatformId id = PlatformId::kDeepLens) {
  return GpuSimulator(sim::platform(id).gpu, clock);
}

// ---- prefix sum ----------------------------------------------------------

TEST(PrefixSum, ReferenceInclusive) {
  auto out = prefix_sum_reference({1, 2, 3, 4});
  EXPECT_EQ(out, (std::vector<float>{1, 3, 6, 10}));
}

TEST(PrefixSum, PaperFigure3Example) {
  // Fig. 3: 18 elements, 5 processors, final row of the figure.
  const std::vector<float> in = {5, 7, 1, 1, 3, 4, 2, 0, 3,
                                 1, 1, 2, 6, 1, 2, 3, 1, 3};
  const std::vector<float> expect = {5,  12, 13, 14, 17, 21, 23, 23, 26,
                                     27, 28, 30, 36, 37, 39, 42, 43, 46};
  SimClock clock;
  GpuSimulator gpu = make_gpu(clock);
  EXPECT_EQ(prefix_sum_gpu(gpu, in, 5), expect);
}

class PrefixSumProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(PrefixSumProperty, GpuMatchesReference) {
  const int64_t n = GetParam();
  Rng rng(static_cast<uint64_t>(n) + 1);
  std::vector<float> in(static_cast<size_t>(n));
  for (float& v : in) v = static_cast<float>(rng.next_int(0, 9));
  const auto expected = prefix_sum_reference(in);
  for (auto id : {PlatformId::kDeepLens, PlatformId::kAiSage, PlatformId::kJetsonNano}) {
    SimClock clock;
    GpuSimulator gpu = make_gpu(clock, id);
    EXPECT_EQ(prefix_sum_gpu(gpu, in), expected);
    SimClock clock2;
    GpuSimulator gpu2 = make_gpu(clock2, id);
    EXPECT_EQ(prefix_sum_gpu_naive(gpu2, in), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixSumProperty,
                         ::testing::Values(1, 2, 5, 17, 64, 100, 1000, 4096,
                                           10000));

TEST(PrefixSum, ThreeStageBeatsNaiveOnClock) {
  Rng rng(3);
  std::vector<float> in(100000);
  for (float& v : in) v = rng.next_float(0.0f, 1.0f);
  SimClock opt_clock, naive_clock;
  GpuSimulator opt = make_gpu(opt_clock, PlatformId::kAiSage);
  GpuSimulator naive = make_gpu(naive_clock, PlatformId::kAiSage);
  prefix_sum_gpu(opt, in);
  prefix_sum_gpu_naive(naive, in);
  // Three launches vs log2(n) sync-heavy full passes.
  EXPECT_LT(opt_clock.total_ms() * 3.0, naive_clock.total_ms());
  EXPECT_EQ(opt_clock.events().size(), 3u);
}

TEST(PrefixSum, EmptyInput) {
  SimClock clock;
  GpuSimulator gpu = make_gpu(clock);
  EXPECT_TRUE(prefix_sum_gpu(gpu, {}).empty());
  EXPECT_TRUE(prefix_sum_gpu_naive(gpu, {}).empty());
}

// ---- segmented sort -------------------------------------------------------

Segments uniform_segments(int64_t n, int64_t seg_len) {
  Segments s;
  for (int64_t off = 0; off <= n; off += seg_len) {
    s.offsets.push_back(std::min(off, n));
  }
  if (s.offsets.back() != n) s.offsets.push_back(n);
  return s;
}

Segments random_segments(int64_t n, int64_t num_segs, Rng& rng) {
  std::vector<int64_t> cuts;
  for (int64_t i = 0; i < num_segs - 1; ++i) cuts.push_back(rng.next_int(0, n));
  std::sort(cuts.begin(), cuts.end());
  Segments s;
  s.offsets.push_back(0);
  for (int64_t c : cuts) s.offsets.push_back(c);
  s.offsets.push_back(n);
  return s;
}

TEST(SegmentedSort, ReferenceSortsEachSegment) {
  const std::vector<float> v = {3, 1, 2, /*|*/ 9, 8, /*|*/ 5};
  Segments segs;
  segs.offsets = {0, 3, 5, 6};
  auto idx = segmented_argsort_reference(v, segs);
  EXPECT_EQ(idx, (std::vector<int32_t>{1, 2, 0, 4, 3, 5}));
}

TEST(SegmentedSort, DescendingWithTies) {
  const std::vector<float> v = {1, 2, 2, 3};
  Segments segs;
  segs.offsets = {0, 4};
  auto idx = segmented_argsort_reference(v, segs, true);
  // Ties broken by original index (stable).
  EXPECT_EQ(idx, (std::vector<int32_t>{3, 1, 2, 0}));
}

class SegmentedSortProperty
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, bool>> {};

TEST_P(SegmentedSortProperty, GpuVariantsMatchReference) {
  const auto [n, num_segs, descending] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 31 + num_segs));
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.next_int(0, 50));  // many ties
  const Segments segs = random_segments(n, num_segs, rng);
  const auto expected = segmented_argsort_reference(v, segs, descending);
  for (auto id : {PlatformId::kDeepLens, PlatformId::kAiSage, PlatformId::kJetsonNano}) {
    SimClock c1, c2;
    GpuSimulator g1 = make_gpu(c1, id);
    GpuSimulator g2 = make_gpu(c2, id);
    EXPECT_EQ(segmented_argsort_gpu(g1, v, segs, descending), expected);
    EXPECT_EQ(segmented_argsort_gpu_naive(g2, v, segs, descending), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SegmentedSortProperty,
    ::testing::Values(std::make_tuple(10, 1, false),
                      std::make_tuple(100, 7, false),
                      std::make_tuple(100, 7, true),
                      std::make_tuple(1000, 3, false),
                      std::make_tuple(1000, 50, true),
                      std::make_tuple(257, 13, false),
                      std::make_tuple(5000, 2, true),
                      std::make_tuple(64, 64, false)));

TEST(SegmentedSort, EmptySegmentsHandled) {
  const std::vector<float> v = {2, 1};
  Segments segs;
  segs.offsets = {0, 0, 2, 2};  // segments 0 and 2 empty
  SimClock clock;
  GpuSimulator gpu = make_gpu(clock);
  auto idx = segmented_argsort_gpu(gpu, v, segs);
  EXPECT_EQ(idx, (std::vector<int32_t>{1, 0}));
}

TEST(SegmentedSort, SmallBlockSizeForcesManyMergeRounds) {
  Rng rng(5);
  std::vector<float> v(512);
  for (float& x : v) x = rng.next_float(0.0f, 1.0f);
  Segments segs = uniform_segments(512, 100);
  const auto expected = segmented_argsort_reference(v, segs);
  SimClock clock;
  GpuSimulator gpu = make_gpu(clock);
  EXPECT_EQ(segmented_argsort_gpu(gpu, v, segs, false, /*block_size=*/16),
            expected);
  // 512/16 = 32 blocks -> 5 merge rounds + block sort = 6 kernel events.
  EXPECT_EQ(clock.events().size(), 6u);
}

TEST(SegmentedSort, BalancedBeatsNaiveOnSkewedSegments) {
  // One huge segment and many tiny ones: the paper's motivating case.
  Rng rng(9);
  const int64_t n = 20000;
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = rng.next_float(0.0f, 1.0f);
  Segments segs;
  segs.offsets = {0, 18000};
  for (int64_t off = 18000 + 100; off <= n; off += 100) segs.offsets.push_back(off);
  SimClock opt_clock, naive_clock;
  GpuSimulator opt = make_gpu(opt_clock, PlatformId::kAiSage);
  GpuSimulator naive = make_gpu(naive_clock, PlatformId::kAiSage);
  const auto a = segmented_argsort_gpu(opt, v, segs);
  const auto b = segmented_argsort_gpu_naive(naive, v, segs);
  EXPECT_EQ(a, b);
  EXPECT_LT(opt_clock.total_ms() * 5.0, naive_clock.total_ms());
}

// ---- box utilities & NMS ---------------------------------------------------

TEST(BoxIou, KnownValues) {
  const float a[4] = {0, 0, 2, 2};
  const float b[4] = {1, 1, 3, 3};
  EXPECT_NEAR(box_iou(a, b), 1.0f / 7.0f, 1e-6f);
  const float c[4] = {5, 5, 6, 6};
  EXPECT_EQ(box_iou(a, c), 0.0f);
  EXPECT_NEAR(box_iou(a, a), 1.0f, 1e-6f);
}

Tensor make_boxes(int64_t batch, int64_t n, int64_t num_classes, Rng& rng) {
  Tensor t(Shape{batch, n, 6}, DType::kFloat32);
  float* p = t.data_f32();
  for (int64_t i = 0; i < batch * n; ++i) {
    const float x1 = rng.next_float(0.0f, 0.9f);
    const float y1 = rng.next_float(0.0f, 0.9f);
    p[i * 6 + 0] = static_cast<float>(rng.next_int(0, num_classes - 1));
    p[i * 6 + 1] = rng.next_float(0.0f, 1.0f);
    p[i * 6 + 2] = x1;
    p[i * 6 + 3] = y1;
    p[i * 6 + 4] = x1 + rng.next_float(0.05f, 0.3f);
    p[i * 6 + 5] = y1 + rng.next_float(0.05f, 0.3f);
  }
  return t;
}

TEST(BoxNms, SuppressesOverlapsKeepsHighestScore) {
  // Two heavily overlapping boxes + one far away.
  Tensor in = Tensor::from_vector(
      Shape{1, 3, 6},
      {0, 0.9f, 0.0f, 0.0f, 1.0f, 1.0f,
       0, 0.8f, 0.05f, 0.05f, 1.0f, 1.0f,
       0, 0.7f, 5.0f, 5.0f, 6.0f, 6.0f});
  NmsParams p;
  p.iou_threshold = 0.5f;
  Tensor out = box_nms_reference(in, p);
  const float* o = out.data_f32();
  EXPECT_FLOAT_EQ(o[1], 0.9f);   // best kept first
  EXPECT_FLOAT_EQ(o[6 + 1], 0.7f);  // far box second
  EXPECT_FLOAT_EQ(o[12 + 0], -1.0f);  // suppressed row invalid
}

TEST(BoxNms, ClassAwareUnlessForceSuppress) {
  Tensor in = Tensor::from_vector(
      Shape{1, 2, 6},
      {0, 0.9f, 0.0f, 0.0f, 1.0f, 1.0f,
       1, 0.8f, 0.0f, 0.0f, 1.0f, 1.0f});
  NmsParams p;
  p.iou_threshold = 0.5f;
  p.force_suppress = false;
  Tensor out = box_nms_reference(in, p);
  EXPECT_FLOAT_EQ(out.data_f32()[6 + 1], 0.8f);  // different class survives
  p.force_suppress = true;
  Tensor out2 = box_nms_reference(in, p);
  EXPECT_FLOAT_EQ(out2.data_f32()[6 + 0], -1.0f);  // now suppressed
}

TEST(BoxNms, ValidThreshAndTopk) {
  Tensor in = Tensor::from_vector(
      Shape{1, 3, 6},
      {0, 0.9f, 0, 0, 1, 1,
       0, 0.005f, 2, 2, 3, 3,   // below valid_thresh
       0, 0.5f, 4, 4, 5, 5});
  NmsParams p;
  p.valid_thresh = 0.01f;
  Tensor out = box_nms_reference(in, p);
  EXPECT_FLOAT_EQ(out.data_f32()[1], 0.9f);
  EXPECT_FLOAT_EQ(out.data_f32()[6 + 1], 0.5f);
  EXPECT_FLOAT_EQ(out.data_f32()[12], -1.0f);
  p.topk = 1;  // only the best candidate considered
  Tensor out2 = box_nms_reference(in, p);
  EXPECT_FLOAT_EQ(out2.data_f32()[6], -1.0f);
}

class BoxNmsProperty
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, bool>> {};

TEST_P(BoxNmsProperty, GpuVariantsMatchReference) {
  const auto [batch, n, force] = GetParam();
  Rng rng(static_cast<uint64_t>(batch * 100 + n));
  Tensor in = make_boxes(batch, n, 4, rng);
  NmsParams p;
  p.iou_threshold = 0.45f;
  p.force_suppress = force;
  const Tensor expected = box_nms_reference(in, p);
  for (auto id : {PlatformId::kDeepLens, PlatformId::kAiSage, PlatformId::kJetsonNano}) {
    SimClock c1, c2;
    GpuSimulator g1 = make_gpu(c1, id);
    GpuSimulator g2 = make_gpu(c2, id);
    EXPECT_EQ(box_nms_gpu(g1, in, p).max_abs_diff(expected), 0.0f);
    EXPECT_EQ(box_nms_gpu_naive(g2, in, p).max_abs_diff(expected), 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, BoxNmsProperty,
                         ::testing::Values(std::make_tuple(1, 50, false),
                                           std::make_tuple(1, 50, true),
                                           std::make_tuple(4, 200, false),
                                           std::make_tuple(2, 1000, true)));

TEST(BoxNms, OptimizedBeatsNaiveOnClock) {
  Rng rng(77);
  Tensor in = make_boxes(1, 5000, 20, rng);
  NmsParams p;
  SimClock c1, c2;
  GpuSimulator g1 = make_gpu(c1, PlatformId::kAiSage);
  GpuSimulator g2 = make_gpu(c2, PlatformId::kAiSage);
  box_nms_gpu(g1, in, p);
  box_nms_gpu_naive(g2, in, p);
  EXPECT_LT(c1.total_ms() * 2.0, c2.total_ms());
}

// ---- multibox --------------------------------------------------------------

TEST(MultiboxPrior, CountAndCenters) {
  MultiboxPriorParams p;
  p.feature_h = 2;
  p.feature_w = 2;
  p.sizes = {0.2f, 0.4f};
  p.ratios = {1.0f, 2.0f};
  Tensor priors = multibox_prior_reference(p);
  // A = 2 + 2 - 1 = 3 anchors per cell, 4 cells.
  EXPECT_EQ(priors.shape(), Shape({12, 4}));
  // First anchor of first cell: center (0.25, 0.25), size 0.2, ratio 1.
  const float* a = priors.data_f32();
  EXPECT_NEAR(a[0], 0.25f - 0.1f, 1e-6f);
  EXPECT_NEAR(a[1], 0.25f - 0.1f, 1e-6f);
  EXPECT_NEAR(a[2], 0.25f + 0.1f, 1e-6f);
}

TEST(MultiboxPrior, RatioStretchesWidth) {
  MultiboxPriorParams p;
  p.sizes = {0.5f};
  p.ratios = {1.0f, 4.0f};
  Tensor priors = multibox_prior_reference(p);
  const float* a = priors.data_f32();
  const float w0 = a[2] - a[0];
  const float w1 = a[4 + 2] - a[4 + 0];
  const float h1 = a[4 + 3] - a[4 + 1];
  EXPECT_NEAR(w1 / w0, 2.0f, 1e-5f);  // sqrt(4) = 2x wider
  EXPECT_NEAR(w1 * 0.25f, h1, 1e-5f);
}

TEST(MultiboxDetection, DecodeZeroDeltasReproducesAnchor) {
  const int64_t n = 4;
  Tensor anchors = multibox_prior_reference(
      {2, 2, {0.3f}, {1.0f}});
  ASSERT_EQ(anchors.shape()[0], n);
  Tensor cls = Tensor::zeros(Shape{1, 3, n});
  // Anchor 2 strongly class 1 (index 2 in prob rows).
  cls.data_f32()[1 * n + 2] = 0.9f;
  Tensor loc = Tensor::zeros(Shape{1, n * 4});
  MultiboxDetectionParams p;
  Tensor out = multibox_detection_reference(cls, cls.reshape(Shape{1, 3 * n})
                                                     .defined()
                                                ? loc
                                                : loc,
                                            anchors, p);
  const float* o = out.data_f32();
  EXPECT_FLOAT_EQ(o[0], 0.0f);  // class_id 0 (= argmax 1 - 1)
  EXPECT_FLOAT_EQ(o[1], 0.9f);
  // Zero deltas: decoded box equals the anchor.
  const float* a = anchors.data_f32() + 2 * 4;
  EXPECT_NEAR(o[2], a[0], 1e-5f);
  EXPECT_NEAR(o[5], a[3], 1e-5f);
}

TEST(MultiboxDetection, GpuMatchesReference) {
  Rng rng(41);
  const int64_t n = 100;
  MultiboxPriorParams pp;
  pp.feature_h = 10;
  pp.feature_w = 10;
  pp.sizes = {0.2f};
  pp.ratios = {1.0f};
  Tensor anchors = multibox_prior_reference(pp);
  ASSERT_EQ(anchors.shape()[0], n);
  Tensor cls = Tensor::random_uniform(Shape{2, 5, n}, rng, 0.0f, 1.0f);
  Tensor loc = Tensor::random_normal(Shape{2, n * 4}, rng, 0.5f);
  MultiboxDetectionParams p;
  const Tensor expected = multibox_detection_reference(cls, loc, anchors, p);
  SimClock clock;
  GpuSimulator gpu = make_gpu(clock, PlatformId::kJetsonNano);
  const Tensor got = multibox_detection_gpu(gpu, cls, loc, anchors, p);
  EXPECT_EQ(got.max_abs_diff(expected), 0.0f);
  EXPECT_GT(clock.total_ms(), 0.0);
}

// ---- ROIAlign ---------------------------------------------------------------

TEST(RoiAlign, ConstantFeatureGivesConstantOutput) {
  Tensor feat = Tensor::full(Shape{1, 2, 8, 8}, 3.0f);
  Tensor rois = Tensor::from_vector(Shape{1, 5}, {0, 1, 1, 6, 6});
  RoiAlignParams p;
  p.pooled_h = p.pooled_w = 2;
  Tensor out = roi_align_reference(feat, rois, p);
  EXPECT_EQ(out.shape(), Shape({1, 2, 2, 2}));
  for (float v : out.span_f32()) EXPECT_NEAR(v, 3.0f, 1e-5f);
}

TEST(RoiAlign, LinearRampIsInterpolatedExactly) {
  // f(y, x) = x: bilinear sampling of a linear function is exact.
  Tensor feat = Tensor::zeros(Shape{1, 1, 8, 8});
  for (int64_t y = 0; y < 8; ++y) {
    for (int64_t x = 0; x < 8; ++x) {
      feat.at4(0, 0, y, x) = static_cast<float>(x);
    }
  }
  Tensor rois = Tensor::from_vector(Shape{1, 5}, {0, 2, 2, 6, 6});
  RoiAlignParams p;
  p.pooled_h = p.pooled_w = 2;
  p.sampling_ratio = 2;
  Tensor out = roi_align_reference(feat, rois, p);
  // Bin centers along x: 3 and 5.
  EXPECT_NEAR(out.data_f32()[0], 3.0f, 1e-5f);
  EXPECT_NEAR(out.data_f32()[1], 5.0f, 1e-5f);
}

TEST(RoiAlign, GpuMatchesReferenceAndChargesTime) {
  Rng rng(55);
  Tensor feat = Tensor::random_uniform(Shape{2, 4, 16, 16}, rng);
  Tensor rois = Tensor::from_vector(
      Shape{3, 5}, {0, 1, 1, 10, 10, 1, 0, 0, 15, 15, 0, 4, 6, 9, 12});
  RoiAlignParams p;
  const Tensor expected = roi_align_reference(feat, rois, p);
  SimClock clock;
  GpuSimulator gpu = make_gpu(clock);
  const Tensor got = roi_align_gpu(gpu, feat, rois, p);
  EXPECT_EQ(got.max_abs_diff(expected), 0.0f);
  EXPECT_GT(clock.total_ms(), 0.0);
}

// ---- YOLO decode ------------------------------------------------------------

TEST(YoloDecode, CenterCellZeroActivation) {
  YoloDecodeParams p;
  p.num_classes = 2;
  p.anchors = {{32.0f, 64.0f}};
  p.input_size = 128;
  p.conf_thresh = 0.0f;
  Tensor head = Tensor::zeros(Shape{1, 7, 1, 1});  // 1 anchor * (5+2), 1x1 grid
  Tensor out = yolo_decode_reference(head, p);
  const float* o = out.data_f32();
  // sigmoid(0) = 0.5: center (0.5, 0.5); w = 32/128 = 0.25, h = 0.5.
  EXPECT_FLOAT_EQ(o[1], 0.25f);  // obj * best = 0.5 * 0.5
  EXPECT_NEAR(o[2], 0.5f - 0.125f, 1e-5f);
  EXPECT_NEAR(o[3], 0.5f - 0.25f, 1e-5f);
  EXPECT_NEAR(o[4], 0.5f + 0.125f, 1e-5f);
}

TEST(YoloDecode, ConfThreshMarksInvalid) {
  YoloDecodeParams p;
  p.num_classes = 2;
  p.anchors = {{32.0f, 32.0f}};
  p.conf_thresh = 0.9f;  // sigmoid(0)^2 = 0.25 < 0.9
  Tensor head = Tensor::zeros(Shape{1, 7, 2, 2});
  Tensor out = yolo_decode_reference(head, p);
  for (int64_t i = 0; i < out.shape()[1]; ++i) {
    EXPECT_FLOAT_EQ(out.data_f32()[i * 6], -1.0f);
  }
}

TEST(YoloDecode, GpuMatchesReference) {
  Rng rng(66);
  YoloDecodeParams p;
  p.num_classes = 20;
  p.anchors = {{10, 13}, {16, 30}, {33, 23}};
  p.input_size = 416;
  Tensor head = Tensor::random_normal(Shape{1, 3 * 25, 13, 13}, rng, 1.0f);
  const Tensor expected = yolo_decode_reference(head, p);
  SimClock clock;
  GpuSimulator gpu = make_gpu(clock, PlatformId::kJetsonNano);
  EXPECT_EQ(yolo_decode_gpu(gpu, head, p).max_abs_diff(expected), 0.0f);
}

}  // namespace
}  // namespace igc::ops
