// Graph-level ROIAlign: a two-stage-detector-style ROI head through the
// executor, on GPU and on the CPU fallback.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "graph/executor.h"
#include "graph/passes.h"
#include "models/common.h"
#include "ops/vision/roi_align.h"
#include "sim/device_spec.h"

namespace igc::graph {
namespace {

/// Backbone conv -> ROIAlign over fixed proposals -> per-ROI classifier.
Graph roi_head_graph(Rng& rng, Tensor* rois_out) {
  Graph g;
  const int img = g.add_input("data", Shape{1, 3, 32, 32});
  const int feat = models::conv_bn_act(g, rng, "backbone", img, 8, 3, 1, 1);
  const int rois = g.add_input("rois", Shape{3, 5});
  ops::RoiAlignParams rp;
  rp.pooled_h = rp.pooled_w = 4;
  const int pooled = g.add_roi_align("roi_align", feat, rois, rp);
  g.set_output(pooled);
  if (rois_out) {
    *rois_out = Tensor::from_vector(
        Shape{3, 5},
        {0, 2, 2, 20, 20, 0, 0, 0, 31, 31, 0, 8, 10, 18, 25});
  }
  return g;
}

TEST(RoiGraph, ShapesAndExecution) {
  Rng rng(1);
  Graph g = roi_head_graph(rng, nullptr);
  EXPECT_EQ(g.node(g.output()).out_shape, Shape({3, 8, 4, 4}));
  optimize(g);
  ExecOptions opts;
  Rng in_rng(2);
  const ExecResult r = execute(g, sim::platform(sim::PlatformId::kJetsonNano),
                               opts, in_rng);
  EXPECT_EQ(r.output.shape(), Shape({3, 8, 4, 4}));
  EXPECT_GT(r.vision_ms, 0.0);
  for (float v : r.output.span_f32()) EXPECT_TRUE(std::isfinite(v));
}

TEST(RoiGraph, CpuFallbackMatchesGpu) {
  Rng rng1(3), rng2(3);
  Graph gpu_g = roi_head_graph(rng1, nullptr);
  Graph cpu_g = roi_head_graph(rng2, nullptr);
  optimize(gpu_g);
  optimize(cpu_g, {OpKind::kRoiAlign});
  ExecOptions opts;
  Rng in1(4), in2(4);
  const auto a = execute(gpu_g, sim::platform(sim::PlatformId::kDeepLens),
                         opts, in1);
  const auto b = execute(cpu_g, sim::platform(sim::PlatformId::kDeepLens),
                         opts, in2);
  EXPECT_EQ(a.output.max_abs_diff(b.output), 0.0f);
}

TEST(RoiGraph, RejectsMalformedRois) {
  Rng rng(5);
  Graph g;
  const int img = g.add_input("data", Shape{1, 3, 16, 16});
  const int feat = models::conv_bn_act(g, rng, "c", img, 4, 3, 1, 1);
  const int bad_rois = g.add_input("rois", Shape{3, 4});  // needs 5 columns
  ops::RoiAlignParams rp;
  EXPECT_THROW(g.add_roi_align("roi", feat, bad_rois, rp), Error);
}

TEST(GraphSummary, ListsLiveNodesWithPlacement) {
  Rng rng(6);
  Graph g = roi_head_graph(rng, nullptr);
  optimize(g);
  const std::string s = g.summary();
  EXPECT_NE(s.find("roi_align"), std::string::npos);
  EXPECT_NE(s.find("conv2d"), std::string::npos);
  EXPECT_NE(s.find("gpu"), std::string::npos);
  // Folded scale-shift nodes are hidden (dead after bypass).
  EXPECT_EQ(s.find("scale_shift"), std::string::npos);
}

}  // namespace
}  // namespace igc::graph
