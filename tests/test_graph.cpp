// Tests for the computational graph, optimization passes, and memory planner.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "graph/graph.h"
#include "graph/memory_planner.h"
#include "graph/passes.h"
#include "models/common.h"

namespace igc::graph {
namespace {

ops::Conv2dParams small_conv(int64_t ci, int64_t co, int64_t hw) {
  ops::Conv2dParams p;
  p.in_channels = ci;
  p.out_channels = co;
  p.in_h = p.in_w = hw;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  return p;
}

Graph conv_bn_relu_graph(Rng& rng) {
  Graph g;
  const int in = g.add_input("data", Shape{1, 4, 8, 8});
  const auto p = small_conv(4, 8, 8);
  Tensor w = Tensor::random_normal(Shape{8, 4, 3, 3}, rng);
  const int conv = g.add_conv2d("conv", in, p, w);
  Tensor scale = Tensor::random_uniform(Shape{8}, rng, 0.5f, 1.5f);
  Tensor shift = Tensor::random_normal(Shape{8}, rng);
  const int bn = g.add_scale_shift("bn", conv, scale, shift);
  const int relu = g.add_activation("relu", bn, ops::Activation::kRelu);
  g.set_output(relu);
  return g;
}

TEST(Graph, TopologicalConstructionEnforced) {
  Graph g;
  const int in = g.add_input("data", Shape{1, 2, 4, 4});
  EXPECT_EQ(in, 0);
  EXPECT_EQ(g.node(in).kind, OpKind::kInput);
  // Mismatched conv input shape is rejected.
  auto p = small_conv(3, 4, 4);
  EXPECT_THROW(
      g.add_conv2d("bad", in, p, Tensor::zeros(Shape{4, 3, 3, 3})), Error);
}

TEST(Graph, ShapeInference) {
  Rng rng(1);
  Graph g;
  const int in = g.add_input("data", Shape{1, 3, 32, 32});
  ops::Conv2dParams p;
  p.in_channels = 3;
  p.out_channels = 16;
  p.in_h = p.in_w = 32;
  p.kernel_h = p.kernel_w = 3;
  p.stride_h = p.stride_w = 2;
  p.pad_h = p.pad_w = 1;
  const int conv =
      g.add_conv2d("c", in, p, Tensor::random_normal(Shape{16, 3, 3, 3}, rng));
  EXPECT_EQ(g.node(conv).out_shape, Shape({1, 16, 16, 16}));
  ops::Pool2dParams pool;
  const int pl = g.add_pool2d("p", conv, pool);
  EXPECT_EQ(g.node(pl).out_shape, Shape({1, 16, 8, 8}));
  const int gap = g.add_global_avg_pool("g", pl);
  EXPECT_EQ(g.node(gap).out_shape, Shape({1, 16, 1, 1}));
  const int fl = g.add_flatten("f", gap);
  EXPECT_EQ(g.node(fl).out_shape, Shape({1, 16}));
}

TEST(Graph, ConsumersAndConvIds) {
  Rng rng(2);
  Graph g = conv_bn_relu_graph(rng);
  const auto cons = g.consumers();
  EXPECT_EQ(cons[0].size(), 1u);  // input -> conv
  EXPECT_EQ(g.conv_node_ids().size(), 1u);
  EXPECT_GT(g.total_conv_flops(), 0);
}

TEST(Passes, FoldScaleShiftRemovesNodeAndUpdatesWeights) {
  Rng rng(3);
  Graph g = conv_bn_relu_graph(rng);
  const Tensor w_before = g.node(1).weight.clone();
  const int folded = fold_scale_shift_pass(g);
  EXPECT_EQ(folded, 1);
  // The activation now reads the conv directly.
  EXPECT_EQ(g.node(3).inputs[0], 1);
  // Weights changed (scaled).
  EXPECT_GT(g.node(1).weight.max_abs_diff(w_before), 0.0f);
  EXPECT_TRUE(g.node(1).bias.defined());
}

TEST(Passes, FoldSkippedWhenConvHasMultipleConsumers) {
  Rng rng(4);
  Graph g;
  const int in = g.add_input("data", Shape{1, 4, 8, 8});
  const auto p = small_conv(4, 4, 8);
  const int conv =
      g.add_conv2d("conv", in, p, Tensor::random_normal(Shape{4, 4, 3, 3}, rng));
  const int bn = g.add_scale_shift("bn", conv, Tensor::full(Shape{4}, 2.0f),
                                   Tensor::zeros(Shape{4}));
  const int other = g.add_activation("other", conv, ops::Activation::kRelu);
  const int sum = g.add_add("sum", bn, other);
  g.set_output(sum);
  EXPECT_EQ(fold_scale_shift_pass(g), 0);
}

TEST(Passes, FuseActivationSetsEpilogue) {
  Rng rng(5);
  Graph g = conv_bn_relu_graph(rng);
  fold_scale_shift_pass(g);
  const int fused = fuse_activation_pass(g);
  EXPECT_EQ(fused, 1);
  EXPECT_TRUE(g.node(1).fused_activation);
  EXPECT_EQ(g.output(), 1);
}

TEST(Passes, PlacementInsertsCopiesAroundCpuOps) {
  Rng rng(6);
  Graph g;
  const int in = g.add_input("data", Shape{1, 100, 6});
  ops::NmsParams np;
  const int nms = g.add_box_nms("nms", in, np);
  g.set_output(nms);
  const int copies = placement_pass(g, {OpKind::kBoxNms});
  // Input (CPU) -> nms (CPU): no copy needed.
  EXPECT_EQ(copies, 0);

  Graph g2;
  const int in2 = g2.add_input("data", Shape{1, 4, 8, 8});
  const auto p = small_conv(4, 4, 8);
  const int conv = g2.add_conv2d("conv", in2, p,
                                 Tensor::random_normal(Shape{4, 4, 3, 3}, rng));
  const int act = g2.add_activation("relu", conv, ops::Activation::kRelu);
  g2.set_output(act);
  // Conv on GPU, activation forced to CPU: copies in (input->conv) and
  // (conv->relu).
  const int copies2 = placement_pass(g2, {OpKind::kActivation});
  EXPECT_EQ(copies2, 2);
  int copy_nodes = 0;
  for (const Node& n : g2.nodes()) {
    if (n.kind == OpKind::kDeviceCopy) ++copy_nodes;
  }
  EXPECT_EQ(copy_nodes, 2);
  g2.validate();
}

TEST(Passes, PlacementAllGpuInsertsOnlyInputUpload) {
  Rng rng(7);
  Graph g = conv_bn_relu_graph(rng);
  const int copies = placement_pass(g, {});
  // Only the input -> conv upload.
  EXPECT_EQ(copies, 1);
}

TEST(Passes, OptimizePipelineStats) {
  Rng rng(8);
  Graph g = conv_bn_relu_graph(rng);
  const PassStats stats = optimize(g);
  EXPECT_EQ(stats.folded_scale_shifts, 1);
  EXPECT_EQ(stats.fused_activations, 1);
  EXPECT_EQ(stats.copies_inserted, 1);
  EXPECT_GT(stats.gpu_nodes, 0);
  EXPECT_GT(stats.cpu_nodes, 0);  // the input node
}

// ---- memory planner -------------------------------------------------------

TEST(MemoryPlanner, ChainReusesBuffers) {
  Rng rng(9);
  Graph g;
  int x = g.add_input("data", Shape{1, 8, 16, 16});
  for (int i = 0; i < 6; ++i) {
    const auto p = small_conv(8, 8, 16);
    x = g.add_conv2d("conv" + std::to_string(i), x, p,
                     Tensor::random_normal(Shape{8, 8, 3, 3}, rng));
  }
  g.set_output(x);
  const MemoryPlan plan = plan_memory(g);
  // A chain needs only 2 rotating buffers regardless of depth.
  EXPECT_EQ(plan.buffer_bytes.size(), 2u);
  EXPECT_LT(plan.total_bytes(), plan.unshared_bytes);
}

TEST(MemoryPlanner, NoLiveIntervalsShareABuffer) {
  Rng rng(10);
  Graph g;
  const int in = g.add_input("data", Shape{1, 4, 8, 8});
  const auto p = small_conv(4, 4, 8);
  const int c1 =
      g.add_conv2d("c1", in, p, Tensor::random_normal(Shape{4, 4, 3, 3}, rng));
  const int c2 =
      g.add_conv2d("c2", in, p, Tensor::random_normal(Shape{4, 4, 3, 3}, rng));
  const int sum = g.add_add("sum", c1, c2);  // c1 and c2 live simultaneously
  g.set_output(sum);
  const MemoryPlan plan = plan_memory(g);

  // Recompute liveness and assert the invariant directly.
  std::vector<int> last_use(static_cast<size_t>(g.num_nodes()), -1);
  for (const Node& n : g.nodes()) {
    for (int i : n.inputs) {
      last_use[static_cast<size_t>(i)] =
          std::max(last_use[static_cast<size_t>(i)], n.id);
    }
  }
  last_use[static_cast<size_t>(g.output())] = g.num_nodes();
  for (int a = 0; a < g.num_nodes(); ++a) {
    for (int b = a + 1; b < g.num_nodes(); ++b) {
      const int ba = plan.buffer_of_node[static_cast<size_t>(a)];
      const int bb = plan.buffer_of_node[static_cast<size_t>(b)];
      if (ba < 0 || bb < 0 || ba != bb) continue;
      // Same buffer: intervals [a, last_use[a]] and [b, last_use[b]] must
      // not overlap (b > a, so require last_use[a] <= b).
      EXPECT_LE(last_use[static_cast<size_t>(a)], b)
          << "nodes " << a << " and " << b << " share buffer " << ba;
    }
  }
}

TEST(MemoryPlanner, DiamondNeedsThreeBuffers) {
  Rng rng(11);
  Graph g;
  const int in = g.add_input("data", Shape{1, 4, 8, 8});
  const auto p = small_conv(4, 4, 8);
  const int c1 =
      g.add_conv2d("c1", in, p, Tensor::random_normal(Shape{4, 4, 3, 3}, rng));
  const int c2 =
      g.add_conv2d("c2", in, p, Tensor::random_normal(Shape{4, 4, 3, 3}, rng));
  const int sum = g.add_add("sum", c1, c2);
  g.set_output(sum);
  const MemoryPlan plan = plan_memory(g);
  EXPECT_GE(plan.buffer_bytes.size(), 3u);
}

}  // namespace
}  // namespace igc::graph
