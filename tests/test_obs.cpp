// Tests for the observability stack (src/obs): the in-repo JSON parser, the
// metrics registry, and the trace recorder threaded through the executor.
//
// The load-bearing invariants:
//   * tracing never changes outputs — traced runs are bit-identical to
//     untraced runs in every dispatch mode;
//   * the trace is a faithful decomposition of the run: category totals
//     match the ExecResult breakdown, per-lane spans never overlap, and the
//     last lane end-time is exactly the wavefront critical path;
//   * the Chrome export and the metrics snapshot are valid JSON (round-trip
//     through obs::json, including from files on disk) with one track per
//     simulated lane;
//   * metric deltas are deterministic: repeated arena-backed runs move every
//     counter and histogram by exactly the same amount.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "core/compiler.h"
#include "core/error.h"
#include "graph/executor.h"
#include "graph/memory_planner.h"
#include "graph/passes.h"
#include "models/models.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/roofline.h"
#include "obs/trace.h"
#include "sim/device_spec.h"

namespace igc {
namespace {

CompiledModel compile_fast(models::Model model, const sim::Platform& plat,
                           std::set<graph::OpKind> fallback = {}) {
  CompileOptions copts;
  copts.tune_trials = 8;
  copts.cpu_fallback_ops = std::move(fallback);
  return compile(std::move(model), plat, copts);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Counts the "thread_name" metadata events the export declares for the
/// simulated-platform process (pid 1) — one per lane track.
int count_lane_tracks(const obs::json::Value& doc) {
  int lanes = 0;
  for (const obs::json::Value& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() == "M" &&
        ev.at("name").as_string() == "thread_name" &&
        ev.at("pid").as_int() == 1) {
      ++lanes;
    }
  }
  return lanes;
}

// ----- JSON parser ---------------------------------------------------------

TEST(ObsJson, ParsesTheGrammarTheExportersEmit) {
  const obs::json::Value v = obs::json::parse(
      R"({"s": "a\"b\\cé", "n": -2.5e2, "i": 42, "t": true,)"
      R"( "nul": null, "arr": [1, {"k": "v"}, []]})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\xc3\xa9");
  EXPECT_DOUBLE_EQ(v.at("n").as_number(), -250.0);
  EXPECT_EQ(v.at("i").as_int(), 42);
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_TRUE(v.at("nul").is_null());
  ASSERT_EQ(v.at("arr").size(), 3u);
  EXPECT_EQ(v.at("arr").at(1).at("k").as_string(), "v");
  EXPECT_FALSE(v.has("missing"));
  EXPECT_THROW(v.at("missing"), Error);
  EXPECT_THROW(v.at("s").as_number(), Error);  // kind mismatch
}

TEST(ObsJson, RejectsMalformedDocuments) {
  EXPECT_THROW(obs::json::parse(""), Error);
  EXPECT_THROW(obs::json::parse("{\"a\":}"), Error);
  EXPECT_THROW(obs::json::parse("[1, 2"), Error);
  EXPECT_THROW(obs::json::parse("{} trailing"), Error);
  EXPECT_THROW(obs::json::parse("\"unterminated"), Error);
}

// ----- metrics registry ----------------------------------------------------

TEST(Metrics, InstrumentsAndSnapshotDeltas) {
  auto& m = obs::MetricsRegistry::global();
  auto& c = m.counter("test.counter");
  auto& g = m.gauge("test.gauge");
  auto& h = m.histogram("test.hist");

  const obs::MetricsSnapshot before = m.snapshot();
  c.add(3);
  g.update_max(10);
  g.update_max(7);  // high-water: no effect
  h.observe(0);
  h.observe(5);  // bit_width(5) == 3
  const obs::MetricsSnapshot after = m.snapshot();

  const obs::MetricsSnapshot d = before.delta_to(after);
  EXPECT_EQ(d.counters.at("test.counter"), 3);
  EXPECT_EQ(d.gauges.at("test.gauge"), 10);  // gauges carry, not diff
  EXPECT_EQ(d.histograms.at("test.hist").count, 2);
  EXPECT_EQ(d.histograms.at("test.hist").sum, 5);

  // The snapshot export is valid JSON naming every instrument.
  const obs::json::Value doc = obs::json::parse(m.snapshot_json());
  EXPECT_TRUE(doc.has("test.counter"));
  EXPECT_TRUE(doc.has("test.gauge"));
  EXPECT_TRUE(doc.has("test.hist"));
}

// ----- executor tracing ----------------------------------------------------

TEST(Trace, CategoryTotalsMatchBreakdownAndLanesAreWellFormed) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  // SSD with a CPU-fallback detection tail exercises all five categories
  // (conv, vision, copy, fallback, other) and all three lanes.
  const CompiledModel cm =
      compile_fast(models::build_ssd(rng, models::SsdBackbone::kMobileNet, 128),
                   plat, {graph::OpKind::kSsdDetection});

  obs::TraceRecorder rec;
  RunOptions ropts;
  ropts.compute_numerics = false;
  ropts.mode = graph::ExecMode::kWavefront;
  ropts.use_arena = true;
  ropts.trace = &rec;
  const RunResult r = cm.run(ropts);

  ASSERT_FALSE(rec.spans().empty());
  EXPECT_EQ(rec.meta().model, cm.model_name());
  EXPECT_EQ(rec.meta().mode, "wavefront");
  EXPECT_TRUE(rec.meta().arena);

  // The trace is a faithful decomposition of the breakdown.
  EXPECT_NEAR(rec.category_ms(sim::OpCategory::kConv), r.conv_ms, 1e-6);
  EXPECT_NEAR(rec.category_ms(sim::OpCategory::kVision), r.vision_ms, 1e-6);
  EXPECT_NEAR(rec.category_ms(sim::OpCategory::kCopy), r.copy_ms, 1e-6);
  EXPECT_NEAR(rec.category_ms(sim::OpCategory::kFallback), r.fallback_ms, 1e-6);
  EXPECT_NEAR(rec.category_ms(sim::OpCategory::kOther), r.other_ms, 1e-6);
  EXPECT_GT(r.fallback_ms, 0.0);
  EXPECT_GT(r.copy_ms, 0.0);

  // Per-lane spans are monotone and never overlap; the overall makespan is
  // the executor's critical path.
  for (int l = 0; l < sim::kNumLanes; ++l) {
    std::vector<const obs::TraceSpan*> lane;
    for (const obs::TraceSpan& s : rec.spans()) {
      if (static_cast<int>(s.lane) == l) lane.push_back(&s);
    }
    std::sort(lane.begin(), lane.end(),
              [](const obs::TraceSpan* a, const obs::TraceSpan* b) {
                return a->sim_start_ms < b->sim_start_ms;
              });
    double prev_end = 0.0;
    for (const obs::TraceSpan* s : lane) {
      EXPECT_GE(s->sim_start_ms, prev_end - 1e-9) << s->name;
      EXPECT_GE(s->sim_end_ms, s->sim_start_ms) << s->name;
      prev_end = s->sim_end_ms;
    }
  }
  double max_lane_end = 0.0;
  for (int l = 0; l < sim::kNumLanes; ++l) {
    max_lane_end =
        std::max(max_lane_end, rec.lane_end_ms(static_cast<sim::Lane>(l)));
  }
  EXPECT_DOUBLE_EQ(rec.makespan_ms(), max_lane_end);
  EXPECT_DOUBLE_EQ(max_lane_end, r.critical_path_ms);
}

TEST(Trace, TracedRunsAreBitIdenticalToUntraced) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  const CompiledModel cm =
      compile_fast(models::build_inception_v1(rng, 64), plat);

  for (const graph::ExecMode mode :
       {graph::ExecMode::kSequential, graph::ExecMode::kWavefront}) {
    RunOptions ropts;
    ropts.input_seed = 0x717;
    ropts.mode = mode;
    ropts.use_arena = mode == graph::ExecMode::kWavefront;
    const RunResult plain = cm.run(ropts);

    obs::TraceRecorder rec;
    ropts.trace = &rec;
    const RunResult traced = cm.run(ropts);

    ASSERT_TRUE(traced.output.shape() == plain.output.shape());
    EXPECT_EQ(traced.output.max_abs_diff(plain.output), 0.0f);
    EXPECT_DOUBLE_EQ(traced.latency_ms, plain.latency_ms);
    EXPECT_DOUBLE_EQ(traced.serial_ms, plain.serial_ms);
    EXPECT_DOUBLE_EQ(traced.critical_path_ms, plain.critical_path_ms);
    EXPECT_FALSE(rec.spans().empty());
  }
}

TEST(Trace, SequentialAndWavefrontTracesAgreeOnSimTime) {
  // Both modes synthesize the same deterministic lane schedule, so the
  // simulated spans must match node for node.
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  const CompiledModel cm =
      compile_fast(models::build_inception_v1(rng, 64), plat);

  obs::TraceRecorder seq, wave;
  RunOptions ropts;
  ropts.compute_numerics = false;
  ropts.trace = &seq;
  cm.run(ropts);
  ropts.mode = graph::ExecMode::kWavefront;
  ropts.trace = &wave;
  cm.run(ropts);

  ASSERT_EQ(seq.spans().size(), wave.spans().size());
  for (size_t i = 0; i < seq.spans().size(); ++i) {
    const obs::TraceSpan& a = seq.spans()[i];
    const obs::TraceSpan& b = wave.spans()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.lane, b.lane);
    EXPECT_EQ(a.category, b.category);
    EXPECT_DOUBLE_EQ(a.sim_start_ms, b.sim_start_ms) << a.name;
    EXPECT_DOUBLE_EQ(a.sim_end_ms, b.sim_end_ms) << a.name;
  }
}

TEST(Trace, ChromeExportIsValidJsonWithLaneTracks) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  const CompiledModel cm =
      compile_fast(models::build_inception_v1(rng, 64), plat);

  obs::TraceRecorder rec;
  RunOptions ropts;
  ropts.compute_numerics = false;
  ropts.mode = graph::ExecMode::kWavefront;
  ropts.use_arena = true;
  ropts.trace = &rec;
  cm.run(ropts);

  const obs::json::Value doc = obs::json::parse(rec.chrome_trace_json());
  EXPECT_EQ(doc.at("otherData").at("model").as_string(), cm.model_name());
  EXPECT_EQ(doc.at("otherData").at("mode").as_string(), "wavefront");
  EXPECT_TRUE(doc.at("otherData").at("arena").as_bool());
  EXPECT_EQ(doc.at("otherData").at("schema_version").as_int(), 2);
  EXPECT_GE(count_lane_tracks(doc), 3);

  // Every duration event is well-formed and, on the simulated pid, maps to
  // one recorded span; counted spans carry the roofline annotations.
  size_t sim_events = 0;
  for (const obs::json::Value& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() != "X") continue;
    EXPECT_GE(ev.at("ts").as_number(), 0.0);
    EXPECT_GE(ev.at("dur").as_number(), 0.0);
    if (ev.at("pid").as_int() == 1) {
      ++sim_events;
      EXPECT_TRUE(ev.at("args").has("op"));
      EXPECT_TRUE(ev.at("args").has("shape"));
      EXPECT_TRUE(ev.at("args").has("bytes"));
    }
  }
  EXPECT_EQ(sim_events, rec.spans().size());

  // v2: the export carries the three counter tracks ("ph":"C" samples with
  // a numeric args.value), at least one sample per counted span plus the
  // trailing zero sample per track.
  std::map<std::string, size_t> counter_samples;
  for (const obs::json::Value& ev : doc.at("traceEvents").as_array()) {
    if (ev.at("ph").as_string() != "C") continue;
    EXPECT_EQ(ev.at("pid").as_int(), 1);
    EXPECT_GE(ev.at("args").at("value").as_number(), 0.0);
    ++counter_samples[ev.at("name").as_string()];
  }
  size_t counted_spans = 0;
  for (const obs::TraceSpan& s : rec.spans()) {
    if (s.counters.launches > 0) ++counted_spans;
  }
  ASSERT_GT(counted_spans, 0u);
  for (const char* track : {"occupancy", "achieved GFLOPS", "DRAM GB/s"}) {
    EXPECT_EQ(counter_samples[track], counted_spans + 1) << track;
  }

  // The text report carries the same run identity.
  const std::string report = rec.report();
  EXPECT_NE(report.find(cm.model_name()), std::string::npos);
  EXPECT_NE(report.find("category rollup"), std::string::npos);
}

TEST(Metrics, DeltasIdenticalAcrossRepeatedArenaRuns) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  const CompiledModel cm =
      compile_fast(models::build_inception_v1(rng, 64), plat);
  auto& m = obs::MetricsRegistry::global();

  RunOptions ropts;
  ropts.compute_numerics = false;
  ropts.mode = graph::ExecMode::kWavefront;
  ropts.use_arena = true;
  cm.run(ropts);  // warm up: builds the plan/arena, registers instruments

  const obs::MetricsSnapshot s0 = m.snapshot();
  cm.run(ropts);
  const obs::MetricsSnapshot s1 = m.snapshot();
  cm.run(ropts);
  const obs::MetricsSnapshot s2 = m.snapshot();

  // Counter and histogram movement is a deterministic function of the graph:
  // both runs must move every instrument by exactly the same amount. (Gauges
  // are high-water marks and are deliberately not compared.)
  obs::MetricsSnapshot d1 = s0.delta_to(s1);
  obs::MetricsSnapshot d2 = s1.delta_to(s2);
  EXPECT_EQ(d1.counters, d2.counters);
  // run.host_ms is the one wall-clock (non-simulated) histogram — it cannot
  // be deterministic across runs.
  d1.histograms.erase("run.host_ms");
  d2.histograms.erase("run.host_ms");
  ASSERT_EQ(d1.histograms.size(), d2.histograms.size());
  for (const auto& [name, h1] : d1.histograms) {
    ASSERT_TRUE(d2.histograms.count(name)) << name;
    const auto& h2 = d2.histograms.at(name);
    // Bucket counts are exact; the double sum is a cumulative-total
    // difference, so consecutive windows can disagree by rounding ULPs.
    EXPECT_EQ(h1.count, h2.count) << name;
    EXPECT_EQ(h1.buckets, h2.buckets) << name;
    EXPECT_NEAR(h1.sum, h2.sum, 1e-9 * (1.0 + std::fabs(h1.sum))) << name;
  }
  EXPECT_EQ(d1.counters.at("exec.runs"), 1);
  EXPECT_GT(d1.counters.at("exec.nodes"), 0);
  EXPECT_GT(d1.counters.at("exec.kernels_launched"), 0);
  EXPECT_GT(d1.counters.at("arena.acquires"), 0);
  EXPECT_EQ(d1.counters.at("arena.acquires"), d1.counters.at("arena.releases"));

  // Simulated hardware counters land in the registry, and the per-bound
  // launch counts partition the launch total.
  EXPECT_GT(d1.counters.at("sim.launches"), 0);
  EXPECT_GT(d1.counters.at("sim.flops"), 0);
  EXPECT_GT(d1.counters.at("sim.dram_bytes"), 0);
  EXPECT_EQ(d1.counters.at("sim.compute_bound_launches") +
                d1.counters.at("sim.bandwidth_bound_launches") +
                d1.counters.at("sim.latency_bound_launches"),
            d1.counters.at("sim.launches"));
  EXPECT_EQ(d1.histograms.at("sim.launch_occupancy_pct").count,
            d1.counters.at("sim.launches"));

  // The deprecated alias instruments were removed after their deprecation
  // window; only the canonical names (exec.node_ms, exec.ready_queue_peak,
  // tune.trials) may appear in a post-run snapshot.
  for (const char* dead :
       {"exec.node_us", "sched.ready_queue_peak", "tuner.trials"}) {
    EXPECT_EQ(s2.counters.count(dead), 0u) << dead;
    EXPECT_EQ(s2.gauges.count(dead), 0u) << dead;
    EXPECT_EQ(s2.histograms.count(dead), 0u) << dead;
  }
}

// ----- simulated hardware counters -----------------------------------------

TEST(Counters, ConserveAcrossSpansAndAgreeWithTheBreakdown) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  // SSD with a CPU-fallback detection tail exercises GPU kernels, CPU
  // sections, and copies — every counter source.
  const CompiledModel cm =
      compile_fast(models::build_ssd(rng, models::SsdBackbone::kMobileNet, 128),
                   plat, {graph::OpKind::kSsdDetection});

  obs::TraceRecorder rec;
  RunOptions ropts;
  ropts.compute_numerics = false;
  ropts.mode = graph::ExecMode::kWavefront;
  ropts.trace = &rec;
  const RunResult r = cm.run(ropts);

  // The run aggregate is a faithful rollup of the serial time.
  ASSERT_GT(r.counters.launches, 0);
  EXPECT_NEAR(r.counters.ms, r.serial_ms, 1e-6);
  EXPECT_GT(r.counters.flops, 0);
  EXPECT_GT(r.counters.dram_bytes, 0);
  EXPECT_GT(r.counters.occupancy, 0.0);
  EXPECT_LE(r.counters.occupancy, 1.0);

  // Per-span counters sum to the run aggregate exactly (same additive
  // terms), and each span's counter time is the span's duration.
  int64_t launches = 0, flops = 0, dram = 0;
  double ms = 0.0;
  for (const obs::TraceSpan& s : rec.spans()) {
    launches += s.counters.launches;
    flops += s.counters.flops;
    dram += s.counters.dram_bytes;
    ms += s.counters.ms;
    if (s.counters.launches == 0) continue;
    EXPECT_NEAR(s.counters.ms, s.sim_end_ms - s.sim_start_ms, 1e-9) << s.name;
    EXPECT_GT(s.counters.occupancy, 0.0) << s.name;
    EXPECT_LE(s.counters.occupancy, 1.0) << s.name;
    // The bound classification agrees with the dominating roofline term.
    const sim::KernelCounters& c = s.counters;
    EXPECT_EQ(c.bound,
              sim::KernelCounters::classify(c.compute_ms, c.memory_ms,
                                            c.overhead_ms))
        << s.name;
    switch (c.bound) {
      case sim::BoundKind::kCompute:
        EXPECT_GE(c.compute_ms, c.memory_ms) << s.name;
        break;
      case sim::BoundKind::kBandwidth:
        EXPECT_GT(c.memory_ms, c.compute_ms) << s.name;
        break;
      case sim::BoundKind::kLatency:
        EXPECT_GT(c.overhead_ms, std::max(c.compute_ms, c.memory_ms))
            << s.name;
        break;
    }
    // The derived rates are finite and positive for counted work.
    EXPECT_GE(c.achieved_gflops(), 0.0) << s.name;
    EXPECT_GE(c.achieved_gbps(), 0.0) << s.name;
  }
  EXPECT_EQ(launches, r.counters.launches);
  EXPECT_EQ(flops, r.counters.flops);
  EXPECT_EQ(dram, r.counters.dram_bytes);
  EXPECT_NEAR(ms, r.counters.ms, 1e-6);
}

TEST(Counters, RideAlongWithoutChangingResults) {
  // Counting is always on; this pins the PR-1 baseline invariant the other
  // way round: a run with the trace sink attached (counters merged into
  // spans) reports exactly the same latencies and outputs as one without.
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  const CompiledModel cm =
      compile_fast(models::build_mobilenet(rng, 64), plat);

  RunOptions ropts;
  ropts.input_seed = 0x717;
  const RunResult plain = cm.run(ropts);
  obs::TraceRecorder rec;
  ropts.trace = &rec;
  const RunResult counted = cm.run(ropts);

  EXPECT_EQ(counted.output.max_abs_diff(plain.output), 0.0f);
  EXPECT_DOUBLE_EQ(counted.latency_ms, plain.latency_ms);
  EXPECT_DOUBLE_EQ(counted.serial_ms, plain.serial_ms);
  EXPECT_EQ(counted.counters.launches, plain.counters.launches);
  EXPECT_EQ(counted.counters.flops, plain.counters.flops);
  EXPECT_DOUBLE_EQ(counted.counters.ms, plain.counters.ms);
}

TEST(Roofline, ClassifiesConvWorkConsistentlyOnAllPlatforms) {
  for (const auto id : {sim::PlatformId::kDeepLens, sim::PlatformId::kAiSage,
                        sim::PlatformId::kJetsonNano}) {
    const sim::Platform& plat = sim::platform(id);
    Rng rng(0x5eed);
    for (int which = 0; which < 2; ++which) {
      models::Model model = which == 0 ? models::build_resnet50(rng)
                                       : models::build_yolov3(rng, 416);
      CompileOptions copts;
      copts.skip_tuning = true;  // template schedules: fine for attribution
      const CompiledModel cm = compile(std::move(model), plat, copts);

      obs::TraceRecorder rec;
      RunOptions ropts;
      ropts.compute_numerics = false;
      ropts.trace = &rec;
      cm.run(ropts);

      const obs::RooflineReport rep = obs::roofline_report(rec, plat.gpu);
      EXPECT_EQ(rep.platform, plat.name);
      EXPECT_GT(rep.peak_gflops, 0.0);
      EXPECT_GT(rep.ridge_intensity, 0.0);
      ASSERT_FALSE(rep.rows.empty());

      double bound_sum = 0.0;
      for (int b = 0; b < sim::kNumBoundKinds; ++b) bound_sum += rep.bound_ms[b];
      EXPECT_NEAR(bound_sum, rep.serial_ms, 1e-6);

      int conv_rows = 0;
      for (const obs::RooflineRow& row : rep.rows) {
        EXPECT_GT(row.ms, 0.0) << row.name;
        EXPECT_GE(row.pct_of_roof, 0.0) << row.name;
        EXPECT_LE(row.pct_of_roof, 1.0 + 1e-9) << row.name;
        if (row.category != sim::OpCategory::kConv) continue;
        ++conv_rows;
        // Convolutions are real kernels: the timing model must call them
        // compute- or bandwidth-bound (launch overhead never dominates),
        // and the call must match the dominating term.
        ASSERT_NE(row.counters.bound, sim::BoundKind::kLatency) << row.name;
        if (row.counters.bound == sim::BoundKind::kCompute) {
          EXPECT_GE(row.counters.compute_ms, row.counters.memory_ms)
              << row.name;
        } else {
          EXPECT_GT(row.counters.memory_ms, row.counters.compute_ms)
              << row.name;
        }
      }
      EXPECT_GT(conv_rows, 0) << plat.name;

      // The printable views render and carry the run identity.
      const std::string text = rep.str();
      EXPECT_NE(text.find(plat.name), std::string::npos);
      EXPECT_NE(obs::counters_table(rec).find("launches"), std::string::npos);
    }
  }
}

// ----- option validation ---------------------------------------------------

TEST(Executor, ArenaOptionInvariantsAreValidatedUpFront) {
  Rng rng(0x5eed);
  models::Model m1 = models::build_mobilenet(rng, 32);
  models::Model m2 = models::build_squeezenet(rng, 32);
  graph::optimize(m1.graph);
  graph::optimize(m2.graph);
  const graph::MemoryPlan plan1 = graph::plan_memory(m1.graph);
  const graph::MemoryPlan plan2 = graph::plan_memory(m2.graph);
  BufferArena arena1(plan1.buffer_bytes);
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);

  graph::ExecOptions opts;
  opts.compute_numerics = false;
  opts.use_arena = true;

  // Arena without its plan.
  opts.arena = &arena1;
  opts.plan = nullptr;
  { Rng r(1); EXPECT_THROW(graph::execute(m1.graph, plat, opts, r), Error); }

  // Plan without its arena.
  opts.arena = nullptr;
  opts.plan = &plan1;
  { Rng r(1); EXPECT_THROW(graph::execute(m1.graph, plat, opts, r), Error); }

  // Plan computed for a different graph.
  opts.arena = &arena1;
  opts.plan = &plan2;
  { Rng r(1); EXPECT_THROW(graph::execute(m1.graph, plat, opts, r), Error); }

  // Arena not sized from the provided plan.
  std::vector<int64_t> truncated(plan1.buffer_bytes.begin(),
                                 plan1.buffer_bytes.end() - 1);
  BufferArena bad_arena(truncated);
  opts.arena = &bad_arena;
  opts.plan = &plan1;
  { Rng r(1); EXPECT_THROW(graph::execute(m1.graph, plat, opts, r), Error); }

  // The matched pair still works.
  opts.arena = &arena1;
  opts.plan = &plan1;
  { Rng r(1); EXPECT_GT(graph::execute(m1.graph, plat, opts, r).latency_ms, 0.0); }
}

// ----- end-to-end file round-trip ------------------------------------------

TEST(ObsEndToEnd, TraceAndMetricsFilesRoundTripThroughTheParser) {
  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(0x5eed);
  const CompiledModel cm =
      compile_fast(models::build_inception_v1(rng, 64), plat);

  obs::TraceRecorder rec;
  RunOptions ropts;
  ropts.compute_numerics = false;
  ropts.mode = graph::ExecMode::kWavefront;
  ropts.use_arena = true;
  ropts.trace = &rec;
  cm.run(ropts);

  const std::string trace_path =
      testing::TempDir() + "igc_test_trace.json";
  ASSERT_TRUE(rec.save_chrome_trace(trace_path));
  const obs::json::Value trace = obs::json::parse(read_file(trace_path));
  EXPECT_GE(count_lane_tracks(trace), 3);
  EXPECT_GE(trace.at("traceEvents").size(), rec.spans().size());
  EXPECT_EQ(trace.at("otherData").at("platform").as_string(), plat.name);
  std::remove(trace_path.c_str());

  const std::string metrics_path =
      testing::TempDir() + "igc_test_metrics.json";
  {
    std::ofstream out(metrics_path, std::ios::binary);
    out << obs::MetricsRegistry::global().snapshot_json();
  }
  const obs::json::Value metrics = obs::json::parse(read_file(metrics_path));
  EXPECT_GE(metrics.at("exec.runs").as_int(), 1);
  EXPECT_GE(metrics.at("exec.nodes").as_int(), 1);
  EXPECT_GE(metrics.at("arena.high_water_bytes").as_int(), 1);
  std::remove(metrics_path.c_str());
}

}  // namespace
}  // namespace igc
