// Tests for the Winograd F(2x2,3x3) convolution template and the
// direct-vs-winograd algorithm chooser.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "ops/nn/winograd.h"
#include "sim/device_spec.h"

namespace igc::ops {
namespace {

Conv2dParams conv3x3(int64_t ci, int64_t co, int64_t hw, int64_t pad = 1) {
  Conv2dParams p;
  p.in_channels = ci;
  p.out_channels = co;
  p.in_h = p.in_w = hw;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = pad;
  return p;
}

TEST(Winograd, Applicability) {
  EXPECT_TRUE(winograd_applicable(conv3x3(16, 16, 14)));
  Conv2dParams strided = conv3x3(16, 16, 14);
  strided.stride_h = strided.stride_w = 2;
  EXPECT_FALSE(winograd_applicable(strided));
  Conv2dParams k1 = conv3x3(16, 16, 14);
  k1.kernel_h = k1.kernel_w = 1;
  k1.pad_h = k1.pad_w = 0;
  EXPECT_FALSE(winograd_applicable(k1));
  Conv2dParams grouped = conv3x3(16, 16, 14);
  grouped.groups = 4;
  EXPECT_FALSE(winograd_applicable(grouped));
}

TEST(Winograd, IdentityFilterPassesThrough) {
  // A 3x3 filter with only the center set to 1 copies the input.
  Conv2dParams p = conv3x3(1, 1, 8);
  Tensor w = Tensor::zeros(Shape{1, 1, 3, 3});
  w.data_f32()[4] = 1.0f;
  Rng rng(1);
  Tensor in = Tensor::random_uniform(Shape{1, 1, 8, 8}, rng);
  Tensor out = conv2d_winograd(in, w, nullptr, p);
  EXPECT_LT(out.max_abs_diff(in), 1e-5f);
}

class WinogradEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(WinogradEquivalence, MatchesDirectReference) {
  const auto [ci, co, hw, pad] = GetParam();
  const Conv2dParams p = conv3x3(ci, co, hw, pad);
  ASSERT_TRUE(winograd_applicable(p));
  Rng rng(static_cast<uint64_t>(ci * 100 + hw));
  Tensor in = Tensor::random_uniform(
      Shape{p.batch, p.in_channels, p.in_h, p.in_w}, rng);
  Tensor w = Tensor::random_uniform(Shape{co, ci, 3, 3}, rng);
  Tensor b = Tensor::random_uniform(Shape{co}, rng);
  const Tensor direct = conv2d_reference(in, w, &b, p);
  const Tensor wino = conv2d_winograd(in, w, &b, p);
  // Winograd reassociates floating point; tolerance scales with reduction.
  EXPECT_LT(wino.max_abs_diff(direct), 1e-3f)
      << "ci=" << ci << " co=" << co << " hw=" << hw << " pad=" << pad;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WinogradEquivalence,
    ::testing::Values(std::make_tuple(1, 1, 6, 1),    // trivial
                      std::make_tuple(8, 16, 14, 1),  // even output
                      std::make_tuple(8, 16, 15, 1),  // odd output (edge tile)
                      std::make_tuple(16, 8, 7, 1),   // small odd map
                      std::make_tuple(4, 4, 9, 0),    // no padding
                      std::make_tuple(32, 32, 28, 1)));

TEST(Winograd, FlopAdvantageInCostModel) {
  // The winograd kernel's charged FLOPs must be well below the direct
  // conv's 9-multiplies-per-output for a wide layer.
  const Conv2dParams p = conv3x3(128, 128, 28);
  const auto& dev = sim::platform(sim::PlatformId::kJetsonNano).gpu;
  const auto cfg = winograd_config_space(p, dev).default_config();
  const auto k = winograd_kernel_cost(p, cfg, dev);
  // 16/4 = 4 multiplies per output vs 9: ~2.25x fewer, plus transforms.
  EXPECT_LT(k.flops, p.flops() * 0.6);
  EXPECT_GT(k.flops, p.flops() / 4);
}

TEST(Winograd, ChooserPrefersWinogradOnWideLayers) {
  const auto& dev = sim::platform(sim::PlatformId::kJetsonNano).gpu;
  tune::TuneOptions opts;
  opts.n_trials = 48;
  const AlgorithmChoice wide =
      conv2d_best_algorithm(conv3x3(256, 256, 14), dev, opts);
  EXPECT_EQ(wide.algorithm, ConvAlgorithm::kWinograd);
  EXPECT_LT(wide.winograd_ms, wide.direct_ms);
}

TEST(Winograd, ChooserFallsBackWhenNotApplicable) {
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  Conv2dParams p = conv3x3(64, 64, 28);
  p.stride_h = p.stride_w = 2;
  tune::TuneOptions opts;
  opts.n_trials = 24;
  const AlgorithmChoice c = conv2d_best_algorithm(p, dev, opts);
  EXPECT_EQ(c.algorithm, ConvAlgorithm::kDirect);
  EXPECT_TRUE(std::isinf(c.winograd_ms));
}

TEST(Winograd, CostSaneAcrossDevicesAndConfigs) {
  const Conv2dParams p = conv3x3(64, 64, 28);
  for (const auto& plat : sim::all_platforms()) {
    auto space = winograd_config_space(p, plat.gpu);
    Rng rng(3);
    for (int t = 0; t < 16; ++t) {
      const auto cfg = space.random(rng);
      const auto k = winograd_kernel_cost(p, cfg, plat.gpu);
      EXPECT_GT(k.compute_efficiency, 0.0);
      EXPECT_LE(k.compute_efficiency, 1.0);
      EXPECT_GT(winograd_latency_ms(p, cfg, plat.gpu), 0.0);
    }
  }
}

}  // namespace
}  // namespace igc::ops
