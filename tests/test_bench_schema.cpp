// Schema guard for the machine-readable bench output (bench/bench_json.h).
//
// Two jobs:
//   * the row builders (bench_row / counter_summary) emit valid JSON whose
//     header fields match the current schema version;
//   * every BENCH_*.json committed at the repo root still parses line by
//     line with the in-repo obs/json parser and respects the schema rules —
//     rows written before the schema_version field existed are accepted as
//     legacy, but a row that *declares* a version must be internally
//     consistent, so dashboards can trust what they scrape.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "obs/json.h"
#include "sim/timing_model.h"

namespace igc {
namespace {

namespace fs = std::filesystem;

/// Finds the repo root by walking up from the CWD looking for ROADMAP.md
/// (tests run from the build tree).
fs::path find_repo_root() {
  fs::path dir = fs::current_path();
  for (int depth = 0; depth < 6; ++depth) {
    if (fs::exists(dir / "ROADMAP.md")) return dir;
    if (!dir.has_parent_path() || dir.parent_path() == dir) break;
    dir = dir.parent_path();
  }
  return {};
}

/// Validates one bench row against the schema contract. `source` labels
/// failures with file:line.
void validate_row(const obs::json::Value& row, const std::string& source) {
  // The invariant header every row has carried since v1.
  EXPECT_FALSE(row.at("bench").as_string().empty()) << source;
  EXPECT_FALSE(row.at("platform").as_string().empty()) << source;
  EXPECT_FALSE(row.at("model").as_string().empty()) << source;

  if (!row.has("schema_version")) return;  // legacy (pre-v2) row: header only
  EXPECT_FALSE(row.at("mode").as_string().empty()) << source;
  const int64_t v = row.at("schema_version").as_int();
  EXPECT_GE(v, 1) << source;
  EXPECT_LE(v, bench::kBenchSchemaVersion)
      << source << ": row declares a newer schema than this tree knows";
  if (v >= 2) {
    EXPECT_TRUE(row.has("passes")) << source;
  }
  if (row.has("backend")) {
    // v4: the numerics-engine label travels with a "numerics" bool saying
    // whether the row actually computed tensors.
    EXPECT_GE(v, 4) << source;
    const std::string backend = row.at("backend").as_string();
    EXPECT_TRUE(backend == "interp" || backend == "jit")
        << source << ": backend=" << backend;
    EXPECT_TRUE(row.has("numerics")) << source << " missing numerics";
  }
  if (v >= 4 && row.at("bench").as_string() == "serving") {
    EXPECT_TRUE(row.has("backend")) << source;
  }
  if (v >= 5 && row.at("bench").as_string() == "serving") {
    // v5: serving rows carry host-latency percentiles in order.
    for (const char* field : {"host_p50_ms", "host_p95_ms", "host_p99_ms"}) {
      ASSERT_TRUE(row.has(field)) << source << " missing " << field;
    }
    const double p50 = row.at("host_p50_ms").as_number();
    const double p95 = row.at("host_p95_ms").as_number();
    const double p99 = row.at("host_p99_ms").as_number();
    EXPECT_GT(p50, 0.0) << source;
    EXPECT_LE(p50, p95) << source;
    EXPECT_LE(p95, p99) << source;
  }
  if (v >= 7 && (row.at("bench").as_string() == "serving" ||
                 row.at("bench").as_string() == "serving_engine")) {
    // v7: the paged-arena memory block travels on every serving and engine
    // row. Peak is planned/physical bytes (>= 0); the page footprint is
    // page-granular so it never undershoots the peak it backs.
    for (const char* field : {"arena_peak_bytes", "arena_page_bytes"}) {
      ASSERT_TRUE(row.has(field)) << source << " missing " << field;
      EXPECT_GE(row.at(field).as_int(), 0) << source << " " << field;
    }
    if (row.has("slab_bytes")) {
      // Mixed-resolution sharing cells ship only when paged sharing beats
      // per-worker private slabs on peak physical memory.
      EXPECT_LT(row.at("arena_peak_bytes").as_int(),
                row.at("slab_bytes").as_int())
          << source << ": paged sharing must beat per-worker slabs";
    }
  }
  if (row.at("bench").as_string() == "serving_engine") {
    // v6: open-loop engine rows carry the offered/served traffic block with
    // conserving admission accounting and ordered latency percentiles.
    EXPECT_GE(v, 6) << source;
    for (const char* field :
         {"tenants", "workers", "offered_per_s", "goodput_per_s", "submitted",
          "admitted", "shed", "rejected", "completed", "batches",
          "batch_size_mean", "queue_depth_peak"}) {
      ASSERT_TRUE(row.has(field)) << source << " missing " << field;
    }
    EXPECT_GE(row.at("tenants").as_int(), 1) << source;
    EXPECT_GE(row.at("workers").as_int(), 1) << source;
    EXPECT_GT(row.at("offered_per_s").as_number(), 0.0) << source;
    EXPECT_GT(row.at("goodput_per_s").as_number(), 0.0) << source;
    EXPECT_EQ(row.at("submitted").as_int(),
              row.at("admitted").as_int() + row.at("shed").as_int() +
                  row.at("rejected").as_int())
        << source << ": admission accounting must conserve";
    EXPECT_EQ(row.at("admitted").as_int(), row.at("completed").as_int())
        << source << ": engine rows are emitted after a full drain";
    for (const char* prefix : {"e2e", "queue_wait"}) {
      const std::string p50_key = std::string(prefix) + "_p50_ms";
      const std::string p95_key = std::string(prefix) + "_p95_ms";
      const std::string p99_key = std::string(prefix) + "_p99_ms";
      ASSERT_TRUE(row.has(p50_key)) << source << " missing " << p50_key;
      ASSERT_TRUE(row.has(p95_key)) << source << " missing " << p95_key;
      ASSERT_TRUE(row.has(p99_key)) << source << " missing " << p99_key;
      const double p50 = row.at(p50_key).as_number();
      const double p95 = row.at(p95_key).as_number();
      const double p99 = row.at(p99_key).as_number();
      EXPECT_GE(p50, 0.0) << source;
      EXPECT_LE(p50, p95) << source;
      EXPECT_LE(p95, p99) << source;
    }
  }
  if (row.has("trace_overhead_pct")) {
    // v8: the goodput cost of request tracing, measured on the cells that
    // replay with tracing on. Engine rows only; wall-clock noisy, so the
    // tolerance band is wide on the low side — but a committed baseline
    // must stay under the 2% acceptance bound.
    EXPECT_GE(v, 8) << source;
    EXPECT_EQ(row.at("bench").as_string(), "serving_engine") << source;
    const double pct = row.at("trace_overhead_pct").as_number();
    EXPECT_GT(pct, -10.0) << source << ": traced replay implausibly faster";
    EXPECT_LT(pct, 2.0) << source << ": tracing must cost < 2% goodput";
  }
  if (row.at("bench").as_string() == "serving_engine_summary") {
    // Shipped only when the worker pool actually scales goodput.
    EXPECT_GT(row.at("worker_scaling").as_number(), 1.0) << source;
  }
  if (row.at("bench").as_string() == "serving_jit_summary") {
    // The JIT serving comparison only ships when it reproduces the
    // interpreter exactly: same bits, same simulated latency, faster host.
    EXPECT_TRUE(row.at("outputs_identical").as_bool()) << source;
    EXPECT_TRUE(row.at("sim_latency_identical").as_bool()) << source;
    EXPECT_GT(row.at("host_speedup").as_number(), 1.0) << source;
  }
  if (row.has("sim_launches")) {
    // v3 counter summary: all-or-nothing.
    EXPECT_GE(v, 3) << source;
    for (const char* field :
         {"sim_flops", "sim_dram_bytes", "achieved_gflops", "achieved_gbps",
          "arithmetic_intensity", "avg_occupancy", "bound"}) {
      EXPECT_TRUE(row.has(field)) << source << " missing " << field;
    }
    EXPECT_GT(row.at("sim_launches").as_int(), 0) << source;
    EXPECT_GT(row.at("avg_occupancy").as_number(), 0.0) << source;
    EXPECT_LE(row.at("avg_occupancy").as_number(), 1.0) << source;
    const std::string bound = row.at("bound").as_string();
    EXPECT_TRUE(bound == "compute" || bound == "bandwidth" ||
                bound == "latency")
        << source << ": bound=" << bound;
  }
}

TEST(BenchSchema, RowBuilderEmitsTheCurrentSchema) {
  bench::JsonObject j = bench::bench_row("guard", "test-platform", "m");
  sim::KernelCounters c;
  c.launches = 3;
  c.flops = 1000;
  c.dram_bytes = 400;
  c.ms = 2.0;
  c.compute_ms = 1.5;
  c.memory_ms = 0.4;
  c.occupancy = 0.75;
  c.bound = sim::BoundKind::kCompute;
  bench::counter_summary(j, c);
  const obs::json::Value row = obs::json::parse(j.str());
  EXPECT_EQ(row.at("schema_version").as_int(), bench::kBenchSchemaVersion);
  validate_row(row, "bench_row(counter_summary)");
  EXPECT_EQ(row.at("sim_launches").as_int(), 3);
  EXPECT_EQ(row.at("bound").as_string(), "compute");

  // Rows without counted launches stay counter-free (and valid).
  bench::JsonObject plain = bench::bench_row("guard", "test-platform", "m");
  bench::counter_summary(plain, sim::KernelCounters{});
  const obs::json::Value plain_row = obs::json::parse(plain.str());
  EXPECT_FALSE(plain_row.has("sim_launches"));
  validate_row(plain_row, "bench_row(no counters)");
}

TEST(BenchSchema, CommittedBenchFilesValidateLineByLine) {
  const fs::path root = find_repo_root();
  if (root.empty()) GTEST_SKIP() << "repo root not found from " <<
      fs::current_path();
  int files = 0, rows = 0;
  for (const auto& entry : fs::directory_iterator(root)) {
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("BENCH_", 0) != 0 ||
        entry.path().extension() != ".json") {
      continue;
    }
    ++files;
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good()) << entry.path();
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      const std::string source = fname + ":" + std::to_string(lineno);
      obs::json::Value row;
      ASSERT_NO_THROW(row = obs::json::parse(line)) << source;
      validate_row(row, source);
      ++rows;
    }
  }
  if (files == 0) GTEST_SKIP() << "no BENCH_*.json at " << root;
  EXPECT_GT(rows, 0);
}

}  // namespace
}  // namespace igc
