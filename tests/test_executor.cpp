// End-to-end executor tests: numerical equivalence across optimization
// passes, heterogeneous fallback, tuned-vs-untuned timing, and the
// vision-op optimization switch.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "graph/executor.h"
#include "graph/passes.h"
#include "models/common.h"
#include "models/models.h"
#include "ops/vision/nms.h"
#include "sim/device_spec.h"
#include "tune/conv_tuner.h"

namespace igc::graph {
namespace {

using sim::PlatformId;

/// A small conv net: conv-bn-relu x2 + residual add + GAP head.
Graph small_net(Rng& rng) {
  Graph g;
  const int in = g.add_input("data", Shape{1, 8, 16, 16});
  const int c1 = models::conv_bn_act(g, rng, "c1", in, 16, 3, 1, 1);
  const int c2 = models::conv_bn_act(g, rng, "c2", c1, 16, 3, 1, 1, 1,
                                     /*relu=*/false);
  const int sum = g.add_add("res", c2, c1);
  const int act = g.add_activation("res_relu", sum, ops::Activation::kRelu);
  const int gap = g.add_global_avg_pool("gap", act);
  const int flat = g.add_flatten("flat", gap);
  const int sm = g.add_softmax("prob", flat);
  g.set_output(sm);
  return g;
}

ExecResult run(const Graph& g, PlatformId plat, const ExecOptions& opts,
               uint64_t seed = 99) {
  Rng rng(seed);
  return execute(g, sim::platform(plat), opts, rng);
}

TEST(Executor, ProducesOutputAndPositiveLatency) {
  Rng rng(1);
  Graph g = small_net(rng);
  ExecOptions opts;
  const ExecResult r = run(g, PlatformId::kDeepLens, opts);
  EXPECT_EQ(r.output.shape(), Shape({1, 16}));
  EXPECT_GT(r.latency_ms, 0.0);
  EXPECT_FALSE(r.events.empty());
  // Softmax output sums to 1.
  double sum = 0.0;
  for (float v : r.output.span_f32()) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-4);
}

TEST(Executor, OptimizationPassesPreserveNumerics) {
  Rng rng(2);
  Graph raw = small_net(rng);
  Graph optimized = raw;  // deep copy of nodes (tensors alias, not mutated...
  // ...except fold rewrites weights on clones of its own copy).
  // Rebuild instead to keep weights independent:
  Rng rng2(2);
  optimized = small_net(rng2);
  optimize(optimized);

  ExecOptions opts;
  const ExecResult a = run(raw, PlatformId::kJetsonNano, opts, 7);
  const ExecResult b = run(optimized, PlatformId::kJetsonNano, opts, 7);
  EXPECT_EQ(a.output.shape(), b.output.shape());
  EXPECT_LT(a.output.max_abs_diff(b.output), 1e-4f);
}

TEST(Executor, FusionReducesKernelCount) {
  Rng rng(3);
  Graph raw = small_net(rng);
  Rng rng2(3);
  Graph optimized = small_net(rng2);
  optimize(optimized);
  ExecOptions opts;
  const ExecResult a = run(raw, PlatformId::kDeepLens, opts);
  const ExecResult b = run(optimized, PlatformId::kDeepLens, opts);
  EXPECT_LT(b.events.size(), a.events.size());
  EXPECT_LT(b.latency_ms, a.latency_ms);
}

TEST(Executor, TunedConfigsBeatDefaults) {
  Rng rng(4);
  Graph g = small_net(rng);
  optimize(g);
  const auto& plat = sim::platform(PlatformId::kJetsonNano);
  tune::TuneDb db;
  tune::TuneOptions topts;
  topts.n_trials = 48;
  for (int id : g.conv_node_ids()) {
    tune::tune_conv2d(g.node(id).conv, plat.gpu, 1, db, topts);
  }
  ExecOptions untuned;
  untuned.use_tuned_configs = false;
  ExecOptions tuned;
  tuned.db = &db;
  const ExecResult a = run(g, PlatformId::kJetsonNano, untuned);
  const ExecResult b = run(g, PlatformId::kJetsonNano, tuned);
  EXPECT_LT(b.conv_ms, a.conv_ms);
  // Numerics identical either way.
  EXPECT_LT(a.output.max_abs_diff(b.output), 1e-6f);
}

TEST(Executor, ShapesOnlyModeIsFastAndTimesEqualNumericMode) {
  Rng rng(5);
  Graph g = small_net(rng);
  optimize(g);
  ExecOptions numeric;
  ExecOptions shapes;
  shapes.compute_numerics = false;
  const ExecResult a = run(g, PlatformId::kAiSage, numeric);
  const ExecResult b = run(g, PlatformId::kAiSage, shapes);
  // The simulated clock must not depend on whether numerics ran (pure
  // tensor pipeline, no data-dependent ops in this net).
  EXPECT_NEAR(a.latency_ms, b.latency_ms, 1e-9);
}

// ---- vision ops in graphs --------------------------------------------------

Graph nms_graph(int64_t n) {
  Graph g;
  const int in = g.add_input("detections", Shape{1, n, 6});
  ops::NmsParams p;
  p.iou_threshold = 0.45f;
  const int nms = g.add_box_nms("nms", in, p);
  g.set_output(nms);
  return g;
}

TEST(Executor, VisionOptimizationTogglesCostNotResult) {
  Graph g = nms_graph(4000);
  ExecOptions on;
  ExecOptions off;
  off.optimized_vision_ops = false;
  const ExecResult a = run(g, PlatformId::kAiSage, on, 42);
  const ExecResult b = run(g, PlatformId::kAiSage, off, 42);
  EXPECT_EQ(a.output.max_abs_diff(b.output), 0.0f);
  EXPECT_LT(a.vision_ms, b.vision_ms);
}

TEST(Executor, CpuFallbackMatchesGpuNumerics) {
  Graph gpu_graph = nms_graph(2000);
  optimize(gpu_graph);  // nms on GPU
  Graph cpu_graph = nms_graph(2000);
  optimize(cpu_graph, {OpKind::kBoxNms});  // nms falls back to CPU

  int copies = 0;
  for (const Node& n : cpu_graph.nodes()) {
    if (n.kind == OpKind::kDeviceCopy) ++copies;
  }
  // Input is already host-side; no GPU section in this tiny graph, so no
  // copies are needed at all.
  const ExecResult a = run(gpu_graph, PlatformId::kDeepLens, {}, 11);
  const ExecResult b = run(cpu_graph, PlatformId::kDeepLens, {}, 11);
  EXPECT_EQ(a.output.max_abs_diff(b.output), 0.0f);
  EXPECT_GT(b.latency_ms, 0.0);
  (void)copies;
}

TEST(Executor, FallbackInsertsCopiesAroundGpuSections) {
  // conv (GPU) -> nms-ish chain: force activation to CPU and check copies
  // are charged.
  Rng rng(6);
  Graph g;
  const int in = g.add_input("data", Shape{1, 4, 8, 8});
  const int c = models::conv_bn_act(g, rng, "c", in, 8, 3, 1, 1);
  const int gap = g.add_global_avg_pool("gap", c);
  g.set_output(gap);
  optimize(g, {OpKind::kGlobalAvgPool});
  const ExecResult r = run(g, PlatformId::kDeepLens, {});
  EXPECT_GT(r.copy_ms, 0.0);
}

TEST(Executor, SsdDetectionGraphEndToEnd) {
  Rng rng(7);
  models::Model m = models::build_ssd(rng, models::SsdBackbone::kMobileNet,
                                      /*image_size=*/128);
  optimize(m.graph);
  ExecOptions opts;
  opts.compute_numerics = false;  // backbone shapes only; detection synthetic
  const ExecResult r = run(m.graph, PlatformId::kJetsonNano, opts);
  EXPECT_EQ(r.output.shape().ndim(), 3);
  EXPECT_EQ(r.output.shape()[2], 6);
  EXPECT_GT(r.vision_ms, 0.0);
  EXPECT_GT(r.conv_ms, 0.0);
  // Output is a valid NMS result: rows are either invalid or well-formed.
  const float* o = r.output.data_f32();
  for (int64_t i = 0; i < r.output.shape()[1]; ++i) {
    if (o[i * 6] < 0.0f) continue;
    EXPECT_GE(o[i * 6 + 1], 0.0f);
    EXPECT_LE(o[i * 6 + 2], o[i * 6 + 4]);  // x1 <= x2
  }
}

TEST(Executor, YoloGraphEndToEnd) {
  Rng rng(8);
  models::Model m = models::build_yolov3(rng, /*image_size=*/128, 1, 20);
  optimize(m.graph);
  ExecOptions opts;
  opts.compute_numerics = false;
  const ExecResult r = run(m.graph, PlatformId::kAiSage, opts);
  EXPECT_EQ(r.output.shape()[2], 6);
  EXPECT_GT(r.vision_ms, 0.0);
}

TEST(Executor, LayoutBlocksChargeTransforms) {
  Rng rng(9);
  Graph g = small_net(rng);
  optimize(g);
  const auto convs = g.conv_node_ids();
  ASSERT_GE(convs.size(), 2u);
  ExecOptions plain;
  ExecOptions blocked;
  // Alternate blocks so every conv edge needs a transform.
  int flip = 0;
  for (int id : convs) {
    blocked.conv_layout_block[id] = (flip++ % 2 == 0) ? 8 : 1;
  }
  const ExecResult a = run(g, PlatformId::kDeepLens, plain);
  const ExecResult b = run(g, PlatformId::kDeepLens, blocked);
  int transforms = 0;
  for (const auto& e : b.events) {
    if (e.name.rfind("layout_transform", 0) == 0) ++transforms;
  }
  EXPECT_GT(transforms, 0);
  EXPECT_LT(a.output.max_abs_diff(b.output), 1e-6f);
}

}  // namespace
}  // namespace igc::graph
