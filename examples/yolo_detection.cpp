// YOLOv3 end to end on the Jetson Nano model: three detection heads decoded
// on the GPU, concatenated, and filtered with the optimized box_nms.
#include <cstdio>

#include "graph/executor.h"
#include "graph/passes.h"
#include "graphtune/graph_tuner.h"
#include "models/models.h"
#include "sim/device_spec.h"
#include "tune/tunedb.h"

int main() {
  using namespace igc;  // NOLINT
  const sim::Platform& platform = sim::platform(sim::PlatformId::kJetsonNano);
  Rng rng(11);
  models::Model m = models::build_yolov3(rng, 416);
  std::printf("%s at 416x416 on %s: %zu convs, %.1f GFLOPs\n", m.name.c_str(),
              platform.name.c_str(), m.graph.conv_node_ids().size(),
              static_cast<double>(m.graph.total_conv_flops()) / 1e9);

  graph::optimize(m.graph);
  tune::TuneDb db;
  tune::TuneOptions topts;
  topts.n_trials = 64;
  const auto layouts =
      graphtune::tune_graph_layouts(m.graph, platform.gpu, db, topts);

  graph::ExecOptions opts;
  opts.compute_numerics = false;
  opts.db = &db;
  opts.conv_layout_block = layouts.layout_of_conv;
  Rng in_rng(13);
  const auto r = graph::execute(m.graph, platform, opts, in_rng);

  std::printf("latency %.2f ms (conv %.2f, vision %.2f)\n", r.latency_ms,
              r.conv_ms, r.vision_ms);
  int detections = 0;
  for (int64_t i = 0; i < r.output.shape()[1]; ++i) {
    if (r.output.data_f32()[i * 6] >= 0.0f) ++detections;
  }
  std::printf("%d detections after NMS; first few:\n", detections);
  int shown = 0;
  for (int64_t i = 0; i < r.output.shape()[1] && shown < 5; ++i) {
    const float* row = r.output.data_f32() + i * 6;
    if (row[0] < 0.0f) continue;
    std::printf("  class %2.0f  score %.3f  [%.3f %.3f %.3f %.3f]\n", row[0],
                row[1], row[2], row[3], row[4], row[5]);
    ++shown;
  }
  return 0;
}
