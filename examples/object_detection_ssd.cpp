// Object detection end to end: SSD with a MobileNet backbone, exercising the
// vision-specific operator pipeline of Sec. 3.1 (segmented argsort, prefix
// sum, box_nms) on the simulated GPU, including the effect of turning those
// optimizations off and of falling the NMS back to the CPU (Sec. 3.1.2).
#include <cstdio>

#include "graph/executor.h"
#include "graph/passes.h"
#include "graphtune/graph_tuner.h"
#include "models/models.h"
#include "sim/device_spec.h"
#include "tune/tunedb.h"

int main() {
  using namespace igc;  // NOLINT
  const sim::Platform& platform = sim::platform(sim::PlatformId::kAiSage);
  std::printf("SSD_MobileNet1.0 at 300x300 on %s\n", platform.name.c_str());

  tune::TuneDb db;
  tune::TuneOptions topts;
  topts.n_trials = 64;

  auto run = [&](bool vision_opt, bool fallback) {
    Rng rng(1);
    models::Model m =
        models::build_ssd(rng, models::SsdBackbone::kMobileNet, 300);
    std::set<graph::OpKind> cpu_ops;
    if (fallback) cpu_ops = {graph::OpKind::kSsdDetection};
    graph::optimize(m.graph, cpu_ops);
    const auto layouts =
        graphtune::tune_graph_layouts(m.graph, platform.gpu, db, topts);
    graph::ExecOptions opts;
    opts.compute_numerics = false;  // synthetic detection inputs
    opts.db = &db;
    opts.conv_layout_block = layouts.layout_of_conv;
    opts.optimized_vision_ops = vision_opt;
    Rng in_rng(2);
    const auto r = graph::execute(m.graph, platform, opts, in_rng);

    // Count final detections.
    int detections = 0;
    for (int64_t i = 0; i < r.output.shape()[1]; ++i) {
      if (r.output.data_f32()[i * 6] >= 0.0f) ++detections;
    }
    std::printf(
        "  %-34s total %8.2f ms (conv %7.2f, vision %7.2f, copies %6.3f), "
        "%d boxes kept\n",
        fallback ? "optimized, NMS on CPU (fallback):"
                 : (vision_opt ? "optimized vision ops (Sec. 3.1):"
                               : "naive vision ops:"),
        r.latency_ms, r.conv_ms, r.vision_ms, r.copy_ms, detections);
    return r;
  };

  const auto naive = run(false, false);
  const auto opt = run(true, false);
  const auto fb = run(true, true);
  std::printf("vision-op speedup: %.2fx end-to-end; fallback overhead %.2f%%\n",
              naive.latency_ms / opt.latency_ms,
              (fb.latency_ms - opt.latency_ms) / opt.latency_ms * 100.0);

  // Show the first few detections.
  std::printf("top detections (class, score, box):\n");
  int shown = 0;
  for (int64_t i = 0; i < opt.output.shape()[1] && shown < 5; ++i) {
    const float* row = opt.output.data_f32() + i * 6;
    if (row[0] < 0.0f) continue;
    std::printf("  class %2.0f  score %.3f  [%.3f %.3f %.3f %.3f]\n", row[0],
                row[1], row[2], row[3], row[4], row[5]);
    ++shown;
  }
  return 0;
}
