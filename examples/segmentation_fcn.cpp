// Semantic segmentation end to end: FCN-8s (ResNet-50 backbone) with learned
// bilinear upsampling, compiled and executed on the Intel DeepLens model —
// demonstrating that the stack covers the third vision task of the paper's
// introduction beyond classification and detection.
#include <cstdio>

#include "graph/executor.h"
#include "graph/passes.h"
#include "graphtune/graph_tuner.h"
#include "models/models.h"
#include "sim/device_spec.h"
#include "tune/tunedb.h"

int main() {
  using namespace igc;  // NOLINT
  const sim::Platform& platform = sim::platform(sim::PlatformId::kDeepLens);
  Rng rng(21);
  models::Model m = models::build_fcn_resnet50(rng, 224, 1, 21);
  std::printf("%s at 224x224 on %s: %zu convs + 3 transposed convs, %.1f "
              "GFLOPs (conv only)\n",
              m.name.c_str(), platform.name.c_str(),
              m.graph.conv_node_ids().size(),
              static_cast<double>(m.graph.total_conv_flops()) / 1e9);

  graph::optimize(m.graph);
  tune::TuneDb db;
  tune::TuneOptions topts;
  topts.n_trials = 64;
  const auto layouts =
      graphtune::tune_graph_layouts(m.graph, platform.gpu, db, topts);

  graph::ExecOptions opts;
  opts.compute_numerics = false;
  opts.db = &db;
  opts.conv_layout_block = layouts.layout_of_conv;
  Rng in_rng(22);
  const auto r = graph::execute(m.graph, platform, opts, in_rng);
  std::printf("latency %.2f ms (conv %.2f, other %.2f)\n", r.latency_ms,
              r.conv_ms, r.other_ms);
  std::printf("output: per-pixel logits %s\n",
              r.output.shape().str().c_str());
  return 0;
}
