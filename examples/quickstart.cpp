// Quickstart: compile and run a CNN on a simulated integrated GPU with the
// two-call public API.
//
//   ./quickstart [aws-deeplens|acer-aisage|jetson-nano]
//
// compile() runs the whole Fig. 1 pipeline — batch-norm folding, activation
// fusion, heterogeneous placement, AutoTVM schedule search per convolution,
// and the graph tuner's layout DP; run() executes one inference on the
// simulated device and reports the latency breakdown.
#include <cstdio>
#include <string>

#include "core/compiler.h"
#include "models/models.h"
#include "sim/device_spec.h"

int main(int argc, char** argv) {
  using namespace igc;  // NOLINT
  const std::string device = argc > 1 ? argv[1] : "jetson-nano";
  const sim::Platform& platform = sim::platform_by_name(device);
  std::printf("target: %s (GPU %s, %.1f GFLOPS peak, %s API)\n",
              platform.name.c_str(), platform.gpu.name.c_str(),
              platform.gpu.peak_gflops,
              platform.gpu.api == sim::DeviceApi::kCuda ? "CUDA" : "OpenCL");

  // 1. Build the model (synthetic weights, structurally faithful).
  Rng rng(42);
  models::Model model = models::build_squeezenet(rng);
  std::printf("model: %s, %d nodes, %zu convolutions, %.2f GFLOPs\n",
              model.name.c_str(), model.graph.num_nodes(),
              model.graph.conv_node_ids().size(),
              static_cast<double>(model.graph.total_conv_flops()) / 1e9);

  // 2. Compile: graph passes + AutoTVM search + graph tuner.
  CompileOptions copts;
  copts.tune_trials = 96;
  const CompiledModel cm = compile(std::move(model), platform, copts);
  const graph::PassStats& stats = cm.pass_stats();
  std::printf(
      "passes: folded %d batch norms, fused %d activations, inserted %d "
      "copies\n",
      stats.folded_scale_shifts, stats.fused_activations,
      stats.copies_inserted);
  int blocked = 0;
  for (const auto& [id, b] : cm.layouts()) {
    if (b > 1) ++blocked;
  }
  std::printf("tuning: %zu workload records; %d/%zu convs in blocked layout\n",
              cm.tune_db().size(), blocked, cm.layouts().size());
  const auto plan = cm.memory_plan();
  std::printf("memory plan: %.2f MB shared (vs %.2f MB unshared)\n",
              static_cast<double>(plan.total_bytes()) / 1e6,
              static_cast<double>(plan.unshared_bytes) / 1e6);

  // 3. Run one inference.
  const RunResult r = cm.run(/*input_seed=*/7);
  std::printf("latency: %.2f ms (conv %.2f, other %.2f, copies %.3f)\n",
              r.latency_ms, r.conv_ms, r.other_ms, r.copy_ms);

  // 4. Top-1 of the softmax output.
  const float* p = r.output.data_f32();
  int64_t best = 0;
  for (int64_t i = 1; i < r.output.numel(); ++i) {
    if (p[i] > p[best]) best = i;
  }
  std::printf("top-1 class: %lld (p=%.4f)\n", static_cast<long long>(best),
              p[best]);

  // 5. Peek at one generated kernel (the unified IR printed for this
  // device's API).
  const auto sources = cm.generated_sources();
  if (!sources.empty()) {
    std::printf("\nfirst generated kernel (%s):\n%.400s...\n",
                sources.begin()->first.c_str(),
                sources.begin()->second.c_str());
  }
  return 0;
}
