// igc-compile: the command-line face of the stack — what a deployment
// service (the paper's SageMaker Neo) would invoke per (model, device).
//
//   compile_cli <model> <device> [flags]   (see --help)
//
//   model:  resnet50 | inception | mobilenet | squeezenet | ssd_mobilenet
//           | ssd_resnet50 | yolov3 | fcn
//   device: aws-deeplens | acer-aisage | jetson-nano
//
// Observability: --trace writes a Chrome trace-event JSON of the inference
// (open in chrome://tracing or https://ui.perfetto.dev — one track per
// simulated lane plus the host scheduler threads, plus counter tracks for
// occupancy/GFLOPS/GB/s), --report prints the per-layer breakdown derived
// from the same trace, --counters prints the per-op simulated hardware
// counter table, --roofline prints the roofline attribution report,
// --tune-journal records every tuning trial to a JSONL flight-recorder
// file, and --metrics writes a JSON snapshot of the process-wide metrics
// registry.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/compiler.h"
#include "models/models.h"
#include "obs/http.h"
#include "obs/latency_histogram.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/roofline.h"
#include "obs/sampler.h"
#include "obs/trace.h"
#include "serve/arrivals.h"
#include "serve/engine.h"
#include "sim/device_spec.h"
#include "tune/journal.h"
#include "tune/tunedb.h"

namespace {

// "interp" | "jit" -> Backend; anything else exits 2 via the caller.
bool parse_backend(const std::string& value, igc::Backend* out) {
  if (value == "interp") {
    *out = igc::Backend::kInterp;
    return true;
  }
  if (value == "jit") {
    *out = igc::Backend::kJit;
    return true;
  }
  return false;
}

// Strict integer flag value in [lo, hi]; rejects trailing garbage.
bool parse_int_arg(const char* s, long lo, long hi, long* out) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < lo || v > hi) return false;
  *out = v;
  return true;
}

// Strict floating-point flag value in [lo, hi]; rejects trailing garbage
// (and NaN, which fails both range comparisons).
bool parse_double_arg(const char* s, double lo, double hi, double* out) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v >= lo) || !(v <= hi)) return false;
  *out = v;
  return true;
}

igc::models::Model build_by_name(const std::string& name, igc::Rng& rng) {
  using namespace igc::models;  // NOLINT
  if (name == "resnet50") return build_resnet50(rng);
  if (name == "inception") return build_inception_v1(rng);
  if (name == "mobilenet") return build_mobilenet(rng);
  if (name == "squeezenet") return build_squeezenet(rng);
  if (name == "ssd_mobilenet") return build_ssd(rng, SsdBackbone::kMobileNet, 512);
  if (name == "ssd_resnet50") return build_ssd(rng, SsdBackbone::kResNet50, 512);
  if (name == "yolov3") return build_yolov3(rng, 416);
  if (name == "fcn") return build_fcn_resnet50(rng);
  std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
  std::exit(2);
}

void usage(const char* argv0, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s <model> <device> [flags]\n"
      "  model:  resnet50 | inception | mobilenet | squeezenet |\n"
      "          ssd_mobilenet | ssd_resnet50 | yolov3 | fcn\n"
      "  device: aws-deeplens | acer-aisage | jetson-nano\n"
      "compilation flags:\n"
      "  --backend interp|jit    numerics engine (jit compiles host kernels;\n"
      "                          outputs and simulated times are identical)\n"
      "  --kernel-cache DIR      compiled-kernel artifact cache directory\n"
      "                          (default $IGC_KERNEL_CACHE or\n"
      "                          ~/.cache/igc-kernels)\n"
      "  --trials N              tuning trials per conv workload\n"
      "  --untuned               skip tensor-level tuning\n"
      "  --fallback-nms          force vision block onto the CPU\n"
      "  --passes a,b,c          explicit pass pipeline (run order)\n"
      "  --no-pass NAME          disable one pass (repeatable)\n"
      "  --dump-graph-after NAME dump the graph after one pass\n"
      "  --save-db PATH / --load-db PATH   persist / warm the TuneDb\n"
      "execution flags:\n"
      "  --wavefront             wavefront executor (default sequential)\n"
      "  --arena                 plan-backed buffer arena\n"
      "observability flags:\n"
      "  --trace PATH            Chrome trace JSON (spans + counter tracks)\n"
      "  --report                per-layer breakdown from the trace\n"
      "  --counters              per-op simulated hardware counter table\n"
      "  --roofline              roofline attribution report\n"
      "  --tune-journal PATH     JSONL tuning flight recorder\n"
      "  --metrics PATH          metrics registry snapshot JSON\n"
      "  --jit-stats             print JIT module + kernel-cache statistics\n"
      "serving flags:\n"
      "  --serve-metrics PORT    after the first run, keep running inference\n"
      "                          while serving /metrics /healthz\n"
      "                          /snapshot.json /series.json on\n"
      "                          127.0.0.1:PORT (0 picks an ephemeral port)\n"
      "  --metrics-interval-ms N telemetry sampler period (default 1000)\n"
      "  --serve-runs N          serving-loop run count (default 0 = keep\n"
      "                          running until the process is killed)\n"
      "  --serve                 open-loop serving-engine demo: N tenants of\n"
      "                          this model behind the request queue +\n"
      "                          dynamic batcher + worker pool, driven by\n"
      "                          Poisson arrivals (shapes-only runs; service\n"
      "                          time is the scaled simulated latency).\n"
      "                          Combines with --serve-metrics to scrape the\n"
      "                          serve.* family live.\n"
      "  --serve-tenants N       demo tenant count (default 2)\n"
      "  --serve-rate R          total offered arrival rate, req/s, float\n"
      "                          (default 200)\n"
      "  --serve-duration-ms D   demo offered-load window, float ms\n"
      "                          (default 1000)\n"
      "  --serve-workers N       worker threads (default 2)\n"
      "  --serve-batch N         max dynamic batch size (default 8)\n"
      "  --serve-wait-ms W       max batch wait, float ms (default 2.0)\n"
      "  --serve-pacing P        simulated-device pacing factor, float\n"
      "                          (default 0.05; 0 = host-speed service)\n"
      "  --trace-requests [R]    per-request tracing in the --serve demo:\n"
      "                          request timelines feed a tail-sampled\n"
      "                          flight recorder (served on /debug/requests\n"
      "                          and /debug/request/<id> with\n"
      "                          --serve-metrics) and e2e/queue-wait\n"
      "                          exemplars; optional head-sample rate R in\n"
      "                          [0,1] (default 0 = tail-only). Prints the\n"
      "                          3 slowest request timelines after the run.\n"
      "other:\n"
      "  --dump-graph, --dump-kernels, --help\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace igc;  // NOLINT
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage(argv[0], stdout);
      return 0;
    }
  }
  if (argc < 3) {
    usage(argv[0], stderr);
    return 2;
  }
  const std::string model_name = argv[1];
  const sim::Platform& platform = sim::platform_by_name(argv[2]);

  CompileOptions opts;
  bool dump_graph = false, dump_kernels = false;
  bool wavefront = false, arena = false, report = false;
  bool counters = false, roofline = false, jit_stats = false;
  bool serve = false, serve_demo = false;
  long serve_port = 0, metrics_interval_ms = 1000, serve_runs = 0;
  long serve_tenants = 2, serve_workers = 2, serve_batch = 8;
  double serve_rate = 200.0, serve_duration_ms = 1000.0;
  double serve_wait_ms = 2.0, serve_pacing = 0.05;
  bool trace_requests = false;
  double trace_head_rate = 0.0;
  std::string save_db, load_db, trace_path, metrics_path, journal_path;
  tune::TuneJournal journal;
  for (int i = 3; i < argc; ++i) {
    std::string backend_value;
    if (!std::strcmp(argv[i], "--trials") && i + 1 < argc) {
      opts.tune_trials = std::atoi(argv[++i]);
    } else if (!std::strncmp(argv[i], "--backend=", 10) ||
               (!std::strcmp(argv[i], "--backend") && i + 1 < argc)) {
      backend_value = argv[i][9] == '=' ? argv[i] + 10 : argv[++i];
      if (!parse_backend(backend_value, &opts.backend)) {
        std::fprintf(stderr, "unknown backend '%s' (expected interp|jit)\n\n",
                     backend_value.c_str());
        usage(argv[0], stderr);
        return 2;
      }
    } else if (!std::strncmp(argv[i], "--kernel-cache=", 15)) {
      opts.kernel_cache_dir = argv[i] + 15;
    } else if (!std::strcmp(argv[i], "--kernel-cache") && i + 1 < argc) {
      opts.kernel_cache_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "--jit-stats")) {
      jit_stats = true;
    } else if (!std::strcmp(argv[i], "--serve-metrics") && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], 0, 65535, &serve_port)) {
        std::fprintf(stderr, "bad --serve-metrics port '%s'\n\n", argv[i]);
        usage(argv[0], stderr);
        return 2;
      }
      serve = true;
    } else if (!std::strcmp(argv[i], "--metrics-interval-ms") && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], 1, 3600 * 1000, &metrics_interval_ms)) {
        std::fprintf(stderr, "bad --metrics-interval-ms '%s'\n\n", argv[i]);
        usage(argv[0], stderr);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--serve-runs") && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], 0, 1000000000, &serve_runs)) {
        std::fprintf(stderr, "bad --serve-runs '%s'\n\n", argv[i]);
        usage(argv[0], stderr);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--serve")) {
      serve_demo = true;
    } else if (!std::strcmp(argv[i], "--serve-tenants") && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], 1, 64, &serve_tenants)) {
        std::fprintf(stderr, "bad --serve-tenants '%s'\n\n", argv[i]);
        usage(argv[0], stderr);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--serve-workers") && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], 1, 64, &serve_workers)) {
        std::fprintf(stderr, "bad --serve-workers '%s'\n\n", argv[i]);
        usage(argv[0], stderr);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--serve-batch") && i + 1 < argc) {
      if (!parse_int_arg(argv[++i], 1, 256, &serve_batch)) {
        std::fprintf(stderr, "bad --serve-batch '%s'\n\n", argv[i]);
        usage(argv[0], stderr);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--serve-rate") && i + 1 < argc) {
      if (!parse_double_arg(argv[++i], 1e-3, 1e6, &serve_rate)) {
        std::fprintf(stderr, "bad --serve-rate '%s'\n\n", argv[i]);
        usage(argv[0], stderr);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--serve-duration-ms") && i + 1 < argc) {
      if (!parse_double_arg(argv[++i], 1.0, 3600.0 * 1000.0,
                            &serve_duration_ms)) {
        std::fprintf(stderr, "bad --serve-duration-ms '%s'\n\n", argv[i]);
        usage(argv[0], stderr);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--serve-wait-ms") && i + 1 < argc) {
      if (!parse_double_arg(argv[++i], 0.0, 10000.0, &serve_wait_ms)) {
        std::fprintf(stderr, "bad --serve-wait-ms '%s'\n\n", argv[i]);
        usage(argv[0], stderr);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--serve-pacing") && i + 1 < argc) {
      if (!parse_double_arg(argv[++i], 0.0, 1000.0, &serve_pacing)) {
        std::fprintf(stderr, "bad --serve-pacing '%s'\n\n", argv[i]);
        usage(argv[0], stderr);
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--trace-requests")) {
      trace_requests = true;
      // Optional head-sample rate: consume the next token when it is a
      // value rather than a flag. Strict — a malformed rate is exit 2, not
      // a silently ignored argument.
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        if (!parse_double_arg(argv[++i], 0.0, 1.0, &trace_head_rate)) {
          std::fprintf(stderr, "bad --trace-requests head_rate '%s'\n\n",
                       argv[i]);
          usage(argv[0], stderr);
          return 2;
        }
      }
    } else if (!std::strcmp(argv[i], "--fallback-nms")) {
      opts.cpu_fallback_ops = {graph::OpKind::kBoxNms,
                               graph::OpKind::kSsdDetection,
                               graph::OpKind::kMultiboxDetection};
    } else if (!std::strcmp(argv[i], "--dump-graph")) {
      dump_graph = true;
    } else if (!std::strcmp(argv[i], "--dump-kernels")) {
      dump_kernels = true;
    } else if (!std::strcmp(argv[i], "--save-db") && i + 1 < argc) {
      save_db = argv[++i];
    } else if (!std::strcmp(argv[i], "--load-db") && i + 1 < argc) {
      load_db = argv[++i];
    } else if (!std::strcmp(argv[i], "--untuned")) {
      opts.skip_tuning = true;
    } else if (!std::strcmp(argv[i], "--wavefront")) {
      wavefront = true;
    } else if (!std::strcmp(argv[i], "--arena")) {
      arena = true;
    } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--report")) {
      report = true;
    } else if (!std::strcmp(argv[i], "--metrics") && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--counters")) {
      counters = true;
    } else if (!std::strcmp(argv[i], "--roofline")) {
      roofline = true;
    } else if (!std::strcmp(argv[i], "--tune-journal") && i + 1 < argc) {
      journal_path = argv[++i];
      opts.tune_journal = &journal;
    } else if (!std::strcmp(argv[i], "--passes") && i + 1 < argc) {
      // Explicit pipeline, comma-separated in run order.
      const std::string list = argv[++i];
      size_t start = 0;
      while (start <= list.size()) {
        const size_t comma = list.find(',', start);
        const size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > start) opts.pass_names.push_back(list.substr(start, end - start));
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (!std::strncmp(argv[i], "--no-pass=", 10)) {
      opts.disabled_passes.insert(argv[i] + 10);
    } else if (!std::strcmp(argv[i], "--no-pass") && i + 1 < argc) {
      opts.disabled_passes.insert(argv[++i]);
    } else if (!std::strncmp(argv[i], "--dump-graph-after=", 19)) {
      opts.dump_graph_after.insert(argv[i] + 19);
    } else if (!std::strcmp(argv[i], "--dump-graph-after") && i + 1 < argc) {
      opts.dump_graph_after.insert(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n\n", argv[i]);
      usage(argv[0], stderr);
      return 2;
    }
  }

  tune::TuneDb warm;
  if (!load_db.empty()) {
    warm = tune::TuneDb::load(load_db);
    opts.warm_db = &warm;
    std::printf("loaded %zu tuning records from %s\n", warm.size(),
                load_db.c_str());
  }

  Rng rng(0x5eed);
  models::Model model = build_by_name(model_name, rng);
  std::printf("compiling %s for %s (%d trials/workload)...\n",
              model.name.c_str(), platform.name.c_str(), opts.tune_trials);
  const CompiledModel cm = compile(std::move(model), platform, opts);
  std::printf("  passes:");
  for (const auto& st : cm.pass_report()) {
    std::printf(" %s(%d rewrites, %.2f ms)", st.pass.c_str(), st.rewrites,
                st.wall_ms);
  }
  std::printf("\n");
  std::printf("  %d GPU nodes, %d CPU nodes, %d copies; %zu tuned workloads\n",
              cm.pass_stats().gpu_nodes, cm.pass_stats().cpu_nodes,
              cm.pass_stats().copies_inserted, cm.tune_db().size());
  if (opts.backend == Backend::kJit) {
    if (cm.jit_enabled()) {
      std::printf("  jit: %d kernels covering %d nodes\n", cm.jit_kernels(),
                  cm.jit_nodes_covered());
    } else {
      std::printf("  jit: unavailable (%s); running the reference path\n",
                  cm.jit_error().c_str());
    }
  }

  const bool big_model = model_name.rfind("ssd", 0) == 0 ||
                         model_name == "yolov3" || model_name == "fcn";
  obs::TraceRecorder recorder;
  RunOptions ropts;
  ropts.input_seed = 1;
  ropts.compute_numerics = !big_model;
  ropts.mode = wavefront ? graph::ExecMode::kWavefront
                         : graph::ExecMode::kSequential;
  ropts.use_arena = arena;
  if (!trace_path.empty() || report || counters || roofline)
    ropts.trace = &recorder;
  const RunResult r = cm.run(ropts);
  std::printf("  latency %.2f ms [%s%s] (conv %.2f, vision %.2f, copies %.3f, "
              "fallback %.2f, other %.2f)\n",
              r.latency_ms, wavefront ? "wavefront" : "sequential",
              arena ? ", arena" : "", r.conv_ms, r.vision_ms, r.copy_ms,
              r.fallback_ms, r.other_ms);
  if (r.counters.launches > 0) {
    std::printf("  counters: %lld launches, %.1f GFLOPS achieved, %.1f GB/s "
                "DRAM, occupancy %.2f, %s-bound overall\n",
                static_cast<long long>(r.counters.launches),
                r.counters.achieved_gflops(), r.counters.achieved_gbps(),
                r.counters.occupancy,
                std::string(sim::bound_name(r.counters.bound)).c_str());
  }
  const auto plan = cm.memory_plan();
  std::printf("  activation memory: %.2f MB planned (%.2f MB unshared)\n",
              static_cast<double>(plan.total_bytes()) / 1e6,
              static_cast<double>(plan.unshared_bytes) / 1e6);

  if (!trace_path.empty()) {
    if (!recorder.save_chrome_trace(trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("wrote %zu trace spans to %s (open in chrome://tracing or "
                "ui.perfetto.dev)\n",
                recorder.spans().size(), trace_path.c_str());
  }
  if (jit_stats) {
    // jit.* metrics accumulate process-wide; for a single compile+run CLI
    // invocation they describe exactly this model's JIT activity.
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    std::printf("\n-- jit stats --\n");
    bool any = false;
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind("jit.", 0) != 0) continue;
      std::printf("  %-28s %lld\n", name.c_str(),
                  static_cast<long long>(value));
      any = true;
    }
    for (const auto& [name, h] : snap.histograms) {
      if (name.rfind("jit.", 0) != 0) continue;
      std::printf("  %-28s count=%lld sum=%.6g p99=%.6g\n", name.c_str(),
                  static_cast<long long>(h.count), h.sum, h.percentile(0.99));
      any = true;
    }
    if (!any) std::printf("  (no JIT activity; compile with --backend jit)\n");
  }
  if (report) std::printf("\n%s", recorder.report().c_str());
  if (counters) std::printf("\n%s", obs::counters_table(recorder).c_str());
  if (roofline) {
    std::printf("\n%s",
                obs::roofline_report(recorder, platform.gpu).str().c_str());
  }
  if (!journal_path.empty()) {
    if (!journal.save(journal_path)) {
      std::fprintf(stderr, "failed to write tuning journal to %s\n",
                   journal_path.c_str());
      return 1;
    }
    std::printf("wrote %zu tuning trials to %s\n%s", journal.size(),
                journal_path.c_str(), journal.convergence_report().c_str());
  }
  if (!metrics_path.empty()) {
    const std::string doc = obs::MetricsRegistry::global().snapshot_json();
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr ||
        std::fwrite(doc.data(), 1, doc.size(), f) != doc.size() ||
        std::fclose(f) != 0) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_path.c_str());
      return 1;
    }
    std::printf("wrote metrics snapshot to %s\n", metrics_path.c_str());
  }
  if (!save_db.empty()) {
    cm.tune_db().save(save_db);
    std::printf("saved %zu tuning records to %s\n", cm.tune_db().size(),
                save_db.c_str());
  }
  if (dump_graph) {
    std::printf("\n-- optimized graph --\n");
    // Re-derive from the compiled model's run-facing view: print via a fresh
    // compile-time summary (the graph lives inside CompiledModel).
    std::printf("%s", cm.graph_summary().c_str());
  }
  if (dump_kernels) {
    for (const auto& [key, src] : cm.generated_sources()) {
      std::printf("\n-- %s --\n%s", key.c_str(), src.c_str());
    }
  }

  if (serve_demo) {
    // Open-loop serving-engine demo: N tenants of this one compiled model
    // behind the request queue + dynamic batcher + worker pool, offered a
    // Poisson arrival stream. Shapes-only runs (the demo measures the
    // serving layer, not host numerics); each request holds its worker for
    // the scaled simulated latency, like a worker blocked on its device.
    obs::TelemetrySampler::Options sopts;
    sopts.interval_ms = static_cast<int>(metrics_interval_ms);
    obs::TelemetrySampler sampler(sopts);

    serve::EngineOptions eo;
    eo.num_workers = static_cast<int>(serve_workers);
    eo.queue.max_depth = 256;
    eo.queue.max_batch_size = static_cast<int>(serve_batch);
    eo.queue.max_wait_ms = serve_wait_ms;
    eo.sim_pacing = serve_pacing;
    eo.trace.enabled = trace_requests;
    eo.trace.head_sample_rate = trace_head_rate;
    serve::ServingEngine engine(eo);

    obs::MetricsHttpServer::Options hopts;
    hopts.port = static_cast<uint16_t>(serve_port);
    hopts.sampler = &sampler;
    hopts.const_labels = {{"model", model_name}, {"platform", platform.name}};
    hopts.health = [&engine](bool* healthy) {
      const serve::EngineHealth h = engine.health();
      *healthy = h.healthy();
      return h.json();
    };
    hopts.flight_recorder = engine.flight_recorder();  // null when untraced
    hopts.exemplars = engine.exemplars();
    obs::MetricsHttpServer server(hopts);
    if (serve) {
      sampler.start();
      std::string err;
      if (!server.start(&err)) {
        std::fprintf(stderr, "--serve-metrics failed: %s\n", err.c_str());
        return 1;
      }
      std::printf("serving telemetry on http://127.0.0.1:%d/metrics\n",
                  server.port());
      std::fflush(stdout);
    }
    for (long t = 0; t < serve_tenants; ++t) {
      serve::TenantSpec spec;
      spec.name = model_name + "#" + std::to_string(t);
      spec.model = &cm;
      spec.run.mode = ropts.mode;
      spec.run.compute_numerics = false;
      spec.run.use_arena = true;
      engine.add_tenant(std::move(spec));
    }
    engine.start();

    std::printf("\n-- open-loop serving demo: %ld tenants x %s, %.0f req/s "
                "offered for %.0f ms, %ld workers, batch<=%ld, wait %.1f ms, "
                "pacing %.3g --\n",
                serve_tenants, model_name.c_str(), serve_rate,
                serve_duration_ms, serve_workers, serve_batch, serve_wait_ms,
                serve_pacing);
    std::vector<std::pair<double, int>> schedule;  // (arrival ms, tenant)
    for (long t = 0; t < serve_tenants; ++t) {
      const auto times = serve::poisson_arrival_times_ms(
          serve_rate / static_cast<double>(serve_tenants), serve_duration_ms,
          0xc11u + static_cast<uint64_t>(t));
      for (double at : times) schedule.emplace_back(at, static_cast<int>(t));
    }
    std::sort(schedule.begin(), schedule.end());

    std::vector<std::future<serve::RequestOutcome>> futures;
    futures.reserve(schedule.size());
    const auto t0 = std::chrono::steady_clock::now();
    for (size_t i = 0; i < schedule.size(); ++i) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration<double, std::milli>(schedule[i].first));
      serve::SubmitResult sr =
          engine.submit(schedule[i].second, static_cast<uint64_t>(i));
      if (sr.admitted()) futures.push_back(std::move(sr.outcome));
    }
    engine.stop();
    const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();

    obs::LatencyHistogram e2e, qwait;
    for (auto& f : futures) {
      const serve::RequestOutcome o = f.get();
      e2e.observe(o.e2e_ms());
      qwait.observe(o.queue_wait_ms());
    }
    const serve::EngineStats s = engine.stats();
    std::printf("  offered %lld, admitted %lld, shed %lld, rejected %lld; "
                "completed %lld in %.0f ms (goodput %.1f req/s)\n",
                static_cast<long long>(s.submitted),
                static_cast<long long>(s.admitted),
                static_cast<long long>(s.shed),
                static_cast<long long>(s.rejected_full + s.rejected_shutdown),
                static_cast<long long>(s.completed), elapsed_ms,
                elapsed_ms > 0 ? s.completed * 1000.0 / elapsed_ms : 0.0);
    std::printf("  batches %lld (mean size %.2f), queue depth peak %d\n",
                static_cast<long long>(s.batches),
                s.batches > 0 ? static_cast<double>(s.completed) /
                                    static_cast<double>(s.batches)
                              : 0.0,
                s.queue_depth_peak);
    std::printf("  e2e p50/p95/p99: %.2f/%.2f/%.2f ms; queue-wait "
                "p50/p95/p99: %.2f/%.2f/%.2f ms\n",
                e2e.percentile(0.50), e2e.percentile(0.95),
                e2e.percentile(0.99), qwait.percentile(0.50),
                qwait.percentile(0.95), qwait.percentile(0.99));
    for (long t = 0; t < serve_tenants; ++t) {
      std::printf("  %-24s completed %lld\n", engine.tenant_name(t).c_str(),
                  static_cast<long long>(
                      s.completed_per_tenant[static_cast<size_t>(t)]));
    }
    if (trace_requests && engine.flight_recorder() != nullptr) {
      // Post-run flight-recorder readout: the retained timelines with the
      // highest end-to-end latency, event by event.
      std::vector<obs::RequestTimeline> tls =
          engine.flight_recorder()->snapshot();
      std::sort(tls.begin(), tls.end(),
                [](const obs::RequestTimeline& a,
                   const obs::RequestTimeline& b) {
                  if (a.e2e_ms() != b.e2e_ms()) return a.e2e_ms() > b.e2e_ms();
                  return a.trace_id < b.trace_id;
                });
      std::printf("  -- 3 slowest traced requests (%zu retained, %lld "
                  "offered) --\n",
                  tls.size(),
                  static_cast<long long>(engine.flight_recorder()->offered()));
      const size_t top = tls.size() < 3 ? tls.size() : 3;
      for (size_t i = 0; i < top; ++i) {
        const obs::RequestTimeline& tl = tls[i];
        std::printf("  #%llu %s %s e2e %.2f ms\n",
                    static_cast<unsigned long long>(tl.trace_id),
                    tl.tenant_name.c_str(),
                    obs::request_status_name(tl.status), tl.e2e_ms());
        for (const obs::RequestEvent& e : tl.events) {
          std::printf("    %+9.3f ms %-12s", e.t_ms - tl.submit_ms(),
                      obs::request_event_name(e.kind));
          if (e.queue_depth >= 0) std::printf(" depth=%d", e.queue_depth);
          if (e.batch_id >= 0)
            std::printf(" batch=%lld", static_cast<long long>(e.batch_id));
          if (e.batch_size > 0) std::printf(" size=%d", e.batch_size);
          if (e.worker_id >= 0) std::printf(" worker=%d", e.worker_id);
          if (e.sim_latency_ms > 0.0)
            std::printf(" sim=%.3fms", e.sim_latency_ms);
          if (!e.detail.empty()) std::printf(" %s", e.detail.c_str());
          std::printf("\n");
        }
      }
    }
    if (serve) {
      server.stop();
      sampler.stop();
    }
    return 0;
  }

  if (serve) {
    // Serving mode: keep re-running inference while the telemetry endpoints
    // are live, so a scrape watches run.* and exec.* series actually move.
    obs::TelemetrySampler::Options sopts;
    sopts.interval_ms = static_cast<int>(metrics_interval_ms);
    obs::TelemetrySampler sampler(sopts);
    sampler.start();

    obs::MetricsHttpServer::Options hopts;
    hopts.port = static_cast<uint16_t>(serve_port);
    hopts.sampler = &sampler;
    hopts.const_labels = {{"model", model_name}, {"platform", platform.name}};
    obs::MetricsHttpServer server(hopts);
    std::string err;
    if (!server.start(&err)) {
      std::fprintf(stderr, "--serve-metrics failed: %s\n", err.c_str());
      return 1;
    }
    std::printf("serving telemetry on http://127.0.0.1:%d/metrics "
                "(sampler interval %ld ms)%s\n",
                server.port(), metrics_interval_ms,
                serve_runs == 0 ? "; press Ctrl-C to stop" : "");
    std::fflush(stdout);
    for (long i = 0; serve_runs == 0 || i < serve_runs; ++i) cm.run(ropts);
    server.stop();
    sampler.stop();
    std::printf("completed %ld serving runs\n", serve_runs);
  }
  return 0;
}
