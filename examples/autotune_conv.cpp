// The AutoTVM loop up close (Sec. 3.2.3): tune one convolution workload on
// all three devices with each search strategy, showing the search progress
// and how different hardware prefers different schedules.
#include <cstdio>

#include "ops/nn/conv2d.h"
#include "sim/device_spec.h"
#include "tune/tuner.h"

int main() {
  using namespace igc;  // NOLINT
  // A ResNet-50 stage-2 workload.
  ops::Conv2dParams p;
  p.in_channels = 128;
  p.out_channels = 128;
  p.in_h = p.in_w = 28;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  std::printf("workload: %s (%.1f MFLOPs)\n", p.workload_key().c_str(),
              static_cast<double>(p.flops()) / 1e6);

  for (const sim::Platform& plat : sim::all_platforms()) {
    const sim::DeviceSpec& dev = plat.gpu;
    const tune::ConfigSpace space = ops::conv2d_config_space(p, dev);
    const tune::MeasureFn measure = [&](const tune::ScheduleConfig& cfg) {
      return ops::conv2d_latency_ms(p, cfg, dev);
    };
    std::printf("\n%s: %lld configs in the space\n", dev.name.c_str(),
                static_cast<long long>(space.size()));
    const auto manual = ops::conv2d_manual_schedule(p, dev);
    std::printf("  manual template: %-52s %.3f ms\n", manual.str().c_str(),
                ops::conv2d_latency_ms(p, manual, dev));
    for (auto s : {tune::SearchStrategy::kRandom,
                   tune::SearchStrategy::kSimulatedAnnealing,
                   tune::SearchStrategy::kModelGuided}) {
      tune::TuneOptions opts;
      opts.strategy = s;
      opts.n_trials = 128;
      const tune::TuneResult r = tune::tune(space, measure, opts);
      const char* name = s == tune::SearchStrategy::kRandom ? "random"
                         : s == tune::SearchStrategy::kSimulatedAnnealing
                             ? "sim-anneal"
                             : "model-guided";
      std::printf("  %-12s best %-42s %.3f ms (%.1fx over naive default)\n",
                  name, r.best_config.str().c_str(), r.best_ms,
                  r.default_ms / r.best_ms);
    }
  }
  return 0;
}
