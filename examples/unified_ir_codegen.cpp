// The unified-IR story (Fig. 1): one scheduled convolution program lowered
// once and emitted as OpenCL C (for Intel Graphics / ARM Mali) and as CUDA C
// (for Nvidia) — then validated numerically by interpreting the IR against
// the operator library's reference convolution.
#include <cstdio>

#include "codegen/codegen.h"
#include "core/rng.h"
#include "ir/interp.h"
#include "ops/nn/conv2d.h"
#include "sim/device_spec.h"

int main() {
  using namespace igc;  // NOLINT
  ops::Conv2dParams p;
  p.in_channels = 8;
  p.in_h = p.in_w = 16;
  p.out_channels = 16;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;

  tune::ScheduleConfig cfg;
  cfg.set("tile_oc", 4);
  cfg.set("tile_ow", 4);
  cfg.set("unroll", 2);

  const ir::LoweredKernel kernel = ops::conv2d_build_ir(p, cfg);
  std::printf("schedule: %s\ngrid=%lld blocks, block=%lld threads\n\n",
              cfg.str().c_str(), static_cast<long long>(kernel.grid_size()),
              static_cast<long long>(kernel.block_size()));

  std::printf("---- OpenCL C (Intel HD 505, subgroups enabled) ----\n%s\n",
              codegen::emit_for_device(
                  kernel, sim::platform(sim::PlatformId::kDeepLens).gpu)
                  .c_str());
  std::printf("---- CUDA C (Jetson Nano) ----\n%s\n",
              codegen::emit_for_device(
                  kernel, sim::platform(sim::PlatformId::kJetsonNano).gpu)
                  .c_str());

  // Validate the IR numerically against the reference convolution.
  Rng rng(3);
  Tensor input = Tensor::random_uniform(Shape{1, 8, 16, 16}, rng);
  Tensor weight = Tensor::random_uniform(Shape{16, 8, 3, 3}, rng);
  Tensor out = Tensor::zeros(Shape{1, 16, 16, 16});
  ir::interpret(kernel, {{"data", input}, {"weight", weight}, {"out", out}});
  const Tensor expected = ops::conv2d_reference(input, weight, nullptr, p);
  std::printf("interpreted IR vs reference: max |diff| = %.2e\n",
              out.max_abs_diff(expected));
  return 0;
}
