// Ablations of the schedule-template design choices called out in DESIGN.md:
//
//  (a) Intel subgroups on/off (Sec. 3.2.1): how much of the Intel win comes
//      from the subgroup extension, per workload class.
//  (b) Direct vs Winograd (Sec. 3.2.2 "adaptively adjust the main
//      template"): where the algorithm crossover falls.
//  (c) The depthwise future-work fix (Sec. 4.2): MobileNet's depthwise
//      layers on Intel under the generic template vs the specialized one —
//      what Table 1's 0.62x would become.
#include <cstdio>
#include <vector>

#include "models/models.h"
#include "ops/nn/conv2d.h"
#include "ops/nn/depthwise.h"
#include "ops/nn/winograd.h"
#include "sim/device_spec.h"
#include "tune/tuner.h"

namespace {

using namespace igc;  // NOLINT

double tune_best(const tune::ConfigSpace& space, const tune::MeasureFn& fn) {
  tune::TuneOptions opts;
  opts.n_trials = 96;
  return tune::tune(space, fn, opts).best_ms;
}

void ablation_subgroups() {
  std::printf("\n--- (a) Intel subgroup extension on/off (intel-hd505) ---\n");
  std::printf("%-44s %12s %12s %8s\n", "workload", "no-subgroup", "subgroup",
              "gain");
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  struct Case {
    const char* name;
    ops::Conv2dParams p;
  };
  std::vector<Case> cases;
  auto mk = [](int64_t ci, int64_t co, int64_t hw, int64_t k) {
    ops::Conv2dParams p;
    p.in_channels = ci;
    p.out_channels = co;
    p.in_h = p.in_w = hw;
    p.kernel_h = p.kernel_w = k;
    p.pad_h = p.pad_w = k / 2;
    return p;
  };
  cases.push_back({"resnet stage2 3x3 128ch 28px", mk(128, 128, 28, 3)});
  cases.push_back({"resnet stage4 3x3 512ch 7px", mk(512, 512, 7, 3)});
  cases.push_back({"pointwise 256->256 14px", mk(256, 256, 14, 1)});
  cases.push_back({"stem 3->32 224px", mk(3, 32, 224, 3)});
  for (const Case& c : cases) {
    // Constrain the subgroup knob and tune each half-space.
    auto space = ops::conv2d_config_space(c.p, dev);
    tune::ConfigSpace without, with_sg;
    for (const auto& knob : space.knobs()) {
      if (knob.name == "use_subgroup") {
        without.add_knob(knob.name, {0});
        with_sg.add_knob(knob.name, {1});
      } else {
        without.add_knob(knob.name, knob.choices);
        with_sg.add_knob(knob.name, knob.choices);
      }
    }
    const tune::MeasureFn fn = [&](const tune::ScheduleConfig& cfg) {
      return ops::conv2d_latency_ms(c.p, cfg, dev);
    };
    const double off = tune_best(without, fn);
    const double on = tune_best(with_sg, fn);
    std::printf("%-44s %10.3fms %10.3fms %7.2fx\n", c.name, off, on, off / on);
  }
}

void ablation_winograd() {
  std::printf("\n--- (b) direct vs Winograd F(2x2,3x3) crossover ---\n");
  std::printf("%-14s %-28s %10s %10s %10s\n", "device", "workload", "direct",
              "winograd", "choice");
  tune::TuneOptions opts;
  opts.n_trials = 64;
  for (const auto& plat : sim::all_platforms()) {
    for (const auto& [name, ci, hw] :
         {std::tuple{"wide 256ch 14px", 256l, 14l},
          std::tuple{"mid 64ch 56px", 64l, 56l},
          std::tuple{"narrow 16ch 28px", 16l, 28l}}) {
      ops::Conv2dParams p;
      p.in_channels = p.out_channels = ci;
      p.in_h = p.in_w = hw;
      p.kernel_h = p.kernel_w = 3;
      p.pad_h = p.pad_w = 1;
      const auto c = ops::conv2d_best_algorithm(p, plat.gpu, opts);
      std::printf("%-14s %-28s %8.3fms %8.3fms %10s\n", plat.gpu.name.c_str(),
                  name, c.direct_ms, c.winograd_ms,
                  c.algorithm == ops::ConvAlgorithm::kWinograd ? "winograd"
                                                               : "direct");
    }
  }
}

void ablation_depthwise() {
  std::printf(
      "\n--- (c) depthwise on Intel: generic template vs specialized "
      "(the paper's future work) ---\n");
  std::printf("%-36s %12s %12s %8s\n", "MobileNet depthwise layer", "generic",
              "specialized", "gain");
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  double generic_total = 0.0, special_total = 0.0;
  // The 13 depthwise layers of MobileNet 1.0 at 224.
  Rng rng(1);
  models::Model m = models::build_mobilenet(rng);
  for (int id : m.graph.conv_node_ids()) {
    const ops::Conv2dParams& p = m.graph.node(id).conv;
    if (!p.is_depthwise()) continue;
    const tune::MeasureFn generic_fn = [&](const tune::ScheduleConfig& cfg) {
      return ops::conv2d_latency_ms(p, cfg, dev);
    };
    const tune::MeasureFn special_fn = [&](const tune::ScheduleConfig& cfg) {
      return ops::depthwise_latency_ms(p, cfg, dev);
    };
    const double generic = tune_best(ops::conv2d_config_space(p, dev), generic_fn);
    const double special =
        tune_best(ops::depthwise_config_space(p, dev), special_fn);
    generic_total += generic;
    special_total += special;
    std::printf("%-36s %10.3fms %10.3fms %7.2fx\n", p.workload_key().c_str() + 7,
                generic, special, generic / special);
  }
  std::printf("%-36s %10.3fms %10.3fms %7.2fx\n", "TOTAL (13 layers)",
              generic_total, special_total, generic_total / special_total);
  std::printf(
      "-> with the specialized template, MobileNet on DeepLens would shed "
      "~%.0f ms,\n   moving Table 1's 0.62x toward parity with OpenVINO.\n",
      generic_total - special_total);
}

}  // namespace

int main() {
  std::printf("=== Template ablations (DESIGN.md design choices) ===\n");
  ablation_subgroups();
  ablation_winograd();
  ablation_depthwise();
  return 0;
}
