// Shared harness for the Table 1/2/3 end-to-end benchmarks: runs the full
// "ours" pipeline (graph optimization -> per-conv AutoTVM search -> graph
// tuner layout DP -> simulated execution) against the platform's emulated
// vendor stack, and prints the paper's numbers next to the measured ones.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "baselines/vendor.h"
#include "graph/executor.h"
#include "graph/passes.h"
#include "graphtune/graph_tuner.h"
#include "models/models.h"
#include "sim/device_spec.h"
#include "tune/tunedb.h"

namespace igc::bench {

struct PaperRow {
  const char* model;
  double ours_ms;    // paper "Ours"
  double vendor_ms;  // paper baseline; <= 0 means unsupported ("-")
};

struct MeasuredRow {
  std::string model;
  double ours_ms = 0.0;
  double vendor_ms = -1.0;
  bool vendor_supported = true;
  /// Aggregated simulated hardware counters of the "ours" run (schema-v3
  /// counter summary in the JSON rows).
  sim::KernelCounters counters;
};

/// Full "ours" pipeline on one model. Tuning records accumulate in `db`;
/// `counters` (optional) receives the run's aggregated hardware counters.
inline double run_ours(models::Model& model, const sim::Platform& platform,
                       tune::TuneDb& db, int tune_trials = 96,
                       sim::KernelCounters* counters = nullptr) {
  graph::optimize(model.graph);
  tune::TuneOptions topts;
  topts.n_trials = tune_trials;
  const graphtune::GraphTuneResult layouts =
      graphtune::tune_graph_layouts(model.graph, platform.gpu, db, topts);
  graph::ExecOptions opts;
  opts.compute_numerics = false;
  opts.db = &db;
  opts.conv_layout_block = layouts.layout_of_conv;
  Rng input_rng(0xbe5c);
  const graph::ExecResult r =
      graph::execute(model.graph, platform, opts, input_rng);
  if (counters != nullptr) *counters = r.counters;
  return r.latency_ms;
}

inline MeasuredRow run_row(models::Model& model, const sim::Platform& platform,
                           tune::TuneDb& db) {
  MeasuredRow row;
  row.model = model.name;
  const baselines::BaselineResult base = baselines::run_baseline(
      baselines::vendor_for(platform), model, platform);
  row.vendor_supported = base.supported;
  if (base.supported) row.vendor_ms = base.latency_ms;
  row.ours_ms = run_ours(model, platform, db, /*tune_trials=*/96,
                         &row.counters);
  return row;
}

inline void print_table(const std::string& title, const std::string& vendor,
                        const std::vector<MeasuredRow>& rows,
                        const std::vector<PaperRow>& paper) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("%-18s | %10s | %12s | %8s || %10s | %12s | %8s\n", "Model",
              "Ours(ms)", (vendor + "(ms)").c_str(), "Speedup", "paper:Ours",
              ("paper:" + vendor).c_str(), "paperSp");
  std::printf("%s\n", std::string(100, '-').c_str());
  for (size_t i = 0; i < rows.size(); ++i) {
    const MeasuredRow& r = rows[i];
    const PaperRow& p = paper[i];
    char vendor_buf[32], speedup_buf[32], pv_buf[32], ps_buf[32];
    if (r.vendor_supported) {
      std::snprintf(vendor_buf, sizeof(vendor_buf), "%.2f", r.vendor_ms);
      std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2f",
                    r.vendor_ms / r.ours_ms);
    } else {
      std::snprintf(vendor_buf, sizeof(vendor_buf), "-");
      std::snprintf(speedup_buf, sizeof(speedup_buf), "-");
    }
    if (p.vendor_ms > 0) {
      std::snprintf(pv_buf, sizeof(pv_buf), "%.2f", p.vendor_ms);
      std::snprintf(ps_buf, sizeof(ps_buf), "%.2f", p.vendor_ms / p.ours_ms);
    } else {
      std::snprintf(pv_buf, sizeof(pv_buf), "-");
      std::snprintf(ps_buf, sizeof(ps_buf), "-");
    }
    std::printf("%-18s | %10.2f | %12s | %8s || %10.2f | %12s | %8s\n",
                r.model.c_str(), r.ours_ms, vendor_buf, speedup_buf, p.ours_ms,
                pv_buf, ps_buf);
  }
}

/// Runs one full platform table (used by bench_table1/2/3). `bench` is the
/// slug stamped into each row's JSON line (e.g. "table1_deeplens").
inline void run_platform_table(sim::PlatformId id, const std::string& bench,
                               const std::string& title,
                               const std::string& vendor,
                               const std::vector<PaperRow>& paper) {
  const sim::Platform& platform = sim::platform(id);
  Rng rng(0x5eed);
  std::vector<models::Model> zoo =
      models::build_all(rng, /*small_detection_inputs=*/id == sim::PlatformId::kAiSage);
  tune::TuneDb db;
  std::vector<MeasuredRow> rows;
  for (auto& m : zoo) {
    rows.push_back(run_row(m, platform, db));
  }
  print_table(title, vendor, rows, paper);
  std::printf("(tuning database: %zu workload entries)\n", db.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    const MeasuredRow& r = rows[i];
    JsonObject j = bench_row(bench, platform.name, r.model);
    j.field("vendor", vendor)
        .field("ours_ms", r.ours_ms)
        .field("vendor_supported", r.vendor_supported);
    if (r.vendor_supported) {
      j.field("vendor_ms", r.vendor_ms)
          .field("speedup", r.vendor_ms / r.ours_ms);
    }
    j.field("paper_ours_ms", paper[i].ours_ms);
    if (paper[i].vendor_ms > 0) j.field("paper_vendor_ms", paper[i].vendor_ms);
    counter_summary(j, r.counters);
    j.emit();
  }
}

}  // namespace igc::bench
