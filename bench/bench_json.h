// Tiny machine-readable output helper for the benches: one flat JSON object
// per result row, printed alongside the human tables so dashboards can scrape
// bench output (or the file a bench writes) without parsing printf columns.
//
// Deliberately minimal — flat objects, string/number/bool fields only.
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "graph/pass_manager.h"
#include "sim/timing_model.h"

namespace igc::bench {

class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& value) {
    add_key(key);
    out_ += '"';
    escape_into(value);
    out_ += '"';
    return *this;
  }
  JsonObject& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonObject& field(const std::string& key, double value) {
    add_key(key);
    if (!std::isfinite(value)) {
      out_ += "null";
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      out_ += buf;
    }
    return *this;
  }
  JsonObject& field(const std::string& key, int64_t value) {
    add_key(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out_ += buf;
    return *this;
  }
  JsonObject& field(const std::string& key, int value) {
    return field(key, static_cast<int64_t>(value));
  }
  JsonObject& field(const std::string& key, bool value) {
    add_key(key);
    out_ += value ? "true" : "false";
    return *this;
  }

  std::string str() const { return out_ + "}"; }

  /// Prints the object as one line to `f` (stdout by default).
  void emit(std::FILE* f = stdout) const {
    std::fprintf(f, "%s\n", str().c_str());
  }

 private:
  void add_key(const std::string& key) {
    out_ += first_ ? "" : ", ";
    first_ = false;
    out_ += '"';
    escape_into(key);
    out_ += "\": ";
  }

  void escape_into(const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out_ += '\\';
        out_ += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out_ += buf;
      } else {
        out_ += c;
      }
    }
  }

  std::string out_ = "{";
  bool first_ = true;
};

/// Bump when the shared header below (or a bench's row shape) changes
/// incompatibly, so dashboards can key parsers off it.
/// v2: added "passes" (comma-joined graph pass pipeline).
/// v3: rows for executed runs may carry the counter summary block
///     (counter_summary(): sim_launches/sim_flops/... — see below).
/// v4: serving rows carry "backend" ("interp" | "jit" — which engine
///     computed operator numerics) and "numerics" (whether numerics ran at
///     all; shapes-only timing rows say false).
/// v5: serving rows carry host-side per-run latency percentiles
///     ("host_p50_ms" <= "host_p95_ms" <= "host_p99_ms", from the
///     log-bucketed obs::LatencyHistogram).
/// v6: open-loop engine rows (bench "serving_engine", mode "engine") carry
///     the offered/served traffic block: "tenants", "workers",
///     "offered_per_s", "goodput_per_s", admission accounting
///     (submitted/admitted/shed/rejected), end-to-end and queue-wait
///     percentile triples, and "batch_size_mean".
/// v7: serving and serving_engine rows carry the paged-arena memory block:
///     "arena_peak_bytes" (serving rows: the run's high-water of planned
///     intermediate bytes when arena-backed, 0 otherwise; engine rows: the
///     shared PagePool's physical high-water across the whole cell) and
///     "arena_page_bytes" (serving rows: page bytes the arena still held
///     when the run finished; engine rows: the pool's mapped extent bytes).
///     Mixed-resolution engine cells additionally carry "slab_bytes" — what
///     per-worker private slabs would have pinned — so dashboards can chart
///     the paged-sharing win directly.
/// v8: serving_engine rows may carry "trace_overhead_pct" — the goodput
///     cost of request tracing, measured by replaying the same cell with
///     tracing on: (goodput_off - goodput_on) / goodput_off * 100. Emitted
///     on the cells that run the traced replay (the quick cell always
///     does); wall-clock noisy, so it gates advisorily in CI.
inline constexpr int kBenchSchemaVersion = 8;

/// Starts a row carrying the shared metadata header every BENCH_*.json line
/// leads with: bench name, schema version, platform, model, executor mode
/// ("sequential" | "wavefront" | "all" for rows aggregating both), and the
/// active graph pass pipeline (comma-joined names; pass
/// graph::join_pass_names(cm.pass_pipeline()) when a bench customizes it).
/// Append bench-specific fields to the returned object, then emit().
inline JsonObject bench_row(
    const std::string& bench, const std::string& platform,
    const std::string& model, const std::string& mode = "sequential",
    const std::string& passes = graph::default_pass_names_joined()) {
  JsonObject j;
  j.field("bench", bench)
      .field("schema_version", kBenchSchemaVersion)
      .field("platform", platform)
      .field("model", model)
      .field("mode", mode)
      .field("passes", passes);
  return j;
}

/// Appends the schema-v3 counter summary block (aggregated simulated
/// hardware counters of one run) to a row. No-op for runs that charged no
/// launches, so rows stay valid when a bench skips execution.
inline JsonObject& counter_summary(JsonObject& j,
                                   const sim::KernelCounters& c) {
  if (c.launches <= 0) return j;
  j.field("sim_launches", c.launches)
      .field("sim_flops", c.flops)
      .field("sim_dram_bytes", c.dram_bytes)
      .field("achieved_gflops", c.achieved_gflops())
      .field("achieved_gbps", c.achieved_gbps())
      .field("arithmetic_intensity", c.arithmetic_intensity())
      .field("avg_occupancy", c.occupancy)
      .field("bound", std::string(sim::bound_name(c.bound)));
  return j;
}

}  // namespace igc::bench
