// Table 5: effect of the machine-learning-based schedule search (AutoTVM +
// graph tuner, Sec. 3.2.3) on the three classification models, per device.
// "Before" executes every convolution with the template's untuned default
// schedule in plain NCHW; "After" uses the searched schedules and the graph
// tuner's layout choices.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "graph/executor.h"
#include "graph/passes.h"
#include "graphtune/graph_tuner.h"
#include "models/models.h"
#include "sim/device_spec.h"
#include "tune/conv_tuner.h"
#include "tune/journal.h"
#include "tune/tunedb.h"
#include "tune/tuner.h"

namespace {

struct PaperRow {
  const char* device;
  const char* model;
  double before_ms;
  double after_ms;
};

const std::vector<PaperRow> kPaper = {
    {"AWS DeepLens", "Resnet50_v1", 260, 186.15},
    {"AWS DeepLens", "MobileNet1.0", 558.15, 85.58},
    {"AWS DeepLens", "SqueezeNet1.0", 64, 52.1},
    {"Acer aiSage", "Resnet50_v1", 727.29, 345.6},
    {"Acer aiSage", "MobileNet1.0", 655.18, 78.83},
    {"Acer aiSage", "SqueezeNet1.0", 1362.2, 106.61},
    {"Nvidia Jetson Nano", "Resnet50_v1", 1088.55, 113.81},
    {"Nvidia Jetson Nano", "MobileNet1.0", 155.14, 20.63},
    {"Nvidia Jetson Nano", "SqueezeNet1.0", 1045, 26.58},
};

}  // namespace

int main() {
  using namespace igc;  // NOLINT
  std::printf(
      "\n=== Table 5: tuning-based convolution optimization (before/after) "
      "===\n");
  std::printf("%-20s %-16s | %10s %10s %8s || %10s %10s %8s\n", "Device",
              "Model", "Before", "After", "Speedup", "p:Before", "p:After",
              "p:Sp");
  std::printf("%s\n", std::string(108, '-').c_str());

  size_t row_idx = 0;
  for (auto id : {sim::PlatformId::kDeepLens, sim::PlatformId::kAiSage,
                  sim::PlatformId::kJetsonNano}) {
    const sim::Platform& platform = sim::platform(id);
    Rng rng(0x5eed);
    std::vector<models::Model> cls;
    cls.push_back(models::build_resnet50(rng));
    cls.push_back(models::build_mobilenet(rng));
    cls.push_back(models::build_squeezenet(rng));

    tune::TuneDb db;
    for (auto& m : cls) {
      graph::optimize(m.graph);
      tune::TuneOptions topts;
      topts.n_trials = 96;
      const auto layouts =
          graphtune::tune_graph_layouts(m.graph, platform.gpu, db, topts);

      graph::ExecOptions before_opts;
      before_opts.compute_numerics = false;
      before_opts.use_tuned_configs = false;  // untuned template defaults
      Rng r1(0xbe5c);
      const double before =
          graph::execute(m.graph, platform, before_opts, r1).latency_ms;

      graph::ExecOptions after_opts;
      after_opts.compute_numerics = false;
      after_opts.db = &db;
      after_opts.conv_layout_block = layouts.layout_of_conv;
      Rng r2(0xbe5c);
      const double after =
          graph::execute(m.graph, platform, after_opts, r2).latency_ms;

      const PaperRow& p = kPaper[row_idx++];
      std::printf("%-20s %-16s | %10.2f %10.2f %8.2f || %10.2f %10.2f %8.2f\n",
                  platform.name.c_str(), m.name.c_str(), before, after,
                  before / after, p.before_ms, p.after_ms,
                  p.before_ms / p.after_ms);

      bench::JsonObject j =
          bench::bench_row("table5_autotune", platform.name, m.name);
      j.field("before_ms", before)
          .field("after_ms", after)
          .field("speedup", before / after)
          .field("paper_before_ms", p.before_ms)
          .field("paper_after_ms", p.after_ms);
      j.emit();
    }
  }

  // Convergence study (journal-derived): how fast each search strategy
  // approaches its final best on a representative convolution workload, per
  // platform. One JSON row per (platform, strategy) with the best-so-far
  // curve, so dashboards can plot model-guided vs random directly.
  std::printf("\n=== Table 5 addendum: search convergence (flight recorder) "
              "===\n");
  for (auto id : {sim::PlatformId::kDeepLens, sim::PlatformId::kAiSage,
                  sim::PlatformId::kJetsonNano}) {
    const sim::Platform& platform = sim::platform(id);
    Rng rng(0x5eed);
    models::Model resnet = models::build_resnet50(rng);
    graph::optimize(resnet.graph);
    // Representative workload: the first non-pointwise conv (spatial kernels
    // have the richer schedule space).
    const ops::Conv2dParams* workload = nullptr;
    for (const auto& n : resnet.graph.nodes()) {
      if (n.kind != graph::OpKind::kConv2d) continue;
      if (workload == nullptr) workload = &n.conv;
      if (n.conv.kernel_h > 1 && !n.conv.is_depthwise()) {
        workload = &n.conv;
        break;
      }
    }
    if (workload == nullptr) continue;

    for (auto strategy : {tune::SearchStrategy::kRandom,
                          tune::SearchStrategy::kSimulatedAnnealing,
                          tune::SearchStrategy::kModelGuided}) {
      tune::TuneDb db;  // fresh per strategy: no cache hit, full search
      tune::TuneJournal journal;
      tune::TuneOptions topts;
      topts.n_trials = 96;
      topts.strategy = strategy;
      topts.journal = &journal;
      tune::tune_conv2d(*workload, platform.gpu, /*layout_block=*/8, db,
                        topts);

      const std::vector<std::string> tasks = journal.tasks();
      if (tasks.empty()) continue;
      const std::string& task = tasks.front();
      const std::vector<double> curve = journal.best_curve(task);
      const std::vector<tune::TuneTrial> trials = journal.task_trials(task);
      const double default_ms = trials.front().measured_ms;
      const double best_ms = journal.best_ms(task);
      const int to5 = journal.trials_to_within(task, 0.05);
      std::printf("%-20s %-12s | trials %3zu | default %8.4f ms | best %8.4f "
                  "ms | within-5%% after %d\n",
                  platform.name.c_str(),
                  std::string(tune::strategy_name(strategy)).c_str(),
                  curve.size(), default_ms, best_ms, to5);

      std::string curve_str;
      for (size_t i = 0; i < curve.size(); ++i) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%s%.6g", i == 0 ? "" : ",",
                      curve[i]);
        curve_str += buf;
      }
      bench::JsonObject cj = bench::bench_row(
          "table5_convergence", platform.name, resnet.name);
      cj.field("strategy", std::string(tune::strategy_name(strategy)))
          .field("workload", task)
          .field("trials", static_cast<int64_t>(curve.size()))
          .field("default_ms", default_ms)
          .field("best_ms", best_ms)
          .field("speedup", default_ms / best_ms)
          .field("trials_to_within_5pct", to5)
          .field("best_curve", curve_str);
      cj.emit();
    }
  }
  return 0;
}
