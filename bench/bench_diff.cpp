// bench_diff: perf-regression gate over two BENCH_*.json files.
//
//   bench_diff <baseline.json> <candidate.json> \
//       [--fail-on-regress metric:pct% ...]
//
// Rows are matched on identity (bench/schema/platform/model/mode/config/
// backend/numerics); each watched metric that moves past its threshold in
// the bad direction is a regression. Exit codes: 0 clean, 1 regression
// found, 2 usage or I/O error — so CI can gate on it directly.
#include <cstdio>
#include <string>
#include <vector>

#include "core/error.h"
#include "obs/bench_diff.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <baseline.json> <candidate.json> "
      "[--fail-on-regress metric:pct%% ...]\n"
      "\n"
      "Compares two BENCH_*.json files row by row and reports per-metric\n"
      "deltas. Each --fail-on-regress watch (repeatable; a bare spec after\n"
      "the flag also counts) makes the exit status 1 when that metric moves\n"
      "past the threshold in its bad direction. Direction is inferred from\n"
      "the name (throughput/speedup metrics are higher-is-better, times and\n"
      "bytes lower); prefix the spec with '+' or '-' to pin it.\n"
      "\n"
      "example: %s BENCH_serving.json /tmp/BENCH_candidate.json \\\n"
      "             --fail-on-regress host_ms_per_run:10%%\n",
      argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, candidate_path;
  std::vector<igc::obs::benchdiff::Watch> watches;

  bool in_watches = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    }
    if (arg == "--fail-on-regress") {
      in_watches = true;
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    }
    if (in_watches) {
      igc::obs::benchdiff::Watch w;
      if (!igc::obs::benchdiff::parse_watch(arg, &w)) {
        std::fprintf(stderr, "bad watch spec (want metric:pct%%): %s\n",
                     arg.c_str());
        return usage(argv[0]);
      }
      watches.push_back(std::move(w));
    } else if (baseline_path.empty()) {
      baseline_path = arg;
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) return usage(argv[0]);
  if (in_watches && watches.empty()) {
    std::fprintf(stderr, "--fail-on-regress needs at least one metric:pct%%\n");
    return usage(argv[0]);
  }

  try {
    const auto result =
        igc::obs::benchdiff::diff_files(baseline_path, candidate_path, watches);
    std::fputs(result.report(watches).c_str(), stdout);
    return result.ok() ? 0 : 1;
  } catch (const igc::Error& e) {
    std::fprintf(stderr, "bench_diff: %s\n", e.what());
    return 2;
  }
}
