// Table 3: our solution vs cuDNN-backed MXNet on Nvidia Jetson Nano
// (128-core Maxwell).
#include "table_common.h"

int main() {
  using igc::bench::PaperRow;
  const std::vector<PaperRow> paper = {
      {"ResNet50_v1", 113.81, 117.22},
      {"MobileNet1.0", 20.63, 30.71},
      {"SqueezeNet1.0", 26.58, 42.98},
      {"SSD_MobileNet1.0", 135.5, 197.3},
      {"SSD_ResNet50", 371.32, 478.33},
      {"Yolov3", 553.79, 802.41},
  };
  igc::bench::run_platform_table(
      igc::sim::PlatformId::kJetsonNano, "table3_nano",
      "Table 3: Nvidia Jetson Nano (Maxwell), ours vs cuDNN/MXNet", "cuDNN",
      paper);
  return 0;
}
