// Extension bench: latency scaling with batch size. Edge inference is
// batch-1 (every paper table uses one sample), but the same stack serves
// small batches; this sweep shows near-linear scaling once the device is
// saturated and sub-linear scaling while batch parallelism still fills idle
// compute units.
#include <cstdio>

#include "bench_json.h"
#include "core/compiler.h"
#include "models/models.h"
#include "sim/device_spec.h"

int main() {
  using namespace igc;  // NOLINT
  std::printf("\n=== Batch-size sweep: ResNet50_v1 ===\n");
  std::printf("%-14s | %10s %10s %10s %10s | per-sample @8 vs @1\n", "device",
              "b=1", "b=2", "b=4", "b=8");
  for (const sim::Platform& plat : sim::all_platforms()) {
    const int64_t batches[] = {1, 2, 4, 8};
    double ms[4];
    int i = 0;
    for (int64_t batch : batches) {
      Rng rng(0x5eed);
      CompileOptions opts;
      opts.tune_trials = 64;
      CompiledModel cm =
          compile(models::build_resnet50(rng, 224, batch), plat, opts);
      ms[i++] = cm.run(1, false).latency_ms;
    }
    std::printf("%-14s | %9.2f %9.2f %9.2f %9.2f | %.2fx\n",
                plat.name.c_str(), ms[0], ms[1], ms[2], ms[3],
                (ms[3] / 8.0) / ms[0]);
    for (int b = 0; b < 4; ++b) {
      bench::JsonObject j =
          bench::bench_row("batch_sweep", plat.name, "ResNet50_v1");
      j.field("batch", batches[b])
          .field("sim_latency_ms", ms[b])
          .field("sim_ms_per_sample", ms[b] / static_cast<double>(batches[b]));
      j.emit();
    }
  }
  return 0;
}
