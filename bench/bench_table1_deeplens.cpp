// Table 1: our solution vs Intel OpenVINO on AWS DeepLens (Intel HD 505).
// OpenVINO only supports the image-classification models; the detection
// rows print "-" exactly as in the paper.
#include "table_common.h"

int main() {
  using igc::bench::PaperRow;
  const std::vector<PaperRow> paper = {
      {"ResNet50_v1", 186.15, 203.60},
      {"MobileNet1.0", 85.58, 53.48},
      {"SqueezeNet1.0", 52.10, 42.01},
      {"SSD_MobileNet1.0", 398.48, -1},
      {"SSD_ResNet50", 1006.01, -1},
      {"Yolov3", 1004.13, -1},
  };
  igc::bench::run_platform_table(
      igc::sim::PlatformId::kDeepLens, "table1_deeplens",
      "Table 1: AWS DeepLens (Intel HD Graphics 505), ours vs OpenVINO",
      "OpenVINO", paper);
  return 0;
}
