// Figure 2: the segmented-sort pipeline. Benchmarks both the simulated-GPU
// latency (optimized pipeline vs naive one-thread-per-segment mapping, per
// device) and the host-side throughput of the implementation itself via
// google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/rng.h"
#include "ops/vision/segmented_sort.h"
#include "sim/simulator.h"

namespace {

using namespace igc;  // NOLINT

/// NMS-like workload: one large background segment plus many small ones.
void make_workload(int64_t n, int64_t num_segs, std::vector<float>* values,
                   ops::Segments* segs) {
  Rng rng(1234);
  values->resize(static_cast<size_t>(n));
  for (float& v : *values) v = rng.next_float(0.0f, 1.0f);
  segs->offsets.clear();
  segs->offsets.push_back(0);
  // First segment takes half the data (skew), the rest split evenly.
  const int64_t first = n / 2;
  segs->offsets.push_back(first);
  const int64_t rest = num_segs > 1 ? (n - first) / (num_segs - 1) : 0;
  for (int64_t s = 1; s + 1 < num_segs; ++s) {
    segs->offsets.push_back(first + s * rest);
  }
  segs->offsets.push_back(n);
}

void report_simulated_latency() {
  std::printf("\n=== Figure 2: segmented argsort, simulated GPU latency ===\n");
  std::printf("%-14s %10s %8s | %12s %12s %8s\n", "device", "n", "segs",
              "optimized", "naive", "speedup");
  for (auto id : {sim::PlatformId::kDeepLens, sim::PlatformId::kAiSage,
                  sim::PlatformId::kJetsonNano}) {
    for (int64_t n : {2000, 8000, 24564}) {
      std::vector<float> values;
      ops::Segments segs;
      make_workload(n, 64, &values, &segs);
      sim::SimClock c_opt, c_naive;
      sim::GpuSimulator g_opt(sim::platform(id).gpu, c_opt);
      sim::GpuSimulator g_naive(sim::platform(id).gpu, c_naive);
      ops::segmented_argsort_gpu(g_opt, values, segs);
      ops::segmented_argsort_gpu_naive(g_naive, values, segs);
      std::printf("%-14s %10lld %8d | %10.3fms %10.3fms %7.1fx\n",
                  sim::platform(id).gpu.name.c_str(),
                  static_cast<long long>(n), 64, c_opt.total_ms(),
                  c_naive.total_ms(), c_naive.total_ms() / c_opt.total_ms());
    }
  }
  std::printf("\n");
}

void bm_segmented_sort_optimized(benchmark::State& state) {
  std::vector<float> values;
  ops::Segments segs;
  make_workload(state.range(0), 64, &values, &segs);
  sim::SimClock clock;
  sim::GpuSimulator gpu(sim::platform(sim::PlatformId::kDeepLens).gpu, clock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::segmented_argsort_gpu(gpu, values, segs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_segmented_sort_optimized)->Arg(2000)->Arg(8000)->Arg(24564);

void bm_segmented_sort_reference(benchmark::State& state) {
  std::vector<float> values;
  ops::Segments segs;
  make_workload(state.range(0), 64, &values, &segs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ops::segmented_argsort_reference(values, segs));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_segmented_sort_reference)->Arg(2000)->Arg(24564);

}  // namespace

int main(int argc, char** argv) {
  report_simulated_latency();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
