// Figure 3: the three-stage prefix sum (up-sweep / scan / down-sweep with
// register blocking) against the naive all-element Hillis-Steele scan that
// needs log2(n) device-wide synchronizations.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "core/rng.h"
#include "ops/vision/prefix_sum.h"
#include "sim/simulator.h"

namespace {

using namespace igc;  // NOLINT

std::vector<float> make_input(int64_t n) {
  Rng rng(42);
  std::vector<float> v(static_cast<size_t>(n));
  for (float& x : v) x = static_cast<float>(rng.next_int(0, 9));
  return v;
}

void report_simulated_latency() {
  std::printf("\n=== Figure 3: prefix sum (scan), simulated GPU latency ===\n");
  std::printf("%-14s %10s | %12s %12s %8s\n", "device", "n", "3-stage",
              "naive-HS", "speedup");
  for (auto id : {sim::PlatformId::kDeepLens, sim::PlatformId::kAiSage,
                  sim::PlatformId::kJetsonNano}) {
    for (int64_t n : {1000, 10000, 100000, 1000000}) {
      const std::vector<float> in = make_input(n);
      sim::SimClock c_opt, c_naive;
      sim::GpuSimulator g_opt(sim::platform(id).gpu, c_opt);
      sim::GpuSimulator g_naive(sim::platform(id).gpu, c_naive);
      ops::prefix_sum_gpu(g_opt, in);
      ops::prefix_sum_gpu_naive(g_naive, in);
      std::printf("%-14s %10lld | %10.3fms %10.3fms %7.1fx\n",
                  sim::platform(id).gpu.name.c_str(),
                  static_cast<long long>(n), c_opt.total_ms(),
                  c_naive.total_ms(), c_naive.total_ms() / c_opt.total_ms());
    }
  }
  std::printf("\n");
}

void bm_prefix_sum_three_stage(benchmark::State& state) {
  const std::vector<float> in = make_input(state.range(0));
  sim::SimClock clock;
  sim::GpuSimulator gpu(sim::platform(sim::PlatformId::kAiSage).gpu, clock);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::prefix_sum_gpu(gpu, in));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_prefix_sum_three_stage)->Arg(10000)->Arg(100000)->Arg(1000000);

void bm_prefix_sum_reference(benchmark::State& state) {
  const std::vector<float> in = make_input(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::prefix_sum_reference(in));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_prefix_sum_reference)->Arg(10000)->Arg(1000000);

}  // namespace

int main(int argc, char** argv) {
  report_simulated_latency();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
