// The paper's Sec. 1 motivation: "the theoretical peak FLOPs of GPUs are
// 5.16x, 6.77x, and 2.48x greater than the accompanying CPUs" on the three
// platforms — so the integrated GPU should carry the inference. This bench
// runs every classification model fully on the integrated GPU (tuned) and
// fully on the companion CPU, per platform.
#include <cstdio>

#include "core/compiler.h"
#include "graph/executor.h"
#include "graph/passes.h"
#include "models/models.h"
#include "sim/device_spec.h"

namespace {

using namespace igc;  // NOLINT

/// All compute op kinds — placing them all on the CPU yields a CPU-only run.
std::set<graph::OpKind> every_op_kind() {
  return {graph::OpKind::kConv2d,      graph::OpKind::kConv2dTranspose,
          graph::OpKind::kScaleShift,  graph::OpKind::kActivation,
          graph::OpKind::kAdd,         graph::OpKind::kConcat,
          graph::OpKind::kPool2d,      graph::OpKind::kGlobalAvgPool,
          graph::OpKind::kDense,       graph::OpKind::kFlatten,
          graph::OpKind::kSoftmax,     graph::OpKind::kUpsample2x,
          graph::OpKind::kMultiboxDetection,
          graph::OpKind::kSsdDetection, graph::OpKind::kYoloDecode,
          graph::OpKind::kDetectionConcat, graph::OpKind::kBoxNms};
}

}  // namespace

int main() {
  std::printf("\n=== Sec. 1 motivation: integrated GPU vs companion CPU ===\n");
  std::printf("%-14s %-16s | %10s %10s %8s | %s\n", "platform", "model",
              "GPU(ms)", "CPU(ms)", "GPU win", "peak-FLOPs ratio");
  for (const sim::Platform& plat : sim::all_platforms()) {
    Rng rng(0x5eed);
    std::vector<models::Model> zoo;
    zoo.push_back(models::build_resnet50(rng));
    zoo.push_back(models::build_mobilenet(rng));
    zoo.push_back(models::build_squeezenet(rng));
    for (auto& m : zoo) {
      const std::string name = m.name;
      CompileOptions gpu_opts;
      gpu_opts.tune_trials = 96;
      Rng r1(0x5eed);  // rebuild each time so weights match
      CompiledModel gpu_cm = compile(std::move(m), plat, gpu_opts);
      const double gpu_ms = gpu_cm.run(1, false).latency_ms;

      CompileOptions cpu_opts;
      cpu_opts.skip_tuning = true;  // no GPU schedules needed
      cpu_opts.cpu_fallback_ops = every_op_kind();
      models::Model rebuilt = [&] {
        Rng r(0x5eed);
        if (name == "ResNet50_v1") return models::build_resnet50(r);
        if (name == "MobileNet1.0") return models::build_mobilenet(r);
        return models::build_squeezenet(r);
      }();
      CompiledModel cpu_cm = compile(std::move(rebuilt), plat, cpu_opts);
      const double cpu_ms = cpu_cm.run(1, false).latency_ms;

      std::printf("%-14s %-16s | %10.2f %10.2f %7.2fx | %.2fx\n",
                  plat.name.c_str(), name.c_str(), gpu_ms, cpu_ms,
                  cpu_ms / gpu_ms, plat.gpu.peak_gflops / plat.cpu.peak_gflops);
    }
  }
  std::printf("\n(the GPU win tracks but does not equal the raw FLOPs ratio: "
              "the CPU\n runs mature vectorized kernels while the GPU win "
              "depends on schedules)\n");
  return 0;
}
