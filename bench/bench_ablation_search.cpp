// Ablation of the schedule-search machinery (Sec. 3.2.3):
//   * search strategy quality vs measurement budget (random vs simulated
//     annealing vs the AutoTVM-style model-guided loop), and
//   * the graph tuner's layout DP vs all-NCHW vs a greedy per-layer choice.
#include <cstdio>
#include <limits>
#include <vector>

#include "graph/passes.h"
#include "graphtune/graph_tuner.h"
#include "models/models.h"
#include "ops/nn/conv2d.h"
#include "sim/device_spec.h"
#include "tune/conv_tuner.h"
#include "tune/tuner.h"

namespace {

using namespace igc;  // NOLINT

void strategy_budget_curves() {
  std::printf("\n--- search strategy vs budget (resnet 3x3 64ch 56px, "
              "jetson-nano) ---\n");
  ops::Conv2dParams p;
  p.in_channels = p.out_channels = 64;
  p.in_h = p.in_w = 56;
  p.kernel_h = p.kernel_w = 3;
  p.pad_h = p.pad_w = 1;
  const auto& dev = sim::platform(sim::PlatformId::kJetsonNano).gpu;
  const auto space = ops::conv2d_config_space(p, dev);
  const tune::MeasureFn fn = [&](const tune::ScheduleConfig& cfg) {
    return ops::conv2d_latency_ms(p, cfg, dev);
  };
  // Exhaustive optimum for reference (space is small enough).
  double best = std::numeric_limits<double>::infinity();
  for (int64_t i = 0; i < space.size(); ++i) {
    best = std::min(best, fn(space.at(i)));
  }
  std::printf("exhaustive optimum over %lld configs: %.4f ms\n",
              static_cast<long long>(space.size()), best);
  std::printf("%8s | %12s %12s %12s   (gap vs optimum)\n", "trials", "random",
              "sim-anneal", "model-guided");
  for (int trials : {16, 32, 64, 128, 256}) {
    double r[3];
    int i = 0;
    for (auto s : {tune::SearchStrategy::kRandom,
                   tune::SearchStrategy::kSimulatedAnnealing,
                   tune::SearchStrategy::kModelGuided}) {
      tune::TuneOptions opts;
      opts.strategy = s;
      opts.n_trials = trials;
      r[i++] = tune::tune(space, fn, opts).best_ms;
    }
    std::printf("%8d | %10.4fms %10.4fms %10.4fms   (%+5.1f%% %+5.1f%% %+5.1f%%)\n",
                trials, r[0], r[1], r[2], (r[0] / best - 1) * 100,
                (r[1] / best - 1) * 100, (r[2] / best - 1) * 100);
  }
}

void layout_dp_ablation() {
  std::printf("\n--- graph tuner: layout DP vs alternatives (resnet-50, "
              "intel-hd505) ---\n");
  Rng rng(1);
  models::Model m = models::build_resnet50(rng);
  graph::optimize(m.graph);
  const auto& dev = sim::platform(sim::PlatformId::kDeepLens).gpu;
  tune::TuneDb db;
  tune::TuneOptions opts;
  opts.n_trials = 96;
  const auto dp = graphtune::tune_graph_layouts(m.graph, dev, db, opts);

  // Greedy: each conv independently picks its fastest layout, ignoring
  // transform costs; then transforms are charged on every mismatched edge.
  double greedy_kernels = 0.0;
  std::map<int, int> greedy_layout;
  for (int id : m.graph.conv_node_ids()) {
    const auto& p = m.graph.node(id).conv;
    double best = std::numeric_limits<double>::infinity();
    int best_b = 1;
    for (int b : graphtune::layout_candidates(p, dev)) {
      const double ms = tune::tune_conv2d(p, dev, b, db, opts).best_ms;
      if (ms < best) {
        best = ms;
        best_b = b;
      }
    }
    greedy_kernels += best;
    greedy_layout[id] = best_b;
  }
  // Charge greedy's transforms along conv->conv edges.
  double greedy_transforms = 0.0;
  const auto convs = m.graph.conv_node_ids();
  for (size_t i = 1; i < convs.size(); ++i) {
    const int prev = convs[i - 1];
    const int cur = convs[i];
    greedy_transforms += graphtune::transform_cost_ms(
        dev, m.graph.node(prev).out_shape.numel(), greedy_layout[prev],
        greedy_layout[cur]);
  }

  std::printf("all-NCHW (no blocked layouts):      %8.2f ms\n", dp.nchw_ms);
  std::printf("greedy per-layer (ignore transforms): %8.2f ms kernels + %.2f "
              "ms transforms = %8.2f ms\n",
              greedy_kernels, greedy_transforms,
              greedy_kernels + greedy_transforms);
  std::printf("graph tuner DP (Sec. 3.2.3):         %8.2f ms\n", dp.tuned_ms);
}

}  // namespace

int main() {
  std::printf("=== Search & graph-tuner ablations ===\n");
  strategy_budget_curves();
  layout_dp_ablation();
  return 0;
}
