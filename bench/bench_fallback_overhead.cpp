// Sec. 3.1.2 experiment: CPU-fallback overhead. The paper runs SSD
// (ResNet-50 backbone) on AWS DeepLens entirely on the integrated GPU
// (1010.23 ms) and with the NMS operators falling back to the CPU
// (1015.14 ms) — an overhead below 0.5%, because the integrated GPU shares
// DRAM with the CPU so the inserted device copies are nearly free.
#include <cstdio>

#include "graph/executor.h"
#include "graph/passes.h"
#include "graphtune/graph_tuner.h"
#include "models/models.h"
#include "sim/device_spec.h"
#include "tune/tunedb.h"

int main() {
  using namespace igc;  // NOLINT
  const sim::Platform& platform = sim::platform(sim::PlatformId::kDeepLens);

  tune::TuneDb db;
  tune::TuneOptions topts;
  topts.n_trials = 96;

  auto run = [&](bool fallback) {
    Rng rng(0x5eed);
    models::Model m =
        models::build_ssd(rng, models::SsdBackbone::kResNet50, 512);
    std::set<graph::OpKind> cpu_ops;
    if (fallback) {
      cpu_ops = {graph::OpKind::kSsdDetection, graph::OpKind::kBoxNms};
    }
    const graph::PassStats stats = graph::optimize(m.graph, cpu_ops);
    const auto layouts =
        graphtune::tune_graph_layouts(m.graph, platform.gpu, db, topts);
    graph::ExecOptions opts;
    opts.compute_numerics = false;
    opts.db = &db;
    opts.conv_layout_block = layouts.layout_of_conv;
    Rng in_rng(0xbe5c);
    const auto r = graph::execute(m.graph, platform, opts, in_rng);
    std::printf(
        "  %-26s total %8.2f ms (conv %8.2f, vision %8.2f, copies %6.3f; "
        "%d copy nodes)\n",
        fallback ? "NMS falls back to CPU:" : "entire model on GPU:",
        r.latency_ms, r.conv_ms, r.vision_ms, r.copy_ms,
        stats.copies_inserted);
    return r.latency_ms;
  };

  std::printf(
      "\n=== Sec. 3.1.2: CPU-fallback overhead, SSD_ResNet50 on AWS DeepLens "
      "===\n");
  const double gpu_only = run(false);
  const double with_fallback = run(true);
  const double overhead = (with_fallback - gpu_only) / gpu_only * 100.0;
  std::printf("  measured overhead: %.2f%%   (paper: 1010.23 ms vs 1015.14 ms "
              "= 0.49%%)\n",
              overhead);
  return 0;
}
