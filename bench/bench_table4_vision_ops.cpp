// Table 4: end-to-end effect of the vision-specific operator optimizations
// (Sec. 3.1) on the three object-detection models, per device. "Before"
// runs the naive GPU mappings (per-segment sort threads, serial
// suppression); "After" runs the segmented-sort / prefix-sum / aligned-NMS
// pipeline.
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "graph/executor.h"
#include "graph/passes.h"
#include "graphtune/graph_tuner.h"
#include "models/models.h"
#include "sim/device_spec.h"
#include "tune/tunedb.h"

namespace {

struct PaperRow {
  const char* device;
  const char* model;
  double before_ms;
  double after_ms;
};

const std::vector<PaperRow> kPaper = {
    {"AWS DeepLens", "SSD_MobileNet1.0", 966.20, 398.48},
    {"AWS DeepLens", "SSD_ResNet50", 1491.30, 1006.01},
    {"AWS DeepLens", "Yolov3", 2610.13, 1004.13},
    {"Acer aiSage", "SSD_MobileNet1.0", 1098.11, 243.16},
    {"Acer aiSage", "SSD_ResNet50", 1631.30, 777.26},
    {"Acer aiSage", "Yolov3", 6429.69, 1097.47},
    {"Nvidia Jetson Nano", "SSD_MobileNet1.0", 264, 135.5},
    {"Nvidia Jetson Nano", "SSD_ResNet50", 490.4, 371.32},
    {"Nvidia Jetson Nano", "Yolov3", 1350, 553.79},
};

}  // namespace

int main() {
  using namespace igc;  // NOLINT
  std::printf(
      "\n=== Table 4: vision-specific operator optimizations (before/after) "
      "===\n");
  std::printf("%-20s %-18s | %10s %10s %8s || %10s %10s %8s\n", "Device",
              "Model", "Before", "After", "Speedup", "p:Before", "p:After",
              "p:Sp");
  std::printf("%s\n", std::string(110, '-').c_str());

  size_t row_idx = 0;
  for (auto id : {sim::PlatformId::kDeepLens, sim::PlatformId::kAiSage,
                  sim::PlatformId::kJetsonNano}) {
    const sim::Platform& platform = sim::platform(id);
    const bool small = id == sim::PlatformId::kAiSage;
    Rng rng(0x5eed);
    std::vector<models::Model> detection;
    detection.push_back(models::build_ssd(rng, models::SsdBackbone::kMobileNet,
                                          small ? 300 : 512));
    detection.push_back(models::build_ssd(rng, models::SsdBackbone::kResNet50,
                                          small ? 300 : 512));
    detection.push_back(models::build_yolov3(rng, small ? 320 : 416));

    tune::TuneDb db;
    for (auto& m : detection) {
      graph::optimize(m.graph);
      tune::TuneOptions topts;
      topts.n_trials = 96;
      const auto layouts =
          graphtune::tune_graph_layouts(m.graph, platform.gpu, db, topts);

      graph::ExecOptions opts;
      opts.compute_numerics = false;
      opts.db = &db;
      opts.conv_layout_block = layouts.layout_of_conv;

      opts.optimized_vision_ops = false;
      Rng r1(0xbe5c);
      const double before =
          graph::execute(m.graph, platform, opts, r1).latency_ms;
      opts.optimized_vision_ops = true;
      Rng r2(0xbe5c);
      const double after =
          graph::execute(m.graph, platform, opts, r2).latency_ms;

      const PaperRow& p = kPaper[row_idx++];
      std::printf("%-20s %-18s | %10.2f %10.2f %8.2f || %10.2f %10.2f %8.2f\n",
                  platform.name.c_str(), m.name.c_str(), before, after,
                  before / after, p.before_ms, p.after_ms,
                  p.before_ms / p.after_ms);

      bench::JsonObject j =
          bench::bench_row("table4_vision_ops", platform.name, m.name);
      j.field("before_ms", before)
          .field("after_ms", after)
          .field("speedup", before / after)
          .field("paper_before_ms", p.before_ms)
          .field("paper_after_ms", p.after_ms);
      j.emit();
    }
  }
  return 0;
}
