// Table 2: our solution vs ARM Compute Library on Acer aiSage (Mali T-860).
// Detection inputs shrink to 300x300 (320 for YOLOv3) due to the Mali
// memory limitation the paper notes.
#include "table_common.h"

int main() {
  using igc::bench::PaperRow;
  const std::vector<PaperRow> paper = {
      {"ResNet50_v1", 345.60, 358.17},
      {"MobileNet1.0", 78.83, 95.00},
      {"SqueezeNet1.0", 66.61, 77.10},
      {"SSD_MobileNet1.0", 243.16, 216.87},
      {"SSD_ResNet50", 777.26, 737.90},
      {"Yolov3", 1097.47, 1042.90},
  };
  igc::bench::run_platform_table(
      igc::sim::PlatformId::kAiSage, "table2_aisage",
      "Table 2: Acer aiSage (ARM Mali T-860), ours vs ACL", "ACL", paper);
  return 0;
}
