// Extension bench: steady-state serving throughput.
//
// The paper's tables report single-shot latency; a deployed edge endpoint
// instead runs the same compiled model thousands of times. This bench
// measures repeated CompiledModel::run() calls under the four executor
// configurations {sequential, wavefront} x {arena off, arena on}:
//
//   * host ms/run     — real wall-clock cost of one inference on this
//     machine (shapes-only numerics), where the plan-backed arena removes
//     every per-run intermediate allocation;
//   * simulated ms    — the platform time model: serial sum for the
//     sequential executor, per-lane critical path for the wavefront
//     executor, which overlaps independent branches and CPU fallback ops.
//
// Models are the branchy ones, where both effects are largest: Inception v1
// (nine 4-branch modules) and SSD over MobileNet (six detection scales plus
// a CPU-fallback detection tail).
//
// A numerics-on section serves InceptionV1 through both numerics
// engines — the reference interpreter and the host-JIT backend (compiled
// kernels, same outputs and simulated times bit-for-bit) — and reports the
// real host-throughput gap between them.
//
// A final open-loop section drives the serving engine (src/serve) with
// Poisson arrivals over two InceptionV1 tenants, sweeping worker count x
// offered rate and reporting goodput, admission accounting, and e2e +
// queue-wait percentiles (bench schema v6 "serving_engine" rows). Every
// engine row also carries the schema-v7 paged-arena memory block (the
// shared PagePool's physical high-water and mapped footprint), and full
// mode adds a mixed-resolution cell — the same model served at 224 and at a
// dynamically-bound 300 over one pool — whose arena_peak_bytes vs
// slab_bytes fields quantify the paged-sharing win over per-worker slabs.
// In --quick mode the sweep runs exactly one cell (w2_r400) so the CI gate
// can match it against the committed baseline row.
//
// Every row is also emitted as a JSON line into BENCH_serving.json (override
// the path with argv[1]) for dashboards. Serving rows carry per-run host
// latency percentiles (schema v5). Flags:
//
//   --quick               InceptionV1 shapes-only rows with a small run
//                         count — the CI perf-gate configuration (rows keep
//                         the same identity keys as a full run, so
//                         bench_diff matches them against the committed
//                         baseline).
//   --serve-metrics PORT  expose /metrics, /healthz, /snapshot.json, and
//                         /series.json on 127.0.0.1:PORT while the bench
//                         runs (port 0 picks an ephemeral one).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "core/compiler.h"
#include "models/models.h"
#include "obs/http.h"
#include "obs/latency_histogram.h"
#include "obs/sampler.h"
#include "serve/arrivals.h"
#include "serve/engine.h"
#include "sim/device_spec.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Config {
  const char* label;
  igc::graph::ExecMode mode;
  bool arena;
};

constexpr Config kConfigs[] = {
    {"sequential", igc::graph::ExecMode::kSequential, false},
    {"sequential+arena", igc::graph::ExecMode::kSequential, true},
    {"wavefront", igc::graph::ExecMode::kWavefront, false},
    {"wavefront+arena", igc::graph::ExecMode::kWavefront, true},
};

struct Percentiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

Percentiles percentiles_of(const igc::obs::LatencyHistogram& h) {
  return {h.percentile(0.50), h.percentile(0.95), h.percentile(0.99)};
}

struct Row {
  std::string config;
  double host_ms = 0.0;
  Percentiles latency;  // per-run host latency percentiles, ms
  igc::RunResult rep;  // representative run result (simulated metrics)
  bool output_matches_baseline = true;
};

/// Appends the schema-v5 host-latency percentile block to a serving row.
igc::bench::JsonObject& percentile_fields(igc::bench::JsonObject& j,
                                          const Percentiles& p) {
  return j.field("host_p50_ms", p.p50)
      .field("host_p95_ms", p.p95)
      .field("host_p99_ms", p.p99);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [out.json] [--quick] [--serve-metrics PORT]\n",
               argv0);
  return 2;
}

// ----- open-loop serving engine sweep ---------------------------------------
//
// The closed-loop rows above can never overload the executor: each run
// starts only after the previous finished. This section drives the real
// serving layer (src/serve) with open-loop Poisson arrivals — requests
// arrive on a schedule independent of service speed — and sweeps worker
// count x offered rate over two InceptionV1 tenants, reporting goodput
// (completed requests/s), admission-control accounting, and end-to-end +
// queue-wait percentiles per cell (bench schema v6 rows).

struct EngineCell {
  int workers;
  double offered_per_s;  // total across tenants
};

/// One engine cell: build the engine, replay the deterministic arrival
/// schedules, drain, and emit the row. Returns the measured goodput.
/// `tenant_hw`, when non-empty, gives each tenant a dynamic input resolution
/// (0 = the compiled seed) — the mixed-resolution sharing cell — and the row
/// gains the "slab_bytes" comparison against per-worker private slabs.
/// `traced` enables request tracing for the replay; with emit_row = false
/// the cell only measures (the trace-overhead companion run). A
/// traced_goodput > 0 adds the schema-v8 "trace_overhead_pct" field.
double run_engine_cell(std::FILE* jf, const igc::sim::Platform& plat,
                       const std::vector<const igc::CompiledModel*>& tenants,
                       const EngineCell& cell, double duration_ms,
                       const std::vector<int64_t>& tenant_hw = {},
                       bool traced = false, bool emit_row = true,
                       double traced_goodput = -1.0) {
  using namespace igc;  // NOLINT
  serve::EngineOptions eopts;
  eopts.num_workers = cell.workers;
  eopts.queue.max_depth = 256;
  eopts.queue.max_batch_size = 8;
  eopts.queue.max_wait_ms = 2.0;
  // The traced replay exercises the full path a production endpoint would
  // run: timelines on every request, flight-recorder retention, exemplars.
  eopts.trace.enabled = traced;
  eopts.trace.head_sample_rate = traced ? 0.05 : 0.0;
  // Device-bound service: each request holds its worker for the simulated
  // InceptionV1 latency scaled by 1/20 (~3.9 ms), i.e. the worker blocks on
  // its device replica. Blocked workers overlap, so goodput scales with the
  // pool even on a host with few cores — the quantity under test is the
  // serving layer (queue, batching, admission), not host matmul speed.
  eopts.sim_pacing = 0.05;
  serve::ServingEngine engine(eopts);
  for (size_t t = 0; t < tenants.size(); ++t) {
    serve::TenantSpec spec;
    spec.name = "tenant" + std::to_string(t);
    spec.model = tenants[t];
    spec.run.compute_numerics = false;
    spec.run.use_arena = true;
    if (t < tenant_hw.size()) spec.run.input_hw = tenant_hw[t];
    engine.add_tenant(std::move(spec));
  }
  engine.start();

  // Deterministic per-tenant arrival schedules, merged into one timeline.
  // The seed depends only on (tenant, cell), so a --quick rerun of the same
  // cell replays the identical offered load the committed baseline saw.
  const double rate_per_tenant =
      cell.offered_per_s / static_cast<double>(tenants.size());
  std::vector<std::pair<double, int>> arrivals;  // (t_ms, tenant)
  for (size_t t = 0; t < tenants.size(); ++t) {
    const uint64_t seed = 0xa441u + 1000003u * static_cast<uint64_t>(t) +
                          31u * static_cast<uint64_t>(cell.offered_per_s) +
                          static_cast<uint64_t>(cell.workers);
    for (double at :
         serve::poisson_arrival_times_ms(rate_per_tenant, duration_ms, seed)) {
      arrivals.emplace_back(at, static_cast<int>(t));
    }
  }
  std::sort(arrivals.begin(), arrivals.end());

  std::vector<std::future<igc::serve::RequestOutcome>> futures;
  futures.reserve(arrivals.size());
  const auto t0 = Clock::now();
  for (size_t i = 0; i < arrivals.size(); ++i) {
    std::this_thread::sleep_until(
        t0 + std::chrono::duration<double, std::milli>(arrivals[i].first));
    serve::SubmitResult r =
        engine.submit(arrivals[i].second, static_cast<uint64_t>(i));
    if (r.admitted()) futures.push_back(std::move(r.outcome));
  }
  engine.stop();  // drains the queue; every admitted future resolves
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  obs::LatencyHistogram e2e, queue_wait, service;
  double sim_latency_ms = 0.0;
  for (auto& f : futures) {
    const serve::RequestOutcome o = f.get();
    e2e.observe(o.e2e_ms());
    queue_wait.observe(o.queue_wait_ms());
    service.observe(o.service_ms());
    // Identical for every request of a tenant; the max keeps the field
    // deterministic when mixed-resolution tenants differ.
    sim_latency_ms = std::max(sim_latency_ms, o.sim_latency_ms);
  }
  const serve::EngineStats s = engine.stats();
  const double goodput =
      elapsed_ms > 0.0 ? s.completed * 1000.0 / elapsed_ms : 0.0;
  if (!emit_row) return goodput;
  const Percentiles pe = percentiles_of(e2e);
  const Percentiles pq = percentiles_of(queue_wait);
  const double batch_mean =
      s.batches > 0
          ? static_cast<double>(s.completed) / static_cast<double>(s.batches)
          : 0.0;

  // Paged-arena memory block (schema v7): every worker context drew its
  // pages from the engine-wide pool, so the pool's high-water IS the cell's
  // peak physical intermediate memory, and extent_bytes its mapped footprint.
  const std::shared_ptr<PagePool>& pool = engine.page_pool();
  const int64_t arena_peak_bytes = pool != nullptr ? pool->peak_bytes_in_use() : 0;
  const int64_t arena_page_bytes = pool != nullptr ? pool->extent_bytes() : 0;
  // What (workers x tenants) private full-size slabs would have pinned — the
  // pre-paging design this engine replaced.
  int64_t slab_bytes = 0;
  for (size_t t = 0; t < tenants.size(); ++t) {
    const int64_t hw = t < tenant_hw.size() ? tenant_hw[t] : 0;
    slab_bytes += cell.workers *
                  tenants[t]->make_serving_context(0, hw, nullptr)->arena_bytes();
  }

  char config[40];
  std::snprintf(config, sizeof(config), "w%d_r%d%s", cell.workers,
                static_cast<int>(cell.offered_per_s),
                tenant_hw.empty() ? "" : "_mixed");
  std::printf("%-10s | %8.0f | %8.1f | %6lld %6lld %6lld | %6.2f | "
              "%.2f/%.2f/%.2f | %.2f/%.2f/%.2f\n",
              config, cell.offered_per_s, goodput,
              static_cast<long long>(s.admitted),
              static_cast<long long>(s.shed),
              static_cast<long long>(s.rejected_full), batch_mean, pe.p50,
              pe.p95, pe.p99, pq.p50, pq.p95, pq.p99);

  bench::JsonObject j =
      bench::bench_row("serving_engine", plat.name, "InceptionV1", "engine");
  j.field("config", config)
      .field("tenants", static_cast<int>(tenants.size()))
      .field("workers", cell.workers)
      .field("offered_per_s", cell.offered_per_s)
      .field("duration_ms", duration_ms)
      .field("goodput_per_s", goodput)
      .field("submitted", s.submitted)
      .field("admitted", s.admitted)
      .field("shed", s.shed)
      .field("rejected", s.rejected_full + s.rejected_shutdown)
      .field("completed", s.completed)
      .field("batches", s.batches)
      .field("batch_size_mean", batch_mean)
      .field("queue_depth_peak", s.queue_depth_peak)
      .field("e2e_p50_ms", pe.p50)
      .field("e2e_p95_ms", pe.p95)
      .field("e2e_p99_ms", pe.p99)
      .field("queue_wait_p50_ms", pq.p50)
      .field("queue_wait_p95_ms", pq.p95)
      .field("queue_wait_p99_ms", pq.p99)
      .field("service_p50_ms", service.percentile(0.50))
      .field("sim_latency_ms", sim_latency_ms)
      .field("arena_peak_bytes", arena_peak_bytes)
      .field("arena_page_bytes", arena_page_bytes)
      .field("backend", "interp")
      .field("numerics", false);
  if (traced_goodput > 0.0 && goodput > 0.0) {
    // v8: goodput cost of request tracing, from the traced companion replay
    // of the identical arrival schedule.
    const double overhead_pct = (goodput - traced_goodput) / goodput * 100.0;
    j.field("trace_overhead_pct", overhead_pct);
    std::printf("%-10s   trace overhead: %.2f%% (goodput %.1f/s untraced vs "
                "%.1f/s traced)\n",
                config, overhead_pct, goodput, traced_goodput);
  }
  if (!tenant_hw.empty()) {
    j.field("slab_bytes", slab_bytes);
    std::printf("%-10s   paged pool peak %.2f MiB vs %.2f MiB of per-worker "
                "slabs (%.1f%% saved)\n",
                config,
                static_cast<double>(arena_peak_bytes) / (1024.0 * 1024.0),
                static_cast<double>(slab_bytes) / (1024.0 * 1024.0),
                100.0 * (1.0 - static_cast<double>(arena_peak_bytes) /
                                   static_cast<double>(slab_bytes)));
  }
  j.emit(jf);
  j.emit(stdout);
  return goodput;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace igc;  // NOLINT
  std::string json_path = "BENCH_serving.json";
  bool quick = false;
  bool serve = false;
  int serve_port = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--serve-metrics") {
      if (i + 1 >= argc) return usage(argv[0]);
      char* end = nullptr;
      const long port = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || port < 0 || port > 65535) {
        std::fprintf(stderr, "bad --serve-metrics port: %s\n", argv[i]);
        return usage(argv[0]);
      }
      serve = true;
      serve_port = static_cast<int>(port);
    } else if (arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      json_path = arg;
    }
  }
  std::FILE* jf = std::fopen(json_path.c_str(), "w");
  if (jf == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return 1;
  }

  const sim::Platform& plat = sim::platform(sim::PlatformId::kDeepLens);

  // Optional live telemetry: sample the global registry 4x/s and serve it
  // over loopback HTTP for the duration of the bench.
  obs::TelemetrySampler::Options sopts;
  sopts.interval_ms = 250;
  obs::TelemetrySampler sampler(sopts);
  obs::MetricsHttpServer::Options hopts;
  hopts.port = static_cast<uint16_t>(serve_port);
  hopts.sampler = &sampler;
  hopts.const_labels = {{"job", "bench_serving_throughput"},
                        {"platform", plat.name}};
  obs::MetricsHttpServer server(hopts);
  if (serve) {
    sampler.start();
    std::string err;
    if (!server.start(&err)) {
      std::fprintf(stderr, "--serve-metrics failed: %s\n", err.c_str());
      return 2;
    }
    std::printf("serving telemetry on http://127.0.0.1:%d/metrics\n",
                server.port());
  }

  struct Workload {
    std::string name;
    CompiledModel cm;
    int runs;
  };
  std::vector<Workload> workloads;
  {
    Rng rng(0x5eed);
    CompileOptions copts;
    copts.tune_trials = 64;
    // InceptionV1 shapes-only runs are sub-millisecond, so 200 runs cost
    // little and keep the host_ms_per_run mean stable against scheduling
    // noise. The count must be the SAME in quick and full mode: the CI gate
    // compares quick-mode candidates against the committed full-bench
    // baseline, and a differing run count shifts how much one-time warm-up
    // cost the mean amortizes — enough to mask (or fake) a 10% regression.
    workloads.push_back(
        {"InceptionV1", compile(models::build_inception_v1(rng), plat, copts),
         200});
    if (!quick) {
      // The detection tails fall back to the companion CPU (Sec. 3.1.2):
      // under wavefront dispatch they overlap with GPU convolution work.
      // YOLO's three decode heads hang off different backbone depths, so the
      // shallow heads decode (and copy back) while the deeper backbone is
      // still convolving — the clearest critical-path win.
      copts.cpu_fallback_ops = {graph::OpKind::kSsdDetection,
                                graph::OpKind::kBoxNms};
      workloads.push_back(
          {"SSD_MobileNet1.0",
           compile(models::build_ssd(rng, models::SsdBackbone::kMobileNet),
                   plat, copts),
           8});
      copts.cpu_fallback_ops = {graph::OpKind::kYoloDecode,
                                graph::OpKind::kBoxNms};
      workloads.push_back(
          {"Yolov3", compile(models::build_yolov3(rng), plat, copts), 8});
    }
  }

  std::printf("\n=== Steady-state serving: repeated run() on %s ===\n",
              plat.name.c_str());
  for (Workload& w : workloads) {
    std::printf("\n%-18s %-18s | %12s | %10s | %12s | %10s\n", w.name.c_str(),
                "(config)", "host ms/run", "runs/s", "sim ms", "peak MiB");

    RunOptions ropts;
    ropts.compute_numerics = false;
    Tensor baseline_out;
    std::vector<Row> rows;
    for (const Config& cfg : kConfigs) {
      ropts.mode = cfg.mode;
      ropts.use_arena = cfg.arena;
      // Warm up: first arena run builds the plan and faults in the slabs.
      RunResult warm = w.cm.run(ropts);
      Row row;
      row.config = cfg.label;
      if (!baseline_out.defined()) {
        baseline_out = warm.output;
      } else {
        row.output_matches_baseline =
            warm.output.shape() == baseline_out.shape() &&
            warm.output.max_abs_diff(baseline_out) == 0.0f;
      }
      obs::LatencyHistogram latency;
      const auto t0 = Clock::now();
      for (int i = 0; i < w.runs; ++i) {
        const auto r0 = Clock::now();
        warm = w.cm.run(ropts);
        latency.observe(
            std::chrono::duration<double, std::milli>(Clock::now() - r0)
                .count());
      }
      const auto t1 = Clock::now();
      row.host_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count() / w.runs;
      row.latency = percentiles_of(latency);
      row.rep = std::move(warm);
      rows.push_back(std::move(row));

      const Row& r = rows.back();
      std::printf(
          "%-18s %-18s | %12.3f | %10.1f | %12.3f | %10.2f | p50/p95/p99 "
          "%.3f/%.3f/%.3f ms\n",
          "", r.config.c_str(), r.host_ms, 1000.0 / r.host_ms,
          r.rep.latency_ms,
          static_cast<double>(r.rep.peak_intermediate_bytes) /
              (1024.0 * 1024.0),
          r.latency.p50, r.latency.p95, r.latency.p99);

      bench::JsonObject j = bench::bench_row(
          "serving", plat.name, w.name,
          cfg.mode == graph::ExecMode::kWavefront ? "wavefront" : "sequential");
      j.field("config", r.config)
          .field("arena", cfg.arena)
          .field("runs", w.runs)
          .field("host_ms_per_run", r.host_ms)
          .field("host_runs_per_s", 1000.0 / r.host_ms);
      percentile_fields(j, r.latency)
          .field("sim_latency_ms", r.rep.latency_ms)
          .field("sim_serial_ms", r.rep.serial_ms)
          .field("sim_critical_path_ms", r.rep.critical_path_ms)
          .field("peak_intermediate_bytes", r.rep.peak_intermediate_bytes)
          .field("arena_bytes", r.rep.arena_bytes)
          // v7 memory block: the arena's planned-bytes high-water and the
          // physical page bytes it kept mapped after the run.
          .field("arena_peak_bytes",
                 cfg.arena ? r.rep.peak_intermediate_bytes : int64_t{0})
          .field("arena_page_bytes", r.rep.arena_page_bytes)
          // Shapes-only rows never invoke the JIT; the engine label still
          // says which path *would* compute numerics (schema v4).
          .field("backend", "interp")
          .field("numerics", false)
          .field("output_matches_baseline", r.output_matches_baseline);
      j.emit(jf);
      j.emit(stdout);
    }

    const double host_speedup = rows[0].host_ms / rows[3].host_ms;
    const double sim_speedup =
        rows[0].rep.latency_ms / rows[3].rep.latency_ms;
    bool outputs_identical = true;
    for (const Row& r : rows) outputs_identical &= r.output_matches_baseline;
    std::printf("%-18s host speedup (wavefront+arena vs sequential): %.2fx; "
                "sim speedup: %.2fx; outputs identical: %s\n",
                "", host_speedup, sim_speedup, outputs_identical ? "yes" : "NO");

    bench::JsonObject j =
        bench::bench_row("serving_summary", plat.name, w.name, "all");
    j.field("host_speedup", host_speedup)
        .field("sim_speedup", sim_speedup)
        .field("outputs_identical", outputs_identical);
    j.emit(jf);
    j.emit(stdout);
  }

  // --- numerics-on serving: JIT backend vs the reference interpreter ------
  //
  // The rows above time the scheduler with numerics off. Here the endpoint
  // actually computes InceptionV1's tensors every run, once through the
  // reference host implementations and once through the compiled-kernel JIT
  // (same module serving from the on-disk artifact cache). Outputs and
  // simulated times must be bit-identical; only host ms/run moves.
  if (!quick) {
    Rng rng(0x5eed);
    CompileOptions copts;
    copts.tune_trials = 64;
    copts.backend = Backend::kJit;
    // Reuse the tuning work from the shapes-only section: same model, same
    // platform, same trial budget, so the schedules (and simulated times)
    // match the InceptionV1 rows above.
    const tune::TuneDb& warm = workloads[0].cm.tune_db();
    copts.warm_db = &warm;
    CompiledModel cm =
        compile(models::build_inception_v1(rng), plat, copts);

    std::printf("\n=== Numerics-on serving: InceptionV1 on %s "
                "(sequential+arena) ===\n",
                plat.name.c_str());
    if (!cm.jit_enabled()) {
      std::printf("JIT unavailable (%s); backend=jit rows below ran the "
                  "reference path\n",
                  cm.jit_error().c_str());
    } else {
      std::printf("jit module: %d kernels covering %d graph nodes\n",
                  cm.jit_kernels(), cm.jit_nodes_covered());
    }
    std::printf("%-10s | %12s | %10s | %12s\n", "(backend)", "host ms/run",
                "runs/s", "sim ms");

    struct BackendRow {
      const char* label;
      RunBackend backend;
      int runs;
    };
    // The interpreter takes seconds per numerics-on run; keep its sample
    // small and let the JIT amortize over more iterations.
    const BackendRow kBackends[] = {
        {"interp", RunBackend::kInterp, 3},
        {"jit", RunBackend::kJit, 15},
    };
    Tensor interp_out;
    double interp_host_ms = 0.0, interp_sim_ms = 0.0;
    double jit_host_ms = 0.0;
    bool outputs_identical = true, sim_identical = true;
    for (const BackendRow& b : kBackends) {
      RunOptions ropts;
      ropts.compute_numerics = true;
      ropts.mode = graph::ExecMode::kSequential;
      ropts.use_arena = true;
      ropts.backend = b.backend;
      RunResult warm = cm.run(ropts);  // warm: plan + arena + (jit) scratch
      obs::LatencyHistogram latency;
      const auto t0 = Clock::now();
      for (int i = 0; i < b.runs; ++i) {
        const auto r0 = Clock::now();
        warm = cm.run(ropts);
        latency.observe(
            std::chrono::duration<double, std::milli>(Clock::now() - r0)
                .count());
      }
      const auto t1 = Clock::now();
      const double host_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count() / b.runs;

      bool matches = true;
      if (!interp_out.defined()) {
        interp_out = warm.output;
        interp_host_ms = host_ms;
        interp_sim_ms = warm.latency_ms;
      } else {
        matches = warm.output.shape() == interp_out.shape() &&
                  warm.output.max_abs_diff(interp_out) == 0.0f;
        outputs_identical &= matches;
        sim_identical &= warm.latency_ms == interp_sim_ms;
        jit_host_ms = host_ms;
      }

      std::printf("%-10s | %12.2f | %10.2f | %12.3f\n", b.label, host_ms,
                  1000.0 / host_ms, warm.latency_ms);

      bench::JsonObject j =
          bench::bench_row("serving", plat.name, "InceptionV1", "sequential");
      j.field("config", "sequential+arena")
          .field("arena", true)
          .field("runs", b.runs)
          .field("host_ms_per_run", host_ms)
          .field("host_runs_per_s", 1000.0 / host_ms);
      percentile_fields(j, percentiles_of(latency))
          .field("sim_latency_ms", warm.latency_ms)
          .field("sim_serial_ms", warm.serial_ms)
          .field("sim_critical_path_ms", warm.critical_path_ms)
          .field("peak_intermediate_bytes", warm.peak_intermediate_bytes)
          .field("arena_bytes", warm.arena_bytes)
          .field("arena_peak_bytes", warm.peak_intermediate_bytes)
          .field("arena_page_bytes", warm.arena_page_bytes)
          .field("backend", b.label)
          .field("numerics", true)
          .field("output_matches_baseline", matches);
      j.emit(jf);
      j.emit(stdout);
    }

    const double host_speedup = interp_host_ms / jit_host_ms;
    std::printf("host speedup (jit vs interp): %.2fx; outputs identical: %s; "
                "sim latency identical: %s\n",
                host_speedup, outputs_identical ? "yes" : "NO",
                sim_identical ? "yes" : "NO");

    bench::JsonObject j = bench::bench_row("serving_jit_summary", plat.name,
                                           "InceptionV1", "sequential");
    j.field("host_speedup", host_speedup)
        .field("outputs_identical", outputs_identical)
        .field("sim_latency_identical", sim_identical)
        .field("jit_kernels", cm.jit_kernels())
        .field("jit_nodes_covered", cm.jit_nodes_covered());
    j.emit(jf);
    j.emit(stdout);
  }

  // --- open-loop serving engine: worker pool x arrival-rate sweep ----------
  {
    // Two InceptionV1 tenants multiplexed over one worker pool. The second
    // tenant compiles from the first one's warm TuneDb, so both share the
    // same schedules (and the same deterministic simulated latency).
    Rng rng(0x5eed);
    CompileOptions copts;
    copts.tune_trials = 64;
    const tune::TuneDb& warm = workloads[0].cm.tune_db();
    copts.warm_db = &warm;
    CompiledModel tenant_b =
        compile(models::build_inception_v1(rng), plat, copts);
    const std::vector<const CompiledModel*> tenants = {&workloads[0].cm,
                                                       &tenant_b};

    // Rates bracket the paced per-worker capacity (~1000 / 3.9 ms ~= 250
    // req/s): 150/s keeps even one worker comfortable, 400/s saturates one
    // worker but not two, 1600/s saturates every pool size so the top-rate
    // column isolates worker scaling.
    const double duration_ms = 1500.0;
    std::vector<EngineCell> cells;
    if (quick) {
      // One cell, identical identity/config to the full sweep's middle
      // cell, so the CI gate matches it against the committed baseline.
      cells = {{2, 400.0}};
    } else {
      for (const int workers : {1, 2, 4}) {
        for (const double rate : {150.0, 400.0, 1600.0}) {
          cells.push_back({workers, rate});
        }
      }
    }

    std::printf("\n=== Open-loop serving engine: %zu InceptionV1 tenants, "
                "Poisson arrivals, %d ms/cell ===\n",
                tenants.size(), static_cast<int>(duration_ms));
    std::printf("%-10s | %8s | %8s | %6s %6s %6s | %6s | %s | %s\n", "(cell)",
                "offered/s", "goodput/s", "admit", "shed", "rej", "batch",
                "e2e p50/p95/p99 ms", "qwait p50/p95/p99 ms");
    double goodput_w1 = 0.0, goodput_wmax = 0.0;
    for (const EngineCell& cell : cells) {
      // The gate cell (w2_r400 — the one quick mode replays) also runs a
      // traced companion replay so its row carries trace_overhead_pct and
      // the CI advisory watch can see tracing-cost regressions.
      double traced_goodput = -1.0;
      if (cell.workers == 2 && cell.offered_per_s == 400.0) {
        traced_goodput =
            run_engine_cell(jf, plat, tenants, cell, duration_ms, {},
                            /*traced=*/true, /*emit_row=*/false);
      }
      const double g =
          run_engine_cell(jf, plat, tenants, cell, duration_ms, {},
                          /*traced=*/false, /*emit_row=*/true, traced_goodput);
      if (cell.offered_per_s == 1600.0) {
        if (cell.workers == 1) goodput_w1 = g;
        if (cell.workers == 4) goodput_wmax = g;
      }
    }
    // Mixed-resolution sharing cell (full mode): the same InceptionV1 served
    // as two tenants — one at the compiled 224x224 seed, one dynamically
    // bound to 300x300 — over ONE shared page pool. The row's
    // arena_peak_bytes vs slab_bytes comparison shows paged sharing beating
    // (workers x tenants) private slabs on peak memory.
    if (!quick) {
      std::printf("\n--- mixed-resolution tenants (224 + 300) on one shared "
                  "page pool ---\n");
      const std::vector<const CompiledModel*> mixed = {&workloads[0].cm,
                                                       &workloads[0].cm};
      run_engine_cell(jf, plat, mixed, {2, 400.0}, duration_ms,
                      /*tenant_hw=*/{0, 300});
    }

    if (!quick && goodput_w1 > 0.0) {
      const double scaling = goodput_wmax / goodput_w1;
      std::printf("goodput scaling at 1600/s offered (4 workers vs 1): "
                  "%.2fx\n",
                  scaling);
      bench::JsonObject j = bench::bench_row("serving_engine_summary",
                                             plat.name, "InceptionV1", "engine");
      j.field("tenants", 2)
          .field("offered_per_s", 1600.0)
          .field("goodput_1_worker_per_s", goodput_w1)
          .field("goodput_4_workers_per_s", goodput_wmax)
          .field("worker_scaling", scaling);
      j.emit(jf);
      j.emit(stdout);
    }
  }

  if (serve) {
    server.stop();
    sampler.stop();
  }
  std::fclose(jf);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}
