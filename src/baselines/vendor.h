// Emulated vendor inference stacks — the baselines of Tables 1-3.
//
// The paper compares against Intel OpenVINO (clDNN), ARM Compute Library,
// and cuDNN-backed MXNet. None of those runs in this environment, so each is
// modeled as an efficiency profile: for every operator class, the fraction
// of device peak the vendor's fixed expert kernels achieve, plus a per-op
// framework overhead. The profiles (src/baselines/vendor.cpp) are the single
// calibration point of this reproduction — everything on the "ours" side
// comes from real search over the simulator cost model.
//
// Coverage gaps mirror the paper:
//   * OpenVINO rejects the object-detection models outright (Table 1 "-");
//   * ACL has no model runtime: vision ops run on the CPU via the manual
//     graph surgery the authors describe;
//   * MXNet+cuDNN runs vision ops on the GPU, but with the naive mapping.
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "models/models.h"
#include "sim/clock.h"
#include "sim/device_spec.h"

namespace igc::baselines {

enum class VendorLib { kOpenVino, kAcl, kCudnnMxnet };

std::string_view vendor_name(VendorLib lib);

struct BaselineResult {
  bool supported = true;
  std::string unsupported_reason;
  double latency_ms = 0.0;
  /// One charge per costed operator, tagged with the lane the vendor stack
  /// actually runs it on (vision ops land on the CPU lane under OpenVINO /
  /// ACL, copies on the copy engine) so per-lane rollups of baseline runs
  /// attribute time like the executor's do.
  std::vector<sim::ClockEvent> events;
};

/// End-to-end latency of `model` under the emulated vendor stack on
/// `platform`. Returns supported=false where the real stack lacks coverage.
BaselineResult run_baseline(VendorLib lib, const models::Model& model,
                            const sim::Platform& platform);

/// The vendor stack expected on a platform (OpenVINO on Intel, ACL on Mali,
/// cuDNN/MXNet on Nvidia).
VendorLib vendor_for(const sim::Platform& platform);

}  // namespace igc::baselines
