#include "baselines/vendor.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "graph/graph.h"
#include "sim/timing_model.h"

namespace igc::baselines {
namespace {

/// Operator classes the vendor kernels specialize differently.
enum class ConvClass { kRegular, kDepthwise, kPointwise, kNarrow };

ConvClass classify(const ops::Conv2dParams& p) {
  if (p.is_depthwise()) return ConvClass::kDepthwise;
  // Narrow kernels (SqueezeNet squeeze layers, stems, small heads) miss the
  // vendor GEMM sweet spot regardless of kernel size.
  if (p.out_channels < 64 || p.in_channels < 64) return ConvClass::kNarrow;
  if (p.kernel_h == 1 && p.kernel_w == 1) return ConvClass::kPointwise;
  return ConvClass::kRegular;
}

/// One vendor stack's efficiency profile. Fractions of device peak reached
/// by the library's fixed kernels per conv class, elementwise efficiency,
/// and fixed framework overhead per operator launch.
struct Profile {
  double conv_regular;
  double conv_depthwise;
  double conv_pointwise;
  double conv_narrow;
  double elementwise;
  double per_op_ms;
  /// Vision ops: true = run on CPU (ACL manual fallback), false = naive GPU.
  bool vision_on_cpu;
};

/// Calibrated so the relative results of Tables 1-3 reproduce in shape:
/// OpenVINO's clDNN is strong on regular and pointwise kernels and — while
/// its depthwise kernels are also far from peak — still well ahead of our
/// not-yet-specialized Intel depthwise template (Table 1 MobileNet 0.62x);
/// ACL is decent but generic, so our tuner wins modestly on classification
/// (Table 2); cuDNN is tuned for server-class shapes, leaving edge-size
/// depthwise/narrow kernels far from peak (Table 3 MobileNet 1.49x,
/// SqueezeNet 1.62x), and MXNet adds per-op runtime overhead.
Profile profile_for(VendorLib lib) {
  switch (lib) {
    case VendorLib::kOpenVino:
      return {/*conv_regular=*/0.215, /*conv_depthwise=*/0.013,
              /*conv_pointwise=*/0.28, /*conv_narrow=*/0.29,
              /*elementwise=*/0.55, /*per_op_ms=*/0.035,
              /*vision_on_cpu=*/true};
    case VendorLib::kAcl:
      return {/*conv_regular=*/0.36, /*conv_depthwise=*/0.085,
              /*conv_pointwise=*/0.20, /*conv_narrow=*/0.22,
              /*elementwise=*/0.45, /*per_op_ms=*/0.09,
              /*vision_on_cpu=*/true};
    case VendorLib::kCudnnMxnet:
      return {/*conv_regular=*/0.45, /*conv_depthwise=*/0.04,
              /*conv_pointwise=*/0.28, /*conv_narrow=*/0.17,
              /*elementwise=*/0.45, /*per_op_ms=*/0.06,
              /*vision_on_cpu=*/false};
  }
  IGC_CHECK(false);
  return {};
}

double conv_latency(const Profile& prof, const ops::Conv2dParams& p,
                    const sim::DeviceSpec& gpu) {
  double eff = 0.0;
  switch (classify(p)) {
    case ConvClass::kRegular: eff = prof.conv_regular; break;
    case ConvClass::kDepthwise: eff = prof.conv_depthwise; break;
    case ConvClass::kPointwise: eff = prof.conv_pointwise; break;
    case ConvClass::kNarrow: eff = prof.conv_narrow; break;
  }
  const double compute_s =
      static_cast<double>(p.flops()) / (gpu.peak_gflops * 1e9 * eff);
  const double mem_s = static_cast<double>(p.min_bytes()) /
                       (gpu.dram_bandwidth_gbps * 1e9);
  return (std::max(compute_s, mem_s) + gpu.kernel_launch_us * 1e-6) * 1e3;
}

double elementwise_latency(const Profile& prof, int64_t numel,
                           int64_t flops_per_elem, const sim::DeviceSpec& gpu) {
  const double compute_s = static_cast<double>(numel * flops_per_elem) /
                           (gpu.peak_gflops * 1e9 * prof.elementwise);
  const double mem_s =
      static_cast<double>(8 * numel) / (gpu.dram_bandwidth_gbps * 1e9);
  return (std::max(compute_s, mem_s) + gpu.kernel_launch_us * 1e-6) * 1e3;
}

/// Analytic vision-op cost for baselines: N anchors, ~2% valid candidates.
double vision_latency(const Profile& prof, int64_t num_anchors, int64_t batch,
                      const sim::Platform& plat) {
  const double n = static_cast<double>(std::max<int64_t>(num_anchors, 1)) *
                   static_cast<double>(batch);
  const double candidates = std::max(32.0, 0.02 * n);
  const double kept = std::min(100.0, candidates);
  const double sort_flops = 4.0 * n * std::log2(n + 2.0);
  const double eval_flops = 16.0 * candidates * kept * 0.5;
  const double decode_flops = 40.0 * n;
  if (prof.vision_on_cpu) {
    // Manual CPU implementation + a copy each way.
    return sim::cpu_latency_ms(plat.cpu,
                               static_cast<int64_t>(sort_flops + eval_flops +
                                                    decode_flops),
                               static_cast<int64_t>(n) * 24, 0.3) +
           2.0 * sim::copy_latency_ms(plat.gpu, static_cast<int64_t>(n) * 24);
  }
  // Naive GPU mapping (the MXNet runtime's generic kernels): a single lane
  // runs the sort and suppression serially with uncoalesced accesses; only
  // the decode is parallel.
  const double serial_ms = (sort_flops + eval_flops) /
                           (plat.gpu.serial_lane_mflops * 1e6) * 1e3;
  const double decode_ms =
      decode_flops / (plat.gpu.peak_gflops * 1e9 * 0.2) * 1e3;
  return serial_ms + decode_ms + plat.gpu.kernel_launch_us * 1e-3 * 4;
}

bool is_detection_model(const models::Model& model) {
  for (const auto& n : model.graph.nodes()) {
    switch (n.kind) {
      case graph::OpKind::kSsdDetection:
      case graph::OpKind::kMultiboxDetection:
      case graph::OpKind::kYoloDecode:
      case graph::OpKind::kBoxNms:
        return true;
      default:
        break;
    }
  }
  return false;
}

}  // namespace

std::string_view vendor_name(VendorLib lib) {
  switch (lib) {
    case VendorLib::kOpenVino: return "OpenVINO";
    case VendorLib::kAcl: return "ACL";
    case VendorLib::kCudnnMxnet: return "cuDNN";
  }
  return "unknown";
}

VendorLib vendor_for(const sim::Platform& platform) {
  switch (platform.gpu.vendor) {
    case sim::Vendor::kIntel: return VendorLib::kOpenVino;
    case sim::Vendor::kArmMali: return VendorLib::kAcl;
    case sim::Vendor::kNvidia: return VendorLib::kCudnnMxnet;
    default: break;
  }
  IGC_CHECK(false) << "no vendor stack for " << platform.name;
  return VendorLib::kOpenVino;
}

BaselineResult run_baseline(VendorLib lib, const models::Model& model,
                            const sim::Platform& platform) {
  BaselineResult result;
  if (lib == VendorLib::kOpenVino && is_detection_model(model)) {
    // Table 1: "- indicates that the model is not yet supported by OpenVINO".
    result.supported = false;
    result.unsupported_reason =
        "OpenVINO does not support this object-detection model";
    return result;
  }

  const Profile prof = profile_for(lib);
  const sim::DeviceSpec& gpu = platform.gpu;
  double ms = 0.0;
  // One tagged trace event per costed op. The vendor model is analytic, so
  // the charge is opaque to the counter layer (fully serialized,
  // latency-bound), but lane and category are real: they drive the same
  // per-lane rollups the executor's trace feeds.
  const auto charge = [&](double op_ms, sim::Lane lane, sim::OpCategory cat,
                          const std::string& name) {
    ms += op_ms;
    sim::KernelCounters c;
    c.launches = 1;
    c.ms = op_ms;
    c.overhead_ms = op_ms;
    c.occupancy = 1.0;
    c.bound = sim::BoundKind::kLatency;
    result.events.push_back({name, op_ms, lane, cat, 0, c});
  };
  for (const auto& n : model.graph.nodes()) {
    switch (n.kind) {
      case graph::OpKind::kInput:
      case graph::OpKind::kConstant:  // resident data: no kernel charged
      case graph::OpKind::kFlatten:
        break;
      case graph::OpKind::kConv2d:
        charge(conv_latency(prof, n.conv, gpu) + prof.per_op_ms,
               sim::Lane::kGpu, sim::OpCategory::kConv, n.name);
        break;
      case graph::OpKind::kConv2dTranspose: {
        // Vendor stacks run deconvolution as a regular conv after input
        // dilation; charge the same profile at the deconv's FLOPs.
        const double eff = n.deconv.out_channels < 64 ? prof.conv_narrow
                                                      : prof.conv_regular;
        charge(static_cast<double>(n.deconv.flops()) /
                       (gpu.peak_gflops * 1e9 * eff) * 1e3 +
                   prof.per_op_ms,
               sim::Lane::kGpu, sim::OpCategory::kConv, n.name);
        break;
      }
      case graph::OpKind::kDense:
        charge(elementwise_latency(prof, n.dense.flops() / 2, 2, gpu) +
                   prof.per_op_ms,
               sim::Lane::kGpu, sim::OpCategory::kOther, n.name);
        break;
      case graph::OpKind::kScaleShift:
      case graph::OpKind::kActivation:
        // Vendor stacks fuse these into the conv; only framework overhead.
        charge(prof.per_op_ms * 0.2, sim::Lane::kGpu, sim::OpCategory::kOther,
               n.name);
        break;
      case graph::OpKind::kAdd:
      case graph::OpKind::kConcat:
      case graph::OpKind::kPool2d:
      case graph::OpKind::kGlobalAvgPool:
      case graph::OpKind::kSoftmax:
      case graph::OpKind::kUpsample2x:
        charge(elementwise_latency(prof, n.out_shape.numel(), 2, gpu) +
                   prof.per_op_ms,
               sim::Lane::kGpu, sim::OpCategory::kOther, n.name);
        break;
      case graph::OpKind::kSsdDetection:
      case graph::OpKind::kMultiboxDetection:
      case graph::OpKind::kBoxNms:
        // ACL/OpenVINO run the vision block on the host CPU (with the copies
        // folded into the same analytic charge); MXNet keeps it on the GPU.
        charge(vision_latency(prof, n.out_shape[1], n.out_shape[0], platform),
               prof.vision_on_cpu ? sim::Lane::kCpu : sim::Lane::kGpu,
               sim::OpCategory::kVision, n.name);
        break;
      case graph::OpKind::kYoloDecode:
        charge(elementwise_latency(
                   prof, n.out_shape[1] * (5 + n.yolo.num_classes), 6, gpu) +
                   prof.per_op_ms,
               sim::Lane::kGpu, sim::OpCategory::kVision, n.name);
        break;
      case graph::OpKind::kDetectionConcat:
        charge(elementwise_latency(prof, n.out_shape.numel(), 1, gpu),
               sim::Lane::kGpu, sim::OpCategory::kVision, n.name);
        break;
      case graph::OpKind::kRoiAlign:
        // Vendor stacks run ROIAlign suboptimally on GPU or on the CPU
        // (Sec. 1); approximate with the elementwise profile at 40 flops
        // per output sample.
        charge(elementwise_latency(prof, n.out_shape.numel() * 5, 8, gpu) +
                   prof.per_op_ms,
               sim::Lane::kGpu, sim::OpCategory::kVision, n.name);
        break;
      case graph::OpKind::kDeviceCopy:
        charge(sim::copy_latency_ms(gpu, n.out_shape.numel() * 4),
               sim::Lane::kCopy, sim::OpCategory::kCopy, n.name);
        break;
    }
  }
  result.latency_ms = ms;
  return result;
}

}  // namespace igc::baselines
