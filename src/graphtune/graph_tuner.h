// Graph-level layout tuning (Sec. 3.2.3 "Graph-level tuning: Graph Tuner",
// after Liu et al. [26]).
//
// Every convolution may run in plain NCHW or in a channel-blocked NCHW[x]c
// layout. Blocked layouts make the kernel faster (contiguous SIMD loads)
// but converting between layouts costs memory traffic. The graph tuner runs
// dynamic programming over the conv nodes in topological order, weighing
// tuned kernel time per (workload, layout) against the transform overhead on
// every producer->consumer edge, and returns the per-conv layout choice that
// minimizes estimated end-to-end time.
//
// The DP is exact on chains and trees (each producer feeding one conv). For
// multi-consumer producers the upstream cost is apportioned across
// consumers, the standard approximation for DAGs.
#pragma once

#include <map>
#include <vector>

#include "graph/graph.h"
#include "sim/device_spec.h"
#include "tune/tunedb.h"
#include "tune/tuner.h"

namespace igc::graphtune {

struct GraphTuneResult {
  /// Chosen layout block per conv node id (1 = plain NCHW).
  std::map<int, int> layout_of_conv;
  /// Estimated conv + transform time with the chosen layouts.
  double tuned_ms = 0.0;
  /// Estimated conv time with every conv in NCHW (no transforms).
  double nchw_ms = 0.0;
};

/// Candidate layout blocks for one conv workload on one device: 1 plus the
/// blocks from {4, 8, 16} that divide both channel counts (per group).
std::vector<int> layout_candidates(const ops::Conv2dParams& p,
                                   const sim::DeviceSpec& dev);

/// Cost of transforming a tensor of `numel` elements between two layouts
/// (0 when equal).
double transform_cost_ms(const sim::DeviceSpec& dev, int64_t numel,
                         int from_block, int to_block);

/// Tunes every conv workload under every candidate layout (records land in
/// `db`) and solves the layout-assignment DP.
GraphTuneResult tune_graph_layouts(const graph::Graph& g,
                                   const sim::DeviceSpec& dev,
                                   tune::TuneDb& db,
                                   const tune::TuneOptions& opts = {});

}  // namespace igc::graphtune
