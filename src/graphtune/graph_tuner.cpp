#include "graphtune/graph_tuner.h"

#include <algorithm>
#include <limits>
#include <set>

#include "core/error.h"
#include "tune/conv_tuner.h"

namespace igc::graphtune {

std::vector<int> layout_candidates(const ops::Conv2dParams& p,
                                   const sim::DeviceSpec& dev) {
  std::vector<int> out{1};
  const int64_t cog = p.out_channels / p.groups;
  const int64_t cig = p.in_channels / p.groups;
  for (int b : {4, 8, 16}) {
    if (b > dev.simd_width * 2) continue;  // pointless beyond 2x SIMD width
    if (cog % b == 0 && cig % b == 0) out.push_back(b);
  }
  return out;
}

double transform_cost_ms(const sim::DeviceSpec& dev, int64_t numel,
                         int from_block, int to_block) {
  if (from_block == to_block) return 0.0;
  sim::KernelLaunch k;
  k.name = "layout_transform";
  k.flops = numel;
  k.dram_read_bytes = 4 * numel;
  k.dram_write_bytes = 4 * numel;
  k.work_items = numel;
  k.work_group_size = 64;
  k.compute_efficiency = 0.6;
  return sim::estimate_latency_ms(dev, k);
}

namespace {

/// Kernel latency of one conv under one layout, tuning on first use.
double tuned_kernel_ms(const ops::Conv2dParams& p, const sim::DeviceSpec& dev,
                       int block, tune::TuneDb& db,
                       const tune::TuneOptions& opts) {
  return tune::tune_conv2d(p, dev, block, db, opts).best_ms;
}

}  // namespace

GraphTuneResult tune_graph_layouts(const graph::Graph& g,
                                   const sim::DeviceSpec& dev,
                                   tune::TuneDb& db,
                                   const tune::TuneOptions& opts) {
  const std::vector<int> convs = g.conv_node_ids();
  GraphTuneResult result;
  if (convs.empty()) return result;

  // conv_sources[node] = conv ancestors reachable through non-conv nodes.
  std::vector<std::set<int>> conv_sources(static_cast<size_t>(g.num_nodes()));
  for (const graph::Node& n : g.nodes()) {
    for (int in : n.inputs) {
      const graph::Node& p = g.node(in);
      if (p.is_conv()) {
        conv_sources[static_cast<size_t>(n.id)].insert(in);
      } else {
        const auto& src = conv_sources[static_cast<size_t>(in)];
        conv_sources[static_cast<size_t>(n.id)].insert(src.begin(), src.end());
      }
    }
  }

  // Direct conv->conv edges and per-conv consumer counts.
  std::map<int, std::vector<int>> conv_preds;  // conv id -> pred conv ids
  std::map<int, int> conv_consumers;           // conv id -> #conv consumers
  for (int id : convs) conv_consumers[id] = 0;
  for (int id : convs) {
    const graph::Node& n = g.node(id);
    std::set<int> preds;
    for (int in : n.inputs) {
      const graph::Node& p = g.node(in);
      if (p.is_conv()) {
        preds.insert(in);
      } else {
        const auto& src = conv_sources[static_cast<size_t>(in)];
        preds.insert(src.begin(), src.end());
      }
    }
    conv_preds[id] = {preds.begin(), preds.end()};
    for (int p : preds) conv_consumers[p]++;
  }

  // dp[conv][block] = apportioned cost of this conv's subtree given it runs
  // with `block`, including upstream transforms.
  std::map<int, std::map<int, double>> dp;
  for (int id : convs) {
    const graph::Node& n = g.node(id);
    for (int block : layout_candidates(n.conv, dev)) {
      double cost = tuned_kernel_ms(n.conv, dev, block, db, opts);
      for (int p : conv_preds[id]) {
        const graph::Node& pn = g.node(p);
        const int64_t edge_numel = pn.out_shape.numel();
        const double share =
            1.0 / static_cast<double>(std::max(conv_consumers[p], 1));
        double best = std::numeric_limits<double>::infinity();
        for (const auto& [pb, pcost] : dp[p]) {
          best = std::min(best, pcost * share +
                                    transform_cost_ms(dev, edge_numel, pb, block));
        }
        IGC_CHECK(std::isfinite(best));
        cost += best;
      }
      dp[id][block] = cost;
    }
  }

  // Total: sinks (convs with no conv consumer) pay a final transform back to
  // NCHW if they end blocked (downstream ops expect plain layout).
  double total = 0.0;
  for (int id : convs) {
    if (conv_consumers[id] != 0) continue;
    const graph::Node& n = g.node(id);
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [b, c] : dp[id]) {
      best = std::min(c + transform_cost_ms(dev, n.out_shape.numel(), b, 1),
                      best);
    }
    total += best;
  }
  result.tuned_ms = total;

  // Backtrack: choose, per conv in reverse topological order, the block that
  // minimizes its dp cost plus the downstream transform given the already
  // chosen consumer layouts.
  std::map<int, std::vector<int>> conv_succs;
  for (const auto& [id, preds] : conv_preds) {
    for (int p : preds) conv_succs[p].push_back(id);
  }
  for (auto it = convs.rbegin(); it != convs.rend(); ++it) {
    const int id = *it;
    const graph::Node& n = g.node(id);
    double best = std::numeric_limits<double>::infinity();
    int best_block = 1;
    for (const auto& [b, c] : dp[id]) {
      double downstream = 0.0;
      if (conv_succs[id].empty()) {
        downstream = transform_cost_ms(dev, n.out_shape.numel(), b, 1);
      } else {
        for (int s : conv_succs[id]) {
          downstream += transform_cost_ms(dev, n.out_shape.numel(), b,
                                          result.layout_of_conv.at(s));
        }
      }
      if (c + downstream < best) {
        best = c + downstream;
        best_block = b;
      }
    }
    result.layout_of_conv[id] = best_block;
  }

  // Baseline: all plain NCHW.
  for (int id : convs) {
    result.nchw_ms += tuned_kernel_ms(g.node(id).conv, dev, 1, db, opts);
  }
  return result;
}

}  // namespace igc::graphtune
