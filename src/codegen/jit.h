// The host JIT runtime behind the C++ codegen target (see emit_cpp in
// codegen.h): discover the host toolchain, compile emitted translation units
// into shared objects, cache the artifacts on disk, and hand the executor a
// per-node function-pointer table.
//
// Layering: one *module* is one translation unit holding every kernel of one
// compiled model, so a cold compile() costs exactly one toolchain invocation
// and a warm one costs zero. Artifacts live in a content-addressed on-disk
// cache keyed by (cache version, compiler id, flags, source): the
// TensorRT-style engine-serialize pattern, so repeat compiles skip the
// toolchain entirely and just dlopen.
//
// Cache entry layout (dir/igc_<key>.{cpp,so,manifest}):
//   * igc_<key>.cpp      — the emitted source (kept for debugging);
//   * igc_<key>.so       — the compiled shared object;
//   * igc_<key>.manifest — text manifest naming the cache version, compiler
//     id, flags, and source/so sizes the .so was built from.
// Inserts write temp files and publish via atomic rename, .so before
// manifest, so a manifest always describes a fully written object. Lookups
// validate the manifest and the object size and treat *any* mismatch,
// parse failure, or dlopen failure as a miss followed by a recompile —
// a truncated or corrupted entry costs one toolchain invocation, never an
// error.
//
// Everything records jit.* metrics (cache_hits / cache_misses / mem_hits /
// toolchain_invocations / toolchain_ms / kernels_compiled / modules_loaded /
// dispatches / compile_errors) in the process-wide registry.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace igc::codegen::jit {

/// Signature of every emitted host kernel (see emit_cpp): buffer pointers
/// per kernel param, then a [blk_lo, blk_hi) range of flattened grid blocks.
using KernelFn = void (*)(float* const* bufs, long long blk_lo,
                          long long blk_hi);

/// The host C++ toolchain, discovered once per process: $CXX if set, else
/// `c++` from PATH. compiler_id() is the first line of `--version` output —
/// it keys the artifact cache, so objects built by one compiler are never
/// loaded after a toolchain switch.
class Toolchain {
 public:
  /// The process-wide host toolchain (probed on first use).
  static const Toolchain& host();

  bool available() const { return available_; }
  const std::string& compiler() const { return compiler_; }
  const std::string& compiler_id() const { return compiler_id_; }
  /// Compile flags (part of the cache key). Contraction is disabled so the
  /// emitted float arithmetic stays bit-identical to the reference
  /// operators (GCC defaults to -ffp-contract=fast at -O2+).
  const std::string& flags() const { return flags_; }

  /// Compiles `source_path` into the shared object `out_path`. On failure
  /// returns false with the compiler's stderr in *err. Records
  /// jit.toolchain_invocations and jit.toolchain_ms.
  bool compile(const std::string& source_path, const std::string& out_path,
               std::string* err) const;

 private:
  Toolchain();

  bool available_ = false;
  std::string compiler_;
  std::string compiler_id_;
  std::string flags_;
};

/// A dlopened shared object. Closing is tied to the last shared_ptr, so a
/// DispatchTable keeps its function pointers alive by holding the module.
class Module {
 public:
  ~Module();
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Resolved symbol address, or null if absent.
  void* symbol(const std::string& name) const;

  /// dlopens `path` (RTLD_NOW | RTLD_LOCAL). Null + *err on failure.
  static std::shared_ptr<Module> open(const std::string& path,
                                      std::string* err);

 private:
  explicit Module(void* handle) : handle_(handle) {}
  void* handle_ = nullptr;
};

/// The on-disk compiled-artifact cache (file comment above). Each instance
/// owns an in-process registry deduplicating concurrent and repeated
/// compiles of the same source: per key, at most one thread invokes the
/// toolchain while the rest block and share the loaded module.
class KernelCache {
 public:
  /// Current entry-format version. Bumping it invalidates every existing
  /// entry (old artifacts are simply never matched again).
  static constexpr uint32_t kCacheVersion = 1;

  /// `dir` empty resolves default_dir(); `version` is overridable so tests
  /// can prove a bump invalidates.
  explicit KernelCache(std::string dir = "",
                       uint32_t version = kCacheVersion);

  /// $IGC_KERNEL_CACHE if set, else ~/.cache/igc-kernels, else (no $HOME)
  /// /tmp/igc-kernels.
  static std::string default_dir();

  const std::string& dir() const { return dir_; }

  /// Returns the loaded module for `source`, reusing (in order) the
  /// in-process registry, a valid on-disk artifact, or a fresh toolchain
  /// invocation. Null + *err when no toolchain is available or compilation
  /// fails; the failure is remembered per key, so a broken source does not
  /// re-invoke the toolchain on every call.
  std::shared_ptr<Module> load_or_compile(const std::string& source,
                                          std::string* err);

  /// The process-wide cache instance for `dir` (empty = default_dir()).
  /// CompiledModel compiles through this, so every compile() in a process
  /// shares one registry per directory.
  static KernelCache& shared(const std::string& dir = "");

 private:
  struct Entry {
    std::mutex mu;
    std::shared_ptr<Module> module;
    bool failed = false;
    std::string err;
  };

  std::shared_ptr<Module> disk_lookup(const std::string& key,
                                      const std::string& source);
  std::shared_ptr<Module> compile_and_insert(const std::string& key,
                                             const std::string& source,
                                             std::string* err);

  std::string dir_;
  uint32_t version_ = kCacheVersion;
  std::mutex mu_;  // guards entries_ (not the per-entry state)
  std::map<std::string, std::shared_ptr<Entry>> entries_;
};

/// How the executor binds one argument slot of a node's kernel.
enum class ArgKind {
  kInput0,        // first input tensor
  kInput1,        // second input tensor
  kPaddedInput0,  // first input, spatially zero-padded into worker scratch
  kWeight,
  kBias,
  kScale,       // node's scale tensor (kScaleShift)
  kShift,       // node's shift tensor
  kFusedScale,  // conv's folded-BN epilogue tensors
  kFusedShift,
  kOutput,
};

/// One node's compiled kernel: the resolved function pointer, its flattened
/// grid, the argument binding recipe, and the padding geometry when the
/// kernel expects a pre-padded input.
struct NodeKernel {
  KernelFn fn = nullptr;
  int64_t grid = 1;
  std::vector<ArgKind> args;
  int64_t pad_h = 0, pad_w = 0;  // kPaddedInput0 spatial padding
};

/// Node id -> compiled kernel for one model. Holds the module so function
/// pointers outlive the cache registry.
struct DispatchTable {
  std::shared_ptr<Module> module;
  std::map<int, NodeKernel> nodes;

  const NodeKernel* find(int node_id) const {
    auto it = nodes.find(node_id);
    return it == nodes.end() ? nullptr : &it->second;
  }
};

}  // namespace igc::codegen::jit
