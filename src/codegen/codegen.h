// Code generation from the unified IR (Fig. 1: "Code generation" stage).
//
// The same LoweredKernel is printed as OpenCL C for Intel Graphics and ARM
// Mali, or as CUDA C for Nvidia GPUs. Bound itervars become
// get_group_id()/get_local_id() (OpenCL) or blockIdx/threadIdx (CUDA);
// unrolled loops get the dialect's unroll pragma; vectorized loops are
// annotated for the target compiler's vectorizer; barriers map to
// barrier(CLK_LOCAL_MEM_FENCE) / __syncthreads().
#pragma once

#include <string>

#include "ir/expr.h"
#include "sim/device_spec.h"

namespace igc::codegen {

/// Emits OpenCL C source for the kernel. `use_intel_subgroups` additionally
/// emits the Intel subgroup extension pragma (Sec. 3.2.1).
std::string emit_opencl(const ir::LoweredKernel& kernel,
                        bool use_intel_subgroups = false);

/// Emits CUDA C source for the kernel.
std::string emit_cuda(const ir::LoweredKernel& kernel);

/// Emits standalone host C++ for the kernel (the JIT backend's target).
/// The emitted function has C linkage and the uniform signature
///
///   extern "C" void <name>(float* const* bufs, long long blk_lo,
///                          long long blk_hi);
///
/// where bufs[i] is the storage of kernel.params[i] and [blk_lo, blk_hi) is a
/// range of flattened grid blocks (all block-bound axes collapsed,
/// innermost-nested axis fastest; see ir::LoweredKernel::grid_size()). The
/// caller partitions the grid across host threads; thread-bound axes become
/// ordinary serial loops, so one block is one work-group's worth of work on
/// one host thread. Barriers are rejected — host kernels are written without
/// intra-block synchronization.
///
/// Float arithmetic is emitted in single precision with min/max as ternaries,
/// matching the reference operators bit for bit when compiled with
/// contraction disabled (the JIT toolchain passes -ffp-contract=off).
std::string emit_cpp(const ir::LoweredKernel& kernel);

/// Dispatches on the device's API (OpenCL for Intel/Mali, CUDA for Nvidia).
std::string emit_for_device(const ir::LoweredKernel& kernel,
                            const sim::DeviceSpec& dev);

}  // namespace igc::codegen
