// Code generation from the unified IR (Fig. 1: "Code generation" stage).
//
// The same LoweredKernel is printed as OpenCL C for Intel Graphics and ARM
// Mali, or as CUDA C for Nvidia GPUs. Bound itervars become
// get_group_id()/get_local_id() (OpenCL) or blockIdx/threadIdx (CUDA);
// unrolled loops get the dialect's unroll pragma; vectorized loops are
// annotated for the target compiler's vectorizer; barriers map to
// barrier(CLK_LOCAL_MEM_FENCE) / __syncthreads().
#pragma once

#include <string>

#include "ir/expr.h"
#include "sim/device_spec.h"

namespace igc::codegen {

/// Emits OpenCL C source for the kernel. `use_intel_subgroups` additionally
/// emits the Intel subgroup extension pragma (Sec. 3.2.1).
std::string emit_opencl(const ir::LoweredKernel& kernel,
                        bool use_intel_subgroups = false);

/// Emits CUDA C source for the kernel.
std::string emit_cuda(const ir::LoweredKernel& kernel);

/// Dispatches on the device's API (OpenCL for Intel/Mali, CUDA for Nvidia).
std::string emit_for_device(const ir::LoweredKernel& kernel,
                            const sim::DeviceSpec& dev);

}  // namespace igc::codegen
