#include "codegen/jit.h"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "core/error.h"
#include "obs/metrics.h"

namespace igc::codegen::jit {
namespace {

namespace fs = std::filesystem;

obs::Counter& counter(const char* name) {
  return obs::MetricsRegistry::global().counter(name);
}

/// 64-bit FNV-1a over a sequence of fields with a separator byte between
/// them, so ("ab","c") and ("a","bc") hash differently.
uint64_t fnv1a(std::initializer_list<std::string_view> fields) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 1099511628211ull;
  };
  for (std::string_view f : fields) {
    for (unsigned char c : f) mix(c);
    mix(0);
  }
  return h;
}

std::string hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Runs `cmd` via the shell, returns exit status (-1 on launch failure).
int run_command(const std::string& cmd) { return std::system(cmd.c_str()); }

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

bool write_file(const fs::path& p, const std::string& content) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  out.flush();
  return static_cast<bool>(out);
}

/// Process-unique temp suffix so concurrent inserts never collide.
std::string temp_suffix() {
  static std::atomic<uint64_t> seq{0};
  return ".tmp." + std::to_string(static_cast<long long>(::getpid())) + "." +
         std::to_string(seq.fetch_add(1));
}

/// Shell-quotes a path (single quotes; embedded quotes escaped).
std::string quoted(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

}  // namespace

// ---- Toolchain -------------------------------------------------------------

Toolchain::Toolchain() {
  const char* env = std::getenv("CXX");
  compiler_ = (env != nullptr && env[0] != '\0') ? env : "c++";
  // Bit-identity depends on -ffp-contract=off: GCC's default of
  // -ffp-contract=fast would fuse the emitted a + b*c chains into FMAs and
  // change results in the last ulp.
  flags_ = "-std=c++17 -O3 -fPIC -shared -ffp-contract=off";
  // Probe: first line of `--version` identifies the compiler (and keys the
  // artifact cache). Failure to run it means no usable host toolchain.
  std::FILE* p =
      ::popen((compiler_ + " --version 2>/dev/null").c_str(), "r");
  if (p == nullptr) return;
  char buf[256] = {0};
  if (std::fgets(buf, sizeof(buf), p) != nullptr) {
    compiler_id_ = buf;
    while (!compiler_id_.empty() &&
           (compiler_id_.back() == '\n' || compiler_id_.back() == '\r')) {
      compiler_id_.pop_back();
    }
  }
  ::pclose(p);
  available_ = !compiler_id_.empty();
}

const Toolchain& Toolchain::host() {
  static const Toolchain tc;
  return tc;
}

bool Toolchain::compile(const std::string& source_path,
                        const std::string& out_path, std::string* err) const {
  IGC_CHECK(available_) << "no host toolchain";
  const std::string err_path = out_path + ".stderr";
  const std::string cmd = compiler_ + " " + flags_ + " -o " +
                          quoted(out_path) + " " + quoted(source_path) +
                          " 2> " + quoted(err_path);
  const auto t0 = std::chrono::steady_clock::now();
  const int status = run_command(cmd);
  const auto t1 = std::chrono::steady_clock::now();
  auto& m = obs::MetricsRegistry::global();
  m.counter("jit.toolchain_invocations").add(1);
  m.histogram("jit.toolchain_ms")
      .observe(static_cast<int64_t>(
          std::chrono::duration<double, std::milli>(t1 - t0).count()));
  std::error_code ec;
  if (status != 0) {
    if (err != nullptr) {
      *err = "toolchain failed (status " + std::to_string(status) +
             "): " + cmd + "\n" + read_file(err_path);
    }
    fs::remove(err_path, ec);
    return false;
  }
  fs::remove(err_path, ec);
  return true;
}

// ---- Module ----------------------------------------------------------------

Module::~Module() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

void* Module::symbol(const std::string& name) const {
  return ::dlsym(handle_, name.c_str());
}

std::shared_ptr<Module> Module::open(const std::string& path,
                                     std::string* err) {
  void* h = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (h == nullptr) {
    if (err != nullptr) {
      const char* d = ::dlerror();
      *err = d != nullptr ? d : ("dlopen failed: " + path);
    }
    return nullptr;
  }
  return std::shared_ptr<Module>(new Module(h));
}

// ---- KernelCache -----------------------------------------------------------

KernelCache::KernelCache(std::string dir, uint32_t version)
    : dir_(dir.empty() ? default_dir() : std::move(dir)), version_(version) {}

std::string KernelCache::default_dir() {
  const char* env = std::getenv("IGC_KERNEL_CACHE");
  if (env != nullptr && env[0] != '\0') return env;
  const char* home = std::getenv("HOME");
  if (home != nullptr && home[0] != '\0') {
    return std::string(home) + "/.cache/igc-kernels";
  }
  return "/tmp/igc-kernels";
}

KernelCache& KernelCache::shared(const std::string& dir) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<KernelCache>>* instances =
      new std::map<std::string, std::unique_ptr<KernelCache>>();
  const std::string resolved = dir.empty() ? default_dir() : dir;
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = (*instances)[resolved];
  if (slot == nullptr) slot = std::make_unique<KernelCache>(resolved);
  return *slot;
}

std::shared_ptr<Module> KernelCache::load_or_compile(const std::string& source,
                                                     std::string* err) {
  const Toolchain& tc = Toolchain::host();
  if (!tc.available()) {
    if (err != nullptr) *err = "no host C++ toolchain ($CXX or c++) found";
    return nullptr;
  }
  const std::string key = hex64(fnv1a(
      {std::to_string(version_), tc.compiler_id(), tc.flags(), source}));

  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = entries_[key];
    if (slot == nullptr) slot = std::make_shared<Entry>();
    entry = slot;
  }
  // Per-key serialization: concurrent compiles of the same kernel source
  // block here while exactly one thread does the work.
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->module != nullptr) {
    counter("jit.mem_hits").add(1);
    return entry->module;
  }
  if (entry->failed) {
    if (err != nullptr) *err = entry->err;
    return nullptr;
  }
  if (std::shared_ptr<Module> m = disk_lookup(key, source)) {
    counter("jit.cache_hits").add(1);
    counter("jit.modules_loaded").add(1);
    entry->module = std::move(m);
    return entry->module;
  }
  counter("jit.cache_misses").add(1);
  std::string local_err;
  std::shared_ptr<Module> m = compile_and_insert(key, source, &local_err);
  if (m == nullptr) {
    counter("jit.compile_errors").add(1);
    entry->failed = true;
    entry->err = local_err;
    if (err != nullptr) *err = local_err;
    return nullptr;
  }
  counter("jit.modules_loaded").add(1);
  entry->module = std::move(m);
  return entry->module;
}

std::shared_ptr<Module> KernelCache::disk_lookup(const std::string& key,
                                                 const std::string& source) {
  const fs::path so_path = fs::path(dir_) / ("igc_" + key + ".so");
  const fs::path man_path = fs::path(dir_) / ("igc_" + key + ".manifest");
  std::error_code ec;

  // Parse + validate the manifest; any irregularity is a miss, never an
  // error — the recompile path overwrites whatever was there.
  std::ifstream man(man_path);
  if (!man) return nullptr;
  std::string line;
  auto next_value = [&](std::string_view field) -> std::string {
    if (!std::getline(man, line)) return {};
    if (line.rfind(field, 0) != 0 || line.size() <= field.size() + 1) {
      return {};
    }
    return line.substr(field.size() + 1);
  };
  if (!std::getline(man, line) || line != "igc-kernel-cache-manifest") {
    return nullptr;
  }
  if (next_value("version") != std::to_string(version_)) return nullptr;
  if (next_value("compiler") != Toolchain::host().compiler_id()) return nullptr;
  if (next_value("flags") != Toolchain::host().flags()) return nullptr;
  if (next_value("source_bytes") != std::to_string(source.size())) {
    return nullptr;
  }
  if (next_value("source_hash") != hex64(fnv1a({source}))) return nullptr;
  const std::string so_bytes = next_value("so_bytes");
  if (so_bytes.empty()) return nullptr;
  const auto actual = fs::file_size(so_path, ec);
  if (ec || std::to_string(actual) != so_bytes) return nullptr;

  std::string err;
  return Module::open(so_path.string(), &err);  // dlopen failure -> miss
}

std::shared_ptr<Module> KernelCache::compile_and_insert(
    const std::string& key, const std::string& source, std::string* err) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  const fs::path base = fs::path(dir_) / ("igc_" + key);
  const fs::path src_path = base.string() + ".cpp";
  const fs::path so_path = base.string() + ".so";
  const fs::path man_path = base.string() + ".manifest";

  // Publish the source (atomic rename; contents are deterministic per key,
  // so losing a rename race to another process is harmless).
  const fs::path src_tmp = src_path.string() + temp_suffix();
  if (!write_file(src_tmp, source)) {
    *err = "cannot write " + src_tmp.string();
    return nullptr;
  }
  fs::rename(src_tmp, src_path, ec);
  if (ec) {
    fs::remove(src_tmp, ec);
    *err = "cannot publish " + src_path.string();
    return nullptr;
  }

  // Compile into a temp object, then publish .so before manifest so a
  // manifest never describes a partially written object.
  const fs::path so_tmp = so_path.string() + temp_suffix();
  if (!Toolchain::host().compile(src_path.string(), so_tmp.string(), err)) {
    fs::remove(so_tmp, ec);
    return nullptr;
  }
  const auto so_bytes = fs::file_size(so_tmp, ec);
  if (ec) {
    *err = "compiled object vanished: " + so_tmp.string();
    return nullptr;
  }
  fs::rename(so_tmp, so_path, ec);
  if (ec) {
    fs::remove(so_tmp, ec);
    *err = "cannot publish " + so_path.string();
    return nullptr;
  }

  std::ostringstream man;
  man << "igc-kernel-cache-manifest\n"
      << "version " << version_ << "\n"
      << "compiler " << Toolchain::host().compiler_id() << "\n"
      << "flags " << Toolchain::host().flags() << "\n"
      << "source_bytes " << source.size() << "\n"
      << "source_hash " << hex64(fnv1a({source})) << "\n"
      << "so_bytes " << so_bytes << "\n";
  const fs::path man_tmp = man_path.string() + temp_suffix();
  if (!write_file(man_tmp, man.str())) {
    *err = "cannot write " + man_tmp.string();
    return nullptr;
  }
  fs::rename(man_tmp, man_path, ec);
  if (ec) {
    fs::remove(man_tmp, ec);
    *err = "cannot publish " + man_path.string();
    return nullptr;
  }

  return Module::open(so_path.string(), err);
}

}  // namespace igc::codegen::jit
