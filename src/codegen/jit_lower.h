// Graph -> host dispatch table: the lowering step between the optimized
// graph and the JIT runtime (jit.h).
//
// Every coverable node — conv2d (any groups, with fused scale-shift /
// activation epilogues), dense, add, activation, scale-shift — is lowered
// through the host-schedule IR builders (ops/nn/host_kernels.h), deduplicated
// by workload signature, emitted into ONE translation unit via emit_cpp, and
// compiled/loaded through the artifact cache. A model with 60 convs sharing
// 20 distinct workloads costs 20 kernels and exactly one toolchain
// invocation cold — zero warm.
//
// Nodes the host target cannot express (sigmoid activations, pooling,
// softmax, vision ops, double-accumulating global-avg-pool) are simply
// absent from the table; the executor keeps running them on the reference
// path, bit-identically.
#pragma once

#include <memory>
#include <string>

#include "codegen/jit.h"
#include "graph/graph.h"
#include "obs/trace.h"

namespace igc::codegen::jit {

struct LowerResult {
  /// Null when nothing was coverable, no toolchain exists, or the compile
  /// failed (then `error` says why).
  std::shared_ptr<DispatchTable> table;
  int kernels = 0;        // distinct kernels in the module
  int nodes_covered = 0;  // graph nodes bound to a compiled kernel
  std::string error;
};

/// Lowers `g` and compiles its module through `cache`. Records
/// jit.kernels_compiled when the toolchain actually ran (cache misses only)
/// and, when `trace` is non-null, one span per lowering/compile step.
LowerResult build_dispatch_table(const graph::Graph& g, KernelCache& cache,
                                 obs::TraceRecorder* trace = nullptr);

}  // namespace igc::codegen::jit
