#include "codegen/jit_lower.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <sstream>
#include <string_view>
#include <vector>

#include "codegen/codegen.h"
#include "core/error.h"
#include "obs/metrics.h"
#include "ops/nn/host_kernels.h"

namespace igc::codegen::jit {
namespace {

using graph::Node;
using graph::OpKind;

uint64_t fnv1a(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// One deduplicated kernel being assembled into the module.
struct PendingKernel {
  std::string symbol;
  ir::LoweredKernel lowered;
};

/// A node's lowering outcome before symbol resolution.
struct NodePlan {
  int node_id = -1;
  std::string signature;  // dedup key
  NodeKernel kernel;      // fn filled in after dlopen
};

ops::HostEpilogue node_epilogue(const Node& n) {
  ops::HostEpilogue e;
  e.scale_shift = n.fused_scale_shift;
  e.activation = n.fused_activation;
  e.act = n.fused_act;
  e.act_alpha = n.fused_act_alpha;
  return e;
}

/// True when the node's fused epilogue is expressible on the host target.
bool epilogue_supported(const Node& n) {
  return !n.fused_activation || ops::host_act_supported(n.fused_act);
}

void sig_epilogue(std::ostringstream& os, const ops::HostEpilogue& e) {
  if (e.scale_shift) os << "_ss";
  if (e.activation) {
    os << "_act" << static_cast<int>(e.act);
    if (e.act == ops::Activation::kLeakyRelu) os << "a" << e.act_alpha;
  }
}

}  // namespace

LowerResult build_dispatch_table(const graph::Graph& g, KernelCache& cache,
                                 obs::TraceRecorder* trace) {
  using Clock = std::chrono::steady_clock;
  const auto t_begin = Clock::now();
  auto span = [&](const char* name, Clock::time_point t0) {
    if (trace == nullptr) return;
    obs::TraceSpan s;
    s.name = name;
    s.op = "jit";
    s.host_start_us =
        std::chrono::duration<double, std::micro>(t0 - t_begin).count();
    s.host_end_us =
        std::chrono::duration<double, std::micro>(Clock::now() - t_begin)
            .count();
    trace->record(std::move(s));
  };

  LowerResult result;

  // ---- Lower every coverable node, deduplicating by signature -----------
  const auto t_lower = Clock::now();
  std::vector<NodePlan> plans;
  std::map<std::string, PendingKernel> kernels;  // signature -> kernel
  const std::vector<bool> live = g.live_mask();

  auto intern = [&](const std::string& sig,
                    const std::function<ir::LoweredKernel(
                        const std::string& symbol)>& build) -> PendingKernel& {
    auto it = kernels.find(sig);
    if (it != kernels.end()) return it->second;
    PendingKernel pk;
    pk.symbol = "igc_k" + hex64(fnv1a(sig));
    pk.lowered = build(pk.symbol);
    return kernels.emplace(sig, std::move(pk)).first->second;
  };

  for (const Node& n : g.nodes()) {
    if (!live[n.id]) continue;
    NodePlan plan;
    plan.node_id = n.id;
    switch (n.kind) {
      case OpKind::kConv2d: {
        if (!epilogue_supported(n)) continue;
        const ops::Conv2dParams& p = n.conv;
        const bool bias = n.bias.defined();
        const ops::HostEpilogue e = node_epilogue(n);
        std::ostringstream sig;
        sig << "conv_" << p.workload_key() << (bias ? "_b" : "");
        sig_epilogue(sig, e);
        const PendingKernel& pk = intern(sig.str(), [&](const std::string& sym) {
          return ops::conv2d_build_host_ir(p, bias, e, sym);
        });
        plan.signature = sig.str();
        plan.kernel.grid = pk.lowered.grid_size();
        plan.kernel.pad_h = p.pad_h;
        plan.kernel.pad_w = p.pad_w;
        plan.kernel.args = {ArgKind::kPaddedInput0, ArgKind::kWeight};
        if (bias) plan.kernel.args.push_back(ArgKind::kBias);
        if (e.scale_shift) {
          plan.kernel.args.push_back(ArgKind::kFusedScale);
          plan.kernel.args.push_back(ArgKind::kFusedShift);
        }
        plan.kernel.args.push_back(ArgKind::kOutput);
        break;
      }
      case OpKind::kDense: {
        if (!epilogue_supported(n) || n.fused_scale_shift) continue;
        const ops::DenseParams& p = n.dense;
        const bool bias = n.bias.defined();
        const ops::HostEpilogue e = node_epilogue(n);
        std::ostringstream sig;
        sig << "dense_" << p.batch << "x" << p.in_features << "x"
            << p.out_features << (bias ? "_b" : "");
        sig_epilogue(sig, e);
        const PendingKernel& pk = intern(sig.str(), [&](const std::string& sym) {
          return ops::dense_build_host_ir(p, bias, e, sym);
        });
        plan.signature = sig.str();
        plan.kernel.grid = pk.lowered.grid_size();
        plan.kernel.args = {ArgKind::kInput0, ArgKind::kWeight};
        if (bias) plan.kernel.args.push_back(ArgKind::kBias);
        plan.kernel.args.push_back(ArgKind::kOutput);
        break;
      }
      case OpKind::kAdd: {
        if (!epilogue_supported(n) || n.fused_scale_shift) continue;
        const int64_t numel = n.out_shape.numel();
        const ops::HostEpilogue e = node_epilogue(n);
        std::ostringstream sig;
        sig << "add_" << numel;
        sig_epilogue(sig, e);
        const PendingKernel& pk = intern(sig.str(), [&](const std::string& sym) {
          return ops::add_build_host_ir(numel, e, sym);
        });
        plan.signature = sig.str();
        plan.kernel.grid = pk.lowered.grid_size();
        plan.kernel.args = {ArgKind::kInput0, ArgKind::kInput1,
                            ArgKind::kOutput};
        break;
      }
      case OpKind::kActivation: {
        if (!ops::host_act_supported(n.act) || n.fused_activation ||
            n.fused_scale_shift) {
          continue;
        }
        const int64_t numel = n.out_shape.numel();
        std::ostringstream sig;
        sig << "act" << static_cast<int>(n.act) << "_" << numel;
        if (n.act == ops::Activation::kLeakyRelu) sig << "a" << n.act_alpha;
        const PendingKernel& pk = intern(sig.str(), [&](const std::string& sym) {
          return ops::activation_build_host_ir(numel, n.act, n.act_alpha, sym);
        });
        plan.signature = sig.str();
        plan.kernel.grid = pk.lowered.grid_size();
        plan.kernel.args = {ArgKind::kInput0, ArgKind::kOutput};
        break;
      }
      case OpKind::kScaleShift: {
        if (n.fused_activation || n.fused_scale_shift) continue;
        if (n.out_shape.ndim() < 2) continue;
        const int64_t nb = n.out_shape[0];
        const int64_t c = n.out_shape[1];
        const int64_t hw = n.out_shape.numel() / (nb * c);
        std::ostringstream sig;
        sig << "ss_" << nb << "x" << c << "x" << hw;
        const PendingKernel& pk = intern(sig.str(), [&](const std::string& sym) {
          return ops::scale_shift_build_host_ir(nb, c, hw, sym);
        });
        plan.signature = sig.str();
        plan.kernel.grid = pk.lowered.grid_size();
        plan.kernel.args = {ArgKind::kInput0, ArgKind::kScale, ArgKind::kShift,
                            ArgKind::kOutput};
        break;
      }
      default:
        continue;
    }
    plans.push_back(std::move(plan));
  }
  span("jit.lower", t_lower);

  if (plans.empty()) return result;

  // ---- Emit one translation unit (kernels in symbol order, so the source
  // bytes — and thus the cache key — are deterministic) -------------------
  const auto t_emit = Clock::now();
  std::map<std::string, const ir::LoweredKernel*> by_symbol;
  for (const auto& [sig, pk] : kernels) by_symbol[pk.symbol] = &pk.lowered;
  std::ostringstream src;
  src << "// igc JIT module: " << by_symbol.size() << " kernels\n";
  for (const auto& [sym, lk] : by_symbol) src << "\n" << emit_cpp(*lk);
  const std::string source = src.str();
  span("jit.emit", t_emit);

  // ---- Compile / load through the artifact cache ------------------------
  const auto t_compile = Clock::now();
  auto& m = obs::MetricsRegistry::global();
  const int64_t invocations_before = m.counter("jit.toolchain_invocations").value();
  std::string err;
  std::shared_ptr<Module> module = cache.load_or_compile(source, &err);
  if (m.counter("jit.toolchain_invocations").value() > invocations_before) {
    m.counter("jit.kernels_compiled").add(static_cast<int64_t>(kernels.size()));
  }
  span("jit.compile", t_compile);
  if (module == nullptr) {
    result.error = err;
    return result;
  }

  // ---- Resolve symbols and bind nodes -----------------------------------
  auto table = std::make_shared<DispatchTable>();
  table->module = module;
  for (NodePlan& plan : plans) {
    const std::string& sym = kernels.at(plan.signature).symbol;
    void* addr = module->symbol(sym);
    IGC_CHECK(addr != nullptr) << "missing JIT symbol " << sym;
    plan.kernel.fn = reinterpret_cast<KernelFn>(addr);
    table->nodes.emplace(plan.node_id, std::move(plan.kernel));
  }
  result.table = std::move(table);
  result.kernels = static_cast<int>(kernels.size());
  result.nodes_covered = static_cast<int>(plans.size());
  return result;
}

}  // namespace igc::codegen::jit
