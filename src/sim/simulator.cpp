#include "sim/simulator.h"

#include <algorithm>

#include "core/error.h"
#include "core/thread_pool.h"

namespace igc::sim {

void GpuSimulator::launch(int64_t num_groups, int group_size,
                          const std::function<void(const WorkItem&)>& body,
                          KernelLaunch cost) {
  IGC_CHECK_GT(num_groups, 0);
  IGC_CHECK_GT(group_size, 0);
  cost.work_items = num_groups * group_size;
  cost.work_group_size = group_size;
  clock_.charge(dev_, cost);

  ThreadPool::global().parallel_for(num_groups, [&](int64_t g) {
    WorkItem item;
    item.group_id = g;
    item.group_size = group_size;
    for (int l = 0; l < group_size; ++l) {
      item.local_id = l;
      body(item);
    }
  });
}

void GpuSimulator::launch_elementwise(const std::string& name, int64_t n,
                                      const std::function<void(int64_t)>& body,
                                      int64_t flops_per_elem,
                                      int64_t bytes_per_elem) {
  IGC_CHECK_GT(n, 0);
  const int group_size =
      static_cast<int>(std::min<int64_t>(n, dev_.simd_width * 8));
  const int64_t num_groups = (n + group_size - 1) / group_size;
  KernelLaunch cost;
  cost.name = name;
  cost.flops = flops_per_elem * n;
  cost.dram_read_bytes = bytes_per_elem * n;
  cost.dram_write_bytes = 4 * n;
  launch(
      num_groups, group_size,
      [&](const WorkItem& item) {
        const int64_t i = item.global_id();
        if (i < n) body(i);
      },
      std::move(cost));
}

}  // namespace igc::sim
