// Functional executor for simulated GPU kernels.
//
// Vision-specific operators (Sec. 3.1) are implemented as genuine data-
// parallel algorithms: a kernel body is a function of (work-group id, local
// id) executed for every work item, with work-groups distributed across the
// host thread pool. Global synchronization is only available *between*
// launches, exactly like OpenCL/CUDA, which forces the same multi-pass
// structure the paper describes (e.g. the cooperative merge rounds of the
// segmented sort and the three stages of the prefix sum).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/clock.h"
#include "sim/device_spec.h"

namespace igc::sim {

/// Identifies one work item inside a launch.
struct WorkItem {
  int64_t group_id = 0;
  int local_id = 0;
  int group_size = 1;
  int64_t global_id() const { return group_id * group_size + local_id; }
};

class GpuSimulator {
 public:
  GpuSimulator(const DeviceSpec& dev, SimClock& clock)
      : dev_(dev), clock_(clock) {}

  const DeviceSpec& device() const { return dev_; }
  SimClock& clock() { return clock_; }

  /// Launches `num_groups * group_size` work items. The body may rely on
  /// sequential execution *within* a work-group (the simulator runs the
  /// items of one group on one host thread, in local-id order, like a
  /// barrier-free single-wavefront group), but groups run concurrently and
  /// must not race with each other.
  ///
  /// `cost` describes the launch for the timing model; its geometry fields
  /// (work_items / work_group_size) are filled in from the launch arguments.
  void launch(int64_t num_groups, int group_size,
              const std::function<void(const WorkItem&)>& body,
              KernelLaunch cost);

  /// Convenience: a 1-work-item-per-element launch with the device's
  /// preferred group size.
  void launch_elementwise(const std::string& name, int64_t n,
                          const std::function<void(int64_t)>& body,
                          int64_t flops_per_elem, int64_t bytes_per_elem);

 private:
  const DeviceSpec& dev_;
  SimClock& clock_;
};

}  // namespace igc::sim
