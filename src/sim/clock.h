// Simulated clock: accumulates the latency of every kernel launch and copy,
// and keeps a per-event trace for the benchmark reports.
//
// Also defines the device *lanes* of the heterogeneous platform (GPU queue,
// companion-CPU queue, copy engine) and a LaneSchedule that merges per-node
// charges along the critical path — the wavefront executor's time model,
// where independent CPU-fallback and GPU work overlap instead of summing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/device_spec.h"
#include "sim/timing_model.h"

namespace igc::sim {

/// Execution lanes of one heterogeneous platform. Work within a lane
/// serializes (one in-order queue per device engine, as with a single
/// OpenCL/CUDA stream); work across lanes overlaps freely.
enum class Lane { kGpu = 0, kCpu = 1, kCopy = 2 };
inline constexpr int kNumLanes = 3;

inline std::string_view lane_name(Lane l) {
  switch (l) {
    case Lane::kGpu: return "gpu";
    case Lane::kCpu: return "cpu";
    case Lane::kCopy: return "copy";
  }
  return "?";
}

/// Cost category of a charge, matching the paper's breakdown tables:
/// convolutions, vision-specific operators (Sec. 3.1), host<->device
/// copies, operators fallen back to the companion CPU (Sec. 3.1.2), and
/// everything else.
enum class OpCategory { kConv = 0, kVision, kCopy, kFallback, kOther };
inline constexpr int kNumCategories = 5;

inline std::string_view category_name(OpCategory c) {
  switch (c) {
    case OpCategory::kConv: return "conv";
    case OpCategory::kVision: return "vision";
    case OpCategory::kCopy: return "copy";
    case OpCategory::kFallback: return "fallback";
    case OpCategory::kOther: return "other";
  }
  return "?";
}

struct ClockEvent {
  std::string name;
  double ms = 0.0;
  /// Lane the charge serializes on, the owning node's cost category, and the
  /// bytes the charge moves (DRAM traffic for kernels, transfer size for
  /// copies). Default-initialized, so `{name, ms}` construction keeps
  /// working for callers that predate these fields — but audit such call
  /// sites: a default-tagged event lands on the GPU lane in the "other"
  /// category, which misattributes per-lane counter rollups.
  Lane lane = Lane::kGpu;
  OpCategory category = OpCategory::kOther;
  int64_t bytes = 0;
  /// Per-launch hardware counters (counters.ms == ms for charges produced
  /// by SimClock; zero-initialized for hand-built events).
  KernelCounters counters;
};

class SimClock {
 public:
  /// Tags stamped onto subsequent events: the lane/category of the node
  /// whose charges this clock is recording. Per-node clocks set them once
  /// before dispatching the node, so sub-charges (layout transforms, the
  /// GPU simulator's launches) inherit the node's attribution.
  void set_tags(Lane lane, OpCategory category) {
    lane_ = lane;
    category_ = category;
  }

  /// Charges the latency of `k` on `dev` and records a trace event carrying
  /// the launch's counter record.
  double charge(const DeviceSpec& dev, const KernelLaunch& k) {
    return charge_on(lane_, dev, k);
  }

  /// charge() with an explicit lane: for GPU kernels issued on behalf of a
  /// node whose own work runs elsewhere (layout transforms feeding a
  /// CPU-placed consumer stay GPU-lane charges).
  double charge_on(Lane lane, const DeviceSpec& dev, const KernelLaunch& k) {
    const KernelCounters c = estimate_launch(dev, k);
    total_ms_ += c.ms;
    events_.push_back({k.name, c.ms, lane, category_,
                       k.dram_read_bytes + k.dram_write_bytes, c});
    return c.ms;
  }

  /// Charges a section on the companion CPU (Amdahl model). Always lands on
  /// the CPU lane, whatever the current tags.
  double charge_cpu(const DeviceSpec& cpu, int64_t flops, int64_t bytes,
                    double parallel_fraction, const std::string& name) {
    const KernelCounters c = cpu_counters(cpu, flops, bytes, parallel_fraction);
    total_ms_ += c.ms;
    events_.push_back({name, c.ms, Lane::kCpu, category_, bytes, c});
    return c.ms;
  }

  /// Charges a host<->device copy. Copies always serialize on the copy
  /// engine and count toward the copy category, whatever the current tags.
  double charge_copy(const DeviceSpec& dev, int64_t bytes,
                     const std::string& name = "device_copy") {
    const KernelCounters c = copy_counters(dev, bytes);
    total_ms_ += c.ms;
    events_.push_back({name, c.ms, Lane::kCopy, OpCategory::kCopy, bytes, c});
    return c.ms;
  }

  /// Charges a fixed amount (single-lane sequential sections whose cost was
  /// computed outside the roofline model). The charge is opaque to the
  /// counter layer: it books as a fully-serialized, latency-bound section.
  void charge_fixed(double ms, const std::string& name) {
    total_ms_ += ms;
    KernelCounters c;
    c.launches = 1;
    c.ms = ms;
    c.overhead_ms = ms;
    c.occupancy = 1.0;
    c.bound = BoundKind::kLatency;
    events_.push_back({name, ms, lane_, category_, 0, c});
  }

  double total_ms() const { return total_ms_; }
  const std::vector<ClockEvent>& events() const { return events_; }
  void reset() {
    total_ms_ = 0.0;
    events_.clear();
  }

 private:
  double total_ms_ = 0.0;
  Lane lane_ = Lane::kGpu;
  OpCategory category_ = OpCategory::kOther;
  std::vector<ClockEvent> events_;
};

/// Deterministic list scheduler over the platform lanes: nodes are offered
/// in a fixed (topological) order, each starting when both its dependencies
/// have finished and its lane is free. The resulting makespan is the
/// simulated wavefront latency; the serial sum of durations is the
/// sequential executor's latency.
class LaneSchedule {
 public:
  /// Schedules a segment of `duration_ms` on `lane`, not starting before
  /// `ready_ms`. Returns the finish time.
  double schedule(Lane lane, double ready_ms, double duration_ms) {
    double& free_at = lane_free_[static_cast<int>(lane)];
    const double start = std::max(free_at, ready_ms);
    free_at = start + duration_ms;
    return free_at;
  }

  /// Time at which `lane` next becomes free.
  double lane_free_ms(Lane lane) const {
    return lane_free_[static_cast<int>(lane)];
  }

  /// Finish time of the last segment across all lanes.
  double makespan_ms() const {
    double m = 0.0;
    for (double t : lane_free_) m = std::max(m, t);
    return m;
  }

 private:
  double lane_free_[kNumLanes] = {0.0, 0.0, 0.0};
};

}  // namespace igc::sim
