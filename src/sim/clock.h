// Simulated clock: accumulates the latency of every kernel launch and copy,
// and keeps a per-event trace for the benchmark reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device_spec.h"
#include "sim/timing_model.h"

namespace igc::sim {

struct ClockEvent {
  std::string name;
  double ms = 0.0;
};

class SimClock {
 public:
  /// Charges the latency of `k` on `dev` and records a trace event.
  double charge(const DeviceSpec& dev, const KernelLaunch& k) {
    const double ms = estimate_latency_ms(dev, k);
    total_ms_ += ms;
    events_.push_back({k.name, ms});
    return ms;
  }

  /// Charges a host<->device copy.
  double charge_copy(const DeviceSpec& dev, int64_t bytes,
                     const std::string& name = "device_copy") {
    const double ms = copy_latency_ms(dev, bytes);
    total_ms_ += ms;
    events_.push_back({name, ms});
    return ms;
  }

  /// Charges a fixed amount (used by CPU-side sequential sections).
  void charge_fixed(double ms, const std::string& name) {
    total_ms_ += ms;
    events_.push_back({name, ms});
  }

  double total_ms() const { return total_ms_; }
  const std::vector<ClockEvent>& events() const { return events_; }
  void reset() {
    total_ms_ = 0.0;
    events_.clear();
  }

 private:
  double total_ms_ = 0.0;
  std::vector<ClockEvent> events_;
};

}  // namespace igc::sim
