// Analytic latency model for simulated kernel launches.
//
// This replaces the wall clock of the paper's physical devices. Each kernel
// launch is summarized as a KernelLaunch cost descriptor; estimate_launch
// applies a roofline model (compute vs DRAM bound) modulated by the schedule-
// dependent quality factors the paper's optimizations manipulate: occupancy,
// SIMD utilization, register-tile efficiency, branch divergence, and global
// synchronization count — and returns not just the latency but the full
// KernelCounters record a hardware profiler would report for the launch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>

#include "sim/device_spec.h"

namespace igc::sim {

/// Cost summary of one kernel launch.
struct KernelLaunch {
  std::string name;
  /// Useful floating-point operations (multiply-add counts as 2).
  int64_t flops = 0;
  /// DRAM traffic after accounting for on-chip reuse (registers/caches).
  int64_t dram_read_bytes = 0;
  int64_t dram_write_bytes = 0;
  /// Total work items launched and work-group size.
  int64_t work_items = 1;
  int work_group_size = 1;
  /// Fraction of peak ALU throughput the inner loop sustains, before
  /// occupancy effects (vectorization match, unrolling, register tiling).
  double compute_efficiency = 1.0;
  /// Serialization multiplier from branch divergence (>= 1).
  double divergence_factor = 1.0;
  /// Number of device-wide synchronizations (each costs a kernel relaunch).
  int num_global_syncs = 0;
};

/// Which roofline term dominated a charge: ALU throughput, DRAM bandwidth,
/// or fixed launch/sync overhead (the relaunch tax of Sec. 3.2 — dominant
/// only for tiny kernels).
enum class BoundKind { kCompute = 0, kBandwidth = 1, kLatency = 2 };
inline constexpr int kNumBoundKinds = 3;

inline std::string_view bound_name(BoundKind b) {
  switch (b) {
    case BoundKind::kCompute: return "compute";
    case BoundKind::kBandwidth: return "bandwidth";
    case BoundKind::kLatency: return "latency";
  }
  return "?";
}

/// The per-launch record a hardware profiler would report, derived from the
/// same arithmetic that produces the latency (so the two can never drift
/// apart). Also used as an additive aggregate: merge() sums the work and
/// time terms and keeps a time-weighted occupancy, so node- and run-level
/// rollups are just folds over the launch records.
struct KernelCounters {
  int64_t launches = 0;
  int64_t flops = 0;
  int64_t dram_bytes = 0;  // read + write DRAM traffic
  /// Total charged time and its roofline decomposition. ms is the charge
  /// (max(compute, memory) roofline term + overhead); compute_ms/memory_ms
  /// are the two candidate terms themselves, so the dominant one plus
  /// overhead_ms reproduces ms.
  double ms = 0.0;
  double compute_ms = 0.0;     // flops / achievable rate, incl. divergence
  double memory_ms = 0.0;      // dram_bytes / bandwidth
  double divergence_ms = 0.0;  // extra serialization inside compute_ms
  double overhead_ms = 0.0;    // kernel launch + global syncs
  /// Time-weighted mean launch occupancy, in (0, 1] (1.0 for charges with
  /// no launch geometry: copies, CPU sections, fixed charges).
  double occupancy = 0.0;
  /// The dominating roofline term (recomputed from the sums on merge).
  BoundKind bound = BoundKind::kLatency;

  double achieved_gflops() const {
    return ms > 0.0 ? static_cast<double>(flops) / (ms * 1e6) : 0.0;
  }
  double achieved_gbps() const {
    return ms > 0.0 ? static_cast<double>(dram_bytes) / (ms * 1e6) : 0.0;
  }
  /// Flops per DRAM byte — the roofline x-axis.
  double arithmetic_intensity() const {
    return dram_bytes > 0
               ? static_cast<double>(flops) / static_cast<double>(dram_bytes)
               : 0.0;
  }

  /// Classification rule shared by per-launch records and merged
  /// aggregates: overhead dominating the winning roofline term means the
  /// charge is latency-bound; otherwise whichever of compute/memory won.
  static BoundKind classify(double compute_ms, double memory_ms,
                            double overhead_ms) {
    const double roof = compute_ms >= memory_ms ? compute_ms : memory_ms;
    if (overhead_ms > roof) return BoundKind::kLatency;
    return compute_ms >= memory_ms ? BoundKind::kCompute
                                   : BoundKind::kBandwidth;
  }

  /// Folds `o` into this aggregate.
  void merge(const KernelCounters& o) {
    const double t = ms + o.ms;
    occupancy = t > 0.0 ? (occupancy * ms + o.occupancy * o.ms) / t
                        : std::max(occupancy, o.occupancy);
    launches += o.launches;
    flops += o.flops;
    dram_bytes += o.dram_bytes;
    ms = t;
    compute_ms += o.compute_ms;
    memory_ms += o.memory_ms;
    divergence_ms += o.divergence_ms;
    overhead_ms += o.overhead_ms;
    bound = classify(compute_ms, memory_ms, overhead_ms);
  }
};

/// Fraction of the device's lanes kept busy by this launch geometry.
double occupancy(const DeviceSpec& dev, int64_t work_items, int work_group_size);

/// Full counter record (including the latency, in .ms) of one launch.
KernelCounters estimate_launch(const DeviceSpec& dev, const KernelLaunch& k);

/// Latency of one launch in milliseconds (== estimate_launch(dev, k).ms).
double estimate_latency_ms(const DeviceSpec& dev, const KernelLaunch& k);

/// Counter record of a host<->device copy of `bytes` bytes. Integrated GPUs
/// share DRAM with the CPU, so this is bandwidth-bound with a small fixed
/// cost — the reason the paper's CPU fallback is nearly free (Sec. 3.1.2).
KernelCounters copy_counters(const DeviceSpec& dev, int64_t bytes);
double copy_latency_ms(const DeviceSpec& dev, int64_t bytes);

/// Counter record of running `flops` of work touching `bytes` of memory on
/// the companion CPU, with `parallel_fraction` of the work parallelizable
/// across its cores (Amdahl). Used for fallback ops (Sec. 3.1.2) and for the
/// untuned-CPU comparison points.
KernelCounters cpu_counters(const DeviceSpec& cpu, int64_t flops,
                            int64_t bytes, double parallel_fraction);
double cpu_latency_ms(const DeviceSpec& cpu, int64_t flops, int64_t bytes,
                      double parallel_fraction);

}  // namespace igc::sim
