// Analytic latency model for simulated kernel launches.
//
// This replaces the wall clock of the paper's physical devices. Each kernel
// launch is summarized as a KernelLaunch cost descriptor; estimate_latency_ms
// applies a roofline model (compute vs DRAM bound) modulated by the schedule-
// dependent quality factors the paper's optimizations manipulate: occupancy,
// SIMD utilization, register-tile efficiency, branch divergence, and global
// synchronization count.
#pragma once

#include <cstdint>
#include <string>

#include "sim/device_spec.h"

namespace igc::sim {

/// Cost summary of one kernel launch.
struct KernelLaunch {
  std::string name;
  /// Useful floating-point operations (multiply-add counts as 2).
  int64_t flops = 0;
  /// DRAM traffic after accounting for on-chip reuse (registers/caches).
  int64_t dram_read_bytes = 0;
  int64_t dram_write_bytes = 0;
  /// Total work items launched and work-group size.
  int64_t work_items = 1;
  int work_group_size = 1;
  /// Fraction of peak ALU throughput the inner loop sustains, before
  /// occupancy effects (vectorization match, unrolling, register tiling).
  double compute_efficiency = 1.0;
  /// Serialization multiplier from branch divergence (>= 1).
  double divergence_factor = 1.0;
  /// Number of device-wide synchronizations (each costs a kernel relaunch).
  int num_global_syncs = 0;
};

/// Fraction of the device's lanes kept busy by this launch geometry.
double occupancy(const DeviceSpec& dev, int64_t work_items, int work_group_size);

/// Latency of one launch in milliseconds.
double estimate_latency_ms(const DeviceSpec& dev, const KernelLaunch& k);

/// Latency of a host<->device copy of `bytes` bytes. Integrated GPUs share
/// DRAM with the CPU, so this is bandwidth-bound with a small fixed cost —
/// the reason the paper's CPU fallback is nearly free (Sec. 3.1.2).
double copy_latency_ms(const DeviceSpec& dev, int64_t bytes);

/// Latency of running `flops` of work touching `bytes` of memory on the
/// companion CPU, with `parallel_fraction` of the work parallelizable across
/// its cores (Amdahl). Used for fallback ops (Sec. 3.1.2) and for the
/// untuned-CPU comparison points.
double cpu_latency_ms(const DeviceSpec& cpu, int64_t flops, int64_t bytes,
                      double parallel_fraction);

}  // namespace igc::sim
