#include "sim/device_spec.h"

namespace igc::sim {
namespace {

DeviceSpec intel_hd505() {
  DeviceSpec d;
  d.name = "intel-hd505";
  d.vendor = Vendor::kIntel;
  d.api = DeviceApi::kOpenCL;
  d.compute_units = 18;        // 18 EUs (Gen9 GT1)
  d.simd_width = 8;            // 2x SIMD-4 FPUs, fused as SIMD-8 fp32
  d.hw_threads_per_cu = 7;     // 7 hardware threads per EU
  d.has_subgroups = true;      // Intel OpenCL subgroup extension
  d.has_shared_local_mem = true;
  d.register_bytes_per_thread = 4096;  // 4KB GRF per hardware thread
  d.clock_ghz = 0.70;
  d.peak_gflops = 201.6;       // 18 EU * 8 lanes * 2 (FMA) * 0.7 GHz
  d.dram_bandwidth_gbps = 12.8;  // LPDDR4 shared with CPU
  d.kernel_launch_us = 35.0;
  d.global_sync_us = 40.0;
  d.efficiency_scale = 0.26;
  d.serial_lane_mflops = 3.5;
  return d;
}

DeviceSpec atom_e3930() {
  DeviceSpec d;
  d.name = "atom-x5-e3930";
  d.vendor = Vendor::kIntelCpu;
  d.api = DeviceApi::kCpu;
  d.is_gpu = false;
  d.compute_units = 2;   // 2 Goldmont cores
  d.simd_width = 4;      // SSE4 fp32
  d.hw_threads_per_cu = 1;
  d.has_subgroups = false;
  d.register_bytes_per_thread = 2048;
  d.clock_ghz = 1.3;
  d.peak_gflops = 39.0;  // 5.16x below the GPU, matching the paper's ratio
  d.dram_bandwidth_gbps = 12.8;
  d.kernel_launch_us = 2.0;
  d.global_sync_us = 1.0;
  d.efficiency_scale = 0.40;
  return d;
}

DeviceSpec mali_t860() {
  DeviceSpec d;
  d.name = "mali-t860mp4";
  d.vendor = Vendor::kArmMali;
  d.api = DeviceApi::kOpenCL;
  d.compute_units = 4;    // 4 shader cores (MP4, Midgard 4th gen)
  d.simd_width = 4;       // vec4 ALUs
  d.hw_threads_per_cu = 8;
  d.has_subgroups = false;
  d.has_shared_local_mem = false;  // Midgard has no dedicated SLM
  d.register_bytes_per_thread = 1024;
  d.clock_ghz = 0.65;
  d.peak_gflops = 83.2;  // 4 cores * 2 pipes * vec4 * FMA * 0.65 GHz
  d.dram_bandwidth_gbps = 9.6;
  d.kernel_launch_us = 60.0;   // Midgard job-manager dispatch is slow
  d.global_sync_us = 80.0;
  d.efficiency_scale = 0.34;
  d.serial_lane_mflops = 0.85;
  return d;
}

DeviceSpec rk3399_cpu() {
  DeviceSpec d;
  d.name = "rk3399-a72";
  d.vendor = Vendor::kArmCpu;
  d.api = DeviceApi::kCpu;
  d.is_gpu = false;
  d.compute_units = 2;  // the 2 big A72 cores dominate
  d.simd_width = 4;     // NEON fp32
  d.hw_threads_per_cu = 1;
  d.register_bytes_per_thread = 2048;
  d.clock_ghz = 1.8;
  d.peak_gflops = 12.3;  // 6.77x below the GPU, matching the paper's ratio
  d.dram_bandwidth_gbps = 9.6;
  d.kernel_launch_us = 2.0;
  d.global_sync_us = 1.0;
  d.efficiency_scale = 0.45;
  return d;
}

DeviceSpec nano_maxwell() {
  DeviceSpec d;
  d.name = "nano-maxwell";
  d.vendor = Vendor::kNvidia;
  d.api = DeviceApi::kCuda;
  d.compute_units = 1;      // 1 SM with 128 CUDA cores
  d.simd_width = 32;        // warp
  d.hw_threads_per_cu = 64; // resident warps per SM (Maxwell: 64)
  d.has_subgroups = false;  // warp shuffle exists but we model CUDA natively
  d.has_shared_local_mem = true;
  d.register_bytes_per_thread = 1024;
  d.clock_ghz = 0.92;
  d.peak_gflops = 235.8;  // 128 cores * 2 (FMA) * 0.921 GHz
  d.dram_bandwidth_gbps = 25.6;
  d.kernel_launch_us = 15.0;
  d.global_sync_us = 20.0;
  d.efficiency_scale = 0.45;  // CUDA toolchain reaches a higher fraction of peak
  d.serial_lane_mflops = 11.0;
  return d;
}

DeviceSpec nano_a57() {
  DeviceSpec d;
  d.name = "nano-a57";
  d.vendor = Vendor::kArmCpu;
  d.api = DeviceApi::kCpu;
  d.is_gpu = false;
  d.compute_units = 4;
  d.simd_width = 4;
  d.hw_threads_per_cu = 1;
  d.register_bytes_per_thread = 2048;
  d.clock_ghz = 1.43;
  d.peak_gflops = 95.1;  // 2.48x below the GPU, matching the paper's ratio
  d.dram_bandwidth_gbps = 25.6;
  d.kernel_launch_us = 2.0;
  d.global_sync_us = 1.0;
  d.efficiency_scale = 0.35;
  return d;
}

std::vector<Platform> make_platforms() {
  return {
      Platform{"aws-deeplens", intel_hd505(), atom_e3930()},
      Platform{"acer-aisage", mali_t860(), rk3399_cpu()},
      Platform{"jetson-nano", nano_maxwell(), nano_a57()},
  };
}

}  // namespace

const std::vector<Platform>& all_platforms() {
  static const std::vector<Platform> platforms = make_platforms();
  return platforms;
}

const Platform& platform(PlatformId id) {
  return all_platforms()[static_cast<size_t>(id)];
}

const Platform& platform_by_name(std::string_view name) {
  for (const Platform& p : all_platforms()) {
    if (p.name == name) return p;
  }
  IGC_CHECK(false) << "unknown platform: " << name;
  throw Error("unreachable");
}

}  // namespace igc::sim
