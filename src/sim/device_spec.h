// Device models for the simulated integrated GPUs and their companion CPUs.
//
// The paper evaluates on three edge platforms:
//   * AWS DeepLens   — Intel Atom x5-E3930 + Intel HD Graphics 505 (Gen9)
//   * Acer aiSage    — Rockchip RK3399 (2xA72+4xA53) + ARM Mali T-860 MP4
//   * Jetson Nano    — 4x Cortex-A57 + 128-core Maxwell GPU
//
// Each DeviceSpec captures the microarchitectural parameters the paper's
// optimizations interact with: compute-unit count, SIMD width, hardware
// threads, subgroup support (Intel only), shared local memory (absent on
// Mali Midgard), register file budget, clock, DRAM bandwidth, and kernel
// launch / global synchronization overheads.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/error.h"

namespace igc::sim {

/// Programming interface exposed by a device; selects the codegen backend.
enum class DeviceApi { kOpenCL, kCuda, kCpu };

enum class Vendor { kIntel, kArmMali, kNvidia, kIntelCpu, kArmCpu };

struct DeviceSpec {
  std::string name;
  Vendor vendor = Vendor::kIntel;
  DeviceApi api = DeviceApi::kOpenCL;
  bool is_gpu = true;

  /// Execution units (Intel), shader cores (Mali), or SMs (Nvidia).
  int compute_units = 1;
  /// Native SIMD lanes per hardware thread (warp width on Nvidia).
  int simd_width = 8;
  /// Hardware threads resident per compute unit.
  int hw_threads_per_cu = 1;
  /// Intel subgroup extension: work items of one hardware thread share GRFs.
  bool has_subgroups = false;
  /// Shared local memory per work-group (absent on Mali Midgard).
  bool has_shared_local_mem = true;
  /// Register file bytes available to one hardware thread (Intel GRF: 4KB).
  int register_bytes_per_thread = 1024;

  double clock_ghz = 1.0;
  double peak_gflops = 100.0;
  double dram_bandwidth_gbps = 10.0;
  /// Fixed per-kernel-launch overhead.
  double kernel_launch_us = 20.0;
  /// Cost of one device-wide synchronization (kernel relaunch boundary).
  double global_sync_us = 30.0;
  /// Calibration scalar: fraction of peak a well-tuned dense kernel reaches.
  double efficiency_scale = 1.0;
  /// Effective throughput (MFLOP/s) of ONE lane executing serial, divergent,
  /// uncoalesced code — i.e. a single GPU thread chasing pointers at DRAM
  /// latency. Governs the naive vision-op mappings of Sec. 3.1 ("Before" in
  /// Table 4): Mali Midgard is worst (no cache backing, slow job manager),
  /// Maxwell best (bigger caches, higher clock).
  double serial_lane_mflops = 5.0;

  int64_t total_hw_threads() const {
    return static_cast<int64_t>(compute_units) * hw_threads_per_cu;
  }
  int64_t total_lanes() const { return total_hw_threads() * simd_width; }
};

/// A platform pairs the integrated GPU with its companion CPU (fallback
/// target, Sec. 3.1.2) and names the paper's test device.
struct Platform {
  std::string name;  // "aws-deeplens" | "acer-aisage" | "jetson-nano"
  DeviceSpec gpu;
  DeviceSpec cpu;
};

/// Returns the three evaluation platforms. Index with PlatformId.
enum class PlatformId { kDeepLens = 0, kAiSage = 1, kJetsonNano = 2 };

const Platform& platform(PlatformId id);
const std::vector<Platform>& all_platforms();
const Platform& platform_by_name(std::string_view name);

}  // namespace igc::sim
