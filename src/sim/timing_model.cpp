#include "sim/timing_model.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace igc::sim {

double occupancy(const DeviceSpec& dev, int64_t work_items, int work_group_size) {
  IGC_CHECK_GT(work_items, 0);
  IGC_CHECK_GT(work_group_size, 0);
  // Work-groups are scheduled whole onto compute units; a group smaller than
  // the SIMD width wastes lanes, and fewer groups than compute units leaves
  // units idle.
  const int64_t num_groups = (work_items + work_group_size - 1) / work_group_size;
  const double unit_fill =
      std::min(1.0, static_cast<double>(num_groups) /
                        static_cast<double>(dev.compute_units));
  const double lane_fill =
      std::min(1.0, static_cast<double>(work_group_size) /
                        static_cast<double>(dev.simd_width));
  // Latency hiding needs several resident hardware threads per unit.
  const double threads_per_unit =
      static_cast<double>(work_items) /
      (static_cast<double>(dev.compute_units) * dev.simd_width);
  const double latency_hiding =
      std::min(1.0, 0.25 + 0.75 * threads_per_unit /
                               static_cast<double>(dev.hw_threads_per_cu));
  return unit_fill * lane_fill * latency_hiding;
}

KernelCounters estimate_launch(const DeviceSpec& dev, const KernelLaunch& k) {
  const double occ = occupancy(dev, k.work_items, k.work_group_size);
  const double eff = std::max(
      1e-4, k.compute_efficiency * occ * dev.efficiency_scale);
  const double compute_s = static_cast<double>(k.flops) /
                           (dev.peak_gflops * 1e9 * eff) * k.divergence_factor;
  const double mem_s =
      static_cast<double>(k.dram_read_bytes + k.dram_write_bytes) /
      (dev.dram_bandwidth_gbps * 1e9);
  const double overhead_s =
      (dev.kernel_launch_us + dev.global_sync_us * k.num_global_syncs) * 1e-6;

  KernelCounters c;
  c.launches = 1;
  c.flops = k.flops;
  c.dram_bytes = k.dram_read_bytes + k.dram_write_bytes;
  c.ms = (std::max(compute_s, mem_s) + overhead_s) * 1e3;
  c.compute_ms = compute_s * 1e3;
  c.memory_ms = mem_s * 1e3;
  // The part of compute_ms that divergence added on top of the converged
  // inner loop (divergence_factor >= 1, so this is >= 0).
  c.divergence_ms = k.divergence_factor > 0.0
                        ? c.compute_ms * (1.0 - 1.0 / k.divergence_factor)
                        : 0.0;
  c.overhead_ms = overhead_s * 1e3;
  c.occupancy = occ;
  c.bound = KernelCounters::classify(c.compute_ms, c.memory_ms, c.overhead_ms);
  return c;
}

double estimate_latency_ms(const DeviceSpec& dev, const KernelLaunch& k) {
  return estimate_launch(dev, k).ms;
}

KernelCounters cpu_counters(const DeviceSpec& cpu, int64_t flops,
                            int64_t bytes, double parallel_fraction) {
  IGC_CHECK(!cpu.is_gpu);
  parallel_fraction = std::clamp(parallel_fraction, 0.0, 1.0);
  const double per_core_gflops =
      cpu.peak_gflops / static_cast<double>(cpu.compute_units);
  const double rate = per_core_gflops * 1e9 * cpu.efficiency_scale;
  const double f = static_cast<double>(flops);
  const double compute_s =
      ((1.0 - parallel_fraction) * f +
       parallel_fraction * f / static_cast<double>(cpu.compute_units)) /
      std::max(rate, 1.0);
  const double mem_s =
      static_cast<double>(bytes) / (cpu.dram_bandwidth_gbps * 1e9);
  const double overhead_s = cpu.kernel_launch_us * 1e-6;

  KernelCounters c;
  c.launches = 1;
  c.flops = flops;
  c.dram_bytes = bytes;
  c.ms = (std::max(compute_s, mem_s) + overhead_s) * 1e3;
  c.compute_ms = compute_s * 1e3;
  c.memory_ms = mem_s * 1e3;
  c.overhead_ms = overhead_s * 1e3;
  // A CPU section has no launch geometry; the serial fraction is already in
  // compute_ms, so the engine itself counts as fully occupied.
  c.occupancy = 1.0;
  c.bound = KernelCounters::classify(c.compute_ms, c.memory_ms, c.overhead_ms);
  return c;
}

double cpu_latency_ms(const DeviceSpec& cpu, int64_t flops, int64_t bytes,
                      double parallel_fraction) {
  return cpu_counters(cpu, flops, bytes, parallel_fraction).ms;
}

KernelCounters copy_counters(const DeviceSpec& dev, int64_t bytes) {
  // Same-SoC shared DRAM: a copy is a memcpy through the memory controller.
  const double fixed_us = 8.0;
  const double xfer_s =
      static_cast<double>(bytes) / (dev.dram_bandwidth_gbps * 1e9);

  KernelCounters c;
  c.launches = 1;
  c.dram_bytes = bytes;
  c.ms = fixed_us * 1e-3 + xfer_s * 1e3;
  c.memory_ms = xfer_s * 1e3;
  c.overhead_ms = fixed_us * 1e-3;
  c.occupancy = 1.0;
  c.bound = KernelCounters::classify(c.compute_ms, c.memory_ms, c.overhead_ms);
  return c;
}

double copy_latency_ms(const DeviceSpec& dev, int64_t bytes) {
  return copy_counters(dev, bytes).ms;
}

}  // namespace igc::sim
