// Dense host tensors with shared ownership.
//
// Tensors are the currency of the whole stack: graph edges, operator inputs
// and outputs, and model weights. Data always lives in host memory; the GPU
// simulator charges *time* for device traffic but computes on these buffers.
#pragma once

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "core/dtype.h"
#include "core/error.h"
#include "core/rng.h"
#include "core/shape.h"

namespace igc {

/// A reference-counted dense tensor. Copying a Tensor aliases the buffer;
/// use clone() for a deep copy.
class Tensor {
 public:
  Tensor() = default;
  Tensor(Shape shape, DType dtype);

  static Tensor zeros(Shape shape, DType dtype = DType::kFloat32);
  static Tensor full(Shape shape, float value);
  /// Uniform values in [lo, hi) from a caller-provided deterministic rng.
  static Tensor random_uniform(Shape shape, Rng& rng, float lo = -1.0f,
                               float hi = 1.0f);
  /// Gaussian values with the given std from a deterministic rng.
  static Tensor random_normal(Shape shape, Rng& rng, float stddev = 0.1f);
  static Tensor from_vector(Shape shape, const std::vector<float>& values);
  static Tensor from_vector_i32(Shape shape, const std::vector<int32_t>& values);
  /// Views caller-owned storage (e.g. a BufferArena slab) as a tensor.
  /// `capacity_bytes` is the usable size of `data`; it must fit the shape.
  static Tensor wrap(Shape shape, DType dtype, std::shared_ptr<char[]> data,
                     int64_t capacity_bytes);

  bool defined() const { return data_ != nullptr; }
  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  int64_t numel() const { return shape_.numel(); }
  int64_t nbytes() const { return numel() * dtype_bytes(dtype_); }

  float* data_f32() {
    IGC_CHECK(dtype_ == DType::kFloat32);
    return reinterpret_cast<float*>(data_.get());
  }
  const float* data_f32() const {
    IGC_CHECK(dtype_ == DType::kFloat32);
    return reinterpret_cast<const float*>(data_.get());
  }
  int32_t* data_i32() {
    IGC_CHECK(dtype_ == DType::kInt32);
    return reinterpret_cast<int32_t*>(data_.get());
  }
  const int32_t* data_i32() const {
    IGC_CHECK(dtype_ == DType::kInt32);
    return reinterpret_cast<const int32_t*>(data_.get());
  }
  void* raw_data() { return data_.get(); }
  const void* raw_data() const { return data_.get(); }

  std::span<float> span_f32() { return {data_f32(), static_cast<size_t>(numel())}; }
  std::span<const float> span_f32() const {
    return {data_f32(), static_cast<size_t>(numel())};
  }
  std::span<int32_t> span_i32() { return {data_i32(), static_cast<size_t>(numel())}; }
  std::span<const int32_t> span_i32() const {
    return {data_i32(), static_cast<size_t>(numel())};
  }

  /// Deep copy.
  Tensor clone() const;

  /// Same buffer viewed with a different shape (numel must match).
  Tensor reshape(Shape new_shape) const;

  /// Element access helpers for rank-4 tensors (the common conv case).
  float& at4(int64_t a, int64_t b, int64_t c, int64_t d) {
    return data_f32()[offset4(a, b, c, d)];
  }
  float at4(int64_t a, int64_t b, int64_t c, int64_t d) const {
    return data_f32()[offset4(a, b, c, d)];
  }

  /// Max absolute elementwise difference against another tensor of the same
  /// shape and dtype (float32 only).
  float max_abs_diff(const Tensor& other) const;

 private:
  int64_t offset4(int64_t a, int64_t b, int64_t c, int64_t d) const {
    IGC_DCHECK(shape_.ndim() == 4);
    return ((a * shape_[1] + b) * shape_[2] + c) * shape_[3] + d;
  }

  Shape shape_;
  DType dtype_ = DType::kFloat32;
  std::shared_ptr<char[]> data_;
};

}  // namespace igc
