// Paged, plan-backed buffer arena for graph execution.
//
// The memory planner (src/graph/memory_planner.h) proves how few distinct
// buffers a graph run needs; this arena maps each planned buffer id to a
// page run drawn from a PagePool (src/tensor/page_pool.h): the executor
// acquires a node's planned buffer, views it as a tensor, and releases it
// after the node's last consumer. Pages are allocated lazily on first
// acquire, so untouched buffers cost nothing.
//
// Two sharing regimes, selected by Options::cache_runs:
//   * cache_runs on (default, the slab-equivalent regime): a buffer keeps
//     its page run across release, so steady-state serving performs zero
//     pool traffic — exactly the old slab arena's behaviour, and the one a
//     model-wide arena uses.
//   * cache_runs off (serving contexts over a shared pool): release returns
//     pages to the pool immediately, so concurrent requests — across
//     workers and across tenants — recycle one physical page set instead of
//     each holding a private full-size slab.
//
// acquire_shared() aliases another in-use buffer's pages with a refcount
// (zero-copy Flatten/DeviceCopy); a later acquire of the source buffer sees
// the outstanding reference and takes fresh pages, so readers of the alias
// are never overwritten (copy-on-reacquire).
//
// Accounting invariant (the bit-identity contract with the old slab arena):
// in_use_bytes / peak_in_use_bytes / capacity_bytes are measured in *planned
// buffer bytes*, not page-rounded bytes, so every executor-visible number —
// peak_intermediate_bytes, arena_bytes, arena.high_water_bytes — matches the
// slab design exactly at any shape. Page-granular truth lives in the
// arena.page_* metrics and the PagePool stats.
//
// Thread safety: acquire/release are mutex-guarded so wavefront-concurrent
// nodes may call them freely. Two *runs* sharing one arena must still be
// externally serialized (the buffers themselves would alias). The mutex is
// recursive because a pool pressure hook may re-enter evict_idle() from
// this arena's own alloc path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/page_pool.h"
#include "tensor/tensor.h"

namespace igc {

class PagedArena {
 public:
  struct Options {
    /// Keep page runs mapped across release (see file comment).
    bool cache_runs = true;
  };

  /// Private-pool arena: one buffer per entry of `buffer_bytes`, pages drawn
  /// from an unbounded pool owned by this arena (the slab-compatible form).
  explicit PagedArena(std::vector<int64_t> buffer_bytes);

  /// Shared-pool arena: pages drawn from `pool` (never null), which may back
  /// any number of arenas. Serving contexts pass cache_runs = false so their
  /// pages return to the pool between requests.
  PagedArena(std::vector<int64_t> buffer_bytes,
             std::shared_ptr<PagePool> pool);
  PagedArena(std::vector<int64_t> buffer_bytes, std::shared_ptr<PagePool> pool,
             Options opts);

  ~PagedArena();

  PagedArena(const PagedArena&) = delete;
  PagedArena& operator=(const PagedArena&) = delete;

  /// Acquires buffer `buffer_id` viewed as a float32/int32 tensor of `shape`.
  /// `zero_fill` clears the pages first (needed only when the contents may be
  /// read before being fully written). The buffer must currently be free.
  /// The page run grows on demand if `shape` needs more than the planned
  /// bytes (data-dependent outputs), subject to the pool's page budget.
  Tensor acquire(int buffer_id, const Shape& shape, DType dtype,
                 bool zero_fill);

  /// Acquires `buffer_id` as a zero-copy alias of `src_buffer_id`'s pages
  /// (refcounted; src must be in use and its run must fit `shape`). Releasing
  /// either buffer drops one reference; the pages live until both are done.
  Tensor acquire_shared(int buffer_id, int src_buffer_id, const Shape& shape,
                        DType dtype);

  /// Returns `buffer_id` to the free pool. Releasing a buffer that is not in
  /// use (double release, or release before acquire) is a hard error.
  /// Tensors still viewing the pages keep the extent alive, but the arena
  /// may hand the pages to the next acquirer — callers release only after
  /// the last reader is done.
  void release(int buffer_id);

  /// Re-sizes every planned buffer for a new shape binding (same buffer
  /// count — the plan's buffer *assignment* is shape-independent). Requires
  /// no buffer in use; cached runs too small for their new size are dropped.
  void rebind(std::vector<int64_t> buffer_bytes);

  /// Drops cached idle page runs back to the pool (the eviction/pressure
  /// path; also called by the pool's pressure hook). Returns runs dropped.
  int evict_idle();

  int num_buffers() const { return static_cast<int>(bufs_.size()); }
  /// Sum of all planned buffer sizes (== the bound MemoryPlan total).
  int64_t capacity_bytes() const;
  /// Planned bytes of buffers currently acquired.
  int64_t in_use_bytes() const;
  /// High-water mark of in_use_bytes() since construction or reset_peak().
  int64_t peak_in_use_bytes() const;
  void reset_peak();
  /// Bytes of pages this arena currently holds (in-use + cached).
  int64_t page_bytes_held() const;
  /// Cached runs dropped by evict_idle() over this arena's lifetime.
  int64_t evictions() const;
  const std::shared_ptr<PagePool>& pool() const { return pool_; }

 private:
  struct Entry {
    int64_t bytes = 0;              // planned bytes (accounting unit)
    int64_t charged = 0;            // bytes charged while in use
    PagePool::PageRun run;          // empty until first acquire
    bool in_use = false;
    bool borrowed = false;          // run refcounts another entry's pages
  };

  void init(std::vector<int64_t> buffer_bytes);
  Entry& entry_locked(int buffer_id);
  Tensor wrap_run(const PagePool::PageRun& run, const Shape& shape,
                  DType dtype) const;

  mutable std::recursive_mutex mu_;
  std::shared_ptr<PagePool> pool_;
  Options opts_;
  std::vector<Entry> bufs_;
  int64_t capacity_bytes_ = 0;
  int64_t in_use_ = 0;
  int64_t peak_ = 0;
  int64_t evictions_ = 0;
  int hook_id_ = -1;
};

/// The arena every existing call site uses; the paged design keeps the whole
/// acquire/release surface (and its accounting) of the original slab arena.
using BufferArena = PagedArena;

}  // namespace igc
