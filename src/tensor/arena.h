// Plan-backed buffer arena for graph execution.
//
// The memory planner (src/graph/memory_planner.h) proves how few distinct
// buffers a graph run needs; this arena owns exactly those buffers so that
// steady-state serving does zero intermediate heap allocations: the executor
// acquires a node's planned buffer, views it as a tensor, and releases it
// after the node's last consumer. The arena outlives individual runs — a
// CompiledModel keeps one and reuses it across repeated run() calls.
//
// Thread safety: acquire/release are mutex-guarded so wavefront-concurrent
// nodes may call them freely. Two *runs* sharing one arena must still be
// externally serialized (the buffers themselves would alias).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tensor/tensor.h"

namespace igc {

class BufferArena {
 public:
  /// One slab per planned buffer, sized `buffer_bytes[i]`. Slabs are
  /// allocated lazily on first acquire, so untouched buffers cost nothing.
  explicit BufferArena(std::vector<int64_t> buffer_bytes);

  /// Acquires buffer `buffer_id` viewed as a float32/int32 tensor of `shape`.
  /// `zero_fill` clears the slab first (needed only when the contents may be
  /// read before being fully written). The buffer must currently be free.
  Tensor acquire(int buffer_id, const Shape& shape, DType dtype,
                 bool zero_fill);

  /// Returns `buffer_id` to the free pool. Tensors still viewing the slab
  /// keep the storage alive but the arena may hand it to the next acquirer —
  /// callers release only after the last reader is done.
  void release(int buffer_id);

  int num_buffers() const { return static_cast<int>(bufs_.size()); }
  /// Sum of all planned slab sizes (== MemoryPlan::total_bytes()).
  int64_t capacity_bytes() const { return capacity_bytes_; }
  /// Bytes of slabs currently acquired.
  int64_t in_use_bytes() const;
  /// High-water mark of in_use_bytes() since construction or reset_peak().
  int64_t peak_in_use_bytes() const;
  void reset_peak();

 private:
  struct Slab {
    std::shared_ptr<char[]> data;  // null until first acquire
    int64_t bytes = 0;
    bool in_use = false;
  };

  mutable std::mutex mu_;
  std::vector<Slab> bufs_;
  int64_t capacity_bytes_ = 0;
  int64_t in_use_ = 0;
  int64_t peak_ = 0;
};

}  // namespace igc
