#include "tensor/page_pool.h"

#include <algorithm>

#include "core/error.h"
#include "obs/metrics.h"

namespace igc {
namespace {

// Process-wide page instruments shared by every pool: the arena.page_*
// family answers "how much physical paging traffic did this process see".
obs::Counter& page_alloc_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("arena.page_allocs");
  return c;
}
obs::Counter& page_free_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("arena.page_frees");
  return c;
}
obs::Gauge& pages_in_use_gauge() {
  static auto& g = obs::MetricsRegistry::global().gauge("arena.pages_in_use");
  return g;
}
obs::Gauge& page_bytes_gauge() {
  static auto& g = obs::MetricsRegistry::global().gauge("arena.page_bytes");
  return g;
}

}  // namespace

PagePool::PagePool() : PagePool(Options{}) {}

PagePool::PagePool(Options opts) : opts_(opts) {
  IGC_CHECK_GT(opts_.page_bytes, 0) << "PagePool: page_bytes must be positive";
  IGC_CHECK_GE(opts_.max_bytes, 0);
  IGC_CHECK_GT(opts_.min_extent_pages, 0);
}

PagePool::~PagePool() = default;

PagePool::PageRun PagePool::try_alloc_locked(int32_t pages_needed) {
  // First-fit over the existing extents' free runs.
  for (size_t e = 0; e < extents_.size(); ++e) {
    Extent& ext = extents_[e];
    for (auto it = ext.free_runs.begin(); it != ext.free_runs.end(); ++it) {
      if (it->second < pages_needed) continue;
      PageRun run;
      run.extent = static_cast<int32_t>(e);
      run.first_page = it->first;
      run.num_pages = pages_needed;
      const int32_t leftover = it->second - pages_needed;
      const int32_t leftover_start = it->first + pages_needed;
      ext.free_runs.erase(it);
      if (leftover > 0) ext.free_runs.emplace(leftover_start, leftover);
      return run;
    }
  }
  // No hole fits: map a new extent.
  Extent ext;
  ext.num_pages = std::max<int64_t>(pages_needed, opts_.min_extent_pages);
  ext.data = std::shared_ptr<char[]>(
      new char[static_cast<size_t>(ext.num_pages * opts_.page_bytes)]);
  PageRun run;
  run.extent = static_cast<int32_t>(extents_.size());
  run.first_page = 0;
  run.num_pages = pages_needed;
  if (ext.num_pages > pages_needed) {
    ext.free_runs.emplace(pages_needed,
                          static_cast<int32_t>(ext.num_pages - pages_needed));
  }
  extents_.push_back(std::move(ext));
  return run;
}

void PagePool::note_usage_locked() {
  const int64_t bytes = pages_in_use_ * opts_.page_bytes;
  peak_bytes_ = std::max(peak_bytes_, bytes);
  pages_in_use_gauge().set(pages_in_use_);
  page_bytes_gauge().set(bytes);
}

PagePool::PageRun PagePool::alloc(int64_t min_bytes) {
  IGC_CHECK_GE(min_bytes, 0);
  const int64_t pages64 =
      std::max<int64_t>(1, (min_bytes + opts_.page_bytes - 1) / opts_.page_bytes);
  IGC_CHECK_LE(pages64, INT32_MAX) << "PagePool: allocation too large";
  const int32_t pages_needed = static_cast<int32_t>(pages64);

  // Budget check, with one unlocked pressure-eviction round: hooks release
  // cached runs (calling back into release()), so they must run without mu_.
  if (opts_.max_bytes > 0) {
    bool over;
    std::vector<std::function<void()>> hooks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      over = (pages_in_use_ + pages_needed) * opts_.page_bytes > opts_.max_bytes;
      if (over) {
        hooks.reserve(hooks_.size());
        for (auto& [id, h] : hooks_) hooks.push_back(h);
      }
    }
    if (over) {
      for (auto& h : hooks) h();
      std::lock_guard<std::mutex> lock(mu_);
      IGC_CHECK_LE((pages_in_use_ + pages_needed) * opts_.page_bytes,
                   opts_.max_bytes)
          << "PagePool: page budget exhausted — " << pages_needed
          << " pages requested with "
          << (opts_.max_bytes / opts_.page_bytes - pages_in_use_)
          << " pages of budget left after eviction (max_bytes="
          << opts_.max_bytes << ")";
    }
  }

  PageRun run;
  {
    std::lock_guard<std::mutex> lock(mu_);
    run = try_alloc_locked(pages_needed);
    live_[run_key(run)] = LiveRun{pages_needed, 1};
    pages_in_use_ += pages_needed;
    total_allocs_ += pages_needed;
    note_usage_locked();
  }
  page_alloc_counter().add(pages_needed);
  return run;
}

void PagePool::add_ref(const PageRun& run) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(run_key(run));
  IGC_CHECK(it != live_.end()) << "PagePool: add_ref on a non-live run";
  ++it->second.refs;
}

void PagePool::release(const PageRun& run) {
  int32_t freed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(run_key(run));
    IGC_CHECK(it != live_.end()) << "PagePool: release of a non-live run";
    if (--it->second.refs > 0) return;
    freed = it->second.num_pages;
    live_.erase(it);
    pages_in_use_ -= freed;
    total_frees_ += freed;
    // Return the pages to the extent's free map, coalescing with neighbors.
    Extent& ext = extents_[static_cast<size_t>(run.extent)];
    int32_t start = run.first_page;
    int32_t count = freed;
    auto next = ext.free_runs.lower_bound(start);
    if (next != ext.free_runs.end() && next->first == start + count) {
      count += next->second;
      next = ext.free_runs.erase(next);
    }
    if (next != ext.free_runs.begin()) {
      auto prev = std::prev(next);
      if (prev->first + prev->second == start) {
        start = prev->first;
        count += prev->second;
        ext.free_runs.erase(prev);
      }
    }
    ext.free_runs.emplace(start, count);
    note_usage_locked();
  }
  page_free_counter().add(freed);
}

int PagePool::refcount(const PageRun& run) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(run_key(run));
  return it == live_.end() ? 0 : it->second.refs;
}

std::shared_ptr<char[]> PagePool::run_data(const PageRun& run) const {
  std::lock_guard<std::mutex> lock(mu_);
  IGC_CHECK_GE(run.extent, 0);
  IGC_CHECK_LT(run.extent, static_cast<int32_t>(extents_.size()));
  const Extent& ext = extents_[static_cast<size_t>(run.extent)];
  IGC_CHECK_LE(static_cast<int64_t>(run.first_page) + run.num_pages,
               ext.num_pages);
  return std::shared_ptr<char[]>(
      ext.data, ext.data.get() + run.first_page * opts_.page_bytes);
}

int PagePool::register_pressure_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  const int id = next_hook_id_++;
  hooks_.emplace(id, std::move(hook));
  return id;
}

void PagePool::unregister_pressure_hook(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  hooks_.erase(id);
}

int64_t PagePool::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_in_use_ * opts_.page_bytes;
}

int64_t PagePool::peak_bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_bytes_;
}

int64_t PagePool::pages_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_in_use_;
}

int64_t PagePool::extent_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const Extent& e : extents_) total += e.num_pages * opts_.page_bytes;
  return total;
}

int64_t PagePool::total_page_allocs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_allocs_;
}

int64_t PagePool::total_page_frees() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_frees_;
}

void PagePool::reset_peak() {
  std::lock_guard<std::mutex> lock(mu_);
  peak_bytes_ = pages_in_use_ * opts_.page_bytes;
}

}  // namespace igc
