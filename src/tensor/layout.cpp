#include "tensor/layout.h"

namespace igc {

Tensor nchw_to_nchwc(const Tensor& src, int block) {
  IGC_CHECK_EQ(src.shape().ndim(), 4);
  const int64_t n = src.shape()[0];
  const int64_t c = src.shape()[1];
  const int64_t h = src.shape()[2];
  const int64_t w = src.shape()[3];
  IGC_CHECK_EQ(c % block, 0) << "channels " << c << " not divisible by block "
                             << block;
  const int64_t cb = c / block;
  Tensor dst(Shape{n, cb, h, w, block}, src.dtype());
  const float* s = src.data_f32();
  float* d = dst.data_f32();
  for (int64_t in = 0; in < n; ++in) {
    for (int64_t ic = 0; ic < c; ++ic) {
      const int64_t co = ic / block;
      const int64_t ci = ic % block;
      for (int64_t ih = 0; ih < h; ++ih) {
        for (int64_t iw = 0; iw < w; ++iw) {
          d[((((in * cb + co) * h + ih) * w + iw) * block) + ci] =
              s[((in * c + ic) * h + ih) * w + iw];
        }
      }
    }
  }
  return dst;
}

Tensor nchwc_to_nchw(const Tensor& src) {
  IGC_CHECK_EQ(src.shape().ndim(), 5);
  const int64_t n = src.shape()[0];
  const int64_t cb = src.shape()[1];
  const int64_t h = src.shape()[2];
  const int64_t w = src.shape()[3];
  const int64_t block = src.shape()[4];
  const int64_t c = cb * block;
  Tensor dst(Shape{n, c, h, w}, src.dtype());
  const float* s = src.data_f32();
  float* d = dst.data_f32();
  for (int64_t in = 0; in < n; ++in) {
    for (int64_t co = 0; co < cb; ++co) {
      for (int64_t ih = 0; ih < h; ++ih) {
        for (int64_t iw = 0; iw < w; ++iw) {
          for (int64_t ci = 0; ci < block; ++ci) {
            d[((in * c + (co * block + ci)) * h + ih) * w + iw] =
                s[(((in * cb + co) * h + ih) * w + iw) * block + ci];
          }
        }
      }
    }
  }
  return dst;
}

int64_t layout_transform_elements(const Layout& from, const Layout& to,
                                  int64_t numel) {
  if (from == to) return 0;
  // A transform reads and writes every element once.
  return 2 * numel;
}

}  // namespace igc
