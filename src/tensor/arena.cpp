#include "tensor/arena.h"

#include <cstring>

#include "core/error.h"
#include "obs/metrics.h"

namespace igc {
namespace {

// Process-wide arena instruments, resolved once. All arenas share them: the
// metrics answer "how much arena traffic did this process/run generate".
obs::Counter& acquire_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("arena.acquires");
  return c;
}
obs::Counter& release_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("arena.releases");
  return c;
}
obs::Gauge& high_water_gauge() {
  static auto& g =
      obs::MetricsRegistry::global().gauge("arena.high_water_bytes");
  return g;
}
obs::Counter& eviction_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("arena.evictions");
  return c;
}

}  // namespace

PagedArena::PagedArena(std::vector<int64_t> buffer_bytes)
    : pool_(std::make_shared<PagePool>()) {
  init(std::move(buffer_bytes));
}

PagedArena::PagedArena(std::vector<int64_t> buffer_bytes,
                       std::shared_ptr<PagePool> pool)
    : PagedArena(std::move(buffer_bytes), std::move(pool), Options{}) {}

PagedArena::PagedArena(std::vector<int64_t> buffer_bytes,
                       std::shared_ptr<PagePool> pool, Options opts)
    : pool_(std::move(pool)), opts_(opts) {
  IGC_CHECK(pool_ != nullptr) << "PagedArena: shared pool must not be null";
  init(std::move(buffer_bytes));
}

void PagedArena::init(std::vector<int64_t> buffer_bytes) {
  bufs_.reserve(buffer_bytes.size());
  for (int64_t bytes : buffer_bytes) {
    IGC_CHECK_GE(bytes, 0);
    Entry e;
    e.bytes = bytes;
    bufs_.push_back(std::move(e));
    capacity_bytes_ += bytes;
  }
  hook_id_ = pool_->register_pressure_hook([this] { evict_idle(); });
}

PagedArena::~PagedArena() {
  pool_->unregister_pressure_hook(hook_id_);
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (Entry& e : bufs_) {
    if (!e.run.empty()) pool_->release(e.run);
    e.run = {};
  }
}

PagedArena::Entry& PagedArena::entry_locked(int buffer_id) {
  IGC_CHECK_GE(buffer_id, 0);
  IGC_CHECK_LT(buffer_id, static_cast<int>(bufs_.size()));
  return bufs_[static_cast<size_t>(buffer_id)];
}

Tensor PagedArena::wrap_run(const PagePool::PageRun& run, const Shape& shape,
                            DType dtype) const {
  return Tensor::wrap(shape, dtype, pool_->run_data(run),
                      pool_->run_bytes(run));
}

Tensor PagedArena::acquire(int buffer_id, const Shape& shape, DType dtype,
                           bool zero_fill) {
  Tensor t;
  int64_t in_use_now = 0;
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    Entry& e = entry_locked(buffer_id);
    IGC_CHECK(!e.in_use) << "arena buffer " << buffer_id
                         << " acquired while in use";
    const int64_t requested = shape.numel() * dtype_bytes(dtype);
    // Planned bytes cover the requested shape at any declared binding;
    // data-dependent overshoot grows the page run instead of failing, so
    // NMS/decode tails validate against page capacity rather than a slab.
    const int64_t need = std::max<int64_t>({e.bytes, requested, 1});
    if (!e.run.empty() &&
        (pool_->refcount(e.run) > 1 || pool_->run_bytes(e.run) < need)) {
      // The cached run is still read through an alias (copy-on-reacquire),
      // or is too small after a rebind/overshoot: take fresh pages and let
      // the old run die with its last reference.
      pool_->release(e.run);
      e.run = {};
    }
    if (e.run.empty()) e.run = pool_->alloc(need);
    e.in_use = true;
    e.borrowed = false;
    e.charged = std::max(e.bytes, requested);
    in_use_ += e.charged;
    peak_ = std::max(peak_, in_use_);
    in_use_now = in_use_;
    t = wrap_run(e.run, shape, dtype);
  }
  acquire_counter().add(1);
  high_water_gauge().update_max(in_use_now);
  if (zero_fill) std::memset(t.raw_data(), 0, static_cast<size_t>(t.nbytes()));
  return t;
}

Tensor PagedArena::acquire_shared(int buffer_id, int src_buffer_id,
                                  const Shape& shape, DType dtype) {
  Tensor t;
  int64_t in_use_now = 0;
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    Entry& e = entry_locked(buffer_id);
    Entry& src = entry_locked(src_buffer_id);
    IGC_CHECK(!e.in_use) << "arena buffer " << buffer_id
                         << " acquired while in use";
    IGC_CHECK(src.in_use) << "arena buffer " << src_buffer_id
                          << " must be in use to share its pages";
    const int64_t requested = shape.numel() * dtype_bytes(dtype);
    IGC_CHECK_LE(requested, pool_->run_bytes(src.run))
        << "arena buffer " << buffer_id << " does not fit in buffer "
        << src_buffer_id << "'s page run";
    if (!e.run.empty()) {
      pool_->release(e.run);  // drop our cached run; we alias src instead
      e.run = {};
    }
    e.run = src.run;
    pool_->add_ref(e.run);
    e.in_use = true;
    e.borrowed = true;
    // Charge the planned bytes (what a copy into our own buffer would have
    // charged) so accounting matches the slab design bit for bit.
    e.charged = std::max(e.bytes, requested);
    in_use_ += e.charged;
    peak_ = std::max(peak_, in_use_);
    in_use_now = in_use_;
    t = wrap_run(e.run, shape, dtype);
  }
  acquire_counter().add(1);
  high_water_gauge().update_max(in_use_now);
  return t;
}

void PagedArena::release(int buffer_id) {
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    Entry& e = entry_locked(buffer_id);
    IGC_CHECK(e.in_use)
        << "arena buffer " << buffer_id
        << " released while not in use (double release, or release before "
           "acquire) — every acquire must pair with exactly one release";
    in_use_ -= e.charged;
    e.charged = 0;
    e.in_use = false;
    if (e.borrowed || !opts_.cache_runs) {
      pool_->release(e.run);
      e.run = {};
      e.borrowed = false;
    }
  }
  release_counter().add(1);
}

void PagedArena::rebind(std::vector<int64_t> buffer_bytes) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  IGC_CHECK_EQ(in_use_, 0)
      << "PagedArena::rebind while buffers are in use";
  IGC_CHECK_EQ(buffer_bytes.size(), bufs_.size())
      << "PagedArena::rebind with a different buffer count — the plan's "
         "buffer assignment is shape-independent, only sizes change";
  capacity_bytes_ = 0;
  for (size_t i = 0; i < bufs_.size(); ++i) {
    Entry& e = bufs_[i];
    IGC_CHECK_GE(buffer_bytes[i], 0);
    e.bytes = buffer_bytes[i];
    capacity_bytes_ += e.bytes;
    if (!e.run.empty() && pool_->run_bytes(e.run) < e.bytes) {
      pool_->release(e.run);
      e.run = {};
    }
  }
}

int PagedArena::evict_idle() {
  int dropped = 0;
  {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    for (Entry& e : bufs_) {
      if (e.in_use || e.run.empty()) continue;
      pool_->release(e.run);
      e.run = {};
      ++dropped;
    }
    evictions_ += dropped;
  }
  if (dropped > 0) eviction_counter().add(dropped);
  return dropped;
}

int64_t PagedArena::capacity_bytes() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return capacity_bytes_;
}

int64_t PagedArena::in_use_bytes() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return in_use_;
}

int64_t PagedArena::peak_in_use_bytes() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return peak_;
}

void PagedArena::reset_peak() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  peak_ = in_use_;
}

int64_t PagedArena::page_bytes_held() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  int64_t held = 0;
  for (const Entry& e : bufs_) {
    if (!e.run.empty() && !e.borrowed) held += pool_->run_bytes(e.run);
  }
  return held;
}

int64_t PagedArena::evictions() const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  return evictions_;
}

}  // namespace igc
