#include "tensor/arena.h"

#include <cstring>

#include "core/error.h"
#include "obs/metrics.h"

namespace igc {
namespace {

// Process-wide arena instruments, resolved once. All arenas share them: the
// metrics answer "how much arena traffic did this process/run generate".
obs::Counter& acquire_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("arena.acquires");
  return c;
}
obs::Counter& release_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("arena.releases");
  return c;
}
obs::Gauge& high_water_gauge() {
  static auto& g =
      obs::MetricsRegistry::global().gauge("arena.high_water_bytes");
  return g;
}

}  // namespace

BufferArena::BufferArena(std::vector<int64_t> buffer_bytes) {
  bufs_.reserve(buffer_bytes.size());
  for (int64_t bytes : buffer_bytes) {
    IGC_CHECK_GE(bytes, 0);
    Slab s;
    s.bytes = bytes;
    bufs_.push_back(std::move(s));
    capacity_bytes_ += bytes;
  }
}

Tensor BufferArena::acquire(int buffer_id, const Shape& shape, DType dtype,
                            bool zero_fill) {
  std::shared_ptr<char[]> data;
  int64_t bytes = 0;
  int64_t in_use_now = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    IGC_CHECK_GE(buffer_id, 0);
    IGC_CHECK_LT(buffer_id, static_cast<int>(bufs_.size()));
    Slab& s = bufs_[static_cast<size_t>(buffer_id)];
    IGC_CHECK(!s.in_use) << "arena buffer " << buffer_id
                         << " acquired while in use";
    if (!s.data) {
      s.data = std::shared_ptr<char[]>(
          new char[static_cast<size_t>(std::max<int64_t>(s.bytes, 1))]);
    }
    s.in_use = true;
    in_use_ += s.bytes;
    peak_ = std::max(peak_, in_use_);
    data = s.data;
    bytes = s.bytes;
    in_use_now = in_use_;
  }
  acquire_counter().add(1);
  high_water_gauge().update_max(in_use_now);
  Tensor t = Tensor::wrap(shape, dtype, std::move(data), bytes);
  if (zero_fill) std::memset(t.raw_data(), 0, static_cast<size_t>(t.nbytes()));
  return t;
}

void BufferArena::release(int buffer_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    IGC_CHECK_GE(buffer_id, 0);
    IGC_CHECK_LT(buffer_id, static_cast<int>(bufs_.size()));
    Slab& s = bufs_[static_cast<size_t>(buffer_id)];
    IGC_CHECK(s.in_use) << "arena buffer " << buffer_id << " double-released";
    s.in_use = false;
    in_use_ -= s.bytes;
  }
  release_counter().add(1);
}

int64_t BufferArena::in_use_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

int64_t BufferArena::peak_in_use_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

void BufferArena::reset_peak() {
  std::lock_guard<std::mutex> lock(mu_);
  peak_ = in_use_;
}

}  // namespace igc
