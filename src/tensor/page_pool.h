// Physical page pool behind the PagedArena (src/tensor/arena.h).
//
// The paged-KV-cache idea from LLM serving engines, applied to activation
// buffers: the pool owns large contiguous extents of host memory carved into
// fixed-size pages, and hands out *page runs* — contiguous spans of pages —
// with reference counts. Tensors need contiguous storage, so a run is the
// unit of allocation (never a scatter list); contiguity inside an extent is
// found first-fit with free-run coalescing, and a new extent is mapped only
// when no existing extent has a large-enough hole.
//
// Sharing: several PagedArenas (e.g. the serving contexts of every worker x
// tenant in a ServingEngine) can draw from one pool, so physical pages freed
// by one request back the next request's buffers — the cross-request sharing
// a per-context slab design cannot do. add_ref/release let two logical
// buffers alias one run (zero-copy Flatten/DeviceCopy under the arena).
//
// Pressure: Options::max_bytes bounds the bytes held by live (refcounted)
// runs. An allocation that would exceed the budget first invokes the
// registered pressure hooks — arenas respond by dropping their cached idle
// runs — and only fails (igc::Error) if the budget is still exceeded after
// eviction. Hooks are invoked without the pool lock held, so a hook may call
// back into release() freely.
//
// Thread safety: all methods are mutex-guarded; hooks run unlocked (see
// above). Metrics: arena.page_allocs / arena.page_frees / arena.pages_in_use
// / arena.page_bytes are recorded process-wide on every transition.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace igc {

class PagePool {
 public:
  struct Options {
    /// Page granularity. Runs are rounded up to whole pages.
    int64_t page_bytes = 64 * 1024;
    /// Budget on bytes held by live runs (0 = unbounded). Exceeding it
    /// triggers the pressure hooks, then igc::Error if still over.
    int64_t max_bytes = 0;
    /// Minimum pages per mapped extent (small allocations share extents).
    int64_t min_extent_pages = 64;
  };

  /// A contiguous span of pages inside one extent. Value handle: copying it
  /// does not touch the refcount (use add_ref/release for ownership).
  struct PageRun {
    int32_t extent = -1;
    int32_t first_page = 0;
    int32_t num_pages = 0;
    bool empty() const { return num_pages == 0; }
  };

  PagePool();  // default Options
  explicit PagePool(Options opts);
  ~PagePool();

  PagePool(const PagePool&) = delete;
  PagePool& operator=(const PagePool&) = delete;

  /// Allocates a run covering at least `min_bytes` (>= 1 page), refcount 1.
  PageRun alloc(int64_t min_bytes);
  void add_ref(const PageRun& run);
  /// Drops one reference; the run's pages return to the free pool at zero.
  void release(const PageRun& run);
  int refcount(const PageRun& run) const;

  /// Storage of `run`, as a shared_ptr aliasing the extent (the extent stays
  /// mapped while any tensor still views it, even across a free/re-alloc).
  std::shared_ptr<char[]> run_data(const PageRun& run) const;
  int64_t run_bytes(const PageRun& run) const {
    return static_cast<int64_t>(run.num_pages) * opts_.page_bytes;
  }
  int64_t page_bytes() const { return opts_.page_bytes; }
  int64_t max_bytes() const { return opts_.max_bytes; }

  /// Registers a pressure hook (called, unlocked, when alloc() would exceed
  /// max_bytes). Returns an id for unregister_pressure_hook().
  int register_pressure_hook(std::function<void()> hook);
  void unregister_pressure_hook(int id);

  // ----- statistics ---------------------------------------------------------
  /// Bytes held by live (refcounted) runs right now.
  int64_t bytes_in_use() const;
  /// High-water mark of bytes_in_use() since construction or reset_peak().
  int64_t peak_bytes_in_use() const;
  int64_t pages_in_use() const;
  /// Total bytes of mapped extents (the pool's physical footprint).
  int64_t extent_bytes() const;
  /// Lifetime page-allocation / page-free counts.
  int64_t total_page_allocs() const;
  int64_t total_page_frees() const;
  void reset_peak();

 private:
  struct Extent {
    std::shared_ptr<char[]> data;
    int64_t num_pages = 0;
    /// Free runs: first_page -> num_pages, coalesced on free.
    std::map<int32_t, int32_t> free_runs;
  };
  struct LiveRun {
    int32_t num_pages = 0;
    int refs = 0;
  };

  /// Key for the live-run map: (extent, first_page) uniquely names a run.
  static int64_t run_key(const PageRun& r) {
    return (static_cast<int64_t>(r.extent) << 32) | r.first_page;
  }

  PageRun try_alloc_locked(int32_t pages_needed);
  void note_usage_locked();

  Options opts_;
  mutable std::mutex mu_;
  std::vector<Extent> extents_;
  std::map<int64_t, LiveRun> live_;
  std::map<int, std::function<void()>> hooks_;
  int next_hook_id_ = 0;
  int64_t pages_in_use_ = 0;
  int64_t peak_bytes_ = 0;
  int64_t total_allocs_ = 0;
  int64_t total_frees_ = 0;
};

}  // namespace igc
