// Data layouts for activation and weight tensors.
//
// The graph tuner (Sec. 3.2.3) chooses, per convolution, between the plain
// NCHW layout and channel-blocked NCHW[x]c layouts (x = 4/8/16), trading
// kernel efficiency against layout-transform overhead. Weights use OIHW or
// the matching blocked OIHW[x]i[x]o form.
#pragma once

#include <cstdint>
#include <string>

#include "core/error.h"
#include "tensor/tensor.h"

namespace igc {

/// Activation layouts. kNCHWc covers NCHW[x]c for any block size held in
/// Layout::block.
enum class LayoutKind : uint8_t {
  kNCHW,
  kNCHWc,
};

/// A concrete layout: kind + channel block size (1 for plain NCHW).
struct Layout {
  LayoutKind kind = LayoutKind::kNCHW;
  int block = 1;

  static Layout nchw() { return Layout{LayoutKind::kNCHW, 1}; }
  static Layout nchwc(int block) {
    IGC_CHECK_GT(block, 1);
    return Layout{LayoutKind::kNCHWc, block};
  }

  bool operator==(const Layout& o) const {
    return kind == o.kind && block == o.block;
  }
  bool operator!=(const Layout& o) const { return !(*this == o); }

  std::string str() const {
    if (kind == LayoutKind::kNCHW) return "NCHW";
    return "NCHW" + std::to_string(block) + "c";
  }
};

/// Converts an NCHW activation tensor to NCHW[x]c. Channels must be divisible
/// by the block size. Result shape is (N, C/b, H, W, b).
Tensor nchw_to_nchwc(const Tensor& src, int block);

/// Converts an NCHW[x]c activation tensor of shape (N, C/b, H, W, b) back to
/// NCHW.
Tensor nchwc_to_nchw(const Tensor& src);

/// Number of scalar elements moved by a layout transform between the two
/// layouts for a tensor with `numel` elements (0 when `from == to`). Used by
/// the graph tuner's transform-cost model.
int64_t layout_transform_elements(const Layout& from, const Layout& to,
                                  int64_t numel);

}  // namespace igc
