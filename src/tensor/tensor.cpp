#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

namespace igc {

Tensor::Tensor(Shape shape, DType dtype) : shape_(std::move(shape)), dtype_(dtype) {
  const int64_t bytes = std::max<int64_t>(nbytes(), 1);
  data_ = std::shared_ptr<char[]>(new char[static_cast<size_t>(bytes)]);
}

Tensor Tensor::zeros(Shape shape, DType dtype) {
  Tensor t(std::move(shape), dtype);
  std::memset(t.raw_data(), 0, static_cast<size_t>(t.nbytes()));
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape), DType::kFloat32);
  std::fill(t.span_f32().begin(), t.span_f32().end(), value);
  return t;
}

Tensor Tensor::random_uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape), DType::kFloat32);
  for (float& v : t.span_f32()) v = rng.next_float(lo, hi);
  return t;
}

Tensor Tensor::random_normal(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape), DType::kFloat32);
  for (float& v : t.span_f32()) v = rng.next_gaussian() * stddev;
  return t;
}

Tensor Tensor::from_vector(Shape shape, const std::vector<float>& values) {
  Tensor t(std::move(shape), DType::kFloat32);
  IGC_CHECK_EQ(t.numel(), static_cast<int64_t>(values.size()));
  std::copy(values.begin(), values.end(), t.data_f32());
  return t;
}

Tensor Tensor::from_vector_i32(Shape shape, const std::vector<int32_t>& values) {
  Tensor t(std::move(shape), DType::kInt32);
  IGC_CHECK_EQ(t.numel(), static_cast<int64_t>(values.size()));
  std::copy(values.begin(), values.end(), t.data_i32());
  return t;
}

Tensor Tensor::wrap(Shape shape, DType dtype, std::shared_ptr<char[]> data,
                    int64_t capacity_bytes) {
  Tensor t;
  t.shape_ = std::move(shape);
  t.dtype_ = dtype;
  IGC_CHECK(data != nullptr);
  IGC_CHECK_LE(t.nbytes(), capacity_bytes)
      << "tensor " << t.shape_.str() << " does not fit the wrapped buffer";
  t.data_ = std::move(data);
  return t;
}

Tensor Tensor::clone() const {
  Tensor t(shape_, dtype_);
  std::memcpy(t.raw_data(), raw_data(), static_cast<size_t>(nbytes()));
  return t;
}

Tensor Tensor::reshape(Shape new_shape) const {
  IGC_CHECK_EQ(new_shape.numel(), numel())
      << "reshape " << shape_.str() << " -> " << new_shape.str();
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

float Tensor::max_abs_diff(const Tensor& other) const {
  IGC_CHECK(shape_ == other.shape_);
  IGC_CHECK(dtype_ == DType::kFloat32 && other.dtype_ == DType::kFloat32);
  float m = 0.0f;
  const float* a = data_f32();
  const float* b = other.data_f32();
  for (int64_t i = 0; i < numel(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

}  // namespace igc
