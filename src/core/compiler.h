// The top-level public API: compile a model for a platform, then run it.
//
// Bundles the full Fig. 1 pipeline — graph-level optimization, heterogeneous
// placement, tensor-level schedule search (AutoTVM), graph-level layout
// tuning, and code generation — behind two calls:
//
//   igc::CompileOptions copts;
//   igc::CompiledModel cm = igc::compile(std::move(model), platform, copts);
//   igc::RunResult r = cm.run();
//
// This is the interface the Amazon SageMaker Neo-style service in the paper
// exposes to application developers.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "graph/executor.h"
#include "graph/graph.h"
#include "graph/memory_planner.h"
#include "graph/pass_manager.h"
#include "graph/passes.h"
#include "models/models.h"
#include "sim/device_spec.h"
#include "tune/tunedb.h"
#include "tune/tuner.h"

namespace igc::codegen::jit {
struct DispatchTable;
}

namespace igc {

/// Which engine computes operator numerics. Simulated latencies, counters,
/// and outputs are bit-identical either way; the JIT only changes how many
/// host milliseconds a numerics-on run costs.
enum class Backend {
  kInterp,  // reference host implementations (the functional path)
  kJit,     // compiled host kernels for covered ops, reference for the rest
};

struct CompileOptions {
  /// Measurement budget per convolution workload.
  int tune_trials = 96;
  tune::SearchStrategy strategy = tune::SearchStrategy::kModelGuided;
  /// Operator kinds to fall back to the companion CPU (Sec. 3.1.2).
  std::set<graph::OpKind> cpu_fallback_ops;
  /// Reuse a pre-populated tuning database (e.g. loaded from disk) so
  /// compilation never searches the same workload twice (Sec. 3.2.3).
  const tune::TuneDb* warm_db = nullptr;
  /// Skip tuning entirely: run the hand-written templates (for comparisons).
  bool skip_tuning = false;
  /// When set, every tuning trial compile() measures is appended to this
  /// flight recorder (one record per trial: config, measured ms, predicted
  /// ms, best-so-far — see tune/journal.h). Must outlive the call.
  tune::TuneJournal* tune_journal = nullptr;

  // --- host JIT backend (see codegen/jit_lower.h) -------------------------
  /// kJit lowers every coverable operator through the host C++ codegen
  /// target, compiles one module per model through the on-disk artifact
  /// cache, and dispatches via function pointers at run time. Degrades to
  /// the reference path (with jit_error() set) when the host has no C++
  /// toolchain.
  Backend backend = Backend::kInterp;
  /// Artifact-cache directory for compiled kernels; empty resolves
  /// $IGC_KERNEL_CACHE, then ~/.cache/igc-kernels.
  std::string kernel_cache_dir;
  /// When set, JIT lowering / emission / toolchain steps record one span
  /// each on this recorder. Must outlive the call.
  obs::TraceRecorder* compile_trace = nullptr;

  // --- graph pass pipeline (see graph/pass_manager.h) ---------------------
  /// Explicit pass order; empty runs graph::default_pass_names(). Unknown
  /// names raise igc::Error at compile() time.
  std::vector<std::string> pass_names;
  /// Passes dropped from the pipeline (whatever its order). The compiler
  /// tolerates any subset: the executor and memory planner handle
  /// un-compacted and unplaced graphs.
  std::set<std::string> disabled_passes;
  /// Run Graph::validate() after every pass (compile-time cost only).
  bool validate_after_each_pass = false;
  /// Stream Graph::summary() after each named pass to `dump_stream`
  /// (std::cerr when null) — the `igc-compile --dump-graph-after` view.
  std::set<std::string> dump_graph_after;
  std::ostream* dump_stream = nullptr;
};

/// Per-run numerics-engine choice (see Backend). kAuto runs whatever
/// compile() prepared.
enum class RunBackend { kAuto, kInterp, kJit };

/// Private serving state for one worker thread: a memory plan plus a
/// plan-backed BufferArena for one model. A run that passes a context
/// through RunOptions::serving_context uses these buffers instead of the
/// model-wide shared arena — and skips that arena's mutex — so a pool of
/// workers can serve the same CompiledModel concurrently, each on its own
/// context. The caller guarantees at most one run uses a given context at a
/// time (a worker thread owning one context per tenant model satisfies
/// this). Created by CompiledModel::make_serving_context().
class ServingContext {
 public:
  int64_t arena_bytes() const;

 private:
  friend class CompiledModel;
  ServingContext() = default;
  graph::MemoryPlan plan_;
  std::unique_ptr<BufferArena> arena_;
};

/// Knobs for one inference call. Outputs are bit-identical across every
/// combination of mode/use_arena/backend for a fixed input_seed.
struct RunOptions {
  uint64_t input_seed = 0xbe5c;
  /// Off propagates shapes and synthetic detection data only (fast for
  /// full-size models).
  bool compute_numerics = true;
  /// kWavefront dispatches independent nodes concurrently and reports the
  /// per-lane critical-path latency instead of the serial sum.
  graph::ExecMode mode = graph::ExecMode::kSequential;
  /// Serve intermediate tensors from a persistent plan-backed arena owned by
  /// the model: after the first run, repeated runs perform no intermediate
  /// heap allocations (steady-state serving). Arena runs on one model are
  /// serialized internally.
  bool use_arena = false;
  /// When set, the run starts a fresh trace on this recorder (model /
  /// platform / mode metadata) and records one span per executed node.
  /// Tracing never changes outputs. The recorder must outlive the call;
  /// concurrent runs must not share one.
  obs::TraceRecorder* trace = nullptr;
  /// kInterp forces the reference path even on a JIT-compiled model; kJit
  /// on a model compiled without a JIT module just runs the reference path
  /// (there is nothing compiled to dispatch to).
  RunBackend backend = RunBackend::kAuto;
  /// When set, intermediate tensors come from this context's private arena
  /// (use_arena is implied) and the run skips the model-wide arena mutex.
  /// The context must come from this model's make_serving_context(); at
  /// most one run may use it at a time (see ServingContext).
  ServingContext* serving_context = nullptr;
};

struct RunResult {
  Tensor output;
  double latency_ms = 0.0;
  /// Both simulated time models, regardless of the mode run (see ExecResult).
  double serial_ms = 0.0;
  double critical_path_ms = 0.0;
  double conv_ms = 0.0;
  double vision_ms = 0.0;
  double copy_ms = 0.0;
  double fallback_ms = 0.0;
  double other_ms = 0.0;
  /// High-water mark of live intermediate bytes during the run.
  int64_t peak_intermediate_bytes = 0;
  /// Capacity of the serving arena (0 when use_arena is off).
  int64_t arena_bytes = 0;
  /// Hardware counters merged over every charge of the run (occupancy,
  /// achieved GFLOPS / GB/s, bound classification — see sim/timing_model.h).
  sim::KernelCounters counters;
};

class CompiledModel {
 public:
  RunResult run(const RunOptions& opts) const;

  /// Runs one inference. `compute_numerics` off propagates shapes and
  /// synthetic detection data only (fast for full-size models).
  RunResult run(uint64_t input_seed = 0xbe5c,
                bool compute_numerics = true) const;

  const std::string& model_name() const { return name_; }
  const sim::Platform& platform() const { return *platform_; }
  const graph::PassStats& pass_stats() const { return pass_stats_; }
  /// Per-pass record (name, rewrites, wall ms) of the pipeline compile() ran.
  const std::vector<graph::PassRunStats>& pass_report() const {
    return pass_report_;
  }
  /// Ordered names of the passes compile() ran.
  std::vector<std::string> pass_pipeline() const;
  const tune::TuneDb& tune_db() const { return db_; }
  const std::map<int, int>& layouts() const { return layouts_; }
  /// Static memory plan of the optimized graph.
  graph::MemoryPlan memory_plan() const;

  /// Builds a private plan + arena for one serving worker (see
  /// ServingContext / RunOptions::serving_context).
  std::unique_ptr<ServingContext> make_serving_context() const;

  /// Table view of the optimized, placed graph (Graph::summary).
  std::string graph_summary() const { return graph_.summary(); }

  /// OpenCL or CUDA source (per the platform's API) for every distinct
  /// tuned convolution kernel, keyed by workload.
  std::map<std::string, std::string> generated_sources() const;

  /// True when compile() built a host-JIT module for this model (backend
  /// kJit and a working toolchain).
  bool jit_enabled() const { return jit_ != nullptr; }
  /// Distinct kernels in the JIT module / graph nodes it covers (0 without
  /// a module).
  int jit_kernels() const { return jit_kernels_; }
  int jit_nodes_covered() const { return jit_nodes_covered_; }
  /// Why the JIT backend is absent when it was requested ("" otherwise).
  const std::string& jit_error() const { return jit_error_; }

 private:
  friend CompiledModel compile(models::Model model,
                               const sim::Platform& platform,
                               const CompileOptions& opts);

  /// Lazily built serving state shared by arena runs: the memory plan and
  /// the arena sized from it, plus the mutex that serializes such runs
  /// (buffers would alias otherwise). Held behind a pointer so the model
  /// stays movable.
  struct ServingState {
    std::mutex mu;
    std::unique_ptr<graph::MemoryPlan> plan;
    std::unique_ptr<BufferArena> arena;
  };

  std::string name_;
  graph::Graph graph_;
  const sim::Platform* platform_ = nullptr;
  graph::PassStats pass_stats_;
  std::vector<graph::PassRunStats> pass_report_;
  tune::TuneDb db_;
  std::map<int, int> layouts_;
  bool tuned_ = true;
  /// Conv schedules resolved once at compile() time (ExecOptions::
  /// conv_schedules), so serving runs skip the per-dispatch db lookup.
  std::map<int, tune::ScheduleConfig> conv_schedules_;
  /// Host-JIT dispatch table (null unless compiled with Backend::kJit and a
  /// working toolchain).
  std::shared_ptr<codegen::jit::DispatchTable> jit_;
  int jit_kernels_ = 0;
  int jit_nodes_covered_ = 0;
  std::string jit_error_;
  std::shared_ptr<ServingState> serving_ = std::make_shared<ServingState>();
};

/// Compiles `model` for `platform`: optimizes the graph, tunes every conv
/// workload, and solves the layout DP. Deterministic for fixed inputs.
CompiledModel compile(models::Model model, const sim::Platform& platform,
                      const CompileOptions& opts = {});

}  // namespace igc
