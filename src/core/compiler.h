// The top-level public API: compile a model for a platform, then run it.
//
// Bundles the full Fig. 1 pipeline — graph-level optimization, heterogeneous
// placement, tensor-level schedule search (AutoTVM), graph-level layout
// tuning, and code generation — behind two calls:
//
//   igc::CompileOptions copts;
//   igc::CompiledModel cm = igc::compile(std::move(model), platform, copts);
//   igc::RunResult r = cm.run();
//
// This is the interface the Amazon SageMaker Neo-style service in the paper
// exposes to application developers.
#pragma once

#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "graph/executor.h"
#include "graph/graph.h"
#include "graph/memory_planner.h"
#include "graph/pass_manager.h"
#include "graph/passes.h"
#include "models/models.h"
#include "sim/device_spec.h"
#include "tune/tunedb.h"
#include "tune/tuner.h"

namespace igc::codegen::jit {
struct DispatchTable;
}

namespace igc {

/// Which engine computes operator numerics. Simulated latencies, counters,
/// and outputs are bit-identical either way; the JIT only changes how many
/// host milliseconds a numerics-on run costs.
enum class Backend {
  kInterp,  // reference host implementations (the functional path)
  kJit,     // compiled host kernels for covered ops, reference for the rest
};

struct CompileOptions {
  /// Measurement budget per convolution workload.
  int tune_trials = 96;
  tune::SearchStrategy strategy = tune::SearchStrategy::kModelGuided;
  /// Operator kinds to fall back to the companion CPU (Sec. 3.1.2).
  std::set<graph::OpKind> cpu_fallback_ops;
  /// Reuse a pre-populated tuning database (e.g. loaded from disk) so
  /// compilation never searches the same workload twice (Sec. 3.2.3).
  const tune::TuneDb* warm_db = nullptr;
  /// Skip tuning entirely: run the hand-written templates (for comparisons).
  bool skip_tuning = false;
  /// When set, every tuning trial compile() measures is appended to this
  /// flight recorder (one record per trial: config, measured ms, predicted
  /// ms, best-so-far — see tune/journal.h). Must outlive the call.
  tune::TuneJournal* tune_journal = nullptr;

  // --- host JIT backend (see codegen/jit_lower.h) -------------------------
  /// kJit lowers every coverable operator through the host C++ codegen
  /// target, compiles one module per model through the on-disk artifact
  /// cache, and dispatches via function pointers at run time. Degrades to
  /// the reference path (with jit_error() set) when the host has no C++
  /// toolchain.
  Backend backend = Backend::kInterp;
  /// Artifact-cache directory for compiled kernels; empty resolves
  /// $IGC_KERNEL_CACHE, then ~/.cache/igc-kernels.
  std::string kernel_cache_dir;
  /// When set, JIT lowering / emission / toolchain steps record one span
  /// each on this recorder. Must outlive the call.
  obs::TraceRecorder* compile_trace = nullptr;

  // --- graph pass pipeline (see graph/pass_manager.h) ---------------------
  /// Explicit pass order; empty runs graph::default_pass_names(). Unknown
  /// names raise igc::Error at compile() time.
  std::vector<std::string> pass_names;
  /// Passes dropped from the pipeline (whatever its order). The compiler
  /// tolerates any subset: the executor and memory planner handle
  /// un-compacted and unplaced graphs.
  std::set<std::string> disabled_passes;
  /// Run Graph::validate() after every pass (compile-time cost only).
  bool validate_after_each_pass = false;
  /// Stream Graph::summary() after each named pass to `dump_stream`
  /// (std::cerr when null) — the `igc-compile --dump-graph-after` view.
  std::set<std::string> dump_graph_after;
  std::ostream* dump_stream = nullptr;
};

/// Per-run numerics-engine choice (see Backend). kAuto runs whatever
/// compile() prepared.
enum class RunBackend { kAuto, kInterp, kJit };

/// Private serving state for one worker thread: a memory plan plus a
/// plan-backed PagedArena for one model at one shape binding. A run that
/// passes a context through RunOptions::serving_context uses these buffers
/// instead of the model-wide shared arena — and skips that arena's mutex —
/// so a pool of workers can serve the same CompiledModel concurrently, each
/// on its own context. The arena draws pages from a shared PagePool and
/// returns them between requests (cache_runs off), so contexts across
/// workers and across tenant models recycle one physical page set instead
/// of each holding a private full-size slab. The caller guarantees at most
/// one run uses a given context at a time (a worker thread owning one
/// context per tenant model satisfies this). Created by
/// CompiledModel::make_serving_context().
class ServingContext {
 public:
  int64_t arena_bytes() const;
  /// Physical page bytes the context's arena holds right now (0 between
  /// requests — pages live in the shared pool).
  int64_t arena_page_bytes() const;
  /// The page pool this context draws from.
  const std::shared_ptr<PagePool>& page_pool() const;
  /// The shape binding this context was built for (0 = compiled seed).
  int64_t batch() const { return batch_; }
  int64_t input_hw() const { return hw_; }

 private:
  friend class CompiledModel;
  ServingContext() = default;
  graph::MemoryPlan plan_;
  std::unique_ptr<BufferArena> arena_;
  int64_t batch_ = 0;
  int64_t hw_ = 0;
};

/// Knobs for one inference call. Outputs are bit-identical across every
/// combination of mode/use_arena/backend for a fixed input_seed.
struct RunOptions {
  uint64_t input_seed = 0xbe5c;
  /// Off propagates shapes and synthetic detection data only (fast for
  /// full-size models).
  bool compute_numerics = true;
  /// kWavefront dispatches independent nodes concurrently and reports the
  /// per-lane critical-path latency instead of the serial sum.
  graph::ExecMode mode = graph::ExecMode::kSequential;
  /// Serve intermediate tensors from a persistent plan-backed arena owned by
  /// the model: after the first run, repeated runs perform no intermediate
  /// heap allocations (steady-state serving). Arena runs on one model are
  /// serialized internally.
  bool use_arena = false;
  /// When set, the run starts a fresh trace on this recorder (model /
  /// platform / mode metadata) and records one span per executed node.
  /// Tracing never changes outputs. The recorder must outlive the call;
  /// concurrent runs must not share one.
  obs::TraceRecorder* trace = nullptr;
  /// kInterp forces the reference path even on a JIT-compiled model; kJit
  /// on a model compiled without a JIT module just runs the reference path
  /// (there is nothing compiled to dispatch to).
  RunBackend backend = RunBackend::kAuto;
  /// When set, intermediate tensors come from this context's private arena
  /// (use_arena is implied) and the run skips the model-wide arena mutex.
  /// The context must come from this model's make_serving_context(); at
  /// most one run may use it at a time (see ServingContext).
  ServingContext* serving_context = nullptr;
  /// Dynamic shape binding: input batch (0 = the compiled seed batch) and
  /// input resolution (0 = the compiled seed resolution), validated against
  /// the model's declared ShapeSpec. A non-seed binding reuses the compiled
  /// schedules and the memory plan's buffer assignment — zero replanning,
  /// zero retuning — re-deriving only shapes and buffer sizes (cached per
  /// binding). With a serving context, the binding must match the context's.
  int64_t batch = 0;
  int64_t input_hw = 0;
};

struct RunResult {
  Tensor output;
  double latency_ms = 0.0;
  /// Both simulated time models, regardless of the mode run (see ExecResult).
  double serial_ms = 0.0;
  double critical_path_ms = 0.0;
  double conv_ms = 0.0;
  double vision_ms = 0.0;
  double copy_ms = 0.0;
  double fallback_ms = 0.0;
  double other_ms = 0.0;
  /// High-water mark of live intermediate bytes during the run.
  int64_t peak_intermediate_bytes = 0;
  /// Capacity of the serving arena (0 when use_arena is off).
  int64_t arena_bytes = 0;
  /// Physical page bytes the arena held when the run finished (0 when
  /// use_arena is off, or when a serving context returned its pages to the
  /// shared pool).
  int64_t arena_page_bytes = 0;
  /// Hardware counters merged over every charge of the run (occupancy,
  /// achieved GFLOPS / GB/s, bound classification — see sim/timing_model.h).
  sim::KernelCounters counters;
};

class CompiledModel {
 public:
  RunResult run(const RunOptions& opts) const;

  /// Runs one inference. `compute_numerics` off propagates shapes and
  /// synthetic detection data only (fast for full-size models).
  RunResult run(uint64_t input_seed = 0xbe5c,
                bool compute_numerics = true) const;

  /// Runs one inference at a dynamic shape binding: input batch `batch`
  /// (0 = seed) at resolution `input_hw` x `input_hw` (0 = seed), within the
  /// model's declared ShapeSpec bounds. Outputs and simulated latencies are
  /// bit-identical to a model statically compiled at that shape; no
  /// replanning or retuning happens (see RunOptions::batch).
  RunResult run(int64_t batch, int64_t input_hw, const RunOptions& opts) const;

  const std::string& model_name() const { return name_; }
  const sim::Platform& platform() const { return *platform_; }
  const graph::PassStats& pass_stats() const { return pass_stats_; }
  /// Per-pass record (name, rewrites, wall ms) of the pipeline compile() ran.
  const std::vector<graph::PassRunStats>& pass_report() const {
    return pass_report_;
  }
  /// Ordered names of the passes compile() ran.
  std::vector<std::string> pass_pipeline() const;
  const tune::TuneDb& tune_db() const { return db_; }
  const std::map<int, int>& layouts() const { return layouts_; }
  /// Memory plan of the optimized graph, computed once at compile() time
  /// (dynamic-shape bindings reuse its buffer assignment unchanged).
  graph::MemoryPlan memory_plan() const;
  /// The model's declared dynamic-shape bounds.
  const graph::ShapeSpec& shape_spec() const { return graph_.shape_spec(); }

  /// Builds a private plan + arena for one serving worker (see
  /// ServingContext / RunOptions::serving_context) at the compiled seed
  /// shape, drawing pages from the model's own shared pool.
  std::unique_ptr<ServingContext> make_serving_context() const;
  /// Same, at a dynamic shape binding (`batch`/`input_hw` 0 = seed), drawing
  /// pages from `pool` — pass one pool to every tenant's contexts and they
  /// share physical pages (null = the model's own pool).
  std::unique_ptr<ServingContext> make_serving_context(
      int64_t batch, int64_t input_hw, std::shared_ptr<PagePool> pool) const;

  /// The page pool backing this model's serving contexts (created on first
  /// use). The model-wide arena keeps a private pool: it caches its page
  /// runs across runs, so sharing would never materialize.
  std::shared_ptr<PagePool> page_pool() const;

  /// Table view of the optimized, placed graph (Graph::summary).
  std::string graph_summary() const { return graph_.summary(); }

  /// OpenCL or CUDA source (per the platform's API) for every distinct
  /// tuned convolution kernel, keyed by workload.
  std::map<std::string, std::string> generated_sources() const;

  /// True when compile() built a host-JIT module for this model (backend
  /// kJit and a working toolchain).
  bool jit_enabled() const { return jit_ != nullptr; }
  /// Distinct kernels in the JIT module / graph nodes it covers (0 without
  /// a module).
  int jit_kernels() const { return jit_kernels_; }
  int jit_nodes_covered() const { return jit_nodes_covered_; }
  /// Why the JIT backend is absent when it was requested ("" otherwise).
  const std::string& jit_error() const { return jit_error_; }

 private:
  friend CompiledModel compile(models::Model model,
                               const sim::Platform& platform,
                               const CompileOptions& opts);

  /// One cached dynamic-shape binding: the rebound graph, a plan copy with
  /// re-resolved buffer sizes (same buffer assignment), and the conv
  /// schedules resolved for the rebound workloads. Built once per distinct
  /// (batch, hw) and immutable afterwards, so concurrent runs share it.
  struct ShapeVariant {
    int64_t batch = 0;
    int64_t hw = 0;
    graph::Graph graph;
    graph::MemoryPlan plan;
    std::map<int, tune::ScheduleConfig> conv_schedules;
  };

  /// Lazily built serving state shared by arena runs: the arena for
  /// model-wide runs plus the mutex that serializes them (buffers would
  /// alias otherwise), the shape-variant cache, and the model's page pool.
  /// Held behind a pointer so the model stays movable.
  struct ServingState {
    std::mutex mu;
    std::unique_ptr<BufferArena> arena;
    /// Binding the model-wide arena is currently sized for (guarded by mu).
    std::pair<int64_t, int64_t> arena_binding{0, 0};
    /// Variant cache and pool, guarded by variants_mu (separate from mu so
    /// serving-context runs never touch the model-wide arena lock).
    std::mutex variants_mu;
    std::map<std::pair<int64_t, int64_t>, std::unique_ptr<ShapeVariant>>
        variants;
    std::shared_ptr<PagePool> pool;
  };

  /// Resolves (and caches) the variant for a non-seed binding; null when the
  /// binding is the seed shape. Throws igc::Error on out-of-bounds bindings.
  const ShapeVariant* resolve_variant(int64_t batch, int64_t input_hw) const;

  std::string name_;
  graph::Graph graph_;
  /// Memory plan computed once at compile(); every binding reuses its
  /// buffer assignment (see memory_planner.h).
  std::shared_ptr<const graph::MemoryPlan> plan_;
  const sim::Platform* platform_ = nullptr;
  graph::PassStats pass_stats_;
  std::vector<graph::PassRunStats> pass_report_;
  tune::TuneDb db_;
  std::map<int, int> layouts_;
  bool tuned_ = true;
  /// Conv schedules resolved once at compile() time (ExecOptions::
  /// conv_schedules), so serving runs skip the per-dispatch db lookup.
  std::map<int, tune::ScheduleConfig> conv_schedules_;
  /// Host-JIT dispatch table (null unless compiled with Backend::kJit and a
  /// working toolchain).
  std::shared_ptr<codegen::jit::DispatchTable> jit_;
  int jit_kernels_ = 0;
  int jit_nodes_covered_ = 0;
  std::string jit_error_;
  std::shared_ptr<ServingState> serving_ = std::make_shared<ServingState>();
};

/// Compiles `model` for `platform`: optimizes the graph, tunes every conv
/// workload, and solves the layout DP. Deterministic for fixed inputs.
CompiledModel compile(models::Model model, const sim::Platform& platform,
                      const CompileOptions& opts = {});

}  // namespace igc
