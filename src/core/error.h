// Error handling primitives for igc.
//
// All invariant violations and user errors raise igc::Error, carrying the
// source location and a formatted message. Hot inner loops use IGC_DCHECK,
// which compiles away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace igc {

/// Exception type thrown by all IGC_CHECK failures and API misuse.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

namespace detail {

/// Stream-style message builder whose destructor-free `fail` throws.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* cond) {
    os_ << file << ":" << line << " Check failed: " << cond << " ";
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  [[noreturn]] void fail() const { throw Error(os_.str()); }

 private:
  std::ostringstream os_;
};

/// Helper that turns the streaming expression into a [[noreturn]] throw.
struct CheckFailThrower {
  [[noreturn]] void operator&(const CheckFailStream& s) { s.fail(); }
};

}  // namespace detail
}  // namespace igc

#define IGC_CHECK(cond)                                               \
  if (cond) {                                                         \
  } else /* NOLINT */                                                 \
    ::igc::detail::CheckFailThrower{} &                               \
        ::igc::detail::CheckFailStream(__FILE__, __LINE__, #cond)

#define IGC_CHECK_EQ(a, b) IGC_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define IGC_CHECK_NE(a, b) IGC_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define IGC_CHECK_LT(a, b) IGC_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define IGC_CHECK_LE(a, b) IGC_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define IGC_CHECK_GT(a, b) IGC_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define IGC_CHECK_GE(a, b) IGC_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define IGC_DCHECK(cond) IGC_CHECK(true)
#else
#define IGC_DCHECK(cond) IGC_CHECK(cond)
#endif
