// Scalar element types supported by igc tensors.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/error.h"

namespace igc {

/// Element type of a tensor. The simulator executes all floating point math
/// in fp32 on the host; kInt32 is used for indices (argsort, NMS outputs).
enum class DType : uint8_t {
  kFloat32,
  kInt32,
  kInt8,
  kUInt8,
};

/// Size in bytes of one element of `t`.
constexpr int64_t dtype_bytes(DType t) {
  switch (t) {
    case DType::kFloat32:
    case DType::kInt32:
      return 4;
    case DType::kInt8:
    case DType::kUInt8:
      return 1;
  }
  return 0;
}

/// Human-readable name, e.g. "float32".
constexpr std::string_view dtype_name(DType t) {
  switch (t) {
    case DType::kFloat32:
      return "float32";
    case DType::kInt32:
      return "int32";
    case DType::kInt8:
      return "int8";
    case DType::kUInt8:
      return "uint8";
  }
  return "unknown";
}

/// Name used when emitting OpenCL C source for this type.
constexpr std::string_view dtype_opencl_name(DType t) {
  switch (t) {
    case DType::kFloat32:
      return "float";
    case DType::kInt32:
      return "int";
    case DType::kInt8:
      return "char";
    case DType::kUInt8:
      return "uchar";
  }
  return "unknown";
}

/// Name used when emitting CUDA C source for this type.
constexpr std::string_view dtype_cuda_name(DType t) {
  switch (t) {
    case DType::kFloat32:
      return "float";
    case DType::kInt32:
      return "int";
    case DType::kInt8:
      return "signed char";
    case DType::kUInt8:
      return "unsigned char";
  }
  return "unknown";
}

}  // namespace igc
