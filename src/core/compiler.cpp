#include "core/compiler.h"

#include <chrono>

#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "codegen/jit_lower.h"
#include "core/error.h"
#include "graph/shape_infer.h"
#include "graphtune/graph_tuner.h"
#include "obs/metrics.h"
#include "ops/nn/conv2d.h"
#include "tune/conv_tuner.h"

namespace igc {

CompiledModel compile(models::Model model, const sim::Platform& platform,
                      const CompileOptions& opts) {
  CompiledModel cm;
  cm.name_ = model.name;
  cm.platform_ = &platform;
  cm.graph_ = std::move(model.graph);
  graph::PassPipelineOptions popts;
  popts.validate_after_each = opts.validate_after_each_pass;
  popts.dump_graph_after = opts.dump_graph_after;
  popts.dump_stream = opts.dump_stream;
  const graph::PassPipeline pipeline = graph::build_pipeline(
      opts.pass_names, opts.disabled_passes, opts.cpu_fallback_ops,
      std::move(popts));
  cm.pass_report_ = pipeline.run(cm.graph_);
  cm.pass_stats_ = graph::pass_stats_from(cm.pass_report_, cm.graph_);
  if (opts.warm_db != nullptr) cm.db_ = *opts.warm_db;
  cm.tuned_ = !opts.skip_tuning;
  if (!opts.skip_tuning) {
    tune::TuneOptions topts;
    topts.n_trials = opts.tune_trials;
    topts.strategy = opts.strategy;
    topts.journal = opts.tune_journal;
    const graphtune::GraphTuneResult layouts =
        graphtune::tune_graph_layouts(cm.graph_, platform.gpu, cm.db_, topts);
    cm.layouts_ = layouts.layout_of_conv;
  }

  // Resolve every conv's schedule once, here, so serving runs skip the
  // per-dispatch database lookup. Content matches what the executor would
  // resolve per run, so simulated latencies are unchanged.
  for (int id : cm.graph_.conv_node_ids()) {
    const graph::Node& n = cm.graph_.node(id);
    const int block = [&] {
      auto it = cm.layouts_.find(id);
      return it == cm.layouts_.end() ? 1 : it->second;
    }();
    tune::ScheduleConfig cfg;
    if (cm.tuned_) {
      cfg = tune::lookup_or_default(n.conv, platform.gpu, block, &cm.db_);
    } else {
      cfg = ops::conv2d_manual_schedule(n.conv, platform.gpu);
      cfg.set("layout_block", block);
    }
    cm.conv_schedules_.emplace(id, std::move(cfg));
  }

  // Plan memory once. Buffer assignment depends only on liveness, so every
  // dynamic-shape binding reuses this plan with re-resolved sizes — zero
  // replanning at run time (the graph.plan.plans metric stays flat).
  cm.plan_ =
      std::make_shared<const graph::MemoryPlan>(graph::plan_memory(cm.graph_));

  if (opts.backend == Backend::kJit) {
    auto& cache = codegen::jit::KernelCache::shared(opts.kernel_cache_dir);
    codegen::jit::LowerResult lr = codegen::jit::build_dispatch_table(
        cm.graph_, cache, opts.compile_trace);
    cm.jit_ = lr.table;
    cm.jit_kernels_ = lr.kernels;
    cm.jit_nodes_covered_ = lr.nodes_covered;
    cm.jit_error_ = lr.error;
  }
  return cm;
}

RunResult CompiledModel::run(const RunOptions& opts) const {
  // Resolve the shape binding first: a non-seed (batch, hw) runs the cached
  // variant — rebound graph, re-resolved buffer sizes over the same buffer
  // assignment, pre-resolved conv schedules. The seed binding runs the
  // compiled graph exactly as before.
  const graph::ShapeSpec& spec = graph_.shape_spec();
  const ShapeVariant* variant = resolve_variant(opts.batch, opts.input_hw);
  const graph::Graph& run_graph = variant != nullptr ? variant->graph : graph_;
  const int64_t bound_batch =
      variant != nullptr ? variant->batch : spec.seed_batch;
  const int64_t bound_hw = variant != nullptr ? variant->hw : spec.seed_hw;

  graph::ExecOptions eopts;
  eopts.compute_numerics = opts.compute_numerics;
  eopts.use_tuned_configs = tuned_;
  eopts.db = &db_;
  eopts.conv_layout_block = layouts_;
  eopts.conv_schedules =
      variant != nullptr ? &variant->conv_schedules : &conv_schedules_;
  eopts.mode = opts.mode;
  eopts.use_arena = opts.use_arena;
  eopts.trace = opts.trace;
  // JIT kernels are specialized to the seed shapes; non-seed bindings take
  // the reference path (bit-identical numerics, host time only).
  if (opts.backend != RunBackend::kInterp && variant == nullptr) {
    eopts.jit = jit_.get();
  }
  if (opts.trace != nullptr) {
    obs::TraceMeta meta;
    meta.model = name_;
    meta.platform = platform_->name;
    meta.mode =
        opts.mode == graph::ExecMode::kWavefront ? "wavefront" : "sequential";
    meta.arena = opts.use_arena;
    opts.trace->begin(std::move(meta));
  }

  std::unique_lock<std::mutex> serving_lock;
  if (opts.serving_context != nullptr) {
    // A worker-private context: the caller guarantees exclusivity, so no
    // model-wide lock — this is what lets a serving pool run one model
    // concurrently across workers.
    IGC_CHECK(opts.serving_context->batch_ == bound_batch &&
              opts.serving_context->hw_ == bound_hw)
        << "RunOptions shape binding (batch " << bound_batch << ", hw "
        << bound_hw << ") does not match the serving context's (batch "
        << opts.serving_context->batch_ << ", hw "
        << opts.serving_context->hw_
        << ") — build the context with make_serving_context(batch, hw, pool)";
    eopts.use_arena = true;
    eopts.plan = &opts.serving_context->plan_;
    eopts.arena = opts.serving_context->arena_.get();
  } else if (opts.use_arena) {
    // Arena runs share one set of buffers, so they serialize on the model.
    // The arena itself is built once; a binding change re-sizes its planned
    // buffers in place (pages are reused where they still fit).
    serving_lock = std::unique_lock<std::mutex>(serving_->mu);
    const graph::MemoryPlan* use_plan =
        variant != nullptr ? &variant->plan : plan_.get();
    const std::pair<int64_t, int64_t> binding{bound_batch, bound_hw};
    if (serving_->arena == nullptr) {
      serving_->arena = std::make_unique<BufferArena>(use_plan->buffer_bytes);
      serving_->arena_binding = binding;
    } else if (serving_->arena_binding != binding) {
      serving_->arena->rebind(use_plan->buffer_bytes);
      serving_->arena_binding = binding;
    }
    eopts.plan = use_plan;
    eopts.arena = serving_->arena.get();
  }

  Rng rng(opts.input_seed);
  const auto host_t0 = std::chrono::steady_clock::now();
  const graph::ExecResult r =
      graph::execute(run_graph, *platform_, eopts, rng);
  const double host_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - host_t0)
                             .count();
  RunResult out;
  out.output = r.output;
  out.latency_ms = r.latency_ms;
  out.serial_ms = r.serial_ms;
  out.critical_path_ms = r.critical_path_ms;
  out.conv_ms = r.conv_ms;
  out.vision_ms = r.vision_ms;
  out.copy_ms = r.copy_ms;
  out.fallback_ms = r.fallback_ms;
  out.other_ms = r.other_ms;
  out.peak_intermediate_bytes = r.peak_intermediate_bytes;
  out.arena_bytes = r.arena_bytes;
  out.arena_page_bytes = r.arena_page_bytes;
  out.counters = r.counters;

  // Serving telemetry: every run() feeds the process-wide latency families,
  // so a sampler or /metrics scrape can watch tail latency on a live
  // endpoint. run.latency_ms and the per-category families are simulated
  // times (deterministic per run); run.host_ms is real wall clock (the only
  // non-deterministic metric a run records).
  auto& m = obs::MetricsRegistry::global();
  static auto& run_latency = m.histogram("run.latency_ms");
  static auto& run_host = m.histogram("run.host_ms");
  static auto& run_conv = m.histogram("run.conv_ms");
  static auto& run_vision = m.histogram("run.vision_ms");
  static auto& run_copy = m.histogram("run.copy_ms");
  static auto& run_fallback = m.histogram("run.fallback_ms");
  static auto& run_other = m.histogram("run.other_ms");
  run_latency.observe(out.latency_ms);
  run_host.observe(host_ms);
  run_conv.observe(out.conv_ms);
  run_vision.observe(out.vision_ms);
  run_copy.observe(out.copy_ms);
  run_fallback.observe(out.fallback_ms);
  run_other.observe(out.other_ms);
  return out;
}

RunResult CompiledModel::run(uint64_t input_seed, bool compute_numerics) const {
  RunOptions opts;
  opts.input_seed = input_seed;
  opts.compute_numerics = compute_numerics;
  return run(opts);
}

RunResult CompiledModel::run(int64_t batch, int64_t input_hw,
                             const RunOptions& opts) const {
  RunOptions o = opts;
  o.batch = batch;
  o.input_hw = input_hw;
  return run(o);
}

graph::MemoryPlan CompiledModel::memory_plan() const { return *plan_; }

const CompiledModel::ShapeVariant* CompiledModel::resolve_variant(
    int64_t batch, int64_t input_hw) const {
  const graph::ShapeSpec& spec = graph_.shape_spec();
  const int64_t b = batch == 0 ? spec.seed_batch : batch;
  const int64_t hw = input_hw;
  if (b == spec.seed_batch && (hw == 0 || hw == spec.seed_hw)) return nullptr;
  graph::validate_binding(spec, b, hw);
  const std::pair<int64_t, int64_t> key{b, hw == 0 ? spec.seed_hw : hw};

  std::lock_guard<std::mutex> lock(serving_->variants_mu);
  auto it = serving_->variants.find(key);
  if (it != serving_->variants.end()) return it->second.get();

  auto v = std::make_unique<ShapeVariant>();
  v->batch = key.first;
  v->hw = key.second;
  v->graph = graph::rebind_shapes(graph_, b, hw == spec.seed_hw ? 0 : hw);
  // Same buffer assignment, re-resolved sizes — no plan_memory() call.
  v->plan = *plan_;
  v->plan.buffer_bytes = graph::resolve_buffer_bytes(*plan_, v->graph);
  v->plan.unshared_bytes = 0;
  for (const graph::Node& n : v->graph.nodes()) {
    if (v->plan.buffer_of_node[static_cast<size_t>(n.id)] >= 0) {
      v->plan.unshared_bytes += n.out_shape.numel() * 4;
    }
  }
  // Conv schedules for the rebound workloads, resolved with the same logic
  // compile() used (lookup only — no tuning trials happen here).
  for (int id : v->graph.conv_node_ids()) {
    const graph::Node& n = v->graph.node(id);
    const int block = [&] {
      auto bit = layouts_.find(id);
      return bit == layouts_.end() ? 1 : bit->second;
    }();
    tune::ScheduleConfig cfg;
    if (tuned_) {
      cfg = tune::lookup_or_default(n.conv, platform_->gpu, block, &db_);
    } else {
      cfg = ops::conv2d_manual_schedule(n.conv, platform_->gpu);
      cfg.set("layout_block", block);
    }
    v->conv_schedules.emplace(id, std::move(cfg));
  }
  const ShapeVariant* raw = v.get();
  serving_->variants.emplace(key, std::move(v));
  return raw;
}

int64_t ServingContext::arena_bytes() const {
  return arena_ == nullptr ? 0 : arena_->capacity_bytes();
}

int64_t ServingContext::arena_page_bytes() const {
  return arena_ == nullptr ? 0 : arena_->page_bytes_held();
}

const std::shared_ptr<PagePool>& ServingContext::page_pool() const {
  return arena_->pool();
}

std::shared_ptr<PagePool> CompiledModel::page_pool() const {
  std::lock_guard<std::mutex> lock(serving_->variants_mu);
  if (serving_->pool == nullptr) serving_->pool = std::make_shared<PagePool>();
  return serving_->pool;
}

std::unique_ptr<ServingContext> CompiledModel::make_serving_context() const {
  return make_serving_context(0, 0, nullptr);
}

std::unique_ptr<ServingContext> CompiledModel::make_serving_context(
    int64_t batch, int64_t input_hw, std::shared_ptr<PagePool> pool) const {
  const graph::ShapeSpec& spec = graph_.shape_spec();
  const ShapeVariant* variant = resolve_variant(batch, input_hw);
  auto ctx = std::unique_ptr<ServingContext>(new ServingContext());
  ctx->plan_ = variant != nullptr ? variant->plan : *plan_;
  ctx->batch_ = variant != nullptr ? variant->batch : spec.seed_batch;
  ctx->hw_ = variant != nullptr ? variant->hw : spec.seed_hw;
  PagedArena::Options aopts;
  aopts.cache_runs = false;  // pages return to the shared pool per request
  ctx->arena_ = std::make_unique<BufferArena>(
      ctx->plan_.buffer_bytes,
      pool != nullptr ? std::move(pool) : page_pool(), aopts);
  return ctx;
}

std::vector<std::string> CompiledModel::pass_pipeline() const {
  std::vector<std::string> names;
  names.reserve(pass_report_.size());
  for (const auto& st : pass_report_) names.push_back(st.pass);
  return names;
}

std::map<std::string, std::string> CompiledModel::generated_sources() const {
  std::map<std::string, std::string> out;
  for (int id : graph_.conv_node_ids()) {
    const auto& p = graph_.node(id).conv;
    if (p.groups != 1) continue;  // IR lowering covers non-grouped conv
    const std::string key = p.workload_key();
    if (out.count(key)) continue;
    const int block = [&] {
      auto it = layouts_.find(id);
      return it == layouts_.end() ? 1 : it->second;
    }();
    tune::ScheduleConfig cfg =
        tune::lookup_or_default(p, platform_->gpu, block, &db_);
    // The IR lowering tiles along oc/ow; fall back to safe divisors if the
    // tuned tiles do not divide (remainder handling is a codegen TODO).
    auto fix_tile = [&](const char* knob, int64_t extent) {
      int64_t t = cfg.get_or(knob, 1);
      if (t <= 0 || extent % t != 0) cfg.set(knob, 1);
    };
    fix_tile("tile_oc", p.out_channels);
    fix_tile("tile_ow", p.out_w());
    const ir::LoweredKernel kernel = ops::conv2d_build_ir(p, cfg);
    out.emplace(key, codegen::emit_for_device(kernel, platform_->gpu));
  }
  return out;
}

}  // namespace igc
