#include "core/compiler.h"

#include <chrono>

#include "codegen/codegen.h"
#include "codegen/jit.h"
#include "codegen/jit_lower.h"
#include "graphtune/graph_tuner.h"
#include "obs/metrics.h"
#include "ops/nn/conv2d.h"
#include "tune/conv_tuner.h"

namespace igc {

CompiledModel compile(models::Model model, const sim::Platform& platform,
                      const CompileOptions& opts) {
  CompiledModel cm;
  cm.name_ = model.name;
  cm.platform_ = &platform;
  cm.graph_ = std::move(model.graph);
  graph::PassPipelineOptions popts;
  popts.validate_after_each = opts.validate_after_each_pass;
  popts.dump_graph_after = opts.dump_graph_after;
  popts.dump_stream = opts.dump_stream;
  const graph::PassPipeline pipeline = graph::build_pipeline(
      opts.pass_names, opts.disabled_passes, opts.cpu_fallback_ops,
      std::move(popts));
  cm.pass_report_ = pipeline.run(cm.graph_);
  cm.pass_stats_ = graph::pass_stats_from(cm.pass_report_, cm.graph_);
  if (opts.warm_db != nullptr) cm.db_ = *opts.warm_db;
  cm.tuned_ = !opts.skip_tuning;
  if (!opts.skip_tuning) {
    tune::TuneOptions topts;
    topts.n_trials = opts.tune_trials;
    topts.strategy = opts.strategy;
    topts.journal = opts.tune_journal;
    const graphtune::GraphTuneResult layouts =
        graphtune::tune_graph_layouts(cm.graph_, platform.gpu, cm.db_, topts);
    cm.layouts_ = layouts.layout_of_conv;
  }

  // Resolve every conv's schedule once, here, so serving runs skip the
  // per-dispatch database lookup. Content matches what the executor would
  // resolve per run, so simulated latencies are unchanged.
  for (int id : cm.graph_.conv_node_ids()) {
    const graph::Node& n = cm.graph_.node(id);
    const int block = [&] {
      auto it = cm.layouts_.find(id);
      return it == cm.layouts_.end() ? 1 : it->second;
    }();
    tune::ScheduleConfig cfg;
    if (cm.tuned_) {
      cfg = tune::lookup_or_default(n.conv, platform.gpu, block, &cm.db_);
    } else {
      cfg = ops::conv2d_manual_schedule(n.conv, platform.gpu);
      cfg.set("layout_block", block);
    }
    cm.conv_schedules_.emplace(id, std::move(cfg));
  }

  if (opts.backend == Backend::kJit) {
    auto& cache = codegen::jit::KernelCache::shared(opts.kernel_cache_dir);
    codegen::jit::LowerResult lr = codegen::jit::build_dispatch_table(
        cm.graph_, cache, opts.compile_trace);
    cm.jit_ = lr.table;
    cm.jit_kernels_ = lr.kernels;
    cm.jit_nodes_covered_ = lr.nodes_covered;
    cm.jit_error_ = lr.error;
  }
  return cm;
}

RunResult CompiledModel::run(const RunOptions& opts) const {
  graph::ExecOptions eopts;
  eopts.compute_numerics = opts.compute_numerics;
  eopts.use_tuned_configs = tuned_;
  eopts.db = &db_;
  eopts.conv_layout_block = layouts_;
  eopts.conv_schedules = &conv_schedules_;
  eopts.mode = opts.mode;
  eopts.use_arena = opts.use_arena;
  eopts.trace = opts.trace;
  if (opts.backend != RunBackend::kInterp) eopts.jit = jit_.get();
  if (opts.trace != nullptr) {
    obs::TraceMeta meta;
    meta.model = name_;
    meta.platform = platform_->name;
    meta.mode =
        opts.mode == graph::ExecMode::kWavefront ? "wavefront" : "sequential";
    meta.arena = opts.use_arena;
    opts.trace->begin(std::move(meta));
  }

  std::unique_lock<std::mutex> serving_lock;
  if (opts.serving_context != nullptr) {
    // A worker-private context: the caller guarantees exclusivity, so no
    // model-wide lock — this is what lets a serving pool run one model
    // concurrently across workers.
    eopts.use_arena = true;
    eopts.plan = &opts.serving_context->plan_;
    eopts.arena = opts.serving_context->arena_.get();
  } else if (opts.use_arena) {
    // Arena runs share one set of buffers, so they serialize on the model.
    serving_lock = std::unique_lock<std::mutex>(serving_->mu);
    if (serving_->arena == nullptr) {
      serving_->plan =
          std::make_unique<graph::MemoryPlan>(graph::plan_memory(graph_));
      serving_->arena =
          std::make_unique<BufferArena>(serving_->plan->buffer_bytes);
    }
    eopts.plan = serving_->plan.get();
    eopts.arena = serving_->arena.get();
  }

  Rng rng(opts.input_seed);
  const auto host_t0 = std::chrono::steady_clock::now();
  const graph::ExecResult r = graph::execute(graph_, *platform_, eopts, rng);
  const double host_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - host_t0)
                             .count();
  RunResult out;
  out.output = r.output;
  out.latency_ms = r.latency_ms;
  out.serial_ms = r.serial_ms;
  out.critical_path_ms = r.critical_path_ms;
  out.conv_ms = r.conv_ms;
  out.vision_ms = r.vision_ms;
  out.copy_ms = r.copy_ms;
  out.fallback_ms = r.fallback_ms;
  out.other_ms = r.other_ms;
  out.peak_intermediate_bytes = r.peak_intermediate_bytes;
  out.arena_bytes = r.arena_bytes;
  out.counters = r.counters;

  // Serving telemetry: every run() feeds the process-wide latency families,
  // so a sampler or /metrics scrape can watch tail latency on a live
  // endpoint. run.latency_ms and the per-category families are simulated
  // times (deterministic per run); run.host_ms is real wall clock (the only
  // non-deterministic metric a run records).
  auto& m = obs::MetricsRegistry::global();
  static auto& run_latency = m.histogram("run.latency_ms");
  static auto& run_host = m.histogram("run.host_ms");
  static auto& run_conv = m.histogram("run.conv_ms");
  static auto& run_vision = m.histogram("run.vision_ms");
  static auto& run_copy = m.histogram("run.copy_ms");
  static auto& run_fallback = m.histogram("run.fallback_ms");
  static auto& run_other = m.histogram("run.other_ms");
  run_latency.observe(out.latency_ms);
  run_host.observe(host_ms);
  run_conv.observe(out.conv_ms);
  run_vision.observe(out.vision_ms);
  run_copy.observe(out.copy_ms);
  run_fallback.observe(out.fallback_ms);
  run_other.observe(out.other_ms);
  return out;
}

RunResult CompiledModel::run(uint64_t input_seed, bool compute_numerics) const {
  RunOptions opts;
  opts.input_seed = input_seed;
  opts.compute_numerics = compute_numerics;
  return run(opts);
}

graph::MemoryPlan CompiledModel::memory_plan() const {
  return graph::plan_memory(graph_);
}

int64_t ServingContext::arena_bytes() const {
  return arena_ == nullptr ? 0 : arena_->capacity_bytes();
}

std::unique_ptr<ServingContext> CompiledModel::make_serving_context() const {
  auto ctx = std::unique_ptr<ServingContext>(new ServingContext());
  ctx->plan_ = graph::plan_memory(graph_);
  ctx->arena_ = std::make_unique<BufferArena>(ctx->plan_.buffer_bytes);
  return ctx;
}

std::vector<std::string> CompiledModel::pass_pipeline() const {
  std::vector<std::string> names;
  names.reserve(pass_report_.size());
  for (const auto& st : pass_report_) names.push_back(st.pass);
  return names;
}

std::map<std::string, std::string> CompiledModel::generated_sources() const {
  std::map<std::string, std::string> out;
  for (int id : graph_.conv_node_ids()) {
    const auto& p = graph_.node(id).conv;
    if (p.groups != 1) continue;  // IR lowering covers non-grouped conv
    const std::string key = p.workload_key();
    if (out.count(key)) continue;
    const int block = [&] {
      auto it = layouts_.find(id);
      return it == layouts_.end() ? 1 : it->second;
    }();
    tune::ScheduleConfig cfg =
        tune::lookup_or_default(p, platform_->gpu, block, &db_);
    // The IR lowering tiles along oc/ow; fall back to safe divisors if the
    // tuned tiles do not divide (remainder handling is a codegen TODO).
    auto fix_tile = [&](const char* knob, int64_t extent) {
      int64_t t = cfg.get_or(knob, 1);
      if (t <= 0 || extent % t != 0) cfg.set(knob, 1);
    };
    fix_tile("tile_oc", p.out_channels);
    fix_tile("tile_ow", p.out_w());
    const ir::LoweredKernel kernel = ops::conv2d_build_ir(p, cfg);
    out.emplace(key, codegen::emit_for_device(kernel, platform_->gpu));
  }
  return out;
}

}  // namespace igc
