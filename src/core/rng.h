// Deterministic pseudo-random number generation.
//
// All randomized components (synthetic weights, tuner exploration, workload
// generators) consume an explicitly seeded Rng so every run of every test and
// bench is reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace igc {

/// splitmix64-based generator: tiny, fast, and good enough for workload
/// synthesis and stochastic search (not for cryptography).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  uint64_t next_u64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t next_below(uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t next_int(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform float in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Standard normal via Box-Muller (one value per call; simple over fast).
  float next_gaussian() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-12) u1 = 1e-12;
    return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) *
                              std::cos(6.283185307179586 * u2));
  }

 private:
  uint64_t state_;
};

}  // namespace igc
