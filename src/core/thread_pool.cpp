#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "core/error.h"

namespace igc {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (shutting_down_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.fn();
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(fn)});
  }
  cv_.notify_one();
}

namespace {
thread_local bool t_inside_pool = false;
}  // namespace

void ThreadPool::parallel_for(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  const int nw = num_threads();
  // Nested parallel_for from a worker thread would deadlock waiting for the
  // workers it is itself occupying; degrade to serial execution instead.
  if (n == 1 || nw == 1 || t_inside_pool) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int64_t chunks = std::min<int64_t>(n, nw * 4);
  const int64_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<int64_t> remaining(chunks);
  std::exception_ptr first_error;
  std::mutex err_mu;
  std::mutex done_mu;
  std::condition_variable done_cv;

  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t lo = c * chunk_size;
    const int64_t hi = std::min(n, lo + chunk_size);
    submit([&, lo, hi] {
      t_inside_pool = true;
      try {
        for (int64_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace igc
