#include "core/thread_pool.h"

#include <algorithm>

#include "core/error.h"

namespace igc {

namespace {
/// Which pool (if any) the current thread belongs to as a worker.
thread_local const ThreadPool* t_worker_of = nullptr;
}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return t_worker_of == this; }

void ThreadPool::worker_loop() {
  t_worker_of = this;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (shutting_down_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.fn();
  }
}

void ThreadPool::submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(Task{std::move(fn)});
  }
  cv_.notify_one();
}

void ThreadPool::parallel_for(int64_t n, const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  const int nw = num_threads();
  // A nested parallel_for from one of this pool's own workers would deadlock
  // waiting for the workers it is itself occupying; degrade to serial
  // execution instead. (Workers of *other* pools may block here safely.)
  if (n == 1 || nw == 1 || on_worker_thread()) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const int64_t chunks = std::min<int64_t>(n, nw * 4);
  const int64_t chunk_size = (n + chunks - 1) / chunks;

  // Chunk tasks capture these locals by reference, so the function must not
  // return until every chunk has fully finished executing — not merely been
  // counted down. The decrement therefore happens under `done_mu` as the very
  // last action of each chunk, and the waiter's predicate runs under the same
  // mutex: once it observes remaining == 0, no chunk can still touch the
  // captured state.
  int64_t remaining = chunks;
  std::exception_ptr first_error;
  std::mutex done_mu;
  std::condition_variable done_cv;

  for (int64_t c = 0; c < chunks; ++c) {
    const int64_t lo = c * chunk_size;
    const int64_t hi = std::min(n, lo + chunk_size);
    submit([&, lo, hi] {
      std::exception_ptr err;
      try {
        for (int64_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(done_mu);
      if (err && !first_error) first_error = err;
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

ThreadPool& ThreadPool::scheduler() {
  static ThreadPool pool;
  return pool;
}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void TaskGroup::run(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_.submit([this, fn = std::move(fn)] {
    std::exception_ptr err;
    try {
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (err) {
      failed_ = true;
      if (!error_) error_ = err;
    }
    if (--pending_ == 0) cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  if (error_) {
    std::exception_ptr err = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

bool TaskGroup::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

}  // namespace igc
