// A small fixed-size thread pool with a blocking parallel_for.
//
// The GPU simulator uses this to execute work-groups concurrently on the
// host. The pool is shared process-wide (see ThreadPool::global()) so nested
// operators do not oversubscribe the machine.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace igc {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (defaults to hardware
  /// concurrency, minimum 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(i) for i in [0, n), distributing contiguous chunks over the
  /// workers, and blocks until all iterations complete. Exceptions thrown by
  /// fn propagate to the caller (first one wins).
  void parallel_for(int64_t n, const std::function<void(int64_t)>& fn);

  /// Process-wide shared pool.
  static ThreadPool& global();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();
  void submit(std::function<void()> fn);

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

}  // namespace igc
