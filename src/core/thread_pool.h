// A small fixed-size thread pool with a blocking parallel_for and fire-and-
// collect task groups.
//
// Two process-wide pools exist:
//   * ThreadPool::global()    — fine-grained data parallelism (the GPU
//     simulator's work-groups, reference kernels);
//   * ThreadPool::scheduler() — coarse graph-node tasks from the wavefront
//     executor. Keeping them separate lets a node task fan data-parallel
//     work out onto global() without the two levels deadlocking on each
//     other's workers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace igc {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (defaults to hardware
  /// concurrency, minimum 1).
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is one of *this* pool's workers. Blocking
  /// on this pool from its own worker would deadlock; callers use this to
  /// degrade to inline execution instead.
  bool on_worker_thread() const;

  /// Enqueues one task; returns immediately. Safe to call from any thread,
  /// including this pool's own workers (the task just queues behind others).
  void submit(std::function<void()> fn);

  /// Runs fn(i) for i in [0, n), distributing contiguous chunks over the
  /// workers, and blocks until all iterations complete. Exceptions thrown by
  /// fn propagate to the caller (first one wins). Every chunk task has fully
  /// finished — not merely been counted — before this returns, so fn may
  /// capture stack locals by reference.
  void parallel_for(int64_t n, const std::function<void(int64_t)>& fn);

  /// Process-wide shared pool for data-parallel kernels.
  static ThreadPool& global();
  /// Process-wide shared pool for coarse graph-node tasks.
  static ThreadPool& scheduler();

 private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool shutting_down_ = false;
};

/// Tracks a dynamic set of tasks submitted to a pool and joins them.
///
/// run() may be called concurrently, including from inside a running task
/// (tasks spawning successor tasks is the wavefront executor's dispatch
/// pattern). wait() blocks until every submitted task has finished and
/// rethrows the first exception any task threw. The destructor waits (without
/// rethrowing) so tasks never outlive captured state.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> fn);
  void wait();
  /// True once any task has thrown (sticky). Lets spawners stop scheduling
  /// follow-up work early.
  bool failed() const;

 private:
  ThreadPool& pool_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int64_t pending_ = 0;
  std::exception_ptr error_;  // consumed by the wait() that rethrows it
  bool failed_ = false;       // sticky even after the error is consumed
};

}  // namespace igc
