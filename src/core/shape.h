// Tensor shapes: a small, value-semantic vector of extents with the usual
// volume / stride helpers used across the stack.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "core/error.h"

namespace igc {

/// An immutable-by-convention list of dimension extents.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) { validate(); }

  int ndim() const { return static_cast<int>(dims_.size()); }
  int64_t operator[](int i) const {
    IGC_CHECK_GE(i, 0);
    IGC_CHECK_LT(i, ndim());
    return dims_[static_cast<size_t>(i)];
  }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Total number of elements (1 for a rank-0 shape).
  int64_t numel() const {
    int64_t n = 1;
    for (int64_t d : dims_) n *= d;
    return n;
  }

  /// Row-major strides, in elements.
  std::vector<int64_t> strides() const {
    std::vector<int64_t> s(dims_.size(), 1);
    for (int i = static_cast<int>(dims_.size()) - 2; i >= 0; --i) {
      s[static_cast<size_t>(i)] =
          s[static_cast<size_t>(i) + 1] * dims_[static_cast<size_t>(i) + 1];
    }
    return s;
  }

  bool operator==(const Shape& o) const { return dims_ == o.dims_; }
  bool operator!=(const Shape& o) const { return !(*this == o); }

  std::string str() const {
    std::string s = "(";
    for (size_t i = 0; i < dims_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    s += ")";
    return s;
  }

 private:
  void validate() const {
    for (int64_t d : dims_) IGC_CHECK_GE(d, 0) << "negative dim in shape " << str();
  }
  std::vector<int64_t> dims_;
};

}  // namespace igc
