#include "ir/interp.h"

#include <cmath>

#include "core/error.h"

namespace igc::ir {
namespace {

/// A scalar runtime value: int64 or double, tagged by the expression dtype.
struct Value {
  bool is_float = false;
  int64_t i = 0;
  double f = 0.0;

  int64_t as_int() const { return is_float ? static_cast<int64_t>(f) : i; }
  double as_float() const { return is_float ? f : static_cast<double>(i); }
};

Value int_value(int64_t v) { return Value{false, v, 0.0}; }
Value float_value(double v) { return Value{true, 0, v}; }

class Interp {
 public:
  explicit Interp(const std::map<std::string, Tensor>& buffers)
      : buffers_(buffers) {}

  void run(const LoweredKernel& k) {
    for (const BufferParam& p : k.params) {
      auto it = buffers_.find(p.name);
      IGC_CHECK(it != buffers_.end()) << "missing buffer " << p.name;
      IGC_CHECK(it->second.dtype() == p.dtype)
          << "dtype mismatch for " << p.name;
      IGC_CHECK_GE(it->second.numel(), p.size) << "buffer too small: " << p.name;
    }
    exec_seq(k.body);
  }

 private:
  Value eval(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kIntImm:
        return int_value(e->int_val);
      case ExprKind::kFloatImm:
        return float_value(e->float_val);
      case ExprKind::kVar: {
        auto it = env_.find(e->name);
        IGC_CHECK(it != env_.end()) << "unbound var " << e->name;
        return it->second;
      }
      case ExprKind::kBinary:
        return eval_binary(e);
      case ExprKind::kSelect: {
        const Value c = eval(e->a);
        return c.as_int() != 0 ? eval(e->b) : eval(e->c);
      }
      case ExprKind::kLoad: {
        const int64_t idx = eval(e->a).as_int();
        const Tensor& t = buffer(e->name);
        IGC_CHECK_GE(idx, 0) << "OOB load from " << e->name;
        IGC_CHECK_LT(idx, t.numel()) << "OOB load from " << e->name;
        if (t.dtype() == DType::kFloat32) return float_value(t.data_f32()[idx]);
        if (t.dtype() == DType::kInt32) return int_value(t.data_i32()[idx]);
        IGC_CHECK(false) << "unsupported load dtype";
        return {};
      }
    }
    IGC_CHECK(false) << "bad expr";
    return {};
  }

  Value eval_binary(const ExprPtr& e) {
    const Value a = eval(e->a);
    const Value b = eval(e->b);
    const bool flt = a.is_float || b.is_float;
    auto fa = a.as_float(), fb = b.as_float();
    auto ia = a.as_int(), ib = b.as_int();
    switch (e->op) {
      case BinOp::kAdd:
        return flt ? float_value(fa + fb) : int_value(ia + ib);
      case BinOp::kSub:
        return flt ? float_value(fa - fb) : int_value(ia - ib);
      case BinOp::kMul:
        return flt ? float_value(fa * fb) : int_value(ia * ib);
      case BinOp::kDiv:
        if (flt) return float_value(fa / fb);
        IGC_CHECK_NE(ib, 0);
        return int_value(ia / ib);
      case BinOp::kMod:
        IGC_CHECK(!flt) << "mod on float";
        IGC_CHECK_NE(ib, 0);
        return int_value(ia % ib);
      case BinOp::kMin:
        return flt ? float_value(std::min(fa, fb)) : int_value(std::min(ia, ib));
      case BinOp::kMax:
        return flt ? float_value(std::max(fa, fb)) : int_value(std::max(ia, ib));
      case BinOp::kLT:
        return int_value(flt ? fa < fb : ia < ib);
      case BinOp::kLE:
        return int_value(flt ? fa <= fb : ia <= ib);
      case BinOp::kGT:
        return int_value(flt ? fa > fb : ia > ib);
      case BinOp::kGE:
        return int_value(flt ? fa >= fb : ia >= ib);
      case BinOp::kEQ:
        return int_value(flt ? fa == fb : ia == ib);
      case BinOp::kAnd:
        return int_value((ia != 0) && (ib != 0));
      case BinOp::kOr:
        return int_value((ia != 0) || (ib != 0));
    }
    IGC_CHECK(false) << "bad binop";
    return {};
  }

  void exec_seq(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& s : stmts) exec(s);
  }

  void exec(const StmtPtr& s) {
    switch (s->kind) {
      case StmtKind::kFor: {
        // Bound axes are interpreted as full loops: the interpreter plays
        // every block and thread sequentially.
        for (int64_t i = 0; i < s->iv.extent; ++i) {
          env_[s->iv.name] = int_value(i);
          exec_seq(s->body);
        }
        env_.erase(s->iv.name);
        return;
      }
      case StmtKind::kStore: {
        const int64_t idx = eval(s->index).as_int();
        Tensor& t = mutable_buffer(s->buffer);
        IGC_CHECK_GE(idx, 0) << "OOB store to " << s->buffer;
        IGC_CHECK_LT(idx, t.numel()) << "OOB store to " << s->buffer;
        const Value v = eval(s->value);
        if (t.dtype() == DType::kFloat32) {
          t.data_f32()[idx] = static_cast<float>(v.as_float());
        } else if (t.dtype() == DType::kInt32) {
          t.data_i32()[idx] = static_cast<int32_t>(v.as_int());
        } else {
          IGC_CHECK(false) << "unsupported store dtype";
        }
        return;
      }
      case StmtKind::kIf: {
        if (eval(s->cond).as_int() != 0) exec_seq(s->body);
        return;
      }
      case StmtKind::kDeclLocal:
      case StmtKind::kAssign: {
        const Value v = eval(s->value);
        if (s->kind == StmtKind::kDeclLocal && s->dtype == DType::kFloat32) {
          env_[s->buffer] = float_value(v.as_float());
        } else if (s->kind == StmtKind::kDeclLocal) {
          env_[s->buffer] = int_value(v.as_int());
        } else {
          // Keep the declared type of the local.
          auto it = env_.find(s->buffer);
          IGC_CHECK(it != env_.end()) << "assign to undeclared local " << s->buffer;
          env_[s->buffer] =
              it->second.is_float ? float_value(v.as_float()) : int_value(v.as_int());
        }
        return;
      }
      case StmtKind::kBarrier:
      case StmtKind::kComment:
        return;  // no-ops for sequential interpretation
    }
  }

  const Tensor& buffer(const std::string& name) const {
    auto it = buffers_.find(name);
    IGC_CHECK(it != buffers_.end()) << "unknown buffer " << name;
    return it->second;
  }
  Tensor& mutable_buffer(const std::string& name) {
    auto it = buffers_.find(name);
    IGC_CHECK(it != buffers_.end()) << "unknown buffer " << name;
    return const_cast<Tensor&>(it->second);
  }

  const std::map<std::string, Tensor>& buffers_;
  std::map<std::string, Value> env_;
};

}  // namespace

void interpret(const LoweredKernel& kernel,
               const std::map<std::string, Tensor>& buffers) {
  Interp(buffers).run(kernel);
}

}  // namespace igc::ir
