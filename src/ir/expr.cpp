#include "ir/expr.h"

namespace igc::ir {
namespace {

ExprPtr make_expr(Expr e) { return std::make_shared<const Expr>(std::move(e)); }

DType result_dtype(BinOp op, const ExprPtr& a, const ExprPtr& b) {
  switch (op) {
    case BinOp::kLT:
    case BinOp::kLE:
    case BinOp::kGT:
    case BinOp::kGE:
    case BinOp::kEQ:
    case BinOp::kAnd:
    case BinOp::kOr:
      return DType::kInt32;  // booleans are int in the IR
    default:
      // Float is contagious.
      if (a->dtype == DType::kFloat32 || b->dtype == DType::kFloat32) {
        return DType::kFloat32;
      }
      return DType::kInt32;
  }
}

}  // namespace

ExprPtr imm(int64_t v) {
  Expr e;
  e.kind = ExprKind::kIntImm;
  e.dtype = DType::kInt32;
  e.int_val = v;
  return make_expr(std::move(e));
}

ExprPtr fimm(double v) {
  Expr e;
  e.kind = ExprKind::kFloatImm;
  e.dtype = DType::kFloat32;
  e.float_val = v;
  return make_expr(std::move(e));
}

ExprPtr var(const std::string& name, DType dtype) {
  Expr e;
  e.kind = ExprKind::kVar;
  e.dtype = dtype;
  e.name = name;
  return make_expr(std::move(e));
}

ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b) {
  IGC_CHECK(a && b);
  Expr e;
  e.kind = ExprKind::kBinary;
  e.op = op;
  e.dtype = result_dtype(op, a, b);
  e.a = std::move(a);
  e.b = std::move(b);
  return make_expr(std::move(e));
}

ExprPtr add(ExprPtr a, ExprPtr b) { return binary(BinOp::kAdd, std::move(a), std::move(b)); }
ExprPtr sub(ExprPtr a, ExprPtr b) { return binary(BinOp::kSub, std::move(a), std::move(b)); }
ExprPtr mul(ExprPtr a, ExprPtr b) { return binary(BinOp::kMul, std::move(a), std::move(b)); }
ExprPtr div(ExprPtr a, ExprPtr b) { return binary(BinOp::kDiv, std::move(a), std::move(b)); }
ExprPtr mod(ExprPtr a, ExprPtr b) { return binary(BinOp::kMod, std::move(a), std::move(b)); }
ExprPtr min_e(ExprPtr a, ExprPtr b) { return binary(BinOp::kMin, std::move(a), std::move(b)); }
ExprPtr max_e(ExprPtr a, ExprPtr b) { return binary(BinOp::kMax, std::move(a), std::move(b)); }
ExprPtr lt(ExprPtr a, ExprPtr b) { return binary(BinOp::kLT, std::move(a), std::move(b)); }
ExprPtr lte(ExprPtr a, ExprPtr b) { return binary(BinOp::kLE, std::move(a), std::move(b)); }
ExprPtr logical_and(ExprPtr a, ExprPtr b) {
  return binary(BinOp::kAnd, std::move(a), std::move(b));
}

ExprPtr select(ExprPtr cond, ExprPtr then_v, ExprPtr else_v) {
  IGC_CHECK(cond && then_v && else_v);
  Expr e;
  e.kind = ExprKind::kSelect;
  e.dtype = then_v->dtype;
  e.a = std::move(cond);
  e.b = std::move(then_v);
  e.c = std::move(else_v);
  return make_expr(std::move(e));
}

ExprPtr load(const std::string& buffer, ExprPtr index, DType dtype) {
  IGC_CHECK(index);
  Expr e;
  e.kind = ExprKind::kLoad;
  e.dtype = dtype;
  e.name = buffer;
  e.a = std::move(index);
  return make_expr(std::move(e));
}

bool is_bound(IterKind k) {
  switch (k) {
    case IterKind::kBlockX:
    case IterKind::kBlockY:
    case IterKind::kBlockZ:
    case IterKind::kThreadX:
    case IterKind::kThreadY:
    case IterKind::kThreadZ:
      return true;
    default:
      return false;
  }
}

namespace {
StmtPtr make_stmt(Stmt s) { return std::make_shared<const Stmt>(std::move(s)); }
}  // namespace

StmtPtr make_for(IterVar iv, std::vector<StmtPtr> body) {
  IGC_CHECK_GT(iv.extent, 0);
  Stmt s;
  s.kind = StmtKind::kFor;
  s.iv = std::move(iv);
  s.body = std::move(body);
  return make_stmt(std::move(s));
}

StmtPtr make_store(const std::string& buffer, ExprPtr index, ExprPtr value) {
  IGC_CHECK(index && value);
  Stmt s;
  s.kind = StmtKind::kStore;
  s.buffer = buffer;
  s.index = std::move(index);
  s.value = std::move(value);
  return make_stmt(std::move(s));
}

StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> body) {
  IGC_CHECK(cond);
  Stmt s;
  s.kind = StmtKind::kIf;
  s.cond = std::move(cond);
  s.body = std::move(body);
  return make_stmt(std::move(s));
}

StmtPtr make_decl_local(const std::string& name, DType dtype, ExprPtr init) {
  IGC_CHECK(init);
  Stmt s;
  s.kind = StmtKind::kDeclLocal;
  s.buffer = name;
  s.dtype = dtype;
  s.value = std::move(init);
  return make_stmt(std::move(s));
}

StmtPtr make_assign(const std::string& name, ExprPtr value) {
  IGC_CHECK(value);
  Stmt s;
  s.kind = StmtKind::kAssign;
  s.buffer = name;
  s.value = std::move(value);
  return make_stmt(std::move(s));
}

StmtPtr make_barrier() {
  Stmt s;
  s.kind = StmtKind::kBarrier;
  return make_stmt(std::move(s));
}

StmtPtr make_comment(const std::string& text) {
  Stmt s;
  s.kind = StmtKind::kComment;
  s.text = text;
  return make_stmt(std::move(s));
}

namespace {

void accumulate_extents(const StmtPtr& s, int64_t* grid, int64_t* block) {
  if (!s) return;
  if (s->kind == StmtKind::kFor) {
    switch (s->iv.kind) {
      case IterKind::kBlockX:
      case IterKind::kBlockY:
      case IterKind::kBlockZ:
        *grid *= s->iv.extent;
        break;
      case IterKind::kThreadX:
      case IterKind::kThreadY:
      case IterKind::kThreadZ:
        *block *= s->iv.extent;
        break;
      default:
        break;
    }
  }
  for (const StmtPtr& child : s->body) accumulate_extents(child, grid, block);
}

}  // namespace

int64_t LoweredKernel::grid_size() const {
  int64_t grid = 1, block = 1;
  for (const StmtPtr& s : body) accumulate_extents(s, &grid, &block);
  return grid;
}

int64_t LoweredKernel::block_size() const {
  int64_t grid = 1, block = 1;
  for (const StmtPtr& s : body) accumulate_extents(s, &grid, &block);
  return block;
}

}  // namespace igc::ir
