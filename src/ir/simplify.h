// Algebraic simplification of IR expressions before code generation.
//
// Lowering produces index arithmetic full of `x * 1`, `x + 0`, and
// constant-foldable subtrees (e.g. `(0 - 1)` paddings). The simplifier
// folds constants and strips identities so the emitted OpenCL/CUDA reads
// like hand-written code and the device compiler has less to chew on.
#pragma once

#include "ir/expr.h"

namespace igc::ir {

/// Returns an equivalent, simplified expression.
ExprPtr simplify(const ExprPtr& e);

/// Simplifies every expression in a statement tree.
StmtPtr simplify(const StmtPtr& s);

/// Simplifies a whole kernel (parameters unchanged).
LoweredKernel simplify(const LoweredKernel& k);

}  // namespace igc::ir
