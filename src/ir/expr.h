// The unified kernel IR (Sec. 2.3 / Fig. 1).
//
// One lowered loop-nest program represents a GPU kernel independently of the
// target API; the codegen backends print it as OpenCL C (Intel, Mali) or CUDA
// C (Nvidia), and the interpreter executes it on the host for functional
// validation. The IR is deliberately small: scalar expressions, buffer
// loads/stores, loops with schedule annotations (serial / unrolled /
// vectorized / bound to block or thread indices), conditionals, and local
// accumulator variables.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dtype.h"
#include "core/error.h"

namespace igc::ir {

enum class ExprKind {
  kIntImm,
  kFloatImm,
  kVar,
  kBinary,
  kSelect,
  kLoad,
};

enum class BinOp {
  kAdd,
  kSub,
  kMul,
  kDiv,   // integer division for int operands
  kMod,
  kMin,
  kMax,
  kLT,
  kLE,
  kGT,
  kGE,
  kEQ,
  kAnd,
  kOr,
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

struct Expr {
  ExprKind kind = ExprKind::kIntImm;
  DType dtype = DType::kInt32;

  int64_t int_val = 0;   // kIntImm
  double float_val = 0;  // kFloatImm
  std::string name;      // kVar (loop var or accumulator), kLoad (buffer)
  BinOp op = BinOp::kAdd;  // kBinary
  ExprPtr a, b, c;         // operands; kSelect uses (a=cond, b=then, c=else)
};

// ---- Expression factory helpers ------------------------------------------

ExprPtr imm(int64_t v);
ExprPtr fimm(double v);
ExprPtr var(const std::string& name, DType dtype = DType::kInt32);
ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b);
ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr mul(ExprPtr a, ExprPtr b);
ExprPtr div(ExprPtr a, ExprPtr b);
ExprPtr mod(ExprPtr a, ExprPtr b);
ExprPtr min_e(ExprPtr a, ExprPtr b);
ExprPtr max_e(ExprPtr a, ExprPtr b);
ExprPtr lt(ExprPtr a, ExprPtr b);
ExprPtr lte(ExprPtr a, ExprPtr b);
ExprPtr logical_and(ExprPtr a, ExprPtr b);
ExprPtr select(ExprPtr cond, ExprPtr then_v, ExprPtr else_v);
/// Load `buffer[index]` of element type `dtype`.
ExprPtr load(const std::string& buffer, ExprPtr index,
             DType dtype = DType::kFloat32);

// ---- Statements -----------------------------------------------------------

/// How a loop axis is realized on the device.
enum class IterKind {
  kSerial,
  kUnrolled,
  kVectorized,
  kBlockX,
  kBlockY,
  kBlockZ,
  kThreadX,
  kThreadY,
  kThreadZ,
};

/// True for axes realized as block/thread indices rather than loops.
bool is_bound(IterKind k);

struct IterVar {
  std::string name;
  int64_t extent = 1;
  IterKind kind = IterKind::kSerial;
};

enum class StmtKind {
  kFor,       // loop over an IterVar
  kStore,     // buffer[index] = value
  kIf,        // if (cond) { then_body }
  kDeclLocal, // local scalar: <dtype> name = init
  kAssign,    // name = value (local scalar)
  kBarrier,   // work-group barrier
  kComment,
};

struct Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

struct Stmt {
  StmtKind kind = StmtKind::kComment;

  IterVar iv;                  // kFor
  std::vector<StmtPtr> body;   // kFor, kIf
  std::string buffer;          // kStore (buffer), kDeclLocal/kAssign (var name)
  ExprPtr index;               // kStore
  ExprPtr value;               // kStore, kDeclLocal (init), kAssign
  ExprPtr cond;                // kIf
  DType dtype = DType::kFloat32;  // kDeclLocal
  std::string text;            // kComment
};

StmtPtr make_for(IterVar iv, std::vector<StmtPtr> body);
StmtPtr make_store(const std::string& buffer, ExprPtr index, ExprPtr value);
StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> body);
StmtPtr make_decl_local(const std::string& name, DType dtype, ExprPtr init);
StmtPtr make_assign(const std::string& name, ExprPtr value);
StmtPtr make_barrier();
StmtPtr make_comment(const std::string& text);

/// A kernel parameter: a flat global buffer.
struct BufferParam {
  std::string name;
  DType dtype = DType::kFloat32;
  int64_t size = 0;  // elements
  bool is_output = false;
};

/// A fully lowered kernel: parameters plus the scheduled loop nest.
struct LoweredKernel {
  std::string name;
  std::vector<BufferParam> params;
  std::vector<StmtPtr> body;

  /// Extents of the grid/block axes referenced anywhere in the body
  /// (product of bound itervars per kind). Unreferenced axes report 1.
  int64_t grid_size() const;
  int64_t block_size() const;
};

}  // namespace igc::ir
