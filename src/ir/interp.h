// Host interpreter for LoweredKernel.
//
// Executes the IR exactly as written — bound axes (block/thread indices) are
// iterated like loops — so the same program that codegen prints as OpenCL or
// CUDA can be validated numerically against the operator library on small
// inputs.
#pragma once

#include <map>
#include <string>

#include "ir/expr.h"
#include "tensor/tensor.h"

namespace igc::ir {

/// Binds kernel parameters by name to host tensors and runs the kernel.
/// Tensors must match the parameter's dtype and have at least `size`
/// elements; output tensors are written in place.
void interpret(const LoweredKernel& kernel,
               const std::map<std::string, Tensor>& buffers);

}  // namespace igc::ir
