#include "ir/simplify.h"

#include <algorithm>

#include "core/error.h"

namespace igc::ir {
namespace {

bool is_int_const(const ExprPtr& e, int64_t v) {
  return e->kind == ExprKind::kIntImm && e->int_val == v;
}

bool is_float_const(const ExprPtr& e, double v) {
  return e->kind == ExprKind::kFloatImm && e->float_val == v;
}

/// Constant-folds a binary op over two integer immediates.
ExprPtr fold_int(BinOp op, int64_t a, int64_t b) {
  switch (op) {
    case BinOp::kAdd: return imm(a + b);
    case BinOp::kSub: return imm(a - b);
    case BinOp::kMul: return imm(a * b);
    case BinOp::kDiv: return b == 0 ? nullptr : imm(a / b);
    case BinOp::kMod: return b == 0 ? nullptr : imm(a % b);
    case BinOp::kMin: return imm(std::min(a, b));
    case BinOp::kMax: return imm(std::max(a, b));
    case BinOp::kLT: return imm(a < b);
    case BinOp::kLE: return imm(a <= b);
    case BinOp::kGT: return imm(a > b);
    case BinOp::kGE: return imm(a >= b);
    case BinOp::kEQ: return imm(a == b);
    case BinOp::kAnd: return imm((a != 0) && (b != 0));
    case BinOp::kOr: return imm((a != 0) || (b != 0));
  }
  return nullptr;
}

}  // namespace

ExprPtr simplify(const ExprPtr& e) {
  IGC_CHECK(e);
  switch (e->kind) {
    case ExprKind::kIntImm:
    case ExprKind::kFloatImm:
    case ExprKind::kVar:
      return e;
    case ExprKind::kLoad: {
      ExprPtr idx = simplify(e->a);
      if (idx == e->a) return e;
      return load(e->name, std::move(idx), e->dtype);
    }
    case ExprKind::kSelect: {
      ExprPtr c = simplify(e->a);
      ExprPtr t = simplify(e->b);
      ExprPtr f = simplify(e->c);
      if (c->kind == ExprKind::kIntImm) return c->int_val != 0 ? t : f;
      if (c == e->a && t == e->b && f == e->c) return e;
      return select(std::move(c), std::move(t), std::move(f));
    }
    case ExprKind::kBinary:
      break;
  }

  ExprPtr a = simplify(e->a);
  ExprPtr b = simplify(e->b);

  // Constant folding (integer only; float folding would perturb rounding).
  if (a->kind == ExprKind::kIntImm && b->kind == ExprKind::kIntImm) {
    if (ExprPtr folded = fold_int(e->op, a->int_val, b->int_val)) {
      return folded;
    }
  }

  // Identities.
  switch (e->op) {
    case BinOp::kAdd:
      if (is_int_const(a, 0) || is_float_const(a, 0.0)) return b;
      if (is_int_const(b, 0) || is_float_const(b, 0.0)) return a;
      break;
    case BinOp::kSub:
      if (is_int_const(b, 0) || is_float_const(b, 0.0)) return a;
      break;
    case BinOp::kMul:
      if (is_int_const(a, 1) || is_float_const(a, 1.0)) return b;
      if (is_int_const(b, 1) || is_float_const(b, 1.0)) return a;
      if (is_int_const(a, 0) || is_int_const(b, 0)) return imm(0);
      break;
    case BinOp::kDiv:
      if (is_int_const(b, 1) || is_float_const(b, 1.0)) return a;
      break;
    case BinOp::kAnd:
      if (is_int_const(a, 1)) return b;
      if (is_int_const(b, 1)) return a;
      if (is_int_const(a, 0) || is_int_const(b, 0)) return imm(0);
      break;
    case BinOp::kOr:
      if (is_int_const(a, 0)) return b;
      if (is_int_const(b, 0)) return a;
      if (is_int_const(a, 1) || is_int_const(b, 1)) return imm(1);
      break;
    default:
      break;
  }

  if (a == e->a && b == e->b) return e;
  return binary(e->op, std::move(a), std::move(b));
}

StmtPtr simplify(const StmtPtr& s) {
  IGC_CHECK(s);
  Stmt out = *s;
  bool changed = false;
  auto simp = [&](const ExprPtr& x) -> ExprPtr {
    if (!x) return x;
    ExprPtr y = simplify(x);
    if (y != x) changed = true;
    return y;
  };
  out.index = simp(s->index);
  out.value = simp(s->value);
  out.cond = simp(s->cond);
  std::vector<StmtPtr> body;
  body.reserve(s->body.size());
  for (const StmtPtr& child : s->body) {
    StmtPtr c = simplify(child);
    if (c != child) changed = true;
    // Drop statically dead branches.
    if (c->kind == StmtKind::kIf && c->cond->kind == ExprKind::kIntImm) {
      changed = true;
      if (c->cond->int_val != 0) {
        for (const StmtPtr& inner : c->body) body.push_back(inner);
      }
      continue;
    }
    body.push_back(std::move(c));
  }
  out.body = std::move(body);
  if (!changed) return s;
  return std::make_shared<const Stmt>(std::move(out));
}

LoweredKernel simplify(const LoweredKernel& k) {
  LoweredKernel out;
  out.name = k.name;
  out.params = k.params;
  out.body.reserve(k.body.size());
  for (const StmtPtr& s : k.body) out.body.push_back(simplify(s));
  return out;
}

}  // namespace igc::ir
