// Convenience driver that tunes one convolution workload on one device and
// records the result in the tuning database (Sec. 3.2.3).
#pragma once

#include "ops/nn/conv2d.h"
#include "sim/device_spec.h"
#include "tune/tunedb.h"
#include "tune/tuner.h"

namespace igc::tune {

/// Tunes `p` on `dev` with the activation layout NCHW[layout_block]c
/// (1 = plain NCHW) and stores the record in `db` (if not already present).
/// Returns the record.
TuneRecord tune_conv2d(const ops::Conv2dParams& p, const sim::DeviceSpec& dev,
                       int layout_block, TuneDb& db,
                       const TuneOptions& opts = {});

/// Looks up the tuned config for a workload; falls back to the template
/// default when the database has no entry.
ScheduleConfig lookup_or_default(const ops::Conv2dParams& p,
                                 const sim::DeviceSpec& dev, int layout_block,
                                 const TuneDb* db);

}  // namespace igc::tune
