// The tuning flight recorder.
//
// AutoTVM-style search (Sec. 3.2.3) is normally a black box: tune() returns
// only the winning config. The journal records every measurement the tuner
// makes — one record per trial with the config, the measured latency, the
// cost model's prediction (model-guided rounds only), and the best-so-far —
// so a tuning run can be replayed, audited, and turned into convergence
// curves (how many trials until within 5% of the final best, model-guided
// vs random). Persisted as JSONL next to the TuneDb: the db stores the
// answer, the journal stores how the search got there.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "tune/config.h"

namespace igc::tune {

/// One measured trial.
struct TuneTrial {
  /// Task the trial belongs to (TuneDb key for conv workloads; "" for
  /// anonymous tune() calls).
  std::string task;
  std::string strategy;  // "random" | "annealing" | "model_guided"
  int trial = 0;         // 0-based measurement index within the task
  /// Search round: 0 covers the default-config anchor and any warm-up batch;
  /// model-guided fit/measure iterations count up from 1.
  int round = 0;
  std::string config;       // canonical ScheduleConfig::str() knob string
  double measured_ms = 0.0;
  /// Cost-model predicted latency for this config; < 0 when the trial was
  /// not model-ranked (random/annealing trials, warm-up, epsilon slot).
  double predicted_ms = -1.0;
  /// Best measured latency including this trial.
  double best_ms = 0.0;
};

/// Append-only, thread-safe trial log. One journal may span many tasks
/// (graph_tuner journals every conv workload of a model into one).
class TuneJournal {
 public:
  TuneJournal() = default;
  TuneJournal(const TuneJournal& o) : trials_(o.snapshot()) {}
  TuneJournal& operator=(const TuneJournal& o) {
    if (this != &o) {
      auto t = o.snapshot();
      std::lock_guard<std::mutex> lock(mu_);
      trials_ = std::move(t);
    }
    return *this;
  }

  void record(TuneTrial t) {
    std::lock_guard<std::mutex> lock(mu_);
    trials_.push_back(std::move(t));
  }

  std::vector<TuneTrial> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trials_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trials_.size();
  }

  /// Distinct task keys, in first-appearance order.
  std::vector<std::string> tasks() const;
  /// Trials of one task, in recording order.
  std::vector<TuneTrial> task_trials(const std::string& task) const;
  /// Best (minimum) measured ms over the task's trials; +inf when absent.
  double best_ms(const std::string& task) const;
  /// Number of trials until the running best first came within
  /// (1 + tolerance) of the task's final best (>= 1; 0 when absent).
  int trials_to_within(const std::string& task, double tolerance) const;
  /// Running best-so-far curve of one task (one entry per trial).
  std::vector<double> best_curve(const std::string& task) const;

  /// One JSON object per line. Doubles are printed with enough digits to
  /// round-trip exactly, so a replay reproduces best_ms bit for bit.
  std::string jsonl() const;
  /// Parses journal text (via the in-repo obs/json parser). Raises
  /// igc::Error on malformed lines.
  static TuneJournal from_jsonl(const std::string& text);

  bool save(const std::string& path) const;
  static TuneJournal load(const std::string& path);

  /// Human-readable per-task convergence table: trials, default -> best ms,
  /// speedup, and trials-to-within-5%.
  std::string convergence_report() const;

 private:
  mutable std::mutex mu_;
  std::vector<TuneTrial> trials_;
};

}  // namespace igc::tune
