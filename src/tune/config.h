// Schedule configurations and config spaces (AutoTVM-style, Sec. 3.2.3).
//
// A ScheduleConfig is an assignment of integer knobs (tile sizes, unroll
// factor, vectorization width, work-group size, subgroup usage, ...). A
// ConfigSpace enumerates the candidate values per knob; the tuner explores
// the cross product.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/rng.h"

namespace igc::tune {

class ScheduleConfig {
 public:
  ScheduleConfig() = default;

  void set(const std::string& knob, int64_t value) { knobs_[knob] = value; }

  int64_t at(const std::string& knob) const {
    auto it = knobs_.find(knob);
    IGC_CHECK(it != knobs_.end()) << "unknown knob " << knob;
    return it->second;
  }

  int64_t get_or(const std::string& knob, int64_t fallback) const {
    auto it = knobs_.find(knob);
    return it == knobs_.end() ? fallback : it->second;
  }

  bool has(const std::string& knob) const { return knobs_.count(knob) > 0; }

  const std::map<std::string, int64_t>& knobs() const { return knobs_; }

  /// Canonical text form, e.g. "tile_oc=8;vec=8;unroll=2" (sorted by key).
  /// Used as the tuning-database key and in logs.
  std::string str() const {
    std::string s;
    for (const auto& [k, v] : knobs_) {
      if (!s.empty()) s += ";";
      s += k + "=" + std::to_string(v);
    }
    return s;
  }

  bool operator==(const ScheduleConfig& o) const { return knobs_ == o.knobs_; }

 private:
  std::map<std::string, int64_t> knobs_;
};

/// The candidate values of every knob; the space is their cross product.
class ConfigSpace {
 public:
  void add_knob(const std::string& name, std::vector<int64_t> choices) {
    IGC_CHECK(!choices.empty()) << "knob " << name << " has no choices";
    knobs_.push_back({name, std::move(choices)});
  }

  int num_knobs() const { return static_cast<int>(knobs_.size()); }

  /// Total number of configurations.
  int64_t size() const {
    int64_t n = 1;
    for (const auto& k : knobs_) n *= static_cast<int64_t>(k.choices.size());
    return n;
  }

  /// Decodes a flat index (mixed-radix) into a configuration.
  ScheduleConfig at(int64_t index) const {
    IGC_CHECK_GE(index, 0);
    IGC_CHECK_LT(index, size());
    ScheduleConfig cfg;
    for (const auto& k : knobs_) {
      const int64_t radix = static_cast<int64_t>(k.choices.size());
      cfg.set(k.name, k.choices[static_cast<size_t>(index % radix)]);
      index /= radix;
    }
    return cfg;
  }

  ScheduleConfig random(Rng& rng) const {
    return at(static_cast<int64_t>(rng.next_below(static_cast<uint64_t>(size()))));
  }

  /// The untuned default: the first (most conservative) choice of every knob.
  /// This is what "Before" columns in Table 5 execute.
  ScheduleConfig default_config() const {
    ScheduleConfig cfg;
    for (const auto& k : knobs_) cfg.set(k.name, k.choices.front());
    return cfg;
  }

  struct Knob {
    std::string name;
    std::vector<int64_t> choices;
  };
  const std::vector<Knob>& knobs() const { return knobs_; }

 private:
  std::vector<Knob> knobs_;
};

/// Candidate tile sizes: divisors of `extent` drawn from a standard ladder,
/// always including 1. Filtering to divisors keeps the cost model exact (no
/// remainder tiles).
std::vector<int64_t> tile_candidates(int64_t extent, int64_t max_tile = 64);

}  // namespace igc::tune
