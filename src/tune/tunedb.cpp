#include "tune/tunedb.h"

#include <fstream>
#include <sstream>

#include "core/error.h"

namespace igc::tune {

std::string TuneDb::make_key(const std::string& device,
                             const std::string& workload, int layout_block) {
  return device + "/" + workload + "/b" + std::to_string(layout_block);
}

void TuneDb::put(const std::string& key, TuneRecord record) {
  records_[key] = std::move(record);
}

std::optional<TuneRecord> TuneDb::get(const std::string& key) const {
  auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::string TuneDb::serialize() const {
  std::ostringstream os;
  for (const auto& [key, rec] : records_) {
    os << key << "\t" << rec.best_ms << "\t" << rec.default_ms << "\t"
       << rec.config.str() << "\n";
  }
  return os.str();
}

TuneDb TuneDb::deserialize(const std::string& text) {
  TuneDb db;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string key, best, dflt, cfg;
    IGC_CHECK(std::getline(ls, key, '\t') && std::getline(ls, best, '\t') &&
              std::getline(ls, dflt, '\t') && std::getline(ls, cfg))
        << "malformed tunedb line: " << line;
    TuneRecord rec;
    rec.best_ms = std::stod(best);
    rec.default_ms = std::stod(dflt);
    rec.config = parse_config(cfg);
    db.put(key, std::move(rec));
  }
  return db;
}

void TuneDb::save(const std::string& path) const {
  std::ofstream f(path);
  IGC_CHECK(f.good()) << "cannot write " << path;
  f << serialize();
}

TuneDb TuneDb::load(const std::string& path) {
  std::ifstream f(path);
  IGC_CHECK(f.good()) << "cannot read " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return deserialize(ss.str());
}

ScheduleConfig parse_config(const std::string& text) {
  ScheduleConfig cfg;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ';')) {
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    IGC_CHECK_NE(eq, std::string::npos) << "malformed knob: " << item;
    cfg.set(item.substr(0, eq), std::stoll(item.substr(eq + 1)));
  }
  return cfg;
}

}  // namespace igc::tune
