#include "tune/tunedb.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/error.h"

namespace igc::tune {
namespace {

/// Current file-format version (see TuneDb::serialize).
constexpr int kTuneDbVersion = 2;
constexpr const char* kHeaderPrefix = "# igc-tunedb v";

/// The line format's reserved characters. A key lives in a tab-separated
/// field; knob names additionally live inside the "k=v;k=v" config field.
bool key_is_safe(const std::string& key) {
  return key.find_first_of("\t\n\r") == std::string::npos;
}

bool knob_is_safe(const std::string& name) {
  return !name.empty() && name.find_first_of("\t\n\r;=") == std::string::npos;
}

void check_record(const std::string& key, const TuneRecord& rec) {
  IGC_CHECK(key_is_safe(key))
      << "TuneDb key contains tab/newline and would corrupt the line "
         "format: "
      << key;
  for (const auto& [name, value] : rec.config.knobs()) {
    IGC_CHECK(knob_is_safe(name))
        << "TuneDb knob name contains a reserved character "
           "(tab/newline/';'/'='): "
        << name << " (key " << key << ")";
  }
}

double parse_double(const std::string& s, const std::string& line) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  IGC_CHECK(end != s.c_str() && end != nullptr && *end == '\0')
      << "malformed number '" << s << "' in tunedb line: " << line;
  return v;
}

}  // namespace

std::string TuneDb::make_key(const std::string& device,
                             const std::string& workload, int layout_block) {
  return device + "/" + workload + "/b" + std::to_string(layout_block);
}

void TuneDb::put(const std::string& key, TuneRecord record) {
  check_record(key, record);
  records_[key] = std::move(record);
}

std::optional<TuneRecord> TuneDb::get(const std::string& key) const {
  auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::string TuneDb::serialize() const {
  std::ostringstream os;
  os << kHeaderPrefix << kTuneDbVersion << "\n";
  for (const auto& [key, rec] : records_) {
    check_record(key, rec);
    os << key << "\t" << rec.best_ms << "\t" << rec.default_ms << "\t"
       << rec.config.str() << "\n";
  }
  return os.str();
}

TuneDb TuneDb::deserialize(const std::string& text) {
  TuneDb db;
  std::istringstream is(text);
  std::string line;
  bool first = true;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (first && line.rfind(kHeaderPrefix, 0) == 0) {
      first = false;
      const int version =
          std::atoi(line.c_str() + std::string(kHeaderPrefix).size());
      IGC_CHECK_GT(version, 0) << "malformed tunedb header: " << line;
      IGC_CHECK_LE(version, kTuneDbVersion)
          << "tunedb file written by a newer version (v" << version
          << " > v" << kTuneDbVersion << "); refusing to guess its format";
      continue;
    }
    first = false;
    if (line.empty() || line[0] == '#') continue;  // comments tolerated
    std::istringstream ls(line);
    std::string key, best, dflt, cfg;
    IGC_CHECK(std::getline(ls, key, '\t') && std::getline(ls, best, '\t') &&
              std::getline(ls, dflt, '\t') && std::getline(ls, cfg))
        << "malformed tunedb line: " << line;
    TuneRecord rec;
    rec.best_ms = parse_double(best, line);
    rec.default_ms = parse_double(dflt, line);
    rec.config = parse_config(cfg);
    db.put(key, std::move(rec));
  }
  return db;
}

void TuneDb::save(const std::string& path) const {
  std::ofstream f(path);
  IGC_CHECK(f.good()) << "cannot write " << path;
  f << serialize();
}

TuneDb TuneDb::load(const std::string& path) {
  std::ifstream f(path);
  IGC_CHECK(f.good()) << "cannot read " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return deserialize(ss.str());
}

ScheduleConfig parse_config(const std::string& text) {
  ScheduleConfig cfg;
  std::istringstream is(text);
  std::string item;
  while (std::getline(is, item, ';')) {
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    IGC_CHECK_NE(eq, std::string::npos) << "malformed knob: " << item;
    IGC_CHECK_GT(eq, 0u) << "empty knob name: " << item;
    char* end = nullptr;
    const std::string value = item.substr(eq + 1);
    const long long v = std::strtoll(value.c_str(), &end, 10);
    IGC_CHECK(end != value.c_str() && end != nullptr && *end == '\0')
        << "malformed knob value: " << item;
    cfg.set(item.substr(0, eq), v);
  }
  return cfg;
}

}  // namespace igc::tune
