// The tuning loop (Sec. 3.2.3, AutoTVM).
//
// Given a config space and a measurement function (here: the simulator's
// analytic latency), the tuner explores the space with one of three search
// strategies and returns the best schedule found. The model-guided strategy
// reproduces AutoTVM's loop: train a statistical cost model on the measured
// configs, rank a large candidate pool with it, measure the most promising
// batch, repeat.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "core/rng.h"
#include "tune/config.h"
#include "tune/cost_model.h"

namespace igc::tune {

/// Measures one config; returns latency in ms.
using MeasureFn = std::function<double(const ScheduleConfig&)>;

enum class SearchStrategy {
  kRandom,
  kSimulatedAnnealing,
  kModelGuided,  // AutoTVM-style (default)
};

/// Stable name used in journal records and bench rows.
std::string_view strategy_name(SearchStrategy s);

class TuneJournal;  // tune/journal.h

struct TuneOptions {
  SearchStrategy strategy = SearchStrategy::kModelGuided;
  /// Total measurement budget.
  int n_trials = 128;
  /// Model-guided: configs measured per round.
  int batch_size = 16;
  /// Model-guided: candidate pool ranked by the cost model per round.
  int pool_size = 256;
  uint64_t seed = 0x5eedf00d;
  /// Flight recorder: when set, every measured trial is appended (observer
  /// hook — never changes the search). Must outlive the tune() call.
  TuneJournal* journal = nullptr;
  /// Task key stamped on journal records (conv_tuner uses the TuneDb key).
  std::string journal_task;
};

struct TuneResult {
  ScheduleConfig best_config;
  double best_ms = 0.0;
  /// Latency of the space's default (untuned) config — the Table 5 "Before".
  double default_ms = 0.0;
  int trials = 0;
};

/// Runs the search. The default config is always measured first, so the
/// result is never worse than the untuned template.
TuneResult tune(const ConfigSpace& space, const MeasureFn& measure,
                const TuneOptions& opts = {});

}  // namespace igc::tune
