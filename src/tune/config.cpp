#include "tune/config.h"

namespace igc::tune {

std::vector<int64_t> tile_candidates(int64_t extent, int64_t max_tile) {
  static const int64_t ladder[] = {1, 2, 3, 4, 6, 7, 8, 12, 14, 16, 24, 28, 32, 48, 64};
  std::vector<int64_t> out;
  for (int64_t t : ladder) {
    if (t > max_tile || t > extent) break;
    if (extent % t == 0) out.push_back(t);
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace igc::tune
