// The tuning database (Sec. 3.2.3: "we maintain a database to store the
// results for every convolution workload on each hardware platform").
//
// Keyed by (device name, workload key, layout block). Persistable to a
// simple line-oriented text file so tuning runs are reusable across
// processes, mirroring the paper's motivation: tensor-level search is
// expensive (tens of hours on edge devices), so never search twice.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "tune/config.h"

namespace igc::tune {

struct TuneRecord {
  ScheduleConfig config;
  double best_ms = 0.0;
  double default_ms = 0.0;
};

class TuneDb {
 public:
  static std::string make_key(const std::string& device,
                              const std::string& workload, int layout_block);

  /// Stores a record. Raises igc::Error when the key or a knob name would
  /// corrupt the line format (keys must not contain tab/newline; knob names
  /// must not contain tab/newline/';'/'=' — see serialize()).
  void put(const std::string& key, TuneRecord record);
  std::optional<TuneRecord> get(const std::string& key) const;
  bool contains(const std::string& key) const { return records_.count(key) > 0; }
  size_t size() const { return records_.size(); }

  /// Serialization: a versioned header line ("# igc-tunedb v2") followed by
  /// one record per line, "key<TAB>best_ms<TAB>default_ms<TAB>knob=v;knob=v".
  /// deserialize() also accepts headerless v1 files; it rejects files
  /// declaring a newer version, malformed lines, and non-numeric fields.
  std::string serialize() const;
  static TuneDb deserialize(const std::string& text);

  void save(const std::string& path) const;
  static TuneDb load(const std::string& path);

 private:
  std::map<std::string, TuneRecord> records_;
};

/// Parses the canonical "k=v;k=v" form produced by ScheduleConfig::str().
ScheduleConfig parse_config(const std::string& text);

}  // namespace igc::tune
