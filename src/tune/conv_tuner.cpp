#include "tune/conv_tuner.h"

namespace igc::tune {

TuneRecord tune_conv2d(const ops::Conv2dParams& p, const sim::DeviceSpec& dev,
                       int layout_block, TuneDb& db, const TuneOptions& opts) {
  const std::string key =
      TuneDb::make_key(dev.name, p.workload_key(), layout_block);
  if (auto existing = db.get(key)) return *existing;

  ConfigSpace space = ops::conv2d_config_space(p, dev);
  const MeasureFn measure = [&](const ScheduleConfig& cfg) {
    ScheduleConfig with_layout = cfg;
    with_layout.set("layout_block", layout_block);
    return ops::conv2d_latency_ms(p, with_layout, dev);
  };
  // Journaled trials are keyed by the same (device, workload, layout) key
  // the TuneDb stores the winner under.
  TuneOptions jopts = opts;
  jopts.journal_task = key;
  const TuneResult r = tune(space, measure, jopts);

  // The pre-tuning anchor is the hand-written template (Table 5 "Before");
  // the search result never regresses below it.
  ScheduleConfig manual = ops::conv2d_manual_schedule(p, dev);
  manual.set("layout_block", layout_block);
  const double manual_ms = ops::conv2d_latency_ms(p, manual, dev);

  TuneRecord rec;
  if (r.best_ms <= manual_ms) {
    rec.config = r.best_config;
    rec.config.set("layout_block", layout_block);
    rec.best_ms = r.best_ms;
  } else {
    rec.config = manual;
    rec.best_ms = manual_ms;
  }
  rec.default_ms = manual_ms;
  db.put(key, rec);
  return rec;
}

ScheduleConfig lookup_or_default(const ops::Conv2dParams& p,
                                 const sim::DeviceSpec& dev, int layout_block,
                                 const TuneDb* db) {
  if (db != nullptr) {
    const std::string key =
        TuneDb::make_key(dev.name, p.workload_key(), layout_block);
    if (auto rec = db->get(key)) return rec->config;
  }
  ScheduleConfig cfg = ops::conv2d_manual_schedule(p, dev);
  cfg.set("layout_block", layout_block);
  return cfg;
}

}  // namespace igc::tune
