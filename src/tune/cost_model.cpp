#include "tune/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.h"

namespace igc::tune {

std::vector<double> config_features(const ScheduleConfig& cfg) {
  std::vector<double> f;
  f.reserve(cfg.knobs().size());
  for (const auto& [name, value] : cfg.knobs()) {
    f.push_back(std::log2(1.0 + static_cast<double>(value)));
  }
  return f;
}

void CostModel::fit(const std::vector<std::vector<double>>& x,
                    const std::vector<double>& y) {
  IGC_CHECK_EQ(x.size(), y.size());
  IGC_CHECK(!x.empty());
  stumps_.clear();
  const size_t n = x.size();
  const size_t dims = x[0].size();

  base_ = 0.0;
  for (double v : y) base_ += v;
  base_ /= static_cast<double>(n);

  std::vector<double> residual(n);
  for (size_t i = 0; i < n; ++i) residual[i] = y[i] - base_;

  for (int round = 0; round < num_rounds_; ++round) {
    Stump best;
    double best_sse = std::numeric_limits<double>::infinity();
    for (size_t d = 0; d < dims; ++d) {
      // Candidate thresholds: midpoints of sorted unique feature values.
      std::vector<double> vals;
      vals.reserve(n);
      for (size_t i = 0; i < n; ++i) vals.push_back(x[i][d]);
      std::sort(vals.begin(), vals.end());
      vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
      for (size_t t = 0; t + 1 < vals.size(); ++t) {
        const double thr = 0.5 * (vals[t] + vals[t + 1]);
        double sum_l = 0, sum_r = 0;
        int64_t cnt_l = 0, cnt_r = 0;
        for (size_t i = 0; i < n; ++i) {
          if (x[i][d] <= thr) {
            sum_l += residual[i];
            ++cnt_l;
          } else {
            sum_r += residual[i];
            ++cnt_r;
          }
        }
        if (cnt_l == 0 || cnt_r == 0) continue;
        const double mean_l = sum_l / static_cast<double>(cnt_l);
        const double mean_r = sum_r / static_cast<double>(cnt_r);
        double sse = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double pred = x[i][d] <= thr ? mean_l : mean_r;
          const double e = residual[i] - pred;
          sse += e * e;
        }
        if (sse < best_sse) {
          best_sse = sse;
          best = {static_cast<int>(d), thr, mean_l, mean_r};
        }
      }
    }
    if (!std::isfinite(best_sse)) break;  // degenerate data
    best.left *= learning_rate_;
    best.right *= learning_rate_;
    stumps_.push_back(best);
    for (size_t i = 0; i < n; ++i) {
      residual[i] -= x[i][static_cast<size_t>(best.feature)] <= best.threshold
                         ? best.left
                         : best.right;
    }
  }
}

double CostModel::predict(const std::vector<double>& features) const {
  double p = base_;
  for (const Stump& s : stumps_) {
    p += features[static_cast<size_t>(s.feature)] <= s.threshold ? s.left
                                                                 : s.right;
  }
  return p;
}

}  // namespace igc::tune
