// Statistical cost model for schedule search (Sec. 3.2.3, AutoTVM's
// "statistical cost models for predicting achievable performance").
//
// Gradient-boosted regression stumps over schedule-knob features: small,
// dependency-free, and — like AutoTVM's XGBoost model — good enough to rank
// candidate configs so the search measures only the promising ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tune/config.h"

namespace igc::tune {

/// Feature vector of a config: log2(1+value) of every knob, in sorted knob
/// order (the canonical order of ScheduleConfig::knobs()).
std::vector<double> config_features(const ScheduleConfig& cfg);

class CostModel {
 public:
  explicit CostModel(int num_rounds = 60, double learning_rate = 0.3)
      : num_rounds_(num_rounds), learning_rate_(learning_rate) {}

  /// Fits latency (ms) as a function of config features. Retrains from
  /// scratch (training sets during tuning are tiny).
  void fit(const std::vector<std::vector<double>>& x,
           const std::vector<double>& y);

  double predict(const std::vector<double>& features) const;

  bool trained() const { return !stumps_.empty(); }

 private:
  struct Stump {
    int feature = 0;
    double threshold = 0.0;
    double left = 0.0;   // prediction delta when feature <= threshold
    double right = 0.0;  // otherwise
  };
  int num_rounds_;
  double learning_rate_;
  double base_ = 0.0;
  std::vector<Stump> stumps_;
};

}  // namespace igc::tune
