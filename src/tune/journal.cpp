#include "tune/journal.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "core/error.h"
#include "obs/json.h"

namespace igc::tune {
namespace {

/// Shortest decimal form that parses back to exactly the same double.
std::string round_trip_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back == v) {
    // Try trimming to the shortest exact representation.
    for (int prec = 1; prec < 17; ++prec) {
      char t[64];
      std::snprintf(t, sizeof(t), "%.*g", prec, v);
      std::sscanf(t, "%lf", &back);
      if (back == v) return t;
    }
  }
  return buf;
}

}  // namespace

std::vector<std::string> TuneJournal::tasks() const {
  std::vector<std::string> out;
  for (const TuneTrial& t : snapshot()) {
    if (std::find(out.begin(), out.end(), t.task) == out.end()) {
      out.push_back(t.task);
    }
  }
  return out;
}

std::vector<TuneTrial> TuneJournal::task_trials(const std::string& task) const {
  std::vector<TuneTrial> out;
  for (TuneTrial& t : snapshot()) {
    if (t.task == task) out.push_back(std::move(t));
  }
  return out;
}

double TuneJournal::best_ms(const std::string& task) const {
  double best = std::numeric_limits<double>::infinity();
  for (const TuneTrial& t : snapshot()) {
    if (t.task == task) best = std::min(best, t.measured_ms);
  }
  return best;
}

int TuneJournal::trials_to_within(const std::string& task,
                                  double tolerance) const {
  const std::vector<TuneTrial> trials = task_trials(task);
  if (trials.empty()) return 0;
  double final_best = std::numeric_limits<double>::infinity();
  for (const TuneTrial& t : trials) final_best = std::min(final_best, t.measured_ms);
  const double threshold = final_best * (1.0 + tolerance);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < trials.size(); ++i) {
    best = std::min(best, trials[i].measured_ms);
    if (best <= threshold) return static_cast<int>(i) + 1;
  }
  return static_cast<int>(trials.size());
}

std::vector<double> TuneJournal::best_curve(const std::string& task) const {
  std::vector<double> out;
  double best = std::numeric_limits<double>::infinity();
  for (const TuneTrial& t : task_trials(task)) {
    best = std::min(best, t.measured_ms);
    out.push_back(best);
  }
  return out;
}

std::string TuneJournal::jsonl() const {
  std::string out;
  for (const TuneTrial& t : snapshot()) {
    out += R"({"task": ")" + obs::json::escape(t.task) + R"(", )";
    out += R"("strategy": ")" + obs::json::escape(t.strategy) + R"(", )";
    out += R"("trial": )" + std::to_string(t.trial) + ", ";
    out += R"("round": )" + std::to_string(t.round) + ", ";
    out += R"("config": ")" + obs::json::escape(t.config) + R"(", )";
    out += R"("measured_ms": )" + round_trip_double(t.measured_ms) + ", ";
    out += R"("predicted_ms": )" + round_trip_double(t.predicted_ms) + ", ";
    out += R"("best_ms": )" + round_trip_double(t.best_ms) + "}\n";
  }
  return out;
}

TuneJournal TuneJournal::from_jsonl(const std::string& text) {
  TuneJournal j;
  std::istringstream is(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const obs::json::Value v = obs::json::parse(line);
    IGC_CHECK(v.is_object()) << "journal line " << line_no
                             << " is not a JSON object";
    TuneTrial t;
    t.task = v.at("task").as_string();
    t.strategy = v.at("strategy").as_string();
    t.trial = static_cast<int>(v.at("trial").as_int());
    t.round = static_cast<int>(v.at("round").as_int());
    t.config = v.at("config").as_string();
    t.measured_ms = v.at("measured_ms").as_number();
    t.predicted_ms = v.at("predicted_ms").as_number();
    t.best_ms = v.at("best_ms").as_number();
    j.record(std::move(t));
  }
  return j;
}

bool TuneJournal::save(const std::string& path) const {
  std::ofstream f(path);
  if (!f.good()) return false;
  f << jsonl();
  return f.good();
}

TuneJournal TuneJournal::load(const std::string& path) {
  std::ifstream f(path);
  IGC_CHECK(f.good()) << "cannot read " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return from_jsonl(ss.str());
}

std::string TuneJournal::convergence_report() const {
  char buf[256];
  std::string out = "tuning convergence (per task):\n";
  out += "  trials  to-5%   default ms    best ms  speedup  strategy  task\n";
  for (const std::string& task : tasks()) {
    const std::vector<TuneTrial> trials = task_trials(task);
    if (trials.empty()) continue;
    // Trial 0 is the always-measured default config (the Table 5 "Before").
    const double default_ms = trials.front().measured_ms;
    const double best = best_ms(task);
    std::snprintf(buf, sizeof(buf),
                  "  %6zu %6d %12.4f %10.4f %7.2fx  %-9s %s\n", trials.size(),
                  trials_to_within(task, 0.05), default_ms, best,
                  best > 0.0 ? default_ms / best : 0.0,
                  trials.front().strategy.c_str(), task.c_str());
    out += buf;
  }
  return out;
}

}  // namespace igc::tune
