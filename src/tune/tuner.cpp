#include "tune/tuner.h"

#include <algorithm>
#include <set>
#include <vector>

#include "core/error.h"
#include "obs/metrics.h"
#include "tune/journal.h"

namespace igc::tune {
namespace {

obs::Counter& trials_counter() {
  static auto& c = obs::MetricsRegistry::global().counter("tune.trials");
  return c;
}

class Recorder {
 public:
  Recorder(const MeasureFn& measure, const TuneOptions& opts)
      : measure_(measure), budget_(opts.n_trials), journal_(opts.journal),
        task_(opts.journal_task),
        strategy_(std::string(strategy_name(opts.strategy))) {}

  /// Measures one config. `predicted_ms` is the cost model's ranking score
  /// when the config was model-selected (< 0 otherwise); it flows to the
  /// journal only, never back into the search.
  double measure(const ScheduleConfig& cfg, double predicted_ms = -1.0) {
    const double ms = measure_(cfg);
    IGC_CHECK_GT(ms, 0.0);
    ++trials_;
    trials_counter().add(1);
    xs_.push_back(config_features(cfg));
    ys_.push_back(ms);
    if (ms < best_ms_) {
      best_ms_ = ms;
      best_ = cfg;
    }
    if (journal_ != nullptr) {
      TuneTrial t;
      t.task = task_;
      t.strategy = strategy_;
      t.trial = trials_ - 1;
      t.round = round_;
      t.config = cfg.str();
      t.measured_ms = ms;
      t.predicted_ms = predicted_ms;
      t.best_ms = best_ms_;
      journal_->record(std::move(t));
    }
    return ms;
  }

  /// Advances the journal's search-round stamp (model-guided iterations).
  void next_round() { ++round_; }

  bool exhausted() const { return trials_ >= budget_; }
  int trials() const { return trials_; }
  double best_ms() const { return best_ms_; }
  const ScheduleConfig& best() const { return best_; }
  const std::vector<std::vector<double>>& xs() const { return xs_; }
  const std::vector<double>& ys() const { return ys_; }

 private:
  const MeasureFn& measure_;
  int budget_;
  TuneJournal* journal_;
  std::string task_;
  std::string strategy_;
  int round_ = 0;
  int trials_ = 0;
  double best_ms_ = std::numeric_limits<double>::infinity();
  ScheduleConfig best_;
  std::vector<std::vector<double>> xs_;
  std::vector<double> ys_;
};

void random_search(const ConfigSpace& space, Recorder& rec, Rng& rng) {
  while (!rec.exhausted()) rec.measure(space.random(rng));
}

void simulated_annealing(const ConfigSpace& space, Recorder& rec, Rng& rng) {
  // Walk the mixed-radix index space one knob at a time.
  ScheduleConfig cur = space.random(rng);
  double cur_ms = rec.measure(cur);
  double temp = 1.0;
  const double cooling = 0.95;
  while (!rec.exhausted()) {
    // Mutate one knob to a random other choice.
    const auto& knobs = space.knobs();
    const size_t k = rng.next_below(knobs.size());
    ScheduleConfig next = cur;
    next.set(knobs[k].name,
             knobs[k].choices[rng.next_below(knobs[k].choices.size())]);
    const double next_ms = rec.measure(next);
    const double delta = (next_ms - cur_ms) / std::max(cur_ms, 1e-9);
    if (delta < 0.0 || rng.next_double() < std::exp(-delta / std::max(temp, 1e-3))) {
      cur = next;
      cur_ms = next_ms;
    }
    temp *= cooling;
  }
}

void model_guided(const ConfigSpace& space, Recorder& rec, Rng& rng,
                  const TuneOptions& opts) {
  CostModel model;
  std::set<std::string> seen;
  // Warm-up round: random batch.
  for (int i = 0; i < opts.batch_size && !rec.exhausted(); ++i) {
    const auto cfg = space.random(rng);
    if (seen.insert(cfg.str()).second) rec.measure(cfg);
  }
  while (!rec.exhausted()) {
    rec.next_round();
    model.fit(rec.xs(), rec.ys());
    // Rank a pool of unseen random candidates by predicted latency.
    std::vector<std::pair<double, ScheduleConfig>> pool;
    for (int i = 0; i < opts.pool_size; ++i) {
      auto cfg = space.random(rng);
      if (seen.count(cfg.str())) continue;
      pool.emplace_back(model.predict(config_features(cfg)), std::move(cfg));
    }
    std::sort(pool.begin(), pool.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // Measure the top batch (epsilon-greedy: one slot stays random).
    int measured = 0;
    for (const auto& [pred, cfg] : pool) {
      if (rec.exhausted() || measured >= opts.batch_size - 1) break;
      if (!seen.insert(cfg.str()).second) continue;
      rec.measure(cfg, pred);
      ++measured;
    }
    if (!rec.exhausted()) {
      const auto cfg = space.random(rng);
      if (seen.insert(cfg.str()).second) rec.measure(cfg);
    }
    if (pool.empty()) break;  // space exhausted
  }
}

}  // namespace

std::string_view strategy_name(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::kRandom: return "random";
    case SearchStrategy::kSimulatedAnnealing: return "annealing";
    case SearchStrategy::kModelGuided: return "model_guided";
  }
  return "?";
}

TuneResult tune(const ConfigSpace& space, const MeasureFn& measure,
                const TuneOptions& opts) {
  IGC_CHECK_GT(opts.n_trials, 0);
  Rng rng(opts.seed);
  Recorder rec(measure, opts);

  // Always measure the untuned default first: it anchors the "Before"
  // column and guarantees the tuner never regresses below the template.
  const ScheduleConfig default_cfg = space.default_config();
  const double default_ms = rec.measure(default_cfg);

  switch (opts.strategy) {
    case SearchStrategy::kRandom:
      random_search(space, rec, rng);
      break;
    case SearchStrategy::kSimulatedAnnealing:
      simulated_annealing(space, rec, rng);
      break;
    case SearchStrategy::kModelGuided:
      model_guided(space, rec, rng, opts);
      break;
  }

  TuneResult result;
  result.best_config = rec.best();
  result.best_ms = rec.best_ms();
  result.default_ms = default_ms;
  result.trials = rec.trials();
  return result;
}

}  // namespace igc::tune
