// Roofline attribution over a recorded trace.
//
// Folds the per-node KernelCounters aggregates of a TraceRecorder against a
// device's two ceilings (peak GFLOPS, peak DRAM GB/s) into the analysis a
// hardware vendor's profiler would print: for every op, how close it ran to
// the roofline at its arithmetic intensity, which term bounded it, and a
// ranked "where the milliseconds go" table — the paper's Sec. 3.2
// microarchitectural argument (occupancy, DRAM traffic, relaunch overhead)
// turned into per-op numbers.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"
#include "sim/timing_model.h"

namespace igc::obs {

/// One op (trace span) scored against the device roofline.
struct RooflineRow {
  std::string name;  // node name
  std::string op;    // op kind
  sim::OpCategory category = sim::OpCategory::kOther;
  sim::Lane lane = sim::Lane::kGpu;
  sim::KernelCounters counters;
  double ms = 0.0;             // span duration (== counters.ms)
  double pct_of_serial = 0.0;  // share of the run's serial time
  /// Device ceiling at this op's arithmetic intensity:
  /// min(peak_gflops, peak_gbps * AI). 0 for ops that do no flops.
  double roof_gflops = 0.0;
  /// Achieved fraction of the binding ceiling: achieved/roof GFLOPS for ops
  /// with flops, achieved/peak GB/s for pure data movers, 0 for opaque
  /// (fixed-charge) sections.
  double pct_of_roof = 0.0;
};

struct RooflineReport {
  std::string model;
  std::string platform;
  std::string mode;
  double peak_gflops = 0.0;
  double peak_gbps = 0.0;
  /// The device's ridge point (flops/byte where the two ceilings meet).
  double ridge_intensity = 0.0;
  double serial_ms = 0.0;
  /// Serial ms attributed to each BoundKind (indexed by BoundKind).
  double bound_ms[sim::kNumBoundKinds] = {};
  /// The BoundKind holding the most serial time.
  sim::BoundKind top_bottleneck = sim::BoundKind::kCompute;
  /// All counted ops, ranked by ms descending.
  std::vector<RooflineRow> rows;

  /// The human-readable report: device ceilings, bottleneck split, and the
  /// top `top_k` ops with their roofline scores.
  std::string str(int top_k = 16) const;
};

/// Builds the report from `rec`'s spans against `gpu`'s ceilings. Spans with
/// no counted launches (nothing charged) are skipped.
RooflineReport roofline_report(const TraceRecorder& rec,
                               const sim::DeviceSpec& gpu);

/// Per-op counter table (the `--counters` view): one line per op with the
/// raw profiler numbers, ranked by ms descending.
std::string counters_table(const TraceRecorder& rec, int top_k = 16);

}  // namespace igc::obs
