// Minimal blocking HTTP/1.1 listener serving the telemetry endpoints:
//
//   GET /metrics            Prometheus text exposition of the registry
//                           (with per-bucket exemplars when a store is wired)
//   GET /healthz            liveness probe: engine liveness JSON with
//                           200/503 when a health callback is wired,
//                           legacy plain "ok" otherwise
//   GET /snapshot.json      one-shot registry snapshot (the --metrics
//                           document, plus an "exemplars" member when wired)
//   GET /series.json        sampler time series (404 unless a sampler is
//                           wired)
//   GET /debug/requests     flight-recorder summaries, slowest first (404
//                           unless a recorder is wired)
//   GET /debug/request/<id> one retained request's full JSON timeline
//
// Scope: one background thread, one connection at a time, GET only — a
// scrape target, not a web server. Requests are answered from a fresh
// registry snapshot, so a scrape never blocks a hot path beyond the
// registry's map mutex.
//
// Security: binds 127.0.0.1 by default — the metrics surface is
// unauthenticated and must not face a network unless Options::bind_address
// is deliberately widened (see the DESIGN.md caveat).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace igc::obs {

class TelemetrySampler;
class FlightRecorder;
class ExemplarStore;

class MetricsHttpServer {
 public:
  struct Options {
    /// TCP port; 0 binds an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Loopback-only by default; widen deliberately (see header comment).
    std::string bind_address = "127.0.0.1";
    /// Registry served; defaults to the process-wide one.
    MetricsRegistry* registry = nullptr;
    /// When set, /series.json serves this sampler's time series. Must
    /// outlive the server.
    const TelemetrySampler* sampler = nullptr;
    /// When set, /debug/requests and /debug/request/<id> serve this flight
    /// recorder's retained timelines. Must outlive the server.
    const FlightRecorder* flight_recorder = nullptr;
    /// When set, /metrics bucket lines carry exemplar trace ids and
    /// /snapshot.json gains an "exemplars" member. Must outlive the server.
    const ExemplarStore* exemplars = nullptr;
    /// When set, /healthz serves this callback's JSON body with 200 when it
    /// sets *healthy and 503 otherwise — the serving engine wires its
    /// liveness here so probes distinguish "process up" from "engine
    /// serving". Absent, /healthz answers the legacy plain-text 200 "ok".
    std::function<std::string(bool* healthy)> health;
    /// Labels stamped onto every Prometheus sample (model, platform, ...).
    std::map<std::string, std::string> const_labels;
  };

  MetricsHttpServer();
  explicit MetricsHttpServer(Options opts);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds, listens, and spawns the accept thread. Returns false (with the
  /// reason in *error when given) on bind/listen failure. No-op when
  /// already running.
  bool start(std::string* error = nullptr);
  /// Stops the accept loop and joins the thread. Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound port (the resolved one when Options::port was 0); 0 before
  /// start().
  int port() const { return port_; }

  /// Builds the HTTP response for one request line (exposed for tests; the
  /// socket layer calls this). `path` excludes any query string.
  std::string respond(const std::string& method, const std::string& path) const;

 private:
  void accept_loop();
  void handle_connection(int fd) const;

  Options opts_;
  MetricsRegistry* registry_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
};

}  // namespace igc::obs
