// Minimal blocking HTTP/1.1 listener serving the telemetry endpoints:
//
//   GET /metrics        Prometheus text exposition of the registry
//   GET /healthz        liveness probe ("ok")
//   GET /snapshot.json  one-shot registry snapshot (the --metrics document)
//   GET /series.json    sampler time series (404 unless a sampler is wired)
//
// Scope: one background thread, one connection at a time, GET only — a
// scrape target, not a web server. Requests are answered from a fresh
// registry snapshot, so a scrape never blocks a hot path beyond the
// registry's map mutex.
//
// Security: binds 127.0.0.1 by default — the metrics surface is
// unauthenticated and must not face a network unless Options::bind_address
// is deliberately widened (see the DESIGN.md caveat).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace igc::obs {

class TelemetrySampler;

class MetricsHttpServer {
 public:
  struct Options {
    /// TCP port; 0 binds an ephemeral port (read it back via port()).
    uint16_t port = 0;
    /// Loopback-only by default; widen deliberately (see header comment).
    std::string bind_address = "127.0.0.1";
    /// Registry served; defaults to the process-wide one.
    MetricsRegistry* registry = nullptr;
    /// When set, /series.json serves this sampler's time series. Must
    /// outlive the server.
    const TelemetrySampler* sampler = nullptr;
    /// Labels stamped onto every Prometheus sample (model, platform, ...).
    std::map<std::string, std::string> const_labels;
  };

  MetricsHttpServer();
  explicit MetricsHttpServer(Options opts);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds, listens, and spawns the accept thread. Returns false (with the
  /// reason in *error when given) on bind/listen failure. No-op when
  /// already running.
  bool start(std::string* error = nullptr);
  /// Stops the accept loop and joins the thread. Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound port (the resolved one when Options::port was 0); 0 before
  /// start().
  int port() const { return port_; }

  /// Builds the HTTP response for one request line (exposed for tests; the
  /// socket layer calls this). `path` excludes any query string.
  std::string respond(const std::string& method, const std::string& path) const;

 private:
  void accept_loop();
  void handle_connection(int fd) const;

  Options opts_;
  MetricsRegistry* registry_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
};

}  // namespace igc::obs
