#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

#include "obs/json.h"

namespace igc::obs {
namespace {

void append_event(std::string& out, const std::string& body, bool& first) {
  out += first ? "\n  " : ",\n  ";
  first = false;
  out += body;
}

std::string meta_event(int pid, int tid, const char* kind,
                       const std::string& name) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), R"({"ph": "M", "pid": %d, "tid": %d, )",
                pid, tid);
  return std::string(buf) + R"("name": ")" + kind + R"(", "args": {"name": ")" +
         json::escape(name) + R"("}})";
}

}  // namespace

void TraceRecorder::begin(TraceMeta meta) {
  std::lock_guard<std::mutex> lock(mu_);
  meta_ = std::move(meta);
  spans_.clear();
}

void TraceRecorder::record(TraceSpan span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

double TraceRecorder::category_ms(sim::OpCategory c) const {
  std::lock_guard<std::mutex> lock(mu_);
  double ms = 0.0;
  for (const TraceSpan& s : spans_) {
    if (s.category == c) ms += s.sim_end_ms - s.sim_start_ms;
  }
  return ms;
}

double TraceRecorder::lane_end_ms(sim::Lane lane) const {
  std::lock_guard<std::mutex> lock(mu_);
  double end = 0.0;
  for (const TraceSpan& s : spans_) {
    if (s.lane == lane) end = std::max(end, s.sim_end_ms);
  }
  return end;
}

double TraceRecorder::makespan_ms() const {
  double m = 0.0;
  for (int l = 0; l < sim::kNumLanes; ++l) {
    m = std::max(m, lane_end_ms(static_cast<sim::Lane>(l)));
  }
  return m;
}

std::string TraceRecorder::chrome_trace_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  constexpr int kSimPid = 1;
  constexpr int kHostPid = 2;

  std::string out = "{\n";
  out += R"("displayTimeUnit": "ms",)";
  out += "\n\"otherData\": {";
  out += R"("model": ")" + json::escape(meta_.model) + R"(", )";
  out += R"("platform": ")" + json::escape(meta_.platform) + R"(", )";
  out += R"("mode": ")" + json::escape(meta_.mode) + R"(", )";
  out += R"("arena": )" + std::string(meta_.arena ? "true" : "false") + ", ";
  out += R"("schema_version": )" + std::to_string(meta_.schema_version);
  out += "},\n\"traceEvents\": [";

  bool first = true;
  // Track names: one track per simulated lane, always emitted so the lane
  // structure is visible even for graphs that never touch a lane.
  append_event(out, meta_event(kSimPid, 0, "process_name",
                               "simulated platform: " + meta_.platform),
               first);
  for (int l = 0; l < sim::kNumLanes; ++l) {
    append_event(
        out,
        meta_event(kSimPid, l, "thread_name",
                   "lane " + std::to_string(l) + ": " +
                       std::string(sim::lane_name(static_cast<sim::Lane>(l)))),
        first);
  }

  // Number the host-thread tracks in order of first appearance.
  std::map<uint64_t, int> host_tid;
  bool have_host = false;
  for (const TraceSpan& s : spans_) {
    if (s.host_end_us <= s.host_start_us) continue;
    have_host = true;
    if (host_tid.emplace(s.host_thread, static_cast<int>(host_tid.size()))
            .second) {
      append_event(out,
                   meta_event(kHostPid, host_tid[s.host_thread], "thread_name",
                              "host worker " +
                                  std::to_string(host_tid[s.host_thread])),
                   first);
    }
  }
  if (have_host) {
    append_event(
        out, meta_event(kHostPid, 0, "process_name", "host scheduler"), first);
  }

  char buf[256];
  double counters_end_ms = 0.0;
  bool have_counters = false;
  for (const TraceSpan& s : spans_) {
    // Simulated lane span.
    std::snprintf(buf, sizeof(buf),
                  R"("ph": "X", "pid": %d, "tid": %d, "ts": %.6f, "dur": %.6f)",
                  kSimPid, static_cast<int>(s.lane), s.sim_start_ms * 1000.0,
                  (s.sim_end_ms - s.sim_start_ms) * 1000.0);
    std::string ev = "{";
    ev += R"("name": ")" + json::escape(s.name) + R"(", )";
    ev += R"("cat": ")" + std::string(sim::category_name(s.category)) +
          R"(", )";
    ev += buf;
    ev += R"(, "args": {)";
    ev += R"("op": ")" + json::escape(s.op) + R"(", )";
    ev += R"("shape": ")" + json::escape(s.shape) + R"(", )";
    ev += R"("layout_block": )" + std::to_string(s.layout_block) + ", ";
    char bbuf[32];
    std::snprintf(bbuf, sizeof(bbuf), "%" PRId64, s.bytes);
    ev += R"("bytes": )" + std::string(bbuf);
    if (s.counters.launches > 0) {
      std::snprintf(buf, sizeof(buf),
                    R"(, "bound": "%s", "occupancy": %.4f, )"
                    R"("achieved_gflops": %.3f, "achieved_gbps": %.3f)",
                    std::string(sim::bound_name(s.counters.bound)).c_str(),
                    s.counters.occupancy, s.counters.achieved_gflops(),
                    s.counters.achieved_gbps());
      ev += buf;
    }
    if (!s.schedule.empty()) {
      ev += R"(, "schedule": ")" + json::escape(s.schedule) + R"(")";
    }
    ev += "}}";
    append_event(out, ev, first);

    // Counter tracks: one sample per span at its start, so Perfetto draws
    // the step function of what the simulated hardware was sustaining.
    if (s.counters.launches > 0) {
      have_counters = true;
      counters_end_ms = std::max(counters_end_ms, s.sim_end_ms);
      const struct {
        const char* track;
        double value;
      } samples[] = {
          {"occupancy", s.counters.occupancy},
          {"achieved GFLOPS", s.counters.achieved_gflops()},
          {"DRAM GB/s", s.counters.achieved_gbps()},
      };
      for (const auto& c : samples) {
        std::snprintf(buf, sizeof(buf),
                      R"({"ph": "C", "pid": %d, "name": "%s", "ts": %.6f, )"
                      R"("args": {"value": %.4f}})",
                      kSimPid, c.track, s.sim_start_ms * 1000.0, c.value);
        append_event(out, buf, first);
      }
    }

    // Host dispatch span (wall clock on the scheduler thread that ran it).
    if (s.host_end_us > s.host_start_us) {
      std::snprintf(
          buf, sizeof(buf),
          R"("ph": "X", "pid": %d, "tid": %d, "ts": %.3f, "dur": %.3f)",
          kHostPid, host_tid[s.host_thread], s.host_start_us,
          s.host_end_us - s.host_start_us);
      std::string hev = "{";
      hev += R"("name": ")" + json::escape(s.name) + R"(", )";
      hev += R"("cat": "host_dispatch", )";
      hev += buf;
      hev += "}";
      append_event(out, hev, first);
    }
  }
  // Close the counter tracks: a zero sample after the last counted span.
  if (have_counters) {
    for (const char* track : {"occupancy", "achieved GFLOPS", "DRAM GB/s"}) {
      std::snprintf(buf, sizeof(buf),
                    R"({"ph": "C", "pid": %d, "name": "%s", "ts": %.6f, )"
                    R"("args": {"value": 0}})",
                    kSimPid, track, counters_end_ms * 1000.0);
      append_event(out, buf, first);
    }
  }
  out += "\n]}\n";
  return out;
}

bool TraceRecorder::save_chrome_trace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_trace_json();
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  return std::fclose(f) == 0 && written == doc.size();
}

std::string TraceRecorder::report(int top_k) const {
  std::vector<TraceSpan> spans;
  TraceMeta meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans = spans_;
    meta = meta_;
  }

  double serial = 0.0;
  double cat_ms[sim::kNumCategories] = {};
  int cat_n[sim::kNumCategories] = {};
  double lane_end[sim::kNumLanes] = {};
  for (const TraceSpan& s : spans) {
    const double d = s.sim_end_ms - s.sim_start_ms;
    serial += d;
    cat_ms[static_cast<int>(s.category)] += d;
    cat_n[static_cast<int>(s.category)] += 1;
    lane_end[static_cast<int>(s.lane)] =
        std::max(lane_end[static_cast<int>(s.lane)], s.sim_end_ms);
  }
  const double makespan = *std::max_element(lane_end, lane_end + sim::kNumLanes);

  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "=== trace report: %s on %s (%s%s) ===\n",
                meta.model.c_str(), meta.platform.c_str(), meta.mode.c_str(),
                meta.arena ? ", arena" : "");
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "spans %zu | serial %.3f ms | critical path %.3f ms\n",
                spans.size(), serial, makespan);
  out += buf;

  out += "category rollup (serial ms):\n";
  for (int c = 0; c < sim::kNumCategories; ++c) {
    std::snprintf(
        buf, sizeof(buf), "  %-8s %12.3f ms %6.1f%% %5d spans\n",
        std::string(sim::category_name(static_cast<sim::OpCategory>(c)))
            .c_str(),
        cat_ms[c], serial > 0.0 ? 100.0 * cat_ms[c] / serial : 0.0, cat_n[c]);
    out += buf;
  }

  out += "lane end times:";
  for (int l = 0; l < sim::kNumLanes; ++l) {
    std::snprintf(buf, sizeof(buf), " %s %.3f ms%s",
                  std::string(sim::lane_name(static_cast<sim::Lane>(l)))
                      .c_str(),
                  lane_end[l], l + 1 < sim::kNumLanes ? " |" : "\n");
    out += buf;
  }

  std::sort(spans.begin(), spans.end(), [](const TraceSpan& a,
                                           const TraceSpan& b) {
    return (a.sim_end_ms - a.sim_start_ms) > (b.sim_end_ms - b.sim_start_ms);
  });
  const int k = std::min<int>(top_k, static_cast<int>(spans.size()));
  std::snprintf(buf, sizeof(buf), "top %d ops by serial ms:\n", k);
  out += buf;
  for (int i = 0; i < k; ++i) {
    const TraceSpan& s = spans[static_cast<size_t>(i)];
    const double d = s.sim_end_ms - s.sim_start_ms;
    std::snprintf(buf, sizeof(buf),
                  "  %10.3f ms %5.1f%%  %-4s %-8s %-14s %-24s %s\n", d,
                  serial > 0.0 ? 100.0 * d / serial : 0.0,
                  std::string(sim::lane_name(s.lane)).c_str(),
                  std::string(sim::category_name(s.category)).c_str(),
                  s.op.c_str(), s.name.c_str(),
                  (s.shape + (s.schedule.empty() ? "" : "  " + s.schedule))
                      .c_str());
    out += buf;
  }
  return out;
}

}  // namespace igc::obs
