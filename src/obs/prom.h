// Prometheus text-exposition (version 0.0.4) rendering of a metrics
// snapshot — what the /metrics endpoint serves.
//
// Mapping:
//   * counters  -> "<name>_total" with "# TYPE <name> counter";
//   * gauges    -> "<name>" with "# TYPE <name> gauge";
//   * histograms-> "<name>_bucket{le=...}" cumulative series over the
//     LatencyHistogram's log grid (non-empty buckets only, plus the
//     mandatory le="+Inf"), "<name>_sum", and "<name>_count".
//
// Names are sanitized to the Prometheus grammar [a-zA-Z_:][a-zA-Z0-9_:]*
// ('.' and every other invalid byte become '_', a leading digit gains a '_'
// prefix), and label values are escaped per the exposition format ('\',
// '"', and newline). `const_labels` are attached to every sample — the
// serving endpoints use them to stamp model/platform identity.
#pragma once

#include <map>
#include <string>

#include "obs/metrics.h"

namespace igc::obs {

class ExemplarStore;

/// Sanitizes `name` into a valid Prometheus metric name.
std::string prom_metric_name(const std::string& name);

/// Escapes a label value for the text exposition format.
std::string prom_escape_label_value(const std::string& value);

/// Renders the snapshot as Prometheus text exposition. When `exemplars` is
/// given, histogram bucket lines whose metric has a recorded exemplar gain
/// an OpenMetrics-style suffix (` # {trace_id="42"} 1.25`) linking the
/// bucket to a concrete request timeline; 0.0.4 scrapers treat everything
/// after '#' as a comment, so the addition is backward compatible.
std::string to_prometheus(
    const MetricsSnapshot& snap,
    const std::map<std::string, std::string>& const_labels = {},
    const ExemplarStore* exemplars = nullptr);

/// Content-Type the exposition format mandates.
inline const char* prom_content_type() {
  return "text/plain; version=0.0.4; charset=utf-8";
}

}  // namespace igc::obs
