#include "obs/request_trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/json.h"
#include "obs/latency_histogram.h"

namespace igc::obs {
namespace {

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_u64(std::string& out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

/// splitmix64 finalizer: a well-mixed pure function of the trace id.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool is_error(RequestStatus s) {
  return s == RequestStatus::kFailed || s == RequestStatus::kShed ||
         s == RequestStatus::kRejected;
}

/// Fixed-capacity ring insert, overwriting the oldest entry.
void ring_push(std::vector<RequestTimeline>& ring, size_t& next, int cap,
               RequestTimeline tl) {
  if (cap <= 0) return;
  if (static_cast<int>(ring.size()) < cap) {
    ring.push_back(std::move(tl));
    return;
  }
  ring[next] = std::move(tl);
  next = (next + 1) % ring.size();
}

std::string event_json(const RequestEvent& e) {
  std::string out = "{\"event\": \"";
  out += request_event_name(e.kind);
  out += "\", \"t_ms\": ";
  append_num(out, e.t_ms);
  if (e.queue_depth >= 0) {
    out += ", \"queue_depth\": " + std::to_string(e.queue_depth);
  }
  if (e.batch_id >= 0) {
    out += ", \"batch_id\": " + std::to_string(e.batch_id);
  }
  if (e.worker_id >= 0) {
    out += ", \"worker_id\": " + std::to_string(e.worker_id);
  }
  if (e.batch_size > 0) {
    out += ", \"batch_size\": " + std::to_string(e.batch_size);
  }
  if (e.sim_latency_ms > 0.0) {
    out += ", \"sim_latency_ms\": ";
    append_num(out, e.sim_latency_ms);
  }
  if (!e.detail.empty()) {
    out += ", \"detail\": \"" + json::escape(e.detail) + "\"";
  }
  out += "}";
  return out;
}

std::string header_json(const RequestTimeline& tl) {
  std::string out = "{\"trace_id\": ";
  append_u64(out, tl.trace_id);
  out += ", \"tenant\": " + std::to_string(tl.tenant);
  out += ", \"tenant_name\": \"" + json::escape(tl.tenant_name) + "\"";
  out += ", \"status\": \"";
  out += request_status_name(tl.status);
  out += "\", \"e2e_ms\": ";
  append_num(out, tl.e2e_ms());
  return out;
}

}  // namespace

const char* request_event_name(RequestEventKind k) {
  switch (k) {
    case RequestEventKind::kSubmit: return "submit";
    case RequestEventKind::kAdmit: return "admit";
    case RequestEventKind::kShed: return "shed";
    case RequestEventKind::kReject: return "reject";
    case RequestEventKind::kBatchFormed: return "batch_formed";
    case RequestEventKind::kWorkerStart: return "worker_start";
    case RequestEventKind::kRun: return "run";
    case RequestEventKind::kFinish: return "finish";
  }
  return "unknown";
}

const char* request_status_name(RequestStatus s) {
  switch (s) {
    case RequestStatus::kInFlight: return "in_flight";
    case RequestStatus::kCompleted: return "completed";
    case RequestStatus::kFailed: return "failed";
    case RequestStatus::kShed: return "shed";
    case RequestStatus::kRejected: return "rejected";
  }
  return "unknown";
}

std::string RequestTimeline::json() const {
  std::string out = header_json(*this);
  out += ", \"events\": [";
  for (size_t i = 0; i < events.size(); ++i) {
    out += i == 0 ? "" : ", ";
    out += event_json(events[i]);
  }
  out += "]}";
  return out;
}

std::string RequestTimeline::summary_json() const {
  std::string out = header_json(*this);
  out += ", \"num_events\": " + std::to_string(events.size()) + "}";
  return out;
}

FlightRecorder::FlightRecorder() : FlightRecorder(Options{}) {}

FlightRecorder::FlightRecorder(Options opts) : opts_(opts) {
  if (opts_.num_shards < 1) opts_.num_shards = 1;
  // +1: the ingress shard the submit path uses for refusals (shard_hint -1).
  for (int i = 0; i < opts_.num_shards + 1; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

bool FlightRecorder::head_sampled(uint64_t trace_id, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Top 53 bits of the mixed id -> uniform double in [0,1).
  const double u =
      static_cast<double>(mix64(trace_id) >> 11) * 0x1.0p-53;
  return u < rate;
}

void FlightRecorder::offer(RequestTimeline tl, int shard_hint) {
  {
    std::lock_guard<std::mutex> lk(offered_mu_);
    ++offered_;
  }
  const size_t idx =
      shard_hint < 0
          ? shards_.size() - 1
          : static_cast<size_t>(shard_hint % opts_.num_shards);
  Shard& s = *shards_[idx];
  std::lock_guard<std::mutex> lk(s.mu);
  if (is_error(tl.status)) {
    ring_push(s.errors, s.errors_next, opts_.keep_errors, std::move(tl));
    return;
  }
  // Completed traffic: the slowest set first (evicting the fastest member
  // when full), else the deterministic head-sample ring.
  if (opts_.keep_slowest > 0) {
    if (static_cast<int>(s.slowest.size()) < opts_.keep_slowest) {
      s.slowest.push_back(std::move(tl));
      return;
    }
    auto fastest = std::min_element(
        s.slowest.begin(), s.slowest.end(),
        [](const RequestTimeline& a, const RequestTimeline& b) {
          return a.e2e_ms() < b.e2e_ms();
        });
    if (tl.e2e_ms() > fastest->e2e_ms()) {
      RequestTimeline evicted = std::move(*fastest);
      *fastest = std::move(tl);
      // The evicted (no longer slowest) timeline still gets its head-sample
      // chance, so sampling stays a pure function of the trace id.
      if (head_sampled(evicted.trace_id, opts_.head_sample_rate)) {
        ring_push(s.sampled, s.sampled_next, opts_.keep_head,
                  std::move(evicted));
      }
      return;
    }
  }
  if (head_sampled(tl.trace_id, opts_.head_sample_rate)) {
    ring_push(s.sampled, s.sampled_next, opts_.keep_head, std::move(tl));
  }
}

std::vector<RequestTimeline> FlightRecorder::snapshot() const {
  std::vector<RequestTimeline> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    for (const auto* set : {&shard->errors, &shard->sampled, &shard->slowest}) {
      out.insert(out.end(), set->begin(), set->end());
    }
  }
  // Deterministic merged order regardless of which worker retained what.
  std::sort(out.begin(), out.end(),
            [](const RequestTimeline& a, const RequestTimeline& b) {
              return a.trace_id < b.trace_id;
            });
  return out;
}

std::optional<RequestTimeline> FlightRecorder::find(uint64_t trace_id) const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->mu);
    for (const auto* set : {&shard->errors, &shard->sampled, &shard->slowest}) {
      for (const RequestTimeline& tl : *set) {
        if (tl.trace_id == trace_id) return tl;
      }
    }
  }
  return std::nullopt;
}

int64_t FlightRecorder::offered() const {
  std::lock_guard<std::mutex> lk(offered_mu_);
  return offered_;
}

void ExemplarStore::record(const std::string& metric, double value,
                           uint64_t trace_id) {
  const int bucket = LatencyHistogram::bucket_index(value);
  std::lock_guard<std::mutex> lk(mu_);
  by_metric_[metric][bucket] = Exemplar{trace_id, value};
}

std::map<std::string, std::map<int, ExemplarStore::Exemplar>>
ExemplarStore::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  return by_metric_;
}

std::optional<ExemplarStore::Exemplar> ExemplarStore::find(
    const std::string& metric, double value) const {
  const int bucket = LatencyHistogram::bucket_index(value);
  std::lock_guard<std::mutex> lk(mu_);
  auto m = by_metric_.find(metric);
  if (m == by_metric_.end()) return std::nullopt;
  auto b = m->second.find(bucket);
  if (b == m->second.end()) return std::nullopt;
  return b->second;
}

std::string ExemplarStore::json() const {
  const auto snap = snapshot();
  std::string out = "{";
  bool first_metric = true;
  for (const auto& [metric, buckets] : snap) {
    out += first_metric ? "" : ", ";
    first_metric = false;
    out += "\"" + json::escape(metric) + "\": [";
    bool first = true;
    for (const auto& [bucket, ex] : buckets) {
      out += first ? "" : ", ";
      first = false;
      out += "{\"le\": ";
      append_num(out, LatencyHistogram::bucket_upper_bound(bucket));
      out += ", \"trace_id\": ";
      append_u64(out, ex.trace_id);
      out += ", \"value\": ";
      append_num(out, ex.value);
      out += "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

std::string request_summaries_json(const std::vector<RequestTimeline>& tls) {
  // Slowest first: the question /debug/requests answers is "what was slow?".
  std::vector<const RequestTimeline*> order;
  order.reserve(tls.size());
  for (const RequestTimeline& tl : tls) order.push_back(&tl);
  std::sort(order.begin(), order.end(),
            [](const RequestTimeline* a, const RequestTimeline* b) {
              if (a->e2e_ms() != b->e2e_ms()) return a->e2e_ms() > b->e2e_ms();
              return a->trace_id < b->trace_id;
            });
  std::string out = "[";
  for (size_t i = 0; i < order.size(); ++i) {
    out += i == 0 ? "" : ", ";
    out += order[i]->summary_json();
  }
  out += "]";
  return out;
}

std::string chrome_request_trace_json(
    const std::vector<RequestTimeline>& tls) {
  // Track layout: one process for the serving pipeline; tid 0 = queue,
  // tid 1 = batcher, tid 2+w = worker w. Each request renders as duration
  // spans on the tracks it crossed, connected by a flow (id = trace id) so
  // the UI draws the request's arrow from admission to completion.
  constexpr int kPid = 3;  // pids 1/2 belong to the executor trace
  constexpr int kQueueTid = 0;
  constexpr int kBatcherTid = 1;
  constexpr int kWorkerTidBase = 2;

  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [";
  bool first = true;
  auto emit = [&](const std::string& body) {
    out += first ? "\n  " : ",\n  ";
    first = false;
    out += body;
  };
  auto meta = [&](int tid, const std::string& name) {
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  R"({"ph": "M", "pid": %d, "tid": %d, "name": )", kPid, tid);
    emit(std::string(buf) + R"("thread_name", "args": {"name": ")" +
         json::escape(name) + R"("}})");
  };
  emit(R"({"ph": "M", "pid": 3, "name": "process_name", )"
       R"("args": {"name": "serving engine"}})");
  meta(kQueueTid, "queue");
  meta(kBatcherTid, "batcher");
  std::vector<int> workers_seen;
  for (const RequestTimeline& tl : tls) {
    for (const RequestEvent& e : tl.events) {
      if (e.worker_id >= 0 &&
          std::find(workers_seen.begin(), workers_seen.end(), e.worker_id) ==
              workers_seen.end()) {
        workers_seen.push_back(e.worker_id);
      }
    }
  }
  std::sort(workers_seen.begin(), workers_seen.end());
  for (int w : workers_seen) {
    meta(kWorkerTidBase + w, "worker " + std::to_string(w));
  }

  char buf[256];
  auto span = [&](int tid, const char* name, const RequestTimeline& tl,
                  double t0, double t1) {
    std::snprintf(
        buf, sizeof(buf),
        R"("ph": "X", "pid": %d, "tid": %d, "ts": %.6f, "dur": %.6f)", kPid,
        tid, t0 * 1000.0, (t1 - t0) * 1000.0);
    std::string ev = "{\"name\": \"" + std::string(name) + " #";
    append_u64(ev, tl.trace_id);
    ev += "\", \"cat\": \"request\", ";
    ev += buf;
    ev += ", \"args\": {\"trace_id\": ";
    append_u64(ev, tl.trace_id);
    ev += ", \"tenant\": \"" + json::escape(tl.tenant_name) + "\"";
    ev += ", \"status\": \"";
    ev += request_status_name(tl.status);
    ev += "\"}}";
    emit(ev);
  };
  auto flow = [&](const char* ph, int tid, const RequestTimeline& tl,
                  double t) {
    std::snprintf(buf, sizeof(buf),
                  R"({"ph": "%s", "pid": %d, "tid": %d, "ts": %.6f, )"
                  R"("id": %)" PRIu64 R"(, "name": "request", "cat": )"
                  R"("request"%s})",
                  ph, kPid, tid, t * 1000.0, tl.trace_id,
                  ph[0] == 'f' ? R"(, "bp": "e")" : "");
    emit(buf);
  };

  for (const RequestTimeline& tl : tls) {
    double submit = 0.0, batch = -1.0, start = -1.0, finish = -1.0;
    int worker = -1;
    for (const RequestEvent& e : tl.events) {
      switch (e.kind) {
        case RequestEventKind::kSubmit: submit = e.t_ms; break;
        case RequestEventKind::kBatchFormed: batch = e.t_ms; break;
        case RequestEventKind::kWorkerStart:
          start = e.t_ms;
          worker = e.worker_id;
          break;
        case RequestEventKind::kFinish: finish = e.t_ms; break;
        case RequestEventKind::kShed:
        case RequestEventKind::kReject:
          // Refusals render as a zero-length marker on the queue track.
          batch = -1.0;
          span(kQueueTid, "refused", tl, e.t_ms, e.t_ms);
          break;
        default: break;
      }
    }
    if (batch >= 0.0) {
      span(kQueueTid, "queued", tl, submit, batch);
      flow("s", kQueueTid, tl, submit);
      const double handoff = start >= 0.0 ? start : batch;
      span(kBatcherTid, "batched", tl, batch, handoff);
      flow("t", kBatcherTid, tl, batch);
      if (start >= 0.0 && finish >= start && worker >= 0) {
        span(kWorkerTidBase + worker, "run", tl, start, finish);
        flow("f", kWorkerTidBase + worker, tl, start);
      }
    }
  }
  out += "\n]}\n";
  return out;
}

bool save_chrome_request_trace(const std::string& path,
                               const std::vector<RequestTimeline>& tls) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = chrome_request_trace_json(tls);
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  return std::fclose(f) == 0 && written == doc.size();
}

}  // namespace igc::obs
