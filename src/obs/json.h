// Minimal JSON value model and recursive-descent parser.
//
// Exists so the observability exports (Chrome traces, metrics snapshots,
// BENCH_*.json lines) can be round-tripped and validated inside this repo's
// own tests without an external JSON dependency. Supports the full JSON
// grammar the exporters emit: objects, arrays, strings (with \uXXXX escapes
// decoded to UTF-8), finite numbers, booleans, and null.
//
// Parsing failures raise igc::Error with the byte offset of the problem.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace igc::obs::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; IGC_CHECK-fail on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::map<std::string, Value>& as_object() const;

  /// Object member access; `at` fails when missing, `has` probes.
  bool has(const std::string& key) const;
  const Value& at(const std::string& key) const;
  /// Array element access with bounds check.
  const Value& at(size_t index) const;
  size_t size() const;

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> a);
  static Value make_object(std::map<std::string, Value> o);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::map<std::string, Value> obj_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
Value parse(const std::string& text);

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
std::string escape(const std::string& s);

}  // namespace igc::obs::json
