// Log-bucketed latency histogram with bounded relative error — the serving
// telemetry substrate (HDR-histogram style, sized for millisecond latencies).
//
// Values are bucketed on a logarithmic grid: kSubBuckets buckets per power
// of two, spanning [kMinValue, kMinValue * 2^kOctaves). percentile(p) walks
// the cumulative counts and answers with the geometric midpoint of the
// bucket holding the requested rank, so for any sample distribution the
// reported quantile is within
//
//     max_relative_error() == 2^(1 / (2 * kSubBuckets)) - 1   (~1.09%)
//
// of an exact (sorted-sample) quantile, independent of the distribution's
// shape — spikes, bimodal mixes, and heavy tails all honor the same bound.
// Values below kMinValue land in a dedicated underflow bucket reported as
// 0.0; values at or above the top clamp into the last bucket.
//
// Concurrency: observe() touches three relaxed atomics (bucket, count, sum)
// and never allocates, so hot paths on many threads can share one instance.
// Counts are conserved exactly: the sum over bucket(i) always equals
// count() once concurrent writers have quiesced. merge() is associative and
// commutative (pure bucket-wise addition), so per-thread histograms can be
// combined in any order.
//
// This header is std-only (the obs/metrics.h rule): low layers record
// latencies without pulling in graph/sim types.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace igc::obs {

class LatencyHistogram {
 public:
  /// Buckets per power of two. 32 gives ~1.09% worst-case quantile error.
  static constexpr int kSubBuckets = 32;
  /// Powers of two covered above kMinValue. 64 octaves over 1e-6 spans
  /// [1e-6, ~1.8e13] — nanoseconds to centuries when the unit is ms.
  static constexpr int kOctaves = 64;
  /// Bucket 0 is the underflow bucket for values < kMinValue (and <= 0).
  static constexpr int kBuckets = kOctaves * kSubBuckets + 1;
  static constexpr double kMinValue = 1e-6;

  /// Worst-case relative error of percentile() for in-range samples:
  /// half a bucket's width in log space.
  static double max_relative_error() {
    return std::exp2(1.0 / (2.0 * kSubBuckets)) - 1.0;
  }

  /// Bucket index of `v`: 0 for v < kMinValue, else
  /// 1 + floor(log2(v / kMinValue) * kSubBuckets), clamped to the top.
  static int bucket_index(double v) {
    if (!(v >= kMinValue)) return 0;  // also catches NaN
    const int i = 1 + static_cast<int>(
                          std::floor(std::log2(v / kMinValue) * kSubBuckets));
    return i >= kBuckets ? kBuckets - 1 : i;
  }

  /// Inclusive upper bound of bucket `i` (the Prometheus `le` bound).
  /// Bucket 0's bound is kMinValue.
  static double bucket_upper_bound(int i) {
    if (i <= 0) return kMinValue;
    return kMinValue * std::exp2(static_cast<double>(i) / kSubBuckets);
  }

  /// Representative value reported for a rank landing in bucket `i`: the
  /// geometric midpoint of the bucket's bounds (0.0 for the underflow
  /// bucket, whose samples are below the resolution floor by definition).
  static double bucket_representative(int i) {
    if (i <= 0) return 0.0;
    return kMinValue * std::exp2((static_cast<double>(i) - 0.5) / kSubBuckets);
  }

  void observe(double v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    const double sample = std::isfinite(v) && v > 0.0 ? v : 0.0;
    while (!sum_.compare_exchange_weak(cur, cur + sample,
                                       std::memory_order_relaxed)) {
    }
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Quantile query, p in [0, 1]: the representative value of the bucket
  /// holding rank ceil(p * count). Returns 0.0 on an empty histogram.
  double percentile(double p) const;

  /// Bucket-wise addition of `other` into this histogram.
  void merge(const LatencyHistogram& other);

  void reset();

  /// (bucket index, count) pairs of the non-empty buckets, ascending — the
  /// compact form snapshots and exporters carry.
  using BucketList = std::vector<std::pair<int, int64_t>>;
  BucketList nonzero_buckets() const;

  /// percentile() over a detached bucket list (snapshot deltas answer
  /// quantile queries without the live instrument). `buckets` must be
  /// index-ascending with non-negative counts summing to `count`.
  static double percentile_of(const BucketList& buckets, int64_t count,
                              double p);

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

}  // namespace igc::obs
