// Request-scoped tracing for the serving engine: per-request event
// timelines, a tail-sampled flight recorder, and histogram exemplars.
//
// Event model: every traced request carries ONE RequestTimeline through the
// pipeline. The timeline rides on the request object itself, which is owned
// by exactly one stage at a time (submit path -> queue -> batch -> worker),
// so appending events takes no lock and perturbs nothing the hot path
// shares — the same "record privately, merge deterministically post-run"
// pattern as the executor's TraceRecorder (obs/trace.h). Only the terminal
// hand-off to the FlightRecorder synchronizes, on a per-worker shard mutex
// that workers never contend on with each other.
//
// Tail-sampling policy (FlightRecorder): every finished timeline is offered;
// the recorder always retains
//   * every failed / shed / rejected request (most-recent keep_errors of
//     them — the ring is bounded, but sized so "all" holds at any load a
//     debugging session cares about),
//   * the keep_slowest highest-e2e completed requests per shard (the merged
//     view therefore contains the global N slowest), and
//   * a deterministic head-sample of normal traffic: the decision is a pure
//     hash of the trace id against head_sample_rate, so two runs over the
//     same id sequence retain the same requests — no RNG, no racing state.
//
// Exemplars (ExemplarStore): histogram metrics like serve.e2e_ms keep, per
// log bucket, the trace id of the most recent request that landed there.
// A p99 spike in the exposition then links directly to a concrete timeline
// via /debug/request/<id>. Exemplars are rendered OpenMetrics-style after
// the 0.0.4 bucket lines (`... # {trace_id="42"} 1.25`) — scrapers that
// ignore exposition comments are unaffected.
//
// This header is std-only (like obs/metrics.h) so the serve layer can embed
// timelines without new dependency edges.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace igc::obs {

/// Lifecycle stages a request moves through. A completed request records
/// kSubmit -> kAdmit -> kBatchFormed -> kWorkerStart -> kRun -> kFinish;
/// refused requests stop at kShed / kReject.
enum class RequestEventKind {
  kSubmit,
  kAdmit,
  kShed,
  kReject,
  kBatchFormed,
  kWorkerStart,
  kRun,
  kFinish,
};

const char* request_event_name(RequestEventKind k);

/// One timeline entry. t_ms is the engine's injectable clock, so scripted
/// clocks yield byte-deterministic timelines. Context fields are stamped
/// where they become known and stay at their sentinel (-1 / 0 / empty)
/// elsewhere; the JSON export omits unset fields.
struct RequestEvent {
  RequestEventKind kind = RequestEventKind::kSubmit;
  double t_ms = 0.0;
  int queue_depth = -1;       ///< depth observed at admit / batch formation
  int64_t batch_id = -1;      ///< engine-wide batch sequence number
  int worker_id = -1;         ///< worker that executed the request
  int batch_size = 0;         ///< size of the dispatched batch
  double sim_latency_ms = 0.0;  ///< kRun: simulated inference latency
  /// Free-form context: admission reason on kShed/kReject, the chosen
  /// ShapeVariant binding ("b2 112x112") on kRun, the error on a failed
  /// kFinish.
  std::string detail;
};

enum class RequestStatus { kInFlight, kCompleted, kFailed, kShed, kRejected };

const char* request_status_name(RequestStatus s);

/// Full per-request record: identity, terminal status, and the ordered
/// event list. trace_id is the engine's request id — the same value clients
/// see in RequestOutcome::id, so an exemplar links to a future a caller
/// still holds.
struct RequestTimeline {
  uint64_t trace_id = 0;
  int tenant = -1;
  std::string tenant_name;
  RequestStatus status = RequestStatus::kInFlight;
  std::vector<RequestEvent> events;

  void add(RequestEvent e) { events.push_back(std::move(e)); }
  double submit_ms() const { return events.empty() ? 0.0 : events.front().t_ms; }
  double last_ms() const { return events.empty() ? 0.0 : events.back().t_ms; }
  double e2e_ms() const { return last_ms() - submit_ms(); }

  /// One JSON object with the full event list.
  std::string json() const;
  /// One-line JSON summary (no event list) for /debug/requests.
  std::string summary_json() const;
};

/// Bounded, sharded retention of finished timelines (see file comment for
/// the policy). Shards are picked by the caller's worker id so concurrent
/// workers synchronize only with snapshot readers, never each other.
class FlightRecorder {
 public:
  struct Options {
    int num_shards = 4;
    /// Per shard: completed requests with the highest e2e always retained.
    int keep_slowest = 8;
    /// Per shard: most-recent failed/shed/rejected timelines retained.
    int keep_errors = 256;
    /// Per shard: most-recent head-sampled normal timelines retained.
    int keep_head = 64;
    /// Fraction [0,1] of normal completions retained by the deterministic
    /// head-sample (0 = tail-only: errors and slowest).
    double head_sample_rate = 0.0;
  };

  FlightRecorder();  // default Options
  explicit FlightRecorder(Options opts);

  /// Terminal sink for one finished timeline. shard_hint is the calling
  /// worker's id (-1 for the submit path's ingress shard).
  void offer(RequestTimeline tl, int shard_hint = -1);

  /// Deterministic merged view: every retained timeline, sorted by trace
  /// id ascending regardless of worker interleaving.
  std::vector<RequestTimeline> snapshot() const;

  /// The retained timeline for `trace_id`, if any.
  std::optional<RequestTimeline> find(uint64_t trace_id) const;

  /// Timelines offered so far (retained or not).
  int64_t offered() const;

  /// Pure head-sampling decision: a splitmix64 hash of the trace id mapped
  /// to [0,1) and compared against `rate`. Same id, same verdict, always.
  static bool head_sampled(uint64_t trace_id, double rate);

  const Options& options() const { return opts_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<RequestTimeline> errors;   // ring, most recent keep_errors
    std::vector<RequestTimeline> sampled;  // ring, most recent keep_head
    std::vector<RequestTimeline> slowest;  // capped at keep_slowest, by e2e
    size_t errors_next = 0;
    size_t sampled_next = 0;
  };

  Options opts_;
  std::vector<std::unique_ptr<Shard>> shards_;  // [0..num_shards) + ingress
  mutable std::mutex offered_mu_;
  int64_t offered_ = 0;
};

/// Per-bucket exemplars for registry histograms: the trace id of the most
/// recent request whose observation landed in each LatencyHistogram bucket.
/// Mutex-guarded — it is touched per request completion, not per node, so
/// the lock is far off any hot path.
class ExemplarStore {
 public:
  struct Exemplar {
    uint64_t trace_id = 0;
    double value = 0.0;
  };

  /// Records `value` (already observed into the histogram `metric`) as the
  /// exemplar for its bucket.
  void record(const std::string& metric, double value, uint64_t trace_id);

  /// metric -> (bucket index -> exemplar), copyable point-in-time view.
  std::map<std::string, std::map<int, Exemplar>> snapshot() const;

  /// The exemplar for `metric`'s bucket containing `value`, if any.
  std::optional<Exemplar> find(const std::string& metric, double value) const;

  /// JSON object {"metric": [{"le": ..., "trace_id": ..., "value": ...}]}
  /// — what /snapshot.json splices in under "exemplars".
  std::string json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::map<int, Exemplar>> by_metric_;
};

/// /debug/requests body: a JSON array of one-line summaries, slowest first.
std::string request_summaries_json(const std::vector<RequestTimeline>& tls);

/// Chrome-trace (chrome://tracing / Perfetto) document rendering the
/// timelines as duration spans on queue / batcher / worker tracks, tied
/// together per request with flow events ("ph":"s"/"t"/"f", id = trace id)
/// so the UI draws an arrow following each request across the pipeline.
std::string chrome_request_trace_json(const std::vector<RequestTimeline>& tls);

/// Writes chrome_request_trace_json to `path`; false on I/O failure.
bool save_chrome_request_trace(const std::string& path,
                               const std::vector<RequestTimeline>& tls);

}  // namespace igc::obs
