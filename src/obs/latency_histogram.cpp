#include "obs/latency_histogram.h"

#include <algorithm>

namespace igc::obs {

double LatencyHistogram::percentile(double p) const {
  const int64_t n = count();
  if (n <= 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  int64_t rank = static_cast<int64_t>(std::ceil(p * static_cast<double>(n)));
  rank = std::clamp<int64_t>(rank, 1, n);
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) return bucket_representative(i);
  }
  // Concurrent writers can make count() momentarily run ahead of the bucket
  // totals; answer with the highest occupied bucket.
  for (int i = kBuckets - 1; i >= 0; --i) {
    if (bucket(i) > 0) return bucket_representative(i);
  }
  return 0.0;
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    const int64_t n = other.bucket(i);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  const double add = other.sum();
  double cur = sum_.load(std::memory_order_relaxed);
  while (
      !sum_.compare_exchange_weak(cur, cur + add, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

LatencyHistogram::BucketList LatencyHistogram::nonzero_buckets() const {
  BucketList out;
  for (int i = 0; i < kBuckets; ++i) {
    const int64_t n = bucket(i);
    if (n != 0) out.emplace_back(i, n);
  }
  return out;
}

double LatencyHistogram::percentile_of(const BucketList& buckets,
                                       int64_t count, double p) {
  if (count <= 0 || buckets.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  int64_t rank =
      static_cast<int64_t>(std::ceil(p * static_cast<double>(count)));
  rank = std::clamp<int64_t>(rank, 1, count);
  int64_t seen = 0;
  for (const auto& [i, n] : buckets) {
    seen += n;
    if (seen >= rank) return bucket_representative(i);
  }
  return bucket_representative(buckets.back().first);
}

}  // namespace igc::obs
