#include "obs/prom.h"

#include <cinttypes>
#include <cstdio>

#include "obs/request_trace.h"

namespace igc::obs {
namespace {

bool valid_name_char(char c, bool first) {
  const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                     c == '_' || c == ':';
  if (first) return alpha;
  return alpha || (c >= '0' && c <= '9');
}

void append_int(std::string& out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

/// Renders `{k="v",...}` from the const labels; empty labels render nothing.
/// `extra` appends one preformatted label (the histogram `le`).
std::string label_block(const std::map<std::string, std::string>& labels,
                        const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    out += first ? "" : ",";
    first = false;
    out += prom_metric_name(k) + "=\"" + prom_escape_label_value(v) + '"';
  }
  if (!extra.empty()) {
    out += first ? "" : ",";
    out += extra;
  }
  out += "}";
  return out;
}

}  // namespace

std::string prom_metric_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && !valid_name_char(name[0], /*first=*/true)) {
    out += '_';
    // A leading digit is kept after the '_' prefix; other invalid leading
    // bytes fall through to the replacement below.
    if (name[0] >= '0' && name[0] <= '9') out += name[0];
  } else if (!name.empty()) {
    out += name[0];
  }
  for (size_t i = 1; i < name.size(); ++i) {
    out += valid_name_char(name[i], /*first=*/false) ? name[i] : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

std::string prom_escape_label_value(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string to_prometheus(
    const MetricsSnapshot& snap,
    const std::map<std::string, std::string>& const_labels,
    const ExemplarStore* exemplars) {
  const std::string labels = label_block(const_labels);
  // Exemplars are keyed by the raw (pre-sanitization) metric name, the same
  // name the snapshot's histogram map uses.
  std::map<std::string, std::map<int, ExemplarStore::Exemplar>> ex;
  if (exemplars != nullptr) ex = exemplars->snapshot();
  std::string out;

  for (const auto& [name, v] : snap.counters) {
    const std::string pname = prom_metric_name(name);
    out += "# TYPE " + pname + " counter\n";
    out += pname + "_total" + labels + " ";
    append_int(out, v);
    out += "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string pname = prom_metric_name(name);
    out += "# TYPE " + pname + " gauge\n";
    out += pname + labels + " ";
    append_int(out, v);
    out += "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string pname = prom_metric_name(name);
    out += "# TYPE " + pname + " histogram\n";
    // Cumulative counts at each occupied bucket's upper bound. The bucket
    // list is index-ascending, so the le bounds are strictly increasing and
    // the cumulative counts monotone — both exposition-format requirements.
    int64_t cumulative = 0;
    const auto metric_ex = ex.find(name);
    for (const auto& [i, n] : h.buckets) {
      cumulative += n;
      std::string le = "le=\"";
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g",
                    LatencyHistogram::bucket_upper_bound(i));
      le += buf;
      le += '"';
      out += pname + "_bucket" + label_block(const_labels, le) + " ";
      append_int(out, cumulative);
      if (metric_ex != ex.end()) {
        const auto bucket_ex = metric_ex->second.find(i);
        if (bucket_ex != metric_ex->second.end()) {
          char ebuf[32];
          std::snprintf(ebuf, sizeof(ebuf), "%" PRIu64,
                        bucket_ex->second.trace_id);
          out += std::string(" # {trace_id=\"") + ebuf + "\"} ";
          append_num(out, bucket_ex->second.value);
        }
      }
      out += "\n";
    }
    // A snapshot racing an observe() can see a bucket increment before the
    // matching count increment; keep le="+Inf" monotone regardless.
    const int64_t total = h.count > cumulative ? h.count : cumulative;
    out += pname + "_bucket" + label_block(const_labels, "le=\"+Inf\"") + " ";
    append_int(out, total);
    out += "\n";
    out += pname + "_sum" + labels + " ";
    append_num(out, h.sum);
    out += "\n";
    out += pname + "_count" + labels + " ";
    append_int(out, total);
    out += "\n";
  }
  return out;
}

}  // namespace igc::obs
