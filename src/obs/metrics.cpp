#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace igc::obs {
namespace {

void append_kv(std::string& out, const std::string& key, int64_t value,
               bool& first) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  out += first ? "" : ", ";
  first = false;
  out += '"';
  out += key;  // instrument names are plain identifiers, no escaping needed
  out += "\": ";
  out += buf;
}

void append_kv_double(std::string& out, const std::string& key, double value,
                      bool& first) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += first ? "" : ", ";
  first = false;
  out += '"';
  out += key;
  out += "\": ";
  out += buf;
}

}  // namespace

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::Hist hs;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.buckets = h->nonzero_buckets();
    s.histograms[name] = std::move(hs);
  }
  return s;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsSnapshot MetricsSnapshot::delta_to(const MetricsSnapshot& later) const {
  MetricsSnapshot d;
  for (const auto& [name, v] : later.counters) {
    auto it = counters.find(name);
    d.counters[name] = v - (it == counters.end() ? 0 : it->second);
  }
  d.gauges = later.gauges;
  for (const auto& [name, h] : later.histograms) {
    Hist dh;
    auto it = histograms.find(name);
    const Hist* base = it == histograms.end() ? nullptr : &it->second;
    dh.count = h.count - (base ? base->count : 0);
    dh.sum = h.sum - (base ? base->sum : 0.0);
    std::map<int, int64_t> buckets(h.buckets.begin(), h.buckets.end());
    if (base != nullptr) {
      for (const auto& [i, n] : base->buckets) buckets[i] -= n;
    }
    for (const auto& [i, n] : buckets) {
      if (n != 0) dh.buckets.emplace_back(i, n);
    }
    d.histograms[name] = std::move(dh);
  }
  return d;
}

std::string MetricsSnapshot::json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, v] : counters) append_kv(out, name, v, first);
  for (const auto& [name, v] : gauges) append_kv(out, name, v, first);
  for (const auto& [name, h] : histograms) {
    out += first ? "" : ", ";
    first = false;
    out += '"' + name + "\": {";
    bool hf = true;
    append_kv(out, "count", h.count, hf);
    append_kv_double(out, "sum", h.sum, hf);
    append_kv_double(out, "p50", h.percentile(0.50), hf);
    append_kv_double(out, "p95", h.percentile(0.95), hf);
    append_kv_double(out, "p99", h.percentile(0.99), hf);
    out += ", \"buckets\": {";
    bool bf = true;
    for (const auto& [i, n] : h.buckets) {
      append_kv(out, "b_" + std::to_string(i), n, bf);
    }
    out += "}}";
  }
  out += "}";
  return out;
}

}  // namespace igc::obs
