#include "obs/json.h"

#include <cctype>
#include <cstdlib>

#include "core/error.h"

namespace igc::obs::json {

bool Value::as_bool() const {
  IGC_CHECK(is_bool()) << "JSON value is not a bool";
  return bool_;
}

double Value::as_number() const {
  IGC_CHECK(is_number()) << "JSON value is not a number";
  return num_;
}

int64_t Value::as_int() const { return static_cast<int64_t>(as_number()); }

const std::string& Value::as_string() const {
  IGC_CHECK(is_string()) << "JSON value is not a string";
  return str_;
}

const std::vector<Value>& Value::as_array() const {
  IGC_CHECK(is_array()) << "JSON value is not an array";
  return arr_;
}

const std::map<std::string, Value>& Value::as_object() const {
  IGC_CHECK(is_object()) << "JSON value is not an object";
  return obj_;
}

bool Value::has(const std::string& key) const {
  return is_object() && obj_.count(key) > 0;
}

const Value& Value::at(const std::string& key) const {
  const auto& o = as_object();
  auto it = o.find(key);
  IGC_CHECK(it != o.end()) << "JSON object has no key '" << key << "'";
  return it->second;
}

const Value& Value::at(size_t index) const {
  const auto& a = as_array();
  IGC_CHECK_LT(index, a.size()) << "JSON array index out of range";
  return a[index];
}

size_t Value::size() const {
  if (is_array()) return arr_.size();
  if (is_object()) return obj_.size();
  IGC_CHECK(false) << "JSON size() on a scalar";
  return 0;
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}
Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.num_ = n;
  return v;
}
Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.str_ = std::move(s);
  return v;
}
Value Value::make_array(std::vector<Value> a) {
  Value v;
  v.kind_ = Kind::kArray;
  v.arr_ = std::move(a);
  return v;
}
Value Value::make_object(std::map<std::string, Value> o) {
  Value v;
  v.kind_ = Kind::kObject;
  v.obj_ = std::move(o);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    IGC_CHECK_EQ(pos_, s_.size()) << "trailing characters after JSON document";
    return v;
  }

 private:
  char peek() {
    IGC_CHECK_LT(pos_, s_.size()) << "unexpected end of JSON input";
    return s_[pos_];
  }
  char next() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void expect(char c) {
    IGC_CHECK(next() == c) << "expected '" << c << "' at offset " << (pos_ - 1);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool consume_literal(const char* lit) {
    size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value::make_string(parse_string());
      case 't':
        IGC_CHECK(consume_literal("true")) << "bad literal at offset " << pos_;
        return Value::make_bool(true);
      case 'f':
        IGC_CHECK(consume_literal("false")) << "bad literal at offset " << pos_;
        return Value::make_bool(false);
      case 'n':
        IGC_CHECK(consume_literal("null")) << "bad literal at offset " << pos_;
        return Value::make_null();
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::map<std::string, Value> o;
    skip_ws();
    if (peek() == '}') {
      next();
      return Value::make_object(std::move(o));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      o.emplace(std::move(key), parse_value());
      skip_ws();
      const char c = next();
      if (c == '}') break;
      IGC_CHECK(c == ',') << "expected ',' or '}' at offset " << (pos_ - 1);
    }
    return Value::make_object(std::move(o));
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> a;
    skip_ws();
    if (peek() == ']') {
      next();
      return Value::make_array(std::move(a));
    }
    while (true) {
      a.push_back(parse_value());
      skip_ws();
      const char c = next();
      if (c == ']') break;
      IGC_CHECK(c == ',') << "expected ',' or ']' at offset " << (pos_ - 1);
    }
    return Value::make_array(std::move(a));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = next();
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = next();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = next();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              IGC_CHECK(false) << "bad \\u escape at offset " << pos_;
            }
          }
          // UTF-8 encode (the exporters only emit BMP code points).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          IGC_CHECK(false) << "bad escape '\\" << e << "' at offset " << pos_;
      }
    }
    return out;
  }

  Value parse_number() {
    const size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    IGC_CHECK_GT(pos_, start) << "expected a JSON value at offset " << start;
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    const double v = std::strtod(tok.c_str(), &end);
    IGC_CHECK(end != nullptr && *end == '\0')
        << "malformed number '" << tok << "' at offset " << start;
    return Value::make_number(v);
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace igc::obs::json
