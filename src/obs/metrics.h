// Process-wide metrics registry: named counters, gauges, and histograms
// shared by every subsystem (executor, arena, tuner, scheduler).
//
// Instruments are registered on first use and live for the process lifetime,
// so hot paths can cache a reference once and then touch a single relaxed
// atomic per update — no locks, no allocation, and no effect on wavefront
// determinism. reset() zeroes values but never invalidates references.
//
// This header is deliberately dependency-free (std only) so that low layers
// (tensor, tune) can record metrics without depending on graph/sim types.
//
// Conventions:
//   * counters are monotone event counts ("arena.acquires", "exec.copies");
//   * gauges record last-set or high-water values ("arena.high_water_bytes");
//   * histograms bucket int64 samples by power of two ("exec.node_us").
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace igc::obs {

class Counter {
 public:
  void add(int64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (high-water-mark semantics).
  void update_max(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed power-of-two-bucket histogram of non-negative int64 samples.
/// Bucket i counts samples with bit_width(value) == i (bucket 0: value 0).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void observe(int64_t v) {
    if (v < 0) v = 0;
    int b = 0;
    for (uint64_t u = static_cast<uint64_t>(v); u != 0; u >>= 1) ++b;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Point-in-time copy of every instrument's value, comparable with ==.
/// Deltas between snapshots taken around a run isolate that run's activity.
struct MetricsSnapshot {
  struct Hist {
    int64_t count = 0;
    int64_t sum = 0;
    std::vector<std::pair<int, int64_t>> buckets;  // non-empty buckets only
    bool operator==(const Hist&) const = default;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Hist> histograms;

  /// Counter and histogram deltas of `later` relative to this snapshot;
  /// gauges carry `later`'s value (deltas are meaningless for gauges).
  MetricsSnapshot delta_to(const MetricsSnapshot& later) const;
  bool operator==(const MetricsSnapshot&) const = default;

  /// Flat JSON object: {"counter.name": 1, ..., "hist.name": {...}}.
  std::string json() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& global();

  /// Returns the named instrument, creating it on first use. The reference
  /// stays valid for the registry's lifetime; hot paths should cache it.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  std::string snapshot_json() const { return snapshot().json(); }

  /// Zeroes every instrument (references stay valid). Test support.
  void reset();

 private:
  mutable std::mutex mu_;  // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace igc::obs
