// Process-wide metrics registry: named counters, gauges, and histograms
// shared by every subsystem (executor, arena, tuner, scheduler).
//
// Instruments are registered on first use and live for the process lifetime,
// so hot paths can cache a reference once and then touch a single relaxed
// atomic per update — no locks, no allocation, and no effect on wavefront
// determinism. reset() zeroes values but never invalidates references.
//
// This header is deliberately dependency-free (std only) so that low layers
// (tensor, tune) can record metrics without depending on graph/sim types.
//
// Conventions (the full catalog lives in DESIGN.md):
//   * counters are monotone event counts ("arena.acquires", "exec.copies");
//   * gauges record last-set or high-water values ("arena.high_water_bytes");
//   * histograms are log-bucketed latency/value distributions with
//     percentile queries ("run.latency_ms" — see obs/latency_histogram.h);
//   * names are dot-separated families with a unit suffix where one applies
//     (_ms, _us, _bytes, _pct; suffix-free names are plain counts).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/latency_histogram.h"

namespace igc::obs {

class Counter {
 public:
  void add(int64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Gauge {
 public:
  void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if larger (high-water-mark semantics).
  void update_max(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Registry histograms are log-bucketed latency histograms (HDR-style,
/// ~1.09% worst-case quantile error, mergeable across threads): observe()
/// takes a double, percentile(p) answers tail-latency queries.
using Histogram = LatencyHistogram;

/// Point-in-time copy of every instrument's value, comparable with ==.
/// Deltas between snapshots taken around a run isolate that run's activity.
struct MetricsSnapshot {
  struct Hist {
    int64_t count = 0;
    double sum = 0.0;
    LatencyHistogram::BucketList buckets;  // non-empty buckets only
    /// Quantile of the captured distribution (works on deltas too, since
    /// bucket subtraction preserves the log grid).
    double percentile(double p) const {
      return LatencyHistogram::percentile_of(buckets, count, p);
    }
    bool operator==(const Hist&) const = default;
  };
  std::map<std::string, int64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Hist> histograms;

  /// Counter and histogram deltas of `later` relative to this snapshot;
  /// gauges carry `later`'s value (deltas are meaningless for gauges).
  MetricsSnapshot delta_to(const MetricsSnapshot& later) const;
  bool operator==(const MetricsSnapshot&) const = default;

  /// Flat JSON object: {"counter.name": 1, ..., "hist.name": {...}}.
  std::string json() const;
};

class MetricsRegistry {
 public:
  /// The process-wide registry.
  static MetricsRegistry& global();

  /// Returns the named instrument, creating it on first use. The reference
  /// stays valid for the registry's lifetime; hot paths should cache it.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  std::string snapshot_json() const { return snapshot().json(); }

  /// Zeroes every instrument (references stay valid). Test support.
  void reset();

 private:
  mutable std::mutex mu_;  // guards the maps, not the instruments
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace igc::obs
