// Row-by-row comparison of two BENCH_*.json files — the perf-regression
// gate's library half (the bench_diff CLI is a thin wrapper).
//
// Rows are matched on their identity key — (bench, schema_version,
// platform, model, mode) plus backend / numerics / config when present —
// so a regenerated bench lines up with a committed baseline row for row.
// Duplicate keys within one file get an occurrence ordinal, keeping the
// match positional among duplicates.
//
// For each matched pair, every numeric field present in both rows gets a
// delta. A *watch* ("host_ms_per_run:10%") turns a delta into a gate:
// movement in the metric's bad direction beyond the threshold is a
// regression. Direction is inferred from the name (throughput/speedup/rate
// metrics are higher-is-better; times/bytes lower) unless the spec pins it
// with a leading '+' (higher is better) or '-' (lower is better).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace igc::obs::benchdiff {

struct Watch {
  std::string metric;
  double pct = 0.0;          // regression threshold, percent
  bool higher_is_better = false;
};

/// Parses "metric:pct%" (the '%' is optional; a '+'/'-' prefix pins the
/// direction). Returns false on malformed specs.
bool parse_watch(const std::string& spec, Watch* out);

/// Direction heuristic used when a spec carries no prefix.
bool infer_higher_is_better(const std::string& metric);

struct MetricDelta {
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  /// Signed relative change in percent, (candidate-baseline)/|baseline|.
  double change_pct = 0.0;
};

struct RowDelta {
  std::string key;
  std::vector<MetricDelta> metrics;  // every numeric field shared by both rows
};

struct Regression {
  std::string key;
  std::string metric;
  double baseline = 0.0;
  double candidate = 0.0;
  double change_pct = 0.0;    // movement in the bad direction, positive
  double threshold_pct = 0.0;
};

struct DiffResult {
  int baseline_rows = 0;
  int candidate_rows = 0;
  int matched = 0;
  std::vector<std::string> baseline_only;   // keys missing from candidate
  std::vector<std::string> candidate_only;  // keys missing from baseline
  std::vector<RowDelta> rows;               // matched rows, baseline order
  std::vector<Regression> regressions;      // watched metrics over threshold

  bool ok() const { return regressions.empty(); }
  /// Human-readable table: per-row watched deltas, unmatched keys, verdict.
  std::string report(const std::vector<Watch>& watches) const;
};

/// Diffs two JSONL documents (one bench row per line; blank lines skipped).
/// Raises igc::Error on malformed JSON.
DiffResult diff(const std::string& baseline_jsonl,
                const std::string& candidate_jsonl,
                const std::vector<Watch>& watches);

/// diff() over files; raises igc::Error when either is unreadable.
DiffResult diff_files(const std::string& baseline_path,
                      const std::string& candidate_path,
                      const std::vector<Watch>& watches);

}  // namespace igc::obs::benchdiff
