#include "obs/sampler.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "obs/json.h"

namespace igc::obs {
namespace {

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_int(std::string& out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

}  // namespace

TelemetrySampler::TelemetrySampler() : TelemetrySampler(Options{}) {}

TelemetrySampler::TelemetrySampler(Options opts) : opts_(std::move(opts)) {
  registry_ = opts_.registry != nullptr ? opts_.registry
                                        : &MetricsRegistry::global();
  if (opts_.interval_ms < 1) opts_.interval_ms = 1;
  if (opts_.capacity < 1) opts_.capacity = 1;
  if (!opts_.clock) {
    opts_.clock = [epoch = std::chrono::steady_clock::now()] {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now() - epoch)
          .count();
    };
  }
}

TelemetrySampler::~TelemetrySampler() { stop(); }

void TelemetrySampler::start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return;
    running_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = false;
  }
  sample_now();  // baseline sample at t=start
  thread_ = std::thread([this] { thread_main(); });
}

void TelemetrySampler::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    running_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

bool TelemetrySampler::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void TelemetrySampler::thread_main() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait_for(lock, std::chrono::milliseconds(opts_.interval_ms),
                        [this] { return stop_requested_; });
      if (stop_requested_) return;
    }
    sample_now();
  }
}

void TelemetrySampler::sample_now() {
  // The snapshot is taken outside the ring mutex (it takes the registry's
  // own lock), then appended as one unit — a reader can never observe a
  // half-written sample.
  TelemetrySample s;
  s.t_ms = opts_.clock();
  s.snapshot = registry_->snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(s));
  ++total_;
  while (ring_.size() > opts_.capacity) ring_.pop_front();
}

std::vector<TelemetrySample> TelemetrySampler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

int64_t TelemetrySampler::total_samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::string TelemetrySampler::series_json() const {
  const std::vector<TelemetrySample> samples = this->samples();
  int64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    total = total_;
  }

  std::string out = "{\"schema_version\": 1, \"interval_ms\": ";
  append_int(out, opts_.interval_ms);
  out += ", \"capacity\": ";
  append_int(out, static_cast<int64_t>(opts_.capacity));
  out += ", \"total_samples\": ";
  append_int(out, total);
  out += ", \"evicted_samples\": ";
  append_int(out, total - static_cast<int64_t>(samples.size()));
  out += ", \"samples\": [";

  const MetricsSnapshot empty;
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricsSnapshot& base =
        i == 0 ? empty : samples[i - 1].snapshot;
    const MetricsSnapshot d = base.delta_to(samples[i].snapshot);
    if (i != 0) out += ", ";
    out += "{\"t_ms\": ";
    append_int(out, samples[i].t_ms);
    out += ", \"base\": ";
    out += i == 0 ? "true" : "false";

    out += ", \"counters\": {";
    bool first = true;
    for (const auto& [name, v] : d.counters) {
      out += first ? "" : ", ";
      first = false;
      out += '"' + json::escape(name) + "\": ";
      append_int(out, v);
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto& [name, v] : d.gauges) {
      out += first ? "" : ", ";
      first = false;
      out += '"' + json::escape(name) + "\": ";
      append_int(out, v);
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const auto& [name, h] : d.histograms) {
      out += first ? "" : ", ";
      first = false;
      out += '"' + json::escape(name) + "\": {\"count\": ";
      append_int(out, h.count);
      out += ", \"sum\": ";
      append_num(out, h.sum);
      out += ", \"p50\": ";
      append_num(out, h.percentile(0.50));
      out += ", \"p95\": ";
      append_num(out, h.percentile(0.95));
      out += ", \"p99\": ";
      append_num(out, h.percentile(0.99));
      out += "}";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

}  // namespace igc::obs
