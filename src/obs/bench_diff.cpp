#include "obs/bench_diff.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/error.h"
#include "obs/json.h"

namespace igc::obs::benchdiff {
namespace {

/// Fields that identify a row across bench regenerations. Occurrence
/// ordinals are appended later for keys that still collide.
constexpr const char* kKeyFields[] = {"bench",  "schema_version", "platform",
                                      "model",  "mode",           "config",
                                      "backend", "numerics"};

std::string field_as_string(const json::Value& v) {
  switch (v.kind()) {
    case json::Value::Kind::kString:
      return v.as_string();
    case json::Value::Kind::kBool:
      return v.as_bool() ? "true" : "false";
    case json::Value::Kind::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.9g", v.as_number());
      return buf;
    }
    default:
      return {};
  }
}

struct Row {
  std::string key;
  std::map<std::string, double> metrics;  // every numeric non-key field
};

std::string row_key(const json::Value& obj) {
  std::string key;
  for (const char* f : kKeyFields) {
    if (!obj.has(f)) continue;
    if (!key.empty()) key += '|';
    key += std::string(f) + "=" + field_as_string(obj.at(f));
  }
  return key;
}

bool is_key_field(const std::string& name) {
  for (const char* f : kKeyFields) {
    if (name == f) return true;
  }
  return false;
}

/// Parses a JSONL document into rows, disambiguating duplicate keys with
/// an occurrence ordinal ("...#2") so matching stays positional.
std::vector<Row> parse_rows(const std::string& jsonl, const char* what) {
  std::vector<Row> rows;
  std::map<std::string, int> seen;
  std::istringstream in(jsonl);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    json::Value v;
    try {
      v = json::parse(line);
    } catch (const igc::Error& e) {
      throw igc::Error(std::string(what) + " line " + std::to_string(lineno) +
                       ": " + e.what());
    }
    if (!v.is_object()) {
      throw igc::Error(std::string(what) + " line " + std::to_string(lineno) +
                       ": expected a JSON object per line");
    }
    Row row;
    row.key = row_key(v);
    const int n = ++seen[row.key];
    if (n > 1) row.key += "#" + std::to_string(n);
    for (const auto& [name, field] : v.as_object()) {
      if (is_key_field(name) || !field.is_number()) continue;
      row.metrics[name] = field.as_number();
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

double relative_change_pct(double baseline, double candidate) {
  if (baseline == 0.0) return candidate == 0.0 ? 0.0 : HUGE_VAL;
  return (candidate - baseline) / std::fabs(baseline) * 100.0;
}

void append_num(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

bool infer_higher_is_better(const std::string& metric) {
  // Throughput/ratio metrics improve upward; times, byte footprints, and
  // everything unrecognized improve downward (the conservative default for
  // a latency-focused bench suite).
  static constexpr const char* kHigherBetter[] = {
      "runs_per_s", "per_s",   "speedup",    "gflops",  "gbps",
      "throughput", "ops_per", "hit_rate",   "goodput", "qps"};
  for (const char* token : kHigherBetter) {
    if (metric.find(token) != std::string::npos) return true;
  }
  return false;
}

bool parse_watch(const std::string& spec, Watch* out) {
  std::string s = spec;
  bool pinned = false, higher = false;
  if (!s.empty() && (s[0] == '+' || s[0] == '-')) {
    pinned = true;
    higher = s[0] == '+';
    s.erase(0, 1);
  }
  const size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size()) {
    return false;
  }
  std::string pct_str = s.substr(colon + 1);
  if (!pct_str.empty() && pct_str.back() == '%') pct_str.pop_back();
  char* end = nullptr;
  const double pct = std::strtod(pct_str.c_str(), &end);
  if (end == pct_str.c_str() || *end != '\0' || !(pct > 0.0) ||
      !std::isfinite(pct)) {
    return false;
  }
  out->metric = s.substr(0, colon);
  out->pct = pct;
  out->higher_is_better =
      pinned ? higher : infer_higher_is_better(out->metric);
  return true;
}

DiffResult diff(const std::string& baseline_jsonl,
                const std::string& candidate_jsonl,
                const std::vector<Watch>& watches) {
  const std::vector<Row> base = parse_rows(baseline_jsonl, "baseline");
  const std::vector<Row> cand = parse_rows(candidate_jsonl, "candidate");

  std::map<std::string, const Row*> cand_by_key;
  for (const Row& r : cand) cand_by_key[r.key] = &r;
  std::map<std::string, bool> matched_cand;

  DiffResult out;
  out.baseline_rows = static_cast<int>(base.size());
  out.candidate_rows = static_cast<int>(cand.size());

  for (const Row& b : base) {
    const auto it = cand_by_key.find(b.key);
    if (it == cand_by_key.end()) {
      out.baseline_only.push_back(b.key);
      continue;
    }
    matched_cand[b.key] = true;
    ++out.matched;
    const Row& c = *it->second;

    RowDelta rd;
    rd.key = b.key;
    for (const auto& [metric, bval] : b.metrics) {
      const auto cit = c.metrics.find(metric);
      if (cit == c.metrics.end()) continue;
      MetricDelta md;
      md.metric = metric;
      md.baseline = bval;
      md.candidate = cit->second;
      md.change_pct = relative_change_pct(bval, cit->second);
      rd.metrics.push_back(md);

      for (const Watch& w : watches) {
        if (w.metric != metric) continue;
        // Movement in the bad direction, as a positive percentage.
        const double bad_pct =
            w.higher_is_better ? -md.change_pct : md.change_pct;
        if (bad_pct > w.pct) {
          out.regressions.push_back({rd.key, metric, bval, cit->second,
                                     bad_pct, w.pct});
        }
      }
    }
    out.rows.push_back(std::move(rd));
  }
  for (const Row& c : cand) {
    if (matched_cand.count(c.key) == 0) out.candidate_only.push_back(c.key);
  }
  return out;
}

DiffResult diff_files(const std::string& baseline_path,
                      const std::string& candidate_path,
                      const std::vector<Watch>& watches) {
  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw igc::Error("cannot read " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  return diff(slurp(baseline_path), slurp(candidate_path), watches);
}

std::string DiffResult::report(const std::vector<Watch>& watches) const {
  std::string out;
  out += "bench_diff: " + std::to_string(baseline_rows) + " baseline row(s), " +
         std::to_string(candidate_rows) + " candidate row(s), " +
         std::to_string(matched) + " matched\n";

  auto watched = [&](const std::string& metric) {
    for (const Watch& w : watches) {
      if (w.metric == metric) return true;
    }
    return false;
  };
  for (const RowDelta& rd : rows) {
    for (const MetricDelta& md : rd.metrics) {
      if (!watches.empty() && !watched(md.metric)) continue;
      out += "  " + rd.key + "  " + md.metric + ": ";
      append_num(out, md.baseline);
      out += " -> ";
      append_num(out, md.candidate);
      out += " (";
      if (md.change_pct >= 0.0) out += '+';
      append_num(out, md.change_pct);
      out += "%)\n";
    }
  }
  for (const std::string& k : baseline_only) {
    out += "  baseline-only row (no candidate match): " + k + "\n";
  }
  for (const std::string& k : candidate_only) {
    out += "  candidate-only row (no baseline match): " + k + "\n";
  }
  if (regressions.empty()) {
    out += "OK: no watched metric regressed";
    if (!watches.empty()) {
      out += " (";
      for (size_t i = 0; i < watches.size(); ++i) {
        if (i > 0) out += ", ";
        out += watches[i].metric + ":";
        append_num(out, watches[i].pct);
        out += '%';
      }
      out += ")";
    }
    out += "\n";
  } else {
    out += "REGRESSION: " + std::to_string(regressions.size()) +
           " watched metric(s) over threshold\n";
    for (const Regression& r : regressions) {
      out += "  " + r.key + "  " + r.metric + ": ";
      append_num(out, r.baseline);
      out += " -> ";
      append_num(out, r.candidate);
      out += " (";
      append_num(out, r.change_pct);
      out += "% worse, threshold ";
      append_num(out, r.threshold_pct);
      out += "%)\n";
    }
  }
  return out;
}

}  // namespace igc::obs::benchdiff
