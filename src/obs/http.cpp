#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "obs/prom.h"
#include "obs/request_trace.h"
#include "obs/sampler.h"

namespace igc::obs {
namespace {

std::string status_line(int code) {
  switch (code) {
    case 200: return "HTTP/1.1 200 OK";
    case 404: return "HTTP/1.1 404 Not Found";
    case 405: return "HTTP/1.1 405 Method Not Allowed";
    case 503: return "HTTP/1.1 503 Service Unavailable";
    default: return "HTTP/1.1 400 Bad Request";
  }
}

std::string make_response(int code, const std::string& content_type,
                          const std::string& body) {
  std::string out = status_line(code);
  out += "\r\nContent-Type: " + content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing useful to do
    off += static_cast<size_t>(n);
  }
}

}  // namespace

MetricsHttpServer::MetricsHttpServer() : MetricsHttpServer(Options{}) {}

MetricsHttpServer::MetricsHttpServer(Options opts) : opts_(std::move(opts)) {
  registry_ = opts_.registry != nullptr ? opts_.registry
                                        : &MetricsRegistry::global();
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

bool MetricsHttpServer::start(std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running_.load(std::memory_order_acquire)) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + opts_.bind_address + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind(" + opts_.bind_address + ":" +
                std::to_string(opts_.port) + ")");
  }
  if (::listen(listen_fd_, 16) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void MetricsHttpServer::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void MetricsHttpServer::accept_loop() {
  // Poll with a short timeout so stop() is observed promptly without
  // platform-specific accept-interruption tricks.
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    handle_connection(conn);
    ::close(conn);
  }
}

void MetricsHttpServer::handle_connection(int fd) const {
  // Read until the end of the request headers (or a small cap — the
  // endpoints take no bodies).
  std::string req;
  char buf[2048];
  while (req.size() < 16 * 1024 && req.find("\r\n\r\n") == std::string::npos) {
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, /*timeout_ms=*/2000) <= 0) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION.
  const size_t eol = req.find("\r\n");
  const std::string line = eol == std::string::npos ? req : req.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  std::string method, path;
  if (sp1 != std::string::npos && sp2 != std::string::npos) {
    method = line.substr(0, sp1);
    path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const size_t q = path.find('?');
    if (q != std::string::npos) path.resize(q);
  }
  send_all(fd, respond(method, path));
}

std::string MetricsHttpServer::respond(const std::string& method,
                                       const std::string& path) const {
  if (method != "GET") {
    return make_response(405, "text/plain; charset=utf-8",
                         "only GET is supported\n");
  }
  if (path == "/healthz") {
    if (opts_.health) {
      bool healthy = false;
      const std::string body = opts_.health(&healthy);
      return make_response(healthy ? 200 : 503, "application/json",
                           body + "\n");
    }
    return make_response(200, "text/plain; charset=utf-8", "ok\n");
  }
  if (path == "/metrics") {
    return make_response(200, prom_content_type(),
                         to_prometheus(registry_->snapshot(),
                                       opts_.const_labels, opts_.exemplars));
  }
  if (path == "/snapshot.json") {
    std::string body = registry_->snapshot().json();
    if (opts_.exemplars != nullptr && !body.empty() && body.back() == '}') {
      // Splice the exemplar map in as one more top-level member. The base
      // document is a flat object, so inserting before the closing brace
      // keeps it valid (existing consumers key by name and are unaffected).
      body.pop_back();
      body += body.size() > 1 ? ", " : "";
      body += "\"exemplars\": " + opts_.exemplars->json() + "}";
    }
    return make_response(200, "application/json", body);
  }
  if (path == "/series.json" && opts_.sampler != nullptr) {
    return make_response(200, "application/json",
                         opts_.sampler->series_json());
  }
  if (opts_.flight_recorder != nullptr) {
    if (path == "/debug/requests") {
      return make_response(
          200, "application/json",
          request_summaries_json(opts_.flight_recorder->snapshot()));
    }
    const std::string prefix = "/debug/request/";
    if (path.rfind(prefix, 0) == 0) {
      const std::string id_text = path.substr(prefix.size());
      uint64_t id = 0;
      bool valid = !id_text.empty() && id_text.size() <= 20;
      for (char c : id_text) valid = valid && c >= '0' && c <= '9';
      if (valid) id = std::strtoull(id_text.c_str(), nullptr, 10);
      if (!valid) {
        return make_response(404, "text/plain; charset=utf-8",
                             "bad trace id\n");
      }
      const auto tl = opts_.flight_recorder->find(id);
      if (!tl.has_value()) {
        return make_response(404, "text/plain; charset=utf-8",
                             "trace id not retained\n");
      }
      return make_response(200, "application/json", tl->json());
    }
  }
  return make_response(404, "text/plain; charset=utf-8",
                       "unknown endpoint; try /metrics /healthz "
                       "/snapshot.json /series.json /debug/requests "
                       "/debug/request/<id>\n");
}

}  // namespace igc::obs
