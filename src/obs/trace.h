// Execution tracing for the heterogeneous executor.
//
// A TraceRecorder collects one TraceSpan per executed graph node: its
// simulated start/end on its device lane (from the wavefront LaneSchedule;
// in sequential mode the same schedule is synthesized, so both dispatch
// modes trace identically), the host wall-clock window in which the node was
// actually dispatched, its cost category, shapes/layout, bytes moved, and —
// for convolutions — the chosen schedule config.
//
// The recorder is populated *after* dispatch, from the executor's
// deterministic per-node merge: nothing on the concurrent hot path touches
// shared recorder state, so tracing cannot perturb wavefront determinism.
//
// Two exporters:
//   * chrome_trace_json() — the Chrome trace-event format (load the file in
//     chrome://tracing or https://ui.perfetto.dev): one track per simulated
//     lane (GPU queue / companion CPU / copy engine) plus one track per host
//     scheduler thread;
//   * report() — the paper's per-layer breakdown tables reproduced from the
//     trace: category rollup, per-lane utilization, and top-k ops.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace igc::obs {

/// Run-level context stamped into the export header.
struct TraceMeta {
  std::string model;
  std::string platform;
  std::string mode;  // "sequential" | "wavefront"
  bool arena = false;
  /// v2: spans carry merged KernelCounters; the Chrome export adds counter
  /// tracks (occupancy / achieved GFLOPS / achieved GB/s).
  int schema_version = 2;
};

/// One executed graph node.
struct TraceSpan {
  std::string name;  // stable node name
  std::string op;    // op kind ("conv2d", "box_nms", ...)
  sim::OpCategory category = sim::OpCategory::kOther;
  sim::Lane lane = sim::Lane::kGpu;
  /// Simulated lane-schedule window (ms since run start).
  double sim_start_ms = 0.0;
  double sim_end_ms = 0.0;
  /// Host wall-clock dispatch window (us since run start; 0/0 when the run
  /// did not capture host times).
  double host_start_us = 0.0;
  double host_end_us = 0.0;
  /// Opaque host-thread key (hashed std::thread::id); tracks are numbered
  /// per distinct key at export time.
  uint64_t host_thread = 0;
  std::string shape;     // output shape, e.g. "(1, 64, 56, 56)"
  int layout_block = 1;  // conv layout block (1 = NCHW)
  int64_t bytes = 0;     // bytes moved (DRAM + copy traffic)
  std::string schedule;  // chosen ScheduleConfig (convs on traced runs)
  /// Hardware counters merged over every charge the node issued (so
  /// counters.ms equals the span duration, and per-launch records sum to
  /// this node aggregate).
  sim::KernelCounters counters;
};

class TraceRecorder {
 public:
  /// Starts a new trace: stores the run metadata and drops prior spans.
  void begin(TraceMeta meta);

  /// Appends one span. Thread-safe, but the executor only calls it from the
  /// single-threaded post-run merge.
  void record(TraceSpan span);

  const TraceMeta& meta() const { return meta_; }
  const std::vector<TraceSpan>& spans() const { return spans_; }

  /// Serial time attributed to `c` (sum of span durations).
  double category_ms(sim::OpCategory c) const;
  /// Finish time of the last span on `lane` (0 when the lane is idle).
  double lane_end_ms(sim::Lane lane) const;
  /// Finish time of the last span across all lanes — the simulated
  /// wavefront critical path.
  double makespan_ms() const;

  /// Chrome trace-event JSON (the whole document, not one line per event).
  std::string chrome_trace_json() const;
  /// Writes chrome_trace_json() to `path`; returns false on I/O failure.
  bool save_chrome_trace(const std::string& path) const;

  /// Human-readable per-layer report: category rollup, lane end-times, and
  /// the top `top_k` ops by serial time.
  std::string report(int top_k = 12) const;

 private:
  mutable std::mutex mu_;
  TraceMeta meta_;
  std::vector<TraceSpan> spans_;
};

}  // namespace igc::obs
