// TelemetrySampler: periodic registry snapshots into a fixed-capacity
// time-series ring buffer — the "watch a long-running process" layer the
// one-shot snapshot JSON cannot provide.
//
// A background thread wakes every interval_ms, snapshots the registry (one
// consistent MetricsSnapshot object per tick — samples are never torn: the
// ring is only ever appended to under its mutex, and readers copy out under
// the same mutex), stamps it with a monotonic timestamp, and appends it to
// the ring. When the ring is full the oldest sample is evicted; the sampler
// keeps running forever at O(capacity) memory.
//
// Timestamps come from an injectable clock (Options::clock), so tests drive
// sample_now() with a scripted clock and get byte-deterministic series JSON.
// The default clock is std::chrono::steady_clock milliseconds since the
// sampler was constructed — monotonic by construction.
//
// Lifecycle: start() spawns the thread (idempotent), stop() joins it
// (idempotent; the destructor calls it). start/stop cycles are allowed.
// sample_now() is thread-safe and works with or without the thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace igc::obs {

struct TelemetrySample {
  int64_t t_ms = 0;          // monotonic timestamp from the sampler's clock
  MetricsSnapshot snapshot;  // absolute instrument values at t_ms
};

class TelemetrySampler {
 public:
  struct Options {
    /// Wall-clock period of the background thread.
    int interval_ms = 1000;
    /// Ring capacity; the newest `capacity` samples are retained.
    size_t capacity = 600;
    /// Monotonic millisecond clock. Defaults to steady_clock since
    /// construction; tests inject a scripted clock for determinism.
    std::function<int64_t()> clock;
    /// Registry to snapshot; defaults to the process-wide one.
    MetricsRegistry* registry = nullptr;
  };

  TelemetrySampler();
  explicit TelemetrySampler(Options opts);
  ~TelemetrySampler();

  TelemetrySampler(const TelemetrySampler&) = delete;
  TelemetrySampler& operator=(const TelemetrySampler&) = delete;

  /// Spawns the sampling thread; takes one sample immediately so the series
  /// always has a baseline. No-op when already running.
  void start();
  /// Stops and joins the thread. No-op when not running. Retained samples
  /// stay readable after stop().
  void stop();
  bool running() const;

  /// Takes one sample synchronously (also the thread's tick body).
  void sample_now();

  /// Copy of the retained ring, oldest first.
  std::vector<TelemetrySample> samples() const;
  /// Samples ever taken, including evicted ones.
  int64_t total_samples() const;
  int interval_ms() const { return opts_.interval_ms; }

  /// Time-series JSON: one entry per retained sample carrying monotonic
  /// t_ms, counter/histogram movement since the previous retained sample
  /// (the oldest entry is absolute and flagged "base": true), gauge values,
  /// and per-histogram p50/p95/p99 of that window's samples.
  std::string series_json() const;

 private:
  void thread_main();

  Options opts_;
  MetricsRegistry* registry_;

  mutable std::mutex mu_;  // guards ring_, total_, running_
  std::deque<TelemetrySample> ring_;
  int64_t total_ = 0;
  bool running_ = false;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace igc::obs
