#include "obs/roofline.h"

#include <algorithm>
#include <cstdio>

namespace igc::obs {

RooflineReport roofline_report(const TraceRecorder& rec,
                               const sim::DeviceSpec& gpu) {
  RooflineReport rep;
  rep.model = rec.meta().model;
  rep.platform = rec.meta().platform;
  rep.mode = rec.meta().mode;
  rep.peak_gflops = gpu.peak_gflops;
  rep.peak_gbps = gpu.dram_bandwidth_gbps;
  rep.ridge_intensity =
      rep.peak_gbps > 0.0 ? rep.peak_gflops / rep.peak_gbps : 0.0;

  double serial = 0.0;
  for (const TraceSpan& s : rec.spans()) {
    serial += s.sim_end_ms - s.sim_start_ms;
    if (s.counters.launches <= 0) continue;
    RooflineRow row;
    row.name = s.name;
    row.op = s.op;
    row.category = s.category;
    row.lane = s.lane;
    row.counters = s.counters;
    row.ms = s.counters.ms;
    if (s.counters.flops > 0) {
      const double ai = s.counters.arithmetic_intensity();
      row.roof_gflops = ai > 0.0
                            ? std::min(rep.peak_gflops, rep.peak_gbps * ai)
                            : rep.peak_gflops;
      row.pct_of_roof = row.roof_gflops > 0.0
                            ? s.counters.achieved_gflops() / row.roof_gflops
                            : 0.0;
    } else if (s.counters.dram_bytes > 0) {
      row.pct_of_roof = rep.peak_gbps > 0.0
                            ? s.counters.achieved_gbps() / rep.peak_gbps
                            : 0.0;
    }
    rep.bound_ms[static_cast<int>(s.counters.bound)] += row.ms;
    rep.rows.push_back(std::move(row));
  }
  rep.serial_ms = serial;
  for (RooflineRow& row : rep.rows) {
    row.pct_of_serial = serial > 0.0 ? 100.0 * row.ms / serial : 0.0;
  }
  std::sort(rep.rows.begin(), rep.rows.end(),
            [](const RooflineRow& a, const RooflineRow& b) {
              if (a.ms != b.ms) return a.ms > b.ms;
              return a.name < b.name;
            });
  int top = 0;
  for (int b = 1; b < sim::kNumBoundKinds; ++b) {
    if (rep.bound_ms[b] > rep.bound_ms[top]) top = b;
  }
  rep.top_bottleneck = static_cast<sim::BoundKind>(top);
  return rep;
}

std::string RooflineReport::str(int top_k) const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "=== roofline: %s on %s (%s) ===\n", model.c_str(),
                platform.c_str(), mode.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "device ceilings: %.1f GFLOPS | %.1f GB/s | ridge %.2f "
                "flops/byte\n",
                peak_gflops, peak_gbps, ridge_intensity);
  out += buf;

  out += "where the milliseconds go:";
  for (int b = 0; b < sim::kNumBoundKinds; ++b) {
    std::snprintf(
        buf, sizeof(buf), " %s %.3f ms (%.1f%%)%s",
        std::string(sim::bound_name(static_cast<sim::BoundKind>(b))).c_str(),
        bound_ms[b], serial_ms > 0.0 ? 100.0 * bound_ms[b] / serial_ms : 0.0,
        b + 1 < sim::kNumBoundKinds ? " |" : "\n");
    out += buf;
  }
  std::snprintf(
      buf, sizeof(buf), "top bottleneck: %s-bound work\n",
      std::string(sim::bound_name(top_bottleneck)).c_str());
  out += buf;

  const int k = std::min<int>(top_k, static_cast<int>(rows.size()));
  std::snprintf(buf, sizeof(buf), "top %d ops by serial ms:\n", k);
  out += buf;
  out += "          ms   %run  bound      %roof   GFLOPS     GB/s  "
         "flops/B   occ  op\n";
  for (int i = 0; i < k; ++i) {
    const RooflineRow& r = rows[static_cast<size_t>(i)];
    std::snprintf(buf, sizeof(buf),
                  "  %10.3f %5.1f%%  %-9s %5.1f%% %8.1f %8.1f %8.2f %5.2f  "
                  "%s (%s)\n",
                  r.ms, r.pct_of_serial,
                  std::string(sim::bound_name(r.counters.bound)).c_str(),
                  100.0 * r.pct_of_roof, r.counters.achieved_gflops(),
                  r.counters.achieved_gbps(),
                  r.counters.arithmetic_intensity(), r.counters.occupancy,
                  r.name.c_str(), r.op.c_str());
    out += buf;
  }
  return out;
}

std::string counters_table(const TraceRecorder& rec, int top_k) {
  std::vector<TraceSpan> spans = rec.spans();
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              if (a.counters.ms != b.counters.ms) {
                return a.counters.ms > b.counters.ms;
              }
              return a.name < b.name;
            });
  char buf[256];
  std::string out = "per-op hardware counters:\n";
  out += "          ms  launches        flops   DRAM bytes   occ  "
         "div.ms  ovh.ms  bound      op\n";
  const int k = std::min<int>(top_k, static_cast<int>(spans.size()));
  for (int i = 0; i < k; ++i) {
    const TraceSpan& s = spans[static_cast<size_t>(i)];
    if (s.counters.launches <= 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "  %10.3f %9lld %12lld %12lld %5.2f %7.3f %7.3f  %-9s %s\n",
                  s.counters.ms,
                  static_cast<long long>(s.counters.launches),
                  static_cast<long long>(s.counters.flops),
                  static_cast<long long>(s.counters.dram_bytes),
                  s.counters.occupancy, s.counters.divergence_ms,
                  s.counters.overhead_ms,
                  std::string(sim::bound_name(s.counters.bound)).c_str(),
                  s.name.c_str());
    out += buf;
  }
  return out;
}

}  // namespace igc::obs
