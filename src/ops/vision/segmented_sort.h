// Segmented argsort for integrated GPUs — Sec. 3.1.1, Fig. 2.
//
// The NMS operator sorts many small, variable-length segments (one per
// (batch, class)). Sorting each segment with its own thread causes severe
// load imbalance and branch divergence. The paper's algorithm:
//   1. flatten all segments into one array, remembering segment starts;
//   2. chop the flat array into equal-size blocks (load balancing);
//   3. block sort: each thread block sorts the *pieces* of segments that
//      intersect its block;
//   4. cooperative merge rounds: coop=2, 4, 8, ... double the sorted-run
//      width each round; only segments spanning the active interface
//      between two runs are merged.
// Every round is one kernel launch (a device-wide synchronization), so the
// number of global syncs is log2(#blocks) instead of per-element.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace igc::ops {

/// Segment boundaries over a flat array: segment s covers
/// [offsets[s], offsets[s+1]). offsets.front() == 0,
/// offsets.back() == values.size().
struct Segments {
  std::vector<int64_t> offsets;

  int64_t num_segments() const {
    return static_cast<int64_t>(offsets.size()) - 1;
  }
  void validate(int64_t n) const;
};

/// Reference: per-segment stable argsort (ascending). Returns global indices
/// grouped by segment: out[offsets[s]..offsets[s+1]) are the positions of
/// segment s's elements in ascending value order.
std::vector<int32_t> segmented_argsort_reference(
    const std::vector<float>& values, const Segments& segs, bool descending = false);

/// The paper's optimized segmented sort (Fig. 2), executed on the simulator.
/// `block_size` 0 chooses a size that fills the device.
std::vector<int32_t> segmented_argsort_gpu(sim::GpuSimulator& gpu,
                                           const std::vector<float>& values,
                                           const Segments& segs,
                                           bool descending = false,
                                           int64_t block_size = 0);

/// Naive GPU mapping: one work item sorts one whole segment. Functionally
/// identical; the simulated clock pays for the load imbalance (latency is
/// set by the longest segment) and the poor occupancy. This is what runs in
/// the "Before" column of Table 4.
std::vector<int32_t> segmented_argsort_gpu_naive(sim::GpuSimulator& gpu,
                                                 const std::vector<float>& values,
                                                 const Segments& segs,
                                                 bool descending = false);

}  // namespace igc::ops
