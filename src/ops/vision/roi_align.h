// ROIAlign — listed in Sec. 3.1.1 among the vision-specific operators that
// vendor libraries either skip or run poorly on integrated GPUs. Bilinear
// sampling over regions of interest, as introduced by Mask R-CNN.
#pragma once

#include "sim/simulator.h"
#include "tensor/tensor.h"

namespace igc::ops {

struct RoiAlignParams {
  int64_t pooled_h = 7;
  int64_t pooled_w = 7;
  /// Sampling points per output bin per axis (<=0: adaptive ceil(roi/bin)).
  int64_t sampling_ratio = 2;
  /// Scale from ROI coordinates to feature-map coordinates.
  float spatial_scale = 1.0f;
};

/// features: (B, C, H, W); rois: (R, 5) rows [batch_idx, x1, y1, x2, y2] in
/// un-scaled coordinates. Returns (R, C, pooled_h, pooled_w).
Tensor roi_align_reference(const Tensor& features, const Tensor& rois,
                           const RoiAlignParams& p);

/// GPU mapping: one work item per output element; all bins sample the same
/// number of points, so lanes never diverge.
Tensor roi_align_gpu(sim::GpuSimulator& gpu, const Tensor& features,
                     const Tensor& rois, const RoiAlignParams& p);

}  // namespace igc::ops
