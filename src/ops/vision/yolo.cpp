#include "ops/vision/yolo.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace igc::ops {
namespace {

float sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

Tensor yolo_decode_reference(const Tensor& head, const YoloDecodeParams& p) {
  IGC_CHECK_EQ(head.shape().ndim(), 4);
  const int64_t bsz = head.shape()[0];
  const int64_t a = static_cast<int64_t>(p.anchors.size());
  IGC_CHECK_GT(a, 0);
  const int64_t per_anchor = 5 + p.num_classes;
  IGC_CHECK_EQ(head.shape()[1], a * per_anchor);
  const int64_t gh = head.shape()[2];
  const int64_t gw = head.shape()[3];
  const int64_t n = gh * gw * a;

  Tensor out = Tensor::full(Shape{bsz, n, 6}, -1.0f);
  const float* in = head.data_f32();
  float* o = out.data_f32();
  const float inv_input = 1.0f / static_cast<float>(p.input_size);

  for (int64_t b = 0; b < bsz; ++b) {
    for (int64_t ai = 0; ai < a; ++ai) {
      for (int64_t gy = 0; gy < gh; ++gy) {
        for (int64_t gx = 0; gx < gw; ++gx) {
          auto at = [&](int64_t ch) {
            return in[((b * a * per_anchor + ai * per_anchor + ch) * gh + gy) * gw +
                      gx];
          };
          const float obj = sigmoid(at(4));
          // Best class.
          int64_t best_c = 0;
          float best = sigmoid(at(5));
          for (int64_t c = 1; c < p.num_classes; ++c) {
            const float v = sigmoid(at(5 + c));
            if (v > best) {
              best = v;
              best_c = c;
            }
          }
          const float score = obj * best;
          const int64_t row_idx = (gy * gw + gx) * a + ai;
          float* row = o + (b * n + row_idx) * 6;
          if (score < p.conf_thresh) continue;
          // Box decode: sigmoid offsets within the cell, exp-scaled anchors.
          const float cx = (static_cast<float>(gx) + sigmoid(at(0))) /
                           static_cast<float>(gw);
          const float cy = (static_cast<float>(gy) + sigmoid(at(1))) /
                           static_cast<float>(gh);
          const float bw = p.anchors[static_cast<size_t>(ai)].first *
                           std::exp(at(2)) * inv_input * 0.5f;
          const float bh = p.anchors[static_cast<size_t>(ai)].second *
                           std::exp(at(3)) * inv_input * 0.5f;
          row[0] = static_cast<float>(best_c);
          row[1] = score;
          row[2] = cx - bw;
          row[3] = cy - bh;
          row[4] = cx + bw;
          row[5] = cy + bh;
        }
      }
    }
  }
  return out;
}

Tensor yolo_decode_gpu(sim::GpuSimulator& gpu, const Tensor& head,
                       const YoloDecodeParams& p) {
  Tensor out = yolo_decode_reference(head, p);
  const int64_t cells = out.shape()[0] * out.shape()[1];
  gpu.launch_elementwise("yolo_decode", cells, [](int64_t) {},
                         /*flops_per_elem=*/6 * (5 + p.num_classes) + 30,
                         /*bytes_per_elem=*/4 * (5 + p.num_classes));
  return out;
}

}  // namespace igc::ops
