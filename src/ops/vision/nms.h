// box_nms and the SSD MultiboxPrior / MultiboxDetection operators
// (Sec. 3.1.1 "Other Vision-specific Operators").
//
// The GPU box_nms composes the other two primitives of Sec. 3.1:
//   1. per-batch *segmented argsort* of scores (Fig. 2 pipeline),
//   2. a suppression kernel whose innermost loop is aligned with threads
//      (one work-group per batch; lanes test IoU against the current pivot),
//   3. *prefix-sum* compaction of surviving boxes (Fig. 3 pipeline).
// All outputs are initialized to invalid (-1) up front, which removes the
// divergent "write if kept else mark" branch the paper calls out.
//
// Box encoding follows MXNet's box_nms: each box is a 6-vector
// [class_id, score, x1, y1, x2, y2]; class_id < 0 marks an invalid entry.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "tensor/tensor.h"

namespace igc::ops {

struct NmsParams {
  float iou_threshold = 0.5f;
  /// Entries with score < valid_thresh are dropped before sorting.
  float valid_thresh = 0.01f;
  /// Consider only the top-k entries by score (-1: all).
  int64_t topk = -1;
  /// Suppress across classes when true; only same-class otherwise.
  bool force_suppress = false;
};

/// Intersection-over-union of two corner-format boxes.
float box_iou(const float* a, const float* b);

/// Reference NMS. input: (B, N, 6). Returns (B, N, 6) with surviving boxes
/// first (in descending score order) and all other rows set to -1.
Tensor box_nms_reference(const Tensor& input, const NmsParams& p);

/// Same, additionally reporting the number of IoU evaluations performed
/// (used to charge the CPU-fallback cost model with the true work).
Tensor box_nms_reference_counted(const Tensor& input, const NmsParams& p,
                                 int64_t* iou_evals);

/// GPU NMS on the simulator; numerically identical to the reference.
Tensor box_nms_gpu(sim::GpuSimulator& gpu, const Tensor& input,
                   const NmsParams& p);

/// Unoptimized GPU mapping (Table 4 "Before"): naive per-segment sort and a
/// one-thread-per-batch suppression loop.
Tensor box_nms_gpu_naive(sim::GpuSimulator& gpu, const Tensor& input,
                         const NmsParams& p);

// ---- SSD anchors & detection decode ------------------------------------

struct MultiboxPriorParams {
  int64_t feature_h = 1;
  int64_t feature_w = 1;
  std::vector<float> sizes = {1.0f};
  std::vector<float> ratios = {1.0f};
};

/// Anchor boxes for one feature map: (H*W*A, 4) corner format, A =
/// sizes.size() + ratios.size() - 1 (the GluonCV/MXNet convention).
Tensor multibox_prior_reference(const MultiboxPriorParams& p);

struct MultiboxDetectionParams {
  NmsParams nms;
  /// Center/size decode variances (SSD convention).
  float variances[4] = {0.1f, 0.1f, 0.2f, 0.2f};
};

/// Decode only: produces the (B, N, 6) candidate tensor (best class, score,
/// decoded box per anchor) without NMS. Entries below valid_thresh stay
/// invalid.
Tensor multibox_decode_reference(const Tensor& cls_prob, const Tensor& loc_pred,
                                 const Tensor& anchors,
                                 const MultiboxDetectionParams& p);

/// Decodes SSD head outputs into detections and applies NMS.
///   cls_prob: (B, num_classes + 1, N) with class 0 = background,
///   loc_pred: (B, N * 4),
///   anchors:  (N, 4).
/// Returns (B, N, 6) in box_nms layout.
Tensor multibox_detection_reference(const Tensor& cls_prob,
                                    const Tensor& loc_pred,
                                    const Tensor& anchors,
                                    const MultiboxDetectionParams& p);

/// Same, but decode runs as a simulator kernel and NMS uses box_nms_gpu.
Tensor multibox_detection_gpu(sim::GpuSimulator& gpu, const Tensor& cls_prob,
                              const Tensor& loc_pred, const Tensor& anchors,
                              const MultiboxDetectionParams& p);

}  // namespace igc::ops
