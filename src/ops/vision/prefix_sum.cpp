#include "ops/vision/prefix_sum.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace igc::ops {

std::vector<float> prefix_sum_reference(const std::vector<float>& input) {
  std::vector<float> out(input.size());
  float acc = 0.0f;
  for (size_t i = 0; i < input.size(); ++i) {
    acc += input[i];
    out[i] = acc;
  }
  return out;
}

std::vector<float> prefix_sum_gpu(sim::GpuSimulator& gpu,
                                  const std::vector<float>& input,
                                  int processors) {
  const int64_t n = static_cast<int64_t>(input.size());
  if (n == 0) return {};
  if (processors <= 0) {
    processors = static_cast<int>(
        std::min<int64_t>(gpu.device().total_hw_threads(), n));
  }
  const int64_t p = std::max<int64_t>(1, std::min<int64_t>(processors, n));
  const int64_t chunk = (n + p - 1) / p;

  std::vector<float> out(input.size());
  std::vector<float> partials(static_cast<size_t>(p), 0.0f);

  // Stage 1: up-sweep. Each processor scans its chunk sequentially in
  // registers; the chunk total lands in `partials`.
  {
    sim::KernelLaunch cost;
    cost.name = "scan_upsweep";
    cost.flops = n;
    cost.dram_read_bytes = 4 * n;
    cost.dram_write_bytes = 4 * (n + p);
    gpu.launch(
        p, 1,
        [&](const sim::WorkItem& item) {
          const int64_t lo = item.group_id * chunk;
          const int64_t hi = std::min<int64_t>(n, lo + chunk);
          float acc = 0.0f;
          for (int64_t i = lo; i < hi; ++i) {
            acc += input[static_cast<size_t>(i)];
            out[static_cast<size_t>(i)] = acc;
          }
          if (lo < hi) partials[static_cast<size_t>(item.group_id)] = acc;
        },
        std::move(cost));
  }

  // Stage 2: Hillis-Steele scan over the p partials. p is at most the
  // device thread count, so one cooperative group covers it — log2(p)
  // passes with only work-group barriers, no global synchronization.
  {
    const int passes =
        p > 1 ? static_cast<int>(std::ceil(std::log2(static_cast<double>(p)))) : 0;
    sim::KernelLaunch cost;
    cost.name = "scan_partials";
    cost.flops = p * std::max(passes, 1);
    cost.dram_read_bytes = 4 * p;
    cost.dram_write_bytes = 4 * p;
    // Functionally: exclusive scan of partials, done as the classic
    // pass-doubling loop to mirror the device algorithm (Fig. 3 "Scan").
    gpu.launch(
        1, 1,
        [&](const sim::WorkItem&) {
          std::vector<float> cur(partials);
          for (int64_t d = 1; d < p; d *= 2) {
            std::vector<float> next(cur);
            for (int64_t i = 0; i < p; ++i) {
              if (i >= d) {
                next[static_cast<size_t>(i)] =
                    cur[static_cast<size_t>(i)] + cur[static_cast<size_t>(i - d)];
              }
            }
            cur.swap(next);
          }
          // Convert inclusive scan of totals into per-chunk offsets.
          for (int64_t i = p - 1; i >= 1; --i) {
            partials[static_cast<size_t>(i)] = cur[static_cast<size_t>(i - 1)];
          }
          if (p > 0) partials[0] = 0.0f;
        },
        std::move(cost));
  }

  // Stage 3: down-sweep. Each processor adds its offset, in parallel.
  {
    sim::KernelLaunch cost;
    cost.name = "scan_downsweep";
    cost.flops = n;
    cost.dram_read_bytes = 4 * (n + p);
    cost.dram_write_bytes = 4 * n;
    gpu.launch(
        p, 1,
        [&](const sim::WorkItem& item) {
          const int64_t lo = item.group_id * chunk;
          const int64_t hi = std::min<int64_t>(n, lo + chunk);
          const float off = partials[static_cast<size_t>(item.group_id)];
          for (int64_t i = lo; i < hi; ++i) {
            out[static_cast<size_t>(i)] += off;
          }
        },
        std::move(cost));
  }
  return out;
}

std::vector<float> prefix_sum_gpu_naive(sim::GpuSimulator& gpu,
                                        const std::vector<float>& input) {
  const int64_t n = static_cast<int64_t>(input.size());
  if (n == 0) return {};
  std::vector<float> cur(input);
  std::vector<float> next(input.size());
  // One kernel launch per pass: every pass reads and writes the whole array
  // and requires a device-wide barrier before the next.
  for (int64_t d = 1; d < n; d *= 2) {
    sim::KernelLaunch cost;
    cost.name = "scan_naive_pass";
    cost.flops = n;
    cost.dram_read_bytes = 8 * n;
    cost.dram_write_bytes = 4 * n;
    cost.num_global_syncs = 1;
    gpu.launch(
        (n + 63) / 64, 64,
        [&](const sim::WorkItem& item) {
          const int64_t i = item.global_id();
          if (i >= n) return;
          next[static_cast<size_t>(i)] =
              i >= d ? cur[static_cast<size_t>(i)] + cur[static_cast<size_t>(i - d)]
                     : cur[static_cast<size_t>(i)];
        },
        std::move(cost));
    cur.swap(next);
  }
  return cur;
}

}  // namespace igc::ops
