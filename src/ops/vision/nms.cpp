#include "ops/vision/nms.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "core/error.h"
#include "ops/vision/prefix_sum.h"
#include "ops/vision/segmented_sort.h"

namespace igc::ops {
namespace {

constexpr int kBoxLen = 6;  // [class_id, score, x1, y1, x2, y2]

/// Shared greedy suppression over one batch given score-descending order.
/// Returns the kept source rows (already ordered by descending score) and
/// reports how many IoU evaluations were performed (for the cost model).
std::vector<int64_t> suppress_batch(const float* batch, int64_t n,
                                    const std::vector<int32_t>& order,
                                    const NmsParams& p, int64_t* iou_evals) {
  std::vector<int64_t> kept;
  for (int64_t oi = 0; oi < n; ++oi) {
    const int64_t i = order[static_cast<size_t>(oi)];
    const float* bi = batch + i * kBoxLen;
    if (bi[0] < 0.0f || bi[1] < p.valid_thresh) continue;
    if (p.topk >= 0 && oi >= p.topk) break;
    bool suppressed = false;
    for (int64_t k : kept) {
      const float* bk = batch + k * kBoxLen;
      if (!p.force_suppress && bk[0] != bi[0]) continue;
      ++*iou_evals;
      if (box_iou(bk + 2, bi + 2) > p.iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(i);
  }
  return kept;
}

/// Writes the kept rows to the (all-invalid) output of one batch.
void write_kept(const float* batch, const std::vector<int64_t>& kept,
                const std::vector<int64_t>& positions, float* out_batch) {
  for (size_t j = 0; j < kept.size(); ++j) {
    const float* src = batch + kept[j] * kBoxLen;
    float* dst = out_batch + positions[j] * kBoxLen;
    std::copy(src, src + kBoxLen, dst);
  }
}

}  // namespace

float box_iou(const float* a, const float* b) {
  const float ix1 = std::max(a[0], b[0]);
  const float iy1 = std::max(a[1], b[1]);
  const float ix2 = std::min(a[2], b[2]);
  const float iy2 = std::min(a[3], b[3]);
  const float iw = std::max(0.0f, ix2 - ix1);
  const float ih = std::max(0.0f, iy2 - iy1);
  const float inter = iw * ih;
  const float area_a = std::max(0.0f, a[2] - a[0]) * std::max(0.0f, a[3] - a[1]);
  const float area_b = std::max(0.0f, b[2] - b[0]) * std::max(0.0f, b[3] - b[1]);
  const float uni = area_a + area_b - inter;
  return uni <= 0.0f ? 0.0f : inter / uni;
}

Tensor box_nms_reference(const Tensor& input, const NmsParams& p) {
  int64_t unused = 0;
  return box_nms_reference_counted(input, p, &unused);
}

Tensor box_nms_reference_counted(const Tensor& input, const NmsParams& p,
                                 int64_t* iou_evals) {
  IGC_CHECK_EQ(input.shape().ndim(), 3);
  IGC_CHECK_EQ(input.shape()[2], kBoxLen);
  *iou_evals = 0;
  const int64_t bsz = input.shape()[0];
  const int64_t n = input.shape()[1];
  Tensor out = Tensor::full(input.shape(), -1.0f);
  const float* in = input.data_f32();
  float* o = out.data_f32();
  for (int64_t b = 0; b < bsz; ++b) {
    const float* batch = in + b * n * kBoxLen;
    // Descending stable argsort by score.
    std::vector<int32_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int32_t x, int32_t y) {
      return batch[x * kBoxLen + 1] > batch[y * kBoxLen + 1];
    });
    int64_t evals = 0;
    const std::vector<int64_t> kept = suppress_batch(batch, n, order, p, &evals);
    *iou_evals += evals;
    std::vector<int64_t> positions(kept.size());
    std::iota(positions.begin(), positions.end(), 0);
    write_kept(batch, kept, positions, o + b * n * kBoxLen);
  }
  return out;
}

Tensor box_nms_gpu(sim::GpuSimulator& gpu, const Tensor& input,
                   const NmsParams& p) {
  IGC_CHECK_EQ(input.shape().ndim(), 3);
  IGC_CHECK_EQ(input.shape()[2], kBoxLen);
  const int64_t bsz = input.shape()[0];
  const int64_t n = input.shape()[1];
  const float* in = input.data_f32();

  // Initialize every output row to invalid up front (one coalesced fill, no
  // divergent branches later).
  Tensor out = Tensor::full(input.shape(), -1.0f);
  gpu.launch_elementwise("nms_init_invalid", input.numel(),
                         [](int64_t) {}, 0, 0);

  // Stage 1: per-batch segmented argsort of scores (descending), using the
  // Fig. 2 pipeline.
  std::vector<float> scores(static_cast<size_t>(bsz * n));
  for (int64_t i = 0; i < bsz * n; ++i) {
    scores[static_cast<size_t>(i)] = in[i * kBoxLen + 1];
  }
  Segments segs;
  segs.offsets.resize(static_cast<size_t>(bsz) + 1);
  for (int64_t b = 0; b <= bsz; ++b) segs.offsets[static_cast<size_t>(b)] = b * n;
  const std::vector<int32_t> sorted =
      segmented_argsort_gpu(gpu, scores, segs, /*descending=*/true);

  // Stage 2: suppression. One work-group per batch; within a group the
  // pivot loop is sequential while the IoU tests across candidates map onto
  // the SIMD lanes. Cost is charged from the exact evaluation count.
  float* o = out.data_f32();
  int64_t total_evals = 0;
  std::vector<std::vector<int64_t>> all_kept(static_cast<size_t>(bsz));
  for (int64_t b = 0; b < bsz; ++b) {
    const float* batch = in + b * n * kBoxLen;
    std::vector<int32_t> order(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      order[static_cast<size_t>(i)] =
          sorted[static_cast<size_t>(b * n + i)] - static_cast<int32_t>(b * n);
    }
    int64_t evals = 0;
    all_kept[static_cast<size_t>(b)] = suppress_batch(batch, n, order, p, &evals);
    total_evals += evals;
  }
  {
    sim::KernelLaunch cost;
    cost.name = "nms_suppress";
    cost.flops = 16 * std::max<int64_t>(total_evals, 1);
    cost.dram_read_bytes = 4 * kBoxLen * n * bsz;
    cost.dram_write_bytes = 4 * n * bsz;
    cost.work_items = bsz * std::max<int64_t>(gpu.device().simd_width, 1);
    cost.work_group_size = gpu.device().simd_width;
    cost.compute_efficiency = 0.35;  // lanes share the pivot, minor divergence
    cost.num_global_syncs = 1;
    gpu.clock().charge(gpu.device(), cost);
  }

  // Stage 3: prefix-sum compaction (Fig. 3 pipeline) computes each kept
  // box's output slot; the scatter then runs with no divergence.
  std::vector<float> keep_flags(static_cast<size_t>(bsz * n), 0.0f);
  for (int64_t b = 0; b < bsz; ++b) {
    for (size_t j = 0; j < all_kept[static_cast<size_t>(b)].size(); ++j) {
      // Flag the sorted position of each kept box.
      keep_flags[static_cast<size_t>(b * n) + j] = 1.0f;
    }
  }
  (void)prefix_sum_gpu(gpu, keep_flags);
  for (int64_t b = 0; b < bsz; ++b) {
    const std::vector<int64_t>& kept = all_kept[static_cast<size_t>(b)];
    std::vector<int64_t> positions(kept.size());
    std::iota(positions.begin(), positions.end(), 0);
    write_kept(in + b * n * kBoxLen, kept, positions, o + b * n * kBoxLen);
  }
  gpu.launch_elementwise("nms_scatter", std::max<int64_t>(bsz * n, 1),
                         [](int64_t) {}, 1, 8);
  return out;
}

Tensor box_nms_gpu_naive(sim::GpuSimulator& gpu, const Tensor& input,
                         const NmsParams& p) {
  IGC_CHECK_EQ(input.shape().ndim(), 3);
  const int64_t bsz = input.shape()[0];
  const int64_t n = input.shape()[1];
  const float* in = input.data_f32();
  Tensor out = Tensor::full(input.shape(), -1.0f);
  float* o = out.data_f32();

  // Naive sort: one thread per batch segment (massive load imbalance).
  std::vector<float> scores(static_cast<size_t>(bsz * n));
  for (int64_t i = 0; i < bsz * n; ++i) {
    scores[static_cast<size_t>(i)] = in[i * kBoxLen + 1];
  }
  Segments segs;
  segs.offsets.resize(static_cast<size_t>(bsz) + 1);
  for (int64_t b = 0; b <= bsz; ++b) segs.offsets[static_cast<size_t>(b)] = b * n;
  const std::vector<int32_t> sorted =
      segmented_argsort_gpu_naive(gpu, scores, segs, /*descending=*/true);

  // Naive suppression + compaction: one thread per batch does everything
  // sequentially, with divergent branches on every candidate. Latency is
  // the slowest batch's serial work at the single-lane rate.
  int64_t max_evals = 0;
  int64_t max_scan = 0;
  for (int64_t b = 0; b < bsz; ++b) {
    const float* batch = in + b * n * kBoxLen;
    std::vector<int32_t> order(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      order[static_cast<size_t>(i)] =
          sorted[static_cast<size_t>(b * n + i)] - static_cast<int32_t>(b * n);
    }
    int64_t evals = 0;
    const std::vector<int64_t> kept = suppress_batch(batch, n, order, p, &evals);
    // The unoptimized kernel has no top-k short-circuit: it suppresses every
    // candidate and only then truncates, so the charged work is the full
    // no-topk suppression (output is identical).
    if (p.topk >= 0) {
      NmsParams no_topk = p;
      no_topk.topk = -1;
      evals = 0;
      (void)suppress_batch(batch, n, order, no_topk, &evals);
    }
    max_evals = std::max(max_evals, evals);
    max_scan = std::max(max_scan, n);
    std::vector<int64_t> positions(kept.size());
    std::iota(positions.begin(), positions.end(), 0);
    write_kept(batch, kept, positions, o + b * n * kBoxLen);
  }
  // The unoptimized kernel additionally loops classes in an outer pass and
  // rescans the whole box list per class (class-aware suppression without
  // the segmented layout), so the serial work also scales with the number
  // of distinct classes present. Count them from the input.
  std::set<int> classes;
  for (int64_t i = 0; i < bsz * n; ++i) {
    const float c = in[i * kBoxLen];
    if (c >= 0.0f) classes.insert(static_cast<int>(c));
  }
  const double class_passes = static_cast<double>(std::max<size_t>(classes.size(), 1));

  // 16 scalar ops per IoU test, ~2 per box rescanned per class pass.
  const double serial_flops = 16.0 * static_cast<double>(max_evals) +
                              2.0 * class_passes * static_cast<double>(max_scan);
  const double ms =
      serial_flops / (gpu.device().serial_lane_mflops * 1e6) * 1e3 +
      gpu.device().kernel_launch_us * 1e-3;
  gpu.clock().charge_fixed(ms, "nms_naive_suppress");
  return out;
}

Tensor multibox_prior_reference(const MultiboxPriorParams& p) {
  IGC_CHECK(!p.sizes.empty());
  IGC_CHECK(!p.ratios.empty());
  const int64_t anchors_per_cell =
      static_cast<int64_t>(p.sizes.size() + p.ratios.size()) - 1;
  Tensor out(Shape{p.feature_h * p.feature_w * anchors_per_cell, 4},
             DType::kFloat32);
  float* o = out.data_f32();
  int64_t row = 0;
  for (int64_t y = 0; y < p.feature_h; ++y) {
    const float cy = (static_cast<float>(y) + 0.5f) / static_cast<float>(p.feature_h);
    for (int64_t x = 0; x < p.feature_w; ++x) {
      const float cx = (static_cast<float>(x) + 0.5f) / static_cast<float>(p.feature_w);
      auto emit = [&](float size, float ratio) {
        const float sr = std::sqrt(ratio);
        const float w = size * sr / 2.0f;
        const float h = size / sr / 2.0f;
        o[row * 4 + 0] = cx - w;
        o[row * 4 + 1] = cy - h;
        o[row * 4 + 2] = cx + w;
        o[row * 4 + 3] = cy + h;
        ++row;
      };
      // MXNet convention: (size_i, ratio_0) for all sizes, then
      // (size_0, ratio_j) for j >= 1.
      for (float s : p.sizes) emit(s, p.ratios[0]);
      for (size_t j = 1; j < p.ratios.size(); ++j) emit(p.sizes[0], p.ratios[j]);
    }
  }
  IGC_CHECK_EQ(row, out.shape()[0]);
  return out;
}

namespace {

/// Decodes one anchor's localization prediction into a corner-format box.
void decode_box(const float* loc, const float* anchor, const float* variances,
                float* box_out) {
  const float aw = anchor[2] - anchor[0];
  const float ah = anchor[3] - anchor[1];
  const float acx = (anchor[0] + anchor[2]) * 0.5f;
  const float acy = (anchor[1] + anchor[3]) * 0.5f;
  const float pcx = loc[0] * variances[0] * aw + acx;
  const float pcy = loc[1] * variances[1] * ah + acy;
  const float pw = std::exp(loc[2] * variances[2]) * aw * 0.5f;
  const float ph = std::exp(loc[3] * variances[3]) * ah * 0.5f;
  box_out[0] = pcx - pw;
  box_out[1] = pcy - ph;
  box_out[2] = pcx + pw;
  box_out[3] = pcy + ph;
}

/// Shared decode: produces the (B, N, 6) candidate tensor before NMS.
Tensor decode_detections(const Tensor& cls_prob, const Tensor& loc_pred,
                         const Tensor& anchors,
                         const MultiboxDetectionParams& p) {
  IGC_CHECK_EQ(cls_prob.shape().ndim(), 3);
  const int64_t bsz = cls_prob.shape()[0];
  const int64_t num_classes = cls_prob.shape()[1];  // includes background 0
  const int64_t n = cls_prob.shape()[2];
  IGC_CHECK(anchors.shape() == Shape({n, 4}));
  IGC_CHECK(loc_pred.shape() == Shape({bsz, n * 4}));
  IGC_CHECK_GE(num_classes, 2);

  Tensor out = Tensor::full(Shape{bsz, n, kBoxLen}, -1.0f);
  const float* cp = cls_prob.data_f32();
  const float* lp = loc_pred.data_f32();
  const float* an = anchors.data_f32();
  float* o = out.data_f32();
  for (int64_t b = 0; b < bsz; ++b) {
    for (int64_t i = 0; i < n; ++i) {
      // Best non-background class.
      int64_t best_c = 1;
      float best = cp[(b * num_classes + 1) * n + i];
      for (int64_t c = 2; c < num_classes; ++c) {
        const float v = cp[(b * num_classes + c) * n + i];
        if (v > best) {
          best = v;
          best_c = c;
        }
      }
      float* row = o + (b * n + i) * kBoxLen;
      if (best < p.nms.valid_thresh) continue;  // stays invalid
      row[0] = static_cast<float>(best_c - 1);
      row[1] = best;
      decode_box(lp + (b * n + i) * 4, an + i * 4, p.variances, row + 2);
    }
  }
  return out;
}

}  // namespace

Tensor multibox_decode_reference(const Tensor& cls_prob, const Tensor& loc_pred,
                                 const Tensor& anchors,
                                 const MultiboxDetectionParams& p) {
  return decode_detections(cls_prob, loc_pred, anchors, p);
}

Tensor multibox_detection_reference(const Tensor& cls_prob,
                                    const Tensor& loc_pred,
                                    const Tensor& anchors,
                                    const MultiboxDetectionParams& p) {
  const Tensor decoded = decode_detections(cls_prob, loc_pred, anchors, p);
  return box_nms_reference(decoded, p.nms);
}

Tensor multibox_detection_gpu(sim::GpuSimulator& gpu, const Tensor& cls_prob,
                              const Tensor& loc_pred, const Tensor& anchors,
                              const MultiboxDetectionParams& p) {
  const int64_t bsz = cls_prob.shape()[0];
  const int64_t num_classes = cls_prob.shape()[1];
  const int64_t n = cls_prob.shape()[2];
  // Decode kernel: one work item per anchor (argmax over classes + box
  // transform), fully parallel and branch-free.
  const Tensor decoded = decode_detections(cls_prob, loc_pred, anchors, p);
  gpu.launch_elementwise("multibox_decode", bsz * n, [](int64_t) {},
                         /*flops_per_elem=*/2 * num_classes + 20,
                         /*bytes_per_elem=*/4 * (num_classes + 8));
  return box_nms_gpu(gpu, decoded, p.nms);
}

}  // namespace igc::ops
