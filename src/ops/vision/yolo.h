// YOLOv3 detection-head decode (Sec. 4: Yolov3 is one of the evaluated
// object-detection models). Transforms a raw head tensor into scored boxes
// ready for box_nms.
#pragma once

#include <vector>

#include "sim/simulator.h"
#include "tensor/tensor.h"

namespace igc::ops {

struct YoloDecodeParams {
  int64_t num_classes = 80;
  /// Anchor (w, h) pairs in pixels for this head.
  std::vector<std::pair<float, float>> anchors;
  /// Network input resolution (pixels); boxes are emitted normalized.
  int64_t input_size = 416;
  float conf_thresh = 0.01f;
};

/// head: (B, A*(5+num_classes), H, W) raw activations. Returns (B, H*W*A, 6)
/// rows [class_id, score, x1, y1, x2, y2], normalized coordinates; entries
/// below conf_thresh are invalid (-1).
Tensor yolo_decode_reference(const Tensor& head, const YoloDecodeParams& p);

/// GPU mapping: one work item per (cell, anchor), fully parallel.
Tensor yolo_decode_gpu(sim::GpuSimulator& gpu, const Tensor& head,
                       const YoloDecodeParams& p);

}  // namespace igc::ops
