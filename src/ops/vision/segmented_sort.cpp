#include "ops/vision/segmented_sort.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.h"
#include "core/thread_pool.h"

namespace igc::ops {
namespace {

/// Ascending/descending comparator over values with index tie-break, so the
/// result is deterministic and matches the stable reference.
struct IdxCmp {
  const float* v;
  bool descending;
  bool operator()(int32_t a, int32_t b) const {
    const float va = v[a];
    const float vb = v[b];
    if (va != vb) return descending ? va > vb : va < vb;
    return a < b;
  }
};

/// Index of the segment containing flat position `pos`.
int64_t segment_of(const Segments& segs, int64_t pos) {
  auto it = std::upper_bound(segs.offsets.begin(), segs.offsets.end(), pos);
  return static_cast<int64_t>(it - segs.offsets.begin()) - 1;
}

}  // namespace

void Segments::validate(int64_t n) const {
  IGC_CHECK_GE(num_segments(), 0);
  IGC_CHECK(!offsets.empty());
  IGC_CHECK_EQ(offsets.front(), 0);
  IGC_CHECK_EQ(offsets.back(), n);
  for (size_t i = 1; i < offsets.size(); ++i) {
    IGC_CHECK_LE(offsets[i - 1], offsets[i]) << "offsets must be nondecreasing";
  }
}

std::vector<int32_t> segmented_argsort_reference(const std::vector<float>& values,
                                                 const Segments& segs,
                                                 bool descending) {
  const int64_t n = static_cast<int64_t>(values.size());
  segs.validate(n);
  std::vector<int32_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), 0);
  for (int64_t s = 0; s < segs.num_segments(); ++s) {
    std::stable_sort(idx.begin() + segs.offsets[static_cast<size_t>(s)],
                     idx.begin() + segs.offsets[static_cast<size_t>(s) + 1],
                     IdxCmp{values.data(), descending});
  }
  return idx;
}

std::vector<int32_t> segmented_argsort_gpu(sim::GpuSimulator& gpu,
                                           const std::vector<float>& values,
                                           const Segments& segs,
                                           bool descending, int64_t block_size) {
  const int64_t n = static_cast<int64_t>(values.size());
  segs.validate(n);
  if (n == 0) return {};

  if (block_size <= 0) {
    // Enough blocks to fill every hardware thread, but at least 64 elements
    // per block so the local sort amortizes.
    const int64_t target_blocks = std::max<int64_t>(gpu.device().total_hw_threads(), 1);
    block_size = std::max<int64_t>(64, (n + target_blocks - 1) / target_blocks);
  }
  const int64_t num_blocks = (n + block_size - 1) / block_size;

  std::vector<int32_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), 0);
  const IdxCmp cmp{values.data(), descending};

  // ---- Stage 1: block sort. Each block sorts the pieces of segments that
  // intersect it (equal-size blocks: load is balanced by construction).
  {
    sim::KernelLaunch cost;
    cost.name = "segsort_block_sort";
    const double logb = std::log2(static_cast<double>(std::max<int64_t>(block_size, 2)));
    cost.flops = static_cast<int64_t>(4.0 * static_cast<double>(n) * logb);
    cost.dram_read_bytes = 8 * n;
    cost.dram_write_bytes = 4 * n;
    gpu.launch(
        num_blocks, 1,
        [&](const sim::WorkItem& item) {
          const int64_t lo = item.group_id * block_size;
          const int64_t hi = std::min<int64_t>(n, lo + block_size);
          int64_t pos = lo;
          while (pos < hi) {
            const int64_t seg = segment_of(segs, pos);
            const int64_t piece_end =
                std::min<int64_t>(hi, segs.offsets[static_cast<size_t>(seg) + 1]);
            std::sort(idx.begin() + pos, idx.begin() + piece_end, cmp);
            pos = piece_end;
          }
        },
        std::move(cost));
  }

  // ---- Stage 2: cooperative merge rounds (coop 2, 4, 8, ...). Each round
  // doubles the sorted-run width; only the segment spanning each active
  // interface is merged (red vertical lines in Fig. 2).
  for (int64_t width = block_size; width < n; width *= 2) {
    // Collect the interfaces of this round and the spanning pieces, to both
    // charge an accurate cost and drive the functional merge.
    struct MergeJob {
      int64_t left_lo, mid, right_hi;
    };
    std::vector<MergeJob> jobs;
    int64_t merged_elems = 0;
    for (int64_t lo = 0; lo + width < n; lo += 2 * width) {
      const int64_t mid = lo + width;
      const int64_t hi = std::min<int64_t>(n, lo + 2 * width);
      // The single segment spanning the interface at `mid` (if the segment
      // boundary coincides with the interface, nothing to do).
      const int64_t seg = segment_of(segs, mid);
      const int64_t seg_lo = segs.offsets[static_cast<size_t>(seg)];
      if (seg_lo == mid) continue;
      const int64_t seg_hi = segs.offsets[static_cast<size_t>(seg) + 1];
      const int64_t left_lo = std::max<int64_t>(seg_lo, lo);
      const int64_t right_hi = std::min<int64_t>(seg_hi, hi);
      jobs.push_back({left_lo, mid, right_hi});
      merged_elems += right_hi - left_lo;
    }
    sim::KernelLaunch cost;
    cost.name = "segsort_merge_coop" + std::to_string(2 * width / block_size);
    cost.flops = 4 * std::max<int64_t>(merged_elems, 1);
    cost.dram_read_bytes = 8 * std::max<int64_t>(merged_elems, 1);
    cost.dram_write_bytes = 4 * std::max<int64_t>(merged_elems, 1);
    cost.num_global_syncs = 1;
    if (jobs.empty()) {
      // Still a kernel boundary: the round happens even if no segment spans
      // an interface.
      gpu.clock().charge(gpu.device(), cost);
      continue;
    }
    gpu.launch(
        static_cast<int64_t>(jobs.size()), 1,
        [&](const sim::WorkItem& item) {
          const MergeJob& j = jobs[static_cast<size_t>(item.group_id)];
          std::inplace_merge(idx.begin() + j.left_lo, idx.begin() + j.mid,
                             idx.begin() + j.right_hi, cmp);
        },
        std::move(cost));
  }
  return idx;
}

std::vector<int32_t> segmented_argsort_gpu_naive(sim::GpuSimulator& gpu,
                                                 const std::vector<float>& values,
                                                 const Segments& segs,
                                                 bool descending) {
  const int64_t n = static_cast<int64_t>(values.size());
  segs.validate(n);
  if (n == 0) return {};
  std::vector<int32_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), 0);
  const IdxCmp cmp{values.data(), descending};

  // One work item per segment: the kernel's latency is gated by the longest
  // segment, executed by a single lane running serial comparison-and-swap
  // code with uncoalesced, data-dependent accesses. Shorter lanes idle
  // (branch divergence + load imbalance) — the paper's motivating problem.
  const int64_t num_segs = std::max<int64_t>(segs.num_segments(), 1);
  auto seg_work = [&](int64_t s) {
    const double len = static_cast<double>(segs.offsets[static_cast<size_t>(s) + 1] -
                                           segs.offsets[static_cast<size_t>(s)]);
    return len <= 1.0 ? 0.0 : len * std::log2(len);
  };
  double max_work = 0.0;
  for (int64_t s = 0; s < segs.num_segments(); ++s) {
    max_work = std::max(max_work, seg_work(s));
  }
  // ~4 dependent scalar ops per comparison, at the single-lane serial rate.
  const double serial_flops = 4.0 * std::max(max_work, 1.0);
  const double ms =
      serial_flops / (gpu.device().serial_lane_mflops * 1e6) * 1e3 +
      gpu.device().kernel_launch_us * 1e-3;
  gpu.clock().charge_fixed(ms, "segsort_naive_per_segment");
  ThreadPool::global().parallel_for(num_segs, [&](int64_t s) {
    if (s >= segs.num_segments()) return;
    std::sort(idx.begin() + segs.offsets[static_cast<size_t>(s)],
              idx.begin() + segs.offsets[static_cast<size_t>(s) + 1], cmp);
  });
  return idx;
}

}  // namespace igc::ops
