// Prefix sum (scan) for integrated GPUs — Sec. 3.1.1, Fig. 3.
//
// The optimized version is the paper's three-stage algorithm:
//   1. up-sweep:   register blocking assigns a contiguous chunk to each
//                  processor, which scans it sequentially (one launch);
//   2. scan:       Hillis-Steele parallel scan over the per-chunk totals
//                  (log P passes, but across only P elements so a single
//                  work-group handles it without global synchronization);
//   3. down-sweep: each processor adds its chunk's offset (one launch).
// Latency drops from O(n) to O(n/P + log P) with only the launch boundaries
// as synchronization.
//
// The naive version applies Hillis-Steele directly over all n elements,
// requiring log2(n) *global* synchronizations (one kernel per pass) — the
// "simply applying the previously mentioned method is inefficient" strawman
// the paper improves upon. Both are exposed for the Fig. 3 benchmark.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"

namespace igc::ops {

/// Inclusive scan, reference (sequential host).
std::vector<float> prefix_sum_reference(const std::vector<float>& input);

/// Inclusive scan with the three-stage register-blocking algorithm.
/// `processors` defaults to the device's total hardware thread count.
std::vector<float> prefix_sum_gpu(sim::GpuSimulator& gpu,
                                  const std::vector<float>& input,
                                  int processors = 0);

/// Inclusive scan with plain Hillis-Steele over all elements (log n global
/// syncs). Functionally identical; much slower on the simulated clock.
std::vector<float> prefix_sum_gpu_naive(sim::GpuSimulator& gpu,
                                        const std::vector<float>& input);

}  // namespace igc::ops
