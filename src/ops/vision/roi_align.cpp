#include "ops/vision/roi_align.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace igc::ops {
namespace {

/// Bilinear sample of one feature plane at (y, x); out-of-range reads 0.
float bilinear(const float* plane, int64_t h, int64_t w, float y, float x) {
  if (y < -1.0f || y > static_cast<float>(h) || x < -1.0f ||
      x > static_cast<float>(w)) {
    return 0.0f;
  }
  y = std::max(y, 0.0f);
  x = std::max(x, 0.0f);
  int64_t y0 = static_cast<int64_t>(y);
  int64_t x0 = static_cast<int64_t>(x);
  int64_t y1 = y0 + 1;
  int64_t x1 = x0 + 1;
  if (y0 >= h - 1) { y0 = y1 = h - 1; y = static_cast<float>(y0); }
  if (x0 >= w - 1) { x0 = x1 = w - 1; x = static_cast<float>(x0); }
  const float ly = y - static_cast<float>(y0);
  const float lx = x - static_cast<float>(x0);
  const float hy = 1.0f - ly;
  const float hx = 1.0f - lx;
  return hy * hx * plane[y0 * w + x0] + hy * lx * plane[y0 * w + x1] +
         ly * hx * plane[y1 * w + x0] + ly * lx * plane[y1 * w + x1];
}

Tensor roi_align_impl(const Tensor& features, const Tensor& rois,
                      const RoiAlignParams& p) {
  IGC_CHECK_EQ(features.shape().ndim(), 4);
  IGC_CHECK_EQ(rois.shape().ndim(), 2);
  IGC_CHECK_EQ(rois.shape()[1], 5);
  const int64_t c = features.shape()[1];
  const int64_t h = features.shape()[2];
  const int64_t w = features.shape()[3];
  const int64_t r = rois.shape()[0];
  Tensor out(Shape{r, c, p.pooled_h, p.pooled_w}, DType::kFloat32);
  const float* f = features.data_f32();
  const float* rr = rois.data_f32();
  float* o = out.data_f32();
  for (int64_t ri = 0; ri < r; ++ri) {
    const float* roi = rr + ri * 5;
    const int64_t b = static_cast<int64_t>(roi[0]);
    IGC_CHECK_GE(b, 0);
    IGC_CHECK_LT(b, features.shape()[0]);
    const float x1 = roi[1] * p.spatial_scale;
    const float y1 = roi[2] * p.spatial_scale;
    const float x2 = roi[3] * p.spatial_scale;
    const float y2 = roi[4] * p.spatial_scale;
    const float roi_w = std::max(x2 - x1, 1.0f);
    const float roi_h = std::max(y2 - y1, 1.0f);
    const float bin_w = roi_w / static_cast<float>(p.pooled_w);
    const float bin_h = roi_h / static_cast<float>(p.pooled_h);
    const int64_t sy = p.sampling_ratio > 0
                           ? p.sampling_ratio
                           : static_cast<int64_t>(std::ceil(bin_h));
    const int64_t sx = p.sampling_ratio > 0
                           ? p.sampling_ratio
                           : static_cast<int64_t>(std::ceil(bin_w));
    for (int64_t ci = 0; ci < c; ++ci) {
      const float* plane = f + (b * c + ci) * h * w;
      for (int64_t py = 0; py < p.pooled_h; ++py) {
        for (int64_t px = 0; px < p.pooled_w; ++px) {
          float acc = 0.0f;
          for (int64_t iy = 0; iy < sy; ++iy) {
            const float yy = y1 + static_cast<float>(py) * bin_h +
                             (static_cast<float>(iy) + 0.5f) * bin_h /
                                 static_cast<float>(sy);
            for (int64_t ix = 0; ix < sx; ++ix) {
              const float xx = x1 + static_cast<float>(px) * bin_w +
                               (static_cast<float>(ix) + 0.5f) * bin_w /
                                   static_cast<float>(sx);
              acc += bilinear(plane, h, w, yy, xx);
            }
          }
          o[((ri * c + ci) * p.pooled_h + py) * p.pooled_w + px] =
              acc / static_cast<float>(sy * sx);
        }
      }
    }
  }
  return out;
}

}  // namespace

Tensor roi_align_reference(const Tensor& features, const Tensor& rois,
                           const RoiAlignParams& p) {
  return roi_align_impl(features, rois, p);
}

Tensor roi_align_gpu(sim::GpuSimulator& gpu, const Tensor& features,
                     const Tensor& rois, const RoiAlignParams& p) {
  Tensor out = roi_align_impl(features, rois, p);
  const int64_t samples = std::max<int64_t>(p.sampling_ratio, 1);
  gpu.launch_elementwise("roi_align", out.numel(), [](int64_t) {},
                         /*flops_per_elem=*/10 * samples * samples,
                         /*bytes_per_elem=*/16 * samples * samples);
  return out;
}

}  // namespace igc::ops
