// 2-D convolution: the paper's dominant compute-intensive operator
// (Sec. 3.2.2). Provides
//   * a reference NCHW implementation (ground truth for every test),
//   * the schedule template: a config space of tiling / vectorization /
//     unrolling / work-group / subgroup knobs per the paper's heuristics,
//   * the analytic cost model mapping (workload, config, device) to a
//     KernelLaunch for the simulator, and
//   * lowering of the scheduled loop nest to the unified IR for codegen.
#pragma once

#include <string>

#include "ir/expr.h"
#include "sim/device_spec.h"
#include "sim/timing_model.h"
#include "tensor/tensor.h"
#include "tune/config.h"

namespace igc::ops {

struct Conv2dParams {
  int64_t batch = 1;
  int64_t in_channels = 1;
  int64_t in_h = 1;
  int64_t in_w = 1;
  int64_t out_channels = 1;
  int64_t kernel_h = 1;
  int64_t kernel_w = 1;
  int64_t stride_h = 1;
  int64_t stride_w = 1;
  int64_t pad_h = 0;
  int64_t pad_w = 0;
  int64_t groups = 1;

  int64_t out_h() const { return (in_h + 2 * pad_h - kernel_h) / stride_h + 1; }
  int64_t out_w() const { return (in_w + 2 * pad_w - kernel_w) / stride_w + 1; }
  bool is_depthwise() const {
    return groups > 1 && groups == in_channels && groups == out_channels;
  }

  /// Multiply-add counted as 2 ops.
  int64_t flops() const {
    return 2 * batch * out_channels * out_h() * out_w() *
           (in_channels / groups) * kernel_h * kernel_w;
  }

  /// Bytes touched if every tensor moved exactly once (roofline floor).
  int64_t min_bytes() const {
    const int64_t in = batch * in_channels * in_h * in_w;
    const int64_t w = out_channels * (in_channels / groups) * kernel_h * kernel_w;
    const int64_t out = batch * out_channels * out_h() * out_w();
    return 4 * (in + w + out);
  }

  /// Stable identity used as tuning-database key.
  std::string workload_key() const;

  void validate() const;
};

/// Ground-truth convolution. input: (N, CI, H, W); weight: (CO, CI/g, KH, KW);
/// bias: optional (CO). Returns (N, CO, OH, OW).
Tensor conv2d_reference(const Tensor& input, const Tensor& weight,
                        const Tensor* bias, const Conv2dParams& p);

/// The schedule template's search space for this workload on this device
/// (the paper's heuristics: split output channels, split the feature map
/// along height/width, unroll the kernel loops, vectorize, choose work-group
/// size; Intel additionally exposes the subgroup knob).
tune::ConfigSpace conv2d_config_space(const Conv2dParams& p,
                                      const sim::DeviceSpec& dev);

/// The hand-written fallback schedule (what stock TVM 0.5 ships): a generic
/// template written for large, regular convolutions on server GPUs — decent
/// there, increasingly wrong for depthwise, narrow, or edge-sized workloads.
/// This is the "Before" of Table 5.
tune::ScheduleConfig conv2d_manual_schedule(const Conv2dParams& p,
                                            const sim::DeviceSpec& dev);

/// Analytic cost of running this workload with this schedule on this device.
/// This is the "measurement" the tuner optimizes; it encodes the
/// architectural effects of Sec. 2.1/3.2: SIMD utilization, register-tile
/// footprint vs GRF budget, occupancy, unrolling, Intel subgroups, and
/// Mali's lack of shared local memory.
sim::KernelLaunch conv2d_kernel_cost(const Conv2dParams& p,
                                     const tune::ScheduleConfig& cfg,
                                     const sim::DeviceSpec& dev);

/// Convenience: latency in ms of one launch under the analytic model.
double conv2d_latency_ms(const Conv2dParams& p, const tune::ScheduleConfig& cfg,
                         const sim::DeviceSpec& dev);

/// Lowers the scheduled direct convolution to the unified IR (used for
/// OpenCL/CUDA codegen and interpreter validation). Supports groups == 1.
ir::LoweredKernel conv2d_build_ir(const Conv2dParams& p,
                                  const tune::ScheduleConfig& cfg);

}  // namespace igc::ops
