// Transposed (fractionally-strided) convolution — the learned-upsampling
// operator of semantic-segmentation heads (FCN, the third vision task the
// paper's introduction motivates alongside classification and detection).
#pragma once

#include <string>

#include "sim/device_spec.h"
#include "sim/timing_model.h"
#include "tensor/tensor.h"

namespace igc::ops {

struct Conv2dTransposeParams {
  int64_t batch = 1;
  int64_t in_channels = 1;
  int64_t in_h = 1;
  int64_t in_w = 1;
  int64_t out_channels = 1;
  int64_t kernel = 2;
  int64_t stride = 2;
  int64_t pad = 0;

  int64_t out_h() const { return (in_h - 1) * stride - 2 * pad + kernel; }
  int64_t out_w() const { return (in_w - 1) * stride - 2 * pad + kernel; }
  int64_t flops() const {
    // Every input element contributes a kernel x kernel x out_channels stamp.
    return 2 * batch * in_channels * in_h * in_w * out_channels * kernel *
           kernel;
  }
  std::string workload_key() const;
  void validate() const;
};

/// input: (N, CI, H, W); weight: (CI, CO, K, K) (the deconvolution
/// convention); bias optional (CO). Returns (N, CO, OH, OW).
Tensor conv2d_transpose_reference(const Tensor& input, const Tensor& weight,
                                  const Tensor* bias,
                                  const Conv2dTransposeParams& p);

/// Builds the bilinear-interpolation weight tensor (CI, CO, K, K) used to
/// initialize FCN upsampling layers (non-zero only where ci == co).
Tensor bilinear_upsample_weights(int64_t channels, int64_t kernel);

sim::KernelLaunch conv2d_transpose_kernel_cost(const Conv2dTransposeParams& p,
                                               const sim::DeviceSpec& dev);

}  // namespace igc::ops
