#include "ops/nn/host_kernels.h"

#include <functional>

#include "core/error.h"

namespace igc::ops {
namespace {

using ir::add;
using ir::binary;
using ir::div;
using ir::ExprPtr;
using ir::fimm;
using ir::imm;
using ir::IterKind;
using ir::load;
using ir::lt;
using ir::make_decl_local;
using ir::make_assign;
using ir::make_comment;
using ir::make_for;
using ir::make_store;
using ir::make_if;
using ir::max_e;
using ir::mod;
using ir::mul;
using ir::select;
using ir::StmtPtr;
using ir::var;

/// y = act(x) with the reference operators' exact float expressions:
/// relu  -> std::max(0.0f, x)            == ((0.0f) < (x) ? (x) : (0.0f))
/// leaky -> x > 0.0f ? x : alpha * x
ExprPtr apply_act(ExprPtr x, Activation act, float alpha) {
  switch (act) {
    case Activation::kRelu:
      return max_e(fimm(0.0), x);
    case Activation::kLeakyRelu:
      return select(binary(ir::BinOp::kGT, x, fimm(0.0)), x,
                    mul(fimm(static_cast<double>(alpha)), x));
    case Activation::kSigmoid:
      break;
  }
  IGC_CHECK(false) << "activation not lowerable to host IR";
  return x;
}

ExprPtr fvar(const std::string& name) { return var(name, DType::kFloat32); }

}  // namespace

bool host_act_supported(Activation act) {
  return act == Activation::kRelu || act == Activation::kLeakyRelu;
}

ir::LoweredKernel conv2d_build_host_ir(const Conv2dParams& p, bool bias,
                                       const HostEpilogue& e,
                                       const std::string& name) {
  p.validate();
  IGC_CHECK(!e.activation || host_act_supported(e.act));
  const int64_t cig = p.in_channels / p.groups;
  const int64_t cog = p.out_channels / p.groups;
  const int64_t oh = p.out_h();
  const int64_t ow = p.out_w();
  const int64_t ph = p.in_h + 2 * p.pad_h;  // padded input extents
  const int64_t pw = p.in_w + 2 * p.pad_w;

  ir::LoweredKernel k;
  k.name = name;
  k.params.push_back({"data", DType::kFloat32,
                      p.batch * p.in_channels * ph * pw, false});
  k.params.push_back({"weight", DType::kFloat32,
                      p.out_channels * cig * p.kernel_h * p.kernel_w, false});
  if (bias) k.params.push_back({"bias", DType::kFloat32, p.out_channels, false});
  if (e.scale_shift) {
    k.params.push_back({"scale", DType::kFloat32, p.out_channels, false});
    k.params.push_back({"shift", DType::kFloat32, p.out_channels, false});
  }
  k.params.push_back({"out", DType::kFloat32,
                      p.batch * p.out_channels * oh * ow, true});

  const ExprPtr vn = var("n");
  const ExprPtr vco = var("co");
  const ExprPtr vy = var("y");
  const ExprPtr vx = var("x");
  const ExprPtr vci = var("ci");
  const ExprPtr vky = var("ky");
  const ExprPtr vkx = var("kx");

  auto out_idx = [&](ExprPtr y, ExprPtr x) {
    ExprPtr plane = add(mul(vn, imm(p.out_channels)), vco);
    return add(mul(add(mul(plane, imm(oh)), y), imm(ow)), x);
  };

  std::vector<StmtPtr> block;  // body of one (n, co) grid block
  block.push_back(make_comment("one block = one output plane"));

  // Init: out[y, x] = bias[co] (or 0), exactly the reference accumulator
  // seed; the reduction then adds into memory in reference order.
  {
    const ExprPtr seed = bias ? load("bias", vco) : fimm(0.0);
    block.push_back(make_for(
        {"y", oh, IterKind::kSerial},
        {make_for({"x", ow, IterKind::kVectorized},
                  {make_store("out", out_idx(vy, vx), seed)})}));
  }

  // Reduction: ci -> ky -> kx, weight hoisted to a scalar, spatial loops
  // innermost so the x loop vectorizes across independent outputs. The
  // input is pre-padded: taps the reference skips read zeros, and
  // acc + 0.0f * w cannot change the accumulator's bits.
  {
    // in_c = g * cig + ci with g = co / cog (grouped); plain ci otherwise.
    const bool grouped = p.groups > 1;
    const ExprPtr in_c = grouped ? var("in_c") : vci;
    const ExprPtr w_idx = add(
        mul(add(mul(add(mul(vco, imm(cig)), vci), imm(p.kernel_h)), vky),
            imm(p.kernel_w)),
        vkx);
    // data[((n*CI + in_c) * PH + (y*SH + ky)) * PW + (x*SW + kx)]
    const ExprPtr iy = add(mul(vy, imm(p.stride_h)), vky);
    const ExprPtr ix = add(mul(vx, imm(p.stride_w)), vkx);
    const ExprPtr d_idx =
        add(mul(add(mul(add(mul(vn, imm(p.in_channels)), in_c), imm(ph)), iy),
                imm(pw)),
            ix);

    std::vector<StmtPtr> x_body = {make_store(
        "out", out_idx(vy, vx),
        add(load("out", out_idx(vy, vx)), mul(load("data", d_idx), fvar("w"))))};
    StmtPtr y_loop = make_for(
        {"y", oh, IterKind::kSerial},
        {make_for({"x", ow, IterKind::kVectorized}, std::move(x_body))});
    StmtPtr kx_loop = make_for(
        {"kx", p.kernel_w, IterKind::kSerial},
        {make_decl_local("w", DType::kFloat32, load("weight", w_idx)),
         std::move(y_loop)});
    StmtPtr ky_loop =
        make_for({"ky", p.kernel_h, IterKind::kSerial}, {std::move(kx_loop)});
    std::vector<StmtPtr> ci_body;
    if (grouped) {
      ci_body.push_back(make_decl_local(
          "in_c", DType::kInt32,
          add(mul(div(vco, imm(cog)), imm(cig)), vci)));
    }
    ci_body.push_back(std::move(ky_loop));
    block.push_back(make_for({"ci", cig, IterKind::kSerial}, std::move(ci_body)));
  }

  // Fused epilogue, applied per element over the finished plane — the same
  // per-element float expressions the reference epilogue ops use.
  if (e.scale_shift || e.activation) {
    ExprPtr v = fvar("v");
    std::vector<StmtPtr> x_body;
    x_body.push_back(
        make_decl_local("v", DType::kFloat32, load("out", out_idx(vy, vx))));
    if (e.scale_shift) {
      x_body.push_back(make_assign(
          "v", add(mul(v, load("scale", vco)), load("shift", vco))));
    }
    if (e.activation) {
      x_body.push_back(make_assign("v", apply_act(v, e.act, e.act_alpha)));
    }
    x_body.push_back(make_store("out", out_idx(vy, vx), v));
    block.push_back(make_for(
        {"y", oh, IterKind::kSerial},
        {make_for({"x", ow, IterKind::kVectorized}, std::move(x_body))}));
  }

  k.body.push_back(make_for(
      {"n", p.batch, IterKind::kBlockZ},
      {make_for({"co", p.out_channels, IterKind::kBlockY}, std::move(block))}));
  return k;
}

ir::LoweredKernel dense_build_host_ir(const DenseParams& p, bool bias,
                                      const HostEpilogue& e,
                                      const std::string& name) {
  IGC_CHECK(!e.scale_shift) << "dense has no scale_shift epilogue";
  IGC_CHECK(!e.activation || host_act_supported(e.act));
  ir::LoweredKernel k;
  k.name = name;
  k.params.push_back({"data", DType::kFloat32, p.batch * p.in_features, false});
  k.params.push_back(
      {"weight", DType::kFloat32, p.out_features * p.in_features, false});
  if (bias) k.params.push_back({"bias", DType::kFloat32, p.out_features, false});
  k.params.push_back({"out", DType::kFloat32, p.batch * p.out_features, true});

  const ExprPtr vnco = var("nco");
  const ExprPtr vn = var("n");
  const ExprPtr vco = var("co");
  const ExprPtr vci = var("ci");
  const ExprPtr acc = fvar("acc");

  std::vector<StmtPtr> body;
  body.push_back(make_decl_local("n", DType::kInt32,
                                 div(vnco, imm(p.out_features))));
  body.push_back(make_decl_local("co", DType::kInt32,
                                 mod(vnco, imm(p.out_features))));
  body.push_back(make_decl_local("acc", DType::kFloat32,
                                 bias ? load("bias", vco) : fimm(0.0)));
  body.push_back(make_for(
      {"ci", p.in_features, IterKind::kSerial},
      {make_assign(
          "acc",
          add(acc, mul(load("data", add(mul(vn, imm(p.in_features)), vci)),
                       load("weight",
                            add(mul(vco, imm(p.in_features)), vci)))))}));
  if (e.activation) {
    body.push_back(make_assign("acc", apply_act(acc, e.act, e.act_alpha)));
  }
  body.push_back(make_store("out", vnco, acc));
  k.body.push_back(make_for(
      {"nco", p.batch * p.out_features, IterKind::kBlockX}, std::move(body)));
  return k;
}

namespace {

/// Shared elementwise frame: grid of `chunk`-element blocks with a bounds
/// guard, body built per element index `idx`.
ir::LoweredKernel elementwise_host_frame(
    int64_t numel, const std::string& name,
    const std::function<std::vector<StmtPtr>(ExprPtr idx)>& body_of) {
  constexpr int64_t kChunk = 4096;
  const int64_t blocks = (numel + kChunk - 1) / kChunk;
  ir::LoweredKernel k;
  k.name = name;
  const ExprPtr idx = var("idx");
  std::vector<StmtPtr> guarded = body_of(idx);
  std::vector<StmtPtr> i_body;
  i_body.push_back(make_decl_local(
      "idx", DType::kInt32,
      add(mul(var("blk"), imm(kChunk)), var("i"))));
  i_body.push_back(make_if(lt(idx, imm(numel)), std::move(guarded)));
  k.body.push_back(make_for(
      {"blk", blocks, IterKind::kBlockX},
      {make_for({"i", kChunk, IterKind::kSerial}, std::move(i_body))}));
  return k;
}

}  // namespace

ir::LoweredKernel activation_build_host_ir(int64_t numel, Activation act,
                                           float alpha,
                                           const std::string& name) {
  IGC_CHECK(host_act_supported(act));
  ir::LoweredKernel k = elementwise_host_frame(
      numel, name, [&](ExprPtr idx) -> std::vector<StmtPtr> {
        return {make_store("out", idx,
                           apply_act(load("data", idx), act, alpha))};
      });
  k.params.insert(k.params.begin(),
                  {{"data", DType::kFloat32, numel, false},
                   {"out", DType::kFloat32, numel, true}});
  return k;
}

ir::LoweredKernel add_build_host_ir(int64_t numel, const HostEpilogue& e,
                                    const std::string& name) {
  IGC_CHECK(!e.scale_shift) << "add has no scale_shift epilogue";
  IGC_CHECK(!e.activation || host_act_supported(e.act));
  ir::LoweredKernel k = elementwise_host_frame(
      numel, name, [&](ExprPtr idx) -> std::vector<StmtPtr> {
        std::vector<StmtPtr> body;
        body.push_back(make_decl_local(
            "v", DType::kFloat32, add(load("a", idx), load("b", idx))));
        if (e.activation) {
          body.push_back(
              make_assign("v", apply_act(fvar("v"), e.act, e.act_alpha)));
        }
        body.push_back(make_store("out", idx, fvar("v")));
        return body;
      });
  k.params.insert(k.params.begin(),
                  {{"a", DType::kFloat32, numel, false},
                   {"b", DType::kFloat32, numel, false},
                   {"out", DType::kFloat32, numel, true}});
  return k;
}

ir::LoweredKernel scale_shift_build_host_ir(int64_t n, int64_t c, int64_t hw,
                                            const std::string& name) {
  ir::LoweredKernel k;
  k.name = name;
  k.params.push_back({"data", DType::kFloat32, n * c * hw, false});
  k.params.push_back({"scale", DType::kFloat32, c, false});
  k.params.push_back({"shift", DType::kFloat32, c, false});
  k.params.push_back({"out", DType::kFloat32, n * c * hw, true});

  const ExprPtr vp = var("p");
  const ExprPtr vj = var("j");
  const ExprPtr eidx = add(mul(vp, imm(hw)), vj);
  std::vector<StmtPtr> body;
  body.push_back(make_decl_local("ci", DType::kInt32, mod(vp, imm(c))));
  body.push_back(
      make_decl_local("s", DType::kFloat32, load("scale", var("ci"))));
  body.push_back(
      make_decl_local("t", DType::kFloat32, load("shift", var("ci"))));
  body.push_back(make_for(
      {"j", hw, IterKind::kVectorized},
      {make_store("out", eidx,
                  add(mul(load("data", eidx), fvar("s")), fvar("t")))}));
  k.body.push_back(
      make_for({"p", n * c, IterKind::kBlockX}, std::move(body)));
  return k;
}

}  // namespace igc::ops
