// Additional unified-IR lowerings beyond the direct convolution: the
// depthwise template and the fused elementwise epilogues. Together with
// conv2d_build_ir these cover the kernels a compiled classification model
// actually launches, all printable as OpenCL or CUDA (codegen) and
// executable on the host (ir::interpret).
#pragma once

#include "ir/expr.h"
#include "ops/nn/conv2d.h"
#include "tune/config.h"

namespace igc::ops {

/// Depthwise 3x3-style convolution with the specialized spatial-lane
/// mapping (see depthwise.h). Buffers: data, weight, out.
ir::LoweredKernel depthwise_build_ir(const Conv2dParams& p,
                                     const tune::ScheduleConfig& cfg);

/// out[i] = max(data[i], 0) — one work item per `vec`-element strip.
ir::LoweredKernel relu_build_ir(int64_t numel, int64_t vec = 4);

/// out[i] = a[i] + b[i], optionally with a fused ReLU epilogue.
ir::LoweredKernel add_build_ir(int64_t numel, bool fused_relu,
                               int64_t vec = 4);

/// out[n,c,h,w] = data[n,c,h,w] * scale[c] + shift[c] for NCHW tensors.
ir::LoweredKernel scale_shift_build_ir(int64_t n, int64_t c, int64_t hw);

}  // namespace igc::ops
