// Host-schedule lowerings for the JIT backend: the same unified IR as the
// device templates (conv2d_build_ir, ir_kernels.h), but scheduled for a host
// CPU compiled through codegen::emit_cpp — block axes become the dispatch
// grid, everything else plain loops the host compiler vectorizes.
//
// Bit-identity contract: each builder reproduces the corresponding reference
// operator's floating-point evaluation exactly — same accumulation order per
// output element, same single-precision intermediates, min/max as the
// std::min/std::max ternaries — so the executor can swap a JIT kernel for
// the reference implementation with bit-identical outputs (given the JIT
// toolchain's -ffp-contract=off). The only licensed deviations are ones that
// cannot change bits: the convolution consumes a zero-padded input so the
// out-of-bounds taps the reference skips become `acc + 0.0f * w` no-ops, and
// independent outputs may be computed in any order.
#pragma once

#include "ir/expr.h"
#include "ops/nn/conv2d.h"
#include "ops/nn/nn_ops.h"

namespace igc::ops {

/// Epilogues fused into a conv/dense/add host kernel (mirrors the Node
/// fused_* fields the executor's reference path applies tensor-by-tensor).
struct HostEpilogue {
  bool scale_shift = false;  // y = y * scale[c] + shift[c] (conv only)
  bool activation = false;
  Activation act = Activation::kRelu;
  float act_alpha = 0.1f;
};

/// True when the JIT can express this activation (sigmoid needs a
/// transcendental the IR does not model; such nodes stay on the reference
/// path).
bool host_act_supported(Activation act);

/// Direct convolution over a *pre-padded* input, any groups count
/// (depthwise included). Buffers in order: data (N, CI, H+2ph, W+2pw),
/// weight, [bias], [scale], [shift], out. Grid = batch x out_channels; one
/// block computes one output plane: init with bias, accumulate ci -> ky ->
/// kx with the spatial loops innermost, then the fused epilogue.
ir::LoweredKernel conv2d_build_host_ir(const Conv2dParams& p, bool bias,
                                       const HostEpilogue& e,
                                       const std::string& name);

/// Dense (GEMV) kernel. Buffers: data (N, CI), weight (CO, CI), [bias],
/// out (N, CO). Grid = N*CO; the ci reduction runs ascending like
/// dense_reference.
ir::LoweredKernel dense_build_host_ir(const DenseParams& p, bool bias,
                                      const HostEpilogue& e,
                                      const std::string& name);

/// Elementwise activation over `numel` elements (relu / leaky only).
/// Buffers: data, out. Grid = ceil(numel / chunk).
ir::LoweredKernel activation_build_host_ir(int64_t numel, Activation act,
                                           float alpha,
                                           const std::string& name);

/// Elementwise add with optional fused activation. Buffers: a, b, out.
ir::LoweredKernel add_build_host_ir(int64_t numel, const HostEpilogue& e,
                                    const std::string& name);

/// Per-channel affine over NCHW. Buffers: data, scale, shift, out.
/// Grid = n*c planes.
ir::LoweredKernel scale_shift_build_host_ir(int64_t n, int64_t c, int64_t hw,
                                            const std::string& name);

}  // namespace igc::ops
