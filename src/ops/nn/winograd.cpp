#include "ops/nn/winograd.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/error.h"
#include "core/thread_pool.h"
#include "tune/tuner.h"

namespace igc::ops {
namespace {

// F(2x2, 3x3): output tile m = 2, input tile a = m + r - 1 = 4.
//   Y = A^T [ (G g G^T) .* (B^T d B) ] A
// with the classic matrices
//   B^T = [1  0 -1  0;  0 1 1 0;  0 -1 1 0;  0 1 0 -1]
//   G   = [1 0 0;  .5 .5 .5;  .5 -.5 .5;  0 0 1]
//   A^T = [1 1 1 0;  0 1 -1 -1]

/// U = G g G^T for one 3x3 filter -> 4x4.
void filter_transform(const float g[9], float u[16]) {
  float t[12];  // G * g : 4x3
  for (int col = 0; col < 3; ++col) {
    const float g0 = g[0 * 3 + col];
    const float g1 = g[1 * 3 + col];
    const float g2 = g[2 * 3 + col];
    t[0 * 3 + col] = g0;
    t[1 * 3 + col] = 0.5f * (g0 + g1 + g2);
    t[2 * 3 + col] = 0.5f * (g0 - g1 + g2);
    t[3 * 3 + col] = g2;
  }
  for (int row = 0; row < 4; ++row) {
    const float t0 = t[row * 3 + 0];
    const float t1 = t[row * 3 + 1];
    const float t2 = t[row * 3 + 2];
    u[row * 4 + 0] = t0;
    u[row * 4 + 1] = 0.5f * (t0 + t1 + t2);
    u[row * 4 + 2] = 0.5f * (t0 - t1 + t2);
    u[row * 4 + 3] = t2;
  }
}

/// V = B^T d B for one 4x4 input patch.
void input_transform(const float d[16], float v[16]) {
  float t[16];  // B^T * d
  for (int col = 0; col < 4; ++col) {
    const float d0 = d[0 * 4 + col];
    const float d1 = d[1 * 4 + col];
    const float d2 = d[2 * 4 + col];
    const float d3 = d[3 * 4 + col];
    t[0 * 4 + col] = d0 - d2;
    t[1 * 4 + col] = d1 + d2;
    t[2 * 4 + col] = d2 - d1;
    t[3 * 4 + col] = d1 - d3;
  }
  for (int row = 0; row < 4; ++row) {
    const float t0 = t[row * 4 + 0];
    const float t1 = t[row * 4 + 1];
    const float t2 = t[row * 4 + 2];
    const float t3 = t[row * 4 + 3];
    v[row * 4 + 0] = t0 - t2;
    v[row * 4 + 1] = t1 + t2;
    v[row * 4 + 2] = t2 - t1;
    v[row * 4 + 3] = t1 - t3;
  }
}

/// y (2x2) = A^T m A for one 4x4 elementwise product accumulation.
void output_transform(const float m[16], float y[4]) {
  float t[8];  // A^T * m : 2x4
  for (int col = 0; col < 4; ++col) {
    const float m0 = m[0 * 4 + col];
    const float m1 = m[1 * 4 + col];
    const float m2 = m[2 * 4 + col];
    const float m3 = m[3 * 4 + col];
    t[0 * 4 + col] = m0 + m1 + m2;
    t[1 * 4 + col] = m1 - m2 - m3;
  }
  for (int row = 0; row < 2; ++row) {
    const float t0 = t[row * 4 + 0];
    const float t1 = t[row * 4 + 1];
    const float t2 = t[row * 4 + 2];
    const float t3 = t[row * 4 + 3];
    y[row * 2 + 0] = t0 + t1 + t2;
    y[row * 2 + 1] = t1 - t2 - t3;
  }
}

}  // namespace

bool winograd_applicable(const Conv2dParams& p) {
  return p.kernel_h == 3 && p.kernel_w == 3 && p.stride_h == 1 &&
         p.stride_w == 1 && p.groups == 1 && p.out_h() >= 2 && p.out_w() >= 2;
}

Tensor conv2d_winograd(const Tensor& input, const Tensor& weight,
                       const Tensor* bias, const Conv2dParams& p) {
  p.validate();
  IGC_CHECK(winograd_applicable(p)) << "winograd needs 3x3 s1 non-grouped";
  const int64_t oh = p.out_h();
  const int64_t ow = p.out_w();
  const int64_t tiles_y = (oh + 1) / 2;
  const int64_t tiles_x = (ow + 1) / 2;
  const int64_t ci = p.in_channels;
  const int64_t co = p.out_channels;

  // Filter transforms, once per (co, ci).
  std::vector<float> u(static_cast<size_t>(co * ci * 16));
  const float* wt = weight.data_f32();
  for (int64_t ocic = 0; ocic < co * ci; ++ocic) {
    filter_transform(wt + ocic * 9, u.data() + ocic * 16);
  }

  Tensor out = Tensor::zeros(Shape{p.batch, co, oh, ow});
  const float* in = input.data_f32();
  const float* bs = bias ? bias->data_f32() : nullptr;
  float* o = out.data_f32();

  ThreadPool::global().parallel_for(p.batch * co, [&](int64_t idx) {
    const int64_t n = idx / co;
    const int64_t oc = idx % co;
    for (int64_t ty = 0; ty < tiles_y; ++ty) {
      for (int64_t tx = 0; tx < tiles_x; ++tx) {
        float acc[16] = {0};
        for (int64_t c = 0; c < ci; ++c) {
          // Gather the 4x4 input patch (with padding).
          float d[16];
          for (int dy = 0; dy < 4; ++dy) {
            for (int dx = 0; dx < 4; ++dx) {
              const int64_t iy = ty * 2 + dy - p.pad_h;
              const int64_t ix = tx * 2 + dx - p.pad_w;
              d[dy * 4 + dx] =
                  (iy >= 0 && iy < p.in_h && ix >= 0 && ix < p.in_w)
                      ? in[((n * ci + c) * p.in_h + iy) * p.in_w + ix]
                      : 0.0f;
            }
          }
          float v[16];
          input_transform(d, v);
          const float* uf = u.data() + (oc * ci + c) * 16;
          for (int i = 0; i < 16; ++i) acc[i] += uf[i] * v[i];
        }
        float y[4];
        output_transform(acc, y);
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const int64_t oy = ty * 2 + dy;
            const int64_t ox = tx * 2 + dx;
            if (oy >= oh || ox >= ow) continue;
            o[((n * co + oc) * oh + oy) * ow + ox] =
                y[dy * 2 + dx] + (bs ? bs[oc] : 0.0f);
          }
        }
      }
    }
  });
  return out;
}

tune::ConfigSpace winograd_config_space(const Conv2dParams& p,
                                        const sim::DeviceSpec& dev) {
  IGC_CHECK(winograd_applicable(p));
  tune::ConfigSpace space;
  const int64_t cog = p.out_channels;
  space.add_knob("tile_oc", tune::tile_candidates(cog, 32));
  // Winograd tiles per work item (batched-GEMM blocking over tiles).
  space.add_knob("tile_b", {1, 2, 4, 8});
  space.add_knob("unroll", {1, 2, 4});
  std::vector<int64_t> vec{1, 2, 4};
  if (dev.simd_width >= 8) vec.push_back(8);
  if (dev.simd_width >= 16) vec.push_back(16);
  if (dev.simd_width >= 32) vec.push_back(32);
  space.add_knob("vec", std::move(vec));
  space.add_knob("wg", {32, 64, 128, 256});
  space.add_knob("use_subgroup", dev.has_subgroups
                                     ? std::vector<int64_t>{0, 1}
                                     : std::vector<int64_t>{0});
  return space;
}

sim::KernelLaunch winograd_kernel_cost(const Conv2dParams& p,
                                       const tune::ScheduleConfig& cfg,
                                       const sim::DeviceSpec& dev) {
  IGC_CHECK(winograd_applicable(p));
  const int64_t tile_oc = cfg.at("tile_oc");
  const int64_t tile_b = cfg.at("tile_b");
  const int64_t vec = cfg.at("vec");
  const int64_t wg = cfg.at("wg");
  const bool use_subgroup = cfg.get_or("use_subgroup", 0) != 0;

  const int64_t tiles =
      p.batch * ((p.out_h() + 1) / 2) * ((p.out_w() + 1) / 2);
  const int64_t ci = p.in_channels;
  const int64_t co = p.out_channels;

  sim::KernelLaunch k;
  k.name = p.workload_key() + "_winograd";
  // 4 stages: input transform (32 flops / channel-tile), 16 batched GEMMs of
  // (tiles x ci) * (ci x co), output transform (24 flops), filter transform
  // amortized (once per model load, not charged per inference).
  const int64_t gemm_flops = 2 * 16 * tiles * ci * co;
  const int64_t transform_flops = tiles * ci * 32 + tiles * co * 24;
  k.flops = gemm_flops + transform_flops;

  const int64_t oc_blocks = (co + tile_oc - 1) / tile_oc;
  const int64_t tile_blocks = (tiles + tile_b - 1) / tile_b;
  k.work_items = oc_blocks * tile_blocks;
  k.work_group_size = static_cast<int>(std::min<int64_t>(wg, k.work_items));

  // GEMM-style efficiency: vectorization + blocking, no reduction shortage
  // (the reduction is ci, usually large where winograd applies).
  const double vmatch =
      static_cast<double>(std::min<int64_t>(vec, dev.simd_width)) /
      static_cast<double>(dev.simd_width);
  const double eff_vec = 0.30 + 0.70 * vmatch;
  const double work = static_cast<double>(tile_oc * tile_b);
  double eff_tile = work / (work + 6.0);
  // The 16-tap accumulators are register hungry: spill if the tile is big.
  const int64_t reg_bytes = 4 * 16 * tile_oc * tile_b;
  int64_t reg_budget = dev.register_bytes_per_thread;
  if (!use_subgroup && dev.has_subgroups) reg_budget /= dev.simd_width;
  if (reg_bytes > reg_budget) eff_tile *= 0.4;
  double eff = eff_vec * eff_tile;
  if (use_subgroup) eff *= (tile_oc >= 4) ? 1.25 : 1.0;
  if (!dev.has_shared_local_mem) {
    // The batched GEMM leans on shared local memory for the V tiles; Mali
    // Midgard must round-trip through cache instead.
    eff *= 0.72;
  }
  k.compute_efficiency = std::min(eff, 1.0);

  // Memory: transformed input (16/4 = 4x inflation over the raw input),
  // transformed weights, transformed output.
  const int64_t v_bytes = 4 * tiles * ci * 16;
  const int64_t u_bytes = 4 * co * ci * 16;
  const int64_t m_bytes = 4 * tiles * co * 16;
  k.dram_read_bytes = v_bytes + u_bytes;
  k.dram_write_bytes = m_bytes / 4;  // output transform fuses the store
  k.num_global_syncs = 2;            // between the stages
  return k;
}

double winograd_latency_ms(const Conv2dParams& p,
                           const tune::ScheduleConfig& cfg,
                           const sim::DeviceSpec& dev) {
  return sim::estimate_latency_ms(dev, winograd_kernel_cost(p, cfg, dev));
}

AlgorithmChoice conv2d_best_algorithm(const Conv2dParams& p,
                                      const sim::DeviceSpec& dev,
                                      const tune::TuneOptions& opts) {
  AlgorithmChoice choice;
  const tune::MeasureFn direct_measure = [&](const tune::ScheduleConfig& cfg) {
    return conv2d_latency_ms(p, cfg, dev);
  };
  choice.direct_ms =
      tune::tune(conv2d_config_space(p, dev), direct_measure, opts).best_ms;
  if (!winograd_applicable(p)) {
    choice.winograd_ms = std::numeric_limits<double>::infinity();
    return choice;
  }
  const tune::MeasureFn wino_measure = [&](const tune::ScheduleConfig& cfg) {
    return winograd_latency_ms(p, cfg, dev);
  };
  choice.winograd_ms =
      tune::tune(winograd_config_space(p, dev), wino_measure, opts).best_ms;
  if (choice.winograd_ms < choice.direct_ms) {
    choice.algorithm = ConvAlgorithm::kWinograd;
  }
  return choice;
}

}  // namespace igc::ops
