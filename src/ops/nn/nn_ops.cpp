#include "ops/nn/nn_ops.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/thread_pool.h"

namespace igc::ops {

Tensor dense_reference(const Tensor& input, const Tensor& weight,
                       const Tensor* bias, const DenseParams& p) {
  IGC_CHECK(input.shape() == Shape({p.batch, p.in_features}));
  IGC_CHECK(weight.shape() == Shape({p.out_features, p.in_features}));
  Tensor out(Shape{p.batch, p.out_features}, DType::kFloat32);
  const float* in = input.data_f32();
  const float* wt = weight.data_f32();
  const float* bs = bias ? bias->data_f32() : nullptr;
  float* o = out.data_f32();
  ThreadPool::global().parallel_for(p.batch * p.out_features, [&](int64_t idx) {
    const int64_t n = idx / p.out_features;
    const int64_t co = idx % p.out_features;
    float acc = bs ? bs[co] : 0.0f;
    for (int64_t ci = 0; ci < p.in_features; ++ci) {
      acc += in[n * p.in_features + ci] * wt[co * p.in_features + ci];
    }
    o[idx] = acc;
  });
  return out;
}

sim::KernelLaunch dense_kernel_cost(const DenseParams& p,
                                    const sim::DeviceSpec& dev) {
  sim::KernelLaunch k;
  k.name = "dense";
  k.flops = p.flops();
  k.work_items = p.batch * p.out_features;
  k.work_group_size = static_cast<int>(
      std::min<int64_t>(k.work_items, dev.simd_width * 4));
  k.compute_efficiency = 0.55;  // GEMV-like: mostly bandwidth bound anyway
  k.dram_read_bytes = 4 * (p.batch * p.in_features +
                           p.out_features * p.in_features);
  k.dram_write_bytes = 4 * p.batch * p.out_features;
  return k;
}

Tensor pool2d_reference(const Tensor& input, const Pool2dParams& p) {
  IGC_CHECK_EQ(input.shape().ndim(), 4);
  const int64_t n = input.shape()[0];
  const int64_t c = input.shape()[1];
  const int64_t h = input.shape()[2];
  const int64_t w = input.shape()[3];
  const int64_t oh = p.out_dim(h);
  const int64_t ow = p.out_dim(w);
  IGC_CHECK_GT(oh, 0);
  IGC_CHECK_GT(ow, 0);
  Tensor out(Shape{n, c, oh, ow}, DType::kFloat32);
  const float* in = input.data_f32();
  float* o = out.data_f32();
  ThreadPool::global().parallel_for(n * c, [&](int64_t idx) {
    const float* plane = in + idx * h * w;
    float* oplane = o + idx * oh * ow;
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t x = 0; x < ow; ++x) {
        float acc = (p.kind == PoolKind::kMax)
                        ? -std::numeric_limits<float>::infinity()
                        : 0.0f;
        int64_t count = 0;
        for (int64_t ky = 0; ky < p.kernel; ++ky) {
          const int64_t iy = y * p.stride + ky - p.pad;
          if (iy < 0 || iy >= h) continue;
          for (int64_t kx = 0; kx < p.kernel; ++kx) {
            const int64_t ix = x * p.stride + kx - p.pad;
            if (ix < 0 || ix >= w) continue;
            const float v = plane[iy * w + ix];
            if (p.kind == PoolKind::kMax) {
              acc = std::max(acc, v);
            } else {
              acc += v;
            }
            ++count;
          }
        }
        if (p.kind == PoolKind::kAvg) {
          const int64_t denom =
              p.count_include_pad ? p.kernel * p.kernel : std::max<int64_t>(count, 1);
          acc /= static_cast<float>(denom);
        }
        oplane[y * ow + x] = acc;
      }
    }
  });
  return out;
}

Tensor global_avg_pool_reference(const Tensor& input) {
  IGC_CHECK_EQ(input.shape().ndim(), 4);
  const int64_t n = input.shape()[0];
  const int64_t c = input.shape()[1];
  const int64_t hw = input.shape()[2] * input.shape()[3];
  Tensor out(Shape{n, c, 1, 1}, DType::kFloat32);
  const float* in = input.data_f32();
  float* o = out.data_f32();
  for (int64_t i = 0; i < n * c; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < hw; ++j) acc += in[i * hw + j];
    o[i] = static_cast<float>(acc / static_cast<double>(hw));
  }
  return out;
}

sim::KernelLaunch pool2d_kernel_cost(const Shape& in_shape, const Pool2dParams& p) {
  const int64_t n = in_shape[0], c = in_shape[1], h = in_shape[2], w = in_shape[3];
  const int64_t oh = p.out_dim(h), ow = p.out_dim(w);
  sim::KernelLaunch k;
  k.name = "pool2d";
  k.flops = n * c * oh * ow * p.kernel * p.kernel;
  k.work_items = n * c * oh * ow;
  k.work_group_size = 64;
  k.compute_efficiency = 0.5;
  k.dram_read_bytes = 4 * n * c * h * w;
  k.dram_write_bytes = 4 * n * c * oh * ow;
  return k;
}

Tensor batch_norm_reference(const Tensor& input, const Tensor& gamma,
                            const Tensor& beta, const Tensor& mean,
                            const Tensor& var, const BatchNormParams& p) {
  Tensor scale, shift;
  fold_batch_norm(gamma, beta, mean, var, p.epsilon, &scale, &shift);
  return scale_shift_reference(input, scale, shift);
}

void fold_batch_norm(const Tensor& gamma, const Tensor& beta,
                     const Tensor& mean, const Tensor& var, float epsilon,
                     Tensor* scale, Tensor* shift) {
  const int64_t c = gamma.numel();
  IGC_CHECK_EQ(beta.numel(), c);
  IGC_CHECK_EQ(mean.numel(), c);
  IGC_CHECK_EQ(var.numel(), c);
  *scale = Tensor(Shape{c}, DType::kFloat32);
  *shift = Tensor(Shape{c}, DType::kFloat32);
  for (int64_t i = 0; i < c; ++i) {
    const float inv_std =
        1.0f / std::sqrt(var.data_f32()[i] + epsilon);
    scale->data_f32()[i] = gamma.data_f32()[i] * inv_std;
    shift->data_f32()[i] =
        beta.data_f32()[i] - gamma.data_f32()[i] * mean.data_f32()[i] * inv_std;
  }
}

Tensor activation_reference(const Tensor& input, Activation act, float alpha) {
  Tensor out(input.shape(), DType::kFloat32);
  const float* in = input.data_f32();
  float* o = out.data_f32();
  const int64_t n = input.numel();
  switch (act) {
    case Activation::kRelu:
      for (int64_t i = 0; i < n; ++i) o[i] = std::max(0.0f, in[i]);
      break;
    case Activation::kLeakyRelu:
      for (int64_t i = 0; i < n; ++i)
        o[i] = in[i] > 0.0f ? in[i] : alpha * in[i];
      break;
    case Activation::kSigmoid:
      for (int64_t i = 0; i < n; ++i) o[i] = 1.0f / (1.0f + std::exp(-in[i]));
      break;
  }
  return out;
}

Tensor add_reference(const Tensor& a, const Tensor& b) {
  IGC_CHECK(a.shape() == b.shape());
  Tensor out(a.shape(), DType::kFloat32);
  const float* pa = a.data_f32();
  const float* pb = b.data_f32();
  float* o = out.data_f32();
  for (int64_t i = 0; i < a.numel(); ++i) o[i] = pa[i] + pb[i];
  return out;
}

Tensor scale_shift_reference(const Tensor& input, const Tensor& scale,
                             const Tensor& shift) {
  IGC_CHECK_EQ(input.shape().ndim(), 4);
  const int64_t n = input.shape()[0];
  const int64_t c = input.shape()[1];
  const int64_t hw = input.shape()[2] * input.shape()[3];
  IGC_CHECK_EQ(scale.numel(), c);
  IGC_CHECK_EQ(shift.numel(), c);
  Tensor out(input.shape(), DType::kFloat32);
  const float* in = input.data_f32();
  const float* sc = scale.data_f32();
  const float* sh = shift.data_f32();
  float* o = out.data_f32();
  for (int64_t in_idx = 0; in_idx < n; ++in_idx) {
    for (int64_t ci = 0; ci < c; ++ci) {
      const float s = sc[ci];
      const float t = sh[ci];
      const float* src = in + (in_idx * c + ci) * hw;
      float* dst = o + (in_idx * c + ci) * hw;
      for (int64_t j = 0; j < hw; ++j) dst[j] = src[j] * s + t;
    }
  }
  return out;
}

Tensor concat_channels_reference(const std::vector<Tensor>& inputs) {
  IGC_CHECK(!inputs.empty());
  const int64_t n = inputs[0].shape()[0];
  const int64_t h = inputs[0].shape()[2];
  const int64_t w = inputs[0].shape()[3];
  int64_t total_c = 0;
  for (const Tensor& t : inputs) {
    IGC_CHECK_EQ(t.shape().ndim(), 4);
    IGC_CHECK_EQ(t.shape()[0], n);
    IGC_CHECK_EQ(t.shape()[2], h);
    IGC_CHECK_EQ(t.shape()[3], w);
    total_c += t.shape()[1];
  }
  Tensor out(Shape{n, total_c, h, w}, DType::kFloat32);
  float* o = out.data_f32();
  for (int64_t in_idx = 0; in_idx < n; ++in_idx) {
    int64_t c_off = 0;
    for (const Tensor& t : inputs) {
      const int64_t c = t.shape()[1];
      const float* src = t.data_f32() + in_idx * c * h * w;
      std::copy(src, src + c * h * w,
                o + (in_idx * total_c + c_off) * h * w);
      c_off += c;
    }
  }
  return out;
}

Tensor softmax_reference(const Tensor& input) {
  const int ndim = input.shape().ndim();
  IGC_CHECK_GE(ndim, 1);
  const int64_t last = input.shape()[ndim - 1];
  const int64_t rows = input.numel() / last;
  Tensor out(input.shape(), DType::kFloat32);
  const float* in = input.data_f32();
  float* o = out.data_f32();
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = in + r * last;
    float* dst = o + r * last;
    const float m = *std::max_element(src, src + last);
    double sum = 0.0;
    for (int64_t i = 0; i < last; ++i) {
      dst[i] = std::exp(src[i] - m);
      sum += dst[i];
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (int64_t i = 0; i < last; ++i) dst[i] *= inv;
  }
  return out;
}

Tensor upsample2x_reference(const Tensor& input) {
  IGC_CHECK_EQ(input.shape().ndim(), 4);
  const int64_t n = input.shape()[0];
  const int64_t c = input.shape()[1];
  const int64_t h = input.shape()[2];
  const int64_t w = input.shape()[3];
  Tensor out(Shape{n, c, 2 * h, 2 * w}, DType::kFloat32);
  const float* in = input.data_f32();
  float* o = out.data_f32();
  for (int64_t p = 0; p < n * c; ++p) {
    const float* src = in + p * h * w;
    float* dst = o + p * 4 * h * w;
    for (int64_t y = 0; y < 2 * h; ++y) {
      for (int64_t x = 0; x < 2 * w; ++x) {
        dst[y * 2 * w + x] = src[(y / 2) * w + (x / 2)];
      }
    }
  }
  return out;
}

sim::KernelLaunch elementwise_kernel_cost(const std::string& name, int64_t numel,
                                          int inputs_per_elem,
                                          int64_t flops_per_elem) {
  sim::KernelLaunch k;
  k.name = name;
  k.flops = numel * flops_per_elem;
  k.work_items = numel;
  k.work_group_size = 64;
  k.compute_efficiency = 0.6;  // bandwidth bound in practice
  k.dram_read_bytes = 4 * numel * inputs_per_elem;
  k.dram_write_bytes = 4 * numel;
  return k;
}

}  // namespace igc::ops
