#include "ops/nn/ir_kernels.h"

#include "core/error.h"
#include "ir/simplify.h"

namespace igc::ops {

using namespace igc::ir;  // NOLINT

ir::LoweredKernel depthwise_build_ir(const Conv2dParams& p,
                                     const tune::ScheduleConfig& cfg) {
  p.validate();
  IGC_CHECK(p.is_depthwise());
  const int64_t oh = p.out_h();
  const int64_t ow = p.out_w();
  const int64_t tile_ow = cfg.get_or("tile_ow", 1);
  IGC_CHECK_EQ(ow % tile_ow, 0);

  LoweredKernel k;
  k.name = "depthwise_conv2d_kernel";
  k.params = {
      {"data", DType::kFloat32, p.batch * p.in_channels * p.in_h * p.in_w,
       false},
      {"weight", DType::kFloat32, p.out_channels * p.kernel_h * p.kernel_w,
       false},
      {"out", DType::kFloat32, p.batch * p.out_channels * oh * ow, true},
  };

  // n, c -> blocks; rows -> blockX; column strips -> threads (the lanes run
  // adjacent columns of the same channel, the specialization's point).
  auto vn = var("n");
  auto vc = var("c");
  auto vy = var("y");
  auto vxo = var("x_o");
  auto vxi = var("x_i");
  auto vky = var("ky");
  auto vkx = var("kx");

  auto x = add(mul(vxo, imm(tile_ow)), vxi);
  auto iy = add(mul(vy, imm(p.stride_h)), sub(vky, imm(p.pad_h)));
  auto ix = add(mul(x, imm(p.stride_w)), sub(vkx, imm(p.pad_w)));
  auto in_bounds = logical_and(
      logical_and(binary(BinOp::kGE, iy, imm(0)), lt(iy, imm(p.in_h))),
      logical_and(binary(BinOp::kGE, ix, imm(0)), lt(ix, imm(p.in_w))));

  auto data_idx = add(
      mul(add(mul(add(mul(vn, imm(p.in_channels)), vc), imm(p.in_h)), iy),
          imm(p.in_w)),
      ix);
  auto weight_idx =
      add(mul(add(mul(vc, imm(p.kernel_h)), vky), imm(p.kernel_w)), vkx);
  auto out_idx = add(
      mul(add(mul(add(mul(vn, imm(p.out_channels)), vc), imm(oh)), vy),
          imm(ow)),
      x);

  auto contribution =
      select(in_bounds, mul(load("data", data_idx), load("weight", weight_idx)),
             fimm(0.0));
  StmtPtr acc_update =
      make_assign("acc", add(var("acc", DType::kFloat32), contribution));
  StmtPtr loop_kx =
      make_for({"kx", p.kernel_w, IterKind::kUnrolled}, {acc_update});
  StmtPtr loop_ky = make_for({"ky", p.kernel_h, IterKind::kUnrolled}, {loop_kx});

  std::vector<StmtPtr> strip{
      make_decl_local("acc", DType::kFloat32, fimm(0.0)),
      loop_ky,
      make_store("out", out_idx, var("acc", DType::kFloat32)),
  };
  StmtPtr loop_xi = make_for({"x_i", tile_ow, IterKind::kSerial}, strip);
  StmtPtr loop_xo =
      make_for({"x_o", ow / tile_ow, IterKind::kThreadX}, {loop_xi});
  StmtPtr loop_y = make_for({"y", oh, IterKind::kBlockX}, {loop_xo});
  StmtPtr loop_c =
      make_for({"c", p.in_channels, IterKind::kBlockY}, {loop_y});
  StmtPtr loop_n = make_for({"n", p.batch, IterKind::kBlockZ}, {loop_c});
  k.body = {make_comment("depthwise conv2d, schedule: " + cfg.str()), loop_n};
  return ir::simplify(k);
}

ir::LoweredKernel relu_build_ir(int64_t numel, int64_t vec) {
  IGC_CHECK_GT(numel, 0);
  IGC_CHECK_EQ(numel % vec, 0);
  LoweredKernel k;
  k.name = "relu_kernel";
  k.params = {{"data", DType::kFloat32, numel, false},
              {"out", DType::kFloat32, numel, true}};
  auto gi = var("g");
  auto vi = var("v");
  auto idx = add(mul(gi, imm(vec)), vi);
  StmtPtr body = make_store(
      "out", idx, max_e(load("data", idx), fimm(0.0)));
  StmtPtr loop_v = make_for({"v", vec, IterKind::kVectorized}, {body});
  StmtPtr loop_g = make_for({"g", numel / vec, IterKind::kBlockX}, {loop_v});
  k.body = {loop_g};
  return ir::simplify(k);
}

ir::LoweredKernel add_build_ir(int64_t numel, bool fused_relu, int64_t vec) {
  IGC_CHECK_GT(numel, 0);
  IGC_CHECK_EQ(numel % vec, 0);
  LoweredKernel k;
  k.name = fused_relu ? "add_relu_kernel" : "add_kernel";
  k.params = {{"a", DType::kFloat32, numel, false},
              {"b", DType::kFloat32, numel, false},
              {"out", DType::kFloat32, numel, true}};
  auto gi = var("g");
  auto vi = var("v");
  auto idx = add(mul(gi, imm(vec)), vi);
  ExprPtr sum = add(load("a", idx), load("b", idx));
  if (fused_relu) sum = max_e(std::move(sum), fimm(0.0));
  StmtPtr body = make_store("out", idx, std::move(sum));
  StmtPtr loop_v = make_for({"v", vec, IterKind::kVectorized}, {body});
  StmtPtr loop_g = make_for({"g", numel / vec, IterKind::kBlockX}, {loop_v});
  k.body = {loop_g};
  return ir::simplify(k);
}

ir::LoweredKernel scale_shift_build_ir(int64_t n, int64_t c, int64_t hw) {
  LoweredKernel k;
  k.name = "scale_shift_kernel";
  k.params = {{"data", DType::kFloat32, n * c * hw, false},
              {"scale", DType::kFloat32, c, false},
              {"shift", DType::kFloat32, c, false},
              {"out", DType::kFloat32, n * c * hw, true}};
  auto vn = var("n");
  auto vc = var("c");
  auto vi = var("i");
  auto idx = add(mul(add(mul(vn, imm(c)), vc), imm(hw)), vi);
  StmtPtr body = make_store(
      "out", idx,
      add(mul(load("data", idx), load("scale", vc)), load("shift", vc)));
  StmtPtr loop_i = make_for({"i", hw, IterKind::kThreadX}, {body});
  StmtPtr loop_c = make_for({"c", c, IterKind::kBlockX}, {loop_i});
  StmtPtr loop_n = make_for({"n", n, IterKind::kBlockY}, {loop_c});
  k.body = {loop_n};
  return ir::simplify(k);
}

}  // namespace igc::ops
