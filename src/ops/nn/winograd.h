// Winograd F(2x2, 3x3) convolution — the alternative main template the
// paper's pipeline switches to "whenever there is a headroom for performance
// improvement" (Sec. 3.2.2). For unit-stride 3x3 convolutions, Winograd
// replaces the 9 multiply-adds per output with 4 at the price of input /
// weight / output transforms, which pays off on wide-channel layers but
// loses on narrow or memory-bound ones — exactly the trade-off the tuner
// arbitrates (see ops::conv2d_best_algorithm).
#pragma once

#include "sim/device_spec.h"
#include "sim/timing_model.h"
#include "ops/nn/conv2d.h"
#include "tensor/tensor.h"
#include "tune/config.h"
#include "tune/tuner.h"

namespace igc::ops {

/// True when this workload can run the F(2x2,3x3) kernel: 3x3, stride 1,
/// non-grouped.
bool winograd_applicable(const Conv2dParams& p);

/// Functional Winograd convolution; numerically equivalent to
/// conv2d_reference up to fp reassociation (~1e-4 for unit-scale data).
Tensor conv2d_winograd(const Tensor& input, const Tensor& weight,
                       const Tensor* bias, const Conv2dParams& p);

/// Schedule knobs for the Winograd kernel (tile counts per work item and
/// vectorization of the batched-GEMM stage).
tune::ConfigSpace winograd_config_space(const Conv2dParams& p,
                                        const sim::DeviceSpec& dev);

/// Analytic cost (all four stages: input transform, filter transform —
/// amortized, batched GEMM over the 16 tap matrices, output transform).
sim::KernelLaunch winograd_kernel_cost(const Conv2dParams& p,
                                       const tune::ScheduleConfig& cfg,
                                       const sim::DeviceSpec& dev);

double winograd_latency_ms(const Conv2dParams& p,
                           const tune::ScheduleConfig& cfg,
                           const sim::DeviceSpec& dev);

/// Which algorithm the tuned stack would pick for a workload on a device:
/// compares the tuned direct template against the tuned Winograd template.
enum class ConvAlgorithm { kDirect, kWinograd };
struct AlgorithmChoice {
  ConvAlgorithm algorithm = ConvAlgorithm::kDirect;
  double direct_ms = 0.0;
  double winograd_ms = 0.0;  // +inf when not applicable
};
AlgorithmChoice conv2d_best_algorithm(const Conv2dParams& p,
                                      const sim::DeviceSpec& dev,
                                      const tune::TuneOptions& opts);

}  // namespace igc::ops
