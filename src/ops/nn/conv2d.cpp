#include "ops/nn/conv2d.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/error.h"
#include "core/thread_pool.h"
#include "ir/simplify.h"

namespace igc::ops {

void Conv2dParams::validate() const {
  IGC_CHECK_GT(batch, 0);
  IGC_CHECK_GT(in_channels, 0);
  IGC_CHECK_GT(out_channels, 0);
  IGC_CHECK_GT(groups, 0);
  IGC_CHECK_EQ(in_channels % groups, 0);
  IGC_CHECK_EQ(out_channels % groups, 0);
  IGC_CHECK_GT(out_h(), 0);
  IGC_CHECK_GT(out_w(), 0);
}

std::string Conv2dParams::workload_key() const {
  std::ostringstream os;
  os << "conv2d_n" << batch << "_ci" << in_channels << "_h" << in_h << "_w"
     << in_w << "_co" << out_channels << "_k" << kernel_h << "x" << kernel_w
     << "_s" << stride_h << "x" << stride_w << "_p" << pad_h << "x" << pad_w
     << "_g" << groups;
  return os.str();
}

Tensor conv2d_reference(const Tensor& input, const Tensor& weight,
                        const Tensor* bias, const Conv2dParams& p) {
  p.validate();
  IGC_CHECK(input.shape() == Shape({p.batch, p.in_channels, p.in_h, p.in_w}))
      << "input shape " << input.shape().str();
  const int64_t cig = p.in_channels / p.groups;
  const int64_t cog = p.out_channels / p.groups;
  IGC_CHECK(weight.shape() ==
            Shape({p.out_channels, cig, p.kernel_h, p.kernel_w}))
      << "weight shape " << weight.shape().str();
  const int64_t oh = p.out_h();
  const int64_t ow = p.out_w();
  Tensor out(Shape{p.batch, p.out_channels, oh, ow}, DType::kFloat32);

  const float* in = input.data_f32();
  const float* wt = weight.data_f32();
  const float* bs = bias ? bias->data_f32() : nullptr;
  float* o = out.data_f32();

  // Parallelize over (batch, out_channel); each iteration writes a disjoint
  // output plane.
  ThreadPool::global().parallel_for(p.batch * p.out_channels, [&](int64_t idx) {
    const int64_t n = idx / p.out_channels;
    const int64_t co = idx % p.out_channels;
    const int64_t g = co / cog;
    for (int64_t y = 0; y < oh; ++y) {
      for (int64_t x = 0; x < ow; ++x) {
        float acc = bs ? bs[co] : 0.0f;
        for (int64_t ci = 0; ci < cig; ++ci) {
          const int64_t in_c = g * cig + ci;
          for (int64_t ky = 0; ky < p.kernel_h; ++ky) {
            const int64_t iy = y * p.stride_h + ky - p.pad_h;
            if (iy < 0 || iy >= p.in_h) continue;
            for (int64_t kx = 0; kx < p.kernel_w; ++kx) {
              const int64_t ix = x * p.stride_w + kx - p.pad_w;
              if (ix < 0 || ix >= p.in_w) continue;
              acc += in[((n * p.in_channels + in_c) * p.in_h + iy) * p.in_w + ix] *
                     wt[((co * cig + ci) * p.kernel_h + ky) * p.kernel_w + kx];
            }
          }
        }
        o[((n * p.out_channels + co) * oh + y) * ow + x] = acc;
      }
    }
  });
  return out;
}

tune::ConfigSpace conv2d_config_space(const Conv2dParams& p,
                                      const sim::DeviceSpec& dev) {
  p.validate();
  tune::ConfigSpace space;
  const int64_t cog = p.out_channels / p.groups;
  // Heuristic 1 (Sec. 3.2.2): divide output channels into parallel groups.
  space.add_knob("tile_oc", tune::tile_candidates(cog, 64));
  // Heuristic 2: split the feature map along height (and width).
  space.add_knob("tile_oh", tune::tile_candidates(p.out_h(), 8));
  space.add_knob("tile_ow", tune::tile_candidates(p.out_w(), 16));
  // Heuristic 3: unroll the kernel loops.
  space.add_knob("unroll", {1, 2, 4, 8});
  // SIMD vectorization width (lanes of the innermost axis).
  std::vector<int64_t> vec{1, 2, 4};
  if (dev.simd_width >= 8) vec.push_back(8);
  if (dev.simd_width >= 16) vec.push_back(16);
  if (dev.simd_width >= 32) vec.push_back(32);
  space.add_knob("vec", std::move(vec));
  // Work-group size.
  space.add_knob("wg", {32, 64, 128, 256});
  // Intel subgroup usage (Sec. 3.2.1). Non-Intel devices only get 0.
  if (dev.has_subgroups) {
    space.add_knob("use_subgroup", {0, 1});
  } else {
    space.add_knob("use_subgroup", {0});
  }
  return space;
}

tune::ScheduleConfig conv2d_manual_schedule(const Conv2dParams& p,
                                            const sim::DeviceSpec& dev) {
  p.validate();
  const int64_t cog = p.out_channels / p.groups;
  auto largest_divisor_leq = [](int64_t extent, int64_t cap) {
    int64_t best = 1;
    for (int64_t t : tune::tile_candidates(extent, cap)) best = t;
    return best;
  };
  tune::ScheduleConfig cfg;
  // Written once for big server-GPU convolutions: moderate channel tile,
  // a row of output pixels per thread, vec4 loads, 256-wide work groups.
  cfg.set("tile_oc", largest_divisor_leq(cog, 8));
  cfg.set("tile_oh", 1);
  cfg.set("tile_ow", largest_divisor_leq(p.out_w(), 4));
  cfg.set("unroll", 1);
  cfg.set("vec", std::min<int64_t>(4, dev.simd_width));
  cfg.set("wg", 256);
  cfg.set("use_subgroup", 0);  // the generic template predates the extension
  cfg.set("layout_block", 1);  // plain NCHW
  return cfg;
}

sim::KernelLaunch conv2d_kernel_cost(const Conv2dParams& p,
                                     const tune::ScheduleConfig& cfg,
                                     const sim::DeviceSpec& dev) {
  p.validate();
  const int64_t tile_oc = cfg.at("tile_oc");
  const int64_t tile_oh = cfg.at("tile_oh");
  const int64_t tile_ow = cfg.at("tile_ow");
  const int64_t unroll = cfg.at("unroll");
  const int64_t vec = cfg.at("vec");
  const int64_t wg = cfg.at("wg");
  const bool use_subgroup = cfg.get_or("use_subgroup", 0) != 0;

  const int64_t oh = p.out_h();
  const int64_t ow = p.out_w();
  const int64_t cog = p.out_channels / p.groups;
  const int64_t cig = p.in_channels / p.groups;

  sim::KernelLaunch k;
  k.name = p.workload_key();
  k.flops = p.flops();

  // One work item computes a (tile_oc x tile_oh x tile_ow) register tile.
  const int64_t oc_blocks = (cog + tile_oc - 1) / tile_oc;
  const int64_t oh_blocks = (oh + tile_oh - 1) / tile_oh;
  const int64_t ow_blocks = (ow + tile_ow - 1) / tile_ow;
  k.work_items = p.batch * p.groups * oc_blocks * oh_blocks * ow_blocks;
  k.work_group_size = static_cast<int>(std::min<int64_t>(wg, k.work_items));

  // --- register footprint: accumulators + an input slice + a weight slice.
  const int64_t acc_bytes = 4 * tile_oc * tile_oh * tile_ow;
  const int64_t in_slice_bytes =
      4 * (tile_oh * p.stride_h + p.kernel_h - 1) *
      (tile_ow * p.stride_w + p.kernel_w - 1);
  const int64_t wt_slice_bytes = 4 * tile_oc * p.kernel_w;
  int64_t reg_bytes = acc_bytes + in_slice_bytes + wt_slice_bytes;
  // Subgroups pool the GRFs of the hardware thread across its work items,
  // which is exactly why they help on Intel (Sec. 3.2.1).
  int64_t reg_budget = dev.register_bytes_per_thread;
  if (!use_subgroup && dev.has_subgroups) {
    reg_budget /= dev.simd_width;  // per virtual thread without sharing
  } else if (!dev.has_subgroups) {
    reg_budget = dev.register_bytes_per_thread;
  }
  const bool spills = reg_bytes > reg_budget;

  // --- compute efficiency factors.
  // Vectorization: matching the native SIMD width keeps all lanes busy.
  const double vmatch =
      static_cast<double>(std::min<int64_t>(vec, dev.simd_width)) /
      static_cast<double>(dev.simd_width);
  const double eff_vec = 0.30 + 0.70 * vmatch;
  // Register tiling: more work per item amortizes address arithmetic and
  // enables FMA chains, until the tile spills.
  const double work = static_cast<double>(tile_oc * tile_oh * tile_ow);
  double eff_tile = work / (work + 6.0);
  if (spills) eff_tile *= 0.45;
  // Unrolling: removes loop overhead; extreme unrolling hurts icache.
  double eff_unroll = 1.0;
  if (unroll == 1) eff_unroll = 0.82;
  else if (unroll == 8) eff_unroll = 0.93;
  // Reduction length: very short reductions (1x1 conv on few channels,
  // depthwise) cannot fill the FMA pipeline.
  const double red = static_cast<double>(cig * p.kernel_h * p.kernel_w);
  const double eff_red = red / (red + 4.0);
  // 1x1 kernels reuse each loaded input element across only the channel
  // tile (no spatial window reuse in registers), so they run a notch below
  // 3x3 kernels at equal FLOPs — visible on every real GPU library.
  const double eff_kernel = (p.kernel_h * p.kernel_w > 1) ? 1.0 : 0.72;

  double eff = eff_vec * eff_tile * eff_unroll * eff_red * eff_kernel;
  if (use_subgroup) {
    // Data broadcast within the hardware thread via GRFs removes redundant
    // loads; only profitable with enough channel tiling to share.
    eff *= (tile_oc >= 4) ? 1.30 : 1.05;
  }
  if (!dev.has_shared_local_mem && wg > 64) {
    // Mali Midgard: large work-groups thrash without SLM backing.
    eff *= 0.80;
  }
  // Channel-blocked layouts (NCHW[x]c, chosen by the graph tuner) keep the
  // innermost dimension contiguous for SIMD loads.
  const int64_t layout_block = cfg.get_or("layout_block", 1);
  if (layout_block >= 4) {
    eff *= 1.12;
  } else if (layout_block == 1 && vec > 1) {
    // Vectorizing across strided NCHW channels costs gather overhead.
    eff *= 0.92;
  }
  if (p.is_depthwise() && dev.vendor == sim::Vendor::kIntel) {
    // Our depthwise schedule template is not specialized for Intel Graphics
    // (explicitly called out as future work in Sec. 4.2): no subgroup data
    // sharing, strided per-channel accesses on a SIMD-8 EU. This is what
    // makes MobileNet on DeepLens the one model we lose (Table 1, 0.62x).
    eff *= 0.03;
  }
  k.compute_efficiency = std::min(eff, 1.0);

  // --- DRAM traffic: ideal single-touch traffic inflated by imperfect reuse.
  const int64_t in_bytes = 4 * p.batch * p.in_channels * p.in_h * p.in_w;
  const int64_t wt_bytes = 4 * p.out_channels * cig * p.kernel_h * p.kernel_w;
  const int64_t out_bytes = 4 * p.batch * p.out_channels * oh * ow;
  // Each input element is re-read once per output-channel block not cached;
  // caches absorb most of it, modeled as a sub-linear factor.
  const double in_refetch = std::pow(static_cast<double>(oc_blocks), 0.15);
  const double wt_refetch =
      std::pow(static_cast<double>(oh_blocks * ow_blocks), 0.10);
  const double spill_mult = spills ? 1.8 : 1.0;
  k.dram_read_bytes = static_cast<int64_t>(
      (static_cast<double>(in_bytes) * in_refetch +
       static_cast<double>(wt_bytes) * wt_refetch) *
      spill_mult);
  k.dram_write_bytes = out_bytes;
  return k;
}

double conv2d_latency_ms(const Conv2dParams& p, const tune::ScheduleConfig& cfg,
                         const sim::DeviceSpec& dev) {
  return sim::estimate_latency_ms(dev, conv2d_kernel_cost(p, cfg, dev));
}

ir::LoweredKernel conv2d_build_ir(const Conv2dParams& p,
                                  const tune::ScheduleConfig& cfg) {
  using namespace ir;  // NOLINT
  p.validate();
  IGC_CHECK_EQ(p.groups, 1) << "IR lowering supports non-grouped conv";
  const int64_t oh = p.out_h();
  const int64_t ow = p.out_w();
  const int64_t tile_oc = cfg.at("tile_oc");
  const int64_t tile_ow = cfg.at("tile_ow");
  IGC_CHECK_EQ(p.out_channels % tile_oc, 0);
  IGC_CHECK_EQ(ow % tile_ow, 0);

  LoweredKernel k;
  k.name = "conv2d_kernel";
  k.params = {
      {"data", DType::kFloat32, p.batch * p.in_channels * p.in_h * p.in_w, false},
      {"weight", DType::kFloat32,
       p.out_channels * p.in_channels * p.kernel_h * p.kernel_w, false},
      {"out", DType::kFloat32, p.batch * p.out_channels * oh * ow, true},
  };

  // Loop structure (outer to inner):
  //   n      -> blockIdx.z
  //   oc_o   -> blockIdx.y      (output-channel blocks: heuristic 1)
  //   y      -> blockIdx.x      (feature-map rows: heuristic 2)
  //   x_o    -> threadIdx.x     (row chunks across the work-group)
  //   oc_i   -> vectorized      (SIMD lanes over the channel tile)
  //   x_i    -> serial          (register tile columns)
  //   ci, ky, kx -> serial/unrolled reduction
  auto vn = var("n");
  auto voco = var("oc_o");
  auto vy = var("y");
  auto vxo = var("x_o");
  auto voci = var("oc_i");
  auto vxi = var("x_i");
  auto vci = var("ci");
  auto vky = var("ky");
  auto vkx = var("kx");

  auto oc = add(mul(voco, imm(tile_oc)), voci);
  auto x = add(mul(vxo, imm(tile_ow)), vxi);
  auto iy = add(mul(vy, imm(p.stride_h)), sub(vky, imm(p.pad_h)));
  auto ix = add(mul(x, imm(p.stride_w)), sub(vkx, imm(p.pad_w)));

  auto in_bounds = logical_and(
      logical_and(binary(BinOp::kGE, iy, imm(0)), lt(iy, imm(p.in_h))),
      logical_and(binary(BinOp::kGE, ix, imm(0)), lt(ix, imm(p.in_w))));

  auto data_idx = add(
      mul(add(mul(add(mul(vn, imm(p.in_channels)), vci), imm(p.in_h)), iy),
          imm(p.in_w)),
      ix);
  auto weight_idx =
      add(mul(add(mul(add(mul(oc, imm(p.in_channels)), vci), imm(p.kernel_h)),
                  vky),
              imm(p.kernel_w)),
          vkx);
  auto out_idx = add(
      mul(add(mul(add(mul(vn, imm(p.out_channels)), oc), imm(oh)), vy),
          imm(ow)),
      x);

  // acc += select(in_bounds, data * weight, 0)
  auto contribution = select(
      in_bounds, mul(load("data", data_idx), load("weight", weight_idx)),
      fimm(0.0));
  StmtPtr accumulate = make_assign("acc", add(var("acc", DType::kFloat32),
                                              contribution));

  const IterKind kx_kind =
      cfg.at("unroll") > 1 ? IterKind::kUnrolled : IterKind::kSerial;
  StmtPtr loop_kx = make_for({"kx", p.kernel_w, kx_kind}, {accumulate});
  StmtPtr loop_ky = make_for({"ky", p.kernel_h, kx_kind}, {loop_kx});
  StmtPtr loop_ci = make_for({"ci", p.in_channels, IterKind::kSerial}, {loop_ky});

  std::vector<StmtPtr> tile_body{
      make_decl_local("acc", DType::kFloat32, fimm(0.0)),
      loop_ci,
      make_store("out", out_idx, var("acc", DType::kFloat32)),
  };

  StmtPtr loop_xi = make_for({"x_i", tile_ow, IterKind::kSerial}, tile_body);
  StmtPtr loop_oci =
      make_for({"oc_i", tile_oc, IterKind::kVectorized}, {loop_xi});
  StmtPtr loop_xo =
      make_for({"x_o", ow / tile_ow, IterKind::kThreadX}, {loop_oci});
  StmtPtr loop_y = make_for({"y", oh, IterKind::kBlockX}, {loop_xo});
  StmtPtr loop_oco =
      make_for({"oc_o", p.out_channels / tile_oc, IterKind::kBlockY}, {loop_y});
  StmtPtr loop_n = make_for({"n", p.batch, IterKind::kBlockZ}, {loop_oco});

  k.body = {make_comment("direct conv2d, schedule: " + cfg.str()), loop_n};
  // Clean up the index arithmetic (x*1, +0, foldable padding terms).
  return ir::simplify(k);
}

}  // namespace igc::ops
