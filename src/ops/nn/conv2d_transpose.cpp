#include "ops/nn/conv2d_transpose.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/error.h"
#include "core/thread_pool.h"

namespace igc::ops {

void Conv2dTransposeParams::validate() const {
  IGC_CHECK_GT(batch, 0);
  IGC_CHECK_GT(in_channels, 0);
  IGC_CHECK_GT(out_channels, 0);
  IGC_CHECK_GT(kernel, 0);
  IGC_CHECK_GT(stride, 0);
  IGC_CHECK_GE(pad, 0);
  IGC_CHECK_GT(out_h(), 0);
  IGC_CHECK_GT(out_w(), 0);
}

std::string Conv2dTransposeParams::workload_key() const {
  std::ostringstream os;
  os << "conv2d_transpose_n" << batch << "_ci" << in_channels << "_h" << in_h
     << "_w" << in_w << "_co" << out_channels << "_k" << kernel << "_s"
     << stride << "_p" << pad;
  return os.str();
}

Tensor conv2d_transpose_reference(const Tensor& input, const Tensor& weight,
                                  const Tensor* bias,
                                  const Conv2dTransposeParams& p) {
  p.validate();
  IGC_CHECK(input.shape() == Shape({p.batch, p.in_channels, p.in_h, p.in_w}));
  IGC_CHECK(weight.shape() ==
            Shape({p.in_channels, p.out_channels, p.kernel, p.kernel}));
  const int64_t oh = p.out_h();
  const int64_t ow = p.out_w();
  Tensor out(Shape{p.batch, p.out_channels, oh, ow}, DType::kFloat32);
  const float* in = input.data_f32();
  const float* wt = weight.data_f32();
  const float* bs = bias ? bias->data_f32() : nullptr;
  float* o = out.data_f32();

  // Gather formulation (race free): for each output element, sum the input
  // positions whose stamp covers it.
  ThreadPool::global().parallel_for(p.batch * p.out_channels, [&](int64_t idx) {
    const int64_t n = idx / p.out_channels;
    const int64_t co = idx % p.out_channels;
    for (int64_t oy = 0; oy < oh; ++oy) {
      for (int64_t ox = 0; ox < ow; ++ox) {
        float acc = bs ? bs[co] : 0.0f;
        for (int64_t ky = 0; ky < p.kernel; ++ky) {
          const int64_t ny = oy + p.pad - ky;
          if (ny % p.stride != 0) continue;
          const int64_t iy = ny / p.stride;
          if (iy < 0 || iy >= p.in_h) continue;
          for (int64_t kx = 0; kx < p.kernel; ++kx) {
            const int64_t nx = ox + p.pad - kx;
            if (nx % p.stride != 0) continue;
            const int64_t ix = nx / p.stride;
            if (ix < 0 || ix >= p.in_w) continue;
            for (int64_t ci = 0; ci < p.in_channels; ++ci) {
              acc += in[((n * p.in_channels + ci) * p.in_h + iy) * p.in_w + ix] *
                     wt[((ci * p.out_channels + co) * p.kernel + ky) * p.kernel +
                        kx];
            }
          }
        }
        o[((n * p.out_channels + co) * oh + oy) * ow + ox] = acc;
      }
    }
  });
  return out;
}

Tensor bilinear_upsample_weights(int64_t channels, int64_t kernel) {
  Tensor w = Tensor::zeros(Shape{channels, channels, kernel, kernel});
  // Classic FCN initialization: a separable triangular (bilinear) filter.
  const double f = static_cast<double>((kernel + 1) / 2);
  const double c = (kernel % 2 == 1) ? f - 1.0 : f - 0.5;
  for (int64_t ch = 0; ch < channels; ++ch) {
    for (int64_t y = 0; y < kernel; ++y) {
      for (int64_t x = 0; x < kernel; ++x) {
        const double vy = 1.0 - std::abs(static_cast<double>(y) - c) / f;
        const double vx = 1.0 - std::abs(static_cast<double>(x) - c) / f;
        w.data_f32()[((ch * channels + ch) * kernel + y) * kernel + x] =
            static_cast<float>(vy * vx);
      }
    }
  }
  return w;
}

sim::KernelLaunch conv2d_transpose_kernel_cost(const Conv2dTransposeParams& p,
                                               const sim::DeviceSpec& dev) {
  sim::KernelLaunch k;
  k.name = p.workload_key();
  k.flops = p.flops();
  k.work_items = p.batch * p.out_channels * p.out_h() * p.out_w() / 4;
  k.work_group_size = static_cast<int>(
      std::min<int64_t>(k.work_items, dev.simd_width * 4));
  // The gather pattern has stride-divisibility branches: mild divergence.
  k.compute_efficiency = 0.40;
  k.divergence_factor = 1.3;
  k.dram_read_bytes =
      4 * (p.batch * p.in_channels * p.in_h * p.in_w +
           p.in_channels * p.out_channels * p.kernel * p.kernel);
  k.dram_write_bytes = 4 * p.batch * p.out_channels * p.out_h() * p.out_w();
  return k;
}

}  // namespace igc::ops
