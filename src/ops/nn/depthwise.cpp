#include "ops/nn/depthwise.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace igc::ops {

bool depthwise_template_applicable(const Conv2dParams& p) {
  return p.is_depthwise();
}

tune::ConfigSpace depthwise_config_space(const Conv2dParams& p,
                                         const sim::DeviceSpec& dev) {
  IGC_CHECK(depthwise_template_applicable(p));
  tune::ConfigSpace space;
  // Lanes map across the width dimension: tile_ow is the per-thread strip.
  space.add_knob("tile_oh", tune::tile_candidates(p.out_h(), 8));
  space.add_knob("tile_ow", tune::tile_candidates(p.out_w(), 16));
  space.add_knob("unroll", {1, 2, 4});
  std::vector<int64_t> vec{1, 2, 4};
  if (dev.simd_width >= 8) vec.push_back(8);
  if (dev.simd_width >= 16) vec.push_back(16);
  if (dev.simd_width >= 32) vec.push_back(32);
  space.add_knob("vec", std::move(vec));
  space.add_knob("wg", {32, 64, 128});
  // Halo sharing across the hardware thread (Intel block reads).
  space.add_knob("use_subgroup", dev.has_subgroups
                                     ? std::vector<int64_t>{0, 1}
                                     : std::vector<int64_t>{0});
  return space;
}

sim::KernelLaunch depthwise_kernel_cost(const Conv2dParams& p,
                                        const tune::ScheduleConfig& cfg,
                                        const sim::DeviceSpec& dev) {
  IGC_CHECK(depthwise_template_applicable(p));
  const int64_t tile_oh = cfg.at("tile_oh");
  const int64_t tile_ow = cfg.at("tile_ow");
  const int64_t unroll = cfg.at("unroll");
  const int64_t vec = cfg.at("vec");
  const int64_t wg = cfg.at("wg");
  const bool use_subgroup = cfg.get_or("use_subgroup", 0) != 0;

  const int64_t oh = p.out_h();
  const int64_t ow = p.out_w();

  sim::KernelLaunch k;
  k.name = p.workload_key() + "_dwspecial";
  k.flops = p.flops();

  // One work item per (channel, spatial tile): lanes run adjacent columns of
  // the SAME channel, so SIMD utilization no longer depends on group width.
  const int64_t oh_blocks = (oh + tile_oh - 1) / tile_oh;
  const int64_t ow_blocks = (ow + tile_ow - 1) / tile_ow;
  k.work_items = p.batch * p.in_channels * oh_blocks * ow_blocks;
  k.work_group_size = static_cast<int>(std::min<int64_t>(wg, k.work_items));

  // Lanes cover the width strip: vectorization matches when the strip is at
  // least as wide as the SIMD unit.
  const double lane_cover =
      static_cast<double>(std::min<int64_t>(tile_ow * vec, dev.simd_width)) /
      static_cast<double>(dev.simd_width);
  const double eff_vec = 0.35 + 0.65 * lane_cover;
  const double work = static_cast<double>(tile_oh * tile_ow);
  double eff_tile = work / (work + 4.0);
  double eff_unroll = unroll == 1 ? 0.85 : 1.0;
  // Short 9-element reduction: unavoidable pipeline bubbles.
  const double eff_red = 0.80;
  double eff = eff_vec * eff_tile * eff_unroll * eff_red;
  if (use_subgroup) {
    // Halo rows shared through the GRFs: each input row is block-read once
    // per hardware thread instead of once per lane.
    eff *= 1.25;
  }
  if (!dev.has_shared_local_mem && wg > 64) eff *= 0.85;
  k.compute_efficiency = std::min(eff, 1.0);

  // Depthwise is memory bound: roughly one read + one write per element,
  // with halo overlap absorbed by the subgroup sharing.
  const int64_t in_bytes = 4 * p.batch * p.in_channels * p.in_h * p.in_w;
  const int64_t out_bytes = 4 * p.batch * p.out_channels * oh * ow;
  const double halo = use_subgroup ? 1.1 : 1.6;
  k.dram_read_bytes = static_cast<int64_t>(static_cast<double>(in_bytes) * halo);
  k.dram_write_bytes = out_bytes;
  return k;
}

double depthwise_latency_ms(const Conv2dParams& p,
                            const tune::ScheduleConfig& cfg,
                            const sim::DeviceSpec& dev) {
  return sim::estimate_latency_ms(dev, depthwise_kernel_cost(p, cfg, dev));
}

}  // namespace igc::ops
