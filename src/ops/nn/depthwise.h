// A depthwise-convolution schedule template specialized for Intel Graphics —
// the paper's explicitly stated future work (Sec. 4.2: "Optimizing
// depth-wise convolutions on Intel Graphics using our unified IR remains our
// future work"; the missing specialization is why MobileNet loses to
// OpenVINO in Table 1).
//
// The generic direct-conv template maps SIMD lanes across output channels of
// one group — for depthwise (one channel per group) that leaves 7 of 8 Intel
// lanes idle and defeats the subgroup block reads. This template instead
// maps lanes across *spatial* positions of one channel and uses
// intel_subgroup_block_read to share the 3x3 input halo inside the hardware
// thread, recovering regular-conv efficiency levels.
#pragma once

#include "ops/nn/conv2d.h"
#include "sim/device_spec.h"
#include "sim/timing_model.h"
#include "tune/config.h"

namespace igc::ops {

/// True for workloads this template accepts (depthwise only).
bool depthwise_template_applicable(const Conv2dParams& p);

/// Schedule space: spatial tiling, lane mapping, halo sharing via subgroups.
tune::ConfigSpace depthwise_config_space(const Conv2dParams& p,
                                         const sim::DeviceSpec& dev);

/// Analytic cost of the specialized template. Unlike conv2d_kernel_cost it
/// does NOT carry the Intel penalty: the specialization is the fix.
/// Depthwise remains memory-bound; the win is lane utilization.
sim::KernelLaunch depthwise_kernel_cost(const Conv2dParams& p,
                                        const tune::ScheduleConfig& cfg,
                                        const sim::DeviceSpec& dev);

double depthwise_latency_ms(const Conv2dParams& p,
                            const tune::ScheduleConfig& cfg,
                            const sim::DeviceSpec& dev);

}  // namespace igc::ops
