// The non-convolution neural-network operators used by the model zoo:
// dense (fully connected), pooling, batch norm, activations, elementwise
// arithmetic, concat, softmax, and nearest-neighbor upsampling (YOLOv3).
//
// Each operator has a reference implementation (ground truth) and a cost
// descriptor for the simulator. These ops are memory-bound on integrated
// GPUs; their schedules have a single elementwise template, so they carry no
// per-op config space.
#pragma once

#include <vector>

#include "sim/device_spec.h"
#include "sim/timing_model.h"
#include "tensor/tensor.h"

namespace igc::ops {

// ---- dense ------------------------------------------------------------

struct DenseParams {
  int64_t batch = 1;
  int64_t in_features = 1;
  int64_t out_features = 1;
  int64_t flops() const { return 2 * batch * in_features * out_features; }
};

/// input: (N, CI); weight: (CO, CI); bias: optional (CO). Returns (N, CO).
Tensor dense_reference(const Tensor& input, const Tensor& weight,
                       const Tensor* bias, const DenseParams& p);

sim::KernelLaunch dense_kernel_cost(const DenseParams& p,
                                    const sim::DeviceSpec& dev);

// ---- pooling ----------------------------------------------------------

enum class PoolKind { kMax, kAvg };

struct Pool2dParams {
  PoolKind kind = PoolKind::kMax;
  int64_t kernel = 2;
  int64_t stride = 2;
  int64_t pad = 0;
  /// Average pooling: divide by the full window even when clipped by padding
  /// (count_include_pad), matching the GluonCV default for these models.
  bool count_include_pad = false;

  int64_t out_dim(int64_t in) const { return (in + 2 * pad - kernel) / stride + 1; }
};

Tensor pool2d_reference(const Tensor& input, const Pool2dParams& p);

/// Global average pooling (N, C, H, W) -> (N, C, 1, 1).
Tensor global_avg_pool_reference(const Tensor& input);

sim::KernelLaunch pool2d_kernel_cost(const Shape& in_shape, const Pool2dParams& p);

// ---- batch norm (inference) --------------------------------------------

struct BatchNormParams {
  float epsilon = 1e-5f;
};

/// y = gamma * (x - mean) / sqrt(var + eps) + beta, per channel (dim 1).
Tensor batch_norm_reference(const Tensor& input, const Tensor& gamma,
                            const Tensor& beta, const Tensor& mean,
                            const Tensor& var, const BatchNormParams& p);

/// Folds BN into an affine (scale, shift) per channel — the graph-level
/// "simplify inference" optimization (Sec. 3.2.3).
void fold_batch_norm(const Tensor& gamma, const Tensor& beta,
                     const Tensor& mean, const Tensor& var, float epsilon,
                     Tensor* scale, Tensor* shift);

// ---- activations & elementwise -----------------------------------------

enum class Activation { kRelu, kLeakyRelu, kSigmoid };

Tensor activation_reference(const Tensor& input, Activation act,
                            float alpha = 0.1f);

/// Elementwise binary add (residual connections). Shapes must match.
Tensor add_reference(const Tensor& a, const Tensor& b);

/// Per-channel affine: y[n,c,h,w] = x[n,c,h,w] * scale[c] + shift[c].
Tensor scale_shift_reference(const Tensor& input, const Tensor& scale,
                             const Tensor& shift);

/// Channel concat of NCHW tensors along dim 1.
Tensor concat_channels_reference(const std::vector<Tensor>& inputs);

/// Softmax over the last dimension.
Tensor softmax_reference(const Tensor& input);

/// Nearest-neighbor 2x upsampling of NCHW (YOLOv3 route layers).
Tensor upsample2x_reference(const Tensor& input);

/// Generic cost of an elementwise op over `numel` elements reading
/// `inputs_per_elem` operands.
sim::KernelLaunch elementwise_kernel_cost(const std::string& name, int64_t numel,
                                          int inputs_per_elem,
                                          int64_t flops_per_elem);

}  // namespace igc::ops
