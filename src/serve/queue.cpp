#include "serve/queue.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "core/error.h"

namespace igc::serve {

namespace {

int default_watermark(const RequestQueue::Options& opts) {
  if (opts.shed_watermark >= 0) {
    return std::min(opts.shed_watermark, opts.max_depth);
  }
  return std::max(1, (opts.max_depth * 3 + 3) / 4);
}

}  // namespace

RequestQueue::RequestQueue(Options opts)
    : opts_(opts), shed_watermark_(default_watermark(opts)) {
  if (opts_.num_tenants < 1) {
    throw Error("RequestQueue: num_tenants must be >= 1");
  }
  if (opts_.max_depth < 1) throw Error("RequestQueue: max_depth must be >= 1");
  if (opts_.max_batch_size < 1) {
    throw Error("RequestQueue: max_batch_size must be >= 1");
  }
  if (!(opts_.max_wait_ms >= 0.0)) {
    throw Error("RequestQueue: max_wait_ms must be >= 0");
  }
  lanes_.resize(static_cast<size_t>(opts_.num_tenants));
}

Admission RequestQueue::offer(RequestPtr& req, double now_ms) {
  if (req == nullptr || req->tenant < 0 ||
      req->tenant >= opts_.num_tenants) {
    return Admission::kRejectedUnknownTenant;
  }
  std::lock_guard<std::mutex> lk(mu_);
  if (closed_) return Admission::kRejectedShutdown;
  if (depth_ >= opts_.max_depth) return Admission::kRejectedQueueFull;
  if (depth_ >= shed_watermark_) return Admission::kShedWatermark;
  req->enqueue_ms = now_ms;
  ++depth_;
  if (req->timeline != nullptr) {
    // Stamped here, under the queue mutex, because ownership transfers to
    // the queue on this push — the depth recorded is the depth the request
    // itself contributed to.
    obs::RequestEvent e;
    e.kind = obs::RequestEventKind::kAdmit;
    e.t_ms = now_ms;
    e.queue_depth = depth_;
    req->timeline->add(std::move(e));
  }
  lanes_[static_cast<size_t>(req->tenant)].push_back(std::move(req));
  cv_.notify_one();
  return Admission::kAdmitted;
}

void RequestQueue::close() {
  std::lock_guard<std::mutex> lk(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

int RequestQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return depth_;
}

std::optional<Batch> RequestQueue::try_form_batch(double now_ms) {
  std::lock_guard<std::mutex> lk(mu_);
  return try_form_batch_locked(now_ms);
}

std::optional<Batch> RequestQueue::try_form_batch_locked(double now_ms) {
  const int n = opts_.num_tenants;
  auto lane_expired = [&](const std::deque<RequestPtr>& lane) {
    return !lane.empty() &&
           (closed_ ||
            now_ms - lane.front()->enqueue_ms >= opts_.max_wait_ms);
  };

  // Two round-robin scans from the cursor: full lanes win over merely
  // expired ones, so a tenant at its size trigger never waits behind a
  // timeout flush of a lighter tenant.
  int chosen = -1;
  for (int pass = 0; pass < 2 && chosen < 0; ++pass) {
    for (int k = 0; k < n; ++k) {
      const int t = (rr_cursor_ + k) % n;
      const auto& lane = lanes_[static_cast<size_t>(t)];
      const bool ready =
          pass == 0
              ? static_cast<int>(lane.size()) >= opts_.max_batch_size
              : lane_expired(lane);
      if (ready) {
        chosen = t;
        break;
      }
    }
  }
  if (chosen < 0) return std::nullopt;

  Batch b;
  b.tenant = chosen;
  b.formed_ms = now_ms;
  auto& lane = lanes_[static_cast<size_t>(chosen)];
  const int take =
      std::min<int>(opts_.max_batch_size, static_cast<int>(lane.size()));
  b.requests.reserve(static_cast<size_t>(take));
  for (int i = 0; i < take; ++i) {
    b.requests.push_back(std::move(lane.front()));
    lane.pop_front();
  }
  depth_ -= take;
  rr_cursor_ = (chosen + 1) % n;
  return b;
}

double RequestQueue::next_deadline_ms() const {
  std::lock_guard<std::mutex> lk(mu_);
  return next_deadline_ms_locked();
}

double RequestQueue::next_deadline_ms_locked() const {
  double deadline = std::numeric_limits<double>::infinity();
  for (const auto& lane : lanes_) {
    if (lane.empty()) continue;
    deadline = std::min(deadline, lane.front()->enqueue_ms + opts_.max_wait_ms);
  }
  return deadline;
}

std::optional<Batch> RequestQueue::pop_batch(
    const std::function<double()>& now_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (auto b = try_form_batch_locked(now_ms())) return b;
    if (closed_ && depth_ == 0) return std::nullopt;
    const double deadline = next_deadline_ms_locked();
    if (std::isinf(deadline)) {
      cv_.wait(lk);
    } else {
      // Sleep until the earliest timeout trigger. The wait duration is the
      // engine-clock delta converted to a real-time bound; a scripted test
      // clock turns this into a bounded retry loop rather than a hang.
      const double wait = std::max(0.1, deadline - now_ms());
      cv_.wait_for(lk, std::chrono::duration<double, std::milli>(wait));
    }
  }
}

}  // namespace igc::serve
