// ServingEngine: the multi-tenant serving layer above CompiledModel::run().
//
// Mirrors the engine / scheduler / worker split of continuous-batching
// inference servers (vLLM-style), scaled to this repo's executor:
//
//   client -> submit() ----[admission control]----> RequestQueue (per-tenant
//   lanes, bounded, shed watermark) --[scheduler thread: dynamic batches,
//   max-batch-size / max-wait-ms triggers, round-robin fairness]--> batch
//   queue (bounded by worker count) --> worker threads, each holding one
//   private ServingContext (memory plan + PagedArena page table) per tenant,
//   so concurrent workers serve the same CompiledModel without serializing
//   on the model-wide arena mutex — JIT dispatch tables and pre-resolved
//   conv schedules are shared read-only across the pool.
//
// Memory: every worker context draws its pages from ONE engine-wide
// PagePool (EngineOptions::page_pool, created at start() when absent).
// Contexts return their pages to the pool after each request, so physical
// pages time-share across workers and tenants: peak engine memory tracks
// the pages concurrently in flight, not (workers x tenants) private slabs.
//
// Telemetry: every request records enqueue/schedule/start/finish timestamps
// from the engine clock; completions feed the serve.* metric family
// (queue-wait / service / e2e latency histograms, admitted / rejected /
// shed counters, batch-size histogram, queue-depth gauges) in the target
// registry — the process-wide one by default, so a /metrics scrape of a
// live endpoint sees them.
//
// Determinism: the engine never reads wall clock directly; EngineOptions::
// clock_ms is injectable (default: steady_clock since construction). Worker
// interleaving is scheduling-dependent, but the per-request numerics are
// bit-identical regardless (node RNGs are seeded from the request's
// input_seed), and accounting invariants — every admitted request resolves
// exactly once, counts conserve, depth never exceeds max_depth — hold on
// any interleaving (tested, TSan-clean).
//
// Lifecycle: add_tenant() before start(); submit() any time (refused with
// kRejectedShutdown unless running); stop() closes admission, drains every
// queued request through the workers, and joins all threads — in-flight
// requests complete, their futures resolve. The destructor stops.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/compiler.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "serve/queue.h"
#include "serve/request.h"

namespace igc::serve {

/// One model a tenant serves, plus the run template its requests execute
/// with. The engine overrides input_seed per request and routes arena usage
/// through a per-worker ServingContext; the rest of `run` (mode, numerics,
/// backend) is honored as given.
struct TenantSpec {
  std::string name;
  const CompiledModel* model = nullptr;
  RunOptions run;
};

struct EngineOptions {
  int num_workers = 2;
  /// Queue shape; num_tenants is filled in by the engine at start().
  RequestQueue::Options queue;
  /// Injectable monotonic millisecond clock. Defaults to steady_clock
  /// elapsed since engine construction.
  std::function<double()> clock_ms;
  /// Simulated-device pacing: when > 0, a worker holds its lane for
  /// (simulated latency x sim_pacing) wall-clock ms after each request's
  /// host-side bookkeeping — the worker is blocked on its device replica
  /// while the (scaled) simulated accelerator executes, exactly like a
  /// real device-bound serving tier. Blocked workers overlap, so the pool
  /// scales with worker count even when host cores are scarce. 0 = off
  /// (service time is pure host compute).
  double sim_pacing = 0.0;
  /// Metrics destination; null uses the process-wide registry.
  obs::MetricsRegistry* registry = nullptr;
  /// Request tracing (obs/request_trace.h). Off by default. When enabled,
  /// every request carries an event timeline through the pipeline (appended
  /// lock-free by whichever stage owns the request), finished timelines
  /// feed the engine's tail-sampled FlightRecorder, and completions record
  /// serve.e2e_ms / serve.queue_wait_ms exemplars. Tracing never changes
  /// scheduling, admission, or numerics — only what is remembered.
  struct TraceOptions {
    bool enabled = false;
    /// Deterministic head-sample rate for normal completions, [0, 1].
    double head_sample_rate = 0.0;
    /// Flight-recorder retention (per worker shard; see FlightRecorder).
    int keep_slowest = 8;
    int keep_errors = 256;
    int keep_head = 64;
  };
  TraceOptions trace;
  /// Shared physical page pool for every worker's serving contexts. Null
  /// (the default) lets start() create an unbounded pool when any tenant
  /// runs with an arena; pass one explicitly to cap memory (PagePool::
  /// Options::max_bytes) or to share pages with contexts outside the
  /// engine.
  std::shared_ptr<PagePool> page_pool;
};

/// Monotonic accounting snapshot. Counts conserve:
///   submitted == admitted + shed + rejected_full + rejected_shutdown
///                + rejected_unknown_tenant
/// and, once stop() returns, admitted == completed + failed.
struct EngineStats {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t shed = 0;
  int64_t rejected_full = 0;
  int64_t rejected_shutdown = 0;
  int64_t rejected_unknown_tenant = 0;
  int64_t completed = 0;
  int64_t failed = 0;  // run() threw; the request's future holds the error
  int64_t batches = 0;
  int queue_depth_peak = 0;
  /// Completed-request counts per tenant (index = tenant id).
  std::vector<int64_t> completed_per_tenant;
};

/// Liveness snapshot for /healthz: distinguishes "process up" from "engine
/// serving". Healthy means serving && scheduler_alive && queue_open &&
/// workers > 0.
struct EngineHealth {
  bool serving = false;          ///< admission open (start()ed, not stopped)
  bool scheduler_alive = false;  ///< scheduler thread still in its loop
  bool queue_open = false;       ///< request queue exists and is not closed
  int workers = 0;               ///< worker threads currently in their loop

  bool healthy() const {
    return serving && scheduler_alive && queue_open && workers > 0;
  }
  std::string json() const;
};

class ServingEngine {
 public:
  explicit ServingEngine(EngineOptions opts);
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Registers a tenant (before start()). Returns its tenant id.
  int add_tenant(TenantSpec spec);
  int num_tenants() const { return static_cast<int>(tenants_.size()); }
  const std::string& tenant_name(int tenant) const;

  /// Spawns the scheduler and worker threads. Requires >= 1 tenant.
  void start();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The engine-wide physical page pool every worker context draws from.
  /// Null before start() unless one was passed in EngineOptions; null after
  /// start() only when no tenant runs with an arena.
  const std::shared_ptr<PagePool>& page_pool() const {
    return opts_.page_pool;
  }

  /// Submits one request for `tenant`. Thread-safe; never blocks on the
  /// workers (open-loop: refusals are immediate).
  SubmitResult submit(int tenant, uint64_t input_seed);

  /// Closes admission, drains the queue through the workers, joins every
  /// thread. Every admitted request's future resolves before this returns.
  /// Idempotent.
  void stop();

  EngineStats stats() const;

  /// Liveness for external probes (see EngineHealth). Thread-safe.
  EngineHealth health() const;

  /// The tail-sampled flight recorder holding retained request timelines;
  /// null unless EngineOptions::trace.enabled. Valid (and stable) for the
  /// engine's lifetime, including after stop() — post-run analysis reads it.
  const obs::FlightRecorder* flight_recorder() const { return flight_.get(); }
  /// Histogram exemplars recorded by completions; null unless tracing.
  const obs::ExemplarStore* exemplars() const { return exemplars_.get(); }

 private:
  void scheduler_main();
  void worker_main(int worker_id);
  void execute_batch(Batch batch,
                     std::vector<std::unique_ptr<ServingContext>>& contexts,
                     int worker_id);
  void record_refusal(Admission a, int tenant);

  EngineOptions opts_;
  std::vector<TenantSpec> tenants_;
  std::unique_ptr<RequestQueue> queue_;

  // Formed batches awaiting a worker, bounded to num_workers so requests
  // keep counting against queue depth (and admission control) until a
  // worker is about to pick them up.
  std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::deque<Batch> batches_;
  bool scheduler_done_ = false;

  std::atomic<bool> running_{false};
  bool started_ = false;
  bool stopped_ = false;
  mutable std::mutex lifecycle_mu_;  // serializes start()/stop(), health()
  std::thread scheduler_;
  std::vector<std::thread> workers_;
  // Liveness signals for health(): flipped by the threads themselves, so a
  // crashed/exited scheduler shows up even while running_ is still true.
  std::atomic<bool> scheduler_alive_{false};
  std::atomic<int> workers_alive_{0};

  std::atomic<uint64_t> next_id_{1};
  std::atomic<int64_t> submitted_{0}, admitted_{0}, shed_{0};
  std::atomic<int64_t> rejected_full_{0}, rejected_shutdown_{0};
  std::atomic<int64_t> rejected_unknown_{0};
  std::atomic<int64_t> completed_{0}, failed_{0}, batches_formed_{0};
  std::atomic<int> depth_peak_{0};
  std::vector<std::unique_ptr<std::atomic<int64_t>>> completed_per_tenant_;

  // Request tracing (null when off). The recorder and exemplar store are
  // engine-owned so their lifetime covers post-run /debug reads.
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::ExemplarStore> exemplars_;

  // serve.tenant.<name>.* instruments, resolved at start() once tenant
  // names are final (index = tenant id).
  struct TenantInstruments {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* failed = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Histogram* e2e = nullptr;
  };
  std::vector<TenantInstruments> tenant_metrics_;

  // serve.* instruments, resolved once against opts_.registry.
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_admitted_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_shed_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_queue_depth_peak_ = nullptr;
  obs::Histogram* m_batch_size_ = nullptr;
  obs::Histogram* m_queue_wait_ = nullptr;
  obs::Histogram* m_service_ = nullptr;
  obs::Histogram* m_e2e_ = nullptr;
};

}  // namespace igc::serve
